#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <map>
#include <memory>

#include "jobmig/ib/dispatcher.hpp"
#include "jobmig/ib/verbs.hpp"
#include "jobmig/proc/blcr.hpp"
#include "jobmig/storage/filesystem.hpp"
#include "jobmig/telemetry/trace.hpp"

/// The paper's §III-B RDMA-based process-migration engine.
///
/// Source side: a user-level buffer manager owns a registered buffer pool;
/// BLCR checkpoint writes from all local processes are aggregated into pool
/// chunks (each chunk carries data of one process). Every filled chunk
/// produces an "RDMA-read request" control message to the target carrying
/// (a) the RDMA information to pull the chunk — rkey, pool offset, length —
/// and (b) the reassembly information — rank, stream offset — so chunks of
/// the same process can be concatenated into a complete checkpoint stream.
/// The target pulls each chunk with an RDMA Read at its own pace and sends
/// a release reply, returning the chunk to the source's free list. Pool
/// occupancy is the flow control: checkpoint writes stall when the pool is
/// exhausted, which is why the paper gets away with a 10 MB pool.
namespace jobmig::migration {

struct PoolConfig {
  std::uint64_t pool_bytes = 10ull << 20;  // 10 MB, the paper's default
  std::uint64_t chunk_bytes = 1ull << 20;  // 1 MB chunks
  std::size_t chunks() const {
    JOBMIG_EXPECTS(chunk_bytes > 0 && pool_bytes >= chunk_bytes);
    return static_cast<std::size_t>(pool_bytes / chunk_bytes);
  }
};

/// What the target does with reassembled per-rank checkpoint streams.
enum class RestartMode {
  kFile,    // paper's implementation: buffer to node-local tmp files, restart reads them
  kMemory,  // restart straight from the fully buffered stream (no disk)
  // §IV-A's planned revision, verbatim: "restarting the processes on-the-fly
  // as the process image data arrives at the buffer pool". Restart overlaps
  // the RDMA transfer, so Phase 3 all but disappears.
  kPipelined,
};

std::string_view to_string(RestartMode mode);

namespace wire {
enum class Op : std::uint8_t { kRequest = 1, kRelease = 2, kDone = 3, kDoneAck = 4 };
struct ControlMsg {
  Op op = Op::kRequest;
  std::uint32_t chunk_index = 0;
  std::uint32_t rkey = 0;
  std::uint64_t pool_offset = 0;
  std::uint64_t length = 0;
  std::int32_t rank = -1;
  std::uint64_t stream_offset = 0;
  bool end_of_stream = false;
  /// Causal context of the span that produced this message (the checkpoint
  /// writer for requests/DONE, the chunk pull for releases); always on the
  /// wire — zeros when untraced — so traced and untraced runs move the same
  /// bytes.
  telemetry::TraceContext ctx{};

  sim::Bytes encode() const;
  static std::optional<ControlMsg> decode(sim::ByteSpan data);
  static constexpr std::size_t kWireSize = 1 + 4 + 4 + 8 + 8 + 4 + 8 + 1 + 8 + 8;
};
}  // namespace wire

class SourceBufferManager;

/// Target-side manager: pulls advertised chunks and reassembles per-rank
/// checkpoint streams.
class TargetBufferManager {
 public:
  TargetBufferManager(ib::Hca& hca, PoolConfig cfg);
  ~TargetBufferManager();
  TargetBufferManager(const TargetBufferManager&) = delete;
  TargetBufferManager& operator=(const TargetBufferManager&) = delete;

  /// Register the pool and open the control endpoint; returns the address
  /// the source must connect its control QP to (published via FTB).
  [[nodiscard]] sim::ValueTask<ib::IbAddr> open();
  void connect_to(ib::IbAddr source_control);

  /// Serve pull requests until the source's DONE arrives; then ack.
  [[nodiscard]] sim::Task serve();

  /// Causal context of the enclosing pull phase: linked into chunk-pull
  /// spans and stamped into outgoing release/ack control messages.
  void set_trace_context(telemetry::TraceContext ctx) { ctx_ = ctx; }

  /// Reassembled checkpoint stream of `rank` (valid after serve()).
  const sim::Bytes& stream_of(int rank) const;
  std::vector<int> ranks() const;
  std::uint64_t bytes_pulled() const { return bytes_pulled_; }
  /// Take the stream (frees the buffered copy).
  sim::Bytes take_stream(int rank);

  /// On-the-fly consumption: a RestartSource over `rank`'s stream that
  /// delivers bytes as chunks land (blocking at the contiguous watermark),
  /// so BLCR restart can run concurrently with serve(). Create before or
  /// during the transfer; each rank supports one streaming reader.
  [[nodiscard]] std::unique_ptr<proc::RestartSource> make_streaming_source(int rank);
  /// Ranks announced so far (first chunk seen), oldest first.
  [[nodiscard]] sim::ValueTask<int> next_announced_rank();

  /// Internal surface used by the streaming-source adapter.
  struct RankProgress {
    std::uint64_t watermark = 0;  // contiguous bytes available from offset 0
    bool complete = false;
    /// Total stream length advertised by the end-of-stream message. The EOS
    /// control message can overtake in-flight data pulls, so completion is
    /// only declared once the watermark reaches this.
    std::optional<std::uint64_t> expected_end;
    std::map<std::uint64_t, std::uint64_t> segments;  // out-of-order arrivals
    sim::Event advanced;
  };
  RankProgress& progress_of(int rank);

 private:
  sim::Task pull_one(wire::ControlMsg req);
  void note_rank(int rank);

  ib::Hca& hca_;
  PoolConfig cfg_;
  sim::Bytes pool_;
  ib::MemoryRegion* pool_mr_ = nullptr;
  ib::CompletionQueue send_cq_, recv_cq_;
  ib::CompletionDispatcher send_dispatch_{send_cq_};
  std::unique_ptr<ib::QueuePair> qp_;
  std::vector<sim::Bytes> ring_;
  sim::Semaphore free_chunks_{0};
  std::deque<std::size_t> free_list_;
  std::map<int, sim::Bytes> streams_;
  std::map<int, bool> stream_complete_;
  std::map<int, RankProgress> progress_;
  std::deque<int> announced_;
  sim::Event rank_announced_;
  std::uint64_t bytes_pulled_ = 0;
  std::uint64_t next_wr_ = 1;
  telemetry::TraceContext ctx_{};
  bool done_seen_ = false;
  std::size_t active_pulls_ = 0;
  sim::Event pulls_idle_;
};

/// Source-side manager: owns the pool BLCR writes into and the control
/// channel toward the target.
class SourceBufferManager {
 public:
  SourceBufferManager(ib::Hca& hca, PoolConfig cfg);
  ~SourceBufferManager();
  SourceBufferManager(const SourceBufferManager&) = delete;
  SourceBufferManager& operator=(const SourceBufferManager&) = delete;

  /// Register the pool, open the control endpoint and connect it to the
  /// target's; the target must connect_to() our address symmetrically.
  [[nodiscard]] sim::ValueTask<ib::IbAddr> open(ib::IbAddr target_control);

  /// Start consuming release replies (spawned alongside checkpointing).
  void start();

  /// Causal context of the enclosing checkpoint phase: stamped into every
  /// outgoing chunk request / eos marker / DONE so the target's pulls link
  /// back to the source's checkpoint span.
  void set_trace_context(telemetry::TraceContext ctx) { ctx_ = ctx; }
  telemetry::TraceContext trace_context() const { return ctx_; }

  /// Build a BLCR sink that funnels one process's checkpoint stream
  /// through the pool as rank `rank`.
  [[nodiscard]] std::unique_ptr<proc::CheckpointSink> make_sink(int rank);

  /// All ranks checkpointed: send DONE, wait for the target's ack, release
  /// the pool registration.
  [[nodiscard]] sim::Task finish();

  std::uint64_t bytes_submitted() const { return bytes_submitted_; }
  std::size_t peak_chunks_in_flight() const { return peak_in_flight_; }
  const PoolConfig& config() const { return cfg_; }

  /// Internal surface used by the pool sink adapter.
  struct Chunk {
    std::size_t index;
    std::uint64_t fill = 0;
  };
  /// Blocks while the pool is exhausted (the paper's flow control).
  [[nodiscard]] sim::ValueTask<Chunk> acquire_chunk();
  /// Hand a (partially) filled chunk to the wire.
  [[nodiscard]] sim::Task submit(Chunk chunk, int rank, std::uint64_t stream_offset,
                                 bool end_of_stream);
  /// Send a payload-free control message (eos marker, DONE); stamps the
  /// manager's trace context before it hits the wire.
  [[nodiscard]] sim::Task send_marker(wire::ControlMsg msg);
  std::byte* chunk_data(std::size_t index) {
    return pool_.data() + index * cfg_.chunk_bytes;
  }

 private:
  sim::Task release_loop();

  ib::Hca& hca_;
  PoolConfig cfg_;
  sim::Bytes pool_;
  ib::MemoryRegion* pool_mr_ = nullptr;
  ib::CompletionQueue send_cq_, recv_cq_;
  ib::CompletionDispatcher send_dispatch_{send_cq_};
  std::unique_ptr<ib::QueuePair> qp_;
  std::vector<sim::Bytes> ring_;
  sim::Semaphore free_chunks_{0};
  std::deque<std::size_t> free_list_;
  sim::Event chunks_idle_;
  std::size_t in_flight_ = 0;
  std::size_t peak_in_flight_ = 0;
  std::uint64_t bytes_submitted_ = 0;
  std::uint64_t next_wr_ = 1;
  telemetry::TraceContext ctx_{};
  sim::Event done_ack_;
  bool running_ = false;
};

/// Restart source that replays a buffered stream while charging a disk for
/// the reads — models BLCR loading the tmp checkpoint files the target
/// wrote (the paper's file-based restart whose I/O latency dominates
/// Phase 3). RestartMode::kMemory skips the disk charge.
class BufferedStreamSource final : public proc::RestartSource {
 public:
  BufferedStreamSource(sim::Bytes stream, storage::BlockDevice* charge_reads)
      : stream_(std::move(stream)), disk_(charge_reads) {}

  sim::ValueTask<sim::Bytes> read(std::uint64_t max_len) override;

 private:
  sim::Bytes stream_;
  storage::BlockDevice* disk_;
  std::uint64_t offset_ = 0;
};

}  // namespace jobmig::migration
