#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "jobmig/ftb/ftb.hpp"
#include "jobmig/launch/launch.hpp"
#include "jobmig/migration/buffer_manager.hpp"
#include "jobmig/migration/kv_codec.hpp"
#include "jobmig/mpr/job.hpp"
#include "jobmig/sim/stats.hpp"
#include "jobmig/telemetry/trace.hpp"

/// The paper's Job Migration procedure (§III-A, Fig. 2): a four-phase cycle
/// coordinated entirely through FTB events.
///
///   Phase 1  Job Stall   — FTB_MIGRATE fans out; every process parks at a
///                          safe point, drains in-flight traffic and tears
///                          down its communication endpoints.
///   Phase 2  Migration   — processes on the source node are checkpointed
///                          with BLCR into the source buffer pool; the
///                          target pulls the chunks with RDMA Reads and
///                          reassembles per-rank checkpoint streams.
///                          Everyone else sits in the migration barrier.
///                          Ends with FTB_MIGRATE_PIIC from the source NLA.
///   Phase 3  Restart     — the Job Manager adjusts the spawn tree and
///                          broadcasts FTB_RESTART; the target NLA restarts
///                          the migrated ranks from the transferred images
///                          (file-based by default; memory-based extension
///                          available).
///   Phase 4  Resume      — restarted ranks join the migration barrier; it
///                          releases, endpoints are rebuilt, execution
///                          resumes.
namespace jobmig::migration {

/// FTB vocabulary. The three starred events are the paper's; the rest are
/// auxiliary completion notifications the paper leaves implicit.
inline constexpr const char* kMigSpace = "FTB.MPI.MVAPICH2";
inline constexpr const char* kEvMigrate = "FTB_MIGRATE";             // *
inline constexpr const char* kEvMigratePiic = "FTB_MIGRATE_PIIC";    // *
inline constexpr const char* kEvRestart = "FTB_RESTART";             // *
inline constexpr const char* kEvSuspendDone = "FTB_SUSPEND_DONE";
inline constexpr const char* kEvAllSuspended = "FTB_ALL_SUSPENDED";
inline constexpr const char* kEvPullReady = "FTB_PULL_READY";
inline constexpr const char* kEvPullSrcReady = "FTB_PULL_SRC_READY";
inline constexpr const char* kEvPullConnected = "FTB_PULL_CONNECTED";
inline constexpr const char* kEvRestartDone = "FTB_RESTART_DONE";
inline constexpr const char* kEvResumeDone = "FTB_RESUME_DONE";
inline constexpr const char* kEvMigrateRequest = "FTB_MIGRATE_REQUEST";
inline constexpr const char* kEvNodeDead = "FTB_NODE_DEAD";
/// Published by the manager when an orchestrator-granted cycle finishes
/// (success or abort), so cluster-level services can observe completion
/// without polling. Never published in legacy single-job mode — goldens pin
/// that event sequence exactly.
inline constexpr const char* kEvCycleDone = "FTB_CYCLE_DONE";

/// FTB event space for a job's migration protocol. Job 0 (legacy single-job
/// mode) keeps the paper's space verbatim; orchestrated jobs get their own
/// space so concurrent cycles of different jobs never cross-talk (FTB space
/// matching is exact unless a pattern contains '*', so "FTB.MPI.MVAPICH2"
/// subscribers do not see "FTB.MPI.MVAPICH2.J1" traffic).
inline std::string mig_space_for(int job_id) {
  if (job_id == 0) return kMigSpace;
  return std::string(kMigSpace) + ".J" + std::to_string(job_id);
}

/// Thrown through a migration cycle when completing it became impossible
/// (fail-stop node death announced via FTB_NODE_DEAD). The manager converts
/// it into an aborted MigrationReport and dumps the flight recorder.
class MigrationAborted : public std::runtime_error {
 public:
  explicit MigrationAborted(const std::string& what) : std::runtime_error(what) {}
};

/// Ordered event consumption over one FTB client: awaiting a name stashes
/// (rather than drops) every other event, so a protocol can consume events
/// in its own order regardless of arrival order.
class EventWaiter {
 public:
  explicit EventWaiter(ftb::FtbClient& client) : client_(client) {}

  [[nodiscard]] sim::ValueTask<ftb::FtbEvent> await_named(std::string name);

  /// Arm abort handling: if `name` is ever pulled (stashed or live) while
  /// awaiting, await_named throws MigrationAborted instead of stashing it.
  void abort_on(std::string name) { abort_on_ = std::move(name); }

 private:
  ftb::FtbClient& client_;
  std::deque<ftb::FtbEvent> stash_;
  std::string abort_on_;
};

struct MigrationOptions {
  PoolConfig pool;
  /// Pipelined (on-the-fly) restart is the default: §IV-A's revision makes
  /// Phase 3 all but disappear, and nothing depends on the tmp files. The
  /// paper's original file-based restart stays available (benches accept
  /// --restart=file) for reproducing the published Fig. 4 totals.
  RestartMode restart_mode = RestartMode::kPipelined;
};

/// Authorization handed to MigrationManager::migrate by the cluster
/// orchestrator: the placement engine already chose the target, and the
/// node-set lock manager holds a lease on {source, target} for the cycle's
/// duration. Without a grant the manager falls back to the paper's
/// behaviour (first available spare, no completion event).
struct MigrationGrant {
  std::string target_host;
  std::uint64_t lease_id = 0;
  int priority = 0;
};

/// Result of one migration cycle, decomposed as in the paper's Fig. 4.
struct MigrationReport {
  sim::Duration stall;      // Phase 1
  sim::Duration migration;  // Phase 2
  sim::Duration restart;    // Phase 3
  sim::Duration resume;     // Phase 4
  sim::Duration total() const { return stall + migration + restart + resume; }
  std::uint64_t bytes_moved = 0;  // checkpoint data transferred (Table I)
  std::string source_host;
  std::string target_host;
  std::vector<int> migrated_ranks;
  /// Job the cycle belonged to (0 in legacy single-job mode).
  int job_id = 0;
  /// Causal-trace id of the cycle (0 when telemetry was off).
  std::uint64_t trace_id = 0;
  /// Set when the cycle was abandoned (node death); phase durations then
  /// cover only the completed prefix.
  bool aborted = false;
  std::string abort_reason;
};

/// Per-node migration daemon: the C/R-thread role of the paper, plus the
/// NLA-side source/target duties. One per compute/spare node.
class NodeCrDaemon {
 public:
  NodeCrDaemon(launch::NodeLaunchAgent& nla, mpr::Job& job, ftb::FtbAgent& ftb_agent,
               MigrationOptions opts);

  /// Start listening for migration events (spawned; runs until shutdown).
  void start();
  void shutdown() { running_ = false; }

  launch::NodeLaunchAgent& nla() { return nla_; }
  const MigrationOptions& options() const { return opts_; }

 private:
  sim::Task event_loop();
  /// Phase-1 work for every node hosting ranks. Takes the FTB_MIGRATE event
  /// so the node's spans link back to the manager's (causal tracing).
  sim::Task handle_migrate(ftb::FtbEvent migrate_ev);
  /// Per-rank C/R-thread routine for ranks staying put: drain, barrier,
  /// rebuild (the barrier releases once migrated ranks re-join).
  sim::Task stay_routine(int rank, telemetry::TraceContext cycle_ctx);
  /// Source-node Phase 2: checkpoint local ranks into the buffer pool.
  sim::Task source_routine(std::string target_host, ftb::FtbClient& cycle_client);
  /// Target-node role across Phases 2-4: pull, restart, re-join.
  sim::Task target_routine(std::string source_host, telemetry::TraceContext cycle_ctx);

  launch::NodeLaunchAgent& nla_;
  mpr::Job& job_;
  ftb::FtbAgent& ftb_agent_;
  ftb::FtbClient ftb_;
  std::string space_;  // this job's migration event space
  std::string track_;  // telemetry track ("crd:<host>", job-qualified off 0)
  MigrationOptions opts_;
  bool running_ = false;
  sim::Event target_done_;
  std::unique_ptr<TargetBufferManager> target_mgr_;  // live during a cycle
};

/// Login-node coordinator: fields migration requests (user, health,
/// maintenance), runs the cycle, measures the phases.
class MigrationManager {
 public:
  MigrationManager(launch::JobManager& jm, mpr::Job& job, ftb::FtbAgent& ftb_agent,
                   MigrationOptions opts = {});

  /// Execute one complete migration cycle away from `source_host` onto the
  /// first available spare. Blocks (in virtual time) until Phase 4 ends.
  [[nodiscard]] sim::ValueTask<MigrationReport> migrate(const std::string& source_host);

  /// Orchestrator-granted cycle: the target was chosen by the placement
  /// engine and the {source, target} node set is leased to this cycle.
  /// Publishes FTB_CYCLE_DONE on the job's space when the cycle ends.
  [[nodiscard]] sim::ValueTask<MigrationReport> migrate(const std::string& source_host,
                                                        MigrationGrant grant);

  /// Listen for FTB_MIGRATE_REQUEST events (from triggers) and run cycles;
  /// spawned, runs until shutdown().
  void start_request_listener();
  void shutdown() { running_ = false; }
  std::size_t cycles_completed() const { return cycles_completed_; }
  const MigrationReport& last_report() const { return last_report_; }

 private:
  sim::Task request_loop();
  [[nodiscard]] sim::ValueTask<ftb::FtbEvent> await_event(const std::string& name,
                                                          ftb::FtbClient& client);
  [[nodiscard]] sim::ValueTask<MigrationReport> migrate_impl(std::string source_host,
                                                             const MigrationGrant* grant);
  [[nodiscard]] sim::Task publish_cycle_done(const MigrationReport& report,
                                             std::uint64_t lease_id);

  launch::JobManager& jm_;
  mpr::Job& job_;
  ftb::FtbAgent& ftb_agent_;
  ftb::FtbClient ftb_;
  std::string space_;  // this job's migration event space
  MigrationOptions opts_;
  bool running_ = false;
  bool cycle_active_ = false;
  std::size_t cycles_completed_ = 0;
  MigrationReport last_report_;
};

}  // namespace jobmig::migration
