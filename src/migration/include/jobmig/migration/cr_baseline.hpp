#pragma once

#include <functional>
#include <string>
#include <vector>

#include "jobmig/mpr/job.hpp"
#include "jobmig/storage/filesystem.hpp"

/// The Checkpoint/Restart baseline the paper compares against (§IV-C):
/// MVAPICH2's coordinated full-job CR with BLCR. Phases, mirroring the
/// paper's decomposition:
///   Job Stall  — same park/drain/teardown as migration, but job-wide.
///   Checkpoint — every process dumps its image through BLCR to either its
///                node-local file system or the shared parallel FS.
///   Resume     — endpoints rebuilt, execution continues.
///   Restart    — (separate, after a failure) every process image is read
///                back and the processes restored.
namespace jobmig::migration {

struct CrReport {
  sim::Duration stall;
  sim::Duration checkpoint;
  sim::Duration resume;
  sim::Duration restart;  // zero unless restart_all() was run
  std::uint64_t bytes_written = 0;
  std::uint64_t checkpoint_files = 0;
  sim::Duration cycle_total() const { return stall + checkpoint + resume + restart; }
};

class CheckpointRestart {
 public:
  /// `fs_for_rank` maps a rank to the file system its checkpoint lands on:
  /// node-local ext3 (one FS per node) or the shared PVFS instance.
  using FsSelector = std::function<storage::FileSystem&(int rank)>;

  CheckpointRestart(mpr::Job& job, FsSelector fs_for_rank);

  /// One coordinated checkpoint: stall + dump-all + resume. The job keeps
  /// running afterwards (checkpoints are taken "at certain intervals").
  [[nodiscard]] sim::ValueTask<CrReport> checkpoint_all();

  /// Measure a full-job restart from the latest checkpoint files: every
  /// image is read back through BLCR and integrity-checked. Returns the
  /// restored images (the caller decides whether to rewire them into a
  /// job; the paper's restart is a fresh job submission).
  [[nodiscard]] sim::ValueTask<std::vector<proc::SimProcessPtr>> restart_all(
      sim::Duration* elapsed = nullptr);

  /// checkpoint_all() + restart_all(), reported like the paper's Fig. 7
  /// "complete CR cycle".
  [[nodiscard]] sim::ValueTask<CrReport> full_cycle();

  static std::string checkpoint_path(int rank) {
    return "/ckpt/context.rank" + std::to_string(rank);
  }

 private:
  mpr::Job& job_;
  FsSelector fs_for_rank_;
};

}  // namespace jobmig::migration
