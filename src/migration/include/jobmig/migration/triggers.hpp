#pragma once

#include <set>
#include <string>

#include "jobmig/ftb/ftb.hpp"
#include "jobmig/health/health.hpp"

/// Migration Triggers (paper Fig. 1): components that fire the events
/// initiating a migration — "either upon a user request, or at the
/// detection of system abnormal status by some health monitoring
/// component". All of them publish FTB_MIGRATE_REQUEST; the
/// MigrationManager's request listener does the rest.
namespace jobmig::migration {

/// Direct operator intervention: migrate the ranks off `host` now. Also
/// covers the paper's load-balancing / system-maintenance use cases.
class UserTrigger {
 public:
  explicit UserTrigger(ftb::FtbAgent& agent) : ftb_(agent, "user_trigger") {}

  [[nodiscard]] sim::Task fire(const std::string& host);
  std::size_t fired() const { return fired_; }

 private:
  ftb::FtbClient ftb_;
  std::size_t fired_ = 0;
};

/// Bridges the health substrate to the migration framework: subscribes to
/// FAILURE_PREDICTED events from the IPMI pollers and converts each (first
/// occurrence per host) into a migration request.
class HealthTrigger {
 public:
  HealthTrigger(sim::Engine& engine, ftb::FtbAgent& agent);

  void start();
  void stop() { running_ = false; }
  std::size_t fired() const { return fired_; }

 private:
  sim::Task listen_loop();

  sim::Engine& engine_;
  ftb::FtbClient ftb_;
  bool running_ = false;
  std::size_t fired_ = 0;
  std::set<std::string> already_fired_;
};

}  // namespace jobmig::migration
