#pragma once

#include "jobmig/migration/cr_baseline.hpp"

/// The paper's §VI outlook, built out: "investigate the potentials of our
/// process-migration approach to benefit the existing Checkpoint/Restart
/// strategy by prolonging the interval between full job-wide checkpoints."
///
/// A periodic checkpoint scheduler drives coordinated CR at a fixed
/// interval. When the migration framework handles a predicted failure, the
/// scheduler is notified: the node set is healthy again, so the next
/// checkpoint can be pushed out ("prolonged") instead of taken on schedule —
/// every avoided checkpoint saves a full-job dump.
namespace jobmig::migration {

class CheckpointScheduler {
 public:
  struct Config {
    sim::Duration interval = sim::Duration::sec(300);
    /// On a successful migration, push the next checkpoint a full interval
    /// out from the migration instead of keeping the old schedule.
    bool prolong_on_migration = true;
  };

  CheckpointScheduler(mpr::Job& job, CheckpointRestart& cr, Config cfg);

  /// Begin the periodic cycle (spawned; runs until stop()).
  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }

  /// Tell the scheduler a migration just handled a failure.
  void notify_migration();

  std::size_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  sim::Duration time_in_checkpoints() const { return time_in_checkpoints_; }
  std::size_t checkpoints_avoided() const { return checkpoints_avoided_; }
  /// Virtual time of the most recent completed checkpoint (work since then
  /// would be lost to a reactive restart).
  sim::TimePoint last_checkpoint() const { return last_checkpoint_; }

 private:
  sim::Task cycle_loop();

  mpr::Job& job_;
  CheckpointRestart& cr_;
  Config cfg_;
  bool running_ = false;
  sim::TimePoint next_due_{};
  sim::TimePoint last_checkpoint_{};
  std::size_t checkpoints_taken_ = 0;
  std::size_t checkpoints_avoided_ = 0;
  std::uint64_t bytes_written_ = 0;
  sim::Duration time_in_checkpoints_{};
};

}  // namespace jobmig::migration
