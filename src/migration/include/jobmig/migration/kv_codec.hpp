#pragma once

#include <map>
#include <string>

/// "k=v k=v" codec for FTB event payloads, shared by every module that
/// round-trips `mig_event` payloads. Keys and values are percent-escaped
/// ('%', '=', ' ' and control characters become %XX), so arbitrary strings
/// — hostnames with spaces, values containing '=' — survive the trip
/// losslessly. Legacy unescaped payloads decode unchanged: escaping only
/// ever introduces '%' sequences, which plain identifiers never contain.
namespace jobmig::migration {

std::string encode_kv(const std::map<std::string, std::string>& kv);
std::map<std::string, std::string> decode_kv(const std::string& payload);

/// Escape one token (exported for tests; encode_kv applies it per key/value).
std::string kv_escape(const std::string& raw);
std::string kv_unescape(const std::string& escaped);

}  // namespace jobmig::migration
