#pragma once

#include "jobmig/net/network.hpp"
#include "jobmig/proc/blcr.hpp"

/// Socket-based checkpoint movement — the transport of Wang et al.'s
/// process-level live migration that §III-B argues against. BLCR treats a
/// TCP socket as the checkpoint file descriptor: every byte rides the
/// memory-copy-heavy stream stack instead of zero-copy RDMA. Two rate
/// points matter for the E7 ablation: plain GigE and IPoIB (socket
/// emulation over the IB link, which the paper notes is still suboptimal).
namespace jobmig::migration {

/// BLCR sink writing the checkpoint stream into a connected net::Stream,
/// framed per rank so the receiver can demultiplex.
class SocketSink final : public proc::CheckpointSink {
 public:
  SocketSink(net::Stream& stream, int rank) : stream_(stream), rank_(rank) {}

  sim::Task write(sim::ByteSpan chunk) override;
  sim::Task finish() override;
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  net::Stream& stream_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
};

/// Receiver side: demultiplexes framed rank streams from the socket until
/// every announced rank has finished.
class SocketReceiver {
 public:
  explicit SocketReceiver(net::Stream& stream) : stream_(stream) {}

  /// Consume frames until `expected_ranks` streams have completed.
  [[nodiscard]] sim::Task receive_all(std::size_t expected_ranks);

  const sim::Bytes& stream_of(int rank) const;
  sim::Bytes take_stream(int rank);
  std::uint64_t bytes_received() const { return bytes_received_; }

 private:
  net::Stream& stream_;
  std::map<int, sim::Bytes> streams_;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace jobmig::migration
