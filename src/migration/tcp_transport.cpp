#include "jobmig/migration/tcp_transport.hpp"

namespace jobmig::migration {

namespace {
// Frame: u32 rank | u8 eos | u32 len | payload. Sent through the stream's
// own framing so partial reads never split a header.
sim::Bytes make_frame(int rank, bool eos, sim::ByteSpan payload) {
  sim::Bytes out;
  out.reserve(9 + payload.size());
  sim::put_u32(out, static_cast<std::uint32_t>(rank));
  out.push_back(static_cast<std::byte>(eos ? 1 : 0));
  sim::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}
}  // namespace

sim::Task SocketSink::write(sim::ByteSpan chunk) {
  co_await stream_.send_frame(make_frame(rank_, false, chunk));
  bytes_sent_ += chunk.size();
}

sim::Task SocketSink::finish() { co_await stream_.send_frame(make_frame(rank_, true, {})); }

sim::Task SocketReceiver::receive_all(std::size_t expected_ranks) {
  std::size_t finished = 0;
  while (finished < expected_ranks) {
    auto frame = co_await stream_.recv_frame();
    JOBMIG_ASSERT_MSG(frame.has_value(), "socket closed mid-transfer");
    JOBMIG_ASSERT(frame->size() >= 9);
    const int rank = static_cast<int>(sim::get_u32(*frame, 0));
    const bool eos = (*frame)[4] != std::byte{0};
    const std::uint32_t len = sim::get_u32(*frame, 5);
    JOBMIG_ASSERT(frame->size() == 9u + len);
    sim::Bytes& stream = streams_[rank];
    stream.insert(stream.end(), frame->begin() + 9, frame->end());
    bytes_received_ += len;
    if (eos) ++finished;
  }
}

const sim::Bytes& SocketReceiver::stream_of(int rank) const {
  auto it = streams_.find(rank);
  JOBMIG_EXPECTS_MSG(it != streams_.end(), "no stream for rank");
  return it->second;
}

sim::Bytes SocketReceiver::take_stream(int rank) {
  auto it = streams_.find(rank);
  JOBMIG_EXPECTS_MSG(it != streams_.end(), "no stream for rank");
  sim::Bytes out = std::move(it->second);
  streams_.erase(it);
  return out;
}

}  // namespace jobmig::migration
