#include "jobmig/migration/triggers.hpp"

#include "jobmig/migration/controller.hpp"

namespace jobmig::migration {

namespace {
// Hoisted out of co_await expressions (GCC 12 initializer_list bug; see
// controller.cpp).
ftb::FtbEvent request_event(const std::string& host) {
  return ftb::FtbEvent{kMigSpace, kEvMigrateRequest, ftb::Severity::kWarning,
                       encode_kv({{"host", host}})};
}
}  // namespace

sim::Task UserTrigger::fire(const std::string& host) {
  ++fired_;
  ftb::FtbEvent ev = request_event(host);
  co_await ftb_.publish(std::move(ev));
}

HealthTrigger::HealthTrigger(sim::Engine& engine, ftb::FtbAgent& agent)
    : engine_(engine), ftb_(agent, "health_trigger") {
  ftb_.subscribe(ftb::Subscription{health::kHealthSpace, health::kEventFailurePredicted,
                                   ftb::Severity::kInfo});
}

void HealthTrigger::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  engine_.spawn(listen_loop());
}

sim::Task HealthTrigger::listen_loop() {
  while (running_) {
    ftb::FtbEvent ev = co_await ftb_.next_event();
    if (!running_) break;
    const std::string& host = ev.payload;  // IPMI pollers put the hostname there
    if (already_fired_.contains(host)) continue;
    already_fired_.insert(host);
    ++fired_;
    ftb::FtbEvent req = request_event(host);
    co_await ftb_.publish(std::move(req));
  }
}

}  // namespace jobmig::migration
