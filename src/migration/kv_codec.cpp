#include "jobmig/migration/kv_codec.hpp"

#include <cstdio>
#include <sstream>

namespace jobmig::migration {

namespace {

bool needs_escape(unsigned char c) {
  return c == '%' || c == '=' || c == ' ' || c < 0x20 || c == 0x7f;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string kv_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    if (needs_escape(c)) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

std::string kv_unescape(const std::string& escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] == '%' && i + 2 < escaped.size()) {
      const int hi = hex_val(escaped[i + 1]);
      const int lo = hex_val(escaped[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
        continue;
      }
    }
    out += escaped[i];  // malformed escape: keep the literal byte
  }
  return out;
}

std::string encode_kv(const std::map<std::string, std::string>& kv) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : kv) {
    if (!first) os << ' ';
    first = false;
    os << kv_escape(k) << '=' << kv_escape(v);
  }
  return os.str();
}

std::map<std::string, std::string> decode_kv(const std::string& payload) {
  std::map<std::string, std::string> out;
  std::istringstream is(payload);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    out[kv_unescape(token.substr(0, eq))] = kv_unescape(token.substr(eq + 1));
  }
  return out;
}

}  // namespace jobmig::migration
