#include "jobmig/migration/scheduler.hpp"

namespace jobmig::migration {

using namespace sim::literals;

CheckpointScheduler::CheckpointScheduler(mpr::Job& job, CheckpointRestart& cr, Config cfg)
    : job_(job), cr_(cr), cfg_(cfg) {
  JOBMIG_EXPECTS(cfg_.interval > sim::Duration::zero());
}

void CheckpointScheduler::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  next_due_ = job_.engine().now() + cfg_.interval;
  last_checkpoint_ = job_.engine().now();  // job start counts as a safe point
  job_.engine().spawn(cycle_loop());
}

void CheckpointScheduler::notify_migration() {
  if (!cfg_.prolong_on_migration) return;
  const sim::TimePoint pushed = job_.engine().now() + cfg_.interval;
  if (pushed > next_due_) {
    // The checkpoint that was about to happen is skipped entirely.
    ++checkpoints_avoided_;
    next_due_ = pushed;
  }
}

sim::Task CheckpointScheduler::cycle_loop() {
  while (running_) {
    // Poll-style wait so notify_migration() can push the deadline while we
    // sleep (a fixed sleep would bake in the old deadline).
    while (running_ && job_.engine().now() < next_due_) {
      const sim::Duration remaining = next_due_ - job_.engine().now();
      co_await sim::sleep_for(remaining < 500_ms ? remaining : 500_ms);
    }
    if (!running_) co_return;
    if (job_.app_done()) co_return;  // nothing left to protect
    const sim::TimePoint start = job_.engine().now();
    CrReport report = co_await cr_.checkpoint_all();
    ++checkpoints_taken_;
    bytes_written_ += report.bytes_written;
    time_in_checkpoints_ += report.stall + report.checkpoint + report.resume;
    last_checkpoint_ = start;
    next_due_ = job_.engine().now() + cfg_.interval;
  }
}

}  // namespace jobmig::migration
