#include "jobmig/migration/buffer_manager.hpp"

#include <algorithm>
#include <cstring>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::migration {

using namespace sim::literals;

namespace wire {

sim::Bytes ControlMsg::encode() const {
  sim::Bytes out;
  out.reserve(kWireSize);
  out.push_back(static_cast<std::byte>(op));
  sim::put_u32(out, chunk_index);
  sim::put_u32(out, rkey);
  sim::put_u64(out, pool_offset);
  sim::put_u64(out, length);
  sim::put_u32(out, static_cast<std::uint32_t>(rank));
  sim::put_u64(out, stream_offset);
  out.push_back(static_cast<std::byte>(end_of_stream ? 1 : 0));
  sim::put_u64(out, ctx.trace_id);
  sim::put_u64(out, ctx.span_id);
  return out;
}

std::optional<ControlMsg> ControlMsg::decode(sim::ByteSpan data) {
  if (data.size() != kWireSize) return std::nullopt;
  const auto op_raw = static_cast<std::uint8_t>(data[0]);
  if (op_raw < 1 || op_raw > 4) return std::nullopt;
  ControlMsg m;
  m.op = static_cast<Op>(op_raw);
  m.chunk_index = sim::get_u32(data, 1);
  m.rkey = sim::get_u32(data, 5);
  m.pool_offset = sim::get_u64(data, 9);
  m.length = sim::get_u64(data, 17);
  m.rank = static_cast<std::int32_t>(sim::get_u32(data, 25));
  m.stream_offset = sim::get_u64(data, 29);
  m.end_of_stream = data[37] != std::byte{0};
  m.ctx.trace_id = sim::get_u64(data, 38);
  m.ctx.span_id = sim::get_u64(data, 46);
  return m;
}

}  // namespace wire

namespace {

constexpr std::size_t kControlRing = 32;
constexpr std::uint32_t kNoChunk = UINT32_MAX;  // eos marker without payload

void post_control_ring(ib::QueuePair& qp, std::vector<sim::Bytes>& ring) {
  ring.resize(kControlRing);
  for (std::size_t s = 0; s < kControlRing; ++s) {
    ring[s].resize(wire::ControlMsg::kWireSize);
    qp.post_recv(ib::RecvWr{1000 + s, ring[s].data(), ring[s].size()});
  }
}

void repost_control_slot(ib::QueuePair& qp, std::vector<sim::Bytes>& ring, std::uint64_t wr_id) {
  const std::size_t s = static_cast<std::size_t>(wr_id - 1000);
  qp.post_recv(ib::RecvWr{wr_id, ring[s].data(), ring[s].size()});
}

}  // namespace

// ---- Target side -------------------------------------------------------------

TargetBufferManager::TargetBufferManager(ib::Hca& hca, PoolConfig cfg) : hca_(hca), cfg_(cfg) {
  pool_.resize(cfg_.pool_bytes);
  for (std::size_t c = 0; c < cfg_.chunks(); ++c) free_list_.push_back(c);
  free_chunks_.release(cfg_.chunks());
}

TargetBufferManager::~TargetBufferManager() {
  if (pool_mr_ != nullptr) hca_.dereg_mr(pool_mr_);
  if (send_dispatch_.running()) send_dispatch_.stop();
}

sim::ValueTask<ib::IbAddr> TargetBufferManager::open() {
  pool_mr_ = co_await hca_.reg_mr(pool_.data(), pool_.size());
  qp_ = hca_.create_qp(send_cq_, recv_cq_);
  post_control_ring(*qp_, ring_);
  send_dispatch_.start(hca_.engine());
  co_return ib::IbAddr{hca_.node(), qp_->qpn()};
}

void TargetBufferManager::connect_to(ib::IbAddr source_control) {
  qp_->connect(source_control);
}

sim::Task TargetBufferManager::serve() {
  JOBMIG_EXPECTS_MSG(qp_ != nullptr && qp_->state() == ib::QpState::kRts,
                     "serve() before open()/connect_to()");
  std::vector<ib::WorkCompletion> batch;  // reused across wakes
  while (!done_seen_) {
    co_await recv_cq_.wait_batch(batch);
    for (const ib::WorkCompletion& wc : batch) {
      if (!wc.ok()) continue;
      const std::size_t slot = static_cast<std::size_t>(wc.wr_id - 1000);
      auto msg = wire::ControlMsg::decode(sim::ByteSpan(ring_[slot].data(), wc.byte_len));
      repost_control_slot(*qp_, ring_, wc.wr_id);
      JOBMIG_ASSERT_MSG(msg.has_value(), "undecodable buffer-manager control message");
      if (msg->op == wire::Op::kRequest) {
        ++active_pulls_;
        hca_.engine().spawn(pull_one(*msg));
      } else if (msg->op == wire::Op::kDone) {
        done_seen_ = true;
        rank_announced_.set();  // unblock next_announced_rank() consumers
        break;
      }
    }
  }
  while (active_pulls_ > 0) {
    co_await pulls_idle_.wait();
    pulls_idle_.reset();
  }
  for (const auto& [rank, complete] : stream_complete_) {
    JOBMIG_ASSERT_MSG(complete, "DONE received with an incomplete rank stream");
  }
  wire::ControlMsg ack;
  ack.op = wire::Op::kDoneAck;
  ack.ctx = ctx_;
  const std::uint64_t wr = next_wr_++;
  qp_->post_send(ib::SendWr{wr, ack.encode()});
  ib::WorkCompletion wc = co_await send_dispatch_.await(wr);
  JOBMIG_ASSERT(wc.ok());
  // Join the dispatcher before the caller may destroy this object.
  send_dispatch_.stop();
  while (send_dispatch_.running()) co_await sim::sleep_for(sim::Duration::us(1));
}

std::string_view to_string(RestartMode mode) {
  switch (mode) {
    case RestartMode::kFile: return "file";
    case RestartMode::kMemory: return "memory";
    case RestartMode::kPipelined: return "pipelined";
  }
  return "?";
}

sim::Task TargetBufferManager::pull_one(wire::ControlMsg req) {
  sim::Bytes& stream = streams_[req.rank];
  if (!stream_complete_.contains(req.rank)) stream_complete_[req.rank] = false;
  note_rank(req.rank);

  if (req.length > 0) {
    JOBMIG_EXPECTS_MSG(req.length <= cfg_.chunk_bytes, "oversized chunk advertised");
    telemetry::ScopedSpan chunk_span("pool.target", "pull chunk", /*async=*/true);
    // Link to the source-side checkpoint span whose submit advertised this
    // chunk (cross-node edge), falling back to the local pull phase.
    chunk_span.link_from(req.ctx.valid() ? req.ctx : ctx_);
    if (chunk_span.id() != telemetry::kNoSpan) {
      chunk_span.attr("rank", std::to_string(req.rank));
      chunk_span.attr("bytes", std::to_string(req.length));
    }
    // Wait for a free local chunk, pull, then reassemble at the advertised
    // stream offset ("concatenated into a complete checkpoint file").
    co_await free_chunks_.acquire();
    const std::size_t local_chunk = free_list_.front();
    free_list_.pop_front();
    if (telemetry::Telemetry* t = telemetry::current()) {
      t->trace.counter_sample("pool.target", "free_chunks",
                              static_cast<double>(free_list_.size()));
      t->metrics.gauge("pool.target.free_chunks").set(static_cast<double>(free_list_.size()));
    }
    std::byte* dst = pool_.data() + local_chunk * cfg_.chunk_bytes;

    const sim::TimePoint read_begin = hca_.engine().now();
    const std::uint64_t wr = next_wr_++;
    qp_->post_rdma_read(ib::RdmaWr{wr, dst, req.pool_offset, req.rkey, req.length});
    ib::WorkCompletion wc = co_await send_dispatch_.await(wr);
    JOBMIG_ASSERT_MSG(wc.ok(), "buffer-pool RDMA read failed");
    telemetry::observe_ns("pool.rdma_read_ns", hca_.engine().now() - read_begin);
    telemetry::count("pool.bytes_pulled", req.length);
    telemetry::count("pool.chunks_pulled");
    bytes_pulled_ += req.length;

    if (stream.size() < req.stream_offset + req.length) {
      stream.resize(req.stream_offset + req.length);
    }
    std::memcpy(stream.data() + req.stream_offset, dst, req.length);
    free_list_.push_back(local_chunk);
    free_chunks_.release();
    if (telemetry::Telemetry* t = telemetry::current()) {
      t->trace.counter_sample("pool.target", "free_chunks",
                              static_cast<double>(free_list_.size()));
      t->metrics.gauge("pool.target.free_chunks").set(static_cast<double>(free_list_.size()));
    }

    // Advance the contiguous watermark (chunks normally land in order; the
    // segment map absorbs any reordering) for on-the-fly readers.
    RankProgress& prog = progress_of(req.rank);
    prog.segments[req.stream_offset] = req.length;
    for (auto it = prog.segments.begin();
         it != prog.segments.end() && it->first <= prog.watermark;) {
      prog.watermark = std::max(prog.watermark, it->first + it->second);
      it = prog.segments.erase(it);
    }
    if (prog.expected_end && prog.watermark >= *prog.expected_end) prog.complete = true;
    prog.advanced.set();

    // Tell the source to recycle its chunk.
    wire::ControlMsg release;
    release.op = wire::Op::kRelease;
    release.chunk_index = req.chunk_index;
    release.ctx = chunk_span.context();
    const std::uint64_t rel_wr = next_wr_++;
    qp_->post_send(ib::SendWr{rel_wr, release.encode()});
    ib::WorkCompletion rel_wc = co_await send_dispatch_.await(rel_wr);
    JOBMIG_ASSERT(rel_wc.ok());
  }
  if (req.end_of_stream) {
    stream_complete_[req.rank] = true;
    RankProgress& prog = progress_of(req.rank);
    prog.expected_end = req.stream_offset + req.length;
    if (prog.watermark >= *prog.expected_end) prog.complete = true;
    prog.advanced.set();
  }

  --active_pulls_;
  if (active_pulls_ == 0) pulls_idle_.set();
}

TargetBufferManager::RankProgress& TargetBufferManager::progress_of(int rank) {
  return progress_[rank];
}

void TargetBufferManager::note_rank(int rank) {
  if (progress_.contains(rank)) return;
  progress_[rank];  // materialize
  announced_.push_back(rank);
  rank_announced_.set();
}

sim::ValueTask<int> TargetBufferManager::next_announced_rank() {
  while (announced_.empty()) {
    if (done_seen_) co_return -1;
    co_await rank_announced_.wait();
    rank_announced_.reset();
  }
  const int rank = announced_.front();
  announced_.pop_front();
  co_return rank;
}

namespace {

/// RestartSource that tails a rank's stream while chunks are still landing.
class StreamingSource final : public proc::RestartSource {
 public:
  StreamingSource(TargetBufferManager& mgr, int rank) : mgr_(mgr), rank_(rank) {}

  sim::ValueTask<sim::Bytes> read(std::uint64_t max_len) override {
    auto& prog = mgr_.progress_of(rank_);
    while (prog.watermark <= offset_ && !prog.complete) {
      co_await prog.advanced.wait();
      prog.advanced.reset();
    }
    if (offset_ >= prog.watermark) co_return sim::Bytes{};  // complete: EOF
    const std::uint64_t n = std::min<std::uint64_t>(max_len, prog.watermark - offset_);
    const sim::Bytes& stream = mgr_.stream_of(rank_);
    sim::Bytes out(stream.begin() + static_cast<std::ptrdiff_t>(offset_),
                   stream.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
    offset_ += n;
    co_return out;
  }

 private:
  TargetBufferManager& mgr_;
  int rank_;
  std::uint64_t offset_ = 0;
};

}  // namespace

std::unique_ptr<proc::RestartSource> TargetBufferManager::make_streaming_source(int rank) {
  note_rank(rank);  // reader may attach before the first chunk
  return std::make_unique<StreamingSource>(*this, rank);
}

const sim::Bytes& TargetBufferManager::stream_of(int rank) const {
  auto it = streams_.find(rank);
  JOBMIG_EXPECTS_MSG(it != streams_.end(), "no stream for rank");
  return it->second;
}

sim::Bytes TargetBufferManager::take_stream(int rank) {
  auto it = streams_.find(rank);
  JOBMIG_EXPECTS_MSG(it != streams_.end(), "no stream for rank");
  sim::Bytes out = std::move(it->second);
  streams_.erase(it);
  return out;
}

std::vector<int> TargetBufferManager::ranks() const {
  std::vector<int> out;
  for (const auto& [rank, stream] : streams_) out.push_back(rank);
  return out;
}

// ---- Source side -------------------------------------------------------------

SourceBufferManager::SourceBufferManager(ib::Hca& hca, PoolConfig cfg) : hca_(hca), cfg_(cfg) {
  pool_.resize(cfg_.pool_bytes);
  for (std::size_t c = 0; c < cfg_.chunks(); ++c) free_list_.push_back(c);
  free_chunks_.release(cfg_.chunks());
}

SourceBufferManager::~SourceBufferManager() {
  if (pool_mr_ != nullptr) hca_.dereg_mr(pool_mr_);
  if (send_dispatch_.running()) send_dispatch_.stop();
}

sim::ValueTask<ib::IbAddr> SourceBufferManager::open(ib::IbAddr target_control) {
  pool_mr_ = co_await hca_.reg_mr(pool_.data(), pool_.size());
  qp_ = hca_.create_qp(send_cq_, recv_cq_);
  post_control_ring(*qp_, ring_);
  qp_->connect(target_control);
  send_dispatch_.start(hca_.engine());
  co_return ib::IbAddr{hca_.node(), qp_->qpn()};
}

void SourceBufferManager::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  hca_.engine().spawn(release_loop());
}

sim::Task SourceBufferManager::release_loop() {
  std::vector<ib::WorkCompletion> batch;  // reused across wakes
  bool stop = false;
  while (!stop) {
    co_await recv_cq_.wait_batch(batch);
    for (const ib::WorkCompletion& wc : batch) {
      if (!wc.ok()) continue;
      const std::size_t slot = static_cast<std::size_t>(wc.wr_id - 1000);
      auto msg = wire::ControlMsg::decode(sim::ByteSpan(ring_[slot].data(), wc.byte_len));
      repost_control_slot(*qp_, ring_, wc.wr_id);
      JOBMIG_ASSERT(msg.has_value());
      if (msg->op == wire::Op::kRelease) {
        free_list_.push_back(msg->chunk_index);
        free_chunks_.release();
        JOBMIG_ASSERT(in_flight_ > 0);
        --in_flight_;
        telemetry::gauge_set("pool.source.in_flight", static_cast<double>(in_flight_));
        if (in_flight_ == 0) chunks_idle_.set();
      } else if (msg->op == wire::Op::kDoneAck) {
        done_ack_.set();
        stop = true;
        break;
      }
    }
  }
  running_ = false;
}

sim::ValueTask<SourceBufferManager::Chunk> SourceBufferManager::acquire_chunk() {
  const sim::TimePoint wait_begin = hca_.engine().now();
  co_await free_chunks_.acquire();
  telemetry::observe_ns("pool.acquire_wait_ns", hca_.engine().now() - wait_begin);
  JOBMIG_ASSERT(!free_list_.empty());
  Chunk chunk{free_list_.front(), 0};
  free_list_.pop_front();
  if (telemetry::Telemetry* t = telemetry::current()) {
    t->trace.counter_sample("pool.source", "free_chunks",
                            static_cast<double>(free_list_.size()));
    t->metrics.gauge("pool.source.free_chunks").set(static_cast<double>(free_list_.size()));
  }
  co_return chunk;
}

sim::Task SourceBufferManager::submit(Chunk chunk, int rank, std::uint64_t stream_offset,
                                      bool end_of_stream) {
  wire::ControlMsg req;
  req.op = wire::Op::kRequest;
  req.chunk_index = static_cast<std::uint32_t>(chunk.index);
  req.rkey = pool_mr_->rkey();
  req.pool_offset = chunk.index * cfg_.chunk_bytes;
  req.length = chunk.fill;
  req.rank = rank;
  req.stream_offset = stream_offset;
  req.end_of_stream = end_of_stream;
  req.ctx = ctx_;

  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  bytes_submitted_ += chunk.fill;
  telemetry::count("pool.chunks_submitted");
  telemetry::count("pool.bytes_submitted", chunk.fill);
  telemetry::gauge_set("pool.source.in_flight", static_cast<double>(in_flight_));
  const std::uint64_t wr = next_wr_++;
  qp_->post_send(ib::SendWr{wr, req.encode()});
  ib::WorkCompletion wc = co_await send_dispatch_.await(wr);
  JOBMIG_ASSERT_MSG(wc.ok(), "buffer-pool request send failed");
}

namespace {

/// BLCR sink writing one rank's checkpoint stream through the source pool.
class PoolSink final : public proc::CheckpointSink {
 public:
  PoolSink(SourceBufferManager& mgr, int rank) : mgr_(mgr), rank_(rank) {}

  sim::Task write(sim::ByteSpan chunk_data) override {
    std::size_t pos = 0;
    while (pos < chunk_data.size()) {
      if (!current_) current_ = co_await mgr_.acquire_chunk();
      const std::uint64_t room = mgr_.config().chunk_bytes - current_->fill;
      const std::uint64_t n = std::min<std::uint64_t>(room, chunk_data.size() - pos);
      std::memcpy(mgr_.chunk_data(current_->index) + current_->fill, chunk_data.data() + pos,
                  n);
      current_->fill += n;
      pos += n;
      if (current_->fill == mgr_.config().chunk_bytes) {
        co_await flush(/*end_of_stream=*/false);
      }
    }
  }

  sim::Task finish() override {
    if (current_ && current_->fill > 0) {
      co_await flush(/*end_of_stream=*/true);
      co_return;
    }
    // Stream ended exactly on a chunk boundary: send a payload-free marker.
    wire::ControlMsg eos;
    eos.op = wire::Op::kRequest;
    eos.chunk_index = UINT32_MAX;
    eos.length = 0;
    eos.rank = rank_;
    eos.stream_offset = stream_offset_;
    eos.end_of_stream = true;
    co_await mgr_.send_marker(eos);
  }

 private:
  sim::Task flush(bool end_of_stream) {
    SourceBufferManager::Chunk c = *current_;
    current_.reset();
    const std::uint64_t offset = stream_offset_;
    stream_offset_ += c.fill;
    co_await mgr_.submit(c, rank_, offset, end_of_stream);
  }

  SourceBufferManager& mgr_;
  int rank_;
  std::optional<SourceBufferManager::Chunk> current_;
  std::uint64_t stream_offset_ = 0;
};

}  // namespace

std::unique_ptr<proc::CheckpointSink> SourceBufferManager::make_sink(int rank) {
  return std::make_unique<PoolSink>(*this, rank);
}

sim::Task SourceBufferManager::send_marker(wire::ControlMsg msg) {
  msg.ctx = ctx_;
  const std::uint64_t wr = next_wr_++;
  qp_->post_send(ib::SendWr{wr, msg.encode()});
  ib::WorkCompletion wc = co_await send_dispatch_.await(wr);
  JOBMIG_ASSERT(wc.ok());
}

sim::Task SourceBufferManager::finish() {
  while (in_flight_ > 0) {
    co_await chunks_idle_.wait();
    chunks_idle_.reset();
  }
  wire::ControlMsg done;
  done.op = wire::Op::kDone;
  co_await send_marker(done);
  while (!done_ack_.is_set()) co_await done_ack_.wait();
  // Join the service loops before the caller may destroy this object: a
  // loop parked on a member CQ would otherwise wake into freed memory.
  send_dispatch_.stop();
  while (send_dispatch_.running() || running_) co_await sim::sleep_for(sim::Duration::us(1));
}

// ---- Restart source ----------------------------------------------------------

sim::ValueTask<sim::Bytes> BufferedStreamSource::read(std::uint64_t max_len) {
  const std::uint64_t n = std::min<std::uint64_t>(max_len, stream_.size() - offset_);
  if (n == 0) co_return sim::Bytes{};
  if (disk_ != nullptr) co_await disk_->read(n);
  sim::Bytes out(stream_.begin() + static_cast<std::ptrdiff_t>(offset_),
                 stream_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  co_return out;
}

}  // namespace jobmig::migration
