#include "jobmig/migration/cr_baseline.hpp"

namespace jobmig::migration {

CheckpointRestart::CheckpointRestart(mpr::Job& job, FsSelector fs_for_rank)
    : job_(job), fs_for_rank_(std::move(fs_for_rank)) {
  JOBMIG_EXPECTS(fs_for_rank_ != nullptr);
}

sim::ValueTask<CrReport> CheckpointRestart::checkpoint_all() {
  CrReport report;
  sim::Engine& engine = job_.engine();
  // Serialize against migrations and other checkpoints.
  auto ft_lock = co_await job_.acquire_ft_lock();
  if (job_.app_done()) co_return report;  // nothing left to protect
  const sim::TimePoint t0 = engine.now();

  // ---- Job Stall: identical to the migration Phase 1, for every rank ----
  for (int r = 0; r < job_.size(); ++r) job_.proc(r).request_park();
  for (int r = 0; r < job_.size(); ++r) co_await job_.proc(r).wait_parked();
  for (int r = 0; r < job_.size(); ++r) co_await job_.proc(r).drain_and_teardown();
  const sim::TimePoint t1 = engine.now();

  // ---- Checkpoint: all ranks dump concurrently ----
  sim::TaskGroup group(engine);
  for (int r = 0; r < job_.size(); ++r) {
    group.spawn([](mpr::Job& job, FsSelector& select, int rank, CrReport& rep) -> sim::Task {
      storage::FileSystem& fs = select(rank);
      storage::FilePtr file = co_await fs.create(checkpoint_path(rank));
      proc::FileSink sink(file);
      co_await job.node_of(rank).blcr->checkpoint(job.proc(rank).sim_process(), sink);
      rep.bytes_written += sink.bytes_written();
      ++rep.checkpoint_files;
    }(job_, fs_for_rank_, r, report));
  }
  co_await group.wait();
  const sim::TimePoint t2 = engine.now();

  // ---- Resume: rebuild endpoints, reopen the gates ----
  sim::TaskGroup resume_group(engine);
  for (int r = 0; r < job_.size(); ++r) {
    resume_group.spawn(job_.proc(r).rebuild_and_resume());
  }
  co_await resume_group.wait();
  const sim::TimePoint t3 = engine.now();

  report.stall = t1 - t0;
  report.checkpoint = t2 - t1;
  report.resume = t3 - t2;
  co_return report;
}

sim::ValueTask<std::vector<proc::SimProcessPtr>> CheckpointRestart::restart_all(
    sim::Duration* elapsed) {
  sim::Engine& engine = job_.engine();
  auto ft_lock = co_await job_.acquire_ft_lock();
  const sim::TimePoint t0 = engine.now();
  std::vector<proc::SimProcessPtr> restored(static_cast<std::size_t>(job_.size()));
  sim::TaskGroup group(engine);
  for (int r = 0; r < job_.size(); ++r) {
    group.spawn([](mpr::Job& job, FsSelector& select, int rank,
                   std::vector<proc::SimProcessPtr>& out) -> sim::Task {
      storage::FileSystem& fs = select(rank);
      storage::FilePtr file = co_await fs.open(checkpoint_path(rank));
      JOBMIG_ASSERT_MSG(file != nullptr, "missing checkpoint file at restart");
      proc::FileSource source(file);
      out[static_cast<std::size_t>(rank)] = co_await job.node_of(rank).blcr->restart(source);
    }(job_, fs_for_rank_, r, restored));
  }
  co_await group.wait();
  if (elapsed != nullptr) *elapsed = engine.now() - t0;
  co_return restored;
}

sim::ValueTask<CrReport> CheckpointRestart::full_cycle() {
  CrReport report = co_await checkpoint_all();
  sim::Duration restart_time{};
  auto restored = co_await restart_all(&restart_time);
  JOBMIG_ASSERT(static_cast<int>(restored.size()) == job_.size());
  report.restart = restart_time;
  co_return report;
}

}  // namespace jobmig::migration
