#include "jobmig/migration/controller.hpp"

#include <set>
#include <sstream>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/flight_recorder.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::migration {

using namespace sim::literals;

namespace {

/// Builds an event in the given job's migration space. Kept out of co_await
/// expressions: GCC 12 rejects initializer_list temporaries inside awaited
/// full-expressions ("array used as initializer"), so callers hoist event
/// construction into a plain statement first.
ftb::FtbEvent mig_event(const std::string& space, const char* name, ftb::Severity sev,
                        std::map<std::string, std::string> kv) {
  return ftb::FtbEvent{space, name, sev, encode_kv(kv)};
}

/// FTB client names stay byte-identical for job 0; orchestrated jobs get
/// job-qualified names so per-node clients of different jobs don't collide.
std::string job_name(int job_id, std::string base) {
  if (job_id == 0) return base;
  return "j" + std::to_string(job_id) + ":" + std::move(base);
}

}  // namespace

namespace {

[[noreturn]] void throw_aborted(const ftb::FtbEvent& ev) {
  auto kv = decode_kv(ev.payload);
  std::string reason = ev.name;
  if (kv.contains("host")) reason += " on " + kv["host"];
  throw MigrationAborted(reason);
}

}  // namespace

sim::ValueTask<ftb::FtbEvent> EventWaiter::await_named(std::string name) {
  if (!abort_on_.empty()) {
    for (const ftb::FtbEvent& ev : stash_) {
      if (ev.name == abort_on_) throw_aborted(ev);
    }
  }
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->name == name) {
      ftb::FtbEvent ev = std::move(*it);
      stash_.erase(it);
      co_return ev;
    }
  }
  while (true) {
    ftb::FtbEvent ev = co_await client_.next_event();
    if (!abort_on_.empty() && ev.name == abort_on_) throw_aborted(ev);
    if (ev.name == name) co_return ev;
    stash_.push_back(std::move(ev));
  }
}

namespace {

std::string encode_ranks(const std::vector<int>& ranks) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) os << ',';
    os << ranks[i];
  }
  return os.str();
}

std::vector<int> decode_ranks(const std::string& s) {
  std::vector<int> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

ftb::Subscription all_mig_events(const std::string& space) {
  return ftb::Subscription{space, "*", ftb::Severity::kInfo};
}

}  // namespace

// ---- NodeCrDaemon ------------------------------------------------------------

NodeCrDaemon::NodeCrDaemon(launch::NodeLaunchAgent& nla, mpr::Job& job,
                           ftb::FtbAgent& ftb_agent, MigrationOptions opts)
    : nla_(nla), job_(job), ftb_agent_(ftb_agent),
      ftb_(ftb_agent, job_name(job.job_id(), "crd:" + nla.hostname())),
      space_(mig_space_for(job.job_id())),
      track_(job_name(job.job_id(), "crd:" + nla.hostname())), opts_(opts) {
  // The daemon client only consumes FTB_MIGRATE of its own job's space; each
  // cycle opens its own client for the cycle's event exchange, so no two
  // coroutines ever share one inbox — and no two jobs share a protocol.
  ftb_.subscribe(ftb::Subscription{space_, kEvMigrate, ftb::Severity::kInfo});
}

void NodeCrDaemon::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  nla_.env().engine->spawn(event_loop());
}

sim::Task NodeCrDaemon::event_loop() {
  while (running_) {
    ftb::FtbEvent ev = co_await ftb_.next_event();
    if (!running_) break;
    co_await handle_migrate(std::move(ev));
  }
}

sim::Task NodeCrDaemon::handle_migrate(ftb::FtbEvent migrate_ev) {
  auto mig_kv = decode_kv(migrate_ev.payload);
  const std::string source_host = mig_kv["src"];
  const std::string target_host = mig_kv["dst"];
  const telemetry::TraceContext cycle_ctx = migrate_ev.ctx;
  const bool is_source = nla_.hostname() == source_host;
  const bool is_target = nla_.hostname() == target_host;

  // Cycle-scoped client: subscribed now, at FTB_MIGRATE receipt, so every
  // later event of this cycle (which needs at least one network hop to get
  // here) is guaranteed to be captured.
  ftb::FtbClient cycle_client(ftb_agent_, job_name(job_.job_id(), "cyc:" + nla_.hostname()));
  cycle_client.subscribe(all_mig_events(space_));

  if (is_target) {
    // The spare's duties span phases 2-4 and run concurrently with the
    // stall phase on the hosting nodes.
    nla_.env().engine->spawn(target_routine(source_host, cycle_ctx));
  }

  const std::vector<int> local_ranks = nla_.local_ranks();
  if (local_ranks.empty()) {
    if (is_target) {
      // Hold the event loop until the cycle finishes so migrations stay
      // strictly serialized on this node.
      co_await target_done_.wait();
      target_done_.reset();
    }
    co_return;  // idle spare or drained node
  }

  // ---- Phase 1: Job Stall (per-process C/R-thread work) ----
  telemetry::ScopedSpan stall_span(track_, "stall");
  stall_span.link_from(cycle_ctx);
  stall_span.set_job(job_.job_id());
  telemetry::flight_note("crd", nla_.hostname() + ": stall begin", cycle_ctx.trace_id,
                         stall_span.id(), job_.job_id());
  // Ranks stamp this node's stall context into their park-agreement and
  // drain traffic, so cross-rank mpr messages join the cycle's DAG.
  const telemetry::TraceContext stall_ctx_early = stall_span.context();
  for (int r : local_ranks) job_.proc(r).set_trace_context(stall_ctx_early);
  for (int r : local_ranks) job_.proc(r).request_park();
  for (int r : local_ranks) {
    telemetry::ScopedSpan park(track_, "park rank " + std::to_string(r),
                               /*async=*/true);
    co_await job_.proc(r).wait_parked();
  }
  for (int r : local_ranks) {
    telemetry::ScopedSpan drain(track_, "drain rank " + std::to_string(r),
                                /*async=*/true);
    co_await job_.proc(r).drain_and_teardown();
  }
  const telemetry::TraceContext stall_ctx = stall_span.context();
  stall_span.end();
  ftb::FtbEvent suspend_done = mig_event(space_, kEvSuspendDone, ftb::Severity::kInfo,
                                         {{"host", nla_.hostname()}});
  suspend_done.ctx = stall_ctx;
  co_await ftb_.publish(std::move(suspend_done));

  if (is_source) {
    co_await source_routine(target_host, cycle_client);
  } else {
    // Ranks staying put enter the migration barrier and rebuild once the
    // restarted ranks re-join (paper: "enter a migration barrier and
    // remain stalled").
    telemetry::ScopedSpan resume_span(track_, "resume");
    resume_span.link_from(stall_ctx);
    resume_span.set_job(job_.job_id());
    sim::TaskGroup group(*nla_.env().engine);
    for (int r : local_ranks) group.spawn(stay_routine(r, stall_ctx));
    co_await group.wait();
    // The barrier released because the restarted ranks re-joined: link that
    // edge so the resume leg of the DAG runs through the target node.
    resume_span.link_from(job_.barrier_release_ctx());
    for (int r : local_ranks) job_.proc(r).set_trace_context({});
    const telemetry::TraceContext resume_ctx = resume_span.context();
    resume_span.end();
    ftb::FtbEvent resume_done = mig_event(space_, kEvResumeDone, ftb::Severity::kInfo,
                                          {{"host", nla_.hostname()}});
    resume_done.ctx = resume_ctx;
    co_await ftb_.publish(std::move(resume_done));
  }
}

sim::Task NodeCrDaemon::stay_routine(int rank, telemetry::TraceContext cycle_ctx) {
  telemetry::ScopedSpan span(track_, "barrier rank " + std::to_string(rank),
                             /*async=*/true);
  span.link_from(cycle_ctx);
  job_.note_barrier_entry(span.context());
  co_await job_.migration_barrier_enter();
  span.link_from(job_.barrier_release_ctx());
  co_await job_.proc(rank).rebuild_and_resume();
}

sim::Task NodeCrDaemon::source_routine(std::string target_host, ftb::FtbClient& cycle_client) {
  (void)target_host;
  EventWaiter waiter(cycle_client);
  // Wait for global consistency before checkpointing (end of Phase 1).
  ftb::FtbEvent all_susp = co_await waiter.await_named(kEvAllSuspended);

  // Pull-channel handshake with the target's buffer manager.
  telemetry::ScopedSpan setup_span(track_, "pull setup");
  setup_span.link_from(all_susp.ctx);
  ftb::FtbEvent ready = co_await waiter.await_named(kEvPullReady);
  setup_span.link_from(ready.ctx);
  auto rkv = decode_kv(ready.payload);
  ib::IbAddr target_addr{static_cast<ib::NodeId>(std::stoul(rkv["node"])),
                         static_cast<ib::QpNum>(std::stoul(rkv["qpn"]))};

  SourceBufferManager smgr(*nla_.env().hca, opts_.pool);
  ib::IbAddr my_addr = co_await smgr.open(target_addr);
  ftb::FtbEvent src_ready_ev = mig_event(
      space_, kEvPullSrcReady, ftb::Severity::kInfo,
      {{"node", std::to_string(my_addr.node)}, {"qpn", std::to_string(my_addr.qpn)}});
  src_ready_ev.ctx = setup_span.context();
  co_await ftb_.publish(std::move(src_ready_ev));
  ftb::FtbEvent connected = co_await waiter.await_named(kEvPullConnected);
  const telemetry::TraceContext setup_ctx = setup_span.context();
  setup_span.end();
  smgr.start();

  // ---- Phase 2: checkpoint every local rank through the pool ----
  telemetry::ScopedSpan ckpt_span(track_, "checkpoint");
  ckpt_span.link_from(setup_ctx);
  ckpt_span.set_job(job_.job_id());
  // The target's FTB_PULL_CONNECTED reply lands here, in the successor
  // span, not back in "pull setup" which seeded it (2-cycle otherwise).
  ckpt_span.link_from(connected.ctx);
  telemetry::flight_note("crd", nla_.hostname() + ": checkpoint begin",
                         setup_ctx.trace_id, ckpt_span.id(), job_.job_id());
  smgr.set_trace_context(ckpt_span.context());
  const std::vector<int> ranks = nla_.local_ranks();
  std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
  sim::TaskGroup group(*nla_.env().engine);
  for (int r : ranks) {
    sinks.push_back(smgr.make_sink(r));
    group.spawn([](NodeCrDaemon& self, int rank, proc::CheckpointSink& sink) -> sim::Task {
      // Concurrent per-rank checkpoints: async spans, they overlap freely.
      telemetry::ScopedSpan span(self.track_, "checkpoint rank " + std::to_string(rank),
                                 /*async=*/true);
      co_await self.nla_.env().blcr->checkpoint(self.job_.proc(rank).sim_process(), sink);
    }(*this, r, *sinks.back()));
  }
  co_await group.wait();
  co_await smgr.finish();
  const telemetry::TraceContext ckpt_ctx = ckpt_span.context();
  ckpt_span.end();

  ftb::FtbEvent piic_ev = mig_event(
      space_, kEvMigratePiic, ftb::Severity::kInfo,
      {{"host", nla_.hostname()}, {"bytes", std::to_string(smgr.bytes_submitted())}});
  piic_ev.ctx = ckpt_ctx;
  co_await ftb_.publish(std::move(piic_ev));

  // The node is drained: terminate the local (now stale) processes.
  for (int r : ranks) job_.proc(r).kill();
}

sim::Task NodeCrDaemon::target_routine(std::string source_host, telemetry::TraceContext cycle_ctx) {
  (void)source_host;
  // Own cycle client: opened before any counterpart can publish (their
  // events need at least one network hop to reach this agent).
  ftb::FtbClient cycle_client(ftb_agent_, job_name(job_.job_id(), "cyt:" + nla_.hostname()));
  cycle_client.subscribe(all_mig_events(space_));
  EventWaiter waiter(cycle_client);
  target_mgr_ = std::make_unique<TargetBufferManager>(*nla_.env().hca, opts_.pool);
  telemetry::ScopedSpan setup_span(track_, "pull setup");
  setup_span.link_from(cycle_ctx);
  ib::IbAddr addr = co_await target_mgr_->open();
  ftb::FtbEvent pull_ready_ev = mig_event(
      space_, kEvPullReady, ftb::Severity::kInfo,
      {{"node", std::to_string(addr.node)}, {"qpn", std::to_string(addr.qpn)}});
  pull_ready_ev.ctx = setup_span.context();
  const telemetry::TraceContext setup_ctx = setup_span.context();
  setup_span.end();
  co_await ftb_.publish(std::move(pull_ready_ev));
  // The source's FTB_PULL_SRC_READY reply lands in a fresh "connect" span
  // (not back in "pull setup", which seeded it — that would be a 2-cycle),
  // so the handshake traces as ready -> src-ready -> connect -> connected.
  ftb::FtbEvent src_ready = co_await waiter.await_named(kEvPullSrcReady);
  telemetry::ScopedSpan connect_span(track_, "connect");
  connect_span.link_from(setup_ctx);
  connect_span.link_from(src_ready.ctx);
  auto skv = decode_kv(src_ready.payload);
  target_mgr_->connect_to(ib::IbAddr{static_cast<ib::NodeId>(std::stoul(skv["node"])),
                                     static_cast<ib::QpNum>(std::stoul(skv["qpn"]))});
  ftb::FtbEvent connected_ev = mig_event(space_, kEvPullConnected, ftb::Severity::kInfo, {});
  connected_ev.ctx = connect_span.context();
  const telemetry::TraceContext connect_ctx = connect_span.context();
  connect_span.end();
  co_await ftb_.publish(std::move(connected_ev));

  // ---- Phase 2 (target side): pull chunks until the source is done ----
  // In pipelined mode the paper's §IV-A revision runs here too: BLCR
  // restarts consume each rank's stream on the fly, overlapping the
  // transfer, so Phase 3 shrinks to bookkeeping.
  telemetry::ScopedSpan pull_span(track_, "pull");
  pull_span.link_from(connect_ctx);
  pull_span.set_job(job_.job_id());
  telemetry::flight_note("crd", nla_.hostname() + ": pull begin", connect_ctx.trace_id,
                         pull_span.id(), job_.job_id());
  target_mgr_->set_trace_context(pull_span.context());
  std::map<int, proc::SimProcessPtr> pipelined_images;
  if (opts_.restart_mode == RestartMode::kPipelined) {
    sim::TaskGroup pipeline(*nla_.env().engine);
    pipeline.spawn([](NodeCrDaemon& self, std::map<int, proc::SimProcessPtr>& images)
                       -> sim::Task {
      sim::TaskGroup per_rank(*self.nla_.env().engine);
      while (true) {
        const int rank = co_await self.target_mgr_->next_announced_rank();
        if (rank < 0) break;
        per_rank.spawn([](NodeCrDaemon& s, int r,
                          std::map<int, proc::SimProcessPtr>& out) -> sim::Task {
          auto source = s.target_mgr_->make_streaming_source(r);
          out[r] = co_await s.nla_.env().blcr->restart(*source);
        }(self, rank, images));
      }
      co_await per_rank.wait();
    }(*this, pipelined_images));
    co_await target_mgr_->serve();
    co_await pipeline.wait();
  } else {
    co_await target_mgr_->serve();
  }
  pull_span.end();

  // ---- Phase 3: restart the migrated ranks from the transferred images ----
  ftb::FtbEvent restart_ev = co_await waiter.await_named(kEvRestart);
  auto rkv = decode_kv(restart_ev.payload);
  JOBMIG_ASSERT_MSG(rkv["dst"] == nla_.hostname(), "FTB_RESTART routed to the wrong node");
  const std::vector<int> ranks = decode_ranks(rkv["ranks"]);

  telemetry::ScopedSpan restart_span(track_, "restart");
  restart_span.link_from(restart_ev.ctx);
  restart_span.set_job(job_.job_id());
  telemetry::flight_note("crd", nla_.hostname() + ": restart begin", restart_ev.ctx.trace_id,
                         restart_span.id(), job_.job_id());
  if (opts_.restart_mode == RestartMode::kPipelined) {
    for (int r : ranks) {
      auto it = pipelined_images.find(r);
      JOBMIG_ASSERT_MSG(it != pipelined_images.end(), "pipelined image missing for rank");
      auto fresh = job_.make_unwired_proc(r, nla_.env());
      fresh->adopt_sim_process(std::move(it->second));
      job_.replace_proc(r, std::move(fresh));
    }
  } else {
    storage::BlockDevice* restart_disk =
        opts_.restart_mode == RestartMode::kFile ? &nla_.env().scratch->device() : nullptr;
    sim::TaskGroup group(*nla_.env().engine);
    for (int r : ranks) {
      group.spawn([](NodeCrDaemon& self, int rank, storage::BlockDevice* disk) -> sim::Task {
        telemetry::ScopedSpan span(self.track_, "restart rank " + std::to_string(rank),
                                   /*async=*/true);
        BufferedStreamSource source(self.target_mgr_->take_stream(rank), disk);
        proc::SimProcessPtr image = co_await self.nla_.env().blcr->restart(source);
        auto fresh = self.job_.make_unwired_proc(rank, self.nla_.env());
        fresh->adopt_sim_process(std::move(image));
        self.job_.replace_proc(rank, std::move(fresh));
      }(*this, r, restart_disk));
    }
    co_await group.wait();
  }
  const telemetry::TraceContext restart_ctx = restart_span.context();
  restart_span.end();
  ftb::FtbEvent restart_done = mig_event(space_, kEvRestartDone, ftb::Severity::kInfo,
                                         {{"host", nla_.hostname()}});
  restart_done.ctx = restart_ctx;
  co_await ftb_.publish(std::move(restart_done));

  // ---- Phase 4: re-join the job and resume ----
  telemetry::ScopedSpan resume_span(track_, "resume");
  resume_span.link_from(restart_ctx);
  const telemetry::TraceContext resume_seed = resume_span.context();
  sim::TaskGroup resume_group(*nla_.env().engine);
  for (int r : ranks) {
    resume_group.spawn([](NodeCrDaemon& self, int rank,
                          telemetry::TraceContext seed) -> sim::Task {
      telemetry::ScopedSpan span(self.track_, "resume rank " + std::to_string(rank),
                                 /*async=*/true);
      span.link_from(seed);
      // A re-joining rank may be the barrier's releaser; stamp its context
      // so every waiting rank links the release back to it.
      self.job_.note_barrier_entry(span.context());
      co_await self.job_.migration_barrier_enter();
      co_await self.job_.proc(rank).rebuild_and_resume();
      self.job_.relaunch_app_on(rank);
    }(*this, r, resume_seed));
  }
  co_await resume_group.wait();
  const telemetry::TraceContext resume_ctx = resume_span.context();
  resume_span.end();
  ftb::FtbEvent resume_done = mig_event(space_, kEvResumeDone, ftb::Severity::kInfo,
                                        {{"host", nla_.hostname()}});
  resume_done.ctx = resume_ctx;
  co_await ftb_.publish(std::move(resume_done));
  target_mgr_.reset();
  target_done_.set();
}

// ---- MigrationManager ----------------------------------------------------------

MigrationManager::MigrationManager(launch::JobManager& jm, mpr::Job& job,
                                   ftb::FtbAgent& ftb_agent, MigrationOptions opts)
    : jm_(jm), job_(job), ftb_agent_(ftb_agent),
      ftb_(ftb_agent, job_name(job.job_id(), "migration_manager")),
      space_(mig_space_for(job.job_id())),
      opts_(opts) {}  // ftb_ publishes only; cycle clients do the listening

sim::ValueTask<MigrationReport> MigrationManager::migrate(const std::string& source_host) {
  return migrate_impl(source_host, nullptr);
}

sim::ValueTask<MigrationReport> MigrationManager::migrate(const std::string& source_host,
                                                          MigrationGrant grant) {
  co_return co_await migrate_impl(source_host, &grant);
}

sim::ValueTask<MigrationReport> MigrationManager::migrate_impl(std::string source_host,
                                                               const MigrationGrant* grant) {
  JOBMIG_EXPECTS_MSG(!cycle_active_, "one migration cycle at a time (per job)");
  // Serialize against other FT operations of this job (periodic
  // checkpoints); cross-job node exclusivity is the orchestrator's lease.
  auto ft_lock = co_await job_.acquire_ft_lock();
  cycle_active_ = true;
  const int job_id = job_.job_id();
  const std::string mgr_track = job_name(job_id, "migmgr");

  launch::NodeLaunchAgent* src = jm_.nla_for_host(source_host);
  JOBMIG_EXPECTS_MSG(src != nullptr, "unknown source host");
  JOBMIG_EXPECTS_MSG(!src->local_ranks().empty(), "source node hosts no ranks");
  launch::NodeLaunchAgent* dst =
      grant != nullptr ? jm_.nla_for_host(grant->target_host) : jm_.find_spare();
  JOBMIG_EXPECTS_MSG(dst != nullptr, grant != nullptr ? "granted target host unknown to this job"
                                                      : "no spare node available");
  JOBMIG_EXPECTS_MSG(dst->state() == launch::NlaState::kSpare,
                     "migration target must be a spare");
  const std::vector<int> ranks = src->local_ranks();

  // Hosts that must report suspension (everyone currently hosting ranks).
  std::set<std::string> hosting;
  for (int r = 0; r < job_.size(); ++r) hosting.insert(job_.node_of(r).hostname);

  job_.configure_migration_barrier();
  // Cycle-scoped client: subscribed before FTB_MIGRATE goes out.
  ftb::FtbClient cycle_client(ftb_agent_, job_name(job_id, "migmgr_cycle"));
  cycle_client.subscribe(all_mig_events(space_));
  if (space_ != kMigSpace) {
    // Fail-stop announcements stay on the legacy space (they are per node,
    // not per job): orchestrated cycles listen there too so a node death
    // still aborts them.
    cycle_client.subscribe(ftb::Subscription{kMigSpace, kEvNodeDead, ftb::Severity::kInfo});
  }
  EventWaiter waiter(cycle_client);
  waiter.abort_on(kEvNodeDead);
  MigrationReport report;
  report.source_host = source_host;
  report.target_host = dst->hostname();
  report.migrated_ranks = ranks;
  report.job_id = job_id;

  telemetry::ScopedSpan cycle_span(mgr_track, "migration cycle");
  if (telemetry::Telemetry* t = telemetry::current()) {
    report.trace_id = t->new_trace_id();
    cycle_span.set_trace(report.trace_id);
  }
  cycle_span.set_job(job_id);
  cycle_span.attr("src", source_host);
  cycle_span.attr("dst", dst->hostname());
  cycle_span.attr("ranks", encode_ranks(ranks));
  if (grant != nullptr) cycle_span.attr("lease", std::to_string(grant->lease_id));
  telemetry::flight_note("mig", "cycle begin " + source_host + " -> " + dst->hostname(),
                         report.trace_id, cycle_span.id(), job_id);

  const sim::TimePoint t0 = jm_.engine().now();
  sim::TimePoint t1 = t0, t2 = t0, t3 = t0, t4 = t0;
  // Context the next phase links from (the previous phase's last span), so
  // the four phases chain into one causal backbone. Completion replies land
  // in nested "await ..." collect spans rather than the phase span that
  // seeded the work — linking a reply back into its own seed would put a
  // 2-cycle in the span DAG and break critical-path extraction.
  telemetry::TraceContext backbone{};
  try {
    {
      // ---- Phase 1 ends when every hosting node reports drained ----
      telemetry::ScopedSpan stall_span(mgr_track, "Stall");
      stall_span.set_job(job_id);
      stall_span.set_trace(report.trace_id);
      ftb::FtbEvent migrate_ev = mig_event(space_, kEvMigrate, ftb::Severity::kWarning,
                                           {{"src", source_host}, {"dst", dst->hostname()}});
      migrate_ev.ctx = stall_span.context();
      co_await ftb_.publish(std::move(migrate_ev));

      telemetry::ScopedSpan collect_span(mgr_track, "await suspend-done");
      collect_span.set_job(job_id);
      collect_span.set_trace(report.trace_id);
      std::set<std::string> suspended;
      while (suspended.size() < hosting.size()) {
        ftb::FtbEvent ev = co_await waiter.await_named(kEvSuspendDone);
        collect_span.link_from(ev.ctx);
        suspended.insert(decode_kv(ev.payload)["host"]);
      }
      ftb::FtbEvent all_suspended = mig_event(space_, kEvAllSuspended, ftb::Severity::kInfo, {});
      all_suspended.ctx = collect_span.context();
      backbone = collect_span.context();
      co_await ftb_.publish(std::move(all_suspended));
      t1 = jm_.engine().now();
    }

    {
      // ---- Phase 2 ends with FTB_MIGRATE_PIIC from the source NLA ----
      telemetry::ScopedSpan mig_span(mgr_track, "Migration");
      mig_span.set_job(job_id);
      mig_span.set_trace(report.trace_id);
      mig_span.link_from(backbone);
      ftb::FtbEvent piic = co_await waiter.await_named(kEvMigratePiic);
      mig_span.link_from(piic.ctx);
      report.bytes_moved = std::stoull(decode_kv(piic.payload)["bytes"]);
      mig_span.attr("bytes", std::to_string(report.bytes_moved));
      backbone = mig_span.context();
      t2 = jm_.engine().now();
    }

    {
      // ---- Phase 3: adjust the spawn tree, broadcast FTB_RESTART ----
      telemetry::ScopedSpan restart_span(mgr_track, "Restart");
      restart_span.set_job(job_id);
      restart_span.set_trace(report.trace_id);
      restart_span.link_from(backbone);
      jm_.adopt_migration(*src, *dst, ranks);
      ftb::FtbEvent restart_ev2 = mig_event(
          space_, kEvRestart, ftb::Severity::kInfo,
          {{"dst", dst->hostname()}, {"ranks", encode_ranks(ranks)}});
      restart_ev2.ctx = restart_span.context();
      co_await ftb_.publish(std::move(restart_ev2));
      telemetry::ScopedSpan collect_span(mgr_track, "await restart-done");
      collect_span.set_job(job_id);
      collect_span.set_trace(report.trace_id);
      ftb::FtbEvent restart_done = co_await waiter.await_named(kEvRestartDone);
      collect_span.link_from(restart_done.ctx);
      backbone = collect_span.context();
      t3 = jm_.engine().now();
    }

    {
      // ---- Phase 4 ends when every node hosting ranks has resumed ----
      telemetry::ScopedSpan resume_span(mgr_track, "Resume");
      resume_span.set_job(job_id);
      resume_span.set_trace(report.trace_id);
      resume_span.link_from(backbone);
      std::set<std::string> expected_resume;
      for (int r = 0; r < job_.size(); ++r) expected_resume.insert(job_.node_of(r).hostname);
      std::set<std::string> resumed;
      while (resumed.size() < expected_resume.size()) {
        ftb::FtbEvent ev = co_await waiter.await_named(kEvResumeDone);
        resume_span.link_from(ev.ctx);
        resumed.insert(decode_kv(ev.payload)["host"]);
      }
      t4 = jm_.engine().now();
    }
  } catch (const MigrationAborted& ab) {
    // Fail-stop node death mid-cycle: record what completed, dump the
    // flight recorder for forensics, and hand back an aborted report.
    report.aborted = true;
    report.abort_reason = ab.what();
    report.stall = t1 - t0;
    report.migration = t2 > t1 ? t2 - t1 : sim::Duration::zero();
    report.restart = t3 > t2 ? t3 - t2 : sim::Duration::zero();
    report.resume = sim::Duration::zero();
    cycle_span.attr("aborted", ab.what());
    telemetry::count("migration.aborts");
    telemetry::flight_note("mig", std::string("cycle aborted: ") + ab.what(),
                           report.trace_id, cycle_span.id(), job_id);
    telemetry::FlightRecorder::instance().dump_on_incident(
        std::string("migration aborted: ") + ab.what());
    sim::log_warn("migration", "cycle {} -> {} aborted: {}", source_host, dst->hostname(),
                  ab.what());
    last_report_ = report;
    cycle_active_ = false;
  }
  if (report.aborted) {
    // co_await is illegal inside a handler, so the completion event for an
    // aborted granted cycle is published here, after the catch.
    if (grant != nullptr) co_await publish_cycle_done(report, grant->lease_id);
    co_return report;
  }
  cycle_span.end();

  report.stall = t1 - t0;
  report.migration = t2 - t1;
  report.restart = t3 - t2;
  report.resume = t4 - t3;
  telemetry::flight_note("mig", "cycle done " + source_host + " -> " + dst->hostname(),
                         report.trace_id, 0, job_id);
  telemetry::count("migration.cycles");
  telemetry::count("migration.bytes_moved", report.bytes_moved);
  telemetry::observe_ns("migration.stall_ns", report.stall);
  telemetry::observe_ns("migration.migration_ns", report.migration);
  telemetry::observe_ns("migration.restart_ns", report.restart);
  telemetry::observe_ns("migration.resume_ns", report.resume);
  last_report_ = report;
  ++cycles_completed_;
  cycle_active_ = false;
  if (grant != nullptr) co_await publish_cycle_done(report, grant->lease_id);
  co_return report;
}

sim::Task MigrationManager::publish_cycle_done(const MigrationReport& report,
                                               std::uint64_t lease_id) {
  // Orchestrator-mode completion notification. Legacy single-job runs never
  // publish it, keeping their event sequence (and the goldens pinning it)
  // byte-identical.
  ftb::FtbEvent done =
      mig_event(space_, kEvCycleDone, ftb::Severity::kInfo,
                {{"src", report.source_host},
                 {"dst", report.target_host},
                 {"job", std::to_string(report.job_id)},
                 {"lease", std::to_string(lease_id)},
                 {"aborted", report.aborted ? "1" : "0"}});
  co_await ftb_.publish(std::move(done));
}

void MigrationManager::start_request_listener() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  jm_.engine().spawn(request_loop());
}

sim::Task MigrationManager::request_loop() {
  // A dedicated client so cycle-scoped event handling stays isolated.
  ftb::FtbClient requests(ftb_agent_, job_name(job_.job_id(), "migration_requests"));
  requests.subscribe(ftb::Subscription{space_, kEvMigrateRequest, ftb::Severity::kInfo});
  while (running_) {
    ftb::FtbEvent ev = co_await requests.next_event();
    if (!running_) break;
    auto kv = decode_kv(ev.payload);
    const std::string host = kv.contains("host") ? kv["host"] : ev.payload;
    if (cycle_active_) {
      sim::log_warn("migration", "migration request for {} ignored: cycle active", host);
      continue;
    }
    if (jm_.nla_for_host(host) == nullptr || jm_.nla_for_host(host)->local_ranks().empty()) {
      sim::log_warn("migration", "migration request for {} ignored: hosts no ranks", host);
      continue;
    }
    (void)co_await migrate(host);
  }
}

}  // namespace jobmig::migration
