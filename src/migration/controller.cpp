#include "jobmig/migration/controller.hpp"

#include <set>
#include <sstream>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::migration {

using namespace sim::literals;

namespace {

/// Builds a migration-space event. Kept out of co_await expressions: GCC 12
/// rejects initializer_list temporaries inside awaited full-expressions
/// ("array used as initializer"), so callers hoist event construction into
/// a plain statement first.
ftb::FtbEvent mig_event(const char* name, ftb::Severity sev,
                        std::map<std::string, std::string> kv) {
  return ftb::FtbEvent{kMigSpace, name, sev, encode_kv(kv)};
}

}  // namespace

sim::ValueTask<ftb::FtbEvent> EventWaiter::await_named(std::string name) {
  for (auto it = stash_.begin(); it != stash_.end(); ++it) {
    if (it->name == name) {
      ftb::FtbEvent ev = std::move(*it);
      stash_.erase(it);
      co_return ev;
    }
  }
  while (true) {
    ftb::FtbEvent ev = co_await client_.next_event();
    if (ev.name == name) co_return ev;
    stash_.push_back(std::move(ev));
  }
}

namespace {

std::string encode_ranks(const std::vector<int>& ranks) {
  std::ostringstream os;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) os << ',';
    os << ranks[i];
  }
  return os.str();
}

std::vector<int> decode_ranks(const std::string& s) {
  std::vector<int> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (!item.empty()) out.push_back(std::stoi(item));
  }
  return out;
}

ftb::Subscription all_mig_events() {
  return ftb::Subscription{kMigSpace, "*", ftb::Severity::kInfo};
}

/// Telemetry track of a node's C/R daemon (one Chrome tid per node).
std::string crd_track(const launch::NodeLaunchAgent& nla) { return "crd:" + nla.hostname(); }

}  // namespace

// ---- NodeCrDaemon ------------------------------------------------------------

NodeCrDaemon::NodeCrDaemon(launch::NodeLaunchAgent& nla, mpr::Job& job,
                           ftb::FtbAgent& ftb_agent, MigrationOptions opts)
    : nla_(nla), job_(job), ftb_agent_(ftb_agent), ftb_(ftb_agent, "crd:" + nla.hostname()),
      opts_(opts) {
  // The daemon client only consumes FTB_MIGRATE; each cycle opens its own
  // client for the cycle's event exchange, so no two coroutines ever share
  // one inbox.
  ftb_.subscribe(ftb::Subscription{kMigSpace, kEvMigrate, ftb::Severity::kInfo});
}

void NodeCrDaemon::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  nla_.env().engine->spawn(event_loop());
}

sim::Task NodeCrDaemon::event_loop() {
  while (running_) {
    ftb::FtbEvent ev = co_await ftb_.next_event();
    if (!running_) break;
    auto kv = decode_kv(ev.payload);
    co_await handle_migrate(kv["src"], kv["dst"]);
  }
}

sim::Task NodeCrDaemon::handle_migrate(std::string source_host, std::string target_host) {
  const bool is_source = nla_.hostname() == source_host;
  const bool is_target = nla_.hostname() == target_host;

  // Cycle-scoped client: subscribed now, at FTB_MIGRATE receipt, so every
  // later event of this cycle (which needs at least one network hop to get
  // here) is guaranteed to be captured.
  ftb::FtbClient cycle_client(ftb_agent_, "cyc:" + nla_.hostname());
  cycle_client.subscribe(all_mig_events());

  if (is_target) {
    // The spare's duties span phases 2-4 and run concurrently with the
    // stall phase on the hosting nodes.
    nla_.env().engine->spawn(target_routine(source_host));
  }

  const std::vector<int> local_ranks = nla_.local_ranks();
  if (local_ranks.empty()) {
    if (is_target) {
      // Hold the event loop until the cycle finishes so migrations stay
      // strictly serialized on this node.
      co_await target_done_.wait();
      target_done_.reset();
    }
    co_return;  // idle spare or drained node
  }

  // ---- Phase 1: Job Stall (per-process C/R-thread work) ----
  telemetry::ScopedSpan stall_span(crd_track(nla_), "stall");
  for (int r : local_ranks) job_.proc(r).request_park();
  for (int r : local_ranks) {
    telemetry::ScopedSpan park(crd_track(nla_), "park rank " + std::to_string(r),
                               /*async=*/true);
    co_await job_.proc(r).wait_parked();
  }
  for (int r : local_ranks) {
    telemetry::ScopedSpan drain(crd_track(nla_), "drain rank " + std::to_string(r),
                                /*async=*/true);
    co_await job_.proc(r).drain_and_teardown();
  }
  stall_span.end();
  ftb::FtbEvent suspend_done = mig_event(kEvSuspendDone, ftb::Severity::kInfo,
                                         {{"host", nla_.hostname()}});
  co_await ftb_.publish(std::move(suspend_done));

  if (is_source) {
    co_await source_routine(target_host, cycle_client);
  } else {
    // Ranks staying put enter the migration barrier and rebuild once the
    // restarted ranks re-join (paper: "enter a migration barrier and
    // remain stalled").
    sim::TaskGroup group(*nla_.env().engine);
    for (int r : local_ranks) group.spawn(stay_routine(r));
    co_await group.wait();
    ftb::FtbEvent resume_done = mig_event(kEvResumeDone, ftb::Severity::kInfo,
                                          {{"host", nla_.hostname()}});
    co_await ftb_.publish(std::move(resume_done));
  }
}

sim::Task NodeCrDaemon::stay_routine(int rank) {
  telemetry::ScopedSpan span(crd_track(nla_), "barrier rank " + std::to_string(rank),
                             /*async=*/true);
  co_await job_.migration_barrier_enter();
  co_await job_.proc(rank).rebuild_and_resume();
}

sim::Task NodeCrDaemon::source_routine(std::string target_host, ftb::FtbClient& cycle_client) {
  (void)target_host;
  EventWaiter waiter(cycle_client);
  // Wait for global consistency before checkpointing (end of Phase 1).
  (void)co_await waiter.await_named(kEvAllSuspended);

  // Pull-channel handshake with the target's buffer manager.
  ftb::FtbEvent ready = co_await waiter.await_named(kEvPullReady);
  auto rkv = decode_kv(ready.payload);
  ib::IbAddr target_addr{static_cast<ib::NodeId>(std::stoul(rkv["node"])),
                         static_cast<ib::QpNum>(std::stoul(rkv["qpn"]))};

  SourceBufferManager smgr(*nla_.env().hca, opts_.pool);
  ib::IbAddr my_addr = co_await smgr.open(target_addr);
  ftb::FtbEvent src_ready_ev = mig_event(
      kEvPullSrcReady, ftb::Severity::kInfo,
      {{"node", std::to_string(my_addr.node)}, {"qpn", std::to_string(my_addr.qpn)}});
  co_await ftb_.publish(std::move(src_ready_ev));
  (void)co_await waiter.await_named(kEvPullConnected);
  smgr.start();

  // ---- Phase 2: checkpoint every local rank through the pool ----
  telemetry::ScopedSpan ckpt_span(crd_track(nla_), "checkpoint");
  const std::vector<int> ranks = nla_.local_ranks();
  std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
  sim::TaskGroup group(*nla_.env().engine);
  for (int r : ranks) {
    sinks.push_back(smgr.make_sink(r));
    group.spawn([](NodeCrDaemon& self, int rank, proc::CheckpointSink& sink) -> sim::Task {
      // Concurrent per-rank checkpoints: async spans, they overlap freely.
      telemetry::ScopedSpan span(crd_track(self.nla_), "checkpoint rank " + std::to_string(rank),
                                 /*async=*/true);
      co_await self.nla_.env().blcr->checkpoint(self.job_.proc(rank).sim_process(), sink);
    }(*this, r, *sinks.back()));
  }
  co_await group.wait();
  co_await smgr.finish();
  ckpt_span.end();

  ftb::FtbEvent piic_ev = mig_event(
      kEvMigratePiic, ftb::Severity::kInfo,
      {{"host", nla_.hostname()}, {"bytes", std::to_string(smgr.bytes_submitted())}});
  co_await ftb_.publish(std::move(piic_ev));

  // The node is drained: terminate the local (now stale) processes.
  for (int r : ranks) job_.proc(r).kill();
}

sim::Task NodeCrDaemon::target_routine(std::string source_host) {
  (void)source_host;
  // Own cycle client: opened before any counterpart can publish (their
  // events need at least one network hop to reach this agent).
  ftb::FtbClient cycle_client(ftb_agent_, "cyt:" + nla_.hostname());
  cycle_client.subscribe(all_mig_events());
  EventWaiter waiter(cycle_client);
  target_mgr_ = std::make_unique<TargetBufferManager>(*nla_.env().hca, opts_.pool);
  ib::IbAddr addr = co_await target_mgr_->open();
  ftb::FtbEvent pull_ready_ev = mig_event(
      kEvPullReady, ftb::Severity::kInfo,
      {{"node", std::to_string(addr.node)}, {"qpn", std::to_string(addr.qpn)}});
  co_await ftb_.publish(std::move(pull_ready_ev));
  ftb::FtbEvent src_ready = co_await waiter.await_named(kEvPullSrcReady);
  auto skv = decode_kv(src_ready.payload);
  target_mgr_->connect_to(ib::IbAddr{static_cast<ib::NodeId>(std::stoul(skv["node"])),
                                     static_cast<ib::QpNum>(std::stoul(skv["qpn"]))});
  ftb::FtbEvent connected_ev = mig_event(kEvPullConnected, ftb::Severity::kInfo, {});
  co_await ftb_.publish(std::move(connected_ev));

  // ---- Phase 2 (target side): pull chunks until the source is done ----
  // In pipelined mode the paper's §IV-A revision runs here too: BLCR
  // restarts consume each rank's stream on the fly, overlapping the
  // transfer, so Phase 3 shrinks to bookkeeping.
  telemetry::ScopedSpan pull_span(crd_track(nla_), "pull");
  std::map<int, proc::SimProcessPtr> pipelined_images;
  if (opts_.restart_mode == RestartMode::kPipelined) {
    sim::TaskGroup pipeline(*nla_.env().engine);
    pipeline.spawn([](NodeCrDaemon& self, std::map<int, proc::SimProcessPtr>& images)
                       -> sim::Task {
      sim::TaskGroup per_rank(*self.nla_.env().engine);
      while (true) {
        const int rank = co_await self.target_mgr_->next_announced_rank();
        if (rank < 0) break;
        per_rank.spawn([](NodeCrDaemon& s, int r,
                          std::map<int, proc::SimProcessPtr>& out) -> sim::Task {
          auto source = s.target_mgr_->make_streaming_source(r);
          out[r] = co_await s.nla_.env().blcr->restart(*source);
        }(self, rank, images));
      }
      co_await per_rank.wait();
    }(*this, pipelined_images));
    co_await target_mgr_->serve();
    co_await pipeline.wait();
  } else {
    co_await target_mgr_->serve();
  }
  pull_span.end();

  // ---- Phase 3: restart the migrated ranks from the transferred images ----
  ftb::FtbEvent restart_ev = co_await waiter.await_named(kEvRestart);
  auto rkv = decode_kv(restart_ev.payload);
  JOBMIG_ASSERT_MSG(rkv["dst"] == nla_.hostname(), "FTB_RESTART routed to the wrong node");
  const std::vector<int> ranks = decode_ranks(rkv["ranks"]);

  telemetry::ScopedSpan restart_span(crd_track(nla_), "restart");
  if (opts_.restart_mode == RestartMode::kPipelined) {
    for (int r : ranks) {
      auto it = pipelined_images.find(r);
      JOBMIG_ASSERT_MSG(it != pipelined_images.end(), "pipelined image missing for rank");
      auto fresh = job_.make_unwired_proc(r, nla_.env());
      fresh->adopt_sim_process(std::move(it->second));
      job_.replace_proc(r, std::move(fresh));
    }
  } else {
    storage::BlockDevice* restart_disk =
        opts_.restart_mode == RestartMode::kFile ? &nla_.env().scratch->device() : nullptr;
    sim::TaskGroup group(*nla_.env().engine);
    for (int r : ranks) {
      group.spawn([](NodeCrDaemon& self, int rank, storage::BlockDevice* disk) -> sim::Task {
        telemetry::ScopedSpan span(crd_track(self.nla_), "restart rank " + std::to_string(rank),
                                   /*async=*/true);
        BufferedStreamSource source(self.target_mgr_->take_stream(rank), disk);
        proc::SimProcessPtr image = co_await self.nla_.env().blcr->restart(source);
        auto fresh = self.job_.make_unwired_proc(rank, self.nla_.env());
        fresh->adopt_sim_process(std::move(image));
        self.job_.replace_proc(rank, std::move(fresh));
      }(*this, r, restart_disk));
    }
    co_await group.wait();
  }
  restart_span.end();
  ftb::FtbEvent restart_done = mig_event(kEvRestartDone, ftb::Severity::kInfo,
                                         {{"host", nla_.hostname()}});
  co_await ftb_.publish(std::move(restart_done));

  // ---- Phase 4: re-join the job and resume ----
  telemetry::ScopedSpan resume_span(crd_track(nla_), "resume");
  sim::TaskGroup resume_group(*nla_.env().engine);
  for (int r : ranks) {
    resume_group.spawn([](NodeCrDaemon& self, int rank) -> sim::Task {
      telemetry::ScopedSpan span(crd_track(self.nla_), "resume rank " + std::to_string(rank),
                                 /*async=*/true);
      co_await self.job_.migration_barrier_enter();
      co_await self.job_.proc(rank).rebuild_and_resume();
      self.job_.relaunch_app_on(rank);
    }(*this, r));
  }
  co_await resume_group.wait();
  resume_span.end();
  ftb::FtbEvent resume_done = mig_event(kEvResumeDone, ftb::Severity::kInfo,
                                        {{"host", nla_.hostname()}});
  co_await ftb_.publish(std::move(resume_done));
  target_mgr_.reset();
  target_done_.set();
}

// ---- MigrationManager ----------------------------------------------------------

MigrationManager::MigrationManager(launch::JobManager& jm, mpr::Job& job,
                                   ftb::FtbAgent& ftb_agent, MigrationOptions opts)
    : jm_(jm), job_(job), ftb_agent_(ftb_agent), ftb_(ftb_agent, "migration_manager"),
      opts_(opts) {}  // ftb_ publishes only; cycle clients do the listening

sim::ValueTask<MigrationReport> MigrationManager::migrate(const std::string& source_host) {
  JOBMIG_EXPECTS_MSG(!cycle_active_, "one migration cycle at a time");
  // Serialize against other job-wide FT operations (periodic checkpoints).
  auto ft_lock = co_await job_.acquire_ft_lock();
  cycle_active_ = true;

  launch::NodeLaunchAgent* src = jm_.nla_for_host(source_host);
  JOBMIG_EXPECTS_MSG(src != nullptr, "unknown source host");
  JOBMIG_EXPECTS_MSG(!src->local_ranks().empty(), "source node hosts no ranks");
  launch::NodeLaunchAgent* dst = jm_.find_spare();
  JOBMIG_EXPECTS_MSG(dst != nullptr, "no spare node available");
  const std::vector<int> ranks = src->local_ranks();

  // Hosts that must report suspension (everyone currently hosting ranks).
  std::set<std::string> hosting;
  for (int r = 0; r < job_.size(); ++r) hosting.insert(job_.node_of(r).hostname);

  job_.configure_migration_barrier();
  // Cycle-scoped client: subscribed before FTB_MIGRATE goes out.
  ftb::FtbClient cycle_client(ftb_agent_, "migmgr_cycle");
  cycle_client.subscribe(all_mig_events());
  EventWaiter waiter(cycle_client);
  MigrationReport report;
  report.source_host = source_host;
  report.target_host = dst->hostname();
  report.migrated_ranks = ranks;

  telemetry::ScopedSpan cycle_span("migmgr", "migration cycle");
  cycle_span.attr("src", source_host);
  cycle_span.attr("dst", dst->hostname());
  cycle_span.attr("ranks", encode_ranks(ranks));

  const sim::TimePoint t0 = jm_.engine().now();
  telemetry::ScopedSpan stall_span("migmgr", "Stall");
  ftb::FtbEvent migrate_ev = mig_event(kEvMigrate, ftb::Severity::kWarning,
                                       {{"src", source_host}, {"dst", dst->hostname()}});
  co_await ftb_.publish(std::move(migrate_ev));

  // ---- Phase 1 ends when every hosting node reports drained ----
  std::set<std::string> suspended;
  while (suspended.size() < hosting.size()) {
    ftb::FtbEvent ev = co_await waiter.await_named(kEvSuspendDone);
    suspended.insert(decode_kv(ev.payload)["host"]);
  }
  ftb::FtbEvent all_suspended = mig_event(kEvAllSuspended, ftb::Severity::kInfo, {});
  co_await ftb_.publish(std::move(all_suspended));
  const sim::TimePoint t1 = jm_.engine().now();
  stall_span.end();

  // ---- Phase 2 ends with FTB_MIGRATE_PIIC from the source NLA ----
  telemetry::ScopedSpan mig_span("migmgr", "Migration");
  ftb::FtbEvent piic = co_await waiter.await_named(kEvMigratePiic);
  report.bytes_moved = std::stoull(decode_kv(piic.payload)["bytes"]);
  mig_span.attr("bytes", std::to_string(report.bytes_moved));
  const sim::TimePoint t2 = jm_.engine().now();
  mig_span.end();

  // ---- Phase 3: adjust the spawn tree, broadcast FTB_RESTART ----
  telemetry::ScopedSpan restart_span("migmgr", "Restart");
  jm_.adopt_migration(*src, *dst, ranks);
  ftb::FtbEvent restart_ev2 = mig_event(
      kEvRestart, ftb::Severity::kInfo,
      {{"dst", dst->hostname()}, {"ranks", encode_ranks(ranks)}});
  co_await ftb_.publish(std::move(restart_ev2));
  (void)co_await waiter.await_named(kEvRestartDone);
  const sim::TimePoint t3 = jm_.engine().now();
  restart_span.end();

  // ---- Phase 4 ends when every node hosting ranks has resumed ----
  telemetry::ScopedSpan resume_span("migmgr", "Resume");
  std::set<std::string> expected_resume;
  for (int r = 0; r < job_.size(); ++r) expected_resume.insert(job_.node_of(r).hostname);
  std::set<std::string> resumed;
  while (resumed.size() < expected_resume.size()) {
    ftb::FtbEvent ev = co_await waiter.await_named(kEvResumeDone);
    resumed.insert(decode_kv(ev.payload)["host"]);
  }
  const sim::TimePoint t4 = jm_.engine().now();
  resume_span.end();
  cycle_span.end();

  report.stall = t1 - t0;
  report.migration = t2 - t1;
  report.restart = t3 - t2;
  report.resume = t4 - t3;
  telemetry::count("migration.cycles");
  telemetry::count("migration.bytes_moved", report.bytes_moved);
  telemetry::observe_ns("migration.stall_ns", report.stall);
  telemetry::observe_ns("migration.migration_ns", report.migration);
  telemetry::observe_ns("migration.restart_ns", report.restart);
  telemetry::observe_ns("migration.resume_ns", report.resume);
  last_report_ = report;
  ++cycles_completed_;
  cycle_active_ = false;
  co_return report;
}

void MigrationManager::start_request_listener() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  jm_.engine().spawn(request_loop());
}

sim::Task MigrationManager::request_loop() {
  // A dedicated client so cycle-scoped event handling stays isolated.
  ftb::FtbClient requests(ftb_agent_, "migration_requests");
  requests.subscribe(ftb::Subscription{kMigSpace, kEvMigrateRequest, ftb::Severity::kInfo});
  while (running_) {
    ftb::FtbEvent ev = co_await requests.next_event();
    if (!running_) break;
    auto kv = decode_kv(ev.payload);
    const std::string host = kv.contains("host") ? kv["host"] : ev.payload;
    if (cycle_active_) {
      sim::log_warn("migration", "migration request for {} ignored: cycle active", host);
      continue;
    }
    if (jm_.nla_for_host(host) == nullptr || jm_.nla_for_host(host)->local_ranks().empty()) {
      sim::log_warn("migration", "migration request for {} ignored: hosts no ranks", host);
      continue;
    }
    (void)co_await migrate(host);
  }
}

}  // namespace jobmig::migration
