#pragma once

#include <cstdint>
#include <optional>

#include "jobmig/sim/bytes.hpp"
#include "jobmig/telemetry/trace.hpp"

namespace jobmig::mpr {

/// Channel-level message kinds between two ranks (one QP per rank pair).
enum class MsgKind : std::uint8_t {
  kEager = 1,  // header + payload inline
  kRts = 2,    // rendezvous request: payload pinned at sender, pull via RDMA
  kFin = 3,    // rendezvous complete: sender may release the pinned buffer
};

/// Fixed-size wire header preceding every channel message.
struct MsgHeader {
  MsgKind kind = MsgKind::kEager;
  std::uint32_t src_rank = 0;
  std::int32_t tag = 0;
  std::uint64_t payload_len = 0;  // eager: inline bytes; rts: pinned bytes
  std::uint64_t rdvz_id = 0;      // rts/fin: rendezvous operation id
  std::uint32_t rkey = 0;         // rts: sender-side MR key
  /// Causal context of the sending rank's operation; always on the wire
  /// (zeros when untraced) so traced and untraced runs are byte-identical.
  telemetry::TraceContext ctx{};

  static constexpr std::size_t kWireSize = 1 + 4 + 4 + 8 + 8 + 4 + 8 + 8;

  void encode_to(sim::Bytes& out) const;
  static std::optional<MsgHeader> decode(sim::ByteSpan data);
};

}  // namespace jobmig::mpr
