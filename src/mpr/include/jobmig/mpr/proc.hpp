#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "jobmig/ib/verbs.hpp"
#include "jobmig/mpr/wire.hpp"
#include "jobmig/net/network.hpp"
#include "jobmig/proc/blcr.hpp"
#include "jobmig/proc/process.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/telemetry/trace.hpp"

/// The message-passing runtime ("mini-MVAPICH2"): rank processes with
/// eager + rendezvous point-to-point over IB queue pairs, collectives, and
/// — the part the paper actually modifies — cooperative suspension with
/// channel drain, endpoint teardown and endpoint rebuild (Phases 1 and 4 of
/// the migration cycle).
namespace jobmig::mpr {

class Job;

/// Thrown out of blocking MPI calls when the process is killed (its node is
/// taken down after its image has been migrated away).
class ProcKilled : public std::runtime_error {
 public:
  ProcKilled() : std::runtime_error("process killed") {}
};

/// Per-node environment a process runs in (constructed by the cluster
/// layer). All references must outlive the processes on the node.
struct NodeEnv {
  sim::Engine* engine = nullptr;
  ib::Hca* hca = nullptr;               // InfiniBand port
  net::HostId eth_host = 0;             // GigE identity (FTB side)
  storage::LocalFs* scratch = nullptr;  // node-local (ext3-like) file system
  proc::Blcr* blcr = nullptr;           // per-node checkpoint engine
  const sim::Calibration* cal = nullptr;
  std::string hostname;
};

enum class ProcState {
  kRunning,    // normal operation
  kParked,     // app parked at a safe point, channels still open
  kSuspended,  // channels drained and torn down (consistent global state)
  kDead,       // killed after migration away
};

/// One MPI process. Public surface has three audiences:
///  - applications: send/recv/collectives/check_suspend (via run_app),
///  - the migration layer: request_park/drain_and_teardown/rebuild/resume,
///  - the checkpoint engine: sim_process().
class Proc {
 public:
  /// `start_suspended` builds the process in kSuspended with no service
  /// loops running — the restart path uses this and brings it up via
  /// rebuild_and_resume() after adopting the restored image.
  Proc(Job& job, int rank, NodeEnv& env, std::uint64_t image_bytes, std::uint64_t image_seed,
       bool start_suspended = false);
  ~Proc();
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;

  int rank() const { return rank_; }
  int size() const;
  Job& job() { return job_; }
  NodeEnv& env() { return *env_; }
  ProcState state() const { return state_; }
  proc::SimProcess& sim_process() { return *process_; }
  const proc::SimProcess& sim_process() const { return *process_; }
  /// Adopt a restored image (restart on the migration target).
  void adopt_sim_process(proc::SimProcessPtr p);

  // ---- Application-facing API ------------------------------------------

  /// Blocking tagged send. Eager below the threshold, rendezvous (RDMA
  /// read pulled by the receiver) above it. Safe-buffer semantics: the
  /// payload is captured at call time, so callers may drop or mutate the
  /// source buffer immediately (important for spawned concurrent sends).
  [[nodiscard]] sim::Task send(int dst, std::int32_t tag, sim::Bytes payload);
  [[nodiscard]] sim::Task send(int dst, std::int32_t tag, sim::ByteSpan data) {
    return send(dst, tag, sim::Bytes(data.begin(), data.end()));  // copy at call time
  }
  /// Wildcard source for recv/probe (MPI_ANY_SOURCE).
  static constexpr int kAnySource = -1;

  /// Blocking tagged receive from `src` (or kAnySource).
  [[nodiscard]] sim::ValueTask<sim::Bytes> recv(int src, std::int32_t tag);
  /// Blocking receive that also reports the sender (for kAnySource).
  [[nodiscard]] sim::ValueTask<std::pair<int, sim::Bytes>> recv_any(std::int32_t tag);
  /// Blocking probe: waits until a message matching (src, tag) is queued
  /// and returns its sender without consuming it.
  [[nodiscard]] sim::ValueTask<int> probe(int src, std::int32_t tag);
  /// Non-blocking probe: sender rank if a matching message is queued.
  std::optional<int> iprobe(int src, std::int32_t tag) const;

  /// Collectives (every rank of the job must call in the same order).
  [[nodiscard]] sim::Task barrier();
  [[nodiscard]] sim::Task bcast(int root, sim::Bytes& data);
  enum class ReduceOp { kSum, kMin, kMax, kProd };
  [[nodiscard]] sim::ValueTask<double> allreduce(double value, ReduceOp op);
  [[nodiscard]] sim::ValueTask<double> allreduce_sum(double value) {
    return allreduce(value, ReduceOp::kSum);
  }
  [[nodiscard]] sim::ValueTask<std::vector<sim::Bytes>> allgather(sim::ByteSpan mine);
  /// Binomial reduction; the returned sum is meaningful only at `root`.
  [[nodiscard]] sim::ValueTask<double> reduce_sum(int root, double value);
  /// Root receives every rank's block (in rank order); non-roots get {}.
  [[nodiscard]] sim::ValueTask<std::vector<sim::Bytes>> gather(int root, sim::ByteSpan mine);
  /// Root supplies one block per rank; every rank receives its own.
  [[nodiscard]] sim::ValueTask<sim::Bytes> scatter(int root,
                                                   const std::vector<sim::Bytes>& blocks);
  /// Personalized all-to-all: `to_each[d]` goes to rank d; returns what each
  /// rank sent to us, in rank order.
  [[nodiscard]] sim::ValueTask<std::vector<sim::Bytes>> alltoall(
      const std::vector<sim::Bytes>& to_each);
  /// Combined send + receive (deadlock-free pairwise exchange).
  [[nodiscard]] sim::ValueTask<sim::Bytes> sendrecv(int dst, int src, std::int32_t tag,
                                                    sim::ByteSpan data);

  /// Nonblocking operations. The returned request completes independently;
  /// wait() returns the received payload (empty for sends) and rethrows any
  /// failure. Requests must be waited before the proc is suspended.
  class Request {
   public:
    [[nodiscard]] sim::ValueTask<sim::Bytes> wait();
    bool done() const { return completed_; }

   private:
    friend class Proc;
    sim::Event event_;
    bool completed_ = false;
    sim::Bytes payload_;
    std::exception_ptr error_;
  };
  using RequestPtr = std::shared_ptr<Request>;
  [[nodiscard]] RequestPtr isend(int dst, std::int32_t tag, sim::Bytes payload);
  [[nodiscard]] RequestPtr irecv(int src, std::int32_t tag);

  /// Cooperative safe point: applications call this between iterations.
  /// Parks while a migration is in flight; throws ProcKilled if the process
  /// was migrated away.
  [[nodiscard]] sim::Task check_suspend();

  /// Charge `seconds` of local computation and mark `dirty_bytes` of the
  /// image written (workload kernels call this each iteration).
  [[nodiscard]] sim::Task compute(sim::Duration d, std::uint64_t dirty_bytes,
                                  std::uint64_t dirty_offset = 0);

  // ---- Migration-layer API ---------------------------------------------

  /// Ask the app to park at its next safe point.
  void request_park();
  /// Wait until the app is parked (or already suspended/dead).
  [[nodiscard]] sim::Task wait_parked();
  /// Phase 1 per-process work: drain channel-level traffic, stop progress,
  /// destroy all queue pairs, deregister memory. Requires the app parked
  /// and no application-level operation outstanding.
  [[nodiscard]] sim::Task drain_and_teardown();
  /// Phase 4 per-process work: re-create endpoints to previously-connected
  /// peers (cost per MpiParams) and reopen the gate for the app.
  [[nodiscard]] sim::Task rebuild_and_resume();
  /// Mark dead: blocked and future app calls throw ProcKilled.
  void kill();

  /// Causal context of an in-flight migration cycle, stamped by the node's
  /// CR daemon for the stall..resume window (and cleared after). Every
  /// operation span this rank opens while it is set links from it, so the
  /// drain-era traffic (park-agreement allreduce, pending sends) joins the
  /// migration's trace DAG.
  void set_trace_context(telemetry::TraceContext ctx) { trace_ctx_ = ctx; }
  telemetry::TraceContext trace_context() const { return trace_ctx_; }

  /// Peers this process holds connections to (rebuilt after migration).
  std::vector<int> connected_peers() const;
  std::size_t outstanding_app_ops() const { return outstanding_ops_; }

  // ---- Wiring (used by Job) --------------------------------------------

  /// Accept a new connection to `peer`: create the local QP half.
  ib::QueuePair* create_link(int peer);
  /// Both halves exist; finish (post ring, mark usable).
  void activate_link(int peer);
  bool has_link(int peer) const { return links_.contains(peer); }
  ib::IbAddr link_addr(int peer) const;
  void connect_link(int peer, ib::IbAddr remote);

 private:
  struct PendingRecv {
    int src;  // requested source; may be kAnySource
    std::int32_t tag;
    int actual_src = -1;  // sender that matched
    sim::Bytes data;
    bool rendezvous_running = false;
    telemetry::TraceContext sender_ctx{};  // from the matched header
    sim::Event done;
  };
  struct UnexpectedMsg {
    MsgHeader header;
    sim::Bytes payload;  // eager only
  };
  struct Link {
    std::unique_ptr<ib::QueuePair> qp;
    std::vector<sim::Bytes> ring;  // preposted eager receive buffers
    bool active = false;
  };
  struct RdvzSend {
    sim::Bytes pinned;          // staged payload (stays valid during pull)
    ib::MemoryRegion* mr = nullptr;
    sim::Event fin;
  };

  static constexpr std::size_t kRingSlots = 8;

  // Progress machinery.
  sim::Task progress_loop();
  sim::Task send_dispatch_loop();
  void handle_message(int peer, const MsgHeader& h, sim::ByteSpan payload);
  [[nodiscard]] sim::Task run_rendezvous_pull(int peer, MsgHeader rts,
                                              std::shared_ptr<PendingRecv> pending);
  [[nodiscard]] sim::ValueTask<ib::WorkCompletion> await_wr(std::uint64_t wr_id);
  std::uint64_t next_wr_id() { return ++wr_seq_; }
  void post_ring_slot(int peer, std::size_t slot);
  [[nodiscard]] sim::Task send_control(int peer, const MsgHeader& h, sim::ByteSpan payload);

  /// Gate every app op passes through; closed while parked/suspended.
  [[nodiscard]] sim::Task enter_op();
  [[nodiscard]] sim::ValueTask<std::pair<int, sim::Bytes>> recv_impl(int src, std::int32_t tag);
  void leave_op() { JOBMIG_ASSERT(outstanding_ops_ > 0); --outstanding_ops_; }

  std::shared_ptr<PendingRecv> match_pending(int src, std::int32_t tag);
  std::optional<UnexpectedMsg> take_unexpected(int src, std::int32_t tag);
  std::string trace_track() const;
  void pack_runtime_state();
  void unpack_runtime_state();

  Job& job_;
  int rank_;
  NodeEnv* env_;
  proc::SimProcessPtr process_;
  ProcState state_ = ProcState::kRunning;
  bool park_requested_ = false;
  bool resumed_from_restart_ = false;
  sim::Event parked_;
  sim::Event resume_gate_;
  std::size_t outstanding_ops_ = 0;
  sim::Event ops_drained_;

  ib::CompletionQueue send_cq_;
  ib::CompletionQueue recv_cq_;
  std::map<int, Link> links_;
  std::vector<int> remembered_peers_;  // links to rebuild at resume
  std::deque<std::shared_ptr<PendingRecv>> pending_recvs_;
  std::deque<UnexpectedMsg> unexpected_;
  sim::Event unexpected_arrived_;
  std::map<std::uint64_t, RdvzSend> rdvz_sends_;
  std::map<std::uint64_t, sim::Event*> wr_waiters_;
  std::map<std::uint64_t, ib::WorkCompletion> wr_results_;
  std::uint64_t wr_seq_ = 0;
  std::uint64_t rdvz_seq_ = 0;
  std::uint64_t active_pulls_ = 0;
  std::uint64_t collective_seq_ = 0;
  std::uint64_t compute_epoch_ = 0;
  telemetry::TraceContext trace_ctx_{};
  bool progress_running_ = false;
  bool dispatch_running_ = false;

  friend class Job;
};

}  // namespace jobmig::mpr
