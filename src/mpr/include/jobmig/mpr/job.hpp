#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "jobmig/mpr/proc.hpp"

namespace jobmig::mpr {

/// A running parallel job: the rank space, rank->node placement, the
/// out-of-band address service (the PMI role the launcher tree plays in
/// MVAPICH2), and process lifecycle during migration.
class Job {
 public:
  using AppMain = std::function<sim::Task(Proc&)>;

  Job(sim::Engine& engine, sim::Calibration cal);
  ~Job();
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  sim::Engine& engine() { return engine_; }
  const sim::Calibration& calibration() const { return cal_; }

  /// Cluster-wide job identity. 0 (the default) is the single-job legacy
  /// mode: telemetry tracks and FTB spaces keep their historical names so
  /// existing traces and golden tests are unaffected. Orchestrated jobs get
  /// ids >= 1 and job-qualified tracks/spaces.
  int job_id() const { return job_id_; }
  void set_job_id(int id) { job_id_ = id; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Place rank `rank` on `env` with the given image geometry.
  Proc& add_proc(int rank, NodeEnv& env, std::uint64_t image_bytes, std::uint64_t image_seed);

  int size() const { return static_cast<int>(procs_.size()); }
  Proc& proc(int rank);
  NodeEnv& node_of(int rank);

  /// Launch `main` on every rank (spawned; returns immediately). The same
  /// callable is reused to relaunch migrated ranks, so it must derive all
  /// state from the Proc it is given.
  void launch_app(AppMain main);
  /// Re-launch the app on a (restarted) rank.
  void relaunch_app_on(int rank);
  /// Set when every rank's app coroutine has returned.
  [[nodiscard]] sim::Task wait_app_done();
  bool app_done() const { return finished_ranks_ >= procs_.size() && !procs_.empty(); }

  /// On-demand connection establishment between two ranks (charges QP setup
  /// on both HCAs plus an out-of-band address exchange). Idempotent.
  [[nodiscard]] sim::Task ensure_connected(int a, int b);

  /// Swap in a new process object for `rank` (restart on the migration
  /// target). The old Proc must already be dead.
  void replace_proc(int rank, std::unique_ptr<Proc> fresh);
  /// Build an unwired Proc for `rank` on `env` (used by the restart path;
  /// the caller adopts the restored SimProcess into it).
  std::unique_ptr<Proc> make_unwired_proc(int rank, NodeEnv& env);

  /// The job-wide migration barrier of the paper's Phase 2/4. Every rank
  /// enters; all are released together once the restarted ranks arrive.
  [[nodiscard]] sim::Task migration_barrier_enter();
  void configure_migration_barrier();  // arm for the current job size

  /// Causal-trace support for the barrier release: every enterer stamps its
  /// span context just before arriving, so after the release the last
  /// stamp is the releaser's (a restarted rank re-joining). Waiters link
  /// from it — the resume edge of the migration DAG.
  void note_barrier_entry(telemetry::TraceContext ctx) { barrier_release_ctx_ = ctx; }
  telemetry::TraceContext barrier_release_ctx() const { return barrier_release_ctx_; }

  /// Aggregate counters for experiments.
  std::uint64_t total_messages() const { return total_messages_; }
  void count_message() { ++total_messages_; }

  /// Per-job fault-tolerance lock: any operation that drives this job's
  /// park/drain/resume state machine (a migration cycle, a coordinated
  /// checkpoint, a restart) must hold it, so cycles within one job never
  /// interleave. It is deliberately NOT a cluster-wide lock: cross-job
  /// exclusivity is per node set, granted by orch::NodeSetLockManager, so
  /// node-disjoint cycles of different jobs run concurrently.
  [[nodiscard]] sim::ValueTask<sim::Mutex::ScopedLock> acquire_ft_lock() {
    return ft_mutex_.lock();
  }

 private:
  sim::Task run_app_wrapper(int rank);

  sim::Engine& engine_;
  sim::Calibration cal_;
  int job_id_ = 0;
  std::string name_;
  std::vector<std::unique_ptr<Proc>> procs_;  // index == rank
  std::vector<NodeEnv*> placement_;
  AppMain app_main_;
  std::size_t finished_ranks_ = 0;
  sim::Event app_done_;
  std::unique_ptr<sim::Barrier> migration_barrier_;
  telemetry::TraceContext barrier_release_ctx_{};
  std::map<std::pair<int, int>, std::unique_ptr<sim::Mutex>> connect_mutexes_;
  sim::Mutex ft_mutex_;
  std::uint64_t total_messages_ = 0;
};

}  // namespace jobmig::mpr
