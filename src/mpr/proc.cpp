#include "jobmig/mpr/proc.hpp"

#include <algorithm>
#include <cstring>

#include "jobmig/mpr/job.hpp"
#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::mpr {

using namespace sim::literals;

namespace {

/// Ring-slot wr_ids carry the peer rank and slot so the progress loop can
/// repost the right buffer. High bit distinguishes them from send-side ids.
constexpr std::uint64_t kRingBit = 1ULL << 63;
constexpr std::uint64_t kStopWr = 0;

std::uint64_t ring_wr_id(int peer, std::size_t slot) {
  return kRingBit | (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer)) << 8) |
         static_cast<std::uint64_t>(slot);
}

/// RAII bracket for an application-level operation.
class OpGuard {
 public:
  explicit OpGuard(std::size_t& counter, sim::Event& drained)
      : counter_(counter), drained_(drained) {}
  ~OpGuard() {
    --counter_;
    if (counter_ == 0) drained_.set();
  }
  OpGuard(const OpGuard&) = delete;
  OpGuard& operator=(const OpGuard&) = delete;

 private:
  std::size_t& counter_;
  sim::Event& drained_;
};

}  // namespace

Proc::Proc(Job& job, int rank, NodeEnv& env, std::uint64_t image_bytes, std::uint64_t image_seed,
           bool start_suspended)
    : job_(job), rank_(rank), env_(&env) {
  process_ = std::make_unique<proc::SimProcess>(
      proc::ProcessIdentity{static_cast<std::uint32_t>(1000 + rank), rank, "mpi_app"},
      image_bytes, image_seed);
  if (start_suspended) {
    state_ = ProcState::kSuspended;
    return;  // rebuild_and_resume() starts the service loops
  }
  progress_running_ = true;
  dispatch_running_ = true;
  env_->engine->spawn(progress_loop());
  env_->engine->spawn(send_dispatch_loop());
}

Proc::~Proc() {
  // Stop the service loops if the engine is still running; frames parked on
  // our CQs after engine teardown simply never resume.
  if (progress_running_) recv_cq_.push(ib::WorkCompletion{kStopWr, ib::WcStatus::kSuccess,
                                                          ib::WcOpcode::kRecv, 0, 0, false});
  if (dispatch_running_) send_cq_.push(ib::WorkCompletion{kStopWr, ib::WcStatus::kSuccess,
                                                          ib::WcOpcode::kSend, 0, 0, false});
}

int Proc::size() const { return job_.size(); }

void Proc::adopt_sim_process(proc::SimProcessPtr p) {
  JOBMIG_EXPECTS(p != nullptr);
  JOBMIG_EXPECTS_MSG(p->rank() == rank_, "restored image has a different rank");
  process_ = std::move(p);
  unpack_runtime_state();
  // The image was captured while parked — i.e. *after* this rank took part
  // in the park-agreement reduction. The relaunched app's first
  // check_suspend must therefore not run another one, or its collective
  // sequence would fall out of step with the surviving ranks.
  resumed_from_restart_ = true;
}

// ---- Gate and lifecycle ---------------------------------------------------

sim::Task Proc::enter_op() {
  while (true) {
    if (state_ == ProcState::kDead) throw ProcKilled{};
    if (state_ == ProcState::kRunning) break;
    co_await resume_gate_.wait();
    resume_gate_.reset();
  }
  ++outstanding_ops_;
}

sim::Task Proc::check_suspend() {
  if (state_ == ProcState::kDead) throw ProcKilled{};
  if (state_ != ProcState::kRunning) co_return;
  if (resumed_from_restart_) {
    resumed_from_restart_ = false;
    co_return;  // the pre-checkpoint self already passed this safe point
  }
  // Collective park agreement. A rank that parked unilaterally could do so
  // before producing data a neighbour is already blocked on — deadlocking
  // the stall phase. Instead every rank contributes its park flag to an
  // OR-reduction each safe point; all ranks therefore park at the same
  // iteration boundary with no application traffic in flight.
  const double flag = park_requested_ ? 1.0 : 0.0;
  const double agreed = co_await allreduce_sum(flag);
  if (agreed == 0.0) co_return;
  park_requested_ = true;  // adopt the group decision
  state_ = ProcState::kParked;
  parked_.set();
  while (state_ == ProcState::kParked || state_ == ProcState::kSuspended) {
    co_await resume_gate_.wait();
    resume_gate_.reset();
    if (state_ == ProcState::kDead) throw ProcKilled{};
  }
}

sim::Task Proc::compute(sim::Duration d, std::uint64_t dirty_bytes, std::uint64_t dirty_offset) {
  co_await enter_op();
  OpGuard guard(outstanding_ops_, ops_drained_);
  telemetry::ScopedSpan span(trace_track(), "compute", /*async=*/true);
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  if (telemetry::enabled() && dirty_bytes > 0) {
    span.attr("dirty_bytes", std::to_string(dirty_bytes));
  }
  co_await sim::sleep_for(d);
  if (dirty_bytes > 0) {
    auto& image = process_->image();
    JOBMIG_EXPECTS(dirty_offset + dirty_bytes <= image.size());
    // Stamp an epoch marker into every page of the window: the pages become
    // dirty (and their content changes between checkpoints) without
    // regenerating full window content — the solver-writes analogue at
    // simulation speed.
    sim::Bytes stamp(16);
    sim::put_u64(stamp, 0x5EED0000u + compute_epoch_);
    sim::put_u64(stamp, dirty_offset);
    const std::uint64_t kPage = proc::MemoryImage::kPageSize;
    for (std::uint64_t pos = 0; pos < dirty_bytes; pos += kPage) {
      const std::uint64_t at = dirty_offset + pos;
      image.write(at, sim::ByteSpan(stamp.data(),
                                    std::min<std::uint64_t>(stamp.size(),
                                                            image.size() - at)));
    }
    ++compute_epoch_;
  }
}

void Proc::request_park() { park_requested_ = true; }

sim::Task Proc::wait_parked() {
  while (state_ == ProcState::kRunning) {
    co_await parked_.wait();
    parked_.reset();
  }
}

void Proc::kill() {
  state_ = ProcState::kDead;
  resume_gate_.set();
  parked_.set();
  for (auto& p : pending_recvs_) p->done.set();
  pending_recvs_.clear();
  for (auto& [id, op] : rdvz_sends_) op.fin.set();
}

// ---- Phase 1: drain + teardown ---------------------------------------------

sim::Task Proc::drain_and_teardown() {
  JOBMIG_EXPECTS_MSG(state_ == ProcState::kParked, "drain requires a parked process");

  // (a) Application-level quiescence: every op completes (a parked app
  //     issues no new ones).
  while (outstanding_ops_ > 0) {
    co_await ops_drained_.wait();
    ops_drained_.reset();
  }
  // (b) Serve in-flight inbound rendezvous pulls to completion.
  while (active_pulls_ > 0) co_await sim::sleep_for(10_us);
  // (c) Flush the channels: wait for every posted WQE to complete.
  for (auto& [peer, link] : links_) {
    while (link.qp->outstanding() > 0) co_await sim::sleep_for(10_us);
  }
  JOBMIG_ASSERT_MSG(rdvz_sends_.empty(), "rendezvous sends must be drained before teardown");

  // (d) Stop the service loops so nothing touches the endpoints below.
  recv_cq_.push(ib::WorkCompletion{kStopWr, ib::WcStatus::kSuccess, ib::WcOpcode::kRecv, 0, 0, false});
  send_cq_.push(ib::WorkCompletion{kStopWr, ib::WcStatus::kSuccess, ib::WcOpcode::kSend, 0, 0, false});
  while (progress_running_ || dispatch_running_) co_await sim::sleep_for(1_us);

  // (e) Release the connection context: destroy QPs and drop the rings.
  //     Remote rkeys cached against us become invalid from this instant
  //     (paper §III-A, third constraint).
  remembered_peers_ = connected_peers();
  links_.clear();

  // (f) Preserve library state (unexpected queue, collective counter) inside
  //     the process image so a restarted twin loses nothing.
  pack_runtime_state();

  state_ = ProcState::kSuspended;
}

// ---- Phase 4: rebuild + resume ----------------------------------------------

sim::Task Proc::rebuild_and_resume() {
  JOBMIG_EXPECTS_MSG(state_ == ProcState::kSuspended, "rebuild requires a suspended process");
  const sim::MpiParams& p = env_->cal->mpi;
  co_await sim::sleep_for(p.endpoint_reinit +
                          p.pmi_exchange_per_rank * static_cast<std::int64_t>(size()));
  for (int peer : remembered_peers_) {
    co_await sim::sleep_for(p.endpoint_rebuild_per_peer);
    co_await job_.ensure_connected(rank_, peer);
  }
  remembered_peers_.clear();
  progress_running_ = true;
  dispatch_running_ = true;
  env_->engine->spawn(progress_loop());
  env_->engine->spawn(send_dispatch_loop());
  state_ = ProcState::kRunning;
  park_requested_ = false;
  // Back to plain application work: from here on the rank's ops must not be
  // attributed to the (ending) migration cycle, or the first post-resume
  // compute span would dangle off the cycle's DAG as a bogus sink and hijack
  // jobmig-trace's backward critical-path walk.
  trace_ctx_ = {};
  resume_gate_.set();
}

// ---- Wiring -----------------------------------------------------------------

ib::QueuePair* Proc::create_link(int peer) {
  JOBMIG_EXPECTS(!links_.contains(peer));
  Link link;
  link.qp = env_->hca->create_qp(send_cq_, recv_cq_);
  auto [it, ok] = links_.emplace(peer, std::move(link));
  JOBMIG_ASSERT(ok);
  return it->second.qp.get();
}

ib::IbAddr Proc::link_addr(int peer) const {
  auto it = links_.find(peer);
  JOBMIG_EXPECTS(it != links_.end());
  return ib::IbAddr{env_->hca->node(), it->second.qp->qpn()};
}

void Proc::connect_link(int peer, ib::IbAddr remote) {
  auto it = links_.find(peer);
  JOBMIG_EXPECTS(it != links_.end());
  it->second.qp->connect(remote);
}

void Proc::activate_link(int peer) {
  auto it = links_.find(peer);
  JOBMIG_EXPECTS(it != links_.end());
  Link& link = it->second;
  JOBMIG_EXPECTS(!link.active);
  link.ring.resize(kRingSlots);
  const std::size_t slot_bytes = env_->cal->mpi.eager_threshold + MsgHeader::kWireSize;
  for (std::size_t s = 0; s < kRingSlots; ++s) {
    link.ring[s].resize(slot_bytes);
    link.qp->post_recv(ib::RecvWr{ring_wr_id(peer, s), link.ring[s].data(), slot_bytes});
  }
  link.active = true;
}

std::vector<int> Proc::connected_peers() const {
  std::vector<int> out;
  out.reserve(links_.size());
  for (const auto& [peer, link] : links_) out.push_back(peer);
  return out;
}

void Proc::post_ring_slot(int peer, std::size_t slot) {
  auto it = links_.find(peer);
  if (it == links_.end()) return;  // link torn down meanwhile
  Link& link = it->second;
  link.qp->post_recv(
      ib::RecvWr{ring_wr_id(peer, slot), link.ring[slot].data(), link.ring[slot].size()});
}

// ---- Service loops ----------------------------------------------------------

sim::Task Proc::send_dispatch_loop() {
  std::vector<ib::WorkCompletion> batch;  // lives in the loop frame, reused
  bool stop = false;
  while (!stop) {
    co_await send_cq_.wait_batch(batch);
    for (const ib::WorkCompletion& wc : batch) {
      if (wc.wr_id == kStopWr) {
        stop = true;
        break;
      }
      wr_results_[wc.wr_id] = wc;
      auto it = wr_waiters_.find(wc.wr_id);
      if (it != wr_waiters_.end()) it->second->set();
    }
  }
  dispatch_running_ = false;
}

sim::ValueTask<ib::WorkCompletion> Proc::await_wr(std::uint64_t wr_id) {
  if (!wr_results_.contains(wr_id)) {
    sim::Event ev;
    wr_waiters_[wr_id] = &ev;
    co_await ev.wait();
    wr_waiters_.erase(wr_id);
  }
  auto it = wr_results_.find(wr_id);
  JOBMIG_ASSERT(it != wr_results_.end());
  ib::WorkCompletion wc = it->second;
  wr_results_.erase(it);
  co_return wc;
}

sim::Task Proc::progress_loop() {
  std::vector<ib::WorkCompletion> batch;  // lives in the loop frame, reused
  bool stop = false;
  while (!stop) {
    co_await recv_cq_.wait_batch(batch);
    for (const ib::WorkCompletion& wc : batch) {
      if (wc.wr_id == kStopWr) {
        stop = true;
        break;
      }
      if (!wc.ok()) continue;  // flushed ring slot during teardown
      const int peer = static_cast<int>((wc.wr_id >> 8) & 0xFFFFFFFFu);
      const std::size_t slot = static_cast<std::size_t>(wc.wr_id & 0xFF);
      auto it = links_.find(peer);
      if (it == links_.end()) continue;
      const sim::Bytes& buf = it->second.ring[slot];
      auto header = MsgHeader::decode(sim::ByteSpan(buf.data(), wc.byte_len));
      JOBMIG_ASSERT_MSG(header.has_value(), "undecodable channel message");
      const std::size_t inline_len =
          header->kind == MsgKind::kEager ? static_cast<std::size_t>(header->payload_len) : 0;
      sim::Bytes payload(buf.begin() + MsgHeader::kWireSize,
                         buf.begin() + static_cast<std::ptrdiff_t>(MsgHeader::kWireSize + inline_len));
      handle_message(peer, *header, payload);
      post_ring_slot(peer, slot);
    }
  }
  progress_running_ = false;
}

std::string Proc::trace_track() const {
  // Job 0 (single-job legacy mode) keeps the historical track names so
  // existing traces, goldens and jobmig-trace baselines are unchanged.
  const int jid = job_.job_id();
  if (jid == 0) return "rank" + std::to_string(rank_);
  return "j" + std::to_string(jid) + ":rank" + std::to_string(rank_);
}

void Proc::handle_message(int peer, const MsgHeader& h, sim::ByteSpan payload) {
  switch (h.kind) {
    case MsgKind::kEager: {
      if (auto pending = match_pending(peer, h.tag)) {
        pending->actual_src = peer;
        pending->data.assign(payload.begin(), payload.end());
        pending->sender_ctx = h.ctx;
        pending->done.set();
      } else {
        unexpected_.push_back(UnexpectedMsg{h, sim::Bytes(payload.begin(), payload.end())});
        unexpected_arrived_.set();
      }
      break;
    }
    case MsgKind::kRts: {
      if (auto pending = match_pending(peer, h.tag)) {
        pending->actual_src = peer;
        pending->sender_ctx = h.ctx;
        env_->engine->spawn(run_rendezvous_pull(peer, h, std::move(pending)));
      } else {
        unexpected_.push_back(UnexpectedMsg{h, {}});
        unexpected_arrived_.set();
      }
      break;
    }
    case MsgKind::kFin: {
      auto it = rdvz_sends_.find(h.rdvz_id);
      JOBMIG_ASSERT_MSG(it != rdvz_sends_.end(), "FIN for unknown rendezvous");
      it->second.fin.set();
      break;
    }
  }
}

sim::Task Proc::run_rendezvous_pull(int peer, MsgHeader rts,
                                    std::shared_ptr<PendingRecv> pending) {
  ++active_pulls_;
  telemetry::ScopedSpan span(trace_track(), "rdvz pull", /*async=*/true);
  span.link_from(rts.ctx);
  span.set_job(job_.job_id());
  sim::Bytes dst(rts.payload_len);
  ib::MemoryRegion* mr = co_await env_->hca->reg_mr(dst.data(), dst.size());
  auto it = links_.find(peer);
  JOBMIG_ASSERT_MSG(it != links_.end(), "rendezvous pull on a torn-down link");
  const std::uint64_t wr = next_wr_id();
  it->second.qp->post_rdma_read(ib::RdmaWr{wr, dst.data(), 0, rts.rkey, rts.payload_len});
  ib::WorkCompletion wc = co_await await_wr(wr);
  env_->hca->dereg_mr(mr);
  JOBMIG_ASSERT_MSG(wc.ok(), "rendezvous RDMA read failed");
  MsgHeader fin;
  fin.kind = MsgKind::kFin;
  fin.src_rank = static_cast<std::uint32_t>(rank_);
  fin.tag = rts.tag;
  fin.rdvz_id = rts.rdvz_id;
  // The sender does NOT link from this context (pull already links from the
  // RTS; a back-link would put a 2-cycle in the flow DAG), but it is on the
  // wire for offline consumers.
  fin.ctx = span.context();
  co_await send_control(peer, fin, {});
  if (state_ != ProcState::kDead) {
    pending->data = std::move(dst);
    pending->done.set();
  }
  --active_pulls_;
  job_.count_message();
}

sim::Task Proc::send_control(int peer, const MsgHeader& h, sim::ByteSpan payload) {
  auto it = links_.find(peer);
  JOBMIG_ASSERT_MSG(it != links_.end(), "control message on a torn-down link");
  sim::Bytes wire;
  wire.reserve(MsgHeader::kWireSize + payload.size());
  h.encode_to(wire);
  wire.insert(wire.end(), payload.begin(), payload.end());
  const std::uint64_t wr = next_wr_id();
  it->second.qp->post_send(ib::SendWr{wr, std::move(wire)});
  ib::WorkCompletion wc = co_await await_wr(wr);
  JOBMIG_ASSERT_MSG(wc.ok(), "channel send failed");
}

// ---- Point-to-point ----------------------------------------------------------

sim::Task Proc::send(int dst, std::int32_t tag, sim::Bytes payload) {
  JOBMIG_EXPECTS_MSG(dst >= 0 && dst < size() && dst != rank_, "bad destination rank");
  co_await enter_op();
  OpGuard guard(outstanding_ops_, ops_drained_);
  telemetry::ScopedSpan span(trace_track(), "send", /*async=*/true);
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  if (telemetry::enabled()) {
    span.attr("dst", std::to_string(dst));
    span.attr("bytes", std::to_string(payload.size()));
    telemetry::count("mpr.p2p.msgs");
    telemetry::observe("mpr.p2p.bytes", payload.size());
  }
  co_await sim::sleep_for(env_->cal->mpi.per_call_overhead);
  co_await job_.ensure_connected(rank_, dst);

  if (payload.size() <= env_->cal->mpi.eager_threshold) {
    telemetry::count("mpr.p2p.eager_msgs");
    MsgHeader h;
    h.kind = MsgKind::kEager;
    h.src_rank = static_cast<std::uint32_t>(rank_);
    h.tag = tag;
    h.payload_len = payload.size();
    h.ctx = span.context();
    co_await send_control(dst, h, payload);
    job_.count_message();
    co_return;
  }

  // Rendezvous: pin the payload, advertise it, wait for the receiver's pull.
  telemetry::count("mpr.p2p.rdvz_msgs");
  const std::uint64_t id = ++rdvz_seq_;
  RdvzSend& op = rdvz_sends_[id];
  op.pinned = std::move(payload);
  op.mr = co_await env_->hca->reg_mr(op.pinned.data(), op.pinned.size());
  MsgHeader rts;
  rts.kind = MsgKind::kRts;
  rts.src_rank = static_cast<std::uint32_t>(rank_);
  rts.tag = tag;
  rts.payload_len = op.pinned.size();
  rts.rdvz_id = id;
  rts.rkey = op.mr->rkey();
  rts.ctx = span.context();
  co_await send_control(dst, rts, {});
  co_await op.fin.wait();
  if (state_ == ProcState::kDead) throw ProcKilled{};
  env_->hca->dereg_mr(op.mr);
  rdvz_sends_.erase(id);
}

sim::ValueTask<std::pair<int, sim::Bytes>> Proc::recv_impl(int src, std::int32_t tag) {
  co_await enter_op();
  OpGuard guard(outstanding_ops_, ops_drained_);
  telemetry::ScopedSpan span(trace_track(), "recv", /*async=*/true);
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  co_await sim::sleep_for(env_->cal->mpi.per_call_overhead);

  if (auto um = take_unexpected(src, tag)) {
    const int sender = static_cast<int>(um->header.src_rank);
    span.link_from(um->header.ctx);
    if (um->header.kind == MsgKind::kEager) {
      co_return std::pair<int, sim::Bytes>(sender, std::move(um->payload));
    }
    // Early RTS: pull now.
    auto pending = std::make_shared<PendingRecv>();
    pending->src = src;
    pending->tag = tag;
    pending->actual_src = sender;
    env_->engine->spawn(run_rendezvous_pull(sender, um->header, pending));
    co_await pending->done.wait();
    if (state_ == ProcState::kDead) throw ProcKilled{};
    co_return std::pair<int, sim::Bytes>(sender, std::move(pending->data));
  }

  auto pending = std::make_shared<PendingRecv>();
  pending->src = src;
  pending->tag = tag;
  pending_recvs_.push_back(pending);
  co_await pending->done.wait();
  if (state_ == ProcState::kDead) throw ProcKilled{};
  span.link_from(pending->sender_ctx);
  co_return std::pair<int, sim::Bytes>(pending->actual_src, std::move(pending->data));
}

sim::ValueTask<sim::Bytes> Proc::recv(int src, std::int32_t tag) {
  JOBMIG_EXPECTS_MSG((src >= 0 && src < size() && src != rank_) || src == kAnySource,
                     "bad source rank");
  auto [sender, data] = co_await recv_impl(src, tag);
  co_return std::move(data);
}

sim::ValueTask<std::pair<int, sim::Bytes>> Proc::recv_any(std::int32_t tag) {
  return recv_impl(kAnySource, tag);
}

sim::ValueTask<int> Proc::probe(int src, std::int32_t tag) {
  co_await enter_op();
  OpGuard guard(outstanding_ops_, ops_drained_);
  telemetry::ScopedSpan span(trace_track(), "probe", /*async=*/true);
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  while (true) {
    if (state_ == ProcState::kDead) throw ProcKilled{};
    if (auto sender = iprobe(src, tag)) co_return *sender;
    co_await unexpected_arrived_.wait();
    unexpected_arrived_.reset();
  }
}

std::optional<int> Proc::iprobe(int src, std::int32_t tag) const {
  for (const auto& m : unexpected_) {
    const int sender = static_cast<int>(m.header.src_rank);
    if ((src == kAnySource || sender == src) && m.header.tag == tag) return sender;
  }
  return std::nullopt;
}

std::shared_ptr<Proc::PendingRecv> Proc::match_pending(int src, std::int32_t tag) {
  for (auto it = pending_recvs_.begin(); it != pending_recvs_.end(); ++it) {
    if (((*it)->src == src || (*it)->src == kAnySource) && (*it)->tag == tag) {
      auto p = *it;
      pending_recvs_.erase(it);
      return p;
    }
  }
  return nullptr;
}

std::optional<Proc::UnexpectedMsg> Proc::take_unexpected(int src, std::int32_t tag) {
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const int sender = static_cast<int>(it->header.src_rank);
    if ((src == kAnySource || sender == src) && it->header.tag == tag) {
      UnexpectedMsg m = std::move(*it);
      unexpected_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

// ---- Runtime-state capture -----------------------------------------------------

void Proc::pack_runtime_state() {
  // Unexpected RTS entries cannot survive teardown (their rkeys die with the
  // sender's MR); the send side re-issues them, so only eager payloads and
  // the collective counter are captured.
  sim::Bytes out;
  sim::put_u64(out, collective_seq_);
  std::uint32_t eager_count = 0;
  for (const auto& m : unexpected_) {
    JOBMIG_ASSERT_MSG(m.header.kind == MsgKind::kEager,
                      "non-eager unexpected message at suspension");
    ++eager_count;
  }
  sim::put_u32(out, eager_count);
  for (const auto& m : unexpected_) {
    m.header.encode_to(out);
    sim::put_u32(out, static_cast<std::uint32_t>(m.payload.size()));
    out.insert(out.end(), m.payload.begin(), m.payload.end());
  }
  process_->set_runtime_state(std::move(out));
}

void Proc::unpack_runtime_state() {
  const sim::Bytes& in = process_->runtime_state();
  if (in.empty()) return;
  std::size_t pos = 0;
  collective_seq_ = sim::get_u64(in, pos);
  pos += 8;
  const std::uint32_t count = sim::get_u32(in, pos);
  pos += 4;
  unexpected_.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    auto h = MsgHeader::decode(sim::ByteSpan(in.data() + pos, in.size() - pos));
    JOBMIG_ASSERT(h.has_value());
    pos += MsgHeader::kWireSize;
    const std::uint32_t len = sim::get_u32(in, pos);
    pos += 4;
    unexpected_.push_back(
        UnexpectedMsg{*h, sim::Bytes(in.begin() + static_cast<std::ptrdiff_t>(pos),
                                     in.begin() + static_cast<std::ptrdiff_t>(pos + len))});
    pos += len;
  }
}

}  // namespace jobmig::mpr
