#include "jobmig/mpr/wire.hpp"

namespace jobmig::mpr {

void MsgHeader::encode_to(sim::Bytes& out) const {
  out.push_back(static_cast<std::byte>(kind));
  sim::put_u32(out, src_rank);
  sim::put_u32(out, static_cast<std::uint32_t>(tag));
  sim::put_u64(out, payload_len);
  sim::put_u64(out, rdvz_id);
  sim::put_u32(out, rkey);
  sim::put_u64(out, ctx.trace_id);
  sim::put_u64(out, ctx.span_id);
}

std::optional<MsgHeader> MsgHeader::decode(sim::ByteSpan data) {
  if (data.size() < kWireSize) return std::nullopt;
  MsgHeader h;
  const auto kind = static_cast<std::uint8_t>(data[0]);
  if (kind < 1 || kind > 3) return std::nullopt;
  h.kind = static_cast<MsgKind>(kind);
  h.src_rank = sim::get_u32(data, 1);
  h.tag = static_cast<std::int32_t>(sim::get_u32(data, 5));
  h.payload_len = sim::get_u64(data, 9);
  h.rdvz_id = sim::get_u64(data, 17);
  h.rkey = sim::get_u32(data, 25);
  h.ctx.trace_id = sim::get_u64(data, 29);
  h.ctx.span_id = sim::get_u64(data, 37);
  return h;
}

}  // namespace jobmig::mpr
