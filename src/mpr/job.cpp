#include "jobmig/mpr/job.hpp"

#include "jobmig/sim/log.hpp"

namespace jobmig::mpr {

using namespace sim::literals;

Job::Job(sim::Engine& engine, sim::Calibration cal) : engine_(engine), cal_(cal) {}

Job::~Job() = default;

Proc& Job::add_proc(int rank, NodeEnv& env, std::uint64_t image_bytes, std::uint64_t image_seed) {
  JOBMIG_EXPECTS_MSG(rank == static_cast<int>(procs_.size()),
                     "ranks must be added densely in order");
  procs_.push_back(std::make_unique<Proc>(*this, rank, env, image_bytes, image_seed));
  placement_.push_back(&env);
  return *procs_.back();
}

Proc& Job::proc(int rank) {
  JOBMIG_EXPECTS(rank >= 0 && rank < size());
  return *procs_[static_cast<std::size_t>(rank)];
}

NodeEnv& Job::node_of(int rank) {
  JOBMIG_EXPECTS(rank >= 0 && rank < size());
  return *placement_[static_cast<std::size_t>(rank)];
}

void Job::launch_app(AppMain main) {
  JOBMIG_EXPECTS_MSG(app_main_ == nullptr, "app already launched");
  app_main_ = std::move(main);
  for (int r = 0; r < size(); ++r) engine_.spawn(run_app_wrapper(r));
}

void Job::relaunch_app_on(int rank) {
  JOBMIG_EXPECTS(app_main_ != nullptr);
  engine_.spawn(run_app_wrapper(rank));
}

sim::Task Job::run_app_wrapper(int rank) {
  Proc* self = procs_[static_cast<std::size_t>(rank)].get();
  try {
    co_await app_main_(*self);
  } catch (const ProcKilled&) {
    co_return;  // migrated away; the restarted twin finishes for this rank
  }
  ++finished_ranks_;
  if (finished_ranks_ >= procs_.size()) app_done_.set();
}

sim::Task Job::wait_app_done() {
  while (finished_ranks_ < procs_.size()) {
    co_await app_done_.wait();
    app_done_.reset();
  }
}

sim::Task Job::ensure_connected(int a, int b) {
  JOBMIG_EXPECTS(a != b);
  const auto key = std::make_pair(std::min(a, b), std::max(a, b));
  auto [it, inserted] = connect_mutexes_.try_emplace(key);
  if (inserted) it->second = std::make_unique<sim::Mutex>();
  auto lock = co_await it->second->lock();

  Proc& pa = proc(a);
  Proc& pb = proc(b);
  if (pa.has_link(b) && pb.has_link(a)) co_return;
  JOBMIG_ASSERT_MSG(!pa.has_link(b) && !pb.has_link(a), "half-connected rank pair");

  // On-demand connection management (as in MVAPICH2): QP creation on both
  // ends plus an out-of-band address exchange through the launcher tree.
  co_await sim::sleep_for(cal_.ib.qp_setup + 120_us);
  pa.create_link(b);
  pb.create_link(a);
  pa.connect_link(b, pb.link_addr(a));
  pb.connect_link(a, pa.link_addr(b));
  pa.activate_link(b);
  pb.activate_link(a);
}

void Job::replace_proc(int rank, std::unique_ptr<Proc> fresh) {
  JOBMIG_EXPECTS(rank >= 0 && rank < size());
  JOBMIG_EXPECTS_MSG(procs_[static_cast<std::size_t>(rank)]->state() == ProcState::kDead,
                     "replacing a live process");
  placement_[static_cast<std::size_t>(rank)] = &fresh->env();
  procs_[static_cast<std::size_t>(rank)] = std::move(fresh);
}

std::unique_ptr<Proc> Job::make_unwired_proc(int rank, NodeEnv& env) {
  return std::make_unique<Proc>(*this, rank, env, 0, 0, /*start_suspended=*/true);
}

void Job::configure_migration_barrier() {
  migration_barrier_ = std::make_unique<sim::Barrier>(static_cast<std::size_t>(size()));
  barrier_release_ctx_ = {};
}

sim::Task Job::migration_barrier_enter() {
  JOBMIG_EXPECTS_MSG(migration_barrier_ != nullptr, "migration barrier not configured");
  co_await migration_barrier_->arrive_and_wait();
}

}  // namespace jobmig::mpr
