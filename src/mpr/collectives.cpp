#include <algorithm>
#include <cstring>

#include "jobmig/mpr/job.hpp"
#include "jobmig/mpr/proc.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::mpr {

namespace {

/// Collective operations use a reserved tag region so they never collide
/// with application tags (which must stay below kCollTagBase). Each
/// collective instance consumes one sequence number; ranks stay aligned
/// because every rank calls collectives in the same program order (and the
/// counter is checkpointed with the process).
constexpr std::int32_t kCollTagBase = 0x40000000;

std::int32_t coll_tag(std::uint64_t seq, int round) {
  return kCollTagBase | static_cast<std::int32_t>(((seq & 0x3FFFFF) << 6) |
                                                  static_cast<std::uint32_t>(round & 0x3F));
}

sim::Bytes encode_double(double v) {
  sim::Bytes b(sizeof(double));
  std::memcpy(b.data(), &v, sizeof(double));
  return b;
}

double decode_double(const sim::Bytes& b) {
  JOBMIG_EXPECTS(b.size() == sizeof(double));
  double v;
  std::memcpy(&v, b.data(), sizeof(double));
  return v;
}

}  // namespace

sim::Task Proc::barrier() {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  if (n <= 1) co_return;
  telemetry::ScopedSpan span(trace_track(), "barrier");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  static const sim::Bytes kToken{std::byte{0x42}};
  // Dissemination barrier: log2(n) rounds of paired token exchange.
  int round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (rank_ + dist) % n;
    const int from = (rank_ - dist % n + n) % n;
    sim::TaskGroup group(*env_->engine);
    group.spawn(send(to, coll_tag(seq, round), kToken));
    (void)co_await recv(from, coll_tag(seq, round));
    co_await group.wait();
  }
}

sim::Task Proc::bcast(int root, sim::Bytes& data) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  if (n <= 1) co_return;
  telemetry::ScopedSpan span(trace_track(), "bcast");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 0);
  const int vrank = (rank_ - root + n) % n;
  // Binomial tree: receive from the parent, then fan out to children.
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = (vrank - mask + root) % n;
      data = co_await recv(src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if ((vrank & (mask - 1)) == 0 && !(vrank & mask) && vrank + mask < n) {
      const int dst = (vrank + mask + root) % n;
      co_await send(dst, tag, data);
    }
    mask >>= 1;
  }
}

namespace {
double apply_op(Proc::ReduceOp op, double a, double b) {
  switch (op) {
    case Proc::ReduceOp::kSum: return a + b;
    case Proc::ReduceOp::kMin: return std::min(a, b);
    case Proc::ReduceOp::kMax: return std::max(a, b);
    case Proc::ReduceOp::kProd: return a * b;
  }
  JOBMIG_ASSERT_MSG(false, "unknown reduce op");
  return a;
}
}  // namespace

sim::ValueTask<double> Proc::allreduce(double value, ReduceOp op) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  if (n <= 1) co_return value;
  telemetry::ScopedSpan span(trace_track(), "allreduce");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 1);
  // Binomial reduction to rank 0 ...
  double acc = value;
  int mask = 1;
  while (mask < n) {
    if (rank_ & mask) {
      co_await send(rank_ - mask, tag, encode_double(acc));
      break;
    }
    const int src = rank_ + mask;
    if (src < n) {
      sim::Bytes b = co_await recv(src, tag);
      acc = apply_op(op, acc, decode_double(b));
    }
    mask <<= 1;
  }
  // ... then a binomial broadcast of the result. bcast() consumes its own
  // sequence number on every rank, keeping the counters aligned.
  sim::Bytes result = rank_ == 0 ? encode_double(acc) : sim::Bytes{};
  co_await bcast(0, result);
  co_return decode_double(result);
}

sim::ValueTask<std::vector<sim::Bytes>> Proc::allgather(sim::ByteSpan mine) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  std::vector<sim::Bytes> blocks(static_cast<std::size_t>(n));
  blocks[static_cast<std::size_t>(rank_)].assign(mine.begin(), mine.end());
  if (n <= 1) co_return blocks;
  telemetry::ScopedSpan span(trace_track(), "allgather");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  // Ring allgather: n-1 steps, each forwarding the block received last.
  const int to = (rank_ + 1) % n;
  const int from = (rank_ - 1 + n) % n;
  sim::Bytes current = blocks[static_cast<std::size_t>(rank_)];
  for (int step = 0; step < n - 1; ++step) {
    const std::int32_t tag = coll_tag(seq, step % 64);
    sim::TaskGroup group(*env_->engine);
    group.spawn(send(to, tag, current));
    current = co_await recv(from, tag);
    co_await group.wait();
    const int block_owner = (rank_ - 1 - step + 2 * n) % n;
    blocks[static_cast<std::size_t>(block_owner)] = current;
  }
  co_return blocks;
}

sim::ValueTask<double> Proc::reduce_sum(int root, double value) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  if (n <= 1) co_return value;
  telemetry::ScopedSpan span(trace_track(), "reduce");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 2);
  const int vrank = (rank_ - root + n) % n;
  double acc = value;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int dst = (vrank - mask + root) % n;
      co_await send(dst, tag, encode_double(acc));
      break;
    }
    const int vsrc = vrank + mask;
    if (vsrc < n) {
      sim::Bytes b = co_await recv((vsrc + root) % n, tag);
      acc += decode_double(b);
    }
    mask <<= 1;
  }
  co_return acc;  // meaningful only at root
}

sim::ValueTask<std::vector<sim::Bytes>> Proc::gather(int root, sim::ByteSpan mine) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  telemetry::ScopedSpan span(trace_track(), "gather");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 3);
  std::vector<sim::Bytes> blocks;
  if (rank_ == root) {
    blocks.resize(static_cast<std::size_t>(n));
    blocks[static_cast<std::size_t>(root)].assign(mine.begin(), mine.end());
    for (int src = 0; src < n; ++src) {
      if (src == root) continue;
      blocks[static_cast<std::size_t>(src)] = co_await recv(src, tag);
    }
  } else {
    co_await send(root, tag, mine);
  }
  co_return blocks;
}

sim::ValueTask<sim::Bytes> Proc::scatter(int root, const std::vector<sim::Bytes>& blocks) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  telemetry::ScopedSpan span(trace_track(), "scatter");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 4);
  if (rank_ == root) {
    JOBMIG_EXPECTS_MSG(static_cast<int>(blocks.size()) == n,
                       "scatter root must supply one block per rank");
    sim::TaskGroup group(*env_->engine);
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      group.spawn(send(dst, tag, blocks[static_cast<std::size_t>(dst)]));
    }
    co_await group.wait();
    co_return blocks[static_cast<std::size_t>(root)];
  }
  co_return co_await recv(root, tag);
}

sim::ValueTask<std::vector<sim::Bytes>> Proc::alltoall(const std::vector<sim::Bytes>& to_each) {
  const std::uint64_t seq = collective_seq_++;
  const int n = size();
  JOBMIG_EXPECTS_MSG(static_cast<int>(to_each.size()) == n,
                     "alltoall needs one block per rank");
  telemetry::ScopedSpan span(trace_track(), "alltoall");
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  telemetry::count("mpr.coll.calls");
  const std::int32_t tag = coll_tag(seq, 5);
  std::vector<sim::Bytes> from_each(static_cast<std::size_t>(n));
  from_each[static_cast<std::size_t>(rank_)] = to_each[static_cast<std::size_t>(rank_)];
  if (n <= 1) co_return from_each;
  sim::TaskGroup group(*env_->engine);
  for (int dst = 0; dst < n; ++dst) {
    if (dst == rank_) continue;
    group.spawn(send(dst, tag, to_each[static_cast<std::size_t>(dst)]));
  }
  for (int src = 0; src < n; ++src) {
    if (src == rank_) continue;
    from_each[static_cast<std::size_t>(src)] = co_await recv(src, tag);
  }
  co_await group.wait();
  co_return from_each;
}

sim::ValueTask<sim::Bytes> Proc::sendrecv(int dst, int src, std::int32_t tag,
                                          sim::ByteSpan data) {
  telemetry::ScopedSpan span(trace_track(), "sendrecv", /*async=*/true);
  span.link_from(trace_ctx_);
  span.set_job(job_.job_id());
  sim::TaskGroup group(*env_->engine);
  group.spawn(send(dst, tag, data));
  sim::Bytes got = co_await recv(src, tag);
  co_await group.wait();
  co_return got;
}

// ---- Nonblocking operations ---------------------------------------------------

sim::ValueTask<sim::Bytes> Proc::Request::wait() {
  while (!completed_) {
    co_await event_.wait();
    event_.reset();
  }
  if (error_) std::rethrow_exception(error_);
  co_return std::move(payload_);
}

Proc::RequestPtr Proc::isend(int dst, std::int32_t tag, sim::Bytes payload) {
  auto req = std::make_shared<Request>();
  env_->engine->spawn([](Proc& self, int d, std::int32_t t, sim::Bytes body,
                         RequestPtr r) -> sim::Task {
    try {
      co_await self.send(d, t, std::move(body));
    } catch (...) {
      r->error_ = std::current_exception();
    }
    r->completed_ = true;
    r->event_.set();
  }(*this, dst, tag, std::move(payload), req));
  return req;
}

Proc::RequestPtr Proc::irecv(int src, std::int32_t tag) {
  auto req = std::make_shared<Request>();
  env_->engine->spawn([](Proc& self, int s, std::int32_t t, RequestPtr r) -> sim::Task {
    try {
      r->payload_ = co_await self.recv(s, t);
    } catch (...) {
      r->error_ = std::current_exception();
    }
    r->completed_ = true;
    r->event_.set();
  }(*this, src, tag, req));
  return req;
}

}  // namespace jobmig::mpr
