#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jobmig/ftb/ftb.hpp"
#include "jobmig/mpr/job.hpp"

/// Hierarchical job-launch framework (the ScELA mpirun_rsh/mpispawn role in
/// MVAPICH2): a Job Manager on the login node plus one Node Launch Agent
/// (NLA) per compute/spare node, arranged in a k-ary spawn tree. The paper
/// extends exactly these components: NLAs gain the MIGRATION_READY /
/// MIGRATION_SPARE / MIGRATION_INACTIVE states, and the Job Manager adjusts
/// the spawn tree when ranks move to a spare node (Phase 3).
namespace jobmig::launch {

/// K-ary tree over node indices; node 0 is the root (login node).
class SpawnTree {
 public:
  SpawnTree(std::size_t node_count, std::size_t fanout);

  std::size_t node_count() const { return parent_.size(); }
  std::size_t fanout() const { return fanout_; }
  /// Parent index; nullopt for the root.
  std::optional<std::size_t> parent(std::size_t node) const;
  std::vector<std::size_t> children(std::size_t node) const;
  std::size_t depth() const;
  std::size_t depth_of(std::size_t node) const;

  /// Phase-3 topology adjustment: `replacement` takes over `failed`'s
  /// position (children re-parent to it; it re-parents to failed's parent).
  void replace_node(std::size_t failed, std::size_t replacement);

 private:
  std::size_t fanout_;
  std::vector<std::optional<std::size_t>> parent_;
};

enum class NlaState {
  kReady,     // MIGRATION_READY: hosting active ranks
  kSpare,     // MIGRATION_SPARE: hot spare, no ranks
  kInactive,  // MIGRATION_INACTIVE: drained after migrating its ranks away
};

std::string_view to_string(NlaState s);

/// Node Launch Agent: per-node daemon responsible for starting and
/// terminating the application processes on its node.
class NodeLaunchAgent {
 public:
  NodeLaunchAgent(mpr::NodeEnv& env, ftb::FtbAgent& ftb_agent, NlaState initial_state);

  const std::string& hostname() const { return env_->hostname; }
  mpr::NodeEnv& env() { return *env_; }
  NlaState state() const { return state_; }
  void set_state(NlaState s) { state_ = s; }
  ftb::FtbClient& ftb() { return ftb_client_; }

  /// Ranks currently hosted on this node.
  const std::vector<int>& local_ranks() const { return local_ranks_; }
  void assign_rank(int rank) { local_ranks_.push_back(rank); }
  void remove_rank(int rank);
  void clear_ranks() { local_ranks_.clear(); }

 private:
  mpr::NodeEnv* env_;
  NlaState state_ = NlaState::kReady;
  std::vector<int> local_ranks_;
  ftb::FtbClient ftb_client_;
};

/// Job Manager: login-node coordinator. Owns the spawn tree, the NLA
/// registry and spare-node bookkeeping, and performs the staged job launch.
class JobManager {
 public:
  JobManager(sim::Engine& engine, ftb::FtbAgent& ftb_agent, std::size_t fanout = 4);

  /// Register a node (registration order defines tree positions: the Job
  /// Manager itself is the tree root above all NLAs).
  void register_nla(NodeLaunchAgent& nla);

  /// Charge the staged, tree-parallel launch cost and mark ranks on their
  /// NLAs (placement comes from the Job).
  [[nodiscard]] sim::Task launch(mpr::Job& job);

  NodeLaunchAgent* nla_for_host(const std::string& hostname);
  NodeLaunchAgent* nla_at(std::size_t idx);
  std::size_t nla_count() const { return nlas_.size(); }

  /// First node in MIGRATION_SPARE state; nullptr if none remain.
  NodeLaunchAgent* find_spare();

  /// Phase-3 bookkeeping: move `ranks` from `source` to `target`, flip NLA
  /// states, and adjust the spawn tree.
  void adopt_migration(NodeLaunchAgent& source, NodeLaunchAgent& target,
                       const std::vector<int>& ranks);

  const SpawnTree& tree() const;
  ftb::FtbClient& ftb() { return ftb_client_; }
  sim::Engine& engine() { return engine_; }

  /// Per-hop process-launch latency (ssh/exec across one tree level).
  static constexpr sim::Duration kPerLevelLaunchCost = sim::Duration::ms(120);
  static constexpr sim::Duration kPerRankSpawnCost = sim::Duration::ms(4);

 private:
  void rebuild_tree();

  sim::Engine& engine_;
  std::size_t fanout_;
  std::vector<NodeLaunchAgent*> nlas_;
  std::unique_ptr<SpawnTree> tree_;
  ftb::FtbClient ftb_client_;
};

}  // namespace jobmig::launch
