#include "jobmig/launch/launch.hpp"

#include <algorithm>

#include "jobmig/telemetry/flight_recorder.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::launch {

namespace {

/// Job 0 keeps the historical "launcher" track; orchestrated jobs get a
/// job-qualified one so multi-job traces stay separable.
std::string launch_track(int job_id) {
  return job_id == 0 ? "launcher" : "j" + std::to_string(job_id) + ":launcher";
}

}  // namespace

std::string_view to_string(NlaState s) {
  switch (s) {
    case NlaState::kReady: return "MIGRATION_READY";
    case NlaState::kSpare: return "MIGRATION_SPARE";
    case NlaState::kInactive: return "MIGRATION_INACTIVE";
  }
  return "?";
}

SpawnTree::SpawnTree(std::size_t node_count, std::size_t fanout) : fanout_(fanout) {
  JOBMIG_EXPECTS(fanout >= 1);
  parent_.resize(node_count);
  for (std::size_t i = 1; i < node_count; ++i) parent_[i] = (i - 1) / fanout_;
  if (node_count > 0) parent_[0] = std::nullopt;
}

std::optional<std::size_t> SpawnTree::parent(std::size_t node) const {
  JOBMIG_EXPECTS(node < parent_.size());
  return parent_[node];
}

std::vector<std::size_t> SpawnTree::children(std::size_t node) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (parent_[i] == node) out.push_back(i);
  }
  return out;
}

std::size_t SpawnTree::depth_of(std::size_t node) const {
  JOBMIG_EXPECTS(node < parent_.size());
  std::size_t d = 0;
  std::optional<std::size_t> p = parent_[node];
  while (p) {
    ++d;
    p = parent_[*p];
    JOBMIG_ASSERT_MSG(d <= parent_.size(), "cycle in spawn tree");
  }
  return d;
}

std::size_t SpawnTree::depth() const {
  std::size_t d = 0;
  for (std::size_t i = 0; i < parent_.size(); ++i) d = std::max(d, depth_of(i));
  return d;
}

void SpawnTree::replace_node(std::size_t failed, std::size_t replacement) {
  JOBMIG_EXPECTS(failed < parent_.size() && replacement < parent_.size());
  JOBMIG_EXPECTS_MSG(failed != replacement, "node cannot replace itself");
  // The replacement abandons its old position (it had no children as a
  // spare leaf), takes the failed node's parent, and inherits its children.
  for (std::size_t i = 0; i < parent_.size(); ++i) {
    if (i != replacement && parent_[i] == failed) parent_[i] = replacement;
  }
  parent_[replacement] = parent_[failed];
  // The failed node is parked under its replacement so the tree stays
  // connected for bookkeeping; it is inactive and launches nothing.
  parent_[failed] = replacement;
}

NodeLaunchAgent::NodeLaunchAgent(mpr::NodeEnv& env, ftb::FtbAgent& ftb_agent,
                                 NlaState initial_state)
    : env_(&env), state_(initial_state), ftb_client_(ftb_agent, "nla:" + env.hostname) {}

void NodeLaunchAgent::remove_rank(int rank) {
  local_ranks_.erase(std::remove(local_ranks_.begin(), local_ranks_.end(), rank),
                     local_ranks_.end());
}

JobManager::JobManager(sim::Engine& engine, ftb::FtbAgent& ftb_agent, std::size_t fanout)
    : engine_(engine), fanout_(fanout), ftb_client_(ftb_agent, "job_manager") {
  JOBMIG_EXPECTS(fanout >= 1);
}

void JobManager::register_nla(NodeLaunchAgent& nla) {
  nlas_.push_back(&nla);
  rebuild_tree();
}

void JobManager::rebuild_tree() {
  // Tree slot 0 is the Job Manager itself; NLAs fill slots 1..n.
  tree_ = std::make_unique<SpawnTree>(nlas_.size() + 1, fanout_);
}

const SpawnTree& JobManager::tree() const {
  JOBMIG_EXPECTS_MSG(tree_ != nullptr, "no NLAs registered");
  return *tree_;
}

NodeLaunchAgent* JobManager::nla_for_host(const std::string& hostname) {
  for (NodeLaunchAgent* nla : nlas_) {
    if (nla->hostname() == hostname) return nla;
  }
  return nullptr;
}

NodeLaunchAgent* JobManager::nla_at(std::size_t idx) {
  return idx < nlas_.size() ? nlas_[idx] : nullptr;
}

NodeLaunchAgent* JobManager::find_spare() {
  for (NodeLaunchAgent* nla : nlas_) {
    if (nla->state() == NlaState::kSpare) return nla;
  }
  return nullptr;
}

sim::Task JobManager::launch(mpr::Job& job) {
  JOBMIG_EXPECTS(tree_ != nullptr);
  // Staged launch: each tree level starts in parallel after its parent
  // level (ScELA's scalable bootstrap), then ranks spawn on their nodes.
  const std::size_t levels = tree_->depth();
  const std::string track = launch_track(job.job_id());
  telemetry::ScopedSpan span(track, "launch job");
  span.set_job(job.job_id());
  if (telemetry::enabled()) {
    span.attr("levels", std::to_string(levels));
    span.attr("ranks", std::to_string(job.size()));
    span.attr("nodes", std::to_string(nlas_.size()));
    telemetry::count("launch.tree_levels", levels);
  }
  for (std::size_t lvl = 0; lvl < levels; ++lvl) {
    telemetry::ScopedSpan level_span(track, "spawn level " + std::to_string(lvl + 1));
    level_span.set_job(job.job_id());
    co_await sim::sleep_for(kPerLevelLaunchCost);
  }
  std::size_t max_ranks_per_node = 0;
  for (int r = 0; r < job.size(); ++r) {
    NodeLaunchAgent* nla = nla_for_host(job.node_of(r).hostname);
    JOBMIG_EXPECTS_MSG(nla != nullptr, "rank placed on an unregistered node");
    nla->assign_rank(r);
  }
  for (NodeLaunchAgent* nla : nlas_) {
    max_ranks_per_node = std::max(max_ranks_per_node, nla->local_ranks().size());
  }
  telemetry::ScopedSpan rank_span(track, "spawn ranks");
  rank_span.set_job(job.job_id());
  if (telemetry::enabled()) {
    rank_span.attr("max_ranks_per_node", std::to_string(max_ranks_per_node));
    telemetry::count("launch.ranks_spawned", static_cast<std::uint64_t>(job.size()));
  }
  co_await sim::sleep_for(kPerRankSpawnCost * static_cast<std::int64_t>(max_ranks_per_node));
}

void JobManager::adopt_migration(NodeLaunchAgent& source, NodeLaunchAgent& target,
                                 const std::vector<int>& ranks) {
  JOBMIG_EXPECTS_MSG(target.state() == NlaState::kSpare, "migration target must be a spare");
  telemetry::count("launch.migrations_adopted");
  telemetry::flight_note("launch", "adopt_migration " + source.hostname() + " -> " +
                                       target.hostname() + " (" + std::to_string(ranks.size()) +
                                       " ranks)");
  for (int r : ranks) {
    source.remove_rank(r);
    target.assign_rank(r);
  }
  // Spawn-tree adjustment (tree slots are offset by 1 for the JM root).
  std::size_t src_idx = 0, dst_idx = 0;
  for (std::size_t i = 0; i < nlas_.size(); ++i) {
    if (nlas_[i] == &source) src_idx = i + 1;
    if (nlas_[i] == &target) dst_idx = i + 1;
  }
  JOBMIG_ASSERT(src_idx != 0 && dst_idx != 0);
  tree_->replace_node(src_idx, dst_idx);
  source.set_state(NlaState::kInactive);
  target.set_state(NlaState::kReady);
}

}  // namespace jobmig::launch
