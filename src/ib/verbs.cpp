#include "jobmig/ib/verbs.hpp"

#include <cstring>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::ib {

std::string_view to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocalLengthError: return "local-length-error";
    case WcStatus::kRemoteAccessError: return "remote-access-error";
    case WcStatus::kRetryExceeded: return "retry-exceeded";
    case WcStatus::kFlushError: return "flush-error";
  }
  return "?";
}

sim::ValueTask<WorkCompletion> CompletionQueue::wait() {
  while (queue_.empty()) {
    co_await avail_.wait();
    avail_.reset();
  }
  WorkCompletion wc = queue_.front();
  queue_.pop_front();
  // Keep the availability latch truthful after consuming: if completions
  // remain, leave the event signalled so a second waiter parked on the same
  // CQ is not stranded (its wake raced with our pop + reset above).
  if (!queue_.empty()) avail_.set();
  co_return wc;
}

std::optional<WorkCompletion> CompletionQueue::poll() {
  if (queue_.empty()) return std::nullopt;
  WorkCompletion wc = queue_.front();
  queue_.pop_front();
  return wc;
}

std::size_t CompletionQueue::poll_batch(std::vector<WorkCompletion>& out, std::size_t max) {
  std::size_t n = 0;
  while (!queue_.empty() && n < max) {
    out.push_back(queue_.front());
    queue_.pop_front();
    ++n;
  }
  return n;
}

sim::ValueTask<std::size_t> CompletionQueue::wait_batch(std::vector<WorkCompletion>& out,
                                                        std::size_t max) {
  out.clear();
  while (queue_.empty()) {
    co_await avail_.wait();
    avail_.reset();
  }
  const std::size_t n = poll_batch(out, max);
  if (!queue_.empty()) avail_.set();  // same latch invariant as wait()
  co_return n;
}

void CompletionQueue::push(WorkCompletion wc) {
  queue_.push_back(wc);
  avail_.set();
}

namespace detail {

/// A posted work request parked on the endpoint's submission queue until the
/// drain coroutine reaches it. User-declared special members for the same
/// GCC 12 by-value-coroutine-parameter reason as SendWr.
struct PendingWr {
  enum class Kind { kSend, kRdmaRead, kRdmaWrite, kFetchAdd, kCompareSwap };
  Kind kind = Kind::kSend;
  sim::TimePoint posted{};  // wqe_begin for the latency histograms
  SendWr send;
  RdmaWr rdma;
  AtomicWr atomic;

  PendingWr() = default;
  PendingWr(const PendingWr&) = default;
  PendingWr(PendingWr&&) = default;
  PendingWr& operator=(const PendingWr&) = default;
  PendingWr& operator=(PendingWr&&) = default;
};

/// A finished byte phase whose ACK is still on the return path. Due times
/// are monotonic per endpoint (byte phases are serialized), so the completer
/// coroutine just sleeps front-to-back.
struct TailCompletion {
  sim::TimePoint due{};
  sim::TimePoint wqe_begin{};
  std::uint64_t wr_id = 0;
  WcOpcode op = WcOpcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  std::uint64_t len = 0;
  telemetry::InternedHistogram* latency = nullptr;  // null: op is not timed
};

struct QpEndpoint {
  Hca* hca = nullptr;
  QpNum qpn = 0;
  QpState state = QpState::kReset;
  IbAddr remote{};
  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;
  std::deque<RecvWr> recvs;
  sim::Event recv_posted;
  std::size_t outstanding = 0;

  // Submission queue: posts append here; one long-lived drain coroutine per
  // endpoint serializes the byte phases (RC ordering + RNR HOL blocking, the
  // role the old per-WQE tx mutex played) — one frame per QP, not per WQE.
  std::deque<PendingWr> sq;
  bool drain_running = false;
  // ACK tails pipelined behind the byte phases, reaped by one completer.
  std::deque<TailCompletion> tails;
  bool completer_running = false;

  // Interned per-link byte counters, named at connect() time so the per-WQE
  // hot path never builds a metric-name string.
  telemetry::InternedCounter link_tx_bytes;  // data flowing local -> remote
  telemetry::InternedCounter link_rx_bytes;  // remote -> local (RDMA READ)

  /// Move to ERROR, flushing posted receives to the recv CQ (if attached).
  void error_out() {
    if (state == QpState::kError) return;
    state = QpState::kError;
    flush_recvs();
    recv_posted.set();  // wake senders parked on this endpoint
  }

  /// Handle destroyed: error out, detach CQs, remove from the HCA registry.
  void detach() {
    error_out();
    send_cq = nullptr;
    recv_cq = nullptr;
    if (hca) hca->unregister_qp(qpn);
  }

  void flush_recvs() {
    while (!recvs.empty()) {
      RecvWr r = recvs.front();
      recvs.pop_front();
      if (recv_cq) {
        recv_cq->push(WorkCompletion{r.wr_id, WcStatus::kFlushError, WcOpcode::kRecv, 0, 0, false});
      }
    }
  }

  void complete(std::uint64_t wr_id, WcOpcode op, WcStatus status, std::uint64_t len) {
    JOBMIG_ASSERT(outstanding > 0);
    --outstanding;
    if (send_cq) send_cq->push(WorkCompletion{wr_id, status, op, len, 0, false});
  }
};

namespace {

using EpPtr = std::shared_ptr<QpEndpoint>;

/// Wait for a posted receive on `dst` and copy the payload in.
/// Returns the status the *sender* should observe.
sim::ValueTask<WcStatus> deliver(EpPtr dst, sim::Bytes payload, std::uint32_t imm, bool has_imm) {
  while (dst->recvs.empty()) {
    if (dst->state != QpState::kRts) co_return WcStatus::kRetryExceeded;
    co_await dst->recv_posted.wait();
    dst->recv_posted.reset();
  }
  if (dst->state != QpState::kRts) co_return WcStatus::kRetryExceeded;
  RecvWr r = dst->recvs.front();
  dst->recvs.pop_front();
  if (payload.size() > r.length) {
    if (dst->recv_cq) {
      dst->recv_cq->push(
          WorkCompletion{r.wr_id, WcStatus::kLocalLengthError, WcOpcode::kRecv, 0, 0, false});
    }
    co_return WcStatus::kRemoteAccessError;
  }
  if (!payload.empty()) std::memcpy(r.addr, payload.data(), payload.size());
  if (dst->recv_cq) {
    dst->recv_cq->push(WorkCompletion{r.wr_id, WcStatus::kSuccess, WcOpcode::kRecv,
                                      payload.size(), imm, has_imm});
  }
  co_return WcStatus::kSuccess;
}

// Latency histograms for the timed verbs. Interned: the per-WQE path does
// an epoch check and a pointer bump, never a map lookup or string build.
telemetry::InternedHistogram g_send_ns{"ib.send_ns"};
telemetry::InternedHistogram g_rdma_read_ns{"ib.rdma_read_ns"};
telemetry::InternedHistogram g_rdma_write_ns{"ib.rdma_write_ns"};

sim::Task run_completer(EpPtr ep);

/// Queue an ACK-tail completion and make sure a completer is reaping them.
/// The drain moves on to the next WR immediately — the 2-hop ACK return is
/// pipelined behind the next byte phase, exactly like the old per-WQE model
/// which released the tx mutex before its ACK sleep.
void enqueue_tail(const EpPtr& ep, TailCompletion t) {
  ep->tails.push_back(t);
  if (!ep->completer_running) {
    ep->completer_running = true;
    ep->hca->engine().spawn(run_completer(ep));
  }
}

sim::Task run_completer(EpPtr ep) {
  while (!ep->tails.empty()) {
    const TailCompletion t = ep->tails.front();
    ep->tails.pop_front();
    co_await sim::sleep_until(t.due);
    if (t.latency != nullptr) t.latency->observe_ns(t.due - t.wqe_begin);
    ep->complete(t.wr_id, t.op, t.status, t.len);
  }
  ep->completer_running = false;
}

sim::ValueTask<void> process_send(EpPtr src, PendingWr pw) {
  const std::uint64_t len = pw.send.payload.size();
  if (src->state != QpState::kRts) {
    src->complete(pw.send.wr_id, WcOpcode::kSend, WcStatus::kFlushError, len);
    co_return;
  }
  const sim::IbParams& p = src->hca->fabric().params();
  co_await sim::sleep_for(p.per_wqe_overhead);
  WcStatus status = WcStatus::kSuccess;
  Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
  EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
  if (!dst || dst->state != QpState::kRts) {
    status = WcStatus::kRetryExceeded;
  } else {
    co_await sim::sleep_for(p.hop_latency * 2);
    co_await dst_hca->ingress().transfer(len);
    dst_hca->add_bytes_in(len);
    src->hca->fabric().account(len);
    src->link_tx_bytes.add(len);
    status = co_await deliver(std::move(dst), std::move(pw.send.payload), pw.send.imm_data,
                              pw.send.has_imm);
  }
  if (status == WcStatus::kSuccess && src->state != QpState::kRts) {
    status = WcStatus::kFlushError;  // torn down while the byte phase ran
  }
  enqueue_tail(src, TailCompletion{src->hca->engine().now() + p.hop_latency * 2, pw.posted,
                                   pw.send.wr_id, WcOpcode::kSend, status, len, &g_send_ns});
}

sim::ValueTask<void> process_rdma(EpPtr src, PendingWr pw) {
  const bool is_read = pw.kind == PendingWr::Kind::kRdmaRead;
  const RdmaWr wr = pw.rdma;
  const WcOpcode op = is_read ? WcOpcode::kRdmaRead : WcOpcode::kRdmaWrite;
  if (src->state != QpState::kRts) {
    src->complete(wr.wr_id, op, WcStatus::kFlushError, wr.length);
    co_return;
  }
  const sim::IbParams& p = src->hca->fabric().params();
  co_await sim::sleep_for(p.per_wqe_overhead);
  WcStatus status = WcStatus::kSuccess;
  Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
  EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
  if (!dst || dst->state != QpState::kRts) {
    status = WcStatus::kRetryExceeded;
  } else {
    co_await sim::sleep_for(p.hop_latency * 2 +
                            (is_read ? p.rdma_read_turnaround : sim::Duration::zero()));
    MemoryRegion* mr = dst_hca->lookup_rkey(wr.rkey);
    if (mr == nullptr || !mr->contains(wr.remote_offset, wr.length)) {
      status = WcStatus::kRemoteAccessError;
    } else {
      // READ data flows responder->requester (charge requester ingress);
      // WRITE flows requester->responder (charge responder ingress).
      Hca& charged = is_read ? *src->hca : *dst_hca;
      co_await charged.ingress().transfer(wr.length);
      charged.add_bytes_in(wr.length);
      src->hca->fabric().account(wr.length);
      (is_read ? src->link_rx_bytes : src->link_tx_bytes).add(wr.length);
      if (wr.length > 0) {
        if (is_read) {
          std::memcpy(wr.local_addr, mr->addr() + wr.remote_offset, wr.length);
        } else {
          std::memcpy(mr->addr() + wr.remote_offset, wr.local_addr, wr.length);
        }
      }
    }
  }
  if (status == WcStatus::kRemoteAccessError) {
    // Access faults are fatal to an RC connection.
    src->error_out();
  }
  enqueue_tail(src, TailCompletion{src->hca->engine().now() + p.hop_latency * 2, pw.posted,
                                   wr.wr_id, op, status, wr.length,
                                   is_read ? &g_rdma_read_ns : &g_rdma_write_ns});
}

sim::ValueTask<void> process_atomic(EpPtr src, PendingWr pw) {
  const bool is_fetch_add = pw.kind == PendingWr::Kind::kFetchAdd;
  const AtomicWr wr = pw.atomic;
  const WcOpcode op = is_fetch_add ? WcOpcode::kFetchAdd : WcOpcode::kCompareSwap;
  if (src->state != QpState::kRts) {
    src->complete(wr.wr_id, op, WcStatus::kFlushError, 8);
    co_return;
  }
  const sim::IbParams& p = src->hca->fabric().params();
  co_await sim::sleep_for(p.per_wqe_overhead);
  WcStatus status = WcStatus::kSuccess;
  Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
  EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
  if (!dst || dst->state != QpState::kRts) {
    status = WcStatus::kRetryExceeded;
  } else {
    // Round trip plus responder-side execution (atomics are handled by
    // the remote HCA's processing unit, serialized per endpoint).
    co_await sim::sleep_for(p.hop_latency * 2 + p.rdma_read_turnaround);
    MemoryRegion* mr = dst_hca->lookup_rkey(wr.rkey);
    if (mr == nullptr || wr.remote_offset % 8 != 0 || !mr->contains(wr.remote_offset, 8)) {
      status = WcStatus::kRemoteAccessError;
    } else {
      std::uint64_t current;
      std::memcpy(&current, mr->addr() + wr.remote_offset, 8);
      std::uint64_t updated = current;
      if (is_fetch_add) {
        updated = current + wr.operand;
      } else if (current == wr.compare) {
        updated = wr.operand;
      }
      std::memcpy(mr->addr() + wr.remote_offset, &updated, 8);
      if (wr.result != nullptr) *wr.result = current;
      src->hca->fabric().account(8);
    }
  }
  if (status == WcStatus::kRemoteAccessError) src->error_out();
  enqueue_tail(src, TailCompletion{src->hca->engine().now() + p.hop_latency * 2, pw.posted,
                                   wr.wr_id, op, status, 8, nullptr});
}

/// The per-endpoint submission-queue drain: byte phases run strictly in post
/// order, one in flight at a time, while ACK tails complete asynchronously
/// via the completer. One coroutine frame per endpoint, reused for every WR.
sim::Task run_drain(EpPtr ep) {
  while (!ep->sq.empty()) {
    PendingWr wr = std::move(ep->sq.front());
    ep->sq.pop_front();
    switch (wr.kind) {
      case PendingWr::Kind::kSend:
        co_await process_send(ep, std::move(wr));
        break;
      case PendingWr::Kind::kRdmaRead:
      case PendingWr::Kind::kRdmaWrite:
        co_await process_rdma(ep, std::move(wr));
        break;
      case PendingWr::Kind::kFetchAdd:
      case PendingWr::Kind::kCompareSwap:
        co_await process_atomic(ep, std::move(wr));
        break;
    }
  }
  ep->drain_running = false;
}

/// Append to the submission queue; start the drain if it is parked.
void submit(const std::shared_ptr<QpEndpoint>& ep, PendingWr wr) {
  ++ep->outstanding;
  wr.posted = ep->hca->engine().now();
  ep->sq.push_back(std::move(wr));
  if (!ep->drain_running) {
    ep->drain_running = true;
    ep->hca->engine().spawn(run_drain(ep));
  }
}

}  // namespace
}  // namespace detail

QueuePair::QueuePair(std::shared_ptr<detail::QpEndpoint> ep) : ep_(std::move(ep)) {}

QueuePair::~QueuePair() {
  if (ep_) ep_->detach();
}

QpNum QueuePair::qpn() const { return ep_->qpn; }
QpState QueuePair::state() const { return ep_->state; }
IbAddr QueuePair::local_addr() const { return IbAddr{ep_->hca->node(), ep_->qpn}; }
IbAddr QueuePair::remote_addr() const { return ep_->remote; }
std::size_t QueuePair::outstanding() const { return ep_->outstanding; }
std::size_t QueuePair::posted_recvs() const { return ep_->recvs.size(); }

void QueuePair::connect(IbAddr remote) {
  JOBMIG_EXPECTS_MSG(ep_->state == QpState::kReset, "connect() requires RESET state");
  ep_->remote = remote;
  ep_->state = QpState::kRts;
  // Intern the per-link counter names once; every WQE afterwards is a
  // pointer bump (e.g. "ib.link.0->2" — same keys the summaries always had).
  const std::string local = std::to_string(ep_->hca->node());
  const std::string peer = std::to_string(remote.node);
  ep_->link_tx_bytes.rename("ib.link." + local + "->" + peer);
  ep_->link_rx_bytes.rename("ib.link." + peer + "->" + local);
}

void QueuePair::post_send(SendWr wr) {
  detail::PendingWr pw;
  pw.kind = detail::PendingWr::Kind::kSend;
  pw.send = std::move(wr);
  detail::submit(ep_, std::move(pw));
}

void QueuePair::post_recv(RecvWr wr) {
  JOBMIG_EXPECTS_MSG(wr.addr != nullptr || wr.length == 0, "recv buffer required");
  if (ep_->state == QpState::kError) {
    if (ep_->recv_cq) {
      ep_->recv_cq->push(WorkCompletion{wr.wr_id, WcStatus::kFlushError, WcOpcode::kRecv, 0, 0, false});
    }
    return;
  }
  ep_->recvs.push_back(wr);
  ep_->recv_posted.set();
}

void QueuePair::post_rdma_read(RdmaWr wr) {
  JOBMIG_EXPECTS_MSG(wr.local_addr != nullptr || wr.length == 0, "local buffer required");
  detail::PendingWr pw;
  pw.kind = detail::PendingWr::Kind::kRdmaRead;
  pw.rdma = wr;
  detail::submit(ep_, std::move(pw));
}

void QueuePair::post_rdma_write(RdmaWr wr) {
  JOBMIG_EXPECTS_MSG(wr.local_addr != nullptr || wr.length == 0, "local buffer required");
  detail::PendingWr pw;
  pw.kind = detail::PendingWr::Kind::kRdmaWrite;
  pw.rdma = wr;
  detail::submit(ep_, std::move(pw));
}

void QueuePair::post_fetch_add(AtomicWr wr) {
  detail::PendingWr pw;
  pw.kind = detail::PendingWr::Kind::kFetchAdd;
  pw.atomic = wr;
  detail::submit(ep_, std::move(pw));
}

void QueuePair::post_compare_swap(AtomicWr wr) {
  detail::PendingWr pw;
  pw.kind = detail::PendingWr::Kind::kCompareSwap;
  pw.atomic = wr;
  detail::submit(ep_, std::move(pw));
}

void QueuePair::to_error() { ep_->error_out(); }

Hca::Hca(sim::Engine& engine, Fabric& fabric, NodeId node, std::string name)
    : engine_(engine), fabric_(fabric), node_(node), name_(std::move(name)) {
  ingress_ = std::make_unique<sim::FairShareServer>(engine_, fabric.params().link_bandwidth_Bps);
}

Hca::~Hca() {
  for (auto& [qpn, weak] : qps_) {
    if (auto ep = weak.lock()) {
      ep->hca = nullptr;  // registry is going away; don't call back into it
      ep->error_out();
    }
  }
}

sim::ValueTask<MemoryRegion*> Hca::reg_mr(std::byte* addr, std::uint64_t length) {
  JOBMIG_EXPECTS_MSG(addr != nullptr || length == 0, "cannot register null memory");
  constexpr std::uint64_t kPage = 4096;
  const std::uint64_t pages = (length + kPage - 1) / kPage;
  co_await sim::sleep_for(fabric_.params().mr_register_per_page * static_cast<std::int64_t>(pages));
  const std::uint32_t key = next_key_++;
  auto mr = std::unique_ptr<MemoryRegion>(new MemoryRegion(key, key, addr, length));
  MemoryRegion* raw = mr.get();
  mrs_.emplace(key, std::move(mr));
  co_return raw;
}

void Hca::dereg_mr(MemoryRegion* mr) {
  JOBMIG_EXPECTS(mr != nullptr);
  const auto erased = mrs_.erase(mr->rkey());
  JOBMIG_EXPECTS_MSG(erased == 1, "deregistering unknown MR");
}

MemoryRegion* Hca::lookup_rkey(std::uint32_t rkey) {
  auto it = mrs_.find(rkey);
  return it == mrs_.end() ? nullptr : it->second.get();
}

std::unique_ptr<QueuePair> Hca::create_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq) {
  auto ep = std::make_shared<detail::QpEndpoint>();
  ep->hca = this;
  ep->qpn = next_qpn_++;
  ep->send_cq = &send_cq;
  ep->recv_cq = &recv_cq;
  qps_[ep->qpn] = ep;
  return std::unique_ptr<QueuePair>(new QueuePair(std::move(ep)));
}

void Hca::unregister_qp(QpNum qpn) { qps_.erase(qpn); }

std::shared_ptr<detail::QpEndpoint> Hca::lookup_qp(QpNum qpn) {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.lock();
}

Fabric::Fabric(sim::Engine& engine, sim::IbParams params) : engine_(engine), params_(params) {}

Hca& Fabric::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(hcas_.size());
  hcas_.push_back(std::make_unique<Hca>(engine_, *this, id, std::move(name)));
  return *hcas_.back();
}

Hca* Fabric::hca(NodeId node) {
  return node < hcas_.size() ? hcas_[node].get() : nullptr;
}

}  // namespace jobmig::ib
