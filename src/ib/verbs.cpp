#include "jobmig/ib/verbs.hpp"

#include <cstring>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::ib {

std::string_view to_string(WcStatus s) {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocalLengthError: return "local-length-error";
    case WcStatus::kRemoteAccessError: return "remote-access-error";
    case WcStatus::kRetryExceeded: return "retry-exceeded";
    case WcStatus::kFlushError: return "flush-error";
  }
  return "?";
}

sim::ValueTask<WorkCompletion> CompletionQueue::wait() {
  while (queue_.empty()) {
    co_await avail_.wait();
    avail_.reset();
  }
  WorkCompletion wc = queue_.front();
  queue_.pop_front();
  co_return wc;
}

std::optional<WorkCompletion> CompletionQueue::poll() {
  if (queue_.empty()) return std::nullopt;
  WorkCompletion wc = queue_.front();
  queue_.pop_front();
  return wc;
}

void CompletionQueue::push(WorkCompletion wc) {
  queue_.push_back(wc);
  avail_.set();
}

namespace detail {

struct QpEndpoint {
  Hca* hca = nullptr;
  QpNum qpn = 0;
  QpState state = QpState::kReset;
  IbAddr remote{};
  CompletionQueue* send_cq = nullptr;
  CompletionQueue* recv_cq = nullptr;
  sim::Mutex tx;  // serializes the byte phase: RC ordering + RNR HOL blocking
  std::deque<RecvWr> recvs;
  sim::Event recv_posted;
  std::size_t outstanding = 0;

  /// Move to ERROR, flushing posted receives to the recv CQ (if attached).
  void error_out() {
    if (state == QpState::kError) return;
    state = QpState::kError;
    flush_recvs();
    recv_posted.set();  // wake senders parked on this endpoint
  }

  /// Handle destroyed: error out, detach CQs, remove from the HCA registry.
  void detach() {
    error_out();
    send_cq = nullptr;
    recv_cq = nullptr;
    if (hca) hca->unregister_qp(qpn);
  }

  void flush_recvs() {
    while (!recvs.empty()) {
      RecvWr r = recvs.front();
      recvs.pop_front();
      if (recv_cq) {
        recv_cq->push(WorkCompletion{r.wr_id, WcStatus::kFlushError, WcOpcode::kRecv, 0, 0, false});
      }
    }
  }

  void complete(std::uint64_t wr_id, WcOpcode op, WcStatus status, std::uint64_t len) {
    JOBMIG_ASSERT(outstanding > 0);
    --outstanding;
    if (send_cq) send_cq->push(WorkCompletion{wr_id, status, op, len, 0, false});
  }
};

namespace {

using EpPtr = std::shared_ptr<QpEndpoint>;

/// Wait for a posted receive on `dst` and copy the payload in.
/// Returns the status the *sender* should observe.
sim::ValueTask<WcStatus> deliver(EpPtr dst, sim::Bytes payload, std::uint32_t imm, bool has_imm) {
  while (dst->recvs.empty()) {
    if (dst->state != QpState::kRts) co_return WcStatus::kRetryExceeded;
    co_await dst->recv_posted.wait();
    dst->recv_posted.reset();
  }
  if (dst->state != QpState::kRts) co_return WcStatus::kRetryExceeded;
  RecvWr r = dst->recvs.front();
  dst->recvs.pop_front();
  if (payload.size() > r.length) {
    if (dst->recv_cq) {
      dst->recv_cq->push(
          WorkCompletion{r.wr_id, WcStatus::kLocalLengthError, WcOpcode::kRecv, 0, 0, false});
    }
    co_return WcStatus::kRemoteAccessError;
  }
  if (!payload.empty()) std::memcpy(r.addr, payload.data(), payload.size());
  if (dst->recv_cq) {
    dst->recv_cq->push(WorkCompletion{r.wr_id, WcStatus::kSuccess, WcOpcode::kRecv,
                                      payload.size(), imm, has_imm});
  }
  co_return WcStatus::kSuccess;
}

/// Per-link traffic counter, e.g. "ib.link.0->2". Guarded by enabled() at
/// the call sites so the string build is skipped when telemetry is off.
void count_link_bytes(NodeId from, NodeId to, std::uint64_t len) {
  telemetry::count("ib.link." + std::to_string(from) + "->" + std::to_string(to), len);
}

sim::Task run_send(EpPtr src, SendWr wr) {
  const sim::IbParams& p = src->hca->fabric().params();
  sim::Engine& engine = src->hca->engine();
  const sim::TimePoint wqe_begin = engine.now();
  const std::uint64_t len = wr.payload.size();
  WcStatus status = WcStatus::kSuccess;
  {
    auto lock = co_await src->tx.lock();
    if (src->state != QpState::kRts) {
      src->complete(wr.wr_id, WcOpcode::kSend, WcStatus::kFlushError, len);
      co_return;
    }
    co_await sim::sleep_for(p.per_wqe_overhead);
    Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
    EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
    if (!dst || dst->state != QpState::kRts) {
      status = WcStatus::kRetryExceeded;
    } else {
      co_await sim::sleep_for(p.hop_latency * 2);
      co_await dst_hca->ingress().transfer(len);
      dst_hca->add_bytes_in(len);
      src->hca->fabric().account(len);
      if (telemetry::enabled()) count_link_bytes(src->hca->node(), src->remote.node, len);
      status = co_await deliver(std::move(dst), std::move(wr.payload), wr.imm_data, wr.has_imm);
    }
  }
  if (status == WcStatus::kSuccess && src->state != QpState::kRts) {
    status = WcStatus::kFlushError;  // torn down while the ACK was in flight
  }
  co_await sim::sleep_for(p.hop_latency * 2);  // ACK return path
  telemetry::observe_ns("ib.send_ns", engine.now() - wqe_begin);
  src->complete(wr.wr_id, WcOpcode::kSend, status, len);
}

sim::Task run_rdma(EpPtr src, RdmaWr wr, bool is_read) {
  const sim::IbParams& p = src->hca->fabric().params();
  sim::Engine& engine = src->hca->engine();
  const sim::TimePoint wqe_begin = engine.now();
  WcStatus status = WcStatus::kSuccess;
  {
    auto lock = co_await src->tx.lock();
    if (src->state != QpState::kRts) {
      src->complete(wr.wr_id, is_read ? WcOpcode::kRdmaRead : WcOpcode::kRdmaWrite,
                    WcStatus::kFlushError, wr.length);
      co_return;
    }
    co_await sim::sleep_for(p.per_wqe_overhead);
    Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
    EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
    if (!dst || dst->state != QpState::kRts) {
      status = WcStatus::kRetryExceeded;
    } else {
      co_await sim::sleep_for(p.hop_latency * 2 +
                              (is_read ? p.rdma_read_turnaround : sim::Duration::zero()));
      MemoryRegion* mr = dst_hca->lookup_rkey(wr.rkey);
      if (mr == nullptr || !mr->contains(wr.remote_offset, wr.length)) {
        status = WcStatus::kRemoteAccessError;
      } else {
        // READ data flows responder->requester (charge requester ingress);
        // WRITE flows requester->responder (charge responder ingress).
        Hca& charged = is_read ? *src->hca : *dst_hca;
        co_await charged.ingress().transfer(wr.length);
        charged.add_bytes_in(wr.length);
        src->hca->fabric().account(wr.length);
        if (telemetry::enabled()) {
          if (is_read) {
            count_link_bytes(src->remote.node, src->hca->node(), wr.length);
          } else {
            count_link_bytes(src->hca->node(), src->remote.node, wr.length);
          }
        }
        if (wr.length > 0) {
          if (is_read) {
            std::memcpy(wr.local_addr, mr->addr() + wr.remote_offset, wr.length);
          } else {
            std::memcpy(mr->addr() + wr.remote_offset, wr.local_addr, wr.length);
          }
        }
      }
    }
  }
  if (status == WcStatus::kRemoteAccessError) {
    // Access faults are fatal to an RC connection.
    src->error_out();
  }
  co_await sim::sleep_for(p.hop_latency * 2);
  telemetry::observe_ns(is_read ? "ib.rdma_read_ns" : "ib.rdma_write_ns",
                        engine.now() - wqe_begin);
  src->complete(wr.wr_id, is_read ? WcOpcode::kRdmaRead : WcOpcode::kRdmaWrite, status,
                wr.length);
}

sim::Task run_atomic(EpPtr src, AtomicWr wr, bool is_fetch_add) {
  const sim::IbParams& p = src->hca->fabric().params();
  const WcOpcode op = is_fetch_add ? WcOpcode::kFetchAdd : WcOpcode::kCompareSwap;
  WcStatus status = WcStatus::kSuccess;
  {
    auto lock = co_await src->tx.lock();
    if (src->state != QpState::kRts) {
      src->complete(wr.wr_id, op, WcStatus::kFlushError, 8);
      co_return;
    }
    co_await sim::sleep_for(p.per_wqe_overhead);
    Hca* dst_hca = src->hca->fabric().hca(src->remote.node);
    EpPtr dst = dst_hca ? dst_hca->lookup_qp(src->remote.qpn) : nullptr;
    if (!dst || dst->state != QpState::kRts) {
      status = WcStatus::kRetryExceeded;
    } else {
      // Round trip plus responder-side execution (atomics are handled by
      // the remote HCA's processing unit, serialized per endpoint).
      co_await sim::sleep_for(p.hop_latency * 2 + p.rdma_read_turnaround);
      MemoryRegion* mr = dst_hca->lookup_rkey(wr.rkey);
      if (mr == nullptr || wr.remote_offset % 8 != 0 || !mr->contains(wr.remote_offset, 8)) {
        status = WcStatus::kRemoteAccessError;
      } else {
        std::uint64_t current;
        std::memcpy(&current, mr->addr() + wr.remote_offset, 8);
        std::uint64_t updated = current;
        if (is_fetch_add) {
          updated = current + wr.operand;
        } else if (current == wr.compare) {
          updated = wr.operand;
        }
        std::memcpy(mr->addr() + wr.remote_offset, &updated, 8);
        if (wr.result != nullptr) *wr.result = current;
        src->hca->fabric().account(8);
      }
    }
  }
  if (status == WcStatus::kRemoteAccessError) src->error_out();
  co_await sim::sleep_for(p.hop_latency * 2);
  src->complete(wr.wr_id, op, status, 8);
}

}  // namespace
}  // namespace detail

QueuePair::QueuePair(std::shared_ptr<detail::QpEndpoint> ep) : ep_(std::move(ep)) {}

QueuePair::~QueuePair() {
  if (ep_) ep_->detach();
}

QpNum QueuePair::qpn() const { return ep_->qpn; }
QpState QueuePair::state() const { return ep_->state; }
IbAddr QueuePair::local_addr() const { return IbAddr{ep_->hca->node(), ep_->qpn}; }
IbAddr QueuePair::remote_addr() const { return ep_->remote; }
std::size_t QueuePair::outstanding() const { return ep_->outstanding; }
std::size_t QueuePair::posted_recvs() const { return ep_->recvs.size(); }

void QueuePair::connect(IbAddr remote) {
  JOBMIG_EXPECTS_MSG(ep_->state == QpState::kReset, "connect() requires RESET state");
  ep_->remote = remote;
  ep_->state = QpState::kRts;
}

void QueuePair::post_send(SendWr wr) {
  ++ep_->outstanding;
  ep_->hca->engine().spawn(detail::run_send(ep_, std::move(wr)));
}

void QueuePair::post_recv(RecvWr wr) {
  JOBMIG_EXPECTS_MSG(wr.addr != nullptr || wr.length == 0, "recv buffer required");
  if (ep_->state == QpState::kError) {
    if (ep_->recv_cq) {
      ep_->recv_cq->push(WorkCompletion{wr.wr_id, WcStatus::kFlushError, WcOpcode::kRecv, 0, 0, false});
    }
    return;
  }
  ep_->recvs.push_back(wr);
  ep_->recv_posted.set();
}

void QueuePair::post_rdma_read(RdmaWr wr) {
  JOBMIG_EXPECTS_MSG(wr.local_addr != nullptr || wr.length == 0, "local buffer required");
  ++ep_->outstanding;
  ep_->hca->engine().spawn(detail::run_rdma(ep_, wr, /*is_read=*/true));
}

void QueuePair::post_rdma_write(RdmaWr wr) {
  JOBMIG_EXPECTS_MSG(wr.local_addr != nullptr || wr.length == 0, "local buffer required");
  ++ep_->outstanding;
  ep_->hca->engine().spawn(detail::run_rdma(ep_, wr, /*is_read=*/false));
}

void QueuePair::post_fetch_add(AtomicWr wr) {
  ++ep_->outstanding;
  ep_->hca->engine().spawn(detail::run_atomic(ep_, wr, /*is_fetch_add=*/true));
}

void QueuePair::post_compare_swap(AtomicWr wr) {
  ++ep_->outstanding;
  ep_->hca->engine().spawn(detail::run_atomic(ep_, wr, /*is_fetch_add=*/false));
}

void QueuePair::to_error() { ep_->error_out(); }

Hca::Hca(sim::Engine& engine, Fabric& fabric, NodeId node, std::string name)
    : engine_(engine), fabric_(fabric), node_(node), name_(std::move(name)) {
  ingress_ = std::make_unique<sim::FairShareServer>(engine_, fabric.params().link_bandwidth_Bps);
}

Hca::~Hca() {
  for (auto& [qpn, weak] : qps_) {
    if (auto ep = weak.lock()) {
      ep->hca = nullptr;  // registry is going away; don't call back into it
      ep->error_out();
    }
  }
}

sim::ValueTask<MemoryRegion*> Hca::reg_mr(std::byte* addr, std::uint64_t length) {
  JOBMIG_EXPECTS_MSG(addr != nullptr || length == 0, "cannot register null memory");
  constexpr std::uint64_t kPage = 4096;
  const std::uint64_t pages = (length + kPage - 1) / kPage;
  co_await sim::sleep_for(fabric_.params().mr_register_per_page * static_cast<std::int64_t>(pages));
  const std::uint32_t key = next_key_++;
  auto mr = std::unique_ptr<MemoryRegion>(new MemoryRegion(key, key, addr, length));
  MemoryRegion* raw = mr.get();
  mrs_.emplace(key, std::move(mr));
  co_return raw;
}

void Hca::dereg_mr(MemoryRegion* mr) {
  JOBMIG_EXPECTS(mr != nullptr);
  const auto erased = mrs_.erase(mr->rkey());
  JOBMIG_EXPECTS_MSG(erased == 1, "deregistering unknown MR");
}

MemoryRegion* Hca::lookup_rkey(std::uint32_t rkey) {
  auto it = mrs_.find(rkey);
  return it == mrs_.end() ? nullptr : it->second.get();
}

std::unique_ptr<QueuePair> Hca::create_qp(CompletionQueue& send_cq, CompletionQueue& recv_cq) {
  auto ep = std::make_shared<detail::QpEndpoint>();
  ep->hca = this;
  ep->qpn = next_qpn_++;
  ep->send_cq = &send_cq;
  ep->recv_cq = &recv_cq;
  qps_[ep->qpn] = ep;
  return std::unique_ptr<QueuePair>(new QueuePair(std::move(ep)));
}

void Hca::unregister_qp(QpNum qpn) { qps_.erase(qpn); }

std::shared_ptr<detail::QpEndpoint> Hca::lookup_qp(QpNum qpn) {
  auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.lock();
}

Fabric::Fabric(sim::Engine& engine, sim::IbParams params) : engine_(engine), params_(params) {}

Hca& Fabric::add_node(std::string name) {
  const NodeId id = static_cast<NodeId>(hcas_.size());
  hcas_.push_back(std::make_unique<Hca>(engine_, *this, id, std::move(name)));
  return *hcas_.back();
}

Hca* Fabric::hca(NodeId node) {
  return node < hcas_.size() ? hcas_[node].get() : nullptr;
}

}  // namespace jobmig::ib
