#pragma once

#include <map>
#include <vector>

#include "jobmig/ib/verbs.hpp"
#include "jobmig/sim/sync.hpp"

namespace jobmig::ib {

/// Demultiplexes one CompletionQueue to per-wr_id waiters. Consumers post
/// work requests with unique non-zero ids and co_await the matching
/// completion; a pushed sentinel completion with wr_id 0 stops the loop.
class CompletionDispatcher {
 public:
  explicit CompletionDispatcher(CompletionQueue& cq) : cq_(cq) {}

  /// Spawn the demux loop on `engine`.
  void start(sim::Engine& engine) {
    JOBMIG_EXPECTS(!running_);
    running_ = true;
    engine.spawn(loop());
  }

  /// Ask the loop to exit after draining queued completions.
  void stop() {
    cq_.push(WorkCompletion{0, WcStatus::kSuccess, WcOpcode::kSend, 0, 0, false});
  }

  bool running() const { return running_; }

  [[nodiscard]] sim::ValueTask<WorkCompletion> await(std::uint64_t wr_id) {
    JOBMIG_EXPECTS(wr_id != 0);
    if (!results_.contains(wr_id)) {
      sim::Event ev;
      waiters_[wr_id] = &ev;
      co_await ev.wait();
      waiters_.erase(wr_id);
    }
    auto it = results_.find(wr_id);
    JOBMIG_ASSERT(it != results_.end());
    WorkCompletion wc = it->second;
    results_.erase(it);
    co_return wc;
  }

 private:
  sim::Task loop() {
    std::vector<WorkCompletion> batch;  // reused across wakes
    bool stop = false;
    while (!stop) {
      co_await cq_.wait_batch(batch);
      for (const WorkCompletion& wc : batch) {
        if (wc.wr_id == 0) {
          stop = true;
          break;
        }
        results_[wc.wr_id] = wc;
        auto it = waiters_.find(wc.wr_id);
        if (it != waiters_.end()) it->second->set();
      }
    }
    running_ = false;
  }

  CompletionQueue& cq_;
  bool running_ = false;
  std::map<std::uint64_t, WorkCompletion> results_;
  std::map<std::uint64_t, sim::Event*> waiters_;
};

}  // namespace jobmig::ib
