#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"

/// A verbs-like InfiniBand model. The API mirrors the subset of RDMA verbs
/// the paper's migration engine uses: memory regions with lkey/rkey,
/// reliable-connection queue pairs, completion queues, two-sided send/recv
/// and one-sided RDMA READ/WRITE. All payloads are real bytes copied between
/// registered regions; only elapsed time comes from the calibrated fabric
/// model.
///
/// Timing model (see DESIGN.md §4): per-WQE HCA processing and the wire
/// byte-phase are serialized per queue pair (preserving RC ordering and
/// modeling RNR head-of-line blocking); wire bytes are charged on the
/// receiving node's ingress fair-share server (the bottleneck port for every
/// pattern exercised here); latency is two switch hops each way.
namespace jobmig::ib {

using NodeId = std::uint32_t;
using QpNum = std::uint32_t;

struct IbAddr {
  NodeId node = 0;
  QpNum qpn = 0;
  friend auto operator<=>(const IbAddr&, const IbAddr&) = default;
};

enum class WcStatus {
  kSuccess,
  kLocalLengthError,    // payload larger than the posted receive buffer
  kRemoteAccessError,   // bad rkey / out-of-bounds RDMA
  kRetryExceeded,       // peer QP destroyed or unreachable
  kFlushError,          // QP transitioned to ERROR with the WR outstanding
};

std::string_view to_string(WcStatus s);

enum class WcOpcode { kSend, kRecv, kRdmaRead, kRdmaWrite, kFetchAdd, kCompareSwap };

struct WorkCompletion {
  std::uint64_t wr_id = 0;
  WcStatus status = WcStatus::kSuccess;
  WcOpcode opcode = WcOpcode::kSend;
  std::uint64_t byte_len = 0;
  std::uint32_t imm_data = 0;
  bool has_imm = false;
  bool ok() const { return status == WcStatus::kSuccess; }
};

/// Registered memory region. Non-owning view over caller memory; the caller
/// must keep the buffer alive until deregistration (as with real verbs).
class MemoryRegion {
 public:
  std::uint32_t lkey() const { return lkey_; }
  std::uint32_t rkey() const { return rkey_; }
  std::byte* addr() const { return base_; }
  std::uint64_t length() const { return length_; }
  bool contains(std::uint64_t offset, std::uint64_t len) const {
    return offset <= length_ && len <= length_ - offset;
  }

 private:
  friend class Hca;
  MemoryRegion(std::uint32_t lkey, std::uint32_t rkey, std::byte* base, std::uint64_t length)
      : lkey_(lkey), rkey_(rkey), base_(base), length_(length) {}
  std::uint32_t lkey_;
  std::uint32_t rkey_;
  std::byte* base_;
  std::uint64_t length_;
};

class CompletionQueue {
 public:
  /// Blocks (in virtual time) until a completion is available.
  [[nodiscard]] sim::ValueTask<WorkCompletion> wait();
  /// Non-blocking poll.
  std::optional<WorkCompletion> poll();
  /// Drain up to `max` queued completions into `out` (appended) without
  /// waiting; returns how many were reaped.
  std::size_t poll_batch(std::vector<WorkCompletion>& out, std::size_t max = SIZE_MAX);
  /// Block until at least one completion is available, then drain up to
  /// `max` of them into `out` (cleared first); returns the batch size.
  /// Progress loops use this to reap a burst per wake instead of one WC.
  [[nodiscard]] sim::ValueTask<std::size_t> wait_batch(std::vector<WorkCompletion>& out,
                                                       std::size_t max = SIZE_MAX);
  void push(WorkCompletion wc);
  std::size_t depth() const { return queue_.size(); }

 private:
  std::deque<WorkCompletion> queue_;
  sim::Event avail_;
};

struct SendWr {
  std::uint64_t wr_id = 0;
  sim::Bytes payload;            // copied at post time (safe-send semantics)
  std::uint32_t imm_data = 0;
  bool has_imm = false;

  // User-declared special members: SendWr goes by value into the delivery
  // coroutine, and GCC 12 miscompiles non-trivial aggregates there.
  SendWr() = default;
  SendWr(std::uint64_t id, sim::Bytes body, std::uint32_t imm = 0, bool with_imm = false)
      : wr_id(id), payload(std::move(body)), imm_data(imm), has_imm(with_imm) {}
  SendWr(const SendWr&) = default;
  SendWr(SendWr&&) = default;
  SendWr& operator=(const SendWr&) = default;
  SendWr& operator=(SendWr&&) = default;
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  std::byte* addr = nullptr;     // must lie inside a registered MR
  std::uint64_t length = 0;
};

struct RdmaWr {
  std::uint64_t wr_id = 0;
  std::byte* local_addr = nullptr;   // inside a local MR
  std::uint64_t remote_offset = 0;   // byte offset inside the remote MR
  std::uint32_t rkey = 0;
  std::uint64_t length = 0;
};

/// 64-bit remote atomic (IBV_WR_ATOMIC_FETCH_AND_ADD / CMP_AND_SWP). The
/// remote offset must be 8-byte aligned inside the remote MR; the original
/// remote value lands in `*result` on completion.
struct AtomicWr {
  std::uint64_t wr_id = 0;
  std::uint64_t* result = nullptr;
  std::uint64_t remote_offset = 0;
  std::uint32_t rkey = 0;
  std::uint64_t operand = 0;  // addend, or swap value
  std::uint64_t compare = 0;  // compare-swap only
};

enum class QpState { kReset, kRts, kError };

class Hca;
class Fabric;

namespace detail {
/// Shared endpoint state. Kept alive by shared_ptr from the owning
/// QueuePair handle, the HCA registry, and any in-flight operation, so a QP
/// can be destroyed (torn down) with traffic outstanding — exactly what the
/// paper's Phase-1 teardown needs to exercise — without dangling references.
struct QpEndpoint;
}  // namespace detail

/// Reliable-connection queue pair (RAII handle; destruction tears the
/// connection down and flushes posted receives).
class QueuePair {
 public:
  QueuePair(const QueuePair&) = delete;
  QueuePair& operator=(const QueuePair&) = delete;
  ~QueuePair();

  QpNum qpn() const;
  QpState state() const;
  IbAddr local_addr() const;
  IbAddr remote_addr() const;

  /// Transition RESET->RTS against the given remote address. Both sides
  /// must connect (addresses are exchanged out of band, e.g. via PMI).
  void connect(IbAddr remote);

  /// Two-sided ops. Completions arrive on the CQs passed at creation.
  void post_send(SendWr wr);
  void post_recv(RecvWr wr);
  /// One-sided ops; the remote CPU (and remote CQs) are not involved.
  void post_rdma_read(RdmaWr wr);
  void post_rdma_write(RdmaWr wr);
  /// Remote 64-bit atomics (executed serially at the responder HCA).
  void post_fetch_add(AtomicWr wr);
  void post_compare_swap(AtomicWr wr);

  /// Move to ERROR: posted receives and future WRs flush with kFlushError.
  void to_error();

  std::size_t outstanding() const;
  std::size_t posted_recvs() const;

 private:
  friend class Hca;
  explicit QueuePair(std::shared_ptr<detail::QpEndpoint> ep);
  std::shared_ptr<detail::QpEndpoint> ep_;
};

/// Host channel adapter: one per node. Owns MRs, registers QPs and the
/// node's ingress bandwidth server.
class Hca {
 public:
  Hca(sim::Engine& engine, Fabric& fabric, NodeId node, std::string name);
  Hca(const Hca&) = delete;
  Hca& operator=(const Hca&) = delete;
  ~Hca();

  NodeId node() const { return node_; }
  const std::string& name() const { return name_; }
  sim::Engine& engine() { return engine_; }
  Fabric& fabric() { return fabric_; }

  /// Register caller memory; charges pinning cost proportional to pages.
  [[nodiscard]] sim::ValueTask<MemoryRegion*> reg_mr(std::byte* addr, std::uint64_t length);
  /// Deregister: subsequent remote accesses with the old rkey fail
  /// (paper §III-A: cached rkeys become invalid after teardown).
  void dereg_mr(MemoryRegion* mr);
  MemoryRegion* lookup_rkey(std::uint32_t rkey);

  [[nodiscard]] std::unique_ptr<QueuePair> create_qp(CompletionQueue& send_cq,
                                                     CompletionQueue& recv_cq);

  std::size_t mr_count() const { return mrs_.size(); }
  std::size_t qp_count() const { return qps_.size(); }
  std::uint64_t bytes_in() const { return bytes_in_; }
  sim::FairShareServer& ingress() { return *ingress_; }

  /// Internal (used by the delivery coroutines).
  void unregister_qp(QpNum qpn);
  std::shared_ptr<detail::QpEndpoint> lookup_qp(QpNum qpn);
  void add_bytes_in(std::uint64_t n) { bytes_in_ += n; }

 private:
  sim::Engine& engine_;
  Fabric& fabric_;
  NodeId node_;
  std::string name_;
  std::uint32_t next_key_ = 1;
  QpNum next_qpn_ = 1;
  std::map<std::uint32_t, std::unique_ptr<MemoryRegion>> mrs_;  // by rkey
  std::map<QpNum, std::weak_ptr<detail::QpEndpoint>> qps_;
  std::unique_ptr<sim::FairShareServer> ingress_;
  std::uint64_t bytes_in_ = 0;
};

/// Single-switch full-bisection fabric (the paper's testbed is 8 nodes plus
/// spares on one DDR switch).
class Fabric {
 public:
  Fabric(sim::Engine& engine, sim::IbParams params = {});

  Hca& add_node(std::string name);
  Hca* hca(NodeId node);
  const sim::IbParams& params() const { return params_; }
  sim::Engine& engine() { return engine_; }
  std::size_t node_count() const { return hcas_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Conservative lookahead bound for the parallel engine mode (DESIGN.md
  /// §9): no cross-node interaction completes faster than one switch
  /// traversal, i.e. two hops (ingress + egress) of propagation latency.
  /// Safe to feed to Engine::set_lookahead when nodes map to domains.
  sim::Duration suggested_lookahead() const { return params_.hop_latency * 2; }

  /// Internal (used by the delivery coroutines).
  void account(std::uint64_t bytes) { total_bytes_ += bytes; }

 private:
  sim::Engine& engine_;
  sim::IbParams params_;
  std::vector<std::unique_ptr<Hca>> hcas_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace jobmig::ib
