#include "jobmig/telemetry/telemetry.hpp"

#include "jobmig/sim/engine.hpp"

namespace jobmig::telemetry {

namespace detail {
Telemetry* g_current = nullptr;
std::uint64_t g_epoch = 1;  // starts above the interned-handle sentinel of 0
}  // namespace detail

void set_current(Telemetry* t) {
  detail::g_current = t;
  ++detail::g_epoch;  // invalidate every interned metric handle
}

namespace {

sim::TimePoint engine_now() {
  sim::Engine* e = sim::Engine::current();
  return e != nullptr ? e->now() : sim::TimePoint::origin();
}

}  // namespace

void Telemetry::ftb_mark_publish(std::uint32_t origin, std::uint64_t seq, sim::TimePoint now) {
  ftb_inflight_[{origin, seq}] = now;
}

void Telemetry::ftb_mark_deliver(std::uint32_t origin, std::uint64_t seq, sim::TimePoint now) {
  auto it = ftb_inflight_.find({origin, seq});
  if (it == ftb_inflight_.end()) return;  // already measured (first delivery wins)
  metrics.histogram("ftb.route_ns")
      .observe(static_cast<std::uint64_t>((now - it->second).count_ns()));
  ftb_inflight_.erase(it);
}

void ftb_mark_publish(std::uint32_t origin, std::uint64_t seq) {
  if (Telemetry* t = current()) t->ftb_mark_publish(origin, seq, engine_now());
}

void ftb_mark_deliver(std::uint32_t origin, std::uint64_t seq) {
  if (Telemetry* t = current()) t->ftb_mark_deliver(origin, seq, engine_now());
}

}  // namespace jobmig::telemetry
