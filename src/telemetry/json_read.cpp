#include "jobmig/telemetry/json_read.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace jobmig::telemetry {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const Member& m : members) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

double JsonValue::as_double(double fallback) const {
  if (type != Type::kNumber) return type == Type::kBool ? (boolean ? 1.0 : 0.0) : fallback;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  return (end == text.c_str() || errno == ERANGE) ? fallback : v;
}

std::uint64_t JsonValue::as_u64(std::uint64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) return fallback;
  // Fractional/exponent lexemes (1e3, 2.5) fall back to the double path.
  if (*end != '\0') return static_cast<std::uint64_t>(as_double(static_cast<double>(fallback)));
  return v;
}

std::int64_t JsonValue::as_i64(std::int64_t fallback) const {
  if (type != Type::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || errno == ERANGE) return fallback;
  if (*end != '\0') return static_cast<std::int64_t>(as_double(static_cast<double>(fallback)));
  return v;
}

const std::string& JsonValue::as_string() const {
  static const std::string empty;
  return type == Type::kString ? text : empty;
}

double JsonValue::num(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr ? v->as_double(fallback) : fallback;
}

std::uint64_t JsonValue::u64(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr ? v->as_u64(fallback) : fallback;
}

std::string JsonValue::str(std::string_view key, std::string fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->text : std::move(fallback);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue v;
    if (!parse_value(v)) {
      if (error != nullptr) {
        *error = err_.empty() ? "malformed JSON" : err_;
        *error += " at byte " + std::to_string(pos_);
      }
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != src_.size()) {
      if (error != nullptr) *error = "trailing data at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < src_.size() && src_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (src_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < src_.size()) {
      const char c = src_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= src_.size()) break;
      const char esc = src_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > src_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = src_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not used
          // by our writers; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < src_.size() && src_[pos_] == '-') ++pos_;
    while (pos_ < src_.size() && (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                                  src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
                                  src_[pos_] == '+' || src_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    out.type = JsonValue::Type::kNumber;
    out.text.assign(src_.substr(start, pos_ - start));
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= src_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (src_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out.type = JsonValue::Type::kString;
        ok = parse_string(out.text);
        break;
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        ok = literal("true");
        break;
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        ok = literal("false");
        break;
      case 'n':
        out.type = JsonValue::Type::kNull;
        ok = literal("null");
        break;
      default: ok = parse_number(out); break;
    }
    --depth_;
    return ok;
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue val;
      if (!parse_value(val)) return false;
      out.members.emplace_back(std::move(key), std::move(val));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    if (consume(']')) return true;
    while (true) {
      JsonValue val;
      if (!parse_value(val)) return false;
      out.items.push_back(std::move(val));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  static constexpr int kMaxDepth = 256;
  std::string_view src_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view src, std::string* error) {
  return Parser(src).run(error);
}

std::optional<JsonValue> parse_json_file(const std::string& path, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  return parse_json(text, error);
}

}  // namespace jobmig::telemetry
