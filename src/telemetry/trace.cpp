#include "jobmig/telemetry/trace.hpp"

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/engine.hpp"

namespace jobmig::telemetry {

TraceRecorder::TraceRecorder() { processes_.push_back("sim"); }

sim::TimePoint TraceRecorder::now() {
  sim::Engine* e = sim::Engine::current();
  return e != nullptr ? e->now() : sim::TimePoint::origin();
}

void TraceRecorder::set_process(const std::string& name) {
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i] == name) {
      current_process_ = static_cast<std::uint32_t>(i);
      return;
    }
  }
  current_process_ = static_cast<std::uint32_t>(processes_.size());
  processes_.push_back(name);
}

SpanId TraceRecorder::start(std::string track, std::string name, sim::TimePoint t, bool async) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  s.process = current_process_;
  s.begin = t;
  s.end = t;
  s.async = async;
  auto& stack = stacks_[{current_process_, track}];
  if (!stack.empty()) s.parent = stack.back();
  if (!async) stack.push_back(s.id);
  s.track = std::move(track);
  s.name = std::move(name);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

SpanId TraceRecorder::begin_span(std::string track, std::string name) {
  return start(std::move(track), std::move(name), now(), /*async=*/false);
}

SpanId TraceRecorder::begin_async(std::string track, std::string name) {
  return start(std::move(track), std::move(name), now(), /*async=*/true);
}

SpanId TraceRecorder::begin_span_at(std::string track, std::string name, sim::TimePoint t) {
  return start(std::move(track), std::move(name), t, /*async=*/false);
}

SpanId TraceRecorder::begin_async_at(std::string track, std::string name, sim::TimePoint t) {
  return start(std::move(track), std::move(name), t, /*async=*/true);
}

void TraceRecorder::end_span(SpanId id) { end_span_at(id, now()); }

void TraceRecorder::end_span_at(SpanId id, sim::TimePoint t) {
  JOBMIG_EXPECTS_MSG(id >= 1 && id <= spans_.size(), "end_span: unknown span id");
  Span& s = spans_[id - 1];
  JOBMIG_EXPECTS_MSG(s.open, "end_span: span already ended");
  s.end = t;
  s.open = false;
  if (!s.async) {
    auto& stack = stacks_[{s.process, s.track}];
    JOBMIG_ASSERT_MSG(!stack.empty() && stack.back() == id,
                      "sync spans must end LIFO per track");
    stack.pop_back();
  }
}

void TraceRecorder::attr(SpanId id, std::string key, std::string value) {
  JOBMIG_EXPECTS_MSG(id >= 1 && id <= spans_.size(), "attr: unknown span id");
  spans_[id - 1].attrs.emplace_back(std::move(key), std::move(value));
}

void TraceRecorder::set_trace(SpanId id, std::uint64_t trace_id) {
  JOBMIG_EXPECTS_MSG(id >= 1 && id <= spans_.size(), "set_trace: unknown span id");
  spans_[id - 1].trace_id = trace_id;
}

void TraceRecorder::set_job(SpanId id, int job_id) {
  JOBMIG_EXPECTS_MSG(id >= 1 && id <= spans_.size(), "set_job: unknown span id");
  spans_[id - 1].job_id = job_id;
}

void TraceRecorder::link(const TraceContext& from, SpanId to) {
  if (!from.valid() || to < 1 || to > spans_.size()) return;
  if (from.span_id < 1 || from.span_id > spans_.size()) return;
  if (from.span_id == to) return;  // self-edges would put cycles in the DAG
  Span& dst = spans_[to - 1];
  if (dst.link_parent == kNoSpan) dst.link_parent = from.span_id;
  if (dst.trace_id == 0) dst.trace_id = from.trace_id;
  flows_.push_back(FlowEdge{next_flow_++, from.span_id, to, now()});
}

TraceContext TraceRecorder::context_of(SpanId id) const {
  if (id < 1 || id > spans_.size()) return {};
  return TraceContext{spans_[id - 1].trace_id, id};
}

void TraceRecorder::instant(std::string track, std::string name) {
  instants_.push_back(InstantEvent{current_process_, std::move(track), std::move(name), now()});
}

void TraceRecorder::counter_sample(std::string track, std::string name, double value) {
  counter_samples_.push_back(
      CounterSample{current_process_, std::move(track), std::move(name), now(), value});
}

const Span* TraceRecorder::find(SpanId id) const {
  if (id < 1 || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

SpanId TraceRecorder::open_top(const std::string& track) const {
  auto it = stacks_.find({current_process_, track});
  if (it == stacks_.end() || it->second.empty()) return kNoSpan;
  return it->second.back();
}

std::size_t TraceRecorder::open_count() const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.open) ++n;
  }
  return n;
}

void TraceRecorder::clear() {
  spans_.clear();
  instants_.clear();
  counter_samples_.clear();
  flows_.clear();
  next_flow_ = 1;
  stacks_.clear();
  processes_.clear();
  processes_.push_back("sim");
  current_process_ = 0;
}

}  // namespace jobmig::telemetry
