#include "jobmig/telemetry/json.hpp"

#include <cmath>
#include <cstdio>

#include "jobmig/sim/assert.hpp"

namespace jobmig::telemetry {

JsonWriter::~JsonWriter() {
  // A writer abandoned mid-document is a bug in the exporter, but a dtor
  // must not assert during stack unwinding; leave the stream as is.
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  JOBMIG_EXPECTS_MSG(!done_, "JsonWriter: document already complete");
  if (frames_.empty()) return;  // root value
  if (frames_.back() == Frame::kObject) {
    JOBMIG_EXPECTS_MSG(key_pending_, "JsonWriter: object member needs key() first");
    key_pending_ = false;
    return;  // comma was emitted by key()
  }
  if (!first_in_frame_.back()) os_ << ',';
  first_in_frame_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  frames_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  JOBMIG_EXPECTS_MSG(!frames_.empty() && frames_.back() == Frame::kObject && !key_pending_,
                     "JsonWriter: unbalanced end_object()");
  os_ << '}';
  frames_.pop_back();
  first_in_frame_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  frames_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  JOBMIG_EXPECTS_MSG(!frames_.empty() && frames_.back() == Frame::kArray,
                     "JsonWriter: unbalanced end_array()");
  os_ << ']';
  frames_.pop_back();
  first_in_frame_.pop_back();
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  JOBMIG_EXPECTS_MSG(!frames_.empty() && frames_.back() == Frame::kObject && !key_pending_,
                     "JsonWriter: key() only valid directly inside an object");
  if (!first_in_frame_.back()) os_ << ',';
  first_in_frame_.back() = false;
  os_ << '"' << escape(k) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << escape(v) << '"';
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no Inf/NaN
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    os_ << buf;
  }
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  if (frames_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  if (frames_.empty()) done_ = true;
  return *this;
}

}  // namespace jobmig::telemetry
