#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

/// Minimal streaming JSON writer — enough for the exporters and bench
/// summaries without pulling a JSON dependency into the image. Emits
/// compact, valid JSON; commas and nesting are tracked by a frame stack, so
/// misuse (value without key inside an object, unbalanced end) trips an
/// assertion instead of producing garbage output.
namespace jobmig::telemetry {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  static std::string escape(std::string_view s);

 private:
  enum class Frame { kObject, kArray };
  void before_value();

  std::ostream& os_;
  std::vector<Frame> frames_;
  std::vector<bool> first_in_frame_;
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace jobmig::telemetry
