#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// Minimal recursive-descent JSON reader — the counterpart of JsonWriter,
/// for the offline tools (jobmig-trace) and tests that consume the exported
/// Chrome traces, bench summaries and flight dumps without a JSON
/// dependency. Parses the full document into a small DOM; numbers keep
/// their source lexeme so 64-bit ids survive untouched (no double
/// round-trip).
namespace jobmig::telemetry {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  Type type = Type::kNull;
  bool boolean = false;
  /// String payload, or the verbatim number lexeme for Type::kNumber.
  std::string text;
  std::vector<JsonValue> items;     // Type::kArray
  std::vector<Member> members;      // Type::kObject, in document order

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;

  double as_double(double fallback = 0.0) const;
  std::uint64_t as_u64(std::uint64_t fallback = 0) const;
  std::int64_t as_i64(std::int64_t fallback = 0) const;
  /// String payload ("" for non-strings).
  const std::string& as_string() const;

  /// Convenience: member `key` as a scalar, with fallback when missing.
  double num(std::string_view key, double fallback = 0.0) const;
  std::uint64_t u64(std::string_view key, std::uint64_t fallback = 0) const;
  std::string str(std::string_view key, std::string fallback = {}) const;
};

/// Parse one JSON document. On failure returns nullopt and, when `error` is
/// given, a message with the byte offset of the problem.
std::optional<JsonValue> parse_json(std::string_view src, std::string* error = nullptr);

/// Read and parse a whole file; nullopt on I/O or parse failure.
std::optional<JsonValue> parse_json_file(const std::string& path, std::string* error = nullptr);

}  // namespace jobmig::telemetry
