#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "jobmig/sim/time.hpp"

/// Span recorder for the migration stack. Spans are stamped in *virtual*
/// time (the discrete-event engine's clock), so a trace of a simulated
/// migration cycle shows the same phase geometry the paper's Fig. 4 plots —
/// and loads directly into chrome://tracing / Perfetto via the exporter.
///
/// Two span flavours:
///  - synchronous spans nest on a per-track stack (LIFO begin/end), mapping
///    onto Chrome's complete ("X") events. One track per logical actor
///    (the migration manager, each C/R daemon, each rank).
///  - async spans bypass the stack and export as Chrome async ("b"/"e")
///    events, for operations that overlap freely on one track (concurrent
///    chunk pulls, per-rank restarts in a TaskGroup).
///
/// Benches that drive several independent engine runs group them with
/// set_process(): each process becomes a Chrome pid with its own tracks.
namespace jobmig::telemetry {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // enclosing sync span on the same track
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint begin;
  sim::TimePoint end;
  bool open = true;
  bool async = false;
  std::vector<std::pair<std::string, std::string>> attrs;
  sim::Duration length() const { return end - begin; }
};

struct InstantEvent {
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint when;
};

/// One point of a time series (pool occupancy, queue depth); exported as a
/// Chrome counter ("C") event.
struct CounterSample {
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint when;
  double value = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder();

  /// Switch the process new spans are attributed to (created on first use).
  void set_process(const std::string& name);
  const std::vector<std::string>& processes() const { return processes_; }

  /// Begin a sync span nested under the track's innermost open sync span.
  SpanId begin_span(std::string track, std::string name);
  /// Begin an async (overlap-friendly) span; parent is still the track's
  /// innermost open sync span, for context.
  SpanId begin_async(std::string track, std::string name);
  void end_span(SpanId id);

  /// Explicit-time variants for tests and offline reconstruction.
  SpanId begin_span_at(std::string track, std::string name, sim::TimePoint t);
  SpanId begin_async_at(std::string track, std::string name, sim::TimePoint t);
  void end_span_at(SpanId id, sim::TimePoint t);

  void attr(SpanId id, std::string key, std::string value);
  void instant(std::string track, std::string name);
  void counter_sample(std::string track, std::string name, double value);

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<CounterSample>& counter_samples() const { return counter_samples_; }

  const Span* find(SpanId id) const;
  /// Innermost open sync span on `track` in the current process.
  SpanId open_top(const std::string& track) const;
  std::size_t open_count() const;
  void clear();

 private:
  SpanId start(std::string track, std::string name, sim::TimePoint t, bool async);
  static sim::TimePoint now();

  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  std::vector<CounterSample> counter_samples_;
  std::vector<std::string> processes_;
  std::uint32_t current_process_ = 0;
  // Per-(process, track) stack of open sync spans.
  std::map<std::pair<std::uint32_t, std::string>, std::vector<SpanId>> stacks_;
};

}  // namespace jobmig::telemetry
