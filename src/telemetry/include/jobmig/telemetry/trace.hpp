#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "jobmig/sim/time.hpp"

/// Span recorder for the migration stack. Spans are stamped in *virtual*
/// time (the discrete-event engine's clock), so a trace of a simulated
/// migration cycle shows the same phase geometry the paper's Fig. 4 plots —
/// and loads directly into chrome://tracing / Perfetto via the exporter.
///
/// Two span flavours:
///  - synchronous spans nest on a per-track stack (LIFO begin/end), mapping
///    onto Chrome's complete ("X") events. One track per logical actor
///    (the migration manager, each C/R daemon, each rank).
///  - async spans bypass the stack and export as Chrome async ("b"/"e")
///    events, for operations that overlap freely on one track (concurrent
///    chunk pulls, per-rank restarts in a TaskGroup).
///
/// Benches that drive several independent engine runs group them with
/// set_process(): each process becomes a Chrome pid with its own tracks.
namespace jobmig::telemetry {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Causal trace context, Dapper-style: a per-migration trace id plus the id
/// of the span that caused the current operation. Contexts ride inside wire
/// messages (FTB events, mpr channel headers, buffer-pool control messages)
/// as two fixed u64 fields, so a receiver can link its spans to the sender's
/// across ranks. A zero context means "not part of any traced operation"
/// (telemetry off, or traffic outside a migration cycle).
struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanId span_id = kNoSpan;

  bool valid() const { return trace_id != 0 && span_id != kNoSpan; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;  // enclosing sync span on the same track
  /// Causal parent: the span (often on another track/rank) whose message or
  /// event caused this one. Set via link(); kNoSpan when uncaused.
  SpanId link_parent = kNoSpan;
  std::uint64_t trace_id = 0;  // migration cycle this span belongs to
  int job_id = 0;              // owning MPI job; 0 = single-job / unattributed
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint begin;
  sim::TimePoint end;
  bool open = true;
  bool async = false;
  std::vector<std::pair<std::string, std::string>> attrs;
  sim::Duration length() const { return end - begin; }
};

/// One causal edge of the migration DAG: the operation recorded as span
/// `from` (e.g. an FTB publish, a chunk advertisement) caused span `to`
/// (its delivery / the chunk pull). Exported as a Chrome flow ("s"/"f")
/// event pair so Perfetto draws the arrows.
struct FlowEdge {
  std::uint64_t id = 0;
  SpanId from = kNoSpan;
  SpanId to = kNoSpan;
  /// Virtual time the link was recorded — i.e. when the receiving span
  /// consumed the message. Critical-path hops are measured between these.
  sim::TimePoint at;
};

struct InstantEvent {
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint when;
};

/// One point of a time series (pool occupancy, queue depth); exported as a
/// Chrome counter ("C") event.
struct CounterSample {
  std::uint32_t process = 0;
  std::string track;
  std::string name;
  sim::TimePoint when;
  double value = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder();

  /// Switch the process new spans are attributed to (created on first use).
  void set_process(const std::string& name);
  const std::vector<std::string>& processes() const { return processes_; }

  /// Begin a sync span nested under the track's innermost open sync span.
  SpanId begin_span(std::string track, std::string name);
  /// Begin an async (overlap-friendly) span; parent is still the track's
  /// innermost open sync span, for context.
  SpanId begin_async(std::string track, std::string name);
  void end_span(SpanId id);

  /// Explicit-time variants for tests and offline reconstruction.
  SpanId begin_span_at(std::string track, std::string name, sim::TimePoint t);
  SpanId begin_async_at(std::string track, std::string name, sim::TimePoint t);
  void end_span_at(SpanId id, sim::TimePoint t);

  void attr(SpanId id, std::string key, std::string value);
  void instant(std::string track, std::string name);
  void counter_sample(std::string track, std::string name, double value);

  /// Stamp the migration trace a span belongs to.
  void set_trace(SpanId id, std::uint64_t trace_id);
  /// Stamp the owning job, so multi-job traces are separable offline.
  void set_job(SpanId id, int job_id);
  /// Record the causal edge from.span_id -> to: sets to's link_parent (first
  /// link wins), inherits the trace id if unset, and emits a flow edge.
  /// No-op unless `from` is valid and refers to a recorded span.
  void link(const TraceContext& from, SpanId to);
  /// Context of a recorded span (zero context for kNoSpan/unknown ids).
  TraceContext context_of(SpanId id) const;

  const std::vector<Span>& spans() const { return spans_; }
  const std::vector<InstantEvent>& instants() const { return instants_; }
  const std::vector<CounterSample>& counter_samples() const { return counter_samples_; }
  const std::vector<FlowEdge>& flows() const { return flows_; }

  const Span* find(SpanId id) const;
  /// Innermost open sync span on `track` in the current process.
  SpanId open_top(const std::string& track) const;
  std::size_t open_count() const;
  void clear();

 private:
  SpanId start(std::string track, std::string name, sim::TimePoint t, bool async);
  static sim::TimePoint now();

  std::vector<Span> spans_;
  std::vector<InstantEvent> instants_;
  std::vector<CounterSample> counter_samples_;
  std::vector<FlowEdge> flows_;
  std::uint64_t next_flow_ = 1;
  std::vector<std::string> processes_;
  std::uint32_t current_process_ = 0;
  // Per-(process, track) stack of open sync spans.
  std::map<std::pair<std::uint32_t, std::string>, std::vector<SpanId>> stacks_;
};

}  // namespace jobmig::telemetry
