#pragma once

#include <ostream>
#include <string>

#include "jobmig/telemetry/json.hpp"
#include "jobmig/telemetry/metrics.hpp"
#include "jobmig/telemetry/trace.hpp"

/// Exporters.
///
///  - Chrome trace_event JSON: `{"traceEvents": [...]}` with complete ("X"),
///    async ("b"/"e"), instant ("i") and counter ("C") events. Virtual time
///    maps to microseconds; recorder processes map to Chrome pids and tracks
///    to named tids. Open the file in chrome://tracing or ui.perfetto.dev.
///  - Summary JSON: a compact machine-readable dump of a MetricsRegistry
///    (counters, gauges, histogram percentiles), embedded by the bench
///    harness in its versioned output.
namespace jobmig::telemetry {

void write_chrome_trace(const TraceRecorder& trace, std::ostream& os);
/// Returns false (and writes nothing) if the file cannot be opened.
bool write_chrome_trace_file(const TraceRecorder& trace, const std::string& path);

/// Emit one object value: {"counters":{...},"gauges":{...},"histograms":{...}}.
/// The caller owns the surrounding document (a key() must be pending).
void write_metrics(JsonWriter& w, const MetricsRegistry& metrics);

/// Standalone metrics document.
void write_metrics_json(const MetricsRegistry& metrics, std::ostream& os);

}  // namespace jobmig::telemetry
