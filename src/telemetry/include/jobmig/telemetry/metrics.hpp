#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

/// Named metrics for the migration stack: monotonically increasing counters
/// (bytes moved, chunks submitted), gauges with low/high watermarks (pool
/// occupancy, queue depth), and log-bucket histograms (WQE latency, chunk
/// RDMA-read time). Histograms use power-of-two buckets — 64 buckets cover
/// the full uint64 range in constant memory, and percentile queries
/// interpolate inside a bucket, which is plenty for the order-of-magnitude
/// latency breakdowns the paper's evaluation reports.
///
/// Thread-safety contract (for the parallel engine mode, DESIGN.md §9):
/// *updates* — Counter::add, Gauge::set/add, Histogram::observe, and the
/// registry's name-resolving accessors — are safe from engine worker
/// threads. *Reads* (value(), percentile(), the map accessors, JSON export)
/// are meant for quiescent points — between windows, or after run() — and
/// only promise to see every update that happened-before the read; a read
/// racing an update may observe the fields (count vs sum vs buckets) at
/// slightly different instants. Updates use relaxed atomics so the
/// single-threaded cost stays what it was: one uncontended RMW.
namespace jobmig::telemetry {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v);
  void add(double delta);
  double value() const;
  double low() const;
  double high() const;
  bool seen() const;

 private:
  mutable std::mutex m_;  // gauges are warm-path (pool/queue watermarks), not per-event
  double value_ = 0.0;
  double low_ = 0.0;
  double high_ = 0.0;
  bool seen_ = false;
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket 0 = value 0; bucket b = [2^(b-1), 2^b)

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t min() const { return count() ? min_.load(std::memory_order_relaxed) : 0; }
  std::uint64_t max() const { return count() ? max_.load(std::memory_order_relaxed) : 0; }
  double mean() const;
  /// Approximate p-th percentile (0 < p <= 100), linearly interpolated
  /// inside the bucket holding that rank.
  double percentile(double p) const;
  /// Snapshot of the bucket counts (value copy: the live array is atomic).
  std::array<std::uint64_t, kBuckets> buckets() const;

  static int bucket_of(std::uint64_t v);
  /// Inclusive [lower, upper] value range of a bucket.
  static std::uint64_t bucket_lower(int b);
  static std::uint64_t bucket_upper(int b);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  // CAS-maintained extremes; the sentinels make first-observation handling
  // branch-free and the getters mask them behind the count() == 0 check.
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Name -> metric map. Resolution (the accessors below) may insert and is
/// mutex-guarded so interned handles can re-resolve from worker threads;
/// returned references stay valid for the registry's lifetime (std::map
/// nodes are address-stable). Iteration via the const map accessors is
/// export-time-only and must not race resolution of *new* names.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) {
    std::lock_guard<std::mutex> lock(m_);
    return counters_[name];
  }
  Gauge& gauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(m_);
    return gauges_[name];
  }
  Histogram& histogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(m_);
    return histograms_[name];
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }
  void clear();

 private:
  mutable std::mutex m_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace jobmig::telemetry
