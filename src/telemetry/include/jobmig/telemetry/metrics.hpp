#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

/// Named metrics for the migration stack: monotonically increasing counters
/// (bytes moved, chunks submitted), gauges with low/high watermarks (pool
/// occupancy, queue depth), and log-bucket histograms (WQE latency, chunk
/// RDMA-read time). Histograms use power-of-two buckets — 64 buckets cover
/// the full uint64 range in constant memory, and percentile queries
/// interpolate inside a bucket, which is plenty for the order-of-magnitude
/// latency breakdowns the paper's evaluation reports.
namespace jobmig::telemetry {

class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v);
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double low() const { return low_; }
  double high() const { return high_; }
  bool seen() const { return seen_; }

 private:
  double value_ = 0.0;
  double low_ = 0.0;
  double high_ = 0.0;
  bool seen_ = false;
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket 0 = value 0; bucket b = [2^(b-1), 2^b)

  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;
  /// Approximate p-th percentile (0 < p <= 100), linearly interpolated
  /// inside the bucket holding that rank.
  double percentile(double p) const;
  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  static int bucket_of(std::uint64_t v);
  /// Inclusive [lower, upper] value range of a bucket.
  static std::uint64_t bucket_lower(int b);
  static std::uint64_t bucket_upper(int b);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }
  void clear();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace jobmig::telemetry
