#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "jobmig/sim/time.hpp"
#include "jobmig/telemetry/metrics.hpp"
#include "jobmig/telemetry/trace.hpp"

/// Process-wide telemetry session and the instrumentation hooks the rest of
/// the stack calls. Exactly one session can be installed at a time (the sim
/// is single-threaded by construction, so a plain pointer suffices); when
/// none is installed every hook is a null-pointer test and nothing else —
/// instrumented code paths cost one predictable branch. Hooks never advance
/// virtual time, so runs with and without telemetry are bit-identical in
/// sim results (enforced by tests/telemetry/telemetry_determinism_test).
namespace jobmig::telemetry {

class Telemetry {
 public:
  TraceRecorder trace;
  MetricsRegistry metrics;

  /// Allocate a fresh causal-trace id (one per migration cycle).
  std::uint64_t new_trace_id() { return next_trace_id_++; }

  /// FTB publish -> first-delivery latency, keyed by the event's (origin,
  /// seq) identity so no wire-format change is needed.
  void ftb_mark_publish(std::uint32_t origin, std::uint64_t seq, sim::TimePoint now);
  void ftb_mark_deliver(std::uint32_t origin, std::uint64_t seq, sim::TimePoint now);

 private:
  std::map<std::pair<std::uint32_t, std::uint64_t>, sim::TimePoint> ftb_inflight_;
  std::uint64_t next_trace_id_ = 1;
};

namespace detail {
extern Telemetry* g_current;
/// Session epoch, bumped on every set_current(); interned metric handles
/// compare it to decide whether their cached pointer is still valid.
extern std::uint64_t g_epoch;
}  // namespace detail

inline Telemetry* current() { return detail::g_current; }
inline bool enabled() { return detail::g_current != nullptr; }
void set_current(Telemetry* t);

/// RAII installer; restores the previous session on destruction.
class TelemetryScope {
 public:
  explicit TelemetryScope(Telemetry& t) : prev_(detail::g_current) { set_current(&t); }
  ~TelemetryScope() { set_current(prev_); }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  Telemetry* prev_;
};

// ---- hooks -----------------------------------------------------------------
// All hooks are no-ops (one branch) without an installed session. Callers
// that build strings for track/attr names must guard with enabled() so the
// string construction is skipped too.

/// RAII span; safe to construct when telemetry is off (records nothing).
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(std::string track, std::string name, bool async = false) {
    if (Telemetry* t = current()) {
      id_ = async ? t->trace.begin_async(std::move(track), std::move(name))
                  : t->trace.begin_span(std::move(track), std::move(name));
    }
  }
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void attr(std::string key, std::string value) {
    if (id_ != kNoSpan) current()->trace.attr(id_, std::move(key), std::move(value));
  }
  /// Stamp this span with a migration trace id.
  void set_trace(std::uint64_t trace_id) {
    if (id_ != kNoSpan) current()->trace.set_trace(id_, trace_id);
  }
  /// Stamp this span with the owning MPI job (0 = single-job default).
  void set_job(int job_id) {
    if (id_ != kNoSpan && job_id != 0) current()->trace.set_job(id_, job_id);
  }
  /// Record that `from` (a context received in a message) caused this span.
  void link_from(const TraceContext& from) {
    if (id_ != kNoSpan) current()->trace.link(from, id_);
  }
  /// Context to stamp into outgoing messages; zero when telemetry is off.
  TraceContext context() const {
    if (id_ == kNoSpan) return {};
    return current()->trace.context_of(id_);
  }
  void end() {
    if (id_ != kNoSpan) {
      current()->trace.end_span(id_);
      id_ = kNoSpan;
    }
  }
  SpanId id() const { return id_; }

 private:
  SpanId id_ = kNoSpan;
};

inline void count(const char* name, std::uint64_t delta = 1) {
  if (Telemetry* t = current()) t->metrics.counter(name).add(delta);
}
inline void count(const std::string& name, std::uint64_t delta = 1) {
  if (Telemetry* t = current()) t->metrics.counter(name).add(delta);
}
inline void observe(const char* name, std::uint64_t v) {
  if (Telemetry* t = current()) t->metrics.histogram(name).observe(v);
}
/// Durations land in nanosecond histograms (negative clamps to 0).
inline void observe_ns(const char* name, sim::Duration d) {
  if (Telemetry* t = current()) {
    t->metrics.histogram(name).observe(
        d.count_ns() > 0 ? static_cast<std::uint64_t>(d.count_ns()) : 0);
  }
}
inline void gauge_set(const char* name, double v) {
  if (Telemetry* t = current()) t->metrics.gauge(name).set(v);
}
inline void gauge_add(const char* name, double delta) {
  if (Telemetry* t = current()) t->metrics.gauge(name).add(delta);
}

void ftb_mark_publish(std::uint32_t origin, std::uint64_t seq);
void ftb_mark_deliver(std::uint32_t origin, std::uint64_t seq);

// ---- interned metric handles ----------------------------------------------
// For per-event hot paths (per-WQE link accounting, per-message stream
// counters): the name is built once at setup, and each hit is a null test,
// an epoch compare, and a pointer bump — no map lookup and no std::string
// construction. Handles survive TelemetryScope changes (the epoch bump in
// set_current forces a re-resolve) and registry growth (std::map nodes are
// address-stable).

// Handles are also safe to hit from engine worker threads (DESIGN.md §9):
// the cached pointer publishes under a release store of the epoch, so a
// reader that observes a current epoch also observes the pointer that goes
// with it. A re-resolve race between two workers is benign — both arrive at
// the same address-stable map node. rename() is setup-time-only.

class InternedCounter {
 public:
  InternedCounter() = default;
  explicit InternedCounter(std::string name) : name_(std::move(name)) {}

  /// Re-point the handle at a different metric (drops the cached pointer).
  void rename(std::string name) {
    name_ = std::move(name);
    epoch_.store(0, std::memory_order_release);
  }
  const std::string& name() const { return name_; }

  void add(std::uint64_t delta = 1) {
    Telemetry* t = current();
    if (t == nullptr) return;
    if (epoch_.load(std::memory_order_acquire) != detail::g_epoch) {
      cached_.store(&t->metrics.counter(name_), std::memory_order_relaxed);
      epoch_.store(detail::g_epoch, std::memory_order_release);
    }
    cached_.load(std::memory_order_relaxed)->add(delta);
  }

 private:
  std::string name_;
  std::atomic<Counter*> cached_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};  // 0 = never resolved (g_epoch starts at 1)
};

class InternedHistogram {
 public:
  InternedHistogram() = default;
  explicit InternedHistogram(std::string name) : name_(std::move(name)) {}

  void rename(std::string name) {
    name_ = std::move(name);
    epoch_.store(0, std::memory_order_release);
  }
  const std::string& name() const { return name_; }

  void observe(std::uint64_t v) {
    Telemetry* t = current();
    if (t == nullptr) return;
    if (epoch_.load(std::memory_order_acquire) != detail::g_epoch) {
      cached_.store(&t->metrics.histogram(name_), std::memory_order_relaxed);
      epoch_.store(detail::g_epoch, std::memory_order_release);
    }
    cached_.load(std::memory_order_relaxed)->observe(v);
  }
  void observe_ns(sim::Duration d) {
    observe(d.count_ns() > 0 ? static_cast<std::uint64_t>(d.count_ns()) : 0);
  }

 private:
  std::string name_;
  std::atomic<Histogram*> cached_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace jobmig::telemetry
