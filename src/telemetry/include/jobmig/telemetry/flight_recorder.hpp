#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// Always-on forensic flight recorder: a fixed-size ring buffer of the last
/// N noteworthy events (migration phase transitions, FTB publishes, node
/// deaths, contract failures), kept even when the opt-in Telemetry session
/// is not installed. The forensic complement to full tracing — when a run
/// dies, the ring holds the events leading up to the failure.
///
/// Cost model: note() copies two short strings into preallocated fixed-width
/// slots — no heap allocation, no locks (the sim is single-threaded by
/// construction), no virtual-time effect — so it is safe to leave on in
/// benches and determinism tests.
///
/// Dumps: dump_on_incident() is called on JOBMIG_ASSERT failure (via the
/// sim contract-fail hook), on an aborted migration, and on simulated node
/// death; it writes jobmig-flight-v1 JSON to the configured path. With no
/// path configured (the default) incidents record nothing on disk, so tests
/// that intentionally trip contract violations stay silent. The
/// JOBMIG_FLIGHT_DUMP environment variable seeds the path at startup.
namespace jobmig::telemetry {

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;
  static constexpr std::size_t kCategoryBytes = 16;
  static constexpr std::size_t kTextBytes = 112;

  struct Entry {
    std::uint64_t seq = 0;       // monotonically increasing, never wraps
    std::int64_t t_ns = 0;       // virtual time when noted (0 outside a run)
    std::uint64_t trace_id = 0;  // migration trace, when known
    std::uint64_t span_id = 0;
    std::int32_t job_id = 0;             // owning MPI job; 0 = unattributed
    char category[kCategoryBytes] = {};  // NUL-terminated, truncated to fit
    char text[kTextBytes] = {};
  };

  /// Process-wide instance; the first call installs the contract-fail hook.
  static FlightRecorder& instance();

  /// Record one event (truncating category/text to the slot widths).
  void note(std::string_view category, std::string_view text, std::uint64_t trace_id = 0,
            std::uint64_t span_id = 0, std::int32_t job_id = 0);

  /// Surviving entries, oldest first.
  std::vector<Entry> snapshot() const;
  /// Events ever noted, including ones the ring has since overwritten.
  std::uint64_t total_recorded() const { return next_seq_; }
  std::size_t size() const;
  /// Drop all entries (keeps the dump path); tests isolate with this.
  void clear();

  /// Where incident dumps go; empty (the default) disables them.
  void set_dump_path(std::string path) { dump_path_ = std::move(path); }
  const std::string& dump_path() const { return dump_path_; }

  /// Serialise the ring as jobmig-flight-v1 JSON.
  void dump(std::ostream& os, std::string_view reason) const;
  bool dump_to_file(const std::string& path, std::string_view reason) const;

  /// Incident entry point (assert failure, aborted migration, node death):
  /// dumps to dump_path() when one is configured. Returns whether a file
  /// was written.
  bool dump_on_incident(std::string_view reason);

 private:
  FlightRecorder();

  std::array<Entry, kCapacity> ring_{};
  std::uint64_t next_seq_ = 0;
  std::string dump_path_;
};

/// Shorthand for FlightRecorder::instance().note(...).
void flight_note(std::string_view category, std::string_view text, std::uint64_t trace_id = 0,
                 std::uint64_t span_id = 0, std::int32_t job_id = 0);

}  // namespace jobmig::telemetry
