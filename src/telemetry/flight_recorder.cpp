#include "jobmig/telemetry/flight_recorder.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/telemetry/json.hpp"

namespace jobmig::telemetry {

namespace {

void on_contract_fail(const char* kind, const char* expr, const char* file, int line,
                      const std::string& msg) {
  FlightRecorder& fr = FlightRecorder::instance();
  std::string text = std::string(kind) + " (" + expr + ") at " + file + ":" + std::to_string(line);
  if (!msg.empty()) text += " — " + msg;
  fr.note("assert", text);
  fr.dump_on_incident(text);
}

std::int64_t virtual_now_ns() {
  sim::Engine* e = sim::Engine::current();
  return e != nullptr ? e->now().count_ns() : 0;
}

void copy_trunc(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

FlightRecorder::FlightRecorder() {
  if (const char* path = std::getenv("JOBMIG_FLIGHT_DUMP")) dump_path_ = path;
  jobmig::detail::set_contract_fail_hook(&on_contract_fail);
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder fr;
  return fr;
}

void FlightRecorder::note(std::string_view category, std::string_view text,
                          std::uint64_t trace_id, std::uint64_t span_id, std::int32_t job_id) {
  Entry& e = ring_[next_seq_ % kCapacity];
  e.seq = next_seq_++;
  e.t_ns = virtual_now_ns();
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.job_id = job_id;
  copy_trunc(e.category, kCategoryBytes, category);
  copy_trunc(e.text, kTextBytes, text);
}

std::vector<FlightRecorder::Entry> FlightRecorder::snapshot() const {
  const std::uint64_t n = next_seq_ < kCapacity ? next_seq_ : kCapacity;
  std::vector<Entry> out;
  out.reserve(n);
  for (std::uint64_t s = next_seq_ - n; s < next_seq_; ++s) out.push_back(ring_[s % kCapacity]);
  return out;
}

std::size_t FlightRecorder::size() const {
  return next_seq_ < kCapacity ? static_cast<std::size_t>(next_seq_) : kCapacity;
}

void FlightRecorder::clear() {
  ring_.fill(Entry{});
  next_seq_ = 0;
}

void FlightRecorder::dump(std::ostream& os, std::string_view reason) const {
  JsonWriter w(os);
  w.begin_object();
  w.field("format", "jobmig-flight-v1");
  w.field("reason", reason);
  w.field("total_recorded", next_seq_);
  w.field("capacity", static_cast<std::uint64_t>(kCapacity));
  w.field("dropped", next_seq_ > kCapacity ? next_seq_ - kCapacity : std::uint64_t{0});
  w.key("entries").begin_array();
  for (const Entry& e : snapshot()) {
    w.begin_object();
    w.field("seq", e.seq);
    w.field("t_ns", e.t_ns);
    if (e.trace_id != 0) w.field("trace_id", e.trace_id);
    if (e.span_id != 0) w.field("span_id", e.span_id);
    if (e.job_id != 0) w.field("job_id", static_cast<std::int64_t>(e.job_id));
    w.field("category", static_cast<const char*>(e.category));
    w.field("text", static_cast<const char*>(e.text));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

bool FlightRecorder::dump_to_file(const std::string& path, std::string_view reason) const {
  std::ofstream os(path);
  if (!os) return false;
  dump(os, reason);
  os << "\n";
  return static_cast<bool>(os);
}

bool FlightRecorder::dump_on_incident(std::string_view reason) {
  if (dump_path_.empty()) return false;
  return dump_to_file(dump_path_, reason);
}

void flight_note(std::string_view category, std::string_view text, std::uint64_t trace_id,
                 std::uint64_t span_id, std::int32_t job_id) {
  FlightRecorder::instance().note(category, text, trace_id, span_id, job_id);
}

}  // namespace jobmig::telemetry
