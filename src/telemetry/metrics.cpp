#include "jobmig/telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "jobmig/sim/assert.hpp"

namespace jobmig::telemetry {

void Gauge::set(double v) {
  std::lock_guard<std::mutex> lock(m_);
  value_ = v;
  if (!seen_) {
    low_ = high_ = v;
    seen_ = true;
  } else {
    low_ = std::min(low_, v);
    high_ = std::max(high_, v);
  }
}

void Gauge::add(double delta) {
  std::lock_guard<std::mutex> lock(m_);
  const double v = value_ + delta;
  value_ = v;
  if (!seen_) {
    low_ = high_ = v;
    seen_ = true;
  } else {
    low_ = std::min(low_, v);
    high_ = std::max(high_, v);
  }
}

double Gauge::value() const {
  std::lock_guard<std::mutex> lock(m_);
  return value_;
}

double Gauge::low() const {
  std::lock_guard<std::mutex> lock(m_);
  return low_;
}

double Gauge::high() const {
  std::lock_guard<std::mutex> lock(m_);
  return high_;
}

bool Gauge::seen() const {
  std::lock_guard<std::mutex> lock(m_);
  return seen_;
}

int Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);  // 1 -> bucket 1, 2..3 -> 2, 4..7 -> 3, ...
}

std::uint64_t Histogram::bucket_lower(int b) {
  JOBMIG_EXPECTS(b >= 0 && b < kBuckets);
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_upper(int b) {
  JOBMIG_EXPECTS(b >= 0 && b < kBuckets);
  if (b == 0) return 0;
  if (b == kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

namespace {

/// Relaxed CAS-min/max: contention is rare (per-domain workloads touch
/// disjoint metrics), so the loop almost always succeeds first try.
void atomic_min(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& a, std::uint64_t v) {
  std::uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::observe(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const {
  std::array<std::uint64_t, kBuckets> out;
  for (int b = 0; b < kBuckets; ++b) {
    out[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double p) const {
  JOBMIG_EXPECTS_MSG(p > 0.0 && p <= 100.0, "percentile wants p in (0, 100]");
  const auto snap = buckets();
  std::uint64_t total = 0;
  for (const std::uint64_t c : snap) total += c;
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = snap[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate within the bucket, clamped to the observed extremes so
      // single-bucket distributions don't report phantom spread.
      const double lo =
          std::max(static_cast<double>(bucket_lower(b)), static_cast<double>(min()));
      const double hi =
          std::min(static_cast<double>(bucket_upper(b)), static_cast<double>(max()));
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(m_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace jobmig::telemetry
