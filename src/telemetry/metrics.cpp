#include "jobmig/telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "jobmig/sim/assert.hpp"

namespace jobmig::telemetry {

void Gauge::set(double v) {
  value_ = v;
  if (!seen_) {
    low_ = high_ = v;
    seen_ = true;
  } else {
    low_ = std::min(low_, v);
    high_ = std::max(high_, v);
  }
}

int Histogram::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  return 64 - std::countl_zero(v);  // 1 -> bucket 1, 2..3 -> 2, 4..7 -> 3, ...
}

std::uint64_t Histogram::bucket_lower(int b) {
  JOBMIG_EXPECTS(b >= 0 && b < kBuckets);
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t Histogram::bucket_upper(int b) {
  JOBMIG_EXPECTS(b >= 0 && b < kBuckets);
  if (b == 0) return 0;
  if (b == kBuckets - 1) return UINT64_MAX;
  return (std::uint64_t{1} << b) - 1;
}

void Histogram::observe(std::uint64_t v) {
  ++buckets_[static_cast<std::size_t>(bucket_of(v))];
  ++count_;
  sum_ += v;
  if (count_ == 1) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
}

double Histogram::mean() const {
  return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
}

double Histogram::percentile(double p) const {
  JOBMIG_EXPECTS_MSG(p > 0.0 && p <= 100.0, "percentile wants p in (0, 100]");
  if (count_ == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      // Interpolate within the bucket, clamped to the observed extremes so
      // single-bucket distributions don't report phantom spread.
      const double lo =
          std::max(static_cast<double>(bucket_lower(b)), static_cast<double>(min()));
      const double hi =
          std::min(static_cast<double>(bucket_upper(b)), static_cast<double>(max()));
      const double frac = (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max());
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace jobmig::telemetry
