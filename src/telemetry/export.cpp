#include "jobmig/telemetry/export.hpp"

#include <fstream>
#include <map>
#include <utility>

namespace jobmig::telemetry {

namespace {

double to_us(sim::TimePoint t) { return static_cast<double>(t.count_ns()) / 1000.0; }
double to_us(sim::Duration d) { return static_cast<double>(d.count_ns()) / 1000.0; }

/// Stable track -> Chrome tid assignment per process, in first-seen order.
class TidMap {
 public:
  int tid(std::uint32_t process, const std::string& track) {
    auto [it, inserted] = tids_.try_emplace({process, track}, next_);
    if (inserted) ++next_;
    return it->second;
  }
  const std::map<std::pair<std::uint32_t, std::string>, int>& all() const { return tids_; }

 private:
  std::map<std::pair<std::uint32_t, std::string>, int> tids_;
  int next_ = 1;
};

void event_common(JsonWriter& w, const char* ph, const char* name, int pid, int tid,
                  double ts_us) {
  w.field("name", name);
  w.field("ph", ph);
  w.field("pid", pid);
  w.field("tid", tid);
  w.field("ts", ts_us);
}

void span_args(JsonWriter& w, const Span& s) {
  // span_id always rides along so offline tools (jobmig-trace) can rebuild
  // the causal DAG from the exported file alone; link_parent/trace_id only
  // when the span is part of one.
  w.key("args").begin_object();
  w.field("span_id", s.id);
  if (s.link_parent != kNoSpan) w.field("link_parent", s.link_parent);
  if (s.trace_id != 0) w.field("trace_id", s.trace_id);
  if (s.job_id != 0) w.field("job_id", static_cast<std::int64_t>(s.job_id));
  for (const auto& [k, v] : s.attrs) w.field(k, v);
  w.end_object();
}

}  // namespace

void write_chrome_trace(const TraceRecorder& trace, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  TidMap tids;
  // Pre-walk so tids exist for the metadata pass below; also emit the data
  // events in recording order (Chrome sorts by ts, order is cosmetic).
  for (const Span& s : trace.spans()) {
    const int pid = static_cast<int>(s.process) + 1;
    const int tid = tids.tid(s.process, s.track);
    if (s.async) {
      // Async pair: overlapping operations on one track (chunk pulls,
      // per-rank restarts) that must not be force-nested.
      w.begin_object();
      event_common(w, "b", s.name.c_str(), pid, tid, to_us(s.begin));
      w.field("cat", "async");
      w.field("id", s.id);
      span_args(w, s);
      w.end_object();
      w.begin_object();
      event_common(w, "e", s.name.c_str(), pid, tid, to_us(s.open ? s.begin : s.end));
      w.field("cat", "async");
      w.field("id", s.id);
      w.end_object();
    } else {
      w.begin_object();
      event_common(w, "X", s.name.c_str(), pid, tid, to_us(s.begin));
      w.field("cat", "sim");
      w.field("dur", s.open ? 0.0 : to_us(s.length()));
      span_args(w, s);
      w.end_object();
    }
  }
  for (const InstantEvent& ev : trace.instants()) {
    w.begin_object();
    event_common(w, "i", ev.name.c_str(), static_cast<int>(ev.process) + 1,
                 tids.tid(ev.process, ev.track), to_us(ev.when));
    w.field("cat", "sim");
    w.field("s", "t");
    w.end_object();
  }
  for (const CounterSample& cs : trace.counter_samples()) {
    w.begin_object();
    event_common(w, "C", cs.name.c_str(), static_cast<int>(cs.process) + 1,
                 tids.tid(cs.process, cs.track), to_us(cs.when));
    w.key("args").begin_object().field("value", cs.value).end_object();
    w.end_object();
  }
  // Causal edges as Chrome flow pairs: "s" anchored inside the causing span,
  // "f" (bp:"e") anchored at the link (consumption) time inside the caused
  // span, so Perfetto draws the arrows of the migration DAG across
  // rank/daemon tracks. The args carry the endpoints and the edge time so
  // jobmig-trace can rebuild the timestamped DAG from the file alone.
  for (const FlowEdge& f : trace.flows()) {
    const Span* from = trace.find(f.from);
    const Span* to = trace.find(f.to);
    if (from == nullptr || to == nullptr) continue;
    w.begin_object();
    event_common(w, "s", "flow", static_cast<int>(from->process) + 1,
                 tids.tid(from->process, from->track), to_us(from->begin));
    w.field("cat", "flow");
    w.field("id", f.id);
    w.key("args").begin_object();
    w.field("from_span", f.from);
    w.field("to_span", f.to);
    w.end_object();
    w.end_object();
    w.begin_object();
    event_common(w, "f", "flow", static_cast<int>(to->process) + 1,
                 tids.tid(to->process, to->track), to_us(f.at));
    w.field("cat", "flow");
    w.field("id", f.id);
    w.field("bp", "e");
    w.key("args").begin_object();
    w.field("from_span", f.from);
    w.field("to_span", f.to);
    w.end_object();
    w.end_object();
  }

  // Metadata: name the pids and tids so Perfetto shows hostnames/ranks
  // instead of bare numbers.
  for (std::size_t p = 0; p < trace.processes().size(); ++p) {
    w.begin_object();
    event_common(w, "M", "process_name", static_cast<int>(p) + 1, 0, 0.0);
    w.key("args").begin_object().field("name", trace.processes()[p]).end_object();
    w.end_object();
  }
  for (const auto& [key, tid] : tids.all()) {
    w.begin_object();
    event_common(w, "M", "thread_name", static_cast<int>(key.first) + 1, tid, 0.0);
    w.key("args").begin_object().field("name", key.second).end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
}

bool write_chrome_trace_file(const TraceRecorder& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(trace, os);
  return static_cast<bool>(os);
}

void write_metrics(JsonWriter& w, const MetricsRegistry& metrics) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : metrics.counters()) w.field(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : metrics.gauges()) {
    w.key(name).begin_object();
    w.field("value", g.value());
    w.field("low", g.low());
    w.field("high", g.high());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : metrics.histograms()) {
    w.key(name).begin_object();
    w.field("count", h.count());
    w.field("sum", h.sum());
    w.field("min", h.min());
    w.field("max", h.max());
    w.field("mean", h.mean());
    if (h.count() > 0) {
      w.field("p50", h.percentile(50.0));
      w.field("p90", h.percentile(90.0));
      w.field("p99", h.percentile(99.0));
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_metrics_json(const MetricsRegistry& metrics, std::ostream& os) {
  JsonWriter w(os);
  // write_metrics expects to emit a value; at root that is the document.
  write_metrics(w, metrics);
}

}  // namespace jobmig::telemetry
