#include "jobmig/ftb/ftb.hpp"

#include <algorithm>

#include "jobmig/sim/log.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::ftb {

using namespace sim::literals;

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

namespace {

void put_str(sim::Bytes& out, const std::string& s) {
  sim::put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

bool get_str(sim::ByteSpan in, std::size_t& pos, std::string& out) {
  if (pos + 4 > in.size()) return false;
  const std::uint32_t len = sim::get_u32(in, pos);
  pos += 4;
  if (pos + len > in.size()) return false;
  out.clear();
  out.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) out.push_back(static_cast<char>(in[pos + i]));
  pos += len;
  return true;
}

}  // namespace

sim::Bytes FtbEvent::encode() const {
  sim::Bytes out;
  out.push_back(static_cast<std::byte>(severity));
  sim::put_u32(out, origin);
  sim::put_u64(out, seq);
  sim::put_u64(out, ctx.trace_id);
  sim::put_u64(out, ctx.span_id);
  put_str(out, space);
  put_str(out, name);
  put_str(out, payload);
  put_str(out, publisher);
  return out;
}

std::optional<FtbEvent> FtbEvent::decode(sim::ByteSpan data) {
  if (data.size() < 29) return std::nullopt;
  FtbEvent ev;
  const auto sev = static_cast<std::uint8_t>(data[0]);
  if (sev > static_cast<std::uint8_t>(Severity::kFatal)) return std::nullopt;
  ev.severity = static_cast<Severity>(sev);
  ev.origin = sim::get_u32(data, 1);
  ev.seq = sim::get_u64(data, 5);
  ev.ctx.trace_id = sim::get_u64(data, 13);
  ev.ctx.span_id = sim::get_u64(data, 21);
  std::size_t pos = 29;
  if (!get_str(data, pos, ev.space)) return std::nullopt;
  if (!get_str(data, pos, ev.name)) return std::nullopt;
  if (!get_str(data, pos, ev.payload)) return std::nullopt;
  if (!get_str(data, pos, ev.publisher)) return std::nullopt;
  if (pos != data.size()) return std::nullopt;
  return ev;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative matcher with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool Subscription::matches(const FtbEvent& ev) const {
  return static_cast<int>(ev.severity) >= static_cast<int>(min_severity) &&
         glob_match(space_glob, ev.space) && glob_match(name_glob, ev.name);
}

FtbClient::FtbClient(FtbAgent& agent, std::string name) : agent_(agent), name_(std::move(name)) {
  agent_.register_client(this);
}

FtbClient::~FtbClient() { agent_.unregister_client(this); }

void FtbClient::subscribe(Subscription sub) { subs_.push_back(std::move(sub)); }

sim::Task FtbClient::publish(FtbEvent ev) {
  ev.publisher = name_;
  co_await agent_.accept_local(std::move(ev));
}

sim::ValueTask<FtbEvent> FtbClient::next_event() {
  auto ev = co_await inbox_.recv();
  JOBMIG_ASSERT_MSG(ev.has_value(), "FTB client inbox closed");
  co_return std::move(*ev);
}

std::optional<FtbEvent> FtbClient::poll_event() { return inbox_.try_recv(); }

void FtbClient::deliver(const FtbEvent& ev) {
  for (const Subscription& s : subs_) {
    if (s.matches(ev)) {
      if (inbox_.try_send(ev)) {
        telemetry::ftb_mark_deliver(ev.origin, ev.seq);
        telemetry::count("ftb.deliveries");
      } else {
        ++dropped_;
        telemetry::count("ftb.drops");
      }
      return;  // at most one copy per client
    }
  }
}

FtbAgent::FtbAgent(net::Host& host, net::Port port) : host_(host), port_(port) {}

FtbAgent::~FtbAgent() { shutdown(); }

void FtbAgent::start() {
  JOBMIG_EXPECTS_MSG(!running_, "agent already started");
  running_ = true;
  listener_ = host_.listen(port_);
  host_.network().engine().spawn(accept_loop());
  if (!ancestors_.empty()) {
    host_.network().engine().spawn(maintain_parent());
  }
}

void FtbAgent::set_ancestors(std::vector<std::pair<net::HostId, net::Port>> ancestors) {
  JOBMIG_EXPECTS_MSG(!running_, "set_ancestors() before start()");
  ancestors_ = std::move(ancestors);
}

void FtbAgent::shutdown() {
  if (!running_) return;
  running_ = false;
  if (listener_) listener_->close();
  for (auto& link : links_) {
    link->dead = true;
    if (link->stream) link->stream->close();
  }
  links_.clear();
  parent_link_ = nullptr;
}

std::size_t FtbAgent::child_count() const {
  std::size_t n = 0;
  for (const auto& link : links_) {
    if (!link->is_parent && !link->dead) ++n;
  }
  return n;
}

void FtbAgent::register_client(FtbClient* c) { clients_.push_back(c); }

void FtbAgent::unregister_client(FtbClient* c) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), c), clients_.end());
}

sim::Task FtbAgent::accept_local(FtbEvent ev) {
  ev.origin = host_.id();
  ev.seq = next_seq_++;
  telemetry::ftb_mark_publish(ev.origin, ev.seq);
  telemetry::count("ftb.publishes");
  route(ev, nullptr);
  co_return;
}

sim::Task FtbAgent::accept_loop() {
  while (running_) {
    net::StreamPtr stream = co_await listener_->accept();
    if (!stream) break;  // listener closed
    auto link = std::make_shared<Link>();
    link->stream = std::move(stream);
    links_.push_back(link);
    host_.network().engine().spawn(reader_loop(link));
  }
}

sim::Task FtbAgent::reader_loop(LinkPtr link) {
  while (running_ && !link->dead) {
    auto frame = co_await link->stream->recv_frame();
    if (!frame) break;
    auto ev = FtbEvent::decode(*frame);
    if (!ev) {
      sim::log_warn("ftb", "agent on host {} dropped undecodable frame", host_.id());
      continue;
    }
    route(*ev, link.get());
  }
  link->dead = true;
  links_.erase(std::remove(links_.begin(), links_.end(), link), links_.end());
  if (parent_link_ == link) {
    parent_link_ = nullptr;
    parent_lost_.set();  // maintain_parent() re-parents (self-healing)
  }
}

sim::Task FtbAgent::maintain_parent() {
  constexpr int kMaxRounds = 5;
  int failed_rounds = 0;
  bool first_attach = true;
  while (running_ && failed_rounds < kMaxRounds) {
    bool attached = false;
    for (const auto& [ancestor_host, ancestor_port] : ancestors_) {
      if (!running_) co_return;
      net::StreamPtr stream = co_await host_.connect(ancestor_host, ancestor_port);
      if (!stream) continue;
      auto link = std::make_shared<Link>();
      link->stream = std::move(stream);
      link->is_parent = true;
      links_.push_back(link);
      parent_link_ = link;
      if (!first_attach) ++reconnects_;
      first_attach = false;
      attached = true;
      failed_rounds = 0;
      // Run the reader inline so we notice the parent dying.
      co_await reader_loop(link);
      break;
    }
    if (!running_) co_return;
    if (!attached) {
      ++failed_rounds;
      co_await sim::sleep_for(200_ms);
    } else {
      co_await sim::sleep_for(50_ms);  // brief backoff before re-parenting
    }
  }
  if (running_ && failed_rounds >= kMaxRounds) {
    sim::log_warn("ftb", "agent on host {} gave up re-parenting", host_.id());
  }
}

void FtbAgent::route(const FtbEvent& ev, const Link* from) {
  ++events_routed_;
  for (FtbClient* c : clients_) c->deliver(ev);
  sim::Bytes wire = ev.encode();
  for (auto& link : links_) {
    if (link.get() == from || link->dead) continue;
    host_.network().engine().spawn(
        [](LinkPtr l, sim::Bytes bytes) -> sim::Task {
          if (l->dead) co_return;
          co_await l->stream->send_frame(bytes);
        }(link, wire));
  }
}

}  // namespace jobmig::ftb
