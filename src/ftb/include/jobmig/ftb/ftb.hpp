#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jobmig/net/network.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/telemetry/trace.hpp"

/// Fault Tolerance Backplane (CIFTS FTB) — the publish/subscribe messaging
/// substrate the paper's migration framework uses for all fault-related
/// coordination (FTB_MIGRATE / FTB_MIGRATE_PIIC / FTB_RESTART in Fig. 2).
///
/// Faithful to the paper's description of the FTB software stack:
///  - Client layer: FtbClient — connect/subscribe/publish/poll.
///  - Manager layer: subscription matching and event routing inside each
///    FtbAgent.
///  - Network layer: length-framed messages over the cluster's GigE
///    (jobmig::net streams), transparent to the upper layers.
/// Agents form a tree; if an agent loses its parent it re-parents to the
/// next ancestor on its fallback list (the self-healing behaviour §II-B).
namespace jobmig::ftb {

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

std::string_view to_string(Severity s);

struct FtbEvent {
  std::string space;    // event namespace, e.g. "FTB.MPI.MVAPICH2"
  std::string name;     // e.g. "FTB_MIGRATE"
  Severity severity = Severity::kInfo;
  std::string payload;  // free-form: hostnames, rank lists, ...
  std::string publisher;  // client name
  net::HostId origin = 0;
  std::uint64_t seq = 0;  // unique per origin agent
  /// Causal context of the span that published this event; rides the wire
  /// (two u64s, zero when untraced) so a subscriber can link the work the
  /// event triggers back to the publisher's span across nodes.
  telemetry::TraceContext ctx{};

  // User-declared special members: FtbEvent crosses coroutine boundaries by
  // value, and GCC 12 miscompiles non-trivial aggregates there (see
  // sim::Channel's static_assert).
  FtbEvent() = default;
  FtbEvent(std::string space_, std::string name_, Severity severity_, std::string payload_,
           std::string publisher_ = {}, net::HostId origin_ = 0, std::uint64_t seq_ = 0)
      : space(std::move(space_)),
        name(std::move(name_)),
        severity(severity_),
        payload(std::move(payload_)),
        publisher(std::move(publisher_)),
        origin(origin_),
        seq(seq_) {}
  FtbEvent(const FtbEvent&) = default;
  FtbEvent(FtbEvent&&) = default;
  FtbEvent& operator=(const FtbEvent&) = default;
  FtbEvent& operator=(FtbEvent&&) = default;

  sim::Bytes encode() const;
  static std::optional<FtbEvent> decode(sim::ByteSpan data);
  friend bool operator==(const FtbEvent&, const FtbEvent&) = default;
};

/// Subscription: glob on "space.name" ('*' matches any run) plus a severity
/// floor.
struct Subscription {
  std::string space_glob = "*";
  std::string name_glob = "*";
  Severity min_severity = Severity::kInfo;

  Subscription() = default;
  Subscription(std::string space, std::string name, Severity min_sev = Severity::kInfo)
      : space_glob(std::move(space)), name_glob(std::move(name)), min_severity(min_sev) {}
  Subscription(const Subscription&) = default;
  Subscription(Subscription&&) = default;
  Subscription& operator=(const Subscription&) = default;
  Subscription& operator=(Subscription&&) = default;

  bool matches(const FtbEvent& ev) const;
};

/// '*'-glob matcher (exported for tests).
bool glob_match(std::string_view pattern, std::string_view text);

class FtbAgent;

/// Client-layer handle. Clients attach to the agent on their own node (the
/// real FTB uses shared memory for this hop; we model it as free).
class FtbClient {
 public:
  FtbClient(FtbAgent& agent, std::string name);
  ~FtbClient();
  FtbClient(const FtbClient&) = delete;
  FtbClient& operator=(const FtbClient&) = delete;

  const std::string& name() const { return name_; }

  void subscribe(Subscription sub);

  /// Publish into the backplane; completes when the local agent accepted it
  /// (propagation continues asynchronously).
  [[nodiscard]] sim::Task publish(FtbEvent ev);

  /// Next matching event (blocks in virtual time).
  [[nodiscard]] sim::ValueTask<FtbEvent> next_event();
  std::optional<FtbEvent> poll_event();
  std::size_t pending() const { return inbox_.size(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  friend class FtbAgent;
  void deliver(const FtbEvent& ev);

  FtbAgent& agent_;
  std::string name_;
  std::vector<Subscription> subs_;
  sim::Channel<FtbEvent> inbox_{1024};
  std::uint64_t dropped_ = 0;
};

/// One agent per node; manager + network layers.
class FtbAgent {
 public:
  static constexpr net::Port kDefaultPort = 14077;

  FtbAgent(net::Host& host, net::Port port = kDefaultPort);
  ~FtbAgent();
  FtbAgent(const FtbAgent&) = delete;
  FtbAgent& operator=(const FtbAgent&) = delete;

  net::Host& host() { return host_; }
  net::Port port() const { return port_; }

  /// Begin accepting child agents. Root agents call only this.
  void start();

  /// Attach to a parent, with ordered fallbacks for self-healing. The entry
  /// list holds (host, port) of ancestors, nearest first.
  void set_ancestors(std::vector<std::pair<net::HostId, net::Port>> ancestors);

  /// Orderly shutdown: drop all links and stop accepting.
  void shutdown();

  bool connected_to_parent() const { return parent_link_ != nullptr; }
  std::size_t child_count() const;
  std::uint64_t events_routed() const { return events_routed_; }
  std::uint64_t reconnects() const { return reconnects_; }
  bool running() const { return running_; }

 private:
  friend class FtbClient;
  struct Link {
    net::StreamPtr stream;
    bool is_parent = false;
    bool dead = false;
  };
  using LinkPtr = std::shared_ptr<Link>;

  void register_client(FtbClient* c);
  void unregister_client(FtbClient* c);
  /// Entry from the local client layer.
  [[nodiscard]] sim::Task accept_local(FtbEvent ev);

  sim::Task accept_loop();
  sim::Task reader_loop(LinkPtr link);
  sim::Task maintain_parent();
  /// Route to local subscribers and every link except `from`.
  void route(const FtbEvent& ev, const Link* from);

  net::Host& host_;
  net::Port port_;
  bool running_ = false;
  std::unique_ptr<net::Listener> listener_;
  LinkPtr parent_link_;
  std::vector<LinkPtr> links_;
  std::vector<std::pair<net::HostId, net::Port>> ancestors_;
  std::vector<FtbClient*> clients_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_routed_ = 0;
  std::uint64_t reconnects_ = 0;
  sim::Event parent_lost_;
};

}  // namespace jobmig::ftb
