#include "jobmig/workload/npb.hpp"

#include <algorithm>
#include <cmath>

namespace jobmig::workload {

using namespace sim::literals;

std::string to_string(NpbApp app) {
  switch (app) {
    case NpbApp::kLU: return "LU";
    case NpbApp::kBT: return "BT";
    case NpbApp::kSP: return "SP";
  }
  return "?";
}

std::string to_string(NpbClass cls) {
  switch (cls) {
    case NpbClass::kTest: return "T";
    case NpbClass::kA: return "A";
    case NpbClass::kB: return "B";
    case NpbClass::kC: return "C";
  }
  return "?";
}

std::string KernelSpec::name() const {
  return to_string(app) + "." + to_string(cls) + "." + std::to_string(nprocs);
}

namespace {

/// Per-app class-C constants calibrated against the paper (64 ranks):
/// Table I total checkpoint data and Fig. 5 base runtimes. Aggregate image
/// data decomposes as data_total = job_data + nprocs * per_proc_overhead so
/// image sizes extrapolate across rank counts (Fig. 6's 8..64 sweep).
struct AppConstants {
  double job_data_bytes_c;    // class-C application data across the job
  double per_proc_overhead;   // library/stack/code per process
  int iterations_c;
  double base_runtime_sec_c;  // Fig. 5 no-migration runtime at 64 ranks
  double msg_bytes_c64;       // halo payload at 64 ranks
};

AppConstants constants_of(NpbApp app) {
  switch (app) {
    case NpbApp::kLU:
      // Table I: 1363.2 MB total -> 21.3 MB/rank at 64.
      return {979.0e6, 6.0e6, 250, 162.0, 40e3};
    case NpbApp::kBT:
      // Table I: 2470.4 MB total -> 38.6 MB/rank at 64.
      return {2086.0e6, 6.0e6, 200, 167.0, 160e3};
    case NpbApp::kSP:
      // Table I: 2425.6 MB total -> 37.9 MB/rank at 64.
      return {2041.0e6, 6.0e6, 400, 230.0, 100e3};
  }
  JOBMIG_ASSERT_MSG(false, "unknown app");
  return {};
}

double class_scale(NpbClass cls) {
  switch (cls) {
    case NpbClass::kTest: return 1.0 / 2048.0;
    case NpbClass::kA: return 1.0 / 16.0;
    case NpbClass::kB: return 1.0 / 4.0;
    case NpbClass::kC: return 1.0;
  }
  return 1.0;
}

}  // namespace

Grid2D Grid2D::for_procs(int nprocs) {
  JOBMIG_EXPECTS(nprocs >= 1);
  Grid2D g;
  g.px = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (g.px > 1 && nprocs % g.px != 0) --g.px;
  g.py = nprocs / g.px;
  return g;
}

KernelSpec make_spec(NpbApp app, NpbClass cls, int nprocs, double runtime_scale) {
  JOBMIG_EXPECTS(nprocs >= 1);
  JOBMIG_EXPECTS(runtime_scale > 0.0);
  const AppConstants c = constants_of(app);
  const double s = class_scale(cls);

  KernelSpec spec;
  spec.app = app;
  spec.cls = cls;
  spec.nprocs = nprocs;
  spec.iterations =
      std::max(1, static_cast<int>(std::lround(c.iterations_c * runtime_scale)));
  // Strong scaling: per-iteration compute shrinks with rank count relative
  // to the 64-rank calibration point.
  const double iter_sec = c.base_runtime_sec_c / c.iterations_c * (64.0 / nprocs) * s;
  spec.time_per_iter = sim::Duration::seconds(iter_sec);
  spec.image_bytes_per_rank = static_cast<std::uint64_t>(
      c.job_data_bytes_c * s / nprocs +
      c.per_proc_overhead * std::clamp(s * 4.0, 0.02, 1.0));
  // Halo surface shrinks with the square root of the rank count.
  spec.msg_bytes = static_cast<std::uint64_t>(
      std::max(1.0, c.msg_bytes_c64 * std::sqrt(64.0 / nprocs) * std::cbrt(s)));
  spec.dirty_bytes_per_iter =
      std::min<std::uint64_t>(spec.image_bytes_per_rank / 8, 4ull << 20);
  return spec;
}

sim::Bytes Progress::encode() const {
  sim::Bytes out;
  sim::put_u32(out, magic);
  sim::put_u32(out, next_iteration);
  return out;
}

Progress Progress::decode_or_fresh(sim::ByteSpan state) {
  Progress p;
  if (state.size() == 8 && sim::get_u32(state, 0) == p.magic) {
    p.next_iteration = sim::get_u32(state, 4);
  }
  return p;
}

namespace {

std::uint64_t halo_seed(int src_rank, int iteration, int direction) {
  return 0x48414C4Full ^ (static_cast<std::uint64_t>(src_rank) << 24) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(iteration)) << 4) ^
         static_cast<std::uint64_t>(direction);
}

sim::Bytes halo_payload(std::uint64_t bytes, std::uint64_t seed) {
  sim::Bytes b(bytes);
  sim::pattern_fill(b, seed, 0);
  return b;
}

/// One rank's kernel loop. Every observable step is checkable: received
/// halos are verified against the deterministic pattern the sender must
/// have produced for (its rank, iteration, direction).
sim::Task run_kernel(KernelSpec spec, mpr::Proc& self) {
  JOBMIG_EXPECTS_MSG(self.size() == spec.nprocs, "spec built for a different job size");
  const Grid2D grid = Grid2D::for_procs(spec.nprocs);
  const int rank = self.rank();
  const int x = grid.x_of(rank), y = grid.y_of(rank);
  // Neighbor list: W, E, N, S on the periodic grid (skip degenerate dims).
  struct Neighbor {
    int rank;
    int out_dir;  // direction tag we send with
    int in_dir;   // direction tag the peer sends to us with
  };
  std::vector<Neighbor> neighbors;
  if (grid.px > 1) {
    neighbors.push_back({grid.rank_at(x - 1, y), 0, 1});
    neighbors.push_back({grid.rank_at(x + 1, y), 1, 0});
  }
  if (grid.py > 1) {
    neighbors.push_back({grid.rank_at(x, y - 1), 2, 3});
    neighbors.push_back({grid.rank_at(x, y + 1), 3, 2});
  }

  Progress progress = Progress::decode_or_fresh(self.sim_process().app_state());

  for (std::uint32_t iter = progress.next_iteration;
       iter < static_cast<std::uint32_t>(spec.iterations); ++iter) {
    co_await self.check_suspend();

    // Compute step dirties a rotating window of the image.
    const std::uint64_t window =
        std::min(spec.dirty_bytes_per_iter,
                 spec.image_bytes_per_rank > 0 ? spec.image_bytes_per_rank : 0);
    const std::uint64_t offset =
        window == 0 ? 0
                    : (static_cast<std::uint64_t>(iter) * window) %
                          std::max<std::uint64_t>(1, spec.image_bytes_per_rank - window + 1);
    co_await self.compute(spec.time_per_iter, window, offset);

    // Halo exchange: concurrent sends, then matching verified receives.
    const std::int32_t tag_base = static_cast<std::int32_t>(1000 + iter * 8);
    sim::TaskGroup sends(*self.env().engine);
    for (const Neighbor& nb : neighbors) {
      sends.spawn(self.send(nb.rank, tag_base + nb.out_dir,
                            halo_payload(spec.msg_bytes, halo_seed(rank, static_cast<int>(iter),
                                                                   nb.out_dir))));
    }
    for (const Neighbor& nb : neighbors) {
      sim::Bytes got = co_await self.recv(nb.rank, tag_base + nb.in_dir);
      // Streaming verify against the pattern the sender must have produced —
      // no expected-payload buffer is materialized.
      JOBMIG_ASSERT_MSG(
          got.size() == spec.msg_bytes &&
              sim::pattern_check(got, halo_seed(nb.rank, static_cast<int>(iter), nb.in_dir), 0),
          "halo content mismatch at " + spec.name());
    }
    co_await sends.wait();

    // Residual check, as the real solvers do periodically.
    if (spec.residual_interval > 0 &&
        iter % static_cast<std::uint32_t>(spec.residual_interval) == 0 && spec.nprocs > 1) {
      const double contribution = 1.0 / static_cast<double>(spec.nprocs);
      const double residual = co_await self.allreduce_sum(contribution);
      JOBMIG_ASSERT_MSG(std::abs(residual - 1.0) < 1e-9, "allreduce drift");
    }

    // Persist progress inside the process image (registers/stack analogue).
    progress.next_iteration = iter + 1;
    self.sim_process().set_app_state(progress.encode());
  }
}

}  // namespace

mpr::Job::AppMain make_app(KernelSpec spec) {
  return [spec](mpr::Proc& self) -> sim::Task { return run_kernel(spec, self); };
}

}  // namespace jobmig::workload
