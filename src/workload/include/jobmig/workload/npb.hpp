#pragma once

#include <cstdint>
#include <string>

#include "jobmig/mpr/job.hpp"

/// NPB-like workload kernels (the paper evaluates LU/BT/SP of class C, 64
/// ranks on 8 nodes). These are *skeletons*: they reproduce what the
/// evaluation depends on — per-rank image sizes (Table I), base runtimes
/// (Fig. 5) and the iterative compute/neighbor-exchange pattern — not the
/// numerics. Each iteration: safe point, compute (dirtying image pages),
/// halo exchange on a 2D rank grid with content verification, periodic
/// residual allreduce. Progress is serialized into the process image, so a
/// rank restarted from a checkpoint resumes at the right iteration.
namespace jobmig::workload {

enum class NpbApp { kLU, kBT, kSP };
enum class NpbClass { kTest, kA, kB, kC };

std::string to_string(NpbApp app);
std::string to_string(NpbClass cls);

struct KernelSpec {
  NpbApp app = NpbApp::kLU;
  NpbClass cls = NpbClass::kC;
  int nprocs = 64;
  int iterations = 250;
  sim::Duration time_per_iter = sim::Duration::ms(648);
  std::uint64_t image_bytes_per_rank = 21ull << 20;
  std::uint64_t msg_bytes = 40ull << 10;       // halo exchange payload
  std::uint64_t dirty_bytes_per_iter = 1ull << 20;
  int residual_interval = 5;                   // allreduce every N iters

  std::string name() const;  // e.g. "LU.C.64"
};

/// Build the calibrated spec for (app, class, nprocs). `runtime_scale`
/// shrinks the iteration count for fast tests/benches while keeping
/// per-iteration behaviour (and image sizes) intact.
KernelSpec make_spec(NpbApp app, NpbClass cls, int nprocs, double runtime_scale = 1.0);

/// Application entry point compatible with mpr::Job::launch_app. The
/// returned callable reads/writes the rank's progress in its process image
/// and therefore survives checkpoint/restart/migration.
mpr::Job::AppMain make_app(KernelSpec spec);

/// 2D rank grid used for halo exchanges (exposed for tests).
struct Grid2D {
  int px = 1, py = 1;
  static Grid2D for_procs(int nprocs);
  int x_of(int rank) const { return rank % px; }
  int y_of(int rank) const { return rank / px; }
  int rank_at(int x, int y) const { return ((y + py) % py) * px + ((x + px) % px); }
};

/// Progress record each rank keeps inside its image (exposed for tests).
struct Progress {
  std::uint32_t magic = 0x4E50424Au;  // "NPBJ"
  std::uint32_t next_iteration = 0;

  sim::Bytes encode() const;
  static Progress decode_or_fresh(sim::ByteSpan state);
};

}  // namespace jobmig::workload
