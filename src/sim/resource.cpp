#include "jobmig/sim/resource.hpp"

#include <cmath>

namespace jobmig::sim {

Duration transfer_time(std::uint64_t bytes, double rate_bytes_per_sec) {
  JOBMIG_EXPECTS(rate_bytes_per_sec > 0.0);
  double sec = static_cast<double>(bytes) / rate_bytes_per_sec;
  return Duration::ns(static_cast<std::int64_t>(std::ceil(sec * 1e9)));
}

FairShareServer::FairShareServer(Engine& engine, double rate_bytes_per_sec,
                                 EfficiencyFn efficiency)
    : engine_(engine), rate_(rate_bytes_per_sec), efficiency_(std::move(efficiency)) {
  JOBMIG_EXPECTS(rate_ > 0.0);
}

double FairShareServer::per_job_rate() const {
  const std::size_t n = jobs_.size();
  if (n == 0) return rate_;
  const double eff = efficiency_ ? efficiency_(n) : 1.0;
  JOBMIG_ASSERT_MSG(eff > 0.0 && eff <= 1.0, "efficiency must be in (0, 1]");
  return rate_ * eff / static_cast<double>(n);
}

void FairShareServer::settle() {
  const TimePoint now = engine_.now();
  const double elapsed = (now - last_update_).to_seconds();
  if (elapsed > 0.0 && !jobs_.empty()) {
    const double served = elapsed * per_job_rate();
    for (auto& [id, job] : jobs_) job.remaining -= served;
  }
  last_update_ = now;
}

void FairShareServer::reschedule() {
  // Cancelled timers still fire as engine no-ops at their original time, so
  // this supersede is timeline-identical to the old generation-check pattern.
  engine_.cancel(timer_);
  timer_ = {};
  if (jobs_.empty()) return;
  double min_remaining = jobs_.begin()->second.remaining;
  for (const auto& [id, job] : jobs_) min_remaining = std::min(min_remaining, job.remaining);
  if (min_remaining < 0.0) min_remaining = 0.0;
  const double sec = min_remaining / per_job_rate();
  const Duration dt = Duration::ns(static_cast<std::int64_t>(std::ceil(sec * 1e9)));
  timer_ = engine_.call_in(dt, [this] { on_timer(); });
}

void FairShareServer::on_timer() {
  settle();
  // Complete every job whose remaining bytes have been fully served.
  // A sub-byte epsilon absorbs ns-rounding residue.
  constexpr double kEpsilon = 0.5;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= kEpsilon) {
      it->second.done.set();
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  reschedule();
}

Task FairShareServer::transfer(std::uint64_t bytes) {
  if (bytes == 0) co_return;
  settle();
  const std::uint64_t id = next_id_++;
  auto [it, inserted] =
      jobs_.emplace(id, Job{static_cast<double>(bytes), Event{}});
  JOBMIG_ASSERT(inserted);
  reschedule();
  co_await it->second.done.wait();
  bytes_served_ += bytes;
}

FifoServer::FifoServer(Engine& engine, double rate_bytes_per_sec, Duration per_op_latency)
    : engine_(engine), rate_(rate_bytes_per_sec), per_op_latency_(per_op_latency) {
  JOBMIG_EXPECTS(rate_ > 0.0);
}

Task FifoServer::transfer(std::uint64_t bytes) {
  auto lock = co_await mutex_.lock();
  co_await sleep_for(per_op_latency_ + transfer_time(bytes, rate_));
  ++ops_served_;
}

}  // namespace jobmig::sim
