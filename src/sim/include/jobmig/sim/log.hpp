#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "jobmig/sim/time.hpp"

namespace jobmig::sim {

class Engine;

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

/// Minimal structured logger for sim components. Records are tagged with the
/// virtual time and a component name. A custom sink can capture records for
/// test assertions; the default sink writes to stderr at >= kWarn.
class Logger {
 public:
  struct Record {
    TimePoint when;
    LogLevel level;
    std::string component;
    std::string message;
  };
  using Sink = std::function<void(const Record&)>;

  static Logger& global();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void reset_sink();

  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }
  void emit(LogLevel level, std::string_view component, std::string message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {

inline void format_one(std::ostringstream& os, std::string_view& fmt) { os << fmt; }

template <typename T, typename... Rest>
void format_one(std::ostringstream& os, std::string_view& fmt, const T& value, const Rest&... rest) {
  const std::size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    return;
  }
  os << fmt.substr(0, pos) << value;
  fmt = fmt.substr(pos + 2);
  format_one(os, fmt, rest...);
}

}  // namespace detail

/// Brace-substitution formatter: format_str("a {} b {}", 1, "x") -> "a 1 b x".
template <typename... Args>
std::string format_str(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  detail::format_one(os, fmt, args...);
  return os.str();
}

template <typename... Args>
void log_at(LogLevel level, std::string_view component, std::string_view fmt, const Args&... args) {
  Logger& lg = Logger::global();
  if (!lg.enabled(level)) return;
  lg.emit(level, component, format_str(fmt, args...));
}

#define JOBMIG_DEFINE_LOG_FN(name, level)                                           \
  template <typename... Args>                                                       \
  void name(std::string_view component, std::string_view fmt, const Args&... args) { \
    log_at(level, component, fmt, args...);                                         \
  }

JOBMIG_DEFINE_LOG_FN(log_trace, LogLevel::kTrace)
JOBMIG_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
JOBMIG_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
JOBMIG_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
JOBMIG_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef JOBMIG_DEFINE_LOG_FN

}  // namespace jobmig::sim
