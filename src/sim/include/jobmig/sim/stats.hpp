#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jobmig/sim/time.hpp"

namespace jobmig::sim {

/// Online mean/min/max/stddev accumulator (Welford).
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double total() const { return total_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double total_ = 0.0;
};

/// Named phase stopwatch: records labeled (start, stop) spans of virtual time
/// and can report per-phase totals. Used to decompose migration cycles into
/// the paper's four phases.
class PhaseTimeline {
 public:
  struct Span {
    std::string phase;
    TimePoint start;
    TimePoint stop;
    Duration length() const { return stop - start; }
  };

  void begin(const std::string& phase, TimePoint now);
  void end(const std::string& phase, TimePoint now);
  /// Record a complete span directly.
  void record(const std::string& phase, TimePoint start, TimePoint stop);

  Duration total(const std::string& phase) const;
  const std::vector<Span>& spans() const { return spans_; }
  std::vector<std::string> phases() const;
  void clear();

 private:
  std::vector<Span> spans_;
  std::map<std::string, TimePoint> open_;
};

/// Simple named-counter registry for throughput/IO accounting.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) { values_[name] += delta; }
  std::uint64_t get(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& all() const { return values_; }
  void clear() { values_.clear(); }

 private:
  std::map<std::string, std::uint64_t> values_;
};

}  // namespace jobmig::sim
