#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// Runtime-dispatched data-path kernels backing `sim::Crc64`, `pattern_fill`
/// and `pattern_check` (see DESIGN.md §9). The checkpoint pipeline checksums
/// and regenerates every image byte, so these three loops dominate bench
/// wall-clock; each has a portable scalar implementation (the golden
/// reference) and, on x86-64, carry-less-multiply / AVX variants selected
/// once per process by cpuid probe. All implementations of a kernel are
/// bit-identical on every input — the SIMD paths are pure speed, never a
/// semantic fork — and `JOBMIG_FORCE_SCALAR=1` pins the scalar paths so CI
/// can cover the fallback on SIMD-capable runners.
namespace jobmig::sim::kernels {

/// Host SIMD capabilities relevant to the kernel set.
struct CpuFeatures {
  bool pclmul = false;  // PCLMULQDQ (+SSE2): carry-less multiply for CRC
  bool avx2 = false;    // 4×64-bit pattern lanes
  bool avx512 = false;  // AVX-512F+DQ: 8×64-bit lanes with native VPMULLQ
};

/// Probe the executing CPU. Non-x86 hosts report everything false.
CpuFeatures detect_cpu();

/// Raw CRC-64/XZ state update (reflected ECMA-182 polynomial). `crc` is the
/// internal running value (pre-inversion); callers own the ~crc init/final.
using Crc64Fn = std::uint64_t (*)(std::uint64_t crc, const std::byte* p, std::size_t n);

/// Write `nlanes` whole 8-byte pattern lanes `[first_lane, first_lane+nlanes)`
/// of the (seed)-keyed SplitMix64 stream to `dst` (unaligned stores allowed).
using LaneFillFn = void (*)(std::byte* dst, std::uint64_t seed, std::uint64_t first_lane,
                            std::size_t nlanes);

/// True iff `src` matches those same lanes byte for byte.
using LaneCheckFn = bool (*)(const std::byte* src, std::uint64_t seed, std::uint64_t first_lane,
                             std::size_t nlanes);

/// One coherent kernel selection. `crc64_impl` / `pattern_impl` name the
/// active paths for logs, benches and tests ("table16", "pclmul", ...).
struct Dispatch {
  Crc64Fn crc64 = nullptr;
  LaneFillFn fill = nullptr;
  LaneCheckFn check = nullptr;
  const char* crc64_impl = "";
  const char* pattern_impl = "";
};

/// The process-wide selection: cpuid probe + JOBMIG_FORCE_SCALAR, resolved
/// once on first use (thread-safe magic static).
const Dispatch& active();

/// Pure selection logic (no env/cpuid side effects) — unit-testable.
Dispatch select(const CpuFeatures& f, bool force_scalar);

/// Every dispatch this host can actually run, scalar first. The fuzz tests
/// iterate this to assert cross-path bit-identity on arbitrary inputs.
std::vector<Dispatch> all_supported();

/// Value of 8-byte lane `lane` of the (seed)-keyed pattern stream. All fill
/// and check implementations — scalar head/tail peeling and the SIMD lane
/// bodies alike — must reproduce exactly this function.
inline std::uint64_t pattern_lane(std::uint64_t seed, std::uint64_t lane) {
  // SplitMix64 keyed by the absolute lane index: state = seed ^ (lane*K1+K2),
  // one next() step (+= gamma, then the two-multiply finalizer).
  std::uint64_t z = (seed ^ (lane * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL)) +
                    0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// ---- portable implementations (always available) --------------------------

/// Slice-by-16 table CRC (the pre-SIMD fast path, kept as the fallback).
std::uint64_t crc64_table16(std::uint64_t crc, const std::byte* p, std::size_t n);
/// Bit-at-a-time reference, O(8n) — for known-answer tests only.
std::uint64_t crc64_bitwise(std::uint64_t crc, const std::byte* p, std::size_t n);

void pattern_lanes_scalar(std::byte* dst, std::uint64_t seed, std::uint64_t first_lane,
                          std::size_t nlanes);
bool pattern_lanes_check_scalar(const std::byte* src, std::uint64_t seed,
                                std::uint64_t first_lane, std::size_t nlanes);

// ---- x86-64 implementations (defined only when compiled for x86-64; call
// ---- only when the matching detect_cpu() bit is set) ----------------------
#if defined(__x86_64__) || defined(_M_X64)
std::uint64_t crc64_clmul(std::uint64_t crc, const std::byte* p, std::size_t n);
void pattern_lanes_avx2(std::byte* dst, std::uint64_t seed, std::uint64_t first_lane,
                        std::size_t nlanes);
bool pattern_lanes_check_avx2(const std::byte* src, std::uint64_t seed, std::uint64_t first_lane,
                              std::size_t nlanes);
void pattern_lanes_avx512(std::byte* dst, std::uint64_t seed, std::uint64_t first_lane,
                          std::size_t nlanes);
bool pattern_lanes_check_avx512(const std::byte* src, std::uint64_t seed,
                                std::uint64_t first_lane, std::size_t nlanes);
#endif

}  // namespace jobmig::sim::kernels
