#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"

namespace jobmig::sim {

/// Fluid-flow processor-sharing bandwidth server.
///
/// Concurrent transfers share the configured rate equally; an optional
/// efficiency curve models aggregate degradation under concurrency (e.g.,
/// disk-head seek thrash between streams). Between membership changes each
/// active transfer progresses at rate * efficiency(n) / n bytes per second.
/// This is the model used for InfiniBand links, Ethernet links and disks;
/// its contention behaviour is what reproduces the paper's Fig. 7 storage
/// effects (see EXPERIMENTS.md).
class FairShareServer {
 public:
  using EfficiencyFn = std::function<double(std::size_t active_streams)>;

  /// `rate_bytes_per_sec` must be > 0. The default efficiency is 1.0
  /// (perfect sharing).
  FairShareServer(Engine& engine, double rate_bytes_per_sec,
                  EfficiencyFn efficiency = nullptr);

  /// Move `bytes` through the server; completes when this transfer's share
  /// of the (time-varying) bandwidth has delivered all bytes.
  [[nodiscard]] Task transfer(std::uint64_t bytes);

  std::size_t active_streams() const { return jobs_.size(); }
  double rate() const { return rate_; }
  /// Total bytes fully served since construction.
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  struct Job {
    double remaining;  // bytes
    Event done;
  };

  void settle();        // charge progress since last_update_ to all jobs
  void reschedule();    // arm the completion timer for the earliest finisher
  void on_timer();
  double per_job_rate() const;

  Engine& engine_;
  double rate_;
  EfficiencyFn efficiency_;
  std::map<std::uint64_t, Job> jobs_;  // node-stable: waiters hold Event refs
  std::uint64_t next_id_ = 0;
  TimePoint last_update_{};
  Engine::TimerHandle timer_;
  std::uint64_t bytes_served_ = 0;
};

/// Strictly serializing server: one transfer at a time, FIFO order, each
/// charged latency + bytes/rate. Models command-queue style devices.
class FifoServer {
 public:
  FifoServer(Engine& engine, double rate_bytes_per_sec, Duration per_op_latency);

  [[nodiscard]] Task transfer(std::uint64_t bytes);

  double rate() const { return rate_; }
  std::uint64_t ops_served() const { return ops_served_; }

 private:
  Engine& engine_;
  double rate_;
  Duration per_op_latency_;
  Mutex mutex_;
  std::uint64_t ops_served_ = 0;
};

/// Duration of moving `bytes` at `rate` bytes/sec, rounded up to whole ns.
Duration transfer_time(std::uint64_t bytes, double rate_bytes_per_sec);

}  // namespace jobmig::sim
