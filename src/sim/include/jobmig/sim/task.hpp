#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/engine.hpp"

namespace jobmig::sim {

namespace detail {

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

template <typename T>
struct TaskPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

/// A lazy coroutine task. `co_await`-ing it starts the child and resumes the
/// parent when the child completes (symmetric transfer, no stack growth).
/// Root tasks are handed to Engine::spawn(). Tasks are move-only and own
/// their coroutine frame.
template <typename T = void>
class [[nodiscard]] ValueTask;

using Task = ValueTask<void>;

template <typename T>
class [[nodiscard]] ValueTask {
 public:
  struct promise_type : detail::TaskPromiseBase<T> {
    std::optional<T> value;
    ValueTask get_return_object() {
      return ValueTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  ValueTask() = default;
  ValueTask(ValueTask&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  ValueTask& operator=(ValueTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ValueTask(const ValueTask&) = delete;
  ValueTask& operator=(const ValueTask&) = delete;
  ~ValueTask() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      child.promise().continuation = parent;
      return child;
    }
    T await_resume() {
      auto& p = child.promise();
      if (p.exception) std::rethrow_exception(p.exception);
      JOBMIG_ASSERT_MSG(p.value.has_value(), "ValueTask completed without a value");
      return std::move(*p.value);
    }
  };

  Awaiter operator co_await() && {
    JOBMIG_EXPECTS_MSG(handle_ != nullptr, "co_await on empty task");
    return Awaiter{handle_};
  }

  /// For Engine::spawn / detached wrappers.
  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, nullptr); }

 private:
  explicit ValueTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] ValueTask<void> {
 public:
  struct promise_type : detail::TaskPromiseBase<void> {
    ValueTask get_return_object() {
      return ValueTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  ValueTask() = default;
  ValueTask(ValueTask&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  ValueTask& operator=(ValueTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  ValueTask(const ValueTask&) = delete;
  ValueTask& operator=(const ValueTask&) = delete;
  ~ValueTask() { destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  struct Awaiter {
    std::coroutine_handle<promise_type> child;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      child.promise().continuation = parent;
      return child;
    }
    void await_resume() {
      auto& p = child.promise();
      if (p.exception) std::rethrow_exception(p.exception);
    }
  };

  Awaiter operator co_await() && {
    JOBMIG_EXPECTS_MSG(handle_ != nullptr, "co_await on empty task");
    return Awaiter{handle_};
  }

  std::coroutine_handle<promise_type> release() { return std::exchange(handle_, nullptr); }

 private:
  friend class Engine;
  explicit ValueTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable: suspend the current task for `d` of virtual time.
struct SleepAwaiter {
  Duration d;
  bool await_ready() const noexcept { return d <= Duration::zero(); }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine* e = Engine::current();
    JOBMIG_ASSERT_MSG(e != nullptr, "sleep() outside an engine loop");
    e->schedule_in(d, h);
  }
  void await_resume() const noexcept {}
};

inline SleepAwaiter sleep_for(Duration d) { return SleepAwaiter{d}; }

struct SleepUntilAwaiter {
  TimePoint t;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine* e = Engine::current();
    JOBMIG_ASSERT_MSG(e != nullptr, "sleep_until() outside an engine loop");
    e->schedule_at(t < e->now() ? e->now() : t, h);
  }
  void await_resume() const noexcept {}
};

inline SleepUntilAwaiter sleep_until(TimePoint t) { return SleepUntilAwaiter{t}; }

/// Awaitable: yield to the event loop, resuming at the same virtual time
/// (after already-queued events at this time).
struct YieldAwaiter {
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    Engine* e = Engine::current();
    JOBMIG_ASSERT_MSG(e != nullptr, "yield() outside an engine loop");
    e->schedule_in(Duration::zero(), h);
  }
  void await_resume() const noexcept {}
};

inline YieldAwaiter yield_now() { return YieldAwaiter{}; }

}  // namespace jobmig::sim
