#pragma once

#include <cstdint>

#include "jobmig/sim/time.hpp"

namespace jobmig::sim {

/// Calibrated hardware-model constants for the 2010 testbed the paper used
/// (8× dual quad-core Xeon 2.33 GHz nodes, Mellanox MT25208 DDR HCAs, GigE
/// side network, local ext3 disks, PVFS 2.8.1 on 4 servers). Derivations from
/// the paper's reported numbers are documented in EXPERIMENTS.md §Calibration.
/// These are defaults; every model takes its params by value so experiments
/// can perturb them.

struct IbParams {
  /// Effective unidirectional data bandwidth of a DDR 4X link after 8b/10b
  /// and transport headers (~1.5 GB/s).
  double link_bandwidth_Bps = 1.5e9;
  /// Per-hop propagation + switch latency.
  Duration hop_latency = Duration::ns(600);
  /// HCA work-request processing overhead per WQE.
  Duration per_wqe_overhead = Duration::ns(700);
  /// Responder-side turnaround for an RDMA Read (fetch initiation).
  Duration rdma_read_turnaround = Duration::us(2);
  /// One-time cost to create + transition a reliable-connection QP.
  Duration qp_setup = Duration::us(150);
  /// Memory-region registration cost per page (pinning + translation).
  Duration mr_register_per_page = Duration::ns(250);
  std::uint32_t mtu_bytes = 2048;
};

struct EthParams {
  /// Effective GigE payload bandwidth.
  double bandwidth_Bps = 112e6;
  /// One-way latency (switched GigE + kernel TCP stack).
  Duration latency = Duration::us(60);
  /// Per-message protocol overhead (syscall + TCP/IP processing).
  Duration per_msg_overhead = Duration::us(15);
};

struct DiskParams {
  /// Sequential write/read bandwidth of a 2010 SATA disk under ext3.
  double write_Bps = 52e6;
  double read_Bps = 48e6;
  /// Per-operation latency (seek + rotational + journal commit amortized).
  Duration op_latency = Duration::ms(6);
  /// Concurrency efficiency: eff(n) = 1 / (1 + seek_alpha * (n - 1)).
  /// Models head thrash between concurrent streams (paper §IV-C observes
  /// severe degradation with 8 concurrent checkpoint writers).
  double seek_alpha = 0.045;
};

struct PvfsParams {
  std::uint32_t data_servers = 4;
  std::uint64_t stripe_bytes = 1 << 20;  // 1 MB, as configured in the paper
  /// Per-server backing-store bandwidth. Derived with seek_alpha from the
  /// paper's Fig. 7: 64 concurrent checkpoint streams achieve ~84 MB/s
  /// aggregate writing (LU.C dump: 1363 MB / 16.3 s) and ~131 MB/s reading
  /// back (restart leg), across 4 data servers.
  double server_write_Bps = 58e6;
  double server_read_Bps = 90e6;
  Duration server_op_latency = Duration::ms(2);
  /// Metadata server cost per namespace operation (create/open/stat).
  Duration mds_op_latency = Duration::ms(3);
  /// Server-side concurrency efficiency (same form as DiskParams). Every
  /// client file stripes over all servers, so each server sees every
  /// concurrent stream: eff(64) = 1/(1 + 0.028*63) = 0.36.
  double seek_alpha = 0.028;
};

struct BlcrParams {
  /// Aggregate rate at which BLCR serializes process memory into the
  /// checkpoint stream, per node (page-table walk + copy, all local procs
  /// share the memory bus). Derived from Phase-2 times in Fig. 4:
  /// 170–309 MB/node in 0.4–0.8 s.
  double dump_Bps_per_node = 520e6;
  /// Aggregate rate at which BLCR rebuilds address spaces at restart
  /// (page allocation + copy from image).
  double restore_Bps_per_node = 900e6;
  /// Fixed per-process checkpoint setup (quiesce threads, walk vmas).
  Duration per_process_checkpoint_overhead = Duration::ms(35);
  /// Fixed per-process restart setup (fork, exec stub, rebuild credentials).
  Duration per_process_restart_overhead = Duration::ms(100);
};

struct MpiParams {
  /// Eager/rendezvous switch-over, as in MVAPICH2 defaults of the era.
  std::uint32_t eager_threshold = 8 * 1024;
  /// Software overhead per MPI send/recv call.
  Duration per_call_overhead = Duration::ns(400);
  /// Re-initialization of the IB context at resume, per process.
  Duration endpoint_reinit = Duration::ms(50);
  /// Per-peer endpoint re-establishment at resume (QP exchange via PMI,
  /// serialized per process; processes on a node share the HCA).
  Duration endpoint_rebuild_per_peer = Duration::us(1500);
  /// PMI-1 style address re-exchange at resume: every process walks the
  /// job-wide table through the launcher tree, so the cost grows with the
  /// rank count (dominates the paper's Phase-4 times at 64 ranks).
  Duration pmi_exchange_per_rank = Duration::ms(15);
};

struct NodeParams {
  std::uint32_t cores = 8;  // 2x quad-core Xeon 2.33 GHz
  /// Host memory copy bandwidth (shared across local processes).
  double memcpy_Bps = 2.2e9;
};

/// Bundle used by the cluster builder.
struct Calibration {
  IbParams ib;
  EthParams eth;
  DiskParams disk;
  PvfsParams pvfs;
  BlcrParams blcr;
  MpiParams mpi;
  NodeParams node;
};

}  // namespace jobmig::sim
