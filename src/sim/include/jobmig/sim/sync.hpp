#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/task.hpp"

namespace jobmig::sim {

namespace detail {
/// Resume `h` through the engine queue at the current virtual time. Keeps
/// wake-ups ordered and avoids re-entrant resumption from notifier frames.
/// Outside the engine loop (object teardown after run()) the wake-up is
/// dropped: the engine will never run again, so the waiter stays suspended.
inline void resume_soon(std::coroutine_handle<> h) {
  if (Engine* e = Engine::current()) e->schedule_in(Duration::zero(), h);
}
}  // namespace detail

/// Broadcast event. Waiters block until set(); once set, waits pass
/// immediately until reset(). All primitives here must outlive their waiters.
class Event {
 public:
  bool is_set() const { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) detail::resume_soon(h);
  }

  void reset() { set_ = false; }

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() { return Awaiter{*this}; }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wake-up order.
class Semaphore {
 public:
  explicit Semaphore(std::size_t initial) : count_(initial) {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() { return Awaiter{*this}; }

  void release(std::size_t n = 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!waiters_.empty()) {
        auto h = waiters_.front();
        waiters_.pop_front();
        detail::resume_soon(h);
      } else {
        ++count_;
      }
    }
  }

  std::size_t available() const { return count_; }
  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Cooperative mutex (CP.20: RAII-style holding via ScopedLock).
class Mutex {
 public:
  class ScopedLock {
   public:
    ScopedLock() = default;
    explicit ScopedLock(Mutex* m) : mutex_(m) {}
    ScopedLock(ScopedLock&& o) noexcept : mutex_(std::exchange(o.mutex_, nullptr)) {}
    ScopedLock& operator=(ScopedLock&& o) noexcept {
      if (this != &o) {
        unlock();
        mutex_ = std::exchange(o.mutex_, nullptr);
      }
      return *this;
    }
    ScopedLock(const ScopedLock&) = delete;
    ScopedLock& operator=(const ScopedLock&) = delete;
    ~ScopedLock() { unlock(); }
    void unlock() {
      if (mutex_) {
        std::exchange(mutex_, nullptr)->unlock_internal();
      }
    }

   private:
    Mutex* mutex_ = nullptr;
  };

  /// co_await m.lock() -> ScopedLock guard.
  ValueTask<ScopedLock> lock() {
    co_await sem_.acquire();
    co_return ScopedLock{this};
  }

  bool is_locked() const { return sem_.available() == 0; }

 private:
  friend class ScopedLock;
  void unlock_internal() { sem_.release(); }
  Semaphore sem_{1};
};

/// Reusable barrier for a fixed party count: the Nth arrival releases all.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    JOBMIG_EXPECTS(parties >= 1);
  }

  struct Awaiter {
    Barrier& b;
    bool await_ready() {
      if (b.arrived_ + 1 == b.parties_) {
        b.arrived_ = 0;
        ++b.generation_;
        auto waiters = std::move(b.waiters_);
        b.waiters_.clear();
        for (auto h : waiters) detail::resume_soon(h);
        return true;  // last arrival does not suspend
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++b.arrived_;
      b.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaiter arrive_and_wait() { return Awaiter{*this}; }

  std::size_t parties() const { return parties_; }
  std::size_t arrived() const { return arrived_; }
  std::uint64_t generation() const { return generation_; }

 private:
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Bounded FIFO channel. recv() returns nullopt after close() once drained.
template <typename T>
class Channel {
  // GCC 12 miscompiles by-value coroutine parameters whose type is an
  // aggregate with implicitly-declared special members (the argument prvalue
  // is elided into the frame slot and then double-destroyed). send(T) takes
  // T by value, so require queued types to be immune: either trivially
  // destructible or with user-declared (may be =default) special members.
  static_assert(!std::is_aggregate_v<T> || std::is_trivially_destructible_v<T>,
                "non-trivial aggregate T hits a GCC 12 coroutine-parameter bug; "
                "declare (=default) its constructors");

 public:
  explicit Channel(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {
    JOBMIG_EXPECTS(capacity >= 1);
  }

  [[nodiscard]] ValueTask<bool> send(T value) {
    JOBMIG_EXPECTS_MSG(!closed_, "send on closed channel");
    while (items_.size() >= capacity_) {
      co_await space_.wait();
      space_.reset();
      if (closed_) co_return false;
    }
    items_.push_back(std::move(value));
    avail_.set();
    co_return true;
  }

  [[nodiscard]] ValueTask<std::optional<T>> recv() {
    while (items_.empty()) {
      if (closed_) co_return std::nullopt;
      co_await avail_.wait();
      avail_.reset();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    if (items_.empty()) avail_.reset();
    space_.set();
    co_return std::optional<T>(std::move(v));
  }

  /// Non-blocking variants.
  bool try_send(T value) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    avail_.set();
    return true;
  }
  std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    space_.set();
    return std::optional<T>(std::move(v));
  }

  void close() {
    closed_ = true;
    avail_.set();
    space_.set();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  Event avail_;
  Event space_;
};

/// Launch-and-join group for structured concurrency. The first exception
/// raised by a member is rethrown from wait().
class TaskGroup {
 public:
  explicit TaskGroup(Engine& engine) : engine_(engine) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void spawn(Task t) {
    ++live_;
    engine_.spawn(wrap(std::move(t)));
  }

  [[nodiscard]] Task wait() {
    while (live_ > 0) {
      co_await done_.wait();
      done_.reset();
    }
    if (first_exception_) {
      std::rethrow_exception(std::exchange(first_exception_, nullptr));
    }
  }

  std::size_t live() const { return live_; }

 private:
  Task wrap(Task t) {
    try {
      co_await std::move(t);
    } catch (...) {
      if (!first_exception_) first_exception_ = std::current_exception();
    }
    --live_;
    done_.set();
  }

  Engine& engine_;
  std::size_t live_ = 0;
  Event done_;
  std::exception_ptr first_exception_;
};

}  // namespace jobmig::sim
