#pragma once

#include <cstdint>
#include <compare>
#include <ostream>

namespace jobmig::sim {

/// Length of virtual time, nanosecond resolution. Signed so that arithmetic
/// on differences is well defined; negative durations are legal intermediate
/// values but may not be slept on.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration ns(std::int64_t v) { return Duration{v}; }
  static constexpr Duration us(std::int64_t v) { return Duration{v * 1'000}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1'000'000}; }
  static constexpr Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  /// Fractional seconds, rounded to the nearest nanosecond.
  static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e9 + (v >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() { return Duration{INT64_MAX}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_ms() const { return static_cast<double>(ns_) * 1e-6; }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  friend constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns_ * k}; }
  friend constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// A point on the virtual timeline. Simulations start at TimePoint{0}.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }
  static constexpr TimePoint origin() { return TimePoint{0}; }
  static constexpr TimePoint max() { return TimePoint{INT64_MAX}; }

  constexpr std::int64_t count_ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;
  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint{t.ns_ + d.count_ns()};
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint{t.ns_ - d.count_ns()};
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::ns(a.ns_ - b.ns_);
  }

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_seconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, TimePoint t) {
  return os << "t=" << t.to_seconds() << "s";
}

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::sec(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(long double v) { return Duration::seconds(static_cast<double>(v)); }
}  // namespace literals

}  // namespace jobmig::sim
