#pragma once

#include <stdexcept>
#include <string>

namespace jobmig {

/// Thrown when a precondition/postcondition/invariant check fails.
/// Exceptions (rather than abort) so tests can assert on violations.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg);

/// Observer invoked before the throw on every contract failure. Installed by
/// the telemetry flight recorder (which sim cannot link against) so forensic
/// state is captured even when a test swallows the violation. Must not throw.
/// Returns the previously installed hook.
using ContractFailHook = void (*)(const char* kind, const char* expr, const char* file, int line,
                                  const std::string& msg);
ContractFailHook set_contract_fail_hook(ContractFailHook hook);
}  // namespace detail

}  // namespace jobmig

#define JOBMIG_EXPECTS(cond)                                                              \
  do {                                                                                    \
    if (!(cond)) ::jobmig::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, ""); \
  } while (0)

#define JOBMIG_EXPECTS_MSG(cond, msg)                                                          \
  do {                                                                                         \
    if (!(cond)) ::jobmig::detail::contract_fail("Precondition", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define JOBMIG_ENSURES(cond)                                                               \
  do {                                                                                     \
    if (!(cond)) ::jobmig::detail::contract_fail("Postcondition", #cond, __FILE__, __LINE__, ""); \
  } while (0)

#define JOBMIG_ASSERT(cond)                                                              \
  do {                                                                                   \
    if (!(cond)) ::jobmig::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__, ""); \
  } while (0)

#define JOBMIG_ASSERT_MSG(cond, msg)                                                          \
  do {                                                                                        \
    if (!(cond)) ::jobmig::detail::contract_fail("Invariant", #cond, __FILE__, __LINE__, (msg)); \
  } while (0)
