#pragma once

#include <array>
#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/time.hpp"

namespace jobmig::sim {

template <typename T>
class ValueTask;  // fwd (task.hpp)
using Task = ValueTask<void>;

/// Logical partition of the event space for the parallel execution mode
/// (DESIGN.md §9). Domain 0 is the *serial* domain: its events always run on
/// the main thread, one at a time, interleaved with everything else exactly
/// as the sequential engine would — untagged workloads therefore behave
/// identically under both engines. Non-zero domains (one per simulated
/// node/switch) may be dispatched concurrently within a conservative
/// lookahead window; events inherit the domain of the event that scheduled
/// them unless overridden with a DomainScope.
using DomainId = std::uint32_t;
inline constexpr DomainId kSerialDomain = 0;

namespace detail2 {
struct WorkerCtx;  // engine_par.cpp: per-thread parallel dispatch context
extern thread_local WorkerCtx* t_worker_ctx;
extern thread_local DomainId t_current_domain;
}  // namespace detail2

/// Deterministic discrete-event engine. Single-threaded: all simulated
/// entities are coroutines resumed from this loop, so there is no data-race
/// surface (CppCoreGuidelines CP.2 by construction). Events at equal
/// timestamps fire in insertion order, making runs exactly reproducible.
///
/// Scheduling internals (see DESIGN.md §7): a hierarchical bucketed timer
/// wheel (4 levels × 256 slots, 256 ns base tick) absorbs the near-horizon
/// events that dominate the workload (per-WQE overheads, hop latencies,
/// bandwidth-server wake-ups), backed by an overflow min-heap for timers
/// beyond the wheel span (~18 simulated minutes). Event state lives in a
/// slab of nodes recycled through an intrusive freelist, so steady-state
/// scheduling performs zero allocations; the wheel/heaps hold only small
/// POD entries (time, sequence, node index) — callbacks and coroutine
/// handles never move during heap sifts. Exact (time, insertion-seq) fire
/// order is preserved: each due wheel slot is poured into a small ready
/// min-heap keyed (time, seq) before dispatch.
class Engine {
 public:
  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Cancellation handle for call_at/call_in timers. Default-constructed
  /// handles are inert; cancel() on a fired or superseded handle is a no-op.
  struct TimerHandle {
    std::uint32_t node = UINT32_MAX;
    std::uint64_t gen = 0;
    bool valid() const { return node != UINT32_MAX; }
  };

  /// Current virtual time. On a parallel worker thread this is the worker's
  /// local clock, which trails the window it is executing.
  TimePoint now() const {
    if (detail2::t_worker_ctx != nullptr) return worker_now();
    return now_;
  }

  /// Schedule a coroutine to be resumed at absolute time `t` (>= now).
  void schedule_at(TimePoint t, std::coroutine_handle<> h);
  /// Schedule a coroutine to be resumed after `d` (>= 0).
  void schedule_in(Duration d, std::coroutine_handle<> h);
  /// Schedule a plain callback (used by timers that may be superseded).
  TimerHandle call_at(TimePoint t, std::function<void()> fn);
  TimerHandle call_in(Duration d, std::function<void()> fn);

  /// Cancel a pending timer: its callback is destroyed immediately and will
  /// not run. The timeline is unchanged — the cancelled slot still advances
  /// virtual time as a no-op when due, so replacing a timer via
  /// cancel-and-reschedule is event-count- and time-identical to the old
  /// generation-check pattern (a determinism invariant; see DESIGN.md §7).
  void cancel(TimerHandle h);

  /// Launch a root task. The engine owns the coroutine frame until it
  /// completes; an exception escaping a root task is rethrown from run().
  void spawn(Task t);

  /// Run until the event queue is empty. Returns the final virtual time.
  TimePoint run();
  /// Run until virtual time reaches `deadline` (events at `deadline` fire).
  TimePoint run_until(TimePoint deadline);
  /// Process one event; returns false if the queue was empty.
  bool step();

  /// Number of events processed so far.
  std::uint64_t events_processed() const { return events_processed_; }
  /// Number of spawned root tasks that have not yet completed.
  std::size_t live_tasks() const { return live_tasks_.load(std::memory_order_relaxed); }
  bool queue_empty() const { return live_events_ == 0; }

  // ---- scheduler introspection (surfaced as sim.engine.* bench metrics) ----
  /// Pending events right now / the high-water mark over the run.
  std::size_t queue_depth() const { return live_events_; }
  std::size_t peak_queue_depth() const { return peak_queue_depth_; }
  /// Cumulative filings into the wheel/ready heap vs the far-future overflow
  /// heap. Both only grow; a promoted overflow event is counted again by
  /// wheel_scheduled() when it is re-filed, so the overflow count keeps
  /// recording how much traffic ever hit the far-future path.
  std::uint64_t wheel_scheduled() const { return wheel_scheduled_; }
  std::uint64_t overflow_scheduled() const { return overflow_scheduled_; }
  /// Root coroutine frames created via spawn().
  std::uint64_t frames_spawned() const { return frames_spawned_; }
  /// FNV-1a over every dispatched event's timestamp: two runs of the same
  /// workload must produce identical hashes (golden determinism tests). The
  /// parallel mode reconstructs the sequential dispatch order at every
  /// window barrier, so this hash is bit-identical across `seq` and `par`
  /// at any worker count.
  std::uint64_t sequence_hash() const { return sequence_hash_; }

  // ---- parallel execution mode (DESIGN.md §9) -----------------------------
  /// Switch run()/run_until() to windowed parallel dispatch on `workers`
  /// threads (0 = back to sequential). May only be called between runs.
  /// Workloads that never tag a domain run on the unchanged sequential path
  /// even when parallel mode is enabled.
  void enable_parallel(std::size_t workers);
  bool parallel_enabled() const;
  std::size_t parallel_workers() const;

  /// Conservative lookahead: the minimum cross-domain latency the workload
  /// guarantees (e.g. the fabric's hop latency). Every window spans
  /// [t, t + max(lookahead, 1 ns)); an event scheduled from a worker into a
  /// different domain inside the current window is a contract violation.
  /// Zero (the default) still parallelizes same-timestamp events.
  void set_lookahead(Duration d) { lookahead_ = d; }
  Duration lookahead() const { return lookahead_; }

  /// Domain of the event currently being dispatched on this thread (the
  /// domain new events inherit); kSerialDomain outside a dispatch.
  static DomainId current_domain() { return detail2::t_current_domain; }

  /// Parallel-mode introspection (sim.engine.par.* bench metrics). All of
  /// these are deterministic for a given workload + lookahead; per-worker
  /// dispatch counts (worker_event_counts) depend on thread scheduling and
  /// are reported but never gated.
  std::uint64_t parallel_windows() const { return par_windows_; }
  std::uint64_t parallel_serial_windows() const { return par_serial_windows_; }
  std::uint64_t parallel_batches() const { return par_batches_; }
  std::uint64_t parallel_events() const { return par_events_; }
  std::vector<std::uint64_t> worker_event_counts() const;

  /// The engine whose loop is currently executing (set around every event
  /// dispatch). Awaitables use this to find their engine; valid only while
  /// simulation code is running.
  static Engine* current();

  /// Stop the run loop after the current event (sequential) or window
  /// barrier (parallel); the queue is preserved.
  void request_stop() { stop_requested_.store(true, std::memory_order_relaxed); }

  /// Internal: root-task lifecycle callbacks (used by the spawn wrapper).
  void on_root_task_done() {
    const auto prev = live_tasks_.fetch_sub(1, std::memory_order_relaxed);
    JOBMIG_ASSERT(prev > 0);
  }
  void on_root_task_exception(std::exception_ptr e);

 private:
  static constexpr int kTickBits = 8;    // base tick: 256 ns
  static constexpr int kSlotBits = 8;    // 256 slots per level
  static constexpr int kLevels = 4;      // wheel span: 2^40 ns ≈ 18.3 min
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kNoNode = UINT32_MAX;

  /// Event state slab entry. The wheel slot chains link through `next`;
  /// freed nodes link through `next` on the freelist. `gen` is bumped on
  /// every free so stale TimerHandles can never cancel a recycled node.
  struct Node {
    std::int64_t when_ns = 0;
    std::uint64_t seq = 0;
    std::uint64_t gen = 0;
    std::uint32_t next = kNoNode;
    DomainId domain = kSerialDomain;
    std::uint32_t arena_ref = kNoNode;    // backing arena entry, if any
    bool cancelled = false;
    std::coroutine_handle<> handle;       // exactly one of handle/callback set
    std::function<void()> callback;
  };

  /// Small POD heap entry: ordering state only, node payload stays put.
  struct ReadyEntry {
    std::int64_t when_ns;
    std::uint64_t seq;
    std::uint32_t node;
  };

  struct Level {
    std::array<std::uint32_t, kSlots> head;
    std::array<std::uint64_t, kSlots / 64> bitmap{};
  };

  std::uint32_t acquire_node(TimePoint t, std::coroutine_handle<> h,
                             std::function<void()> fn);
  void release_node(std::uint32_t idx);
  void insert(std::uint32_t idx);

  // ---- parallel mode internals (engine_par.cpp) ----
  struct ParallelState;  // worker pool, per-domain arenas, window scratch
  TimePoint worker_now() const;
  TimePoint run_until_parallel(TimePoint deadline);
  /// Execute one window starting at the earliest pending event. Requires a
  /// non-empty ready front ≤ deadline.
  void process_window(std::int64_t deadline_ns);
  void worker_schedule_at(TimePoint t, std::coroutine_handle<> h);
  TimerHandle worker_call_at(TimePoint t, std::function<void()> fn);
  void worker_cancel(TimerHandle h);
  void cancel_arena(TimerHandle h);  // main-thread cancel of an arena handle
  void free_arena_ref(std::uint32_t ref);
  void push_ready(std::uint32_t idx);
  void push_overflow(std::uint32_t idx);
  std::uint32_t pop_overflow();
  /// Advance the wheel until the ready heap holds the next due events.
  bool ensure_ready();
  void pour_slot(int level, std::uint32_t slot);
  void promote_due_overflow();
  void dispatch(std::uint32_t idx);

  std::vector<Node> slab_;
  std::uint32_t free_head_ = kNoNode;
  std::array<Level, kLevels> levels_;
  std::vector<ReadyEntry> ready_;        // min-heap on (when_ns, seq)
  std::vector<std::uint32_t> overflow_;  // min-heap on slab (when_ns, seq)
  std::int64_t cursor_tick_ = 0;         // every pending event's tick >= this
  std::int64_t poured_tick_ = -1;        // tick currently draining via ready_
  std::size_t wheel_live_ = 0;           // nodes currently resident in levels_

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t sequence_hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  std::size_t live_events_ = 0;
  std::size_t peak_queue_depth_ = 0;
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t overflow_scheduled_ = 0;
  std::atomic<std::uint64_t> frames_spawned_{0};
  std::atomic<std::size_t> live_tasks_{0};
  std::mutex exception_mutex_;  // workers report root-task exceptions
  std::exception_ptr pending_exception_;
  std::atomic<bool> stop_requested_{false};

  // ---- parallel mode ----
  std::unique_ptr<ParallelState> par_;
  Duration lookahead_{};
  bool has_domains_ = false;  // any non-serial event ever scheduled
  std::uint64_t par_windows_ = 0;
  std::uint64_t par_serial_windows_ = 0;
  std::uint64_t par_batches_ = 0;
  std::uint64_t par_events_ = 0;
};

/// RAII override of the domain that events scheduled in its scope are tagged
/// with (thread-local). Used at domain boundaries: a cross-domain message is
/// scheduled under the *target's* DomainScope at ≥ lookahead in the future.
class DomainScope {
 public:
  explicit DomainScope(DomainId d) : prev_(detail2::t_current_domain) {
    detail2::t_current_domain = d;
  }
  ~DomainScope() { detail2::t_current_domain = prev_; }
  DomainScope(const DomainScope&) = delete;
  DomainScope& operator=(const DomainScope&) = delete;

 private:
  DomainId prev_;
};

/// RAII guard that makes `e` the Engine::current() for its scope.
class CurrentEngineGuard {
 public:
  explicit CurrentEngineGuard(Engine* e);
  ~CurrentEngineGuard();
  CurrentEngineGuard(const CurrentEngineGuard&) = delete;
  CurrentEngineGuard& operator=(const CurrentEngineGuard&) = delete;

 private:
  Engine* prev_;
};

}  // namespace jobmig::sim
