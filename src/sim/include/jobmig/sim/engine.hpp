#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <functional>
#include <queue>
#include <vector>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/time.hpp"

namespace jobmig::sim {

template <typename T>
class ValueTask;  // fwd (task.hpp)
using Task = ValueTask<void>;

/// Deterministic discrete-event engine. Single-threaded: all simulated
/// entities are coroutines resumed from this loop, so there is no data-race
/// surface (CppCoreGuidelines CP.2 by construction). Events at equal
/// timestamps fire in insertion order, making runs exactly reproducible.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current virtual time.
  TimePoint now() const { return now_; }

  /// Schedule a coroutine to be resumed at absolute time `t` (>= now).
  void schedule_at(TimePoint t, std::coroutine_handle<> h);
  /// Schedule a coroutine to be resumed after `d` (>= 0).
  void schedule_in(Duration d, std::coroutine_handle<> h);
  /// Schedule a plain callback (used by timers that may be superseded).
  void call_at(TimePoint t, std::function<void()> fn);
  void call_in(Duration d, std::function<void()> fn);

  /// Launch a root task. The engine owns the coroutine frame until it
  /// completes; an exception escaping a root task is rethrown from run().
  void spawn(Task t);

  /// Run until the event queue is empty. Returns the final virtual time.
  TimePoint run();
  /// Run until virtual time reaches `deadline` (events at `deadline` fire).
  TimePoint run_until(TimePoint deadline);
  /// Process one event; returns false if the queue was empty.
  bool step();

  /// Number of events processed so far.
  std::uint64_t events_processed() const { return events_processed_; }
  /// Number of spawned root tasks that have not yet completed.
  std::size_t live_tasks() const { return live_tasks_; }
  bool queue_empty() const { return queue_.empty(); }

  /// The engine whose loop is currently executing (set around every event
  /// dispatch). Awaitables use this to find their engine; valid only while
  /// simulation code is running.
  static Engine* current();

  /// Stop the run loop after the current event (queue is preserved).
  void request_stop() { stop_requested_ = true; }

  /// Internal: root-task lifecycle callbacks (used by the spawn wrapper).
  void on_root_task_done() { JOBMIG_ASSERT(live_tasks_ > 0); --live_tasks_; }
  void on_root_task_exception(std::exception_ptr e);

 private:
  struct QueueItem {
    TimePoint when;
    std::uint64_t seq;
    std::coroutine_handle<> handle;      // exactly one of handle/callback set
    std::function<void()> callback;
  };
  struct ItemOrder {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap
      return a.seq > b.seq;
    }
  };

  void dispatch(QueueItem& item);

  std::priority_queue<QueueItem, std::vector<QueueItem>, ItemOrder> queue_;
  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::size_t live_tasks_ = 0;
  std::exception_ptr pending_exception_;
  bool stop_requested_ = false;
};

/// RAII guard that makes `e` the Engine::current() for its scope.
class CurrentEngineGuard {
 public:
  explicit CurrentEngineGuard(Engine* e);
  ~CurrentEngineGuard();
  CurrentEngineGuard(const CurrentEngineGuard&) = delete;
  CurrentEngineGuard& operator=(const CurrentEngineGuard&) = delete;

 private:
  Engine* prev_;
};

}  // namespace jobmig::sim
