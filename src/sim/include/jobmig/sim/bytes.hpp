#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace jobmig::sim {

using Bytes = std::vector<std::byte>;
using ByteSpan = std::span<const std::byte>;
using MutableByteSpan = std::span<std::byte>;

/// CRC-64/XZ (ECMA-182 polynomial, reflected). Used for checkpoint-image
/// integrity checks end to end.
class Crc64 {
 public:
  Crc64() = default;

  Crc64& update(ByteSpan data);
  Crc64& update_u64(std::uint64_t v);
  std::uint64_t value() const { return ~crc_; }

  static std::uint64_t of(ByteSpan data) { return Crc64{}.update(data).value(); }

 private:
  std::uint64_t crc_ = ~0ULL;
};

/// Deterministic pseudo-random fill keyed by (seed, offset); the same key
/// always yields the same bytes, so page content can be regenerated lazily
/// and verified after transfer without keeping a second copy.
void pattern_fill(MutableByteSpan out, std::uint64_t seed, std::uint64_t offset);

/// True iff `data` equals the (seed, offset) pattern byte for byte, without
/// materializing an expected buffer (streaming compare; the verify-side
/// counterpart of pattern_fill).
bool pattern_check(ByteSpan data, std::uint64_t seed, std::uint64_t offset);

/// Little-endian scalar codecs for wire/stream headers.
void put_u64(Bytes& out, std::uint64_t v);
void put_u32(Bytes& out, std::uint32_t v);
std::uint64_t get_u64(ByteSpan in, std::size_t offset);
std::uint32_t get_u32(ByteSpan in, std::size_t offset);

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * 1024ULL; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * 1024ULL * 1024ULL; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * 1024ULL * 1024ULL * 1024ULL; }
}  // namespace literals

}  // namespace jobmig::sim
