#pragma once

#include <cstdint>

namespace jobmig::sim {

/// SplitMix64 — used to seed Xoshiro and to derive per-entity streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality deterministic PRNG for the sim.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Derive an independent child stream (for per-entity determinism).
  Xoshiro256 fork() { return Xoshiro256(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace jobmig::sim
