// x86-64 SIMD implementations of the data-path kernels. Compiled into every
// x86-64 build with per-function target attributes (the TU's baseline stays
// plain x86-64, so the binary still runs on hosts without these features);
// callers must consult kernels::detect_cpu() before dispatching here.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

#include "jobmig/sim/bytes_kernels.hpp"

namespace jobmig::sim::kernels {

namespace {

// ---------------------------------------------------------------------------
// CRC-64/XZ via PCLMULQDQ carry-less-multiply folding.
//
// Reflected-domain folding (Intel's "Fast CRC Computation Using PCLMULQDQ
// Instruction" adapted to a 64-bit reflected CRC): a 128-bit register holds
// the bit-reflected image of the running message polynomial, and multiplying
// that polynomial by x^n (mod P) is one PCLMULQDQ against the precomputed
// constant rev64(x^(n-1) mod P) — the (n-1) absorbs the one-bit offset of a
// 64×64→127-bit carry-less product in reflected representation. The main
// loop folds four independent 128-bit accumulators across 64-byte strides,
// the accumulators are then folded into one, and the final 16 bytes plus any
// tail finish through the slice-by-16 table path — which both sidesteps the
// Barrett reduction and guarantees the last-bytes behaviour is literally the
// fallback implementation. Constants are derived at first use from the
// forward ECMA-182 polynomial by plain GF(2) arithmetic rather than
// transcribed from tables.

/// x^n mod P over GF(2), forward domain. P = x^64 + POLY_FWD.
std::uint64_t xpow_mod(unsigned n) {
  // Forward polynomial = bit-reverse of the reflected 0xC96C5795D7870F42.
  constexpr std::uint64_t kPolyFwd = 0x42F0E1EBA9EA3693ULL;
  std::uint64_t v = 1;  // x^0
  for (unsigned i = 0; i < n; ++i) {
    const bool carry = (v >> 63) != 0;
    v <<= 1;
    if (carry) v ^= kPolyFwd;
  }
  return v;
}

std::uint64_t rev64(std::uint64_t v) {
  v = ((v & 0x5555555555555555ULL) << 1) | ((v >> 1) & 0x5555555555555555ULL);
  v = ((v & 0x3333333333333333ULL) << 2) | ((v >> 2) & 0x3333333333333333ULL);
  v = ((v & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((v >> 4) & 0x0F0F0F0F0F0F0F0FULL);
  v = ((v & 0x00FF00FF00FF00FFULL) << 8) | ((v >> 8) & 0x00FF00FF00FF00FFULL);
  v = ((v & 0x0000FFFF0000FFFFULL) << 16) | ((v >> 16) & 0x0000FFFF0000FFFFULL);
  return (v << 32) | (v >> 32);
}

struct ClmulConsts {
  // {rev64(x^(512+64-1) mod P), rev64(x^(512-1) mod P)}: 64-byte stride.
  std::uint64_t k512_lo, k512_hi;
  // {rev64(x^(128+64-1) mod P), rev64(x^(128-1) mod P)}: 16-byte stride and
  // accumulator combining.
  std::uint64_t k128_lo, k128_hi;
};

const ClmulConsts& clmul_consts() {
  static const ClmulConsts c = [] {
    ClmulConsts k;
    k.k512_lo = rev64(xpow_mod(575));
    k.k512_hi = rev64(xpow_mod(511));
    k.k128_lo = rev64(xpow_mod(191));
    k.k128_hi = rev64(xpow_mod(127));
    return k;
  }();
  return c;
}

__attribute__((target("pclmul,sse2"), always_inline)) inline __m128i fold_step(__m128i acc,
                                                                               __m128i k) {
  return _mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                       _mm_clmulepi64_si128(acc, k, 0x11));
}

}  // namespace

__attribute__((target("pclmul,sse2"))) std::uint64_t crc64_clmul(std::uint64_t crc,
                                                                 const std::byte* p,
                                                                 std::size_t n) {
  // Folding pays for itself only with a few whole strides; short inputs go
  // straight to the table path (bit-identical by definition).
  if (n < 128) return crc64_table16(crc, p, n);
  const ClmulConsts& c = clmul_consts();
  const __m128i k512 =
      _mm_set_epi64x(static_cast<long long>(c.k512_hi), static_cast<long long>(c.k512_lo));
  const __m128i k128 =
      _mm_set_epi64x(static_cast<long long>(c.k128_hi), static_cast<long long>(c.k128_lo));
  const auto* q = reinterpret_cast<const __m128i*>(p);
  __m128i a0 = _mm_loadu_si128(q + 0);
  __m128i a1 = _mm_loadu_si128(q + 1);
  __m128i a2 = _mm_loadu_si128(q + 2);
  __m128i a3 = _mm_loadu_si128(q + 3);
  // The running CRC enters as an XOR into the first 8 message bytes, exactly
  // as the table path's first `a ^= crc` does.
  a0 = _mm_xor_si128(a0, _mm_set_epi64x(0, static_cast<long long>(crc)));
  p += 64;
  n -= 64;
  while (n >= 64) {
    q = reinterpret_cast<const __m128i*>(p);
    a0 = _mm_xor_si128(fold_step(a0, k512), _mm_loadu_si128(q + 0));
    a1 = _mm_xor_si128(fold_step(a1, k512), _mm_loadu_si128(q + 1));
    a2 = _mm_xor_si128(fold_step(a2, k512), _mm_loadu_si128(q + 2));
    a3 = _mm_xor_si128(fold_step(a3, k512), _mm_loadu_si128(q + 3));
    p += 64;
    n -= 64;
  }
  __m128i acc = _mm_xor_si128(fold_step(a0, k128), a1);
  acc = _mm_xor_si128(fold_step(acc, k128), a2);
  acc = _mm_xor_si128(fold_step(acc, k128), a3);
  while (n >= 16) {
    acc = _mm_xor_si128(fold_step(acc, k128),
                        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
    p += 16;
    n -= 16;
  }
  // Finish: the accumulator is, by the fold invariant, a 16-byte virtual
  // message prefix equivalent to everything consumed so far under a zero
  // running CRC; stream it and the (<16-byte) tail through the table path.
  std::byte buf[16];
  _mm_storeu_si128(reinterpret_cast<__m128i*>(buf), acc);
  return crc64_table16(crc64_table16(0, buf, 16), p, n);
}

// ---------------------------------------------------------------------------
// Pattern lanes: the SplitMix64-per-lane stream, vectorized. Lane keys are
// affine in the lane index (lane*K1 + K2), so the key vector advances by a
// constant additive step per iteration — no multiply on the key chain; only
// the two finalizer multiplies remain, emulated from 32-bit products under
// AVX2 and native VPMULLQ under AVX-512DQ. Remainder lanes fall through to
// the scalar kernel, which is the definition of the stream.

namespace {

constexpr std::uint64_t kK1 = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kK2 = 0x243f6a8885a308d3ULL;
constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kM1 = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kM2 = 0x94d049bb133111ebULL;

__attribute__((target("avx2"), always_inline)) inline __m256i mul64_avx2(__m256i a, __m256i b) {
  // 64×64→64 low product from three 32×32 products (vpmuludq).
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i hi1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
  const __m256i hi2 = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(_mm256_add_epi64(hi1, hi2), 32));
}

__attribute__((target("avx2"), always_inline)) inline __m256i lanes4_avx2(__m256i key,
                                                                          __m256i seedv) {
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(kM1));
  const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(kM2));
  __m256i z = _mm256_add_epi64(_mm256_xor_si256(seedv, key),
                               _mm256_set1_epi64x(static_cast<long long>(kGamma)));
  z = mul64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), m1);
  z = mul64_avx2(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), m2);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

__attribute__((target("avx2"), always_inline)) inline __m256i key4_at(std::uint64_t first_lane) {
  return _mm256_setr_epi64x(static_cast<long long>(first_lane * kK1 + kK2),
                            static_cast<long long>((first_lane + 1) * kK1 + kK2),
                            static_cast<long long>((first_lane + 2) * kK1 + kK2),
                            static_cast<long long>((first_lane + 3) * kK1 + kK2));
}

__attribute__((target("avx512f,avx512dq"), always_inline)) inline __m512i lanes8_avx512(
    __m512i key, __m512i seedv) {
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(kM1));
  const __m512i m2 = _mm512_set1_epi64(static_cast<long long>(kM2));
  __m512i z = _mm512_add_epi64(_mm512_xor_si512(seedv, key),
                               _mm512_set1_epi64(static_cast<long long>(kGamma)));
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 30)), m1);
  z = _mm512_mullo_epi64(_mm512_xor_si512(z, _mm512_srli_epi64(z, 27)), m2);
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

__attribute__((target("avx512f,avx512dq"), always_inline)) inline __m512i key8_at(
    std::uint64_t first_lane) {
  alignas(64) std::uint64_t k[8];
  for (int j = 0; j < 8; ++j) k[j] = (first_lane + static_cast<std::uint64_t>(j)) * kK1 + kK2;
  return _mm512_load_si512(reinterpret_cast<const __m512i*>(k));
}

}  // namespace

__attribute__((target("avx2"))) void pattern_lanes_avx2(std::byte* dst, std::uint64_t seed,
                                                        std::uint64_t first_lane,
                                                        std::size_t nlanes) {
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kK1));
  __m256i key = key4_at(first_lane);
  std::size_t i = 0;
  for (; i + 4 <= nlanes; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i * 8), lanes4_avx2(key, seedv));
    key = _mm256_add_epi64(key, step);
  }
  if (i < nlanes) pattern_lanes_scalar(dst + i * 8, seed, first_lane + i, nlanes - i);
}

__attribute__((target("avx2"))) bool pattern_lanes_check_avx2(const std::byte* src,
                                                              std::uint64_t seed,
                                                              std::uint64_t first_lane,
                                                              std::size_t nlanes) {
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * kK1));
  __m256i key = key4_at(first_lane);
  std::size_t i = 0;
  for (; i + 4 <= nlanes; i += 4) {
    const __m256i got = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i * 8));
    const __m256i eq = _mm256_cmpeq_epi64(got, lanes4_avx2(key, seedv));
    if (_mm256_movemask_epi8(eq) != -1) return false;
    key = _mm256_add_epi64(key, step);
  }
  if (i < nlanes) {
    return pattern_lanes_check_scalar(src + i * 8, seed, first_lane + i, nlanes - i);
  }
  return true;
}

__attribute__((target("avx512f,avx512dq"))) void pattern_lanes_avx512(std::byte* dst,
                                                                      std::uint64_t seed,
                                                                      std::uint64_t first_lane,
                                                                      std::size_t nlanes) {
  const __m512i seedv = _mm512_set1_epi64(static_cast<long long>(seed));
  const __m512i step = _mm512_set1_epi64(static_cast<long long>(8 * kK1));
  __m512i key = key8_at(first_lane);
  std::size_t i = 0;
  for (; i + 8 <= nlanes; i += 8) {
    _mm512_storeu_si512(reinterpret_cast<__m512i*>(dst + i * 8), lanes8_avx512(key, seedv));
    key = _mm512_add_epi64(key, step);
  }
  if (i < nlanes) pattern_lanes_scalar(dst + i * 8, seed, first_lane + i, nlanes - i);
}

__attribute__((target("avx512f,avx512dq"))) bool pattern_lanes_check_avx512(
    const std::byte* src, std::uint64_t seed, std::uint64_t first_lane, std::size_t nlanes) {
  const __m512i seedv = _mm512_set1_epi64(static_cast<long long>(seed));
  const __m512i step = _mm512_set1_epi64(static_cast<long long>(8 * kK1));
  __m512i key = key8_at(first_lane);
  std::size_t i = 0;
  for (; i + 8 <= nlanes; i += 8) {
    const __m512i got = _mm512_loadu_si512(reinterpret_cast<const __m512i*>(src + i * 8));
    if (_mm512_cmpneq_epu64_mask(got, lanes8_avx512(key, seedv)) != 0) return false;
    key = _mm512_add_epi64(key, step);
  }
  if (i < nlanes) {
    return pattern_lanes_check_scalar(src + i * 8, seed, first_lane + i, nlanes - i);
  }
  return true;
}

}  // namespace jobmig::sim::kernels

#endif  // x86-64
