#include "jobmig/sim/log.hpp"

#include <iostream>

#include "jobmig/sim/engine.hpp"

namespace jobmig::sim {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

Logger::Logger() { reset_sink(); }

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

void Logger::reset_sink() {
  sink_ = [](const Record& r) {
    std::cerr << "[" << r.when.to_seconds() << "s " << to_string(r.level) << " " << r.component
              << "] " << r.message << "\n";
  };
}

void Logger::emit(LogLevel level, std::string_view component, std::string message) {
  Record r;
  r.when = Engine::current() ? Engine::current()->now() : TimePoint::origin();
  r.level = level;
  r.component = std::string(component);
  r.message = std::move(message);
  if (sink_) sink_(r);
}

}  // namespace jobmig::sim
