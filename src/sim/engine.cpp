#include "jobmig/sim/engine.hpp"

#include <sstream>

#include "jobmig/sim/task.hpp"

namespace jobmig::sim {

namespace {
Engine* g_current_engine = nullptr;
}  // namespace

namespace detail2 {

/// Root wrapper for spawned tasks. The frame self-destructs at final suspend
/// (suspend_never); exceptions escaping the wrapped task are reported to the
/// engine and rethrown from Engine::run().
struct Detached {
  struct promise_type {
    Engine* engine = nullptr;

    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {
      if (engine) engine->on_root_task_done();
    }
    void unhandled_exception() noexcept {
      if (engine) {
        engine->on_root_task_exception(std::current_exception());
        engine->on_root_task_done();
      }
    }
  };

  std::coroutine_handle<promise_type> handle;
};

Detached run_root(Task t) { co_await std::move(t); }

}  // namespace detail2

Engine::~Engine() = default;

void Engine::schedule_at(TimePoint t, std::coroutine_handle<> h) {
  JOBMIG_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(QueueItem{t, next_seq_++, h, nullptr});
}

void Engine::schedule_in(Duration d, std::coroutine_handle<> h) {
  JOBMIG_EXPECTS_MSG(d >= Duration::zero(), "negative delay");
  schedule_at(now_ + d, h);
}

void Engine::call_at(TimePoint t, std::function<void()> fn) {
  JOBMIG_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  queue_.push(QueueItem{t, next_seq_++, nullptr, std::move(fn)});
}

void Engine::call_in(Duration d, std::function<void()> fn) {
  JOBMIG_EXPECTS_MSG(d >= Duration::zero(), "negative delay");
  call_at(now_ + d, std::move(fn));
}

void Engine::spawn(Task t) {
  JOBMIG_EXPECTS_MSG(t.valid(), "spawn() of an empty task");
  detail2::Detached d = detail2::run_root(std::move(t));
  d.handle.promise().engine = this;
  ++live_tasks_;
  schedule_at(now_, d.handle);
}

TimePoint Engine::run() { return run_until(TimePoint::max()); }

TimePoint Engine::run_until(TimePoint deadline) {
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.top().when > deadline) break;
    step();
    if (pending_exception_) {
      auto e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (now_ < deadline && deadline != TimePoint::max()) now_ = deadline;
  return now_;
}

bool Engine::step() {
  if (queue_.empty()) return false;
  QueueItem item = queue_.top();
  queue_.pop();
  JOBMIG_ASSERT(item.when >= now_);
  now_ = item.when;
  ++events_processed_;
  dispatch(item);
  return true;
}

void Engine::dispatch(QueueItem& item) {
  CurrentEngineGuard guard(this);
  if (item.handle) {
    item.handle.resume();
  } else if (item.callback) {
    item.callback();
  }
}

void Engine::on_root_task_exception(std::exception_ptr e) {
  // First exception wins; later ones are dropped (the sim is already failing).
  if (!pending_exception_) pending_exception_ = e;
}

Engine* Engine::current() { return g_current_engine; }

CurrentEngineGuard::CurrentEngineGuard(Engine* e) : prev_(g_current_engine) {
  g_current_engine = e;
}
CurrentEngineGuard::~CurrentEngineGuard() { g_current_engine = prev_; }

}  // namespace jobmig::sim

namespace jobmig::detail {

namespace {
ContractFailHook g_contract_fail_hook = nullptr;
}  // namespace

ContractFailHook set_contract_fail_hook(ContractFailHook hook) {
  ContractFailHook prev = g_contract_fail_hook;
  g_contract_fail_hook = hook;
  return prev;
}

[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg) {
  if (g_contract_fail_hook != nullptr) g_contract_fail_hook(kind, expr, file, line, msg);
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace jobmig::detail
