#include "jobmig/sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <utility>

#include "jobmig/sim/task.hpp"

namespace jobmig::sim {

namespace detail2 {
// Thread-local so parallel workers each carry their own dispatch context;
// on the main thread t_worker_ctx stays null and the sequential paths are
// untouched. Definitions live here; WorkerCtx itself is in engine_par.cpp.
thread_local WorkerCtx* t_worker_ctx = nullptr;
thread_local DomainId t_current_domain = kSerialDomain;
}  // namespace detail2

namespace {

thread_local Engine* g_current_engine = nullptr;

/// First set bit index >= `from` in a 256-bit bitmap, or -1 if none.
int find_set_from(const std::array<std::uint64_t, 4>& bm, std::uint32_t from) {
  std::uint32_t w = from >> 6;
  std::uint64_t word = bm[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) return static_cast<int>(w * 64 + std::countr_zero(word));
    if (++w >= bm.size()) return -1;
    word = bm[w];
  }
}

}  // namespace

namespace detail2 {

/// Root wrapper for spawned tasks. The frame self-destructs at final suspend
/// (suspend_never); exceptions escaping the wrapped task are reported to the
/// engine and rethrown from Engine::run().
struct Detached {
  struct promise_type {
    Engine* engine = nullptr;

    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {
      if (engine) engine->on_root_task_done();
    }
    void unhandled_exception() noexcept {
      if (engine) {
        engine->on_root_task_exception(std::current_exception());
        engine->on_root_task_done();
      }
    }
  };

  std::coroutine_handle<promise_type> handle;
};

Detached run_root(Task t) { co_await std::move(t); }

}  // namespace detail2

// Engine's constructor and destructor live in engine_par.cpp, where
// ParallelState is a complete type (the destructor joins any worker pool
// before the members are torn down).

// ---------------------------------------------------------------------------
// Node slab / freelist

std::uint32_t Engine::acquire_node(TimePoint t, std::coroutine_handle<> h,
                                   std::function<void()> fn) {
  std::uint32_t idx;
  if (free_head_ != kNoNode) {
    idx = free_head_;
    free_head_ = slab_[idx].next;
  } else {
    idx = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Node& n = slab_[idx];
  n.when_ns = t.count_ns();
  n.seq = next_seq_++;
  n.next = kNoNode;
  n.domain = detail2::t_current_domain;
  n.arena_ref = kNoNode;
  n.cancelled = false;
  n.handle = h;
  n.callback = std::move(fn);
  if (n.domain != kSerialDomain) has_domains_ = true;
  ++live_events_;
  peak_queue_depth_ = std::max(peak_queue_depth_, live_events_);
  return idx;
}

void Engine::release_node(std::uint32_t idx) {
  Node& n = slab_[idx];
  ++n.gen;  // invalidate any outstanding TimerHandle
  if (n.arena_ref != kNoNode) {
    free_arena_ref(n.arena_ref);  // retire the arena entry forwarding here
    n.arena_ref = kNoNode;
  }
  n.handle = {};
  n.callback = nullptr;
  n.cancelled = false;
  n.next = free_head_;
  free_head_ = idx;
}

// ---------------------------------------------------------------------------
// Two-tier scheduler: wheel + overflow heap + per-tick ready heap
//
// Level assignment uses aligned blocks: level l holds exactly the pending
// events whose tick shares the cursor's aligned 256^(l+1) block but not its
// 256^l block (lowest level wins). Cascading a level-l slot therefore
// redistributes strictly into levels < l, and slot scans never wrap: within
// one aligned block the slot index field compares like the tick itself.

void Engine::insert(std::uint32_t idx) {
  Node& n = slab_[idx];
  const std::int64_t t = n.when_ns >> kTickBits;
  if (t <= poured_tick_) {
    // This tick's slot has already been poured into the ready heap (common
    // case: zero-delay wakeups scheduled while dispatching). Ticks *behind*
    // the poured one only occur at a parallel-window barrier: gathering may
    // pour the cursor past the window's end, and ops materialized for
    // [window_end, cursor) must not be filed into wheel slots the cursor
    // scan has already passed. The ready heap orders them correctly either
    // way — everything still in the wheel is strictly later.
    push_ready(idx);
    ++wheel_scheduled_;
    return;
  }
  const std::int64_t c = cursor_tick_;
  for (int l = 0; l < kLevels; ++l) {
    const int block_shift = kSlotBits * (l + 1);
    if ((t >> block_shift) == (c >> block_shift)) {
      const auto slot =
          static_cast<std::uint32_t>((t >> (kSlotBits * l)) & (kSlots - 1));
      Level& lv = levels_[l];
      n.next = lv.head[slot];
      lv.head[slot] = idx;
      lv.bitmap[slot >> 6] |= std::uint64_t{1} << (slot & 63);
      ++wheel_live_;
      ++wheel_scheduled_;
      return;
    }
  }
  push_overflow(idx);
  ++overflow_scheduled_;
}

void Engine::push_ready(std::uint32_t idx) {
  const Node& n = slab_[idx];
  ready_.push_back(ReadyEntry{n.when_ns, n.seq, idx});
  std::push_heap(ready_.begin(), ready_.end(),
                 [](const ReadyEntry& a, const ReadyEntry& b) {
                   return a.when_ns != b.when_ns ? a.when_ns > b.when_ns
                                                 : a.seq > b.seq;
                 });
}

void Engine::push_overflow(std::uint32_t idx) {
  overflow_.push_back(idx);
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [this](std::uint32_t a, std::uint32_t b) {
                   const Node& na = slab_[a];
                   const Node& nb = slab_[b];
                   return na.when_ns != nb.when_ns ? na.when_ns > nb.when_ns
                                                   : na.seq > nb.seq;
                 });
}

std::uint32_t Engine::pop_overflow() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  const Node& na = slab_[a];
                  const Node& nb = slab_[b];
                  return na.when_ns != nb.when_ns ? na.when_ns > nb.when_ns
                                                  : na.seq > nb.seq;
                });
  const std::uint32_t idx = overflow_.back();
  overflow_.pop_back();
  return idx;
}

void Engine::promote_due_overflow() {
  const int span_shift = kSlotBits * kLevels;
  while (!overflow_.empty()) {
    const std::uint32_t top = overflow_.front();
    const std::int64_t t = slab_[top].when_ns >> kTickBits;
    if ((t >> span_shift) != (cursor_tick_ >> span_shift)) break;
    pop_overflow();
    insert(top);  // re-files into the wheel (also bumps wheel_scheduled_)
  }
}

void Engine::pour_slot(int level, std::uint32_t slot) {
  Level& lv = levels_[level];
  std::uint32_t node = lv.head[slot];
  lv.head[slot] = kNoNode;
  lv.bitmap[slot >> 6] &= ~(std::uint64_t{1} << (slot & 63));
  while (node != kNoNode) {
    const std::uint32_t next = slab_[node].next;
    --wheel_live_;
    push_ready(node);
    node = next;
  }
}

bool Engine::ensure_ready() {
  while (ready_.empty()) {
    if (wheel_live_ == 0) {
      if (overflow_.empty()) return false;
      // Wheel drained: re-anchor the cursor at the earliest far-future event
      // and pull its whole top-level block in.
      cursor_tick_ = slab_[overflow_.front()].when_ns >> kTickBits;
      promote_due_overflow();
      continue;
    }
    promote_due_overflow();

    // Level 0: pour the first occupied slot in the cursor's 256-tick block.
    {
      const auto from = static_cast<std::uint32_t>(cursor_tick_ & (kSlots - 1));
      const int i = find_set_from(levels_[0].bitmap, from);
      if (i >= 0) {
        cursor_tick_ = (cursor_tick_ & ~static_cast<std::int64_t>(kSlots - 1)) | i;
        poured_tick_ = cursor_tick_;
        pour_slot(0, static_cast<std::uint32_t>(i));
        continue;
      }
    }

    // Level 0 exhausted: cascade the earliest occupied slot of the lowest
    // non-empty level. Lower levels hold strictly earlier aligned blocks, so
    // scanning levels in order finds the next event in time order.
    bool cascaded = false;
    for (int l = 1; l < kLevels; ++l) {
      Level& lv = levels_[l];
      const int shift = kSlotBits * l;
      const auto from =
          static_cast<std::uint32_t>((cursor_tick_ >> shift) & (kSlots - 1));
      const int j = find_set_from(lv.bitmap, from);
      if (j < 0) continue;
      const int block_shift = shift + kSlotBits;
      const std::int64_t block_base =
          (cursor_tick_ >> block_shift) << block_shift;
      const std::int64_t slot_start =
          block_base | (static_cast<std::int64_t>(j) << shift);
      if (slot_start > cursor_tick_) cursor_tick_ = slot_start;
      std::uint32_t node = lv.head[j];
      lv.head[j] = kNoNode;
      lv.bitmap[j >> 6] &= ~(std::uint64_t{1} << (j & 63));
      while (node != kNoNode) {
        const std::uint32_t next = slab_[node].next;
        --wheel_live_;
        insert(node);
        node = next;
      }
      cascaded = true;
      break;
    }
    JOBMIG_ASSERT_MSG(cascaded, "wheel count positive but no occupied slot");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Public scheduling API

void Engine::schedule_at(TimePoint t, std::coroutine_handle<> h) {
  if (detail2::t_worker_ctx != nullptr) {
    worker_schedule_at(t, h);
    return;
  }
  JOBMIG_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  insert(acquire_node(t, h, nullptr));
}

void Engine::schedule_in(Duration d, std::coroutine_handle<> h) {
  JOBMIG_EXPECTS_MSG(d >= Duration::zero(), "negative delay");
  schedule_at(now() + d, h);
}

Engine::TimerHandle Engine::call_at(TimePoint t, std::function<void()> fn) {
  if (detail2::t_worker_ctx != nullptr) return worker_call_at(t, std::move(fn));
  JOBMIG_EXPECTS_MSG(t >= now_, "cannot schedule into the past");
  const std::uint32_t idx = acquire_node(t, nullptr, std::move(fn));
  const TimerHandle h{idx, slab_[idx].gen};
  insert(idx);
  return h;
}

Engine::TimerHandle Engine::call_in(Duration d, std::function<void()> fn) {
  JOBMIG_EXPECTS_MSG(d >= Duration::zero(), "negative delay");
  return call_at(now() + d, std::move(fn));
}

void Engine::cancel(TimerHandle h) {
  if (!h.valid()) return;
  if (detail2::t_worker_ctx != nullptr) {
    worker_cancel(h);
    return;
  }
  if ((h.node & 0x80000000u) != 0) {  // worker-created timer: arena handle
    cancel_arena(h);
    return;
  }
  if (h.node >= slab_.size()) return;
  Node& n = slab_[h.node];
  if (n.gen != h.gen) return;  // already fired/freed and possibly recycled
  n.cancelled = true;
  n.callback = nullptr;  // destroy captured state now; the slot fires as a no-op
}

void Engine::spawn(Task t) {
  JOBMIG_EXPECTS_MSG(t.valid(), "spawn() of an empty task");
  detail2::Detached d = detail2::run_root(std::move(t));
  d.handle.promise().engine = this;
  live_tasks_.fetch_add(1, std::memory_order_relaxed);
  frames_spawned_.fetch_add(1, std::memory_order_relaxed);
  schedule_at(now(), d.handle);
}

// ---------------------------------------------------------------------------
// Run loop

TimePoint Engine::run() { return run_until(TimePoint::max()); }

TimePoint Engine::run_until(TimePoint deadline) {
  if (parallel_enabled()) return run_until_parallel(deadline);
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stop_requested_.load(std::memory_order_relaxed) && ensure_ready()) {
    if (ready_.front().when_ns > deadline.count_ns()) break;
    step();
    if (pending_exception_) {
      auto e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (now_ < deadline && deadline != TimePoint::max()) now_ = deadline;
  return now_;
}

bool Engine::step() {
  if (!ensure_ready()) return false;
  std::pop_heap(ready_.begin(), ready_.end(),
                [](const ReadyEntry& a, const ReadyEntry& b) {
                  return a.when_ns != b.when_ns ? a.when_ns > b.when_ns
                                                : a.seq > b.seq;
                });
  const ReadyEntry e = ready_.back();
  ready_.pop_back();
  JOBMIG_ASSERT(e.when_ns >= now_.count_ns());
  now_ = TimePoint::from_ns(e.when_ns);
  ++events_processed_;
  --live_events_;
  sequence_hash_ =
      (sequence_hash_ ^ static_cast<std::uint64_t>(e.when_ns)) * 0x100000001b3ull;
  dispatch(e.node);
  return true;
}

void Engine::dispatch(std::uint32_t idx) {
  // Move the payload out and recycle the node *before* running it: the
  // callback/coroutine may schedule new events and reuse this very node.
  Node& n = slab_[idx];
  const std::coroutine_handle<> h = n.handle;
  const DomainId domain = n.domain;
  std::function<void()> cb = std::move(n.callback);
  release_node(idx);
  CurrentEngineGuard guard(this);
  DomainScope dscope(domain);  // events inherit the dispatching event's domain
  if (h) {
    h.resume();
  } else if (cb) {  // cancelled timers have a null callback: fire as a no-op
    cb();
  }
}

void Engine::on_root_task_exception(std::exception_ptr e) {
  // First exception wins; later ones are dropped (the sim is already failing).
  const std::lock_guard<std::mutex> lock(exception_mutex_);
  if (!pending_exception_) pending_exception_ = e;
}

Engine* Engine::current() { return g_current_engine; }

CurrentEngineGuard::CurrentEngineGuard(Engine* e) : prev_(g_current_engine) {
  g_current_engine = e;
}
CurrentEngineGuard::~CurrentEngineGuard() { g_current_engine = prev_; }

}  // namespace jobmig::sim

namespace jobmig::detail {

namespace {
ContractFailHook g_contract_fail_hook = nullptr;
}  // namespace

ContractFailHook set_contract_fail_hook(ContractFailHook hook) {
  ContractFailHook prev = g_contract_fail_hook;
  g_contract_fail_hook = hook;
  return prev;
}

[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg) {
  if (g_contract_fail_hook != nullptr) g_contract_fail_hook(kind, expr, file, line, msg);
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace jobmig::detail
