#include "jobmig/sim/bytes.hpp"

#include <cstring>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/bytes_kernels.hpp"

namespace jobmig::sim {

// The byte-level hot loops (CRC, pattern fill/verify) live behind the
// runtime-dispatched kernel table in bytes_kernels.hpp: cpuid-selected SIMD
// bodies with the scalar code as the portable, bit-identical fallback. This
// file keeps only the public-API plumbing — running-state bookkeeping for
// Crc64 and the unaligned head/tail peeling around whole-lane pattern bodies.

Crc64& Crc64::update(ByteSpan data) {
  crc_ = kernels::active().crc64(crc_, data.data(), data.size());
  return *this;
}

Crc64& Crc64::update_u64(std::uint64_t v) {
  std::byte buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  return update(ByteSpan(buf, 8));
}

void pattern_fill(MutableByteSpan out, std::uint64_t seed, std::uint64_t offset) {
  // One SplitMix64 step per 8-byte lane, keyed by absolute lane index so any
  // sub-range can be regenerated independently. Unaligned head/tail bytes
  // are peeled off here; the whole-lane body goes through the dispatched
  // kernel (this function backs every clean-page materialization, so it is
  // on the simulator's wall-clock critical path).
  std::size_t i = 0;
  const std::size_t n = out.size();
  // Head: bytes until (offset + i) is lane-aligned.
  while (i < n && (offset + i) % 8 != 0) {
    const std::uint64_t v = kernels::pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
  // Body: whole lanes via the active kernel.
  const std::size_t lanes = (n - i) / 8;
  if (lanes > 0) {
    kernels::active().fill(out.data() + i, seed, (offset + i) / 8, lanes);
    i += lanes * 8;
  }
  // Tail.
  while (i < n) {
    const std::uint64_t v = kernels::pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
}

bool pattern_check(ByteSpan data, std::uint64_t seed, std::uint64_t offset) {
  // Streaming equivalent of pattern_fill + compare: verifies `data` against
  // the (seed, offset) pattern without materializing an expected buffer.
  // Receivers and restart-side clean-section checks sit on this.
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n && (offset + i) % 8 != 0) {
    const std::uint64_t v = kernels::pattern_lane(seed, (offset + i) / 8);
    if (data[i] != static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF)) return false;
    ++i;
  }
  const std::size_t lanes = (n - i) / 8;
  if (lanes > 0) {
    if (!kernels::active().check(data.data() + i, seed, (offset + i) / 8, lanes)) return false;
    i += lanes * 8;
  }
  while (i < n) {
    const std::uint64_t v = kernels::pattern_lane(seed, (offset + i) / 8);
    if (data[i] != static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF)) return false;
    ++i;
  }
  return true;
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 8 <= in.size());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace jobmig::sim
