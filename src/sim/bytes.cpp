#include "jobmig/sim/bytes.hpp"

#include <array>
#include <cstring>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/rng.hpp"

namespace jobmig::sim {

namespace {

std::array<std::uint64_t, 256> make_crc64_table() {
  // CRC-64/XZ: reflected polynomial 0xC96C5795D7870F42.
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xC96C5795D7870F42ULL : crc >> 1;
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

const std::array<std::uint64_t, 256>& crc64_table() {
  static const auto table = make_crc64_table();
  return table;
}

}  // namespace

Crc64& Crc64::update(ByteSpan data) {
  const auto& table = crc64_table();
  for (std::byte b : data) {
    crc_ = table[static_cast<std::size_t>((crc_ ^ static_cast<std::uint64_t>(b)) & 0xFF)] ^
           (crc_ >> 8);
  }
  return *this;
}

Crc64& Crc64::update_u64(std::uint64_t v) {
  std::byte buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  return update(ByteSpan(buf, 8));
}

namespace {

/// Value of the 8-byte lane `lane` of the (seed)-keyed pattern stream.
inline std::uint64_t pattern_lane(std::uint64_t seed, std::uint64_t lane) {
  SplitMix64 sm(seed ^ (lane * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL));
  return sm.next();
}

}  // namespace

void pattern_fill(MutableByteSpan out, std::uint64_t seed, std::uint64_t offset) {
  // One SplitMix64 step per 8-byte lane, keyed by absolute lane index so any
  // sub-range can be regenerated independently. Unaligned head/tail bytes
  // are peeled off; the body writes whole lanes (this function backs every
  // clean-page materialization, so it is on the simulator's hot path).
  std::size_t i = 0;
  const std::size_t n = out.size();
  // Head: bytes until (offset + i) is lane-aligned.
  while (i < n && (offset + i) % 8 != 0) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
  // Body: whole lanes.
  while (i + 8 <= n) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    std::memcpy(out.data() + i, &v, 8);
    i += 8;
  }
  // Tail.
  while (i < n) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 8 <= in.size());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace jobmig::sim
