#include "jobmig/sim/bytes.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/rng.hpp"

namespace jobmig::sim {

namespace {

// CRC-64/XZ: reflected polynomial 0xC96C5795D7870F42, computed slice-by-16.
// Table 0 is the classic byte-at-a-time table; table t folds a byte that is
// t positions further from the end of the message, so sixteen lookups retire
// sixteen input bytes per iteration with no loop-carried table dependency
// (the checkpoint pipeline checksums every image byte, so this loop sits on
// the simulator's wall-clock critical path).
std::array<std::array<std::uint64_t, 256>, 16> make_crc64_tables() {
  std::array<std::array<std::uint64_t, 256>, 16> tables{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xC96C5795D7870F42ULL : crc >> 1;
    }
    tables[0][static_cast<std::size_t>(i)] = crc;
  }
  for (std::size_t t = 1; t < 16; ++t) {
    for (std::size_t i = 0; i < 256; ++i) {
      const std::uint64_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint64_t, 256>, 16>& crc64_tables() {
  static const auto tables = make_crc64_tables();
  return tables;
}

}  // namespace

Crc64& Crc64::update(ByteSpan data) {
  const auto& t = crc64_tables();
  const std::byte* p = data.data();
  std::size_t n = data.size();
  std::uint64_t crc = crc_;  // keep the running value in a register
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 16) {
      std::uint64_t a, b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      a ^= crc;
      crc = t[15][a & 0xFF] ^ t[14][(a >> 8) & 0xFF] ^ t[13][(a >> 16) & 0xFF] ^
            t[12][(a >> 24) & 0xFF] ^ t[11][(a >> 32) & 0xFF] ^ t[10][(a >> 40) & 0xFF] ^
            t[9][(a >> 48) & 0xFF] ^ t[8][(a >> 56) & 0xFF] ^ t[7][b & 0xFF] ^
            t[6][(b >> 8) & 0xFF] ^ t[5][(b >> 16) & 0xFF] ^ t[4][(b >> 24) & 0xFF] ^
            t[3][(b >> 32) & 0xFF] ^ t[2][(b >> 40) & 0xFF] ^ t[1][(b >> 48) & 0xFF] ^
            t[0][(b >> 56) & 0xFF];
      p += 16;
      n -= 16;
    }
  }
  for (; n > 0; ++p, --n) {
    crc = t[0][(crc ^ static_cast<std::uint64_t>(*p)) & 0xFF] ^ (crc >> 8);
  }
  crc_ = crc;
  return *this;
}

Crc64& Crc64::update_u64(std::uint64_t v) {
  std::byte buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFF);
  return update(ByteSpan(buf, 8));
}

namespace {

/// Value of the 8-byte lane `lane` of the (seed)-keyed pattern stream.
inline std::uint64_t pattern_lane(std::uint64_t seed, std::uint64_t lane) {
  SplitMix64 sm(seed ^ (lane * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL));
  return sm.next();
}

}  // namespace

void pattern_fill(MutableByteSpan out, std::uint64_t seed, std::uint64_t offset) {
  // One SplitMix64 step per 8-byte lane, keyed by absolute lane index so any
  // sub-range can be regenerated independently. Unaligned head/tail bytes
  // are peeled off; the body writes whole lanes (this function backs every
  // clean-page materialization, so it is on the simulator's hot path). The
  // body is unrolled four lanes deep: each lane's hash chain is independent,
  // so the unroll exposes the multiply latency to the pipeline.
  std::size_t i = 0;
  const std::size_t n = out.size();
  // Head: bytes until (offset + i) is lane-aligned.
  while (i < n && (offset + i) % 8 != 0) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
  // Body: whole lanes, four at a time.
  std::uint64_t lane = (offset + i) / 8;
  while (i + 32 <= n) {
    const std::uint64_t v0 = pattern_lane(seed, lane);
    const std::uint64_t v1 = pattern_lane(seed, lane + 1);
    const std::uint64_t v2 = pattern_lane(seed, lane + 2);
    const std::uint64_t v3 = pattern_lane(seed, lane + 3);
    std::memcpy(out.data() + i, &v0, 8);
    std::memcpy(out.data() + i + 8, &v1, 8);
    std::memcpy(out.data() + i + 16, &v2, 8);
    std::memcpy(out.data() + i + 24, &v3, 8);
    lane += 4;
    i += 32;
  }
  while (i + 8 <= n) {
    const std::uint64_t v = pattern_lane(seed, lane++);
    std::memcpy(out.data() + i, &v, 8);
    i += 8;
  }
  // Tail.
  while (i < n) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    out[i] = static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF);
    ++i;
  }
}

bool pattern_check(ByteSpan data, std::uint64_t seed, std::uint64_t offset) {
  // Streaming equivalent of pattern_fill + compare: verifies `data` against
  // the (seed, offset) pattern without materializing an expected buffer.
  // Receivers and restart-side clean-section checks sit on this, so the
  // structure mirrors pattern_fill's unrolled lane walk.
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n && (offset + i) % 8 != 0) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    if (data[i] != static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF)) return false;
    ++i;
  }
  std::uint64_t lane = (offset + i) / 8;
  while (i + 32 <= n) {
    const std::uint64_t v0 = pattern_lane(seed, lane);
    const std::uint64_t v1 = pattern_lane(seed, lane + 1);
    const std::uint64_t v2 = pattern_lane(seed, lane + 2);
    const std::uint64_t v3 = pattern_lane(seed, lane + 3);
    std::uint64_t g0, g1, g2, g3;
    std::memcpy(&g0, data.data() + i, 8);
    std::memcpy(&g1, data.data() + i + 8, 8);
    std::memcpy(&g2, data.data() + i + 16, 8);
    std::memcpy(&g3, data.data() + i + 24, 8);
    if (((g0 ^ v0) | (g1 ^ v1) | (g2 ^ v2) | (g3 ^ v3)) != 0) return false;
    lane += 4;
    i += 32;
  }
  while (i + 8 <= n) {
    const std::uint64_t v = pattern_lane(seed, lane++);
    std::uint64_t g;
    std::memcpy(&g, data.data() + i, 8);
    if (g != v) return false;
    i += 8;
  }
  while (i < n) {
    const std::uint64_t v = pattern_lane(seed, (offset + i) / 8);
    if (data[i] != static_cast<std::byte>((v >> (8 * ((offset + i) % 8))) & 0xFF)) return false;
    ++i;
  }
  return true;
}

void put_u64(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint64_t get_u64(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 8 <= in.size());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(ByteSpan in, std::size_t offset) {
  JOBMIG_EXPECTS(offset + 4 <= in.size());
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[offset + static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace jobmig::sim
