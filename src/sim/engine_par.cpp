// Parallel discrete-event execution mode (DESIGN.md §9).
//
// Conservative lookahead windows: run_until repeatedly takes the earliest
// pending event time t0 and executes every event in [t0, t0 + lookahead) as
// one window. Events are partitioned by domain; each domain's batch runs on
// a worker thread with a private clock and a private (time, order) heap, so
// same-domain causality is preserved without locks. The workload contract —
// an event may only schedule into a *different* domain at ≥ lookahead in the
// future (the minimum cross-domain link latency) — guarantees no worker can
// affect another worker's current window, which is checked, not trusted:
// violations fail a contract assert on the offending worker.
//
// Determinism: workers do not mutate the global scheduler. Every scheduling
// op they perform is recorded in a per-batch log, and at the window barrier
// the main thread *replays* the window — merging the batches' dispatch logs
// through a (time, seq) heap that reconstructs exactly the order the
// sequential engine would have dispatched in, assigning global sequence
// numbers to recorded ops in that order and folding the FNV-1a sequence
// hash event by event. Within one domain the worker's local order equals
// the sequential order (same keys, same tie-break); across domains the
// replay heap re-merges by the same (when, seq) comparison the sequential
// ready-heap uses — so virtual times, event counts, and sequence hashes are
// bit-identical to the sequential engine at any worker count, and a window
// containing any serial-domain (domain 0) event simply runs on the literal
// sequential path.
//
// Timer handles for worker-created timers come from per-domain arenas
// (bit 31 set distinguishes them from slab handles): an arena entry starts
// Pending against the batch op log, then either becomes Done when the op is
// dispatched inside the window or Forwarded to the slab node the op
// materializes into at the barrier, so cancel() keeps working across
// windows. Cancellation follows the domain discipline: a worker may cancel
// only timers of its own domain (or its own arena handles); cross-domain
// cancellation must travel as a cross-domain event like any other message.

#include <algorithm>
#include <condition_variable>
#include <thread>
#include <unordered_map>
#include <utility>

#include "jobmig/sim/engine.hpp"

namespace jobmig::sim {

namespace par_detail {

constexpr std::uint32_t kArenaBit = 0x80000000u;
constexpr int kSlotShift = 20;
constexpr std::uint32_t kIdxMask = (1u << kSlotShift) - 1;        // 1M timers/domain
constexpr std::uint32_t kMaxSlots = 1u << (31 - kSlotShift);      // 2048 domains
constexpr std::uint32_t kNone = UINT32_MAX;

std::uint32_t encode_arena(std::uint32_t slot, std::uint32_t idx) {
  return kArenaBit | (slot << kSlotShift) | idx;
}
std::uint32_t arena_slot(std::uint32_t ref) { return (ref & ~kArenaBit) >> kSlotShift; }
std::uint32_t arena_index(std::uint32_t ref) { return ref & kIdxMask; }

/// Cross-window identity for a worker-created timer.
struct ArenaEntry {
  enum class State : std::uint8_t { Free, Pending, Forwarded, Done };
  State state = State::Free;
  std::uint64_t gen = 0;       // bumped on free; stale handles cancel as no-ops
  std::uint32_t op_idx = 0;    // Pending: index into the creating batch's ops
  std::uint32_t fwd_node = 0;  // Forwarded: slab node the op materialized into
  std::uint64_t fwd_gen = 0;   // Forwarded: that node's generation
  std::uint32_t next_free = kNone;
};

struct DomainState {
  std::vector<ArenaEntry> arena;
  std::uint32_t free_head = kNone;
};

/// One scheduling operation recorded by a worker (schedule_at or call_at).
struct Op {
  std::int64_t when_ns = 0;
  DomainId domain = kSerialDomain;
  std::uint32_t arena_idx = kNone;  // set for call_at (cancellable) ops
  bool cancelled = false;
  std::coroutine_handle<> handle;
  std::function<void()> callback;
};

/// One event dispatched by a worker, with the ops it performed (a slice of
/// the batch op log, in code order). recs in dispatch order are the batch's
/// contribution to the barrier replay.
struct DispatchRec {
  std::int64_t when_ns = 0;
  std::uint32_t src_node = kNone;  // gathered slab node, or
  std::uint32_t src_op = kNone;    // in-window created op
  std::uint32_t ops_begin = 0;
  std::uint32_t ops_end = 0;
};

struct Batch {
  DomainId domain = kSerialDomain;
  std::uint32_t slot = 0;
  std::vector<std::uint32_t> nodes;  // gathered slab nodes, (when, seq) order
  std::vector<Op> ops;
  std::vector<DispatchRec> recs;
  std::size_t rec_cursor = 0;  // replay progress
  std::exception_ptr error;
};

}  // namespace par_detail

namespace detail2 {

/// Thread-local dispatch context active while a worker executes a batch.
struct WorkerCtx {
  Engine* engine = nullptr;
  par_detail::Batch* batch = nullptr;
  par_detail::DomainState* dstate = nullptr;
  std::int64_t local_now = 0;
  std::int64_t window_end = 0;
};

}  // namespace detail2

using par_detail::ArenaEntry;
using par_detail::Batch;
using par_detail::DispatchRec;
using par_detail::DomainState;
using par_detail::Op;
using par_detail::kNone;

struct Engine::ParallelState {
  Engine* engine;

  // Worker pool. Workers pull batches off an atomic cursor, so batch→thread
  // assignment is scheduling-dependent — which is why nothing a batch does
  // may depend on *which* thread runs it, only on its domain.
  std::vector<std::thread> threads;
  std::vector<std::uint64_t> worker_events;  // per-thread dispatch counts
  std::mutex m;
  std::condition_variable cv_work, cv_done;
  std::uint64_t work_epoch = 0;
  std::size_t workers_done = 0;
  bool shutdown = false;

  // Current window.
  std::vector<Batch> batches;
  std::atomic<std::size_t> next_batch{0};
  std::int64_t window_end = 0;
  std::uint64_t seq_base = 0;  // next_seq_ snapshot: every in-window-created
                               // event orders after every gathered one

  // Domain registry: dense slots for the per-domain arenas (main thread
  // only — workers reach their own slot through the batch).
  std::unordered_map<DomainId, std::uint32_t> slot_of;
  std::vector<DomainState> domains;
  std::unordered_map<DomainId, std::size_t> batch_index;  // window scratch
  std::vector<std::uint32_t> gather_scratch;

  explicit ParallelState(Engine* e) : engine(e) {}

  std::uint32_t slot_for(DomainId d) {
    const auto [it, fresh] = slot_of.try_emplace(d, static_cast<std::uint32_t>(domains.size()));
    if (fresh) {
      JOBMIG_ASSERT_MSG(domains.size() < par_detail::kMaxSlots, "too many domains");
      domains.emplace_back();
    }
    return it->second;
  }

  void start_threads(std::size_t n) {
    JOBMIG_ASSERT(threads.empty());
    worker_events.assign(n, 0);
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i] { worker_main(i); });
    }
  }

  void stop_threads() {
    if (threads.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(m);
      shutdown = true;
    }
    cv_work.notify_all();
    for (std::thread& t : threads) t.join();
    threads.clear();
    shutdown = false;
  }

  /// Release the pool onto `batches` and block until every batch completed.
  void run_window() {
    next_batch.store(0, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(m);
      ++work_epoch;
      workers_done = 0;
    }
    cv_work.notify_all();
    std::unique_lock<std::mutex> lock(m);
    cv_done.wait(lock, [this] { return workers_done == threads.size(); });
  }

  void worker_main(std::size_t worker_idx) {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(m);
        cv_work.wait(lock, [&] { return shutdown || work_epoch != seen_epoch; });
        if (shutdown) return;
        seen_epoch = work_epoch;
      }
      for (;;) {
        const std::size_t bi = next_batch.fetch_add(1, std::memory_order_relaxed);
        if (bi >= batches.size()) break;
        process_batch(batches[bi], worker_events[worker_idx]);
      }
      {
        const std::lock_guard<std::mutex> lock(m);
        if (++workers_done == threads.size()) cv_done.notify_all();
      }
    }
  }

  /// Execute one domain's window batch on the calling worker thread.
  void process_batch(Batch& b, std::uint64_t& event_count) {
    struct LocalEntry {
      std::int64_t when_ns;
      std::uint64_t lseq;
      std::uint32_t idx;  // slab node (gathered) or op index (created)
      bool is_op;
    };
    // Local order == sequential order restricted to this domain: gathered
    // events carry their real seqs (all < seq_base), created ops order by
    // append position (seq_base + op index), matching the order the replay
    // will assign their real seqs in.
    const auto later = [](const LocalEntry& a, const LocalEntry& b2) {
      return a.when_ns != b2.when_ns ? a.when_ns > b2.when_ns : a.lseq > b2.lseq;
    };
    detail2::WorkerCtx ctx;
    ctx.engine = engine;
    ctx.batch = &b;
    ctx.dstate = &domains[b.slot];
    ctx.window_end = window_end;
    detail2::t_worker_ctx = &ctx;
    try {
      auto& slab = engine->slab_;
      std::vector<LocalEntry> heap;
      heap.reserve(b.nodes.size());
      for (const std::uint32_t idx : b.nodes) {
        heap.push_back({slab[idx].when_ns, slab[idx].seq, idx, false});
      }
      std::make_heap(heap.begin(), heap.end(), later);
      while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end(), later);
        const LocalEntry e = heap.back();
        heap.pop_back();
        ctx.local_now = e.when_ns;
        const auto ops_begin = static_cast<std::uint32_t>(b.ops.size());
        {
          // Move the payload out, exactly like sequential dispatch (the node
          // itself is released by the main thread during replay).
          std::coroutine_handle<> h;
          std::function<void()> cb;
          if (e.is_op) {
            Op& o = b.ops[e.idx];
            h = std::exchange(o.handle, {});
            cb = std::move(o.callback);
            if (o.arena_idx != kNone) {
              domains[b.slot].arena[o.arena_idx].state = ArenaEntry::State::Done;
            }
          } else {
            Node& n = slab[e.idx];
            h = std::exchange(n.handle, {});
            cb = std::move(n.callback);
          }
          CurrentEngineGuard guard(engine);
          DomainScope dscope(b.domain);
          if (h) {
            h.resume();
          } else if (cb) {  // cancelled timers fire as no-ops, as in sequential
            cb();
          }
        }
        const auto ops_end = static_cast<std::uint32_t>(b.ops.size());
        b.recs.push_back({e.when_ns, e.is_op ? kNone : e.idx, e.is_op ? e.idx : kNone,
                          ops_begin, ops_end});
        // Same-domain ops due inside the window join the local timeline
        // (cross-domain ones were bounds-checked at creation and wait for
        // the barrier).
        for (std::uint32_t j = ops_begin; j < ops_end; ++j) {
          if (b.ops[j].when_ns < window_end) {
            heap.push_back({b.ops[j].when_ns, seq_base + j, j, true});
            std::push_heap(heap.begin(), heap.end(), later);
          }
        }
        ++event_count;
      }
    } catch (...) {
      b.error = std::current_exception();
    }
    detail2::t_worker_ctx = nullptr;
  }

  /// Barrier replay: reconstruct the sequential dispatch order of the window
  /// from the batch logs, assigning global seqs and folding the hash.
  void replay() {
    Engine& E = *engine;
    struct ReplayEntry {
      std::int64_t when_ns;
      std::uint64_t seq;
      std::uint32_t batch;
      std::uint32_t idx;  // slab node or op index
      bool is_op;
    };
    const auto later = [](const ReplayEntry& a, const ReplayEntry& b) {
      return a.when_ns != b.when_ns ? a.when_ns > b.when_ns : a.seq > b.seq;
    };
    std::vector<ReplayEntry> heap;
    for (std::uint32_t bi = 0; bi < batches.size(); ++bi) {
      for (const std::uint32_t idx : batches[bi].nodes) {
        heap.push_back({E.slab_[idx].when_ns, E.slab_[idx].seq, bi, idx, false});
      }
    }
    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const ReplayEntry e = heap.back();
      heap.pop_back();
      Batch& b = batches[e.batch];
      JOBMIG_ASSERT_MSG(b.rec_cursor < b.recs.size(), "replay/worker dispatch log mismatch");
      const DispatchRec rec = b.recs[b.rec_cursor++];
      JOBMIG_ASSERT(rec.when_ns == e.when_ns &&
                    (e.is_op ? rec.src_op == e.idx : rec.src_node == e.idx));
      JOBMIG_ASSERT(e.when_ns >= E.now_.count_ns());
      E.now_ = TimePoint::from_ns(e.when_ns);
      ++E.events_processed_;
      --E.live_events_;
      ++E.par_events_;
      E.sequence_hash_ =
          (E.sequence_hash_ ^ static_cast<std::uint64_t>(e.when_ns)) * 0x100000001b3ull;
      for (std::uint32_t j = rec.ops_begin; j < rec.ops_end; ++j) {
        Op& o = b.ops[j];
        const std::uint64_t seq = E.next_seq_++;
        ++E.live_events_;
        E.peak_queue_depth_ = std::max(E.peak_queue_depth_, E.live_events_);
        if (o.when_ns < window_end && o.domain == b.domain) {
          // Dispatched inside the window by the worker; its own record shows
          // up later in this batch's log. Counter parity: the sequential
          // engine files near-horizon events into the wheel/ready path.
          ++E.wheel_scheduled_;
          heap.push_back({o.when_ns, seq, e.batch, j, true});
          std::push_heap(heap.begin(), heap.end(), later);
        } else {
          materialize(b, o, seq);
        }
      }
      if (!e.is_op) E.release_node(e.idx);
    }
    for (Batch& b : batches) {
      JOBMIG_ASSERT_MSG(b.rec_cursor == b.recs.size(), "unconsumed worker dispatches");
      // Arena entries whose op fired inside the window are dead: retire them
      // so later cancels through stale handles are generation-checked no-ops.
      for (const Op& o : b.ops) {
        if (o.arena_idx == kNone) continue;
        ArenaEntry& ae = domains[b.slot].arena[o.arena_idx];
        if (ae.state == ArenaEntry::State::Done) free_entry(b.slot, o.arena_idx);
      }
    }
  }

  /// File a worker-recorded op into the real scheduler with its final seq.
  void materialize(const Batch& b, Op& o, std::uint64_t seq) {
    Engine& E = *engine;
    std::uint32_t idx;
    if (E.free_head_ != kNoNode) {
      idx = E.free_head_;
      E.free_head_ = E.slab_[idx].next;
    } else {
      idx = static_cast<std::uint32_t>(E.slab_.size());
      E.slab_.emplace_back();
    }
    Node& n = E.slab_[idx];
    n.when_ns = o.when_ns;
    n.seq = seq;
    n.next = kNoNode;
    n.domain = o.domain;
    n.arena_ref =
        o.arena_idx != kNone ? par_detail::encode_arena(b.slot, o.arena_idx) : kNoNode;
    n.cancelled = o.cancelled;
    n.handle = o.handle;
    n.callback = std::move(o.callback);
    if (o.arena_idx != kNone) {
      ArenaEntry& ae = domains[b.slot].arena[o.arena_idx];
      ae.state = ArenaEntry::State::Forwarded;
      ae.fwd_node = idx;
      ae.fwd_gen = n.gen;
    }
    E.insert(idx);
  }

  void free_entry(std::uint32_t slot, std::uint32_t idx) {
    DomainState& ds = domains[slot];
    ArenaEntry& ae = ds.arena[idx];
    ++ae.gen;
    ae.state = ArenaEntry::State::Free;
    ae.next_free = ds.free_head;
    ds.free_head = idx;
  }
};

// ---------------------------------------------------------------------------
// Engine: parallel-mode public API and worker-side scheduling hooks

Engine::Engine() {
  for (Level& lv : levels_) lv.head.fill(kNoNode);
  slab_.reserve(256);
  ready_.reserve(64);
}

Engine::~Engine() {
  if (par_) par_->stop_threads();
}

void Engine::enable_parallel(std::size_t workers) {
  if (!par_) {
    if (workers == 0) return;
    par_ = std::make_unique<ParallelState>(this);
  }
  par_->stop_threads();
  if (workers > 0) par_->start_threads(workers);
}

bool Engine::parallel_enabled() const { return par_ != nullptr && !par_->threads.empty(); }

std::size_t Engine::parallel_workers() const { return par_ ? par_->threads.size() : 0; }

std::vector<std::uint64_t> Engine::worker_event_counts() const {
  return par_ ? par_->worker_events : std::vector<std::uint64_t>{};
}

TimePoint Engine::worker_now() const {
  const detail2::WorkerCtx* ctx = detail2::t_worker_ctx;
  JOBMIG_ASSERT_MSG(ctx->engine == this, "now() on a foreign engine from a worker");
  return TimePoint::from_ns(ctx->local_now);
}

TimePoint Engine::run_until_parallel(TimePoint deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  const std::int64_t deadline_ns = deadline.count_ns();
  while (!stop_requested_.load(std::memory_order_relaxed) && ensure_ready()) {
    if (ready_.front().when_ns > deadline_ns) break;
    if (!has_domains_) {
      // No domain ever tagged: the workload is serial, run the unchanged
      // sequential fast path (fig4/fig6 under --engine=par land here).
      step();
    } else {
      process_window(deadline_ns);
    }
    if (pending_exception_) {
      auto e = std::exchange(pending_exception_, nullptr);
      std::rethrow_exception(e);
    }
  }
  if (now_ < deadline && deadline != TimePoint::max()) now_ = deadline;
  return now_;
}

void Engine::process_window(std::int64_t deadline_ns) {
  ParallelState& P = *par_;
  const std::int64_t t0 = ready_.front().when_ns;
  const std::int64_t lookahead_ns = std::max<std::int64_t>(lookahead_.count_ns(), 1);
  std::int64_t window_end =
      t0 > INT64_MAX - lookahead_ns ? INT64_MAX : t0 + lookahead_ns;
  if (deadline_ns != INT64_MAX) window_end = std::min(window_end, deadline_ns + 1);

  // Gather every event due before window_end, in global (when, seq) order.
  std::vector<std::uint32_t>& gathered = P.gather_scratch;
  gathered.clear();
  bool serial = false;
  const auto later = [](const ReadyEntry& a, const ReadyEntry& b) {
    return a.when_ns != b.when_ns ? a.when_ns > b.when_ns : a.seq > b.seq;
  };
  while (ensure_ready() && ready_.front().when_ns < window_end) {
    std::pop_heap(ready_.begin(), ready_.end(), later);
    const std::uint32_t idx = ready_.back().node;
    ready_.pop_back();
    gathered.push_back(idx);
    if (slab_[idx].domain == kSerialDomain) serial = true;
  }
  JOBMIG_ASSERT(!gathered.empty());

  if (serial) {
    // A serial-domain event pins the window to the main thread: put the
    // events back and run the literal sequential loop up to window_end.
    // Anything these dispatches schedule inside the window — any domain —
    // simply joins the same sequential run, exactly as in the seq engine.
    ++par_serial_windows_;
    for (const std::uint32_t idx : gathered) push_ready(idx);
    while (!stop_requested_.load(std::memory_order_relaxed) && ensure_ready() &&
           ready_.front().when_ns < window_end) {
      step();
      if (pending_exception_) return;  // rethrown by run_until_parallel
    }
    return;
  }

  ++par_windows_;
  // Partition into per-domain batches; the per-domain node lists inherit the
  // gathered (when, seq) order.
  P.batches.clear();
  P.batch_index.clear();
  for (const std::uint32_t idx : gathered) {
    const DomainId d = slab_[idx].domain;
    const auto [it, fresh] = P.batch_index.try_emplace(d, P.batches.size());
    if (fresh) {
      P.batches.emplace_back();
      P.batches.back().domain = d;
      P.batches.back().slot = P.slot_for(d);
    }
    P.batches[it->second].nodes.push_back(idx);
  }
  par_batches_ += P.batches.size();
  P.window_end = window_end;
  P.seq_base = next_seq_;

  P.run_window();

  // Deterministic error propagation: first failing batch in domain-gather
  // order wins. The engine is poisoned after this (the window was torn
  // mid-flight), matching an exception escaping a sequential dispatch.
  for (const Batch& b : P.batches) {
    if (b.error) std::rethrow_exception(b.error);
  }

  P.replay();
}

void Engine::worker_schedule_at(TimePoint t, std::coroutine_handle<> h) {
  detail2::WorkerCtx* ctx = detail2::t_worker_ctx;
  JOBMIG_EXPECTS_MSG(ctx->engine == this, "cross-engine scheduling from a worker");
  JOBMIG_EXPECTS_MSG(t.count_ns() >= ctx->local_now, "cannot schedule into the past");
  const DomainId dom = detail2::t_current_domain;
  JOBMIG_EXPECTS_MSG(dom == ctx->batch->domain || t.count_ns() >= ctx->window_end,
                     "lookahead violation: cross-domain event inside the current window");
  ctx->batch->ops.push_back(Op{t.count_ns(), dom, kNone, false, h, nullptr});
}

Engine::TimerHandle Engine::worker_call_at(TimePoint t, std::function<void()> fn) {
  detail2::WorkerCtx* ctx = detail2::t_worker_ctx;
  JOBMIG_EXPECTS_MSG(ctx->engine == this, "cross-engine scheduling from a worker");
  JOBMIG_EXPECTS_MSG(t.count_ns() >= ctx->local_now, "cannot schedule into the past");
  const DomainId dom = detail2::t_current_domain;
  JOBMIG_EXPECTS_MSG(dom == ctx->batch->domain || t.count_ns() >= ctx->window_end,
                     "lookahead violation: cross-domain event inside the current window");
  DomainState& ds = *ctx->dstate;
  std::uint32_t ai;
  if (ds.free_head != kNone) {
    ai = ds.free_head;
    ds.free_head = ds.arena[ai].next_free;
  } else {
    ai = static_cast<std::uint32_t>(ds.arena.size());
    JOBMIG_ASSERT_MSG(ai <= par_detail::kIdxMask, "arena overflow");
    ds.arena.emplace_back();
  }
  ArenaEntry& ae = ds.arena[ai];
  ae.state = ArenaEntry::State::Pending;
  ae.op_idx = static_cast<std::uint32_t>(ctx->batch->ops.size());
  ctx->batch->ops.push_back(Op{t.count_ns(), dom, ai, false, {}, std::move(fn)});
  return TimerHandle{par_detail::encode_arena(ctx->batch->slot, ai), ae.gen};
}

void Engine::worker_cancel(TimerHandle h) {
  detail2::WorkerCtx* ctx = detail2::t_worker_ctx;
  JOBMIG_EXPECTS_MSG(ctx->engine == this, "cross-engine cancel from a worker");
  Batch& b = *ctx->batch;
  if ((h.node & par_detail::kArenaBit) != 0) {
    JOBMIG_EXPECTS_MSG(par_detail::arena_slot(h.node) == b.slot,
                       "cross-domain cancel from a worker");
    ArenaEntry& ae = ctx->dstate->arena[par_detail::arena_index(h.node)];
    if (ae.gen != h.gen) return;  // already fired and retired
    switch (ae.state) {
      case ArenaEntry::State::Pending: {
        Op& o = b.ops[ae.op_idx];
        o.cancelled = true;
        o.callback = nullptr;
        return;
      }
      case ArenaEntry::State::Forwarded: {
        Node& n = slab_[ae.fwd_node];
        if (n.gen != ae.fwd_gen) return;
        JOBMIG_EXPECTS_MSG(n.when_ns >= ctx->window_end || n.domain == b.domain,
                           "cross-domain cancel inside the current window");
        n.cancelled = true;
        n.callback = nullptr;
        return;
      }
      case ArenaEntry::State::Done:
      case ArenaEntry::State::Free:
        return;
    }
    return;
  }
  if (h.node >= slab_.size()) return;
  Node& n = slab_[h.node];
  if (n.gen != h.gen) return;  // stale handles stay silent no-ops
  JOBMIG_EXPECTS_MSG(n.domain == b.domain, "cross-domain cancel from a worker");
  n.cancelled = true;
  n.callback = nullptr;
}

void Engine::cancel_arena(TimerHandle h) {
  if (!par_) return;
  const std::uint32_t slot = par_detail::arena_slot(h.node);
  const std::uint32_t idx = par_detail::arena_index(h.node);
  if (slot >= par_->domains.size()) return;
  DomainState& ds = par_->domains[slot];
  if (idx >= ds.arena.size()) return;
  ArenaEntry& ae = ds.arena[idx];
  if (ae.gen != h.gen) return;
  // Between windows only Forwarded / Done / Free states exist.
  JOBMIG_ASSERT(ae.state != ArenaEntry::State::Pending);
  if (ae.state == ArenaEntry::State::Forwarded) {
    Node& n = slab_[ae.fwd_node];
    if (n.gen != ae.fwd_gen) return;
    n.cancelled = true;
    n.callback = nullptr;
  }
}

void Engine::free_arena_ref(std::uint32_t ref) {
  JOBMIG_ASSERT(par_ != nullptr);
  par_->free_entry(par_detail::arena_slot(ref), par_detail::arena_index(ref));
}

}  // namespace jobmig::sim
