#include "jobmig/sim/stats.hpp"

#include <cmath>

#include "jobmig/sim/assert.hpp"

namespace jobmig::sim {

void Summary::add(double x) {
  ++n_;
  total_ += x;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void PhaseTimeline::begin(const std::string& phase, TimePoint now) {
  JOBMIG_EXPECTS_MSG(!open_.contains(phase), "phase already open: " + phase);
  open_[phase] = now;
}

void PhaseTimeline::end(const std::string& phase, TimePoint now) {
  auto it = open_.find(phase);
  JOBMIG_EXPECTS_MSG(it != open_.end(), "phase not open: " + phase);
  spans_.push_back(Span{phase, it->second, now});
  open_.erase(it);
}

void PhaseTimeline::record(const std::string& phase, TimePoint start, TimePoint stop) {
  JOBMIG_EXPECTS(stop >= start);
  spans_.push_back(Span{phase, start, stop});
}

Duration PhaseTimeline::total(const std::string& phase) const {
  Duration sum = Duration::zero();
  for (const auto& s : spans_) {
    if (s.phase == phase) sum += s.length();
  }
  return sum;
}

std::vector<std::string> PhaseTimeline::phases() const {
  std::vector<std::string> out;
  for (const auto& s : spans_) {
    if (std::find(out.begin(), out.end(), s.phase) == out.end()) out.push_back(s.phase);
  }
  return out;
}

void PhaseTimeline::clear() {
  spans_.clear();
  open_.clear();
}

std::uint64_t Counters::get(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

}  // namespace jobmig::sim
