#include "jobmig/sim/bytes_kernels.hpp"

#include <array>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace jobmig::sim::kernels {

namespace {

// CRC-64/XZ: reflected polynomial 0xC96C5795D7870F42, computed slice-by-16.
// Table 0 is the classic byte-at-a-time table; table t folds a byte that is
// t positions further from the end of the message, so sixteen lookups retire
// sixteen input bytes per iteration with no loop-carried table dependency.
std::array<std::array<std::uint64_t, 256>, 16> make_crc64_tables() {
  std::array<std::array<std::uint64_t, 256>, 16> tables{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xC96C5795D7870F42ULL : crc >> 1;
    }
    tables[0][static_cast<std::size_t>(i)] = crc;
  }
  for (std::size_t t = 1; t < 16; ++t) {
    for (std::size_t i = 0; i < 256; ++i) {
      const std::uint64_t prev = tables[t - 1][i];
      tables[t][i] = tables[0][prev & 0xFF] ^ (prev >> 8);
    }
  }
  return tables;
}

const std::array<std::array<std::uint64_t, 256>, 16>& crc64_tables() {
  static const auto tables = make_crc64_tables();
  return tables;
}

bool env_force_scalar() {
  const char* v = std::getenv("JOBMIG_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

std::uint64_t crc64_table16(std::uint64_t crc, const std::byte* p, std::size_t n) {
  const auto& t = crc64_tables();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 16) {
      std::uint64_t a, b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      a ^= crc;
      crc = t[15][a & 0xFF] ^ t[14][(a >> 8) & 0xFF] ^ t[13][(a >> 16) & 0xFF] ^
            t[12][(a >> 24) & 0xFF] ^ t[11][(a >> 32) & 0xFF] ^ t[10][(a >> 40) & 0xFF] ^
            t[9][(a >> 48) & 0xFF] ^ t[8][(a >> 56) & 0xFF] ^ t[7][b & 0xFF] ^
            t[6][(b >> 8) & 0xFF] ^ t[5][(b >> 16) & 0xFF] ^ t[4][(b >> 24) & 0xFF] ^
            t[3][(b >> 32) & 0xFF] ^ t[2][(b >> 40) & 0xFF] ^ t[1][(b >> 48) & 0xFF] ^
            t[0][(b >> 56) & 0xFF];
      p += 16;
      n -= 16;
    }
  }
  for (; n > 0; ++p, --n) {
    crc = t[0][(crc ^ static_cast<std::uint64_t>(*p)) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

std::uint64_t crc64_bitwise(std::uint64_t crc, const std::byte* p, std::size_t n) {
  for (; n > 0; ++p, --n) {
    crc ^= static_cast<std::uint64_t>(*p);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xC96C5795D7870F42ULL : crc >> 1;
    }
  }
  return crc;
}

void pattern_lanes_scalar(std::byte* dst, std::uint64_t seed, std::uint64_t first_lane,
                          std::size_t nlanes) {
  // Four independent hash chains per iteration expose the multiply latency
  // to the pipeline (each lane is keyed by its absolute index, no carry).
  std::size_t i = 0;
  for (; i + 4 <= nlanes; i += 4) {
    const std::uint64_t v0 = pattern_lane(seed, first_lane + i);
    const std::uint64_t v1 = pattern_lane(seed, first_lane + i + 1);
    const std::uint64_t v2 = pattern_lane(seed, first_lane + i + 2);
    const std::uint64_t v3 = pattern_lane(seed, first_lane + i + 3);
    std::memcpy(dst + i * 8, &v0, 8);
    std::memcpy(dst + i * 8 + 8, &v1, 8);
    std::memcpy(dst + i * 8 + 16, &v2, 8);
    std::memcpy(dst + i * 8 + 24, &v3, 8);
  }
  for (; i < nlanes; ++i) {
    const std::uint64_t v = pattern_lane(seed, first_lane + i);
    std::memcpy(dst + i * 8, &v, 8);
  }
}

bool pattern_lanes_check_scalar(const std::byte* src, std::uint64_t seed,
                                std::uint64_t first_lane, std::size_t nlanes) {
  std::size_t i = 0;
  for (; i + 4 <= nlanes; i += 4) {
    const std::uint64_t v0 = pattern_lane(seed, first_lane + i);
    const std::uint64_t v1 = pattern_lane(seed, first_lane + i + 1);
    const std::uint64_t v2 = pattern_lane(seed, first_lane + i + 2);
    const std::uint64_t v3 = pattern_lane(seed, first_lane + i + 3);
    std::uint64_t g0, g1, g2, g3;
    std::memcpy(&g0, src + i * 8, 8);
    std::memcpy(&g1, src + i * 8 + 8, 8);
    std::memcpy(&g2, src + i * 8 + 16, 8);
    std::memcpy(&g3, src + i * 8 + 24, 8);
    if (((g0 ^ v0) | (g1 ^ v1) | (g2 ^ v2) | (g3 ^ v3)) != 0) return false;
  }
  for (; i < nlanes; ++i) {
    const std::uint64_t v = pattern_lane(seed, first_lane + i);
    std::uint64_t g;
    std::memcpy(&g, src + i * 8, 8);
    if (g != v) return false;
  }
  return true;
}

#if defined(__x86_64__) || defined(_M_X64)

CpuFeatures detect_cpu() {
  CpuFeatures f;
  __builtin_cpu_init();
  f.pclmul = __builtin_cpu_supports("pclmul") != 0 && __builtin_cpu_supports("sse2") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512 =
      __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512dq") != 0;
  return f;
}

#else

CpuFeatures detect_cpu() { return {}; }

#endif

Dispatch select(const CpuFeatures& f, bool force_scalar) {
  Dispatch d;
  d.crc64 = &crc64_table16;
  d.crc64_impl = "table16";
  d.fill = &pattern_lanes_scalar;
  d.check = &pattern_lanes_check_scalar;
  d.pattern_impl = "scalar";
  if (force_scalar) return d;
#if defined(__x86_64__) || defined(_M_X64)
  if (f.pclmul) {
    d.crc64 = &crc64_clmul;
    d.crc64_impl = "pclmul";
  }
  if (f.avx512) {
    d.fill = &pattern_lanes_avx512;
    d.check = &pattern_lanes_check_avx512;
    d.pattern_impl = "avx512";
  } else if (f.avx2) {
    d.fill = &pattern_lanes_avx2;
    d.check = &pattern_lanes_check_avx2;
    d.pattern_impl = "avx2";
  }
#else
  (void)f;
#endif
  return d;
}

const Dispatch& active() {
  static const Dispatch d = select(detect_cpu(), env_force_scalar());
  return d;
}

std::vector<Dispatch> all_supported() {
  std::vector<Dispatch> out;
  out.push_back(select({}, true));  // scalar baseline, always first
#if defined(__x86_64__) || defined(_M_X64)
  const CpuFeatures f = detect_cpu();
  if (f.pclmul) {
    Dispatch d = out.front();
    d.crc64 = &crc64_clmul;
    d.crc64_impl = "pclmul";
    out.push_back(d);
  }
  if (f.avx2) {
    Dispatch d = out.front();
    d.fill = &pattern_lanes_avx2;
    d.check = &pattern_lanes_check_avx2;
    d.pattern_impl = "avx2";
    out.push_back(d);
  }
  if (f.avx512) {
    Dispatch d = out.front();
    d.fill = &pattern_lanes_avx512;
    d.check = &pattern_lanes_check_avx512;
    d.pattern_impl = "avx512";
    out.push_back(d);
  }
#endif
  return out;
}

}  // namespace jobmig::sim::kernels
