#include "jobmig/cluster/cluster.hpp"

#include "jobmig/telemetry/flight_recorder.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::cluster {

Cluster::Cluster(sim::Engine& engine, ClusterConfig cfg) : engine_(engine), cfg_(cfg) {
  JOBMIG_EXPECTS(cfg_.compute_nodes >= 1);
  JOBMIG_EXPECTS(cfg_.spare_nodes >= 0);

  fabric_ = std::make_unique<ib::Fabric>(engine_, cfg_.cal.ib);
  net_ = std::make_unique<net::Network>(engine_, cfg_.cal.eth);

  // Login node: GigE only (it fronts the FTB tree and hosts the launcher).
  login_host_ = &net_->add_host("login");
  login_agent_ = std::make_unique<ftb::FtbAgent>(*login_host_);
  login_agent_->start();

  const int total = node_count();
  for (int n = 0; n < total; ++n) {
    const std::string name = node_name(n);
    ib::Hca& hca = fabric_->add_node(name);
    net::Host& host = net_->add_host(name);
    disks_.push_back(std::make_unique<storage::LocalFs>(engine_, cfg_.cal.disk, name + ":ext3"));
    blcrs_.push_back(std::make_unique<proc::Blcr>(engine_, cfg_.cal.blcr));
    auto agent = std::make_unique<ftb::FtbAgent>(host);
    // Ancestors: either the login agent directly (star) or the full chain
    // up a k-ary tree rooted at it — nearest first, so an agent whose
    // parent dies re-parents to its grandparent (FTB self-healing).
    std::vector<std::pair<net::HostId, net::Port>> ancestors;
    if (cfg_.ftb_fanout == 0) {
      ancestors.push_back({login_host_->id(), ftb::FtbAgent::kDefaultPort});
    } else {
      // Tree slots: 0 = login, 1..N = nodes in creation order (this node is
      // slot n+1). Walk parent links up to the root.
      std::size_t slot = static_cast<std::size_t>(n) + 1;
      while (slot != 0) {
        const std::size_t parent = (slot - 1) / cfg_.ftb_fanout;
        if (parent == 0) {
          ancestors.push_back({login_host_->id(), ftb::FtbAgent::kDefaultPort});
        } else {
          // Parent node's eth host: nodes were added in order after login.
          ancestors.push_back({envs_[parent - 1].eth_host, ftb::FtbAgent::kDefaultPort});
        }
        slot = parent;
      }
    }
    agent->set_ancestors(std::move(ancestors));
    agent->start();
    agents_.push_back(std::move(agent));

    mpr::NodeEnv env;
    env.engine = &engine_;
    env.hca = &hca;
    env.eth_host = host.id();
    env.scratch = disks_.back().get();
    env.blcr = blcrs_.back().get();
    env.cal = &cfg_.cal;
    env.hostname = name;
    envs_.push_back(env);

    sensors_.push_back(
        std::make_unique<health::SensorModel>(name, 0xC0FFEE00u + static_cast<std::uint64_t>(n)));
  }
  // NLAs after envs_ is stable (they keep pointers into it).
  for (int n = 0; n < total; ++n) {
    nlas_.push_back(std::make_unique<launch::NodeLaunchAgent>(
        envs_[static_cast<std::size_t>(n)], *agents_[static_cast<std::size_t>(n)],
        n < cfg_.compute_nodes ? launch::NlaState::kReady : launch::NlaState::kSpare));
  }

  if (cfg_.build_pvfs) {
    pvfs_ = std::make_unique<storage::ParallelFs>(engine_, cfg_.cal.pvfs);
  }

  jm_ = std::make_unique<launch::JobManager>(engine_, *login_agent_, cfg_.launch_fanout);
  for (auto& nla : nlas_) jm_->register_nla(*nla);

  user_trigger_ = std::make_unique<migration::UserTrigger>(*login_agent_);
}

Cluster::~Cluster() {
  for (auto& d : daemons_) d->shutdown();
  if (mm_) mm_->shutdown();
  for (auto& mj : managed_) {
    for (auto& d : mj->daemons) d->shutdown();
    if (mj->mm) mj->mm->shutdown();
  }
  if (health_trigger_) health_trigger_->stop();
  for (auto& p : pollers_) p->stop();
}

std::string Cluster::node_name(int idx) const {
  JOBMIG_EXPECTS(idx >= 0 && idx < node_count());
  return idx < cfg_.compute_nodes ? "node" + std::to_string(idx)
                                  : "spare" + std::to_string(idx - cfg_.compute_nodes);
}

mpr::NodeEnv& Cluster::node_env(int idx) {
  JOBMIG_EXPECTS(idx >= 0 && idx < node_count());
  return envs_[static_cast<std::size_t>(idx)];
}

storage::ParallelFs& Cluster::pvfs() {
  JOBMIG_EXPECTS_MSG(pvfs_ != nullptr, "cluster built without PVFS");
  return *pvfs_;
}

mpr::Job& Cluster::create_job(int ranks_per_node, std::uint64_t image_bytes_per_rank) {
  JOBMIG_EXPECTS_MSG(job_ == nullptr, "one job per cluster");
  JOBMIG_EXPECTS_MSG(managed_.empty(), "create_job and add_job are mutually exclusive");
  JOBMIG_EXPECTS(ranks_per_node >= 1);
  job_ = std::make_unique<mpr::Job>(engine_, cfg_.cal);
  const int ranks = cfg_.compute_nodes * ranks_per_node;
  for (int r = 0; r < ranks; ++r) {
    job_->add_proc(r, envs_[static_cast<std::size_t>(r / ranks_per_node)], image_bytes_per_rank,
                   0xA11CE000u + static_cast<std::uint64_t>(r));
  }
  // Job-scoped migration machinery.
  migration::MigrationOptions opts = cfg_.mig;
  for (auto& nla : nlas_) {
    daemons_.push_back(std::make_unique<migration::NodeCrDaemon>(
        *nla, *job_, *agents_[static_cast<std::size_t>(daemons_.size())], opts));
  }
  mm_ = std::make_unique<migration::MigrationManager>(*jm_, *job_, *login_agent_, opts);
  return *job_;
}

sim::Task Cluster::start(mpr::Job::AppMain main) {
  JOBMIG_EXPECTS_MSG(job_ != nullptr, "create_job() first");
  co_await jm_->launch(*job_);
  for (auto& d : daemons_) d->start();
  mm_->start_request_listener();
  job_->launch_app(std::move(main));
}

ManagedJob& Cluster::add_job(std::string name, std::vector<int> compute_idxs,
                             int ranks_per_node, std::uint64_t image_bytes_per_rank) {
  JOBMIG_EXPECTS_MSG(job_ == nullptr, "create_job and add_job are mutually exclusive");
  JOBMIG_EXPECTS(ranks_per_node >= 1);
  JOBMIG_EXPECTS_MSG(!compute_idxs.empty(), "a job needs at least one compute node");
  for (int idx : compute_idxs) {
    JOBMIG_EXPECTS_MSG(idx >= 0 && idx < cfg_.compute_nodes,
                       "add_job: index is not a compute node");
    for (const auto& other : managed_) {
      for (int used : other->compute_nodes) {
        JOBMIG_EXPECTS_MSG(used != idx, "add_job: compute node already owned by another job");
      }
    }
  }

  auto mj = std::make_unique<ManagedJob>();
  mj->job_id = next_job_id_++;
  mj->name = std::move(name);
  mj->compute_nodes = compute_idxs;
  mj->job = std::make_unique<mpr::Job>(engine_, cfg_.cal);
  mj->job->set_job_id(mj->job_id);
  mj->job->set_name(mj->name);

  const int ranks = static_cast<int>(compute_idxs.size()) * ranks_per_node;
  for (int r = 0; r < ranks; ++r) {
    const std::size_t node = static_cast<std::size_t>(compute_idxs[static_cast<std::size_t>(
        r / ranks_per_node)]);
    mj->job->add_proc(r, envs_[node], image_bytes_per_rank,
                      (static_cast<std::uint64_t>(mj->job_id) << 32) | 0xA11CE000u |
                          static_cast<std::uint64_t>(r));
  }

  // Private launcher machinery: the job's compute nodes first, then every
  // spare (any of them can be adopted in Phase 3; the orchestrator's
  // placement engine decides which one actually is).
  mj->jm = std::make_unique<launch::JobManager>(engine_, *login_agent_, cfg_.launch_fanout);
  std::vector<int> node_idxs = compute_idxs;
  for (int s = cfg_.compute_nodes; s < node_count(); ++s) node_idxs.push_back(s);
  for (int idx : node_idxs) {
    const auto i = static_cast<std::size_t>(idx);
    mj->nlas.push_back(std::make_unique<launch::NodeLaunchAgent>(
        envs_[i], *agents_[i],
        idx < cfg_.compute_nodes ? launch::NlaState::kReady : launch::NlaState::kSpare));
    mj->jm->register_nla(*mj->nlas.back());
    mj->daemons.push_back(std::make_unique<migration::NodeCrDaemon>(
        *mj->nlas.back(), *mj->job, *agents_[i], cfg_.mig));
  }
  mj->mm = std::make_unique<migration::MigrationManager>(*mj->jm, *mj->job, *login_agent_,
                                                         cfg_.mig);
  managed_.push_back(std::move(mj));
  return *managed_.back();
}

sim::Task Cluster::start_managed(ManagedJob& mj, mpr::Job::AppMain main) {
  co_await mj.jm->launch(*mj.job);
  for (auto& d : mj.daemons) d->start();
  mj.job->launch_app(std::move(main));
}

ManagedJob* Cluster::managed_job(int job_id) {
  for (auto& mj : managed_) {
    if (mj->job_id == job_id) return mj.get();
  }
  return nullptr;
}

migration::MigrationManager& Cluster::migration_manager() {
  JOBMIG_EXPECTS_MSG(mm_ != nullptr, "create_job() first");
  return *mm_;
}

migration::UserTrigger& Cluster::user_trigger() { return *user_trigger_; }

sim::Task Cluster::inject_node_death(int idx) {
  const std::string name = node_name(idx);
  telemetry::flight_note("failure", "node death injected: " + name);
  telemetry::count("cluster.node_deaths");
  // Fail-stop: the node's FTB agent drops every link (children re-parent
  // via their ancestor fallbacks; the node's daemons go silent).
  agents_[static_cast<std::size_t>(idx)]->shutdown();
  // The death announcement reaches the backplane from the login side — in
  // a real deployment the IPMI/health path notices the silence; the sim
  // collapses that detection latency to a direct publish.
  ftb::FtbClient reporter(*login_agent_, "death_reporter");
  ftb::FtbEvent ev(migration::kMigSpace, migration::kEvNodeDead, ftb::Severity::kFatal,
                   migration::encode_kv({{"host", name}}));
  co_await reporter.publish(std::move(ev));
}

void Cluster::enable_health_monitoring(sim::Duration poll_interval) {
  JOBMIG_EXPECTS_MSG(pollers_.empty(), "health monitoring already enabled");
  for (int n = 0; n < cfg_.compute_nodes; ++n) {
    pollers_.push_back(std::make_unique<health::IpmiPoller>(
        engine_, *sensors_[static_cast<std::size_t>(n)], *agents_[static_cast<std::size_t>(n)],
        poll_interval));
    pollers_.back()->start();
  }
  health_trigger_ = std::make_unique<migration::HealthTrigger>(engine_, *login_agent_);
  health_trigger_->start();
}

void Cluster::stop_health_monitoring() {
  for (auto& p : pollers_) p->stop();
  if (health_trigger_) health_trigger_->stop();
}

std::unique_ptr<migration::CheckpointRestart> Cluster::make_cr_local() {
  JOBMIG_EXPECTS(job_ != nullptr);
  return std::make_unique<migration::CheckpointRestart>(
      *job_, [this](int rank) -> storage::FileSystem& { return *job_->node_of(rank).scratch; });
}

std::unique_ptr<migration::CheckpointRestart> Cluster::make_cr_pvfs() {
  JOBMIG_EXPECTS(job_ != nullptr);
  JOBMIG_EXPECTS_MSG(pvfs_ != nullptr, "cluster built without PVFS");
  return std::make_unique<migration::CheckpointRestart>(
      *job_, [this](int) -> storage::FileSystem& { return *pvfs_; });
}

}  // namespace jobmig::cluster
