#pragma once

#include <memory>
#include <string>
#include <vector>

#include "jobmig/ftb/ftb.hpp"
#include "jobmig/health/health.hpp"
#include "jobmig/launch/launch.hpp"
#include "jobmig/migration/controller.hpp"
#include "jobmig/migration/cr_baseline.hpp"
#include "jobmig/migration/triggers.hpp"
#include "jobmig/mpr/job.hpp"
#include "jobmig/storage/filesystem.hpp"

/// Top-level facade: assembles the simulated testbed the paper evaluates on
/// — login node, compute nodes and hot spares on one DDR InfiniBand switch
/// plus a GigE maintenance network, FTB agent tree, per-node local disks,
/// a shared PVFS instance, the ScELA launcher, per-node health sensors and
/// the migration framework. This is the entry point examples and benches
/// build on.
namespace jobmig::cluster {

struct ClusterConfig {
  int compute_nodes = 8;
  int spare_nodes = 1;
  std::size_t launch_fanout = 4;
  /// FTB agent topology: 0 = every node's agent attaches straight to the
  /// login agent (a star); k > 0 = k-ary tree rooted at the login agent,
  /// each agent carrying its full ancestor chain as self-healing fallbacks.
  std::size_t ftb_fanout = 0;
  bool build_pvfs = true;
  sim::Calibration cal{};
  migration::MigrationOptions mig{};
};

/// One orchestrator-managed job plus its private copy of the launch and
/// migration machinery. Managed jobs occupy disjoint compute-node sets and
/// share the cluster's spare pool: each job registers every spare in its own
/// JobManager (so Phase 3 can adopt any of them), while the orchestrator's
/// placement engine is the single authority for which spare is actually
/// free. Job ids start at 1; id 0 stays reserved for the legacy single-job
/// mode, whose telemetry tracks and FTB spaces are pinned by golden tests.
struct ManagedJob {
  int job_id = 0;
  std::string name;
  std::vector<int> compute_nodes;  // cluster node indices hosting ranks
  std::unique_ptr<mpr::Job> job;
  std::unique_ptr<launch::JobManager> jm;
  std::vector<std::unique_ptr<launch::NodeLaunchAgent>> nlas;
  std::vector<std::unique_ptr<migration::NodeCrDaemon>> daemons;
  std::unique_ptr<migration::MigrationManager> mm;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterConfig cfg = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return engine_; }
  const ClusterConfig& config() const { return cfg_; }

  // ---- Infrastructure access -------------------------------------------
  int node_count() const { return cfg_.compute_nodes + cfg_.spare_nodes; }
  /// Node environments: compute nodes first, then spares.
  mpr::NodeEnv& node_env(int idx);
  std::string node_name(int idx) const;
  ib::Fabric& fabric() { return *fabric_; }
  net::Network& ethernet() { return *net_; }
  storage::ParallelFs& pvfs();
  ftb::FtbAgent& login_agent() { return *login_agent_; }
  ftb::FtbAgent& node_agent(int idx) { return *agents_.at(static_cast<std::size_t>(idx)); }
  launch::JobManager& job_manager() { return *jm_; }
  health::SensorModel& sensor(int idx) { return *sensors_.at(static_cast<std::size_t>(idx)); }

  // ---- Job lifecycle -----------------------------------------------------
  /// Create the (single) job: `ranks_per_node` ranks on every compute node,
  /// each with an image of `image_bytes_per_rank`.
  mpr::Job& create_job(int ranks_per_node, std::uint64_t image_bytes_per_rank);
  mpr::Job& job() { return *job_; }
  bool has_job() const { return job_ != nullptr; }

  /// Launch the job through the spawn tree, start the per-node migration
  /// daemons and the migration manager, and run `main` on every rank.
  [[nodiscard]] sim::Task start(mpr::Job::AppMain main);

  // ---- Multi-job (orchestrator) mode -------------------------------------
  /// Add a managed job on an explicit, disjoint set of compute-node indices
  /// (`ranks_per_node` ranks on each). Mutually exclusive with create_job():
  /// the legacy path keeps its single-job invariants bit-identical.
  ManagedJob& add_job(std::string name, std::vector<int> compute_idxs, int ranks_per_node,
                      std::uint64_t image_bytes_per_rank);
  /// Launch a managed job and start its migration daemons. The migration
  /// manager's request listener is NOT started: the orchestrator drives
  /// cycles directly with granted leases.
  [[nodiscard]] sim::Task start_managed(ManagedJob& mj, mpr::Job::AppMain main);
  const std::vector<std::unique_ptr<ManagedJob>>& managed_jobs() const { return managed_; }
  /// Managed job by id (nullptr if unknown).
  ManagedJob* managed_job(int job_id);

  // ---- Fault-tolerance machinery ----------------------------------------
  migration::MigrationManager& migration_manager();
  migration::UserTrigger& user_trigger();
  /// Simulate a fail-stop node death: the node's FTB agent drops all links
  /// and FTB_NODE_DEAD is broadcast from the login agent, aborting any
  /// in-flight migration cycle (which dumps the flight recorder).
  [[nodiscard]] sim::Task inject_node_death(int idx);
  /// Start IPMI pollers on every compute node plus the health trigger.
  void enable_health_monitoring(sim::Duration poll_interval = sim::Duration::sec(5));
  /// Stop the pollers and the health trigger (e.g. at job end).
  void stop_health_monitoring();
  /// CR baseline writing to each rank's node-local disk.
  std::unique_ptr<migration::CheckpointRestart> make_cr_local();
  /// CR baseline writing to the shared PVFS.
  std::unique_ptr<migration::CheckpointRestart> make_cr_pvfs();

 private:
  sim::Engine& engine_;
  ClusterConfig cfg_;
  std::unique_ptr<ib::Fabric> fabric_;
  std::unique_ptr<net::Network> net_;
  net::Host* login_host_ = nullptr;
  std::unique_ptr<ftb::FtbAgent> login_agent_;
  std::vector<std::unique_ptr<storage::LocalFs>> disks_;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs_;
  std::vector<std::unique_ptr<ftb::FtbAgent>> agents_;
  std::vector<mpr::NodeEnv> envs_;
  std::vector<std::unique_ptr<launch::NodeLaunchAgent>> nlas_;
  std::unique_ptr<storage::ParallelFs> pvfs_;
  std::unique_ptr<launch::JobManager> jm_;
  std::vector<std::unique_ptr<health::SensorModel>> sensors_;
  std::vector<std::unique_ptr<health::IpmiPoller>> pollers_;
  std::unique_ptr<migration::HealthTrigger> health_trigger_;
  std::unique_ptr<migration::UserTrigger> user_trigger_;
  std::unique_ptr<mpr::Job> job_;
  std::vector<std::unique_ptr<migration::NodeCrDaemon>> daemons_;
  std::unique_ptr<migration::MigrationManager> mm_;
  std::vector<std::unique_ptr<ManagedJob>> managed_;
  int next_job_id_ = 1;
};

}  // namespace jobmig::cluster
