#include "jobmig/net/network.hpp"

#include <algorithm>

#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::net {

namespace {
// Fabric-wide tallies shared by every stream; interned so the per-message
// hit is a pointer bump, not a registry lookup.
telemetry::InternedCounter g_tcp_bytes{"net.tcp.bytes"};
telemetry::InternedCounter g_tcp_msgs{"net.tcp.msgs"};
}  // namespace

Stream::Stream(Network& net, std::shared_ptr<detail::StreamCore> core, int side)
    : net_(net), core_(std::move(core)), side_(side) {
  Host* src = net_.host(core_->hosts[side_]);
  Host* dst = net_.host(core_->hosts[1 - side_]);
  if (src != nullptr && dst != nullptr) {
    tx_bytes_.rename("net.tcp." + src->name() + "->" + dst->name());
  }
}

Stream::~Stream() { close(); }

sim::Task Stream::send(sim::ByteSpan data) {
  detail::Pipe& pipe = core_->pipes[side_];
  if (pipe.closed) co_return;  // connection reset: bytes silently dropped
  const sim::EthParams& p = net_.params();
  Host* dst = net_.host(core_->hosts[1 - side_]);
  JOBMIG_ASSERT(dst != nullptr);
  co_await sim::sleep_for(p.per_msg_overhead);
  co_await dst->ingress().transfer(data.size());
  co_await sim::sleep_for(p.latency);
  if (pipe.closed) co_return;  // torn down while in flight: bytes are lost
  dst->add_bytes_in(data.size());
  net_.account(data.size());
  // Per-stream byte counters mirroring the ib.link.* fabric counters, so the
  // --json-out metrics show GigE control traffic next to the IB data path.
  // Interned handles: each hit is a branch + pointer bump, no string build.
  tx_bytes_.add(data.size());
  g_tcp_bytes.add(data.size());
  g_tcp_msgs.add();
  pipe.data.insert(pipe.data.end(), data.begin(), data.end());
  pipe.readable.set();
}

sim::ValueTask<sim::Bytes> Stream::recv_some(std::size_t max_len) {
  detail::Pipe& pipe = core_->pipes[1 - side_];  // peer writes here
  while (pipe.data.empty()) {
    if (pipe.closed) co_return sim::Bytes{};
    co_await pipe.readable.wait();
    pipe.readable.reset();
  }
  const std::size_t n = std::min(max_len, pipe.data.size());
  sim::Bytes out(pipe.data.begin(), pipe.data.begin() + static_cast<std::ptrdiff_t>(n));
  pipe.data.erase(pipe.data.begin(), pipe.data.begin() + static_cast<std::ptrdiff_t>(n));
  co_return out;
}

sim::ValueTask<bool> Stream::recv_exact(sim::MutableByteSpan out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    sim::Bytes chunk = co_await recv_some(out.size() - filled);
    if (chunk.empty()) co_return false;  // peer closed early
    std::copy(chunk.begin(), chunk.end(), out.begin() + static_cast<std::ptrdiff_t>(filled));
    filled += chunk.size();
  }
  co_return true;
}

sim::Task Stream::send_frame(sim::ByteSpan payload) {
  sim::Bytes framed;
  framed.reserve(payload.size() + 4);
  sim::put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  framed.insert(framed.end(), payload.begin(), payload.end());
  co_await send(framed);
}

sim::ValueTask<std::optional<sim::Bytes>> Stream::recv_frame() {
  sim::Bytes header(4);
  if (!co_await recv_exact(header)) co_return std::nullopt;
  const std::uint32_t len = sim::get_u32(header, 0);
  sim::Bytes payload(len);
  if (len > 0 && !co_await recv_exact(payload)) co_return std::nullopt;
  co_return std::optional<sim::Bytes>(std::move(payload));
}

void Stream::close() {
  if (!core_) return;
  for (auto& pipe : core_->pipes) {
    pipe.closed = true;
    pipe.readable.set();
  }
}

bool Stream::peer_closed() const { return core_->pipes[1 - side_].closed; }

Listener::Listener(Host& host, Port port) : host_(host), port_(port) { host_.bind(port, this); }

Listener::~Listener() { close(); }

sim::ValueTask<StreamPtr> Listener::accept() {
  auto next = co_await backlog_.recv();
  co_return next ? std::move(*next) : nullptr;
}

void Listener::close() {
  if (!open_) return;
  open_ = false;
  host_.unbind(port_);
  backlog_.close();
}

Host::Host(Network& net, HostId id, std::string name)
    : net_(net), id_(id), name_(std::move(name)) {
  ingress_ = std::make_unique<sim::FairShareServer>(net_.engine(), net_.params().bandwidth_Bps);
}

std::unique_ptr<Listener> Host::listen(Port port) {
  return std::make_unique<Listener>(*this, port);
}

void Host::bind(Port port, Listener* l) {
  JOBMIG_EXPECTS_MSG(!listeners_.contains(port), "port already bound");
  listeners_[port] = l;
}

void Host::unbind(Port port) { listeners_.erase(port); }

Listener* Host::listener_at(Port port) {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? nullptr : it->second;
}

sim::ValueTask<StreamPtr> Host::connect(HostId remote, Port port) {
  const sim::EthParams& p = net_.params();
  co_await sim::sleep_for(p.latency * 3);  // SYN / SYN-ACK / ACK
  Host* peer = net_.host(remote);
  if (peer == nullptr || !peer->online() || !online_) co_return nullptr;
  Listener* l = peer->listener_at(port);
  if (l == nullptr || !l->open_) co_return nullptr;

  auto core = std::make_shared<detail::StreamCore>();
  core->hosts[0] = id_;
  core->hosts[1] = remote;
  auto local_end = std::make_unique<Stream>(net_, core, 0);
  auto remote_end = std::make_unique<Stream>(net_, core, 1);
  if (!l->backlog_.try_send(std::move(remote_end))) co_return nullptr;  // backlog full
  co_return local_end;
}

Network::Network(sim::Engine& engine, sim::EthParams params)
    : engine_(engine), params_(params) {}

Host& Network::add_host(std::string name) {
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::make_unique<Host>(*this, id, std::move(name)));
  return *hosts_.back();
}

Host* Network::host(HostId id) { return id < hosts_.size() ? hosts_[id].get() : nullptr; }

}  // namespace jobmig::net
