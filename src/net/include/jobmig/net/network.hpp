#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/telemetry/telemetry.hpp"

/// Switched-Ethernet + TCP-like stream model: the cluster's GigE maintenance
/// network. The FTB backplane runs over it (as in the paper's testbed), and
/// the socket-based migration baseline (§III-B's critique of Wang et al.'s
/// TCP transport) uses it to move checkpoint streams. Reliable in-order byte
/// streams with listen/connect/accept; bytes are charged on the receiving
/// host's ingress fair-share server plus per-message protocol overhead
/// (the memory-copy-heavy socket path the paper contrasts with RDMA).
namespace jobmig::net {

using HostId = std::uint32_t;
using Port = std::uint16_t;

class Host;
class Network;

namespace detail {

/// One direction of a stream: an unbounded reliable byte pipe.
struct Pipe {
  std::deque<std::byte> data;
  bool closed = false;
  sim::Event readable;
};

/// Shared connection state; endpoints index halves symmetrically.
struct StreamCore {
  Pipe pipes[2];  // pipes[i] carries bytes written by endpoint i
  HostId hosts[2] = {0, 0};
};

}  // namespace detail

/// One endpoint of an established connection.
class Stream {
 public:
  Stream(Network& net, std::shared_ptr<detail::StreamCore> core, int side);
  ~Stream();
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Transmit `data`; completes when the bytes have been accepted by the
  /// receiving host (wire time + protocol overhead charged).
  [[nodiscard]] sim::Task send(sim::ByteSpan data);

  /// Receive up to `max_len` bytes; blocks until data is available.
  /// Returns an empty vector when the peer has closed and the pipe drained.
  [[nodiscard]] sim::ValueTask<sim::Bytes> recv_some(std::size_t max_len);

  /// Receive exactly out.size() bytes; false if the peer closed early.
  [[nodiscard]] sim::ValueTask<bool> recv_exact(sim::MutableByteSpan out);

  /// Length-prefixed message framing on top of the byte stream.
  [[nodiscard]] sim::Task send_frame(sim::ByteSpan payload);
  /// nullopt on orderly close.
  [[nodiscard]] sim::ValueTask<std::optional<sim::Bytes>> recv_frame();

  void close();
  bool peer_closed() const;
  HostId remote_host() const { return core_->hosts[1 - side_]; }
  HostId local_host() const { return core_->hosts[side_]; }

 private:
  Network& net_;
  std::shared_ptr<detail::StreamCore> core_;
  int side_;
  // Per-stream byte counter, named once at construction so send() never
  // builds a metric-name string on the per-message path.
  telemetry::InternedCounter tx_bytes_;
};

using StreamPtr = std::unique_ptr<Stream>;

class Listener {
 public:
  Listener(Host& host, Port port);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Wait for the next inbound connection; nullptr after close().
  [[nodiscard]] sim::ValueTask<StreamPtr> accept();
  void close();
  Port port() const { return port_; }

 private:
  friend class Host;  // connect() pushes into the backlog
  Host& host_;
  Port port_;
  sim::Channel<StreamPtr> backlog_{64};
  bool open_ = true;
};

class Host {
 public:
  Host(Network& net, HostId id, std::string name);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  HostId id() const { return id_; }
  const std::string& name() const { return name_; }
  Network& network() { return net_; }

  /// Bind a listening port (throws ContractViolation if already bound).
  [[nodiscard]] std::unique_ptr<Listener> listen(Port port);

  /// Connect to a listening port on `remote`; nullptr if nothing listens
  /// (connection refused) or the host is unreachable.
  [[nodiscard]] sim::ValueTask<StreamPtr> connect(HostId remote, Port port);

  sim::FairShareServer& ingress() { return *ingress_; }
  std::uint64_t bytes_in() const { return bytes_in_; }
  void add_bytes_in(std::uint64_t n) { bytes_in_ += n; }

  /// Take the host offline: refuses new connections and marks all
  /// subsequently-used streams broken (used for failure injection).
  void set_online(bool online) { online_ = online; }
  bool online() const { return online_; }

 private:
  friend class Listener;
  void bind(Port port, Listener* l);
  void unbind(Port port);
  Listener* listener_at(Port port);

  Network& net_;
  HostId id_;
  std::string name_;
  bool online_ = true;
  std::map<Port, Listener*> listeners_;
  std::unique_ptr<sim::FairShareServer> ingress_;
  std::uint64_t bytes_in_ = 0;
};

class Network {
 public:
  explicit Network(sim::Engine& engine, sim::EthParams params = {});

  Host& add_host(std::string name);
  Host* host(HostId id);
  sim::Engine& engine() { return engine_; }
  const sim::EthParams& params() const { return params_; }
  std::size_t host_count() const { return hosts_.size(); }
  std::uint64_t total_bytes() const { return total_bytes_; }
  void account(std::uint64_t n) { total_bytes_ += n; }

  /// Conservative lookahead bound for the parallel engine mode (DESIGN.md
  /// §9): no cross-host delivery lands sooner than the one-way wire latency.
  sim::Duration suggested_lookahead() const { return params_.latency; }

 private:
  sim::Engine& engine_;
  sim::EthParams params_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace jobmig::net
