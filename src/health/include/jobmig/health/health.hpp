#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "jobmig/ftb/ftb.hpp"
#include "jobmig/sim/rng.hpp"
#include "jobmig/sim/task.hpp"

/// Node-health substrate: IPMI-like sensors, a polling daemon, and a simple
/// threshold/trend failure predictor. Its only job in the paper's framework
/// is to be *a* source of migration triggers — it publishes
/// health-deteriorating events onto the FTB backplane, where the migration
/// trigger component picks them up (paper §III, "Migration Trigger").
namespace jobmig::health {

/// FTB event vocabulary published by this module.
inline constexpr const char* kHealthSpace = "FTB.NODE_HEALTH";
inline constexpr const char* kEventTempWarning = "TEMP_WARNING";
inline constexpr const char* kEventEccWarning = "ECC_WARNING";
inline constexpr const char* kEventFailurePredicted = "FAILURE_PREDICTED";

/// One node's thermal/ECC condition. Healthy nodes hover around a baseline
/// with small noise; inject_degradation() starts a linear ramp (e.g. a
/// failing fan) that the poller/predictor should catch before it becomes
/// fatal.
class SensorModel {
 public:
  SensorModel(std::string hostname, std::uint64_t seed, double baseline_celsius = 52.0);

  const std::string& hostname() const { return hostname_; }

  /// Instantaneous temperature at virtual time `now`.
  double temperature(sim::TimePoint now);
  /// Correctable-ECC error count so far.
  std::uint64_t ecc_errors(sim::TimePoint now);

  /// Begin deteriorating at `start`, ramping `celsius_per_second` and
  /// accumulating ECC errors.
  void inject_degradation(sim::TimePoint start, double celsius_per_second = 0.8);
  bool degrading() const { return degrade_start_.has_value(); }

 private:
  std::string hostname_;
  sim::Xoshiro256 rng_;
  double baseline_;
  std::optional<sim::TimePoint> degrade_start_;
  double ramp_rate_ = 0.0;
};

/// Threshold + trend predictor over a sliding window of samples.
/// Fires when either an absolute threshold is crossed or the linear trend
/// projects a breach within the horizon — the "failure prediction models"
/// role of the paper's citations [6], [7].
class HealthPredictor {
 public:
  struct Config {
    double warn_threshold_celsius = 68.0;
    double fatal_threshold_celsius = 80.0;
    sim::Duration horizon = sim::Duration::sec(60);
    std::size_t window = 8;
    /// Cumulative correctable-ECC errors that predict a DIMM failure
    /// (the second predictor class the paper's citations [6],[7] cover).
    std::uint64_t ecc_error_threshold = 40;
  };

  HealthPredictor() = default;
  explicit HealthPredictor(Config cfg) : cfg_(cfg) {}

  /// Feed one sample; returns true when a failure is predicted.
  bool add_sample(sim::TimePoint when, double temperature);
  /// Feed an ECC error count; returns true when it predicts failure.
  bool add_ecc_count(std::uint64_t cumulative_errors) const {
    return cumulative_errors >= cfg_.ecc_error_threshold;
  }
  const Config& config() const { return cfg_; }
  double last_trend_celsius_per_sec() const { return last_trend_; }

 private:
  Config cfg_;
  std::deque<std::pair<sim::TimePoint, double>> samples_;
  double last_trend_ = 0.0;
};

/// Per-node IPMI polling daemon: samples the sensor on an interval, runs
/// the predictor, and publishes warnings / predictions to FTB.
class IpmiPoller {
 public:
  IpmiPoller(sim::Engine& engine, SensorModel& sensor, ftb::FtbAgent& agent,
             sim::Duration interval = sim::Duration::sec(5),
             HealthPredictor::Config predictor_cfg = HealthPredictor::Config());

  /// Begin polling (spawned; runs until stop()).
  void start();
  void stop() { running_ = false; }
  bool running() const { return running_; }
  std::uint64_t samples_taken() const { return samples_taken_; }
  bool prediction_fired() const { return prediction_fired_; }

 private:
  sim::Task poll_loop();

  sim::Engine& engine_;
  SensorModel& sensor_;
  ftb::FtbClient ftb_;
  sim::Duration interval_;
  HealthPredictor predictor_;
  bool running_ = false;
  bool prediction_fired_ = false;
  bool ecc_warned_ = false;
  std::uint64_t samples_taken_ = 0;
};

}  // namespace jobmig::health
