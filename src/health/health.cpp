#include "jobmig/health/health.hpp"

#include <algorithm>

namespace jobmig::health {

SensorModel::SensorModel(std::string hostname, std::uint64_t seed, double baseline_celsius)
    : hostname_(std::move(hostname)), rng_(seed), baseline_(baseline_celsius) {}

double SensorModel::temperature(sim::TimePoint now) {
  const double noise = rng_.uniform(-0.7, 0.7);
  double value = baseline_ + noise;
  if (degrade_start_ && now >= *degrade_start_) {
    value += (now - *degrade_start_).to_seconds() * ramp_rate_;
  }
  return value;
}

std::uint64_t SensorModel::ecc_errors(sim::TimePoint now) {
  if (!degrade_start_ || now < *degrade_start_) return 0;
  // Degrading DIMMs log correctable errors roughly linearly.
  return static_cast<std::uint64_t>((now - *degrade_start_).to_seconds() * 2.0);
}

void SensorModel::inject_degradation(sim::TimePoint start, double celsius_per_second) {
  degrade_start_ = start;
  ramp_rate_ = celsius_per_second;
}

bool HealthPredictor::add_sample(sim::TimePoint when, double temperature) {
  samples_.emplace_back(when, temperature);
  while (samples_.size() > cfg_.window) samples_.pop_front();

  if (temperature >= cfg_.warn_threshold_celsius) return true;
  if (samples_.size() < 3) return false;

  // Least-squares slope over the window.
  const double t0 = samples_.front().first.to_seconds();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(samples_.size());
  for (const auto& [tp, temp] : samples_) {
    const double x = tp.to_seconds() - t0;
    sx += x;
    sy += temp;
    sxx += x * x;
    sxy += x * temp;
  }
  const double denom = n * sxx - sx * sx;
  if (denom <= 1e-9) return false;
  last_trend_ = (n * sxy - sx * sy) / denom;
  if (last_trend_ <= 0.0) return false;
  const double projected =
      temperature + last_trend_ * cfg_.horizon.to_seconds();
  return projected >= cfg_.fatal_threshold_celsius;
}

IpmiPoller::IpmiPoller(sim::Engine& engine, SensorModel& sensor, ftb::FtbAgent& agent,
                       sim::Duration interval, HealthPredictor::Config predictor_cfg)
    : engine_(engine),
      sensor_(sensor),
      ftb_(agent, "ipmi:" + sensor.hostname()),
      interval_(interval),
      predictor_(predictor_cfg) {}

void IpmiPoller::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  engine_.spawn(poll_loop());
}

sim::Task IpmiPoller::poll_loop() {
  while (running_) {
    co_await sim::sleep_for(interval_);
    if (!running_) break;
    const sim::TimePoint now = engine_.now();
    const double temp = sensor_.temperature(now);
    const std::uint64_t ecc = sensor_.ecc_errors(now);
    ++samples_taken_;
    const bool predicted =
        predictor_.add_sample(now, temp) || predictor_.add_ecc_count(ecc);
    if (temp >= predictor_.config().warn_threshold_celsius) {
      co_await ftb_.publish(ftb::FtbEvent{kHealthSpace, kEventTempWarning,
                                          ftb::Severity::kWarning,
                                          sensor_.hostname()});
    }
    if (ecc > 0 && !ecc_warned_) {
      ecc_warned_ = true;
      co_await ftb_.publish(ftb::FtbEvent{kHealthSpace, kEventEccWarning,
                                          ftb::Severity::kWarning,
                                          sensor_.hostname()});
    }
    if (predicted && !prediction_fired_) {
      prediction_fired_ = true;
      co_await ftb_.publish(ftb::FtbEvent{kHealthSpace, kEventFailurePredicted,
                                          ftb::Severity::kError,
                                          sensor_.hostname()});
      // Keep polling (temperature keeps ramping) but fire the prediction
      // once; the migration trigger acts on the first event.
    }
  }
}

}  // namespace jobmig::health
