#include "jobmig/orch/node_lock.hpp"

#include <algorithm>

#include "jobmig/sim/assert.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::orch {

void NodeSetLockManager::Lease::release() {
  if (mgr_ == nullptr) return;
  std::exchange(mgr_, nullptr)->release_nodes(nodes_);
}

sim::ValueTask<NodeSetLockManager::Lease> NodeSetLockManager::acquire(
    std::vector<std::string> nodes, int priority) {
  JOBMIG_EXPECTS_MSG(!nodes.empty(), "lease on an empty node set");
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  // Uniform path: enqueue, pump, wait. When nothing conflicts the pump
  // grants immediately and the wait falls straight through (Event is set).
  Pending p;
  p.seq = next_seq_++;
  p.priority = priority;
  p.nodes = nodes;
  pending_.push_back(&p);
  pump();
  if (!p.granted.is_set()) {
    ++stats_.waits;
    telemetry::count("orch.lock.waits");
  }
  co_await p.granted.wait();
  JOBMIG_ASSERT_MSG(p.lease_id != 0, "woken without a grant");
  co_return Lease{this, std::move(nodes), p.lease_id};
}

void NodeSetLockManager::release_nodes(const std::vector<std::string>& nodes) {
  for (const std::string& n : nodes) {
    const std::size_t erased = held_.erase(n);
    JOBMIG_ASSERT_MSG(erased == 1, "released a node that was not held");
  }
  JOBMIG_ASSERT(active_ > 0);
  --active_;
  telemetry::gauge_set("orch.lock.active_leases", static_cast<double>(active_));
  pump();
}

void NodeSetLockManager::pump() {
  if (pending_.empty()) return;
  // Service order: priority desc, then arrival order.
  std::vector<Pending*> order = pending_;
  std::sort(order.begin(), order.end(), [](const Pending* a, const Pending* b) {
    if (a->priority != b->priority) return a->priority > b->priority;
    return a->seq < b->seq;
  });
  // Shadow set: nodes held plus nodes earlier (non-grantable) waiters are
  // queued on. A later waiter may only be granted nodes outside it.
  std::set<std::string> shadow = held_;
  for (Pending* p : order) {
    const bool free = std::none_of(p->nodes.begin(), p->nodes.end(),
                                   [&](const std::string& n) { return shadow.count(n) != 0; });
    if (!free) {
      shadow.insert(p->nodes.begin(), p->nodes.end());
      continue;
    }
    for (const std::string& n : p->nodes) {
      JOBMIG_ASSERT_MSG(held_.insert(n).second, "double-granted node");
      shadow.insert(n);
    }
    p->lease_id = next_lease_id_++;
    ++active_;
    ++stats_.grants;
    stats_.peak_concurrent = std::max(stats_.peak_concurrent, active_);
    telemetry::count("orch.lock.grants");
    telemetry::gauge_set("orch.lock.active_leases", static_cast<double>(active_));
    pending_.erase(std::find(pending_.begin(), pending_.end(), p));
    p->granted.set();
  }
}

}  // namespace jobmig::orch
