#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"

/// Per-node-set locking for concurrent migration cycles. A migration cycle
/// needs exclusive use of exactly two nodes — its source and its target —
/// yet the seed design serialized whole cycles behind one job-level mutex.
/// The lock manager instead grants a cycle a lease on its node *set*:
/// cycles touching disjoint node sets run concurrently, cycles sharing any
/// node queue. Ordering is priority-then-FIFO with a shadow-set scan, so an
/// urgent evacuation overtakes queued maintenance drains but a blocked
/// high-priority request can never be starved by lower-priority requests
/// slipping past it onto the nodes it is waiting for.
namespace jobmig::orch {

class NodeSetLockManager {
 public:
  /// Move-only RAII grant: holds its node set until destroyed or released.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept
        : mgr_(std::exchange(o.mgr_, nullptr)), nodes_(std::move(o.nodes_)), id_(o.id_) {}
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        mgr_ = std::exchange(o.mgr_, nullptr);
        nodes_ = std::move(o.nodes_);
        id_ = o.id_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    void release();
    bool valid() const { return mgr_ != nullptr; }
    std::uint64_t id() const { return id_; }
    const std::vector<std::string>& nodes() const { return nodes_; }

   private:
    friend class NodeSetLockManager;
    Lease(NodeSetLockManager* mgr, std::vector<std::string> nodes, std::uint64_t id)
        : mgr_(mgr), nodes_(std::move(nodes)), id_(id) {}

    NodeSetLockManager* mgr_ = nullptr;
    std::vector<std::string> nodes_;
    std::uint64_t id_ = 0;
  };

  NodeSetLockManager() = default;
  NodeSetLockManager(const NodeSetLockManager&) = delete;
  NodeSetLockManager& operator=(const NodeSetLockManager&) = delete;

  /// Acquire exclusive use of `nodes` (deduplicated; must be non-empty).
  /// Blocks in virtual time until no held lease overlaps. Higher `priority`
  /// requests are served first among waiters; equal priority is FIFO.
  [[nodiscard]] sim::ValueTask<Lease> acquire(std::vector<std::string> nodes, int priority = 0);

  bool is_held(const std::string& node) const { return held_.count(node) != 0; }
  std::size_t active_leases() const { return active_; }
  std::size_t pending_count() const { return pending_.size(); }

  struct Stats {
    std::uint64_t grants = 0;           // leases handed out
    std::uint64_t waits = 0;            // acquires that had to block
    std::size_t peak_concurrent = 0;    // max simultaneously-held leases
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    int priority = 0;
    std::vector<std::string> nodes;
    sim::Event granted;
    std::uint64_t lease_id = 0;  // assigned at grant time
  };

  friend class Lease;
  void release_nodes(const std::vector<std::string>& nodes);
  /// Grant every grantable waiter. Scans priority-desc / seq-asc; a waiter
  /// that cannot be granted shadows its nodes so nothing behind it in the
  /// order can claim them (no starvation of high-priority requests).
  void pump();

  std::set<std::string> held_;
  std::vector<Pending*> pending_;  // frames own the Pendings; order arbitrary
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_lease_id_ = 1;
  std::size_t active_ = 0;
  Stats stats_;
};

}  // namespace jobmig::orch
