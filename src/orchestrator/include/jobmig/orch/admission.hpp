#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"

/// Cluster-wide migration admission control: bounds how many cycles run at
/// once (each cycle stalls its whole job and moves gigabytes over the
/// fabric, so an unbounded burst of cycles degrades everyone). Excess
/// requests queue by priority — an evacuation triggered by a failure
/// prediction overtakes queued maintenance drains, never the other way
/// round — and equal priorities drain FIFO.
namespace jobmig::orch {

enum class CyclePriority : int {
  kMaintenance = 0,  // planned drain, no urgency
  kRebalance = 1,    // operator- or policy-initiated move
  kEvacuation = 2,   // predicted failure: get off the node now
};

std::string_view to_string(CyclePriority p);

class AdmissionController {
 public:
  /// Move-only RAII admission slot.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : ctrl_(std::exchange(o.ctrl_, nullptr)) {}
    Ticket& operator=(Ticket&& o) noexcept {
      if (this != &o) {
        release();
        ctrl_ = std::exchange(o.ctrl_, nullptr);
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { release(); }

    void release();
    bool valid() const { return ctrl_ != nullptr; }

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* c) : ctrl_(c) {}
    AdmissionController* ctrl_ = nullptr;
  };

  explicit AdmissionController(std::size_t max_concurrent);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Wait for an admission slot. Higher priorities jump the queue.
  [[nodiscard]] sim::ValueTask<Ticket> admit(CyclePriority priority);

  /// Raising the cap admits queued waiters immediately; lowering it only
  /// affects future admissions (running cycles finish).
  void set_max_concurrent(std::size_t cap);
  std::size_t max_concurrent() const { return cap_; }
  std::size_t in_flight() const { return in_flight_; }
  std::size_t queued() const { return pending_.size(); }

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t queued_total = 0;    // admissions that had to wait
    std::uint64_t overtakes = 0;       // grants that bypassed an older waiter
    std::size_t peak_in_flight = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    int priority = 0;
    sim::Event granted;
    bool done = false;
  };

  friend class Ticket;
  void release_slot();
  void pump();

  std::size_t cap_;
  std::size_t in_flight_ = 0;
  std::vector<Pending*> pending_;  // frames own the Pendings
  std::uint64_t next_seq_ = 1;
  Stats stats_;
};

}  // namespace jobmig::orch
