#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/scheduler.hpp"
#include "jobmig/orch/admission.hpp"
#include "jobmig/orch/evacuation.hpp"
#include "jobmig/orch/node_lock.hpp"
#include "jobmig/orch/placement.hpp"

/// Cluster-wide migration orchestrator: the control plane above the
/// paper's per-job migration framework. Where the paper migrates one job
/// away from one failing node, the orchestrator manages many jobs on
/// disjoint node sets sharing one spare pool, and runs their cycles
/// concurrently when — and only when — their node sets are disjoint:
///
///   admission  — bounds concurrent cycles cluster-wide; evacuations
///                overtake queued maintenance drains,
///   placement  — picks the target spare by health + load score,
///   node locks — lease {source, target} per cycle; disjoint leases
///                proceed in parallel, overlapping ones queue,
///   evacuation — fans a node/group drain out into per-job cycles, and
///                reacts to FAILURE_PREDICTED health events.
namespace jobmig::orch {

struct OrchestratorConfig {
  /// Cluster-wide cap on simultaneously-running migration cycles.
  std::size_t max_concurrent_cycles = 2;
  PlacementEngine::Config placement{};
  /// React to FAILURE_PREDICTED by evacuating the named node.
  bool auto_evacuate = true;
};

/// One orchestrated cycle, with the wall-clock (virtual) window it
/// occupied — overlapping windows of disjoint cycles are the concurrency
/// proof the tests and bench assert on.
struct CycleOutcome {
  migration::MigrationReport report;
  /// When the granted cycle began executing (post-admission, post-lease);
  /// request-entry time for cycles that aborted before getting a lease.
  sim::TimePoint started{};
  sim::TimePoint finished{};
  CyclePriority priority = CyclePriority::kRebalance;
  std::uint64_t lease_id = 0;  // 0 when the cycle never got a lease

  CycleOutcome() = default;
  CycleOutcome(const CycleOutcome&) = default;
  CycleOutcome(CycleOutcome&&) = default;
  CycleOutcome& operator=(const CycleOutcome&) = default;
  CycleOutcome& operator=(CycleOutcome&&) = default;
};

class Orchestrator {
 public:
  Orchestrator(cluster::Cluster& cluster, OrchestratorConfig cfg = {});
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  /// Begin listening for FAILURE_PREDICTED health events (spawned; runs
  /// until shutdown()).
  void start();
  void shutdown() { running_ = false; }
  bool running() const { return running_; }

  /// Register a job's checkpoint scheduler: a successful orchestrated
  /// cycle for that job prolongs its next coordinated checkpoint (§VI).
  void attach_checkpoint_scheduler(int job_id, migration::CheckpointScheduler& sched);

  /// Run one orchestrated migration cycle: admission slot -> source
  /// re-check -> spare reservation -> {source, target} lease -> granted
  /// cycle -> pool/scheduler bookkeeping. Returns an aborted outcome
  /// (never throws) when the source has nothing to migrate or the pool is
  /// exhausted.
  [[nodiscard]] sim::ValueTask<CycleOutcome> migrate_job(
      int job_id, std::string source_host, CyclePriority priority = CyclePriority::kRebalance);

  /// Drain every managed job off `host` (one cycle per job with ranks
  /// there), all cycles racing through admission control.
  [[nodiscard]] sim::ValueTask<std::vector<CycleOutcome>> evacuate_host(
      std::string host, CyclePriority priority = CyclePriority::kEvacuation);
  /// Planned drain of a node group (e.g. a rack ahead of maintenance).
  [[nodiscard]] sim::ValueTask<std::vector<CycleOutcome>> drain_nodes(
      std::vector<std::string> hosts, CyclePriority priority = CyclePriority::kMaintenance);

  /// Sample every pooled spare's sensor and feed the placement scores.
  void observe_spares();

  NodeSetLockManager& locks() { return locks_; }
  PlacementEngine& placement() { return placement_; }
  AdmissionController& admission() { return admission_; }
  EvacuationPlanner& planner() { return planner_; }

  /// Every cycle that reached the lease stage, in completion order.
  const std::vector<CycleOutcome>& history() const { return history_; }
  std::size_t evacuations_triggered() const { return evacuations_triggered_; }

 private:
  sim::Task health_loop();
  sim::Task auto_evacuate_host(std::string host);
  sim::Task run_evac_task(EvacTask t, CyclePriority priority, std::vector<CycleOutcome>* out);

  cluster::Cluster& cluster_;
  OrchestratorConfig cfg_;
  NodeSetLockManager locks_;
  PlacementEngine placement_;
  AdmissionController admission_;
  EvacuationPlanner planner_;
  ftb::FtbClient ftb_;
  bool running_ = false;
  std::map<int, migration::CheckpointScheduler*> ckpt_scheds_;
  std::vector<CycleOutcome> history_;
  std::set<std::string> evacuating_;  // hosts with an auto-evac in flight
  std::size_t evacuations_triggered_ = 0;
};

}  // namespace jobmig::orch
