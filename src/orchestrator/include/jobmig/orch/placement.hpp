#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "jobmig/health/health.hpp"
#include "jobmig/sim/time.hpp"

/// Spare-pool placement: the orchestrator's single authority for which
/// spare node a migration cycle may target. Every managed job registers all
/// spares in its own JobManager (so Phase 3 can adopt any of them), but
/// only the placement engine decides which one is actually free — it
/// tracks reservations, background load, and a per-spare health score fed
/// by the same predictor the IPMI pollers run, and hands out the
/// best-scoring healthy spare.
namespace jobmig::orch {

struct PlacementConfig {
  /// Combined score = health_weight * health + load_weight * (1 - load).
  double health_weight = 0.6;
  double load_weight = 0.4;
  health::HealthPredictor::Config predictor{};
};

class PlacementEngine {
 public:
  using Config = PlacementConfig;

  struct Spare {
    std::string host;
    double load = 0.0;        // [0,1] background utilization
    double last_temp = 0.0;   // most recent observed temperature (0 = none)
    bool reserved = false;    // handed to an in-flight cycle
    bool unhealthy = false;   // predictor fired or marked by hand
    health::HealthPredictor predictor;

    Spare() = default;
    Spare(const Spare&) = delete;
    Spare& operator=(const Spare&) = delete;
    Spare(Spare&&) = default;
    Spare& operator=(Spare&&) = default;
  };

  explicit PlacementEngine(Config cfg = {}) : cfg_(cfg) {}

  void add_spare(const std::string& host);
  bool has_spare(const std::string& host) const { return spares_.count(host) != 0; }

  /// Feed a temperature sample; flips the spare unhealthy when the
  /// predictor projects a failure (an unhealthy spare is never reserved).
  void observe_temperature(const std::string& host, sim::TimePoint when, double celsius);
  void set_load(const std::string& host, double load01);
  void mark_unhealthy(const std::string& host);
  void mark_healthy(const std::string& host);

  /// Reserve the best-scoring free healthy spare (excluding `exclude`,
  /// typically the migration source). nullopt when the pool is exhausted.
  std::optional<std::string> reserve(const std::string& exclude = {});
  /// The reserved spare was consumed by a finished cycle: it is a compute
  /// node now and leaves the pool.
  void consume(const std::string& host);
  /// The reservation fell through (cycle aborted): back to the pool.
  void restore(const std::string& host);

  /// Combined placement score in [0,1]; 0 for unknown/unhealthy spares.
  double score(const std::string& host) const;
  std::size_t free_count() const;
  std::size_t pool_size() const { return spares_.size(); }
  const std::map<std::string, Spare>& spares() const { return spares_; }

 private:
  double score_of(const Spare& s) const;

  Config cfg_;
  std::map<std::string, Spare> spares_;  // keyed by host: deterministic ties
};

}  // namespace jobmig::orch
