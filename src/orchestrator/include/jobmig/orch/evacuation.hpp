#pragma once

#include <string>
#include <vector>

#include "jobmig/cluster/cluster.hpp"

/// Evacuation planning: turn "get everything off these nodes" into a batch
/// of per-job migration cycles. A node can host ranks of at most one
/// managed job (jobs occupy disjoint compute-node sets), but a node
/// *group* being drained — say a rack losing its cooling — typically spans
/// several jobs; the planner emits one EvacTask per (job, node) pair and
/// the orchestrator runs them through admission control, so evacuations of
/// disjoint node pairs proceed concurrently.
namespace jobmig::orch {

/// One migration cycle's worth of evacuation work.
struct EvacTask {
  int job_id = 0;
  std::string source_host;
  std::vector<int> ranks;  // ranks currently on source_host

  // User-declared special members: EvacTask crosses coroutine boundaries
  // by value (see sim::Channel's GCC 12 note).
  EvacTask() = default;
  EvacTask(int job, std::string host, std::vector<int> r)
      : job_id(job), source_host(std::move(host)), ranks(std::move(r)) {}
  EvacTask(const EvacTask&) = default;
  EvacTask(EvacTask&&) = default;
  EvacTask& operator=(const EvacTask&) = default;
  EvacTask& operator=(EvacTask&&) = default;
};

struct EvacPlan {
  std::vector<std::string> hosts;  // nodes being drained
  std::vector<EvacTask> tasks;     // one per (job, host) with ranks present
  std::size_t total_ranks() const {
    std::size_t n = 0;
    for (const EvacTask& t : tasks) n += t.ranks.size();
    return n;
  }
};

class EvacuationPlanner {
 public:
  explicit EvacuationPlanner(cluster::Cluster& cluster) : cluster_(cluster) {}

  /// Plan the drain of one node.
  EvacPlan plan_host(const std::string& host) { return plan_nodes({host}); }
  /// Plan the drain of a node group (e.g. a rack ahead of maintenance).
  EvacPlan plan_nodes(std::vector<std::string> hosts);

 private:
  cluster::Cluster& cluster_;
};

}  // namespace jobmig::orch
