#include "jobmig/orch/placement.hpp"

#include <algorithm>

#include "jobmig/sim/assert.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::orch {

void PlacementEngine::add_spare(const std::string& host) {
  JOBMIG_EXPECTS_MSG(spares_.count(host) == 0, "spare registered twice");
  Spare s;
  s.host = host;
  s.predictor = health::HealthPredictor(cfg_.predictor);
  spares_.emplace(host, std::move(s));
  telemetry::gauge_set("orch.placement.pool_size", static_cast<double>(spares_.size()));
}

void PlacementEngine::observe_temperature(const std::string& host, sim::TimePoint when,
                                          double celsius) {
  auto it = spares_.find(host);
  if (it == spares_.end()) return;
  it->second.last_temp = celsius;
  if (it->second.predictor.add_sample(when, celsius) && !it->second.unhealthy) {
    it->second.unhealthy = true;
    telemetry::count("orch.placement.spares_marked_unhealthy");
  }
}

void PlacementEngine::set_load(const std::string& host, double load01) {
  auto it = spares_.find(host);
  if (it == spares_.end()) return;
  it->second.load = std::clamp(load01, 0.0, 1.0);
}

void PlacementEngine::mark_unhealthy(const std::string& host) {
  auto it = spares_.find(host);
  if (it != spares_.end()) it->second.unhealthy = true;
}

void PlacementEngine::mark_healthy(const std::string& host) {
  auto it = spares_.find(host);
  if (it != spares_.end()) it->second.unhealthy = false;
}

double PlacementEngine::score_of(const Spare& s) const {
  if (s.unhealthy) return 0.0;
  // Health component: 1 at a comfortable 40°C floor, 0 at the warn
  // threshold; a spare with no sample yet counts as fully healthy.
  double health = 1.0;
  if (s.last_temp > 0.0) {
    const double warn = cfg_.predictor.warn_threshold_celsius;
    constexpr double kCool = 40.0;
    health = std::clamp((warn - s.last_temp) / (warn - kCool), 0.0, 1.0);
  }
  const double load = 1.0 - std::clamp(s.load, 0.0, 1.0);
  return cfg_.health_weight * health + cfg_.load_weight * load;
}

double PlacementEngine::score(const std::string& host) const {
  auto it = spares_.find(host);
  return it == spares_.end() ? 0.0 : score_of(it->second);
}

std::optional<std::string> PlacementEngine::reserve(const std::string& exclude) {
  const Spare* best = nullptr;
  double best_score = -1.0;
  for (const auto& [host, s] : spares_) {
    if (s.reserved || s.unhealthy || host == exclude) continue;
    const double sc = score_of(s);
    if (sc > best_score) {  // strict: map order breaks ties by hostname
      best = &s;
      best_score = sc;
    }
  }
  if (best == nullptr) {
    telemetry::count("orch.placement.reserve_failed");
    return std::nullopt;
  }
  spares_.at(best->host).reserved = true;
  telemetry::count("orch.placement.reservations");
  return best->host;
}

void PlacementEngine::consume(const std::string& host) {
  auto it = spares_.find(host);
  JOBMIG_EXPECTS_MSG(it != spares_.end() && it->second.reserved,
                     "consume without a reservation");
  spares_.erase(it);
  telemetry::count("orch.placement.consumed");
  telemetry::gauge_set("orch.placement.pool_size", static_cast<double>(spares_.size()));
}

void PlacementEngine::restore(const std::string& host) {
  auto it = spares_.find(host);
  JOBMIG_EXPECTS_MSG(it != spares_.end() && it->second.reserved,
                     "restore without a reservation");
  it->second.reserved = false;
}

std::size_t PlacementEngine::free_count() const {
  std::size_t n = 0;
  for (const auto& [host, s] : spares_) {
    if (!s.reserved && !s.unhealthy) ++n;
  }
  return n;
}

}  // namespace jobmig::orch
