#include "jobmig/orch/admission.hpp"

#include <algorithm>

#include "jobmig/sim/assert.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::orch {

std::string_view to_string(CyclePriority p) {
  switch (p) {
    case CyclePriority::kMaintenance: return "maintenance";
    case CyclePriority::kRebalance: return "rebalance";
    case CyclePriority::kEvacuation: return "evacuation";
  }
  return "?";
}

void AdmissionController::Ticket::release() {
  if (ctrl_ == nullptr) return;
  std::exchange(ctrl_, nullptr)->release_slot();
}

AdmissionController::AdmissionController(std::size_t max_concurrent) : cap_(max_concurrent) {
  JOBMIG_EXPECTS(max_concurrent >= 1);
}

sim::ValueTask<AdmissionController::Ticket> AdmissionController::admit(CyclePriority priority) {
  Pending p;
  p.seq = next_seq_++;
  p.priority = static_cast<int>(priority);
  pending_.push_back(&p);
  pump();
  if (!p.done) {
    ++stats_.queued_total;
    telemetry::count("orch.admission.queued");
  }
  co_await p.granted.wait();
  JOBMIG_ASSERT(p.done);
  co_return Ticket{this};
}

void AdmissionController::set_max_concurrent(std::size_t cap) {
  JOBMIG_EXPECTS(cap >= 1);
  cap_ = cap;
  pump();
}

void AdmissionController::release_slot() {
  JOBMIG_ASSERT(in_flight_ > 0);
  --in_flight_;
  telemetry::gauge_set("orch.admission.in_flight", static_cast<double>(in_flight_));
  pump();
}

void AdmissionController::pump() {
  while (in_flight_ < cap_ && !pending_.empty()) {
    // Highest priority wins; FIFO within a priority.
    auto it = std::min_element(pending_.begin(), pending_.end(),
                               [](const Pending* a, const Pending* b) {
                                 if (a->priority != b->priority) return a->priority > b->priority;
                                 return a->seq < b->seq;
                               });
    Pending* p = *it;
    const bool bypassed = std::any_of(pending_.begin(), pending_.end(), [&](const Pending* q) {
      return q != p && q->seq < p->seq;
    });
    if (bypassed) {
      ++stats_.overtakes;
      telemetry::count("orch.admission.overtakes");
    }
    pending_.erase(it);
    p->done = true;
    ++in_flight_;
    ++stats_.admitted;
    stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
    telemetry::count("orch.admission.admitted");
    telemetry::gauge_set("orch.admission.in_flight", static_cast<double>(in_flight_));
    p->granted.set();
  }
}

}  // namespace jobmig::orch
