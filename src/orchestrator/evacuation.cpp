#include "jobmig/orch/evacuation.hpp"

#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::orch {

EvacPlan EvacuationPlanner::plan_nodes(std::vector<std::string> hosts) {
  EvacPlan plan;
  plan.hosts = std::move(hosts);
  for (const std::string& host : plan.hosts) {
    for (const auto& mj : cluster_.managed_jobs()) {
      launch::NodeLaunchAgent* nla = mj->jm->nla_for_host(host);
      if (nla == nullptr || nla->state() != launch::NlaState::kReady) continue;
      if (nla->local_ranks().empty()) continue;
      plan.tasks.emplace_back(mj->job_id, host, nla->local_ranks());
    }
  }
  telemetry::count("orch.evac.plans");
  telemetry::count("orch.evac.tasks_planned", plan.tasks.size());
  return plan;
}

}  // namespace jobmig::orch
