#include "jobmig/orch/orchestrator.hpp"

#include "jobmig/telemetry/flight_recorder.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::orch {

Orchestrator::Orchestrator(cluster::Cluster& cluster, OrchestratorConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      placement_(cfg.placement),
      admission_(cfg.max_concurrent_cycles),
      planner_(cluster),
      ftb_(cluster.login_agent(), "orchestrator") {
  for (int idx = cluster.config().compute_nodes; idx < cluster.node_count(); ++idx) {
    placement_.add_spare(cluster.node_name(idx));
  }
  ftb_.subscribe(ftb::Subscription{health::kHealthSpace, health::kEventFailurePredicted});
}

void Orchestrator::start() {
  JOBMIG_EXPECTS(!running_);
  running_ = true;
  cluster_.engine().spawn(health_loop());
}

void Orchestrator::attach_checkpoint_scheduler(int job_id, migration::CheckpointScheduler& sched) {
  ckpt_scheds_[job_id] = &sched;
}

void Orchestrator::observe_spares() {
  const sim::TimePoint now = cluster_.engine().now();
  for (int idx = cluster_.config().compute_nodes; idx < cluster_.node_count(); ++idx) {
    const std::string host = cluster_.node_name(idx);
    if (!placement_.has_spare(host)) continue;  // already consumed
    placement_.observe_temperature(host, now, cluster_.sensor(idx).temperature(now));
  }
}

sim::ValueTask<CycleOutcome> Orchestrator::migrate_job(int job_id, std::string source_host,
                                                       CyclePriority priority) {
  cluster::ManagedJob* mj = cluster_.managed_job(job_id);
  JOBMIG_EXPECTS_MSG(mj != nullptr, "migrate_job: unknown job id");

  CycleOutcome oc;
  oc.priority = priority;
  oc.started = cluster_.engine().now();
  oc.report.job_id = job_id;
  oc.report.source_host = source_host;

  telemetry::ScopedSpan span("orch", "cycle j" + std::to_string(job_id) + " " + source_host,
                             /*async=*/true);
  span.set_job(job_id);
  span.attr("priority", std::string(to_string(priority)));

  AdmissionController::Ticket ticket = co_await admission_.admit(priority);

  // Re-check after (possibly) queueing: another cycle — say an evacuation
  // racing a maintenance drain of the same node — may have emptied the
  // source while this request waited for its slot.
  launch::NodeLaunchAgent* src = mj->jm->nla_for_host(source_host);
  if (src == nullptr || src->state() != launch::NlaState::kReady ||
      src->local_ranks().empty()) {
    oc.report.aborted = true;
    oc.report.abort_reason = "nothing to migrate from " + source_host;
    oc.finished = cluster_.engine().now();
    telemetry::count("orch.cycles_skipped");
    co_return oc;
  }

  std::optional<std::string> target = placement_.reserve(source_host);
  if (!target) {
    oc.report.aborted = true;
    oc.report.abort_reason = "spare pool exhausted";
    oc.finished = cluster_.engine().now();
    telemetry::count("orch.no_spare");
    telemetry::flight_note("orch", "no spare for j" + std::to_string(job_id) + " off " +
                                       source_host,
                           0, 0, job_id);
    co_return oc;
  }

  {
    std::vector<std::string> node_set;
    node_set.push_back(source_host);
    node_set.push_back(*target);
    NodeSetLockManager::Lease lease =
        co_await locks_.acquire(std::move(node_set), static_cast<int>(priority));
    oc.lease_id = lease.id();
    span.attr("target", *target);
    span.attr("lease", std::to_string(lease.id()));
    telemetry::flight_note("orch", "lease " + std::to_string(lease.id()) + " " + source_host +
                                       " -> " + *target,
                           0, 0, job_id);

    migration::MigrationGrant grant;
    grant.target_host = *target;
    grant.lease_id = lease.id();
    grant.priority = static_cast<int>(priority);
    oc.started = cluster_.engine().now();  // cycle (not queue) entry
    oc.report = co_await mj->mm->migrate(source_host, grant);

    if (oc.report.aborted) {
      // If the cycle died before the target adopted ranks it is still a
      // spare and returns to the pool; otherwise it is spent.
      launch::NodeLaunchAgent* tgt = mj->jm->nla_for_host(*target);
      if (tgt != nullptr && tgt->state() == launch::NlaState::kSpare) {
        placement_.restore(*target);
      } else {
        placement_.consume(*target);
      }
      telemetry::count("orch.cycles_aborted");
    } else {
      placement_.consume(*target);
      telemetry::count("orch.cycles_completed");
      telemetry::observe_ns("orch.cycle_downtime_ns", oc.report.total());
      auto it = ckpt_scheds_.find(job_id);
      if (it != ckpt_scheds_.end()) it->second->notify_migration();
    }
    // Lease and ticket release here (RAII), before the outcome is recorded.
  }
  ticket.release();
  oc.finished = cluster_.engine().now();
  history_.push_back(oc);
  co_return oc;
}

sim::ValueTask<std::vector<CycleOutcome>> Orchestrator::evacuate_host(std::string host,
                                                                      CyclePriority priority) {
  std::vector<std::string> hosts;
  hosts.push_back(std::move(host));
  return drain_nodes(std::move(hosts), priority);
}

sim::ValueTask<std::vector<CycleOutcome>> Orchestrator::drain_nodes(
    std::vector<std::string> hosts, CyclePriority priority) {
  EvacPlan plan = planner_.plan_nodes(std::move(hosts));
  std::vector<CycleOutcome> out;
  sim::TaskGroup group(cluster_.engine());
  for (const EvacTask& t : plan.tasks) {
    group.spawn(run_evac_task(t, priority, &out));
  }
  co_await group.wait();
  co_return out;
}

sim::Task Orchestrator::run_evac_task(EvacTask t, CyclePriority priority,
                                      std::vector<CycleOutcome>* out) {
  CycleOutcome oc = co_await migrate_job(t.job_id, t.source_host, priority);
  out->push_back(std::move(oc));
}

sim::Task Orchestrator::health_loop() {
  while (running_) {
    ftb::FtbEvent ev = co_await ftb_.next_event();
    if (!running_) break;
    const std::string host = ev.payload;  // IPMI pollers put the hostname there
    telemetry::count("orch.failure_predictions_seen");
    telemetry::flight_note("orch", "FAILURE_PREDICTED on " + host);
    if (placement_.has_spare(host)) {
      // A failing spare is never a placement target; nothing to drain.
      placement_.mark_unhealthy(host);
      continue;
    }
    if (!cfg_.auto_evacuate) continue;
    if (!evacuating_.insert(host).second) continue;  // drain already running
    ++evacuations_triggered_;
    telemetry::count("orch.auto_evacuations");
    cluster_.engine().spawn(auto_evacuate_host(host));
  }
}

sim::Task Orchestrator::auto_evacuate_host(std::string host) {
  std::vector<CycleOutcome> outcomes =
      co_await evacuate_host(host, CyclePriority::kEvacuation);
  (void)outcomes;  // every cycle is already in history_
  evacuating_.erase(host);
}

}  // namespace jobmig::orch
