#include "jobmig/proc/blcr.hpp"

#include <algorithm>

namespace jobmig::proc {

namespace {

constexpr std::uint64_t kMagic = 0x4A4D5F424C435231ULL;     // "JM_BLCR1"
constexpr std::uint64_t kEndMagic = 0x4A4D5F454E444D31ULL;  // "JM_ENDM1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kStreamChunk = 1 << 20;  // 1 MiB serialization units
constexpr std::uint64_t kMaxRunBytes = 4 << 20;  // cap coalesced page runs

enum SectionKind : std::uint8_t { kClean = 0, kDirty = 1, kEnd = 2 };

/// Contiguous page run of one kind inside the image.
struct Run {
  SectionKind kind;
  std::uint64_t offset;
  std::uint64_t length;
};

/// Walk the image page table, coalescing adjacent clean/dirty pages.
/// Clean content still travels in full on the wire (it is regenerated from
/// the pattern); the split only lets restart rebuild a lazily-backed image.
std::vector<Run> plan_runs(const MemoryImage& image) {
  std::vector<Run> runs;
  const std::uint64_t size = image.size();
  if (size == 0) return runs;
  const std::uint64_t pages = (size + MemoryImage::kPageSize - 1) / MemoryImage::kPageSize;
  // Reconstruct dirtiness page by page via a probe write-free API: the image
  // exposes only dirty_pages() count, so classify by comparing content with
  // the pattern would be costly. Instead extend: we conservatively mark all
  // pages clean unless a dirty page map lookup says otherwise.
  for (std::uint64_t p = 0; p < pages;) {
    const bool dirty = image.is_dirty_page(p);
    std::uint64_t q = p + 1;
    while (q < pages && image.is_dirty_page(q) == dirty &&
           (q - p) * MemoryImage::kPageSize < kMaxRunBytes) {
      ++q;
    }
    const std::uint64_t off = p * MemoryImage::kPageSize;
    const std::uint64_t len = std::min(size, q * MemoryImage::kPageSize) - off;
    runs.push_back(Run{dirty ? kDirty : kClean, off, len});
    p = q;
  }
  return runs;
}

void put_u8(sim::Bytes& out, std::uint8_t v) { out.push_back(static_cast<std::byte>(v)); }

void put_blob(sim::Bytes& out, sim::ByteSpan blob) {
  sim::put_u32(out, static_cast<std::uint32_t>(blob.size()));
  out.insert(out.end(), blob.begin(), blob.end());
}

sim::Bytes encode_header(const SimProcess& proc) {
  sim::Bytes h;
  sim::put_u64(h, kMagic);
  sim::put_u32(h, kVersion);
  sim::put_u32(h, proc.pid());
  sim::put_u32(h, static_cast<std::uint32_t>(proc.rank()));
  sim::Bytes exe;
  for (char c : proc.identity().executable) exe.push_back(static_cast<std::byte>(c));
  put_blob(h, exe);
  put_blob(h, proc.app_state());
  put_blob(h, proc.runtime_state());
  sim::put_u64(h, proc.image().size());
  sim::put_u64(h, proc.image().seed());
  return h;
}

std::uint64_t header_size(const SimProcess& proc) {
  return 8 + 4 + 4 + 4 + (4 + proc.identity().executable.size()) +
         (4 + proc.app_state().size()) + (4 + proc.runtime_state().size()) + 8 + 8;
}

/// Incremental stream consumer used by restart().
class StreamReader {
 public:
  StreamReader(RestartSource& source, sim::FairShareServer& bus)
      : source_(source), bus_(bus) {}

  /// Ensure at least `n` bytes are buffered; false on EOF before n.
  sim::ValueTask<bool> ensure(std::uint64_t n) {
    while (buffer_.size() - consumed_ < n) {
      sim::Bytes chunk = co_await source_.read(kStreamChunk);
      if (chunk.empty()) co_return false;
      co_await bus_.transfer(chunk.size());  // restore-side memory bus
      buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
    }
    co_return true;
  }

  sim::ByteSpan peek(std::uint64_t n) const {
    JOBMIG_ASSERT(buffer_.size() - consumed_ >= n);
    return sim::ByteSpan(buffer_.data() + consumed_, n);
  }

  /// Consume `n` bytes, folding them into the running CRC unless excluded.
  void advance(std::uint64_t n, bool crc = true) {
    if (crc) crc_.update(sim::ByteSpan(buffer_.data() + consumed_, n));
    consumed_ += n;
    // Compact occasionally so the parse buffer stays ~one run long.
    if (consumed_ > (8u << 20)) {
      buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
      consumed_ = 0;
    }
  }

  std::uint64_t crc_value() const { return crc_.value(); }

 private:
  RestartSource& source_;
  sim::FairShareServer& bus_;
  sim::Bytes buffer_;
  std::uint64_t consumed_ = 0;
  sim::Crc64 crc_;
};

[[noreturn]] void corrupt(const std::string& why) { throw CheckpointCorruption(why); }

}  // namespace

Blcr::Blcr(sim::Engine& engine, sim::BlcrParams params)
    : engine_(engine),
      params_(params),
      dump_bus_(engine, params.dump_Bps_per_node),
      restore_bus_(engine, params.restore_Bps_per_node) {}

std::uint64_t Blcr::stream_size(const SimProcess& proc) {
  std::uint64_t total = header_size(proc);
  for (const Run& r : plan_runs(proc.image())) {
    total += 1 + 8 + 8 + r.length;
  }
  total += 1 + 8 + 8;  // end marker
  total += 8 + 8;      // crc + end magic
  return total;
}

sim::Task Blcr::checkpoint(const SimProcess& proc, CheckpointSink& sink) {
  co_await sim::sleep_for(params_.per_process_checkpoint_overhead);

  sim::Crc64 crc;
  // Emit a piece of the stream: charge the node dump bus, fold into the
  // running CRC, hand to the sink.
  auto emit = [&](sim::ByteSpan piece) -> sim::Task {
    co_await dump_bus_.transfer(piece.size());
    crc.update(piece);
    co_await sink.write(piece);
  };

  co_await emit(encode_header(proc));

  sim::Bytes staging;
  for (const Run& r : plan_runs(proc.image())) {
    sim::Bytes section_header;
    put_u8(section_header, static_cast<std::uint8_t>(r.kind));
    sim::put_u64(section_header, r.offset);
    sim::put_u64(section_header, r.length);
    co_await emit(section_header);
    std::uint64_t pos = 0;
    while (pos < r.length) {
      const std::uint64_t run = std::min<std::uint64_t>(kStreamChunk, r.length - pos);
      staging.resize(run);
      proc.image().read(r.offset + pos, staging);
      co_await emit(sim::ByteSpan(staging.data(), run));
      pos += run;
    }
  }
  sim::Bytes end_marker;
  put_u8(end_marker, kEnd);
  sim::put_u64(end_marker, 0);
  sim::put_u64(end_marker, 0);
  co_await emit(end_marker);

  sim::Bytes trailer;
  sim::put_u64(trailer, crc.value());
  sim::put_u64(trailer, kEndMagic);
  co_await dump_bus_.transfer(trailer.size());
  co_await sink.write(trailer);
  co_await sink.finish();
  ++checkpoints_taken_;
}

sim::ValueTask<SimProcessPtr> Blcr::restart(RestartSource& source) {
  co_await sim::sleep_for(params_.per_process_restart_overhead);
  StreamReader reader(source, restore_bus_);

  const std::uint64_t fixed_header = 8 + 4 + 4 + 4;
  if (!co_await reader.ensure(fixed_header)) corrupt("truncated header");
  {
    sim::ByteSpan h = reader.peek(fixed_header);
    if (sim::get_u64(h, 0) != kMagic) corrupt("bad magic");
    if (sim::get_u32(h, 8) != kVersion) corrupt("unsupported version");
  }
  sim::ByteSpan h = reader.peek(fixed_header);
  ProcessIdentity id;
  id.pid = sim::get_u32(h, 12);
  id.rank = static_cast<std::int32_t>(sim::get_u32(h, 16));
  reader.advance(fixed_header);

  auto read_blob = [&]() -> sim::ValueTask<sim::Bytes> {
    if (!co_await reader.ensure(4)) corrupt("truncated blob length");
    const std::uint32_t len = sim::get_u32(reader.peek(4), 0);
    reader.advance(4);
    if (!co_await reader.ensure(len)) corrupt("truncated blob");
    sim::ByteSpan body = reader.peek(len);
    sim::Bytes out(body.begin(), body.end());
    reader.advance(len);
    co_return out;
  };

  sim::Bytes exe = co_await read_blob();
  for (std::byte b : exe) id.executable.push_back(static_cast<char>(b));
  sim::Bytes app_state = co_await read_blob();
  sim::Bytes runtime_state = co_await read_blob();

  if (!co_await reader.ensure(16)) corrupt("truncated image descriptor");
  const std::uint64_t image_size = sim::get_u64(reader.peek(16), 0);
  const std::uint64_t image_seed = sim::get_u64(reader.peek(16), 8);
  reader.advance(16);

  auto proc = std::make_unique<SimProcess>(id, image_size, image_seed);
  proc->set_app_state(std::move(app_state));
  proc->set_runtime_state(std::move(runtime_state));

  // Sections until the end marker.
  while (true) {
    if (!co_await reader.ensure(1 + 8 + 8)) corrupt("truncated section header");
    sim::ByteSpan sh = reader.peek(1 + 8 + 8);
    const auto kind = static_cast<SectionKind>(sh[0]);
    const std::uint64_t offset = sim::get_u64(sh, 1);
    const std::uint64_t length = sim::get_u64(sh, 9);
    reader.advance(1 + 8 + 8);
    if (kind == kEnd) break;
    if (kind != kClean && kind != kDirty) corrupt("bad section kind");
    if (offset + length > image_size) corrupt("section out of bounds");
    std::uint64_t pos = 0;
    while (pos < length) {
      const std::uint64_t run = std::min<std::uint64_t>(kStreamChunk, length - pos);
      if (!co_await reader.ensure(run)) corrupt("truncated section payload");
      sim::ByteSpan body = reader.peek(run);
      if (kind == kDirty) {
        proc->image().write(offset + pos, body);
      } else {
        // Clean content travelled in full; verify it against the pattern the
        // lazily-backed image will regenerate, instead of storing it.
        if (!sim::pattern_check(body, image_seed, offset + pos)) {
          corrupt("clean section content mismatch");
        }
      }
      reader.advance(run);
      pos += run;
    }
  }

  const std::uint64_t computed_crc = reader.crc_value();
  if (!co_await reader.ensure(16)) corrupt("truncated trailer");
  const std::uint64_t stored_crc = sim::get_u64(reader.peek(16), 0);
  const std::uint64_t end_magic = sim::get_u64(reader.peek(16), 8);
  reader.advance(16, /*crc=*/false);
  if (end_magic != kEndMagic) corrupt("bad end magic");
  if (stored_crc != computed_crc) corrupt("payload CRC mismatch");

  ++restarts_done_;
  co_return proc;
}

}  // namespace jobmig::proc
