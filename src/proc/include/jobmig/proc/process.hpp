#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "jobmig/proc/memory_image.hpp"
#include "jobmig/sim/bytes.hpp"

namespace jobmig::proc {

struct ProcessIdentity {
  std::uint32_t pid = 0;
  std::int32_t rank = -1;        // MPI rank; -1 for non-MPI processes
  std::string executable;
  friend bool operator==(const ProcessIdentity&, const ProcessIdentity&) = default;
};

/// A simulated OS process: identity + address-space image + a small opaque
/// application-state blob. The blob is what a real process would keep in
/// registers/stack (e.g. a solver's iteration counter); workload kernels
/// serialize their progress into it so a restarted process resumes where
/// the checkpoint was taken.
class SimProcess {
 public:
  SimProcess(ProcessIdentity id, std::uint64_t image_bytes, std::uint64_t content_seed)
      : id_(std::move(id)), image_(image_bytes, content_seed) {}

  const ProcessIdentity& identity() const { return id_; }
  std::uint32_t pid() const { return id_.pid; }
  std::int32_t rank() const { return id_.rank; }

  MemoryImage& image() { return image_; }
  const MemoryImage& image() const { return image_; }

  const sim::Bytes& app_state() const { return app_state_; }
  void set_app_state(sim::Bytes state) { app_state_ = std::move(state); }

  /// Opaque runtime-library state (e.g. the MPI library's unexpected-message
  /// queue) captured at suspension so a restarted process loses nothing.
  const sim::Bytes& runtime_state() const { return runtime_state_; }
  void set_runtime_state(sim::Bytes state) { runtime_state_ = std::move(state); }

  /// Total bytes a checkpoint of this process carries (image + state).
  std::uint64_t checkpoint_payload_bytes() const {
    return image_.size() + app_state_.size() + runtime_state_.size();
  }

 private:
  ProcessIdentity id_;
  MemoryImage image_;
  sim::Bytes app_state_;
  sim::Bytes runtime_state_;
};

using SimProcessPtr = std::unique_ptr<SimProcess>;

}  // namespace jobmig::proc
