#pragma once

#include <cstdint>
#include <unordered_map>

#include "jobmig/sim/bytes.hpp"

namespace jobmig::proc {

/// Page-granular process address-space image with real, verifiable content.
///
/// Clean pages are materialized lazily from a deterministic pattern keyed by
/// (seed, page offset), so a multi-GB image costs memory only for pages the
/// workload actually dirtied — yet every byte that flows through checkpoint,
/// RDMA and restart is a real byte that can be CRC-checked end to end.
class MemoryImage {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  MemoryImage(std::uint64_t size_bytes, std::uint64_t content_seed);

  std::uint64_t size() const { return size_; }
  std::uint64_t seed() const { return seed_; }
  std::size_t dirty_pages() const { return dirty_.size(); }
  bool is_dirty_page(std::uint64_t page_index) const { return dirty_.contains(page_index); }

  /// Copy [offset, offset+out.size()) into `out`.
  void read(std::uint64_t offset, sim::MutableByteSpan out) const;
  /// Overwrite [offset, offset+data.size()); affected pages become dirty.
  void write(std::uint64_t offset, sim::ByteSpan data);

  /// CRC-64 of the full image content (streamed; no full materialization).
  std::uint64_t content_crc() const;

  /// Deep equality without materializing both images at once.
  bool content_equals(const MemoryImage& other) const;

 private:
  std::uint64_t size_;
  std::uint64_t seed_;
  // Page index -> full page. Hash map, not ordered: the write path does one
  // point lookup per touched page (the compute loop's dominant cost) and
  // nothing iterates the table, so ordering buys nothing.
  std::unordered_map<std::uint64_t, sim::Bytes> dirty_;
};

}  // namespace jobmig::proc
