#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "jobmig/proc/process.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/storage/filesystem.hpp"

/// BLCR-like checkpoint/restart engine.
///
/// Real BLCR writes a process image through a file descriptor; the paper's
/// extension redirects those writes into a user-level aggregation buffer
/// pool instead. `CheckpointSink` / `RestartSource` are exactly that hook
/// point: the same serialization engine feeds a file system (the CR
/// baseline), the RDMA buffer pool (job migration), a TCP stream (the
/// socket baseline) or target memory (the memory-based restart extension).
namespace jobmig::proc {

/// Thrown when restart detects a damaged or truncated checkpoint stream.
class CheckpointCorruption : public std::runtime_error {
 public:
  explicit CheckpointCorruption(const std::string& what) : std::runtime_error(what) {}
};

class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Consume the next sequential chunk of the checkpoint stream.
  [[nodiscard]] virtual sim::Task write(sim::ByteSpan chunk) = 0;
  /// Stream complete; flush whatever the sink buffers.
  [[nodiscard]] virtual sim::Task finish() = 0;
};

class RestartSource {
 public:
  virtual ~RestartSource() = default;
  /// Produce the next sequential chunk (empty = end of stream).
  [[nodiscard]] virtual sim::ValueTask<sim::Bytes> read(std::uint64_t max_len) = 0;
};

/// File-backed sink/source (the classic BLCR path).
class FileSink final : public CheckpointSink {
 public:
  explicit FileSink(storage::FilePtr file) : file_(std::move(file)) {}
  sim::Task write(sim::ByteSpan chunk) override {
    co_await file_->pwrite(offset_, chunk);
    offset_ += chunk.size();
  }
  sim::Task finish() override { co_return; }
  std::uint64_t bytes_written() const { return offset_; }

 private:
  storage::FilePtr file_;
  std::uint64_t offset_ = 0;
};

class FileSource final : public RestartSource {
 public:
  explicit FileSource(storage::FilePtr file) : file_(std::move(file)) {}
  sim::ValueTask<sim::Bytes> read(std::uint64_t max_len) override {
    sim::Bytes chunk = co_await file_->pread(offset_, max_len);
    offset_ += chunk.size();
    co_return chunk;
  }

 private:
  storage::FilePtr file_;
  std::uint64_t offset_ = 0;
};

/// In-memory sink/source (memory-based restart; also handy in tests).
class MemorySink final : public CheckpointSink {
 public:
  sim::Task write(sim::ByteSpan chunk) override {
    data_.insert(data_.end(), chunk.begin(), chunk.end());
    co_return;
  }
  sim::Task finish() override { co_return; }
  sim::Bytes take() { return std::move(data_); }
  const sim::Bytes& data() const { return data_; }

 private:
  sim::Bytes data_;
};

class MemorySource final : public RestartSource {
 public:
  explicit MemorySource(sim::Bytes data) : data_(std::move(data)) {}
  sim::ValueTask<sim::Bytes> read(std::uint64_t max_len) override {
    const std::uint64_t n = std::min<std::uint64_t>(max_len, data_.size() - offset_);
    sim::Bytes chunk(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
                     data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
    offset_ += n;
    co_return chunk;
  }

 private:
  sim::Bytes data_;
  std::uint64_t offset_ = 0;
};

/// Per-node BLCR engine. Serialization shares the node's memory bus: all
/// concurrent local checkpoints split `dump_Bps_per_node` (and restarts
/// split `restore_Bps_per_node`), matching the aggregate behaviour behind
/// the paper's Phase-2 times.
class Blcr {
 public:
  Blcr(sim::Engine& engine, sim::BlcrParams params = {});

  /// Serialize `proc` into `sink` as a self-validating stream.
  [[nodiscard]] sim::Task checkpoint(const SimProcess& proc, CheckpointSink& sink);

  /// Rebuild a process from `source`; throws CheckpointCorruption on a bad
  /// magic number, damaged payload CRC, or truncation.
  [[nodiscard]] sim::ValueTask<SimProcessPtr> restart(RestartSource& source);

  /// Exact size of the stream checkpoint() will emit for `proc`.
  static std::uint64_t stream_size(const SimProcess& proc);

  const sim::BlcrParams& params() const { return params_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t restarts_done() const { return restarts_done_; }

 private:
  sim::Engine& engine_;
  sim::BlcrParams params_;
  sim::FairShareServer dump_bus_;
  sim::FairShareServer restore_bus_;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t restarts_done_ = 0;
};

}  // namespace jobmig::proc
