#include "jobmig/proc/memory_image.hpp"

#include <algorithm>

#include "jobmig/sim/assert.hpp"

namespace jobmig::proc {

MemoryImage::MemoryImage(std::uint64_t size_bytes, std::uint64_t content_seed)
    : size_(size_bytes), seed_(content_seed) {}

void MemoryImage::read(std::uint64_t offset, sim::MutableByteSpan out) const {
  JOBMIG_EXPECTS_MSG(offset + out.size() <= size_, "image read out of bounds");
  std::uint64_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t page = abs / kPageSize;
    const std::uint64_t within = abs % kPageSize;
    const std::uint64_t run = std::min<std::uint64_t>(out.size() - pos, kPageSize - within);
    auto it = dirty_.find(page);
    if (it != dirty_.end()) {
      std::copy_n(it->second.begin() + static_cast<std::ptrdiff_t>(within),
                  static_cast<std::ptrdiff_t>(run), out.begin() + static_cast<std::ptrdiff_t>(pos));
      pos += run;
      continue;
    }
    // Clean page: extend over the whole run of consecutive clean pages and
    // regenerate it with one pattern_fill (checkpoint streams read mostly
    // clean images, so this is the bulk of the traffic).
    std::uint64_t end = pos + run;
    while (end < out.size() && !dirty_.contains((offset + end) / kPageSize)) {
      end += std::min<std::uint64_t>(out.size() - end, kPageSize);
    }
    sim::pattern_fill(out.subspan(pos, end - pos), seed_, abs);
    pos = end;
  }
}

void MemoryImage::write(std::uint64_t offset, sim::ByteSpan data) {
  JOBMIG_EXPECTS_MSG(offset + data.size() <= size_, "image write out of bounds");
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t page = abs / kPageSize;
    const std::uint64_t within = abs % kPageSize;
    const std::uint64_t run = std::min<std::uint64_t>(data.size() - pos, kPageSize - within);
    auto it = dirty_.find(page);
    if (it == dirty_.end()) {
      // Size the table for the whole image up front: the compute loop's
      // rotating dirty window eventually touches every page, and growing
      // incrementally would rehash log(pages) times along the way.
      if (dirty_.empty()) dirty_.reserve(static_cast<std::size_t>(size_ / kPageSize + 1));
      sim::Bytes page_bytes(kPageSize);
      if (run < kPageSize) {
        // Partial overwrite: materialize the page content first.
        sim::pattern_fill(page_bytes, seed_, page * kPageSize);
      }
      it = dirty_.emplace(page, std::move(page_bytes)).first;
    }
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(pos), run,
                it->second.begin() + static_cast<std::ptrdiff_t>(within));
    pos += run;
  }
}

std::uint64_t MemoryImage::content_crc() const {
  sim::Crc64 crc;
  sim::Bytes buf(64 * kPageSize);
  std::uint64_t pos = 0;
  while (pos < size_) {
    const std::uint64_t run = std::min<std::uint64_t>(buf.size(), size_ - pos);
    sim::MutableByteSpan window(buf.data(), run);
    read(pos, window);
    crc.update(sim::ByteSpan(buf.data(), run));
    pos += run;
  }
  return crc.value();
}

bool MemoryImage::content_equals(const MemoryImage& other) const {
  if (size_ != other.size_) return false;
  sim::Bytes a(16 * kPageSize), b(16 * kPageSize);
  std::uint64_t pos = 0;
  while (pos < size_) {
    const std::uint64_t run = std::min<std::uint64_t>(a.size(), size_ - pos);
    read(pos, sim::MutableByteSpan(a.data(), run));
    other.read(pos, sim::MutableByteSpan(b.data(), run));
    if (!std::equal(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(run), b.begin())) {
      return false;
    }
    pos += run;
  }
  return true;
}

}  // namespace jobmig::proc
