#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/task.hpp"

/// Storage substrate: the two places the paper's Checkpoint/Restart baseline
/// dumps process images — node-local ext3 disks and a PVFS-style striped
/// parallel file system (4 data servers, 1 MB stripes in the testbed).
/// File contents are real bytes; elapsed time comes from calibrated device
/// models whose concurrency behaviour reproduces the §IV-C contention
/// effects (many concurrent checkpoint streams degrade both).
namespace jobmig::storage {

/// A single spindle. Reads and writes contend for the same head: service
/// time is normalized to "microseconds of head time" on one fair-share
/// server, with an efficiency curve modeling inter-stream seek thrash.
class BlockDevice {
 public:
  /// `label` names the device in telemetry output ("disk.<label>.*" metrics,
  /// one counter track per device); it does not affect simulation behaviour.
  BlockDevice(sim::Engine& engine, sim::DiskParams params, std::string label = "disk");

  [[nodiscard]] sim::Task write(std::uint64_t bytes);
  [[nodiscard]] sim::Task read(std::uint64_t bytes);

  const sim::DiskParams& params() const { return params_; }
  const std::string& label() const { return label_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::size_t inflight() const { return inflight_; }

 private:
  [[nodiscard]] sim::Task io(std::uint64_t bytes, double rate_Bps);

  sim::Engine& engine_;
  sim::DiskParams params_;
  std::string label_;
  std::unique_ptr<sim::FairShareServer> head_;  // units: microseconds of service
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::size_t inflight_ = 0;  // concurrent io() calls (device queue depth)
};

class File;
using FilePtr = std::shared_ptr<File>;

/// Minimal file-system interface shared by LocalFs and ParallelFs: the
/// checkpoint engine writes through it without knowing where images land.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Create (truncate) a file; charges metadata cost.
  [[nodiscard]] virtual sim::ValueTask<FilePtr> create(const std::string& path) = 0;
  /// Open for reading; nullptr if absent.
  [[nodiscard]] virtual sim::ValueTask<FilePtr> open(const std::string& path) = 0;
  /// Remove; false if absent.
  [[nodiscard]] virtual sim::ValueTask<bool> remove(const std::string& path) = 0;

  virtual bool exists(const std::string& path) const = 0;
  virtual std::uint64_t file_size(const std::string& path) const = 0;
  virtual std::vector<std::string> list() const = 0;
  virtual std::string describe() const = 0;
};

namespace detail {
struct Inode {
  sim::Bytes data;
};
}  // namespace detail

/// Open-file handle. Offsets are explicit (pread/pwrite style); writes past
/// EOF extend the file.
class File {
 public:
  virtual ~File() = default;
  [[nodiscard]] virtual sim::Task pwrite(std::uint64_t offset, sim::ByteSpan data) = 0;
  [[nodiscard]] virtual sim::ValueTask<sim::Bytes> pread(std::uint64_t offset,
                                                         std::uint64_t length) = 0;
  virtual std::uint64_t size() const = 0;

  /// Append convenience: writes at the current end.
  [[nodiscard]] sim::Task append(sim::ByteSpan data) { return pwrite(size(), data); }
};

/// Node-local ext3-like file system on one BlockDevice.
class LocalFs final : public FileSystem {
 public:
  LocalFs(sim::Engine& engine, sim::DiskParams params, std::string label = "ext3");

  sim::ValueTask<FilePtr> create(const std::string& path) override;
  sim::ValueTask<FilePtr> open(const std::string& path) override;
  sim::ValueTask<bool> remove(const std::string& path) override;
  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  std::vector<std::string> list() const override;
  std::string describe() const override { return label_; }

  BlockDevice& device() { return device_; }

 private:
  sim::Engine& engine_;
  BlockDevice device_;
  std::string label_;
  std::map<std::string, std::shared_ptr<detail::Inode>> inodes_;
};

/// PVFS-like parallel file system: files striped round-robin over N data
/// servers, one metadata server serializing namespace operations. Many
/// concurrent clients contend on the per-server disks, which is exactly the
/// effect behind the paper's CR(PVFS) numbers.
class ParallelFs final : public FileSystem {
 public:
  ParallelFs(sim::Engine& engine, sim::PvfsParams params, std::string label = "pvfs");

  sim::ValueTask<FilePtr> create(const std::string& path) override;
  sim::ValueTask<FilePtr> open(const std::string& path) override;
  sim::ValueTask<bool> remove(const std::string& path) override;
  bool exists(const std::string& path) const override;
  std::uint64_t file_size(const std::string& path) const override;
  std::vector<std::string> list() const override;
  std::string describe() const override { return label_; }

  const sim::PvfsParams& params() const { return params_; }
  std::size_t server_count() const { return servers_.size(); }
  BlockDevice& server(std::size_t i) { return *servers_.at(i); }

  /// Charge one metadata operation (serialized at the MDS).
  [[nodiscard]] sim::Task mds_op();

 private:
  friend class PvfsFile;
  sim::Engine& engine_;
  sim::PvfsParams params_;
  std::string label_;
  std::vector<std::unique_ptr<BlockDevice>> servers_;
  std::unique_ptr<sim::FifoServer> mds_;
  std::map<std::string, std::shared_ptr<detail::Inode>> inodes_;
};

}  // namespace jobmig::storage
