#include "jobmig/storage/filesystem.hpp"

#include <algorithm>
#include <cmath>

#include "jobmig/sim/sync.hpp"
#include "jobmig/telemetry/telemetry.hpp"

namespace jobmig::storage {

namespace {

/// Convert a byte count at `rate_Bps` into microseconds of device service.
std::uint64_t service_us(std::uint64_t bytes, double rate_Bps) {
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(bytes) / rate_Bps * 1e6));
}

sim::FairShareServer::EfficiencyFn seek_curve(double alpha) {
  return [alpha](std::size_t n) {
    return 1.0 / (1.0 + alpha * static_cast<double>(n > 0 ? n - 1 : 0));
  };
}

}  // namespace

BlockDevice::BlockDevice(sim::Engine& engine, sim::DiskParams params, std::string label)
    : engine_(engine), params_(params), label_(std::move(label)) {
  // The server's unit is "microseconds of head time": 1e6 units/second.
  head_ = std::make_unique<sim::FairShareServer>(engine_, 1e6, seek_curve(params_.seek_alpha));
}

sim::Task BlockDevice::io(std::uint64_t bytes, double rate_Bps) {
  const sim::TimePoint begin = engine_.now();
  ++inflight_;
  if (telemetry::Telemetry* t = telemetry::current()) {
    t->trace.counter_sample("disk." + label_, "queue_depth", static_cast<double>(inflight_));
    t->metrics.gauge("disk." + label_ + ".queue_depth").set(static_cast<double>(inflight_));
  }
  co_await head_->transfer(service_us(bytes, rate_Bps));
  --inflight_;
  if (telemetry::Telemetry* t = telemetry::current()) {
    t->trace.counter_sample("disk." + label_, "queue_depth", static_cast<double>(inflight_));
    t->metrics.gauge("disk." + label_ + ".queue_depth").set(static_cast<double>(inflight_));
    t->metrics.counter("disk." + label_ + ".bytes").add(bytes);
    const sim::Duration elapsed = engine_.now() - begin;
    t->metrics.histogram("disk." + label_ + ".io_ns")
        .observe(elapsed.count_ns() > 0 ? static_cast<std::uint64_t>(elapsed.count_ns()) : 0);
    if (elapsed.count_ns() > 0 && bytes > 0) {
      // Achieved per-op bandwidth: below nominal under head contention.
      const double bps = static_cast<double>(bytes) * 1e9 /
                         static_cast<double>(elapsed.count_ns());
      t->metrics.histogram("disk." + label_ + ".achieved_Bps")
          .observe(static_cast<std::uint64_t>(bps));
    }
  }
}

sim::Task BlockDevice::write(std::uint64_t bytes) {
  bytes_written_ += bytes;
  co_await io(bytes, params_.write_Bps);
}

sim::Task BlockDevice::read(std::uint64_t bytes) {
  bytes_read_ += bytes;
  co_await io(bytes, params_.read_Bps);
}

namespace {

void write_into(detail::Inode& inode, std::uint64_t offset, sim::ByteSpan data) {
  const std::uint64_t end = offset + data.size();
  if (inode.data.size() < end) inode.data.resize(end);
  std::copy(data.begin(), data.end(), inode.data.begin() + static_cast<std::ptrdiff_t>(offset));
}

sim::Bytes read_from(const detail::Inode& inode, std::uint64_t offset, std::uint64_t length) {
  if (offset >= inode.data.size()) return {};
  const std::uint64_t n = std::min<std::uint64_t>(length, inode.data.size() - offset);
  return sim::Bytes(inode.data.begin() + static_cast<std::ptrdiff_t>(offset),
                    inode.data.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

class LocalFile final : public File {
 public:
  LocalFile(BlockDevice& dev, std::shared_ptr<detail::Inode> inode)
      : dev_(dev), inode_(std::move(inode)) {}

  sim::Task pwrite(std::uint64_t offset, sim::ByteSpan data) override {
    co_await dev_.write(data.size());
    write_into(*inode_, offset, data);
  }

  sim::ValueTask<sim::Bytes> pread(std::uint64_t offset, std::uint64_t length) override {
    sim::Bytes out = read_from(*inode_, offset, length);
    co_await dev_.read(out.size());
    co_return out;
  }

  std::uint64_t size() const override { return inode_->data.size(); }

 private:
  BlockDevice& dev_;
  std::shared_ptr<detail::Inode> inode_;
};

}  // namespace

LocalFs::LocalFs(sim::Engine& engine, sim::DiskParams params, std::string label)
    : engine_(engine), device_(engine, params, label), label_(std::move(label)) {}

sim::ValueTask<FilePtr> LocalFs::create(const std::string& path) {
  co_await sim::sleep_for(device_.params().op_latency);  // dentry + journal commit
  auto inode = std::make_shared<detail::Inode>();
  inodes_[path] = inode;
  co_return std::make_shared<LocalFile>(device_, std::move(inode));
}

sim::ValueTask<FilePtr> LocalFs::open(const std::string& path) {
  co_await sim::sleep_for(device_.params().op_latency);
  auto it = inodes_.find(path);
  if (it == inodes_.end()) co_return nullptr;
  co_return std::make_shared<LocalFile>(device_, it->second);
}

sim::ValueTask<bool> LocalFs::remove(const std::string& path) {
  co_await sim::sleep_for(device_.params().op_latency);
  co_return inodes_.erase(path) > 0;
}

bool LocalFs::exists(const std::string& path) const { return inodes_.contains(path); }

std::uint64_t LocalFs::file_size(const std::string& path) const {
  auto it = inodes_.find(path);
  return it == inodes_.end() ? 0 : it->second->data.size();
}

std::vector<std::string> LocalFs::list() const {
  std::vector<std::string> out;
  out.reserve(inodes_.size());
  for (const auto& [path, inode] : inodes_) out.push_back(path);
  return out;
}

namespace {

class PvfsFile final : public File {
 public:
  PvfsFile(ParallelFs& fs, std::shared_ptr<detail::Inode> inode)
      : fs_(fs), inode_(std::move(inode)) {}

  sim::Task pwrite(std::uint64_t offset, sim::ByteSpan data) override {
    co_await striped_io(offset, data.size(), /*is_write=*/true);
    write_into(*inode_, offset, data);
  }

  sim::ValueTask<sim::Bytes> pread(std::uint64_t offset, std::uint64_t length) override {
    sim::Bytes out = read_from(*inode_, offset, length);
    co_await striped_io(offset, out.size(), /*is_write=*/false);
    co_return out;
  }

  std::uint64_t size() const override { return inode_->data.size(); }

 private:
  /// Split [offset, offset+length) into per-server byte counts by stripe
  /// unit and charge all involved servers concurrently.
  sim::Task striped_io(std::uint64_t offset, std::uint64_t length, bool is_write);

  ParallelFs& fs_;
  std::shared_ptr<detail::Inode> inode_;
};

sim::Task PvfsFile::striped_io(std::uint64_t offset, std::uint64_t length, bool is_write) {
  if (length == 0) co_return;
  const auto& p = fs_.params();
  const std::size_t n_servers = fs_.server_count();
  std::vector<std::uint64_t> per_server(n_servers, 0);
  std::uint64_t pos = offset;
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const std::uint64_t stripe_idx = pos / p.stripe_bytes;
    const std::uint64_t within = pos % p.stripe_bytes;
    const std::uint64_t run = std::min<std::uint64_t>(remaining, p.stripe_bytes - within);
    per_server[static_cast<std::size_t>(stripe_idx % n_servers)] += run;
    pos += run;
    remaining -= run;
  }
  sim::TaskGroup group(*sim::Engine::current());
  for (std::size_t s = 0; s < n_servers; ++s) {
    if (per_server[s] == 0) continue;
    group.spawn([](ParallelFs& fs, std::size_t srv, std::uint64_t bytes, bool w,
                   sim::Duration op_lat) -> sim::Task {
      co_await sim::sleep_for(op_lat);
      if (w) {
        co_await fs.server(srv).write(bytes);
      } else {
        co_await fs.server(srv).read(bytes);
      }
    }(fs_, s, per_server[s], is_write, p.server_op_latency));
  }
  co_await group.wait();
}

}  // namespace

ParallelFs::ParallelFs(sim::Engine& engine, sim::PvfsParams params, std::string label)
    : engine_(engine), params_(params), label_(std::move(label)) {
  JOBMIG_EXPECTS(params_.data_servers >= 1);
  JOBMIG_EXPECTS(params_.stripe_bytes >= 1);
  sim::DiskParams server_disk;
  server_disk.write_Bps = params_.server_write_Bps;
  server_disk.read_Bps = params_.server_read_Bps;
  server_disk.op_latency = params_.server_op_latency;
  server_disk.seek_alpha = params_.seek_alpha;
  for (std::uint32_t i = 0; i < params_.data_servers; ++i) {
    servers_.push_back(
        std::make_unique<BlockDevice>(engine_, server_disk, label_ + ".s" + std::to_string(i)));
  }
  mds_ = std::make_unique<sim::FifoServer>(engine_, 1e9, params_.mds_op_latency);
}

sim::Task ParallelFs::mds_op() { co_await mds_->transfer(0); }

sim::ValueTask<FilePtr> ParallelFs::create(const std::string& path) {
  co_await mds_op();
  auto inode = std::make_shared<detail::Inode>();
  inodes_[path] = inode;
  co_return std::make_shared<PvfsFile>(*this, std::move(inode));
}

sim::ValueTask<FilePtr> ParallelFs::open(const std::string& path) {
  co_await mds_op();
  auto it = inodes_.find(path);
  if (it == inodes_.end()) co_return nullptr;
  co_return std::make_shared<PvfsFile>(*this, it->second);
}

sim::ValueTask<bool> ParallelFs::remove(const std::string& path) {
  co_await mds_op();
  co_return inodes_.erase(path) > 0;
}

bool ParallelFs::exists(const std::string& path) const { return inodes_.contains(path); }

std::uint64_t ParallelFs::file_size(const std::string& path) const {
  auto it = inodes_.find(path);
  return it == inodes_.end() ? 0 : it->second->data.size();
}

std::vector<std::string> ParallelFs::list() const {
  std::vector<std::string> out;
  out.reserve(inodes_.size());
  for (const auto& [path, inode] : inodes_) out.push_back(path);
  return out;
}

}  // namespace jobmig::storage
