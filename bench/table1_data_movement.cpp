/// Experiment E5 — paper Table I: "Amount of Data Movement (MB)".
///
/// Job Migration moves only the images of the ranks on the failing node;
/// CR dumps every rank. Columns are computed from the exact checkpoint
/// stream sizes of the live job (Blcr::stream_size is byte-exact), and the
/// migration column is cross-checked against an actually executed cycle.

#include "bench_common.hpp"

#include "jobmig/proc/blcr.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

struct Row {
  std::string app;
  double migration_mb = 0.0;
  double cr_mb = 0.0;
  double measured_migration_mb = 0.0;
};

Row run_one(const workload::KernelSpec& spec, bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name());
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);

  Row row;
  row.app = spec.name();
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, Row& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    // Exact stream sizes for every rank at this instant.
    for (int r = 0; r < c.job().size(); ++r) {
      const double mb =
          static_cast<double>(proc::Blcr::stream_size(c.job().proc(r).sim_process())) / 1e6;
      out.cr_mb += mb;
      if (c.job().node_of(r).hostname == "node3") out.migration_mb += mb;
    }
    // Cross-check: run the migration and compare actual bytes moved.
    auto report = co_await c.migration_manager().migrate("node3");
    out.measured_migration_mb = static_cast<double>(report.bytes_moved) / 1e6;
  }(cl, spec, row));
  engine.run_until(sim::TimePoint::origin() + 150_s);
  reporter.record_engine(engine);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("table1_data_movement", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Table I — Amount of data movement (MB)",
                      "migration (one node) vs CR (whole job), 64 procs on 8 nodes");
  jobmig::bench::WallClock wall;

  std::printf("%-10s %16s %16s %18s   %s\n", "app", "Job Migration", "CR", "(measured mig.)",
              "(paper: mig / CR)");
  const char* paper[] = {"170.4 / 1363.2", "308.8 / 2470.4", "303.2 / 2425.6"};
  int i = 0;
  for (const auto& spec : jobmig::bench::paper_workloads()) {
    Row row = run_one(spec, reporter);
    std::printf("%-10s %16.1f %16.1f %18.1f   %s\n", row.app.c_str(), row.migration_mb,
                row.cr_mb, row.measured_migration_mb, paper[i++]);
    reporter.add_row(row.app, {{"migration_mb", row.migration_mb},
                               {"cr_mb", row.cr_mb},
                               {"measured_migration_mb", row.measured_migration_mb}});
  }
  std::printf("\npaper shape: migration moves ~1/8 of the CR volume (one node of eight).\n");
  jobmig::bench::print_footer(wall, 450.0);
  return reporter.finish() ? 0 : 1;
}
