/// Component microbenchmarks (google-benchmark): the hot paths everything
/// above is built from. Useful when recalibrating or porting — the
/// simulator's wall-clock cost is dominated by exactly these.

#include <benchmark/benchmark.h>

#include <memory>
#include <set>
#include <string>

#include "jobmig/proc/memory_image.hpp"
#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/bytes_kernels.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/sync.hpp"
#include "jobmig/sim/task.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

void BM_PatternFill(benchmark::State& state) {
  sim::Bytes buf(static_cast<std::size_t>(state.range(0)));
  std::uint64_t offset = 0;
  for (auto _ : state) {
    sim::pattern_fill(buf, 42, offset);
    offset += buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PatternFill)->Arg(4096)->Arg(1 << 20);

void BM_Crc64(benchmark::State& state) {
  sim::Bytes buf(static_cast<std::size_t>(state.range(0)));
  sim::pattern_fill(buf, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::Crc64::of(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc64)->Arg(4096)->Arg(1 << 20);

void BM_MemoryImageRead(benchmark::State& state) {
  proc::MemoryImage img(64ull << 20, 3);
  sim::Bytes buf(1 << 20);
  std::uint64_t pos = 0;
  for (auto _ : state) {
    img.read(pos % (63ull << 20), buf);
    pos += buf.size();
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_MemoryImageRead);

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    constexpr int kEvents = 10000;
    int fired = 0;
    for (int i = 0; i < kEvents; ++i) {
      engine.call_at(sim::TimePoint::origin() + sim::Duration::us(i), [&fired] { ++fired; });
    }
    state.ResumeTiming();
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    auto channel = std::make_unique<sim::Channel<int>>(16);
    constexpr int kRounds = 5000;
    state.ResumeTiming();
    engine.spawn([](sim::Channel<int>& ch, int rounds) -> sim::Task {
      for (int i = 0; i < rounds; ++i) (void)co_await ch.send(i);
      ch.close();
    }(*channel, kRounds));
    engine.spawn([](sim::Channel<int>& ch) -> sim::Task {
      while (co_await ch.recv()) {
      }
    }(*channel));
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_FairShareChurn(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Engine engine;
    auto server = std::make_unique<sim::FairShareServer>(engine, 1e9);
    constexpr int kTransfers = 1000;
    state.ResumeTiming();
    for (int i = 0; i < kTransfers; ++i) {
      engine.spawn([](sim::FairShareServer& s, int delay_us) -> sim::Task {
        co_await sim::sleep_for(sim::Duration::us(delay_us));
        co_await s.transfer(1'000'000);
      }(*server, i % 100));
    }
    engine.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_FairShareChurn);

// ---- per-path kernel benches ----------------------------------------------
// One benchmark per dispatch this host supports (scalar first), so a single
// run shows the scalar/table baseline next to the SIMD paths and the
// speedup ratio the dispatch buys. BM_Crc64/BM_PatternFill above measure
// whatever `kernels::active()` picked.

void run_crc64_path(benchmark::State& state, sim::kernels::Dispatch d) {
  sim::Bytes buf(1 << 20);
  sim::pattern_fill(buf, 7, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.crc64(~0ull, buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void run_fill_path(benchmark::State& state, sim::kernels::Dispatch d) {
  sim::Bytes buf(1 << 20);
  std::uint64_t lane = 0;
  const std::size_t nlanes = buf.size() / 8;
  for (auto _ : state) {
    d.fill(buf.data(), 42, lane, nlanes);
    lane += nlanes;
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void run_check_path(benchmark::State& state, sim::kernels::Dispatch d) {
  sim::Bytes buf(1 << 20);
  const std::size_t nlanes = buf.size() / 8;
  d.fill(buf.data(), 42, 0, nlanes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.check(buf.data(), 42, 0, nlanes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void register_kernel_paths() {
  // all_supported() entries vary one axis at a time off the scalar baseline,
  // so the same impl name recurs across entries — register each path once.
  std::set<std::string> seen;
  for (const auto& d : sim::kernels::all_supported()) {
    if (seen.insert(std::string("crc/") + d.crc64_impl).second) {
      benchmark::RegisterBenchmark((std::string("BM_Crc64Path/") + d.crc64_impl).c_str(),
                                   [d](benchmark::State& s) { run_crc64_path(s, d); });
    }
    if (seen.insert(std::string("pat/") + d.pattern_impl).second) {
      benchmark::RegisterBenchmark((std::string("BM_PatternFillPath/") + d.pattern_impl).c_str(),
                                   [d](benchmark::State& s) { run_fill_path(s, d); });
      benchmark::RegisterBenchmark((std::string("BM_PatternCheckPath/") + d.pattern_impl).c_str(),
                                   [d](benchmark::State& s) { run_check_path(s, d); });
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_kernel_paths();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
