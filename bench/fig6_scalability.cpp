/// Experiment E3 — paper Fig. 6: "Scalability of Job Migration Framework
/// (LU class C, 8 compute nodes)".
///
/// LU class C run with 8/16/32/64 ranks on 8 nodes (1/2/4/8 per node); one
/// migration per configuration, phases decomposed. Paper shape: Phase 2
/// stays low thanks to the RDMA pipeline; Phase 3 grows with the per-node
/// restart volume (file-based restart); Resume grows with task scale but is
/// constant per scale.

#include "bench_common.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

migration::MigrationReport run_scale(int nprocs, bench::BenchReporter& reporter) {
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kC, nprocs);
  reporter.begin_run("lu.C." + std::to_string(nprocs));
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(nprocs / 8, spec.image_bytes_per_rank);

  migration::MigrationReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    out = co_await c.migration_manager().migrate("node3");
  }(cl, spec, report));
  engine.run_until(sim::TimePoint::origin() + 200_s);
  JOBMIG_ASSERT_MSG(cl.migration_manager().cycles_completed() == 1,
                    "migration cycle did not complete");
  reporter.record_engine(engine);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig6_scalability", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Fig. 6 — Migration scalability (LU class C, 8 compute nodes)",
                      "8/16/32/64 ranks -> 1/2/4/8 per node; one migration (times in ms)");
  jobmig::bench::WallClock wall;

  std::printf("%-14s %10s %12s %10s %10s %10s\n", "procs-per-node", "job-stall", "migration",
              "restart", "resume", "total");
  double sim_total = 0.0;
  // --quick drops the two largest configurations (CI smoke run).
  std::vector<int> configs = {8, 16, 32, 64};
  if (reporter.options().quick) configs = {8, 16};
  for (int nprocs : configs) {
    jobmig::bench::WallClock config_wall;
    const auto r = run_scale(nprocs, reporter);
    const double wall_s = config_wall.seconds();
    std::printf("%-14d %10.0f %12.0f %10.0f %10.0f %10.0f   (%.2fs wall)\n", nprocs / 8,
                r.stall.to_ms(), r.migration.to_ms(), r.restart.to_ms(), r.resume.to_ms(),
                r.total().to_ms(), wall_s);
    reporter.add_row(std::to_string(nprocs / 8) + "ppn",
                     {{"stall_ms", r.stall.to_ms()},
                      {"migration_ms", r.migration.to_ms()},
                      {"restart_ms", r.restart.to_ms()},
                      {"resume_ms", r.resume.to_ms()},
                      {"total_ms", r.total().to_ms()},
                      {"wall_s", wall_s}},  // informational; *_ms fields are the gate
                     r.trace_id);
    sim_total += 200.0;
  }
  std::printf("\npaper shape: totals grow monotonically with procs/node; Phase 3\n"
              "(file-based restart) dominates and scales with the restart volume.\n");
  jobmig::bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
