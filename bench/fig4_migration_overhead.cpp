/// Experiment E1 — paper Fig. 4: "Process Migration Overhead".
///
/// LU/BT/SP class C, 64 processes on 8 compute nodes (8 per node) plus one
/// spare; one migration is triggered mid-run and the complete cycle is
/// decomposed into the paper's four phases.
///
/// Shape targets (paper, DDR IB testbed): Job Stall takes tens of
/// milliseconds; Job Migration (RDMA transfer) finishes in 0.4-0.8 s;
/// Restart dominates (file-based restart on the spare); Resume is roughly
/// constant per task scale. Totals: LU ~6.3 s, BT/SP ~10-12 s.
///
/// NOTE: the default restart mode is now the pipelined (on-the-fly) restart
/// of §IV-A, which collapses Phase 3; run with --restart=file to reproduce
/// the paper's published file-based totals above.

#include "bench_common.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;
using jobmig::bench::WallClock;

struct Row {
  std::string app;
  migration::MigrationReport report;
};

Row run_one(const workload::KernelSpec& spec, bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name());
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);

  Row row;
  row.app = spec.name();
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, Row& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);  // trigger the migration mid-run
    out.report = co_await c.migration_manager().migrate("node3");
  }(cl, spec, row));
  // Run long enough for the cycle to complete; no need to finish the app.
  engine.run_until(sim::TimePoint::origin() + 120_s);
  JOBMIG_ASSERT_MSG(cl.migration_manager().cycles_completed() == 1,
                    "migration cycle did not complete");
  reporter.record_engine(engine);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig4_migration_overhead",
                                bench::BenchOptions::parse(argc, argv));
  bench::print_header("Fig. 4 — Process migration overhead, phase decomposition",
                      "LU/BT/SP class C, 64 procs on 8 nodes, 1 migration (times in ms)");
  WallClock wall;

  std::printf("%-10s %10s %12s %10s %10s %10s   %s\n", "app", "job-stall", "migration",
              "restart", "resume", "total", "(paper total)");
  const char* paper_totals[] = {"~6300", "~11000", "~10500"};
  int i = 0;
  double sim_total = 0.0;
  for (const auto& spec : jobmig::bench::paper_workloads()) {
    // A short run is enough: only the migration cycle is measured.
    auto scaled = spec;
    scaled.iterations = std::max(50, spec.iterations / 4);
    Row row = run_one(scaled, reporter);
    const auto& r = row.report;
    std::printf("%-10s %10.0f %12.0f %10.0f %10.0f %10.0f   %s\n", row.app.c_str(),
                r.stall.to_ms(), r.migration.to_ms(), r.restart.to_ms(), r.resume.to_ms(),
                r.total().to_ms(), paper_totals[i++]);
    reporter.add_row(row.app,
                     {{"stall_ms", r.stall.to_ms()},
                      {"migration_ms", r.migration.to_ms()},
                      {"restart_ms", r.restart.to_ms()},
                      {"resume_ms", r.resume.to_ms()},
                      {"total_ms", r.total().to_ms()},
                      {"bytes_moved", static_cast<double>(r.bytes_moved)}},
                     r.trace_id);
    sim_total += 120.0;
  }
  bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
