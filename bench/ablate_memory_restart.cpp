/// Experiment E8 — the paper's future work (§VI): "improve the
/// process-restart component on the spare node by using a memory-based
/// restart strategy, so as to further drive down the cost".
///
/// Fig. 4's workloads re-run with the memory-based restart extension
/// replacing the file-based scheme: Phase 3 should collapse from seconds
/// (disk reads) to the BLCR rebuild cost alone.

#include "bench_common.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

migration::MigrationReport run_one(const workload::KernelSpec& spec,
                                   migration::RestartMode mode,
                                   bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name() + "/" + std::string(migration::to_string(mode)));
  sim::Engine engine;
  cluster::ClusterConfig cfg = bench::paper_testbed();
  cfg.mig.restart_mode = mode;
  cluster::Cluster cl(engine, cfg);
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);
  migration::MigrationReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    out = co_await c.migration_manager().migrate("node3");
  }(cl, spec, report));
  engine.run_until(sim::TimePoint::origin() + 150_s);
  JOBMIG_ASSERT(cl.migration_manager().cycles_completed() == 1);
  reporter.record_engine(engine);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("ablate_memory_restart", bench::BenchOptions::parse(argc, argv));
  bench::print_header(
      "Ablation E8 — restart strategies: file vs memory vs pipelined (paper §IV-A/§VI)",
      "Fig. 4 workloads; Phase 2+3 under the three restart strategies (ms)");
  jobmig::bench::WallClock wall;

  std::printf("%-10s | %10s %10s %9s | %10s %10s %9s | %10s %10s %9s\n", "app", "mig(file)",
              "rst(file)", "total", "mig(mem)", "rst(mem)", "total", "mig(pipe)", "rst(pipe)",
              "total");
  double sim_total = 0.0;
  for (const auto& full_spec : jobmig::bench::paper_workloads()) {
    auto spec = full_spec;
    spec.iterations = std::max(50, spec.iterations / 4);
    const auto file_mode = run_one(spec, migration::RestartMode::kFile, reporter);
    const auto mem_mode = run_one(spec, migration::RestartMode::kMemory, reporter);
    const auto pipe_mode = run_one(spec, migration::RestartMode::kPipelined, reporter);
    std::printf("%-10s | %10.0f %10.0f %9.0f | %10.0f %10.0f %9.0f | %10.0f %10.0f %9.0f\n",
                spec.name().c_str(), file_mode.migration.to_ms(), file_mode.restart.to_ms(),
                file_mode.total().to_ms(), mem_mode.migration.to_ms(),
                mem_mode.restart.to_ms(), mem_mode.total().to_ms(),
                pipe_mode.migration.to_ms(), pipe_mode.restart.to_ms(),
                pipe_mode.total().to_ms());
    reporter.add_row(spec.name(), {{"file_restart_ms", file_mode.restart.to_ms()},
                                   {"file_total_ms", file_mode.total().to_ms()},
                                   {"memory_restart_ms", mem_mode.restart.to_ms()},
                                   {"memory_total_ms", mem_mode.total().to_ms()},
                                   {"pipelined_restart_ms", pipe_mode.restart.to_ms()},
                                   {"pipelined_total_ms", pipe_mode.total().to_ms()}});
    sim_total += 450.0;
  }
  std::printf("\npaper expectation: the Phase-3 file I/O disappears (memory) and the\n"
              "paper's §IV-A \"restart on-the-fly as the data arrives\" plan (pipelined)\n"
              "folds the BLCR rebuild into the transfer window, leaving Phase 3 as\n"
              "pure bookkeeping.\n");
  jobmig::bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
