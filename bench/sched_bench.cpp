/// Scheduler fast-path microbench. Exercises the engine's hot paths in
/// isolation — timer-wheel churn, the cancel/supersede pattern, the
/// far-future overflow heap, and the per-QP batched WQE/CQ pipeline — and
/// reports both deterministic virtual-time rows (gated by `jobmig-trace
/// diff` against bench/baseline_sched.json: any change in event count or
/// simulated duration is a scheduler semantics change, not noise) and
/// wall-clock throughput fields (informational; wall time is not gated).

#include "bench_common.hpp"

#include "jobmig/ib/verbs.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

struct RunStats {
  double virtual_ms = 0.0;
  std::uint64_t events = 0;
  double wall_s = 0.0;
};

void report(bench::BenchReporter& reporter, const std::string& label, const RunStats& s) {
  std::printf("%-14s %14llu %14.3f %10.3f %14.0f\n", label.c_str(),
              static_cast<unsigned long long>(s.events), s.virtual_ms, s.wall_s,
              static_cast<double>(s.events) / s.wall_s);
  reporter.add_row(label, {{"virtual_ms", s.virtual_ms},
                           {"events", static_cast<double>(s.events)},
                           {"wall_s", s.wall_s}});
}

/// Self-rescheduling callback chains: the pure wheel insert/pour/dispatch
/// cycle with zero steady-state allocations (same shape the FairShareServer
/// and per-WQE sleeps put on the engine).
RunStats timer_churn(bench::BenchReporter& reporter, int chains, int steps) {
  reporter.begin_run("timer-churn");
  sim::Engine engine;
  bench::apply_engine(engine, reporter.options());
  bench::WallClock wall;
  struct Chain {
    sim::Engine* e = nullptr;
    std::uint64_t lcg = 0;
    int remaining = 0;
    void pump() {
      if (remaining-- <= 0) return;
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const auto d = static_cast<std::int64_t>(lcg >> 44) + 1;  // up to ~1 ms
      e->call_in(sim::Duration::ns(d), [this] { pump(); });
    }
  };
  std::vector<Chain> cs(static_cast<std::size_t>(chains));
  for (std::size_t i = 0; i < cs.size(); ++i) {
    cs[i] = Chain{&engine, 0x9e3779b97f4a7c15ull + i, steps};
    cs[i].pump();
  }
  engine.run();
  reporter.record_engine(engine);
  return {engine.now().to_seconds() * 1e3, engine.events_processed(), wall.seconds()};
}

/// The cancel/supersede pattern: a driver tick retargets one of many pending
/// timers per step, so cancelled slots continually fire as no-ops — the
/// bandwidth-server reconfiguration load.
RunStats cancel_storm(bench::BenchReporter& reporter, int slots, int steps) {
  reporter.begin_run("cancel-storm");
  sim::Engine engine;
  bench::apply_engine(engine, reporter.options());
  bench::WallClock wall;
  struct Storm {
    sim::Engine* e = nullptr;
    std::uint64_t lcg = 0;
    int remaining = 0;
    std::vector<sim::Engine::TimerHandle> pending;
    void tick() {
      if (remaining-- <= 0) return;
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      auto& slot = pending[lcg % pending.size()];
      e->cancel(slot);
      slot = e->call_in(sim::Duration::ns(static_cast<std::int64_t>(lcg >> 44) + 1000), [] {});
      e->call_in(sim::Duration::ns(200), [this] { tick(); });
    }
  };
  Storm storm{&engine, 0xabcdef0123456789ull, steps, {}};
  storm.pending.resize(static_cast<std::size_t>(slots));
  storm.tick();
  engine.run();
  reporter.record_engine(engine);
  return {engine.now().to_seconds() * 1e3, engine.events_processed(), wall.seconds()};
}

/// Timers beyond the wheel span (2^40 ns): exercises the overflow min-heap
/// and its promotion/re-anchor path.
RunStats far_horizon(bench::BenchReporter& reporter, int count) {
  reporter.begin_run("far-horizon");
  sim::Engine engine;
  bench::apply_engine(engine, reporter.options());
  bench::WallClock wall;
  std::uint64_t lcg = 0x123456789abcdef1ull;
  for (int i = 0; i < count; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const auto when = static_cast<std::int64_t>(lcg % (3ull << 40));  // 0..~55 min
    engine.call_at(sim::TimePoint::from_ns(when), [] {});
  }
  engine.run();
  reporter.record_engine(engine);
  return {engine.now().to_seconds() * 1e3, engine.events_processed(), wall.seconds()};
}

/// One RC QP pair moving a burst of small messages: the per-QP submission
/// queue, the long-lived drain coroutine, and the batched CQ reap.
RunStats qp_burst(bench::BenchReporter& reporter, int messages, std::size_t msg_bytes) {
  reporter.begin_run("qp-burst");
  sim::Engine engine;
  bench::WallClock wall;
  ib::Fabric fabric(engine);
  bench::apply_engine(engine, reporter.options(), fabric.suggested_lookahead());
  ib::Hca& a = fabric.add_node("a");
  ib::Hca& b = fabric.add_node("b");
  ib::CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  auto qa = a.create_qp(a_scq, a_rcq);
  auto qb = b.create_qp(b_scq, b_rcq);
  qa->connect(ib::IbAddr{b.node(), qb->qpn()});
  qb->connect(ib::IbAddr{a.node(), qa->qpn()});

  engine.spawn([](ib::QueuePair& dst_qp, ib::CompletionQueue& rcq, int n,
                  std::size_t bytes) -> sim::Task {
    sim::Bytes buf(bytes);
    for (int i = 0; i < n; ++i) {
      dst_qp.post_recv(ib::RecvWr{static_cast<std::uint64_t>(i), buf.data(), buf.size()});
    }
    std::vector<ib::WorkCompletion> batch;
    int seen = 0;
    while (seen < n) {
      co_await rcq.wait_batch(batch);
      seen += static_cast<int>(batch.size());
    }
  }(*qb, b_rcq, messages, msg_bytes));
  engine.spawn([](ib::QueuePair& src_qp, ib::CompletionQueue& scq, int n,
                  std::size_t bytes) -> sim::Task {
    sim::Bytes payload(bytes);
    sim::pattern_fill(payload, 42, 0);
    for (int i = 0; i < n; ++i) {
      src_qp.post_send(ib::SendWr{static_cast<std::uint64_t>(i), payload});
    }
    std::vector<ib::WorkCompletion> batch;
    int seen = 0;
    while (seen < n) {
      co_await scq.wait_batch(batch);
      seen += static_cast<int>(batch.size());
    }
  }(*qa, a_scq, messages, msg_bytes));
  engine.run();
  reporter.record_engine(engine);
  return {engine.now().to_seconds() * 1e3, engine.events_processed(), wall.seconds()};
}

/// Domain-tagged timer mesh: one domain per simulated node, cross-domain
/// "messages" at exactly the IB lookahead bound (two switch hops). This is
/// the scenario that actually leaves the sequential fast path under
/// --engine=par — virtual time and event count must not move with the
/// engine mode or the worker count (the gate), only wall-clock may.
RunStats domain_sweep(bench::BenchReporter& reporter, int nodes, int steps) {
  reporter.begin_run("domain-sweep");
  sim::Engine engine;
  const sim::Duration lookahead = sim::IbParams{}.hop_latency * 2;
  bench::apply_engine(engine, reporter.options(), lookahead);
  bench::WallClock wall;
  struct Node {
    sim::Engine* e = nullptr;
    std::vector<Node>* all = nullptr;
    sim::Duration lookahead;
    std::uint32_t id = 0;
    std::uint64_t state = 0;
    int remaining = 0;
    void pump() {
      if (remaining-- <= 0) return;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      if (remaining % 4 == 0) {  // message to the next node: one switch traversal away
        Node& peer = (*all)[(id + 1) % all->size()];
        sim::DomainScope scope(peer.id + 1);
        e->call_at(e->now() + lookahead, [&peer] { peer.state ^= peer.state << 7 | 1; });
      }
      sim::DomainScope scope(id + 1);
      e->call_in(sim::Duration::ns(80 + static_cast<std::int64_t>(state % 160)),
                 [this] { pump(); });
    }
  };
  std::vector<Node> ns(static_cast<std::size_t>(nodes));
  for (std::size_t i = 0; i < ns.size(); ++i) {
    ns[i] = Node{&engine, &ns, lookahead, static_cast<std::uint32_t>(i),
                 0x9e3779b97f4a7c15ull * (i + 1), steps};
    sim::DomainScope scope(ns[i].id + 1);
    engine.call_in(sim::Duration::ns(static_cast<std::int64_t>(10 + i)),
                   [&n = ns[i]] { n.pump(); });
  }
  engine.run();
  reporter.record_engine(engine);
  return {engine.now().to_seconds() * 1e3, engine.events_processed(), wall.seconds()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("sched_bench", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Scheduler microbench — timer wheel + batched WQE/CQ fast path",
                      "deterministic event counts/virtual times; wall-clock informational");
  jobmig::bench::WallClock wall;

  std::printf("%-14s %14s %14s %10s %14s\n", "scenario", "events", "virtual-ms", "wall-s",
              "events/s");
  double sim_total = 0.0;
  const RunStats churn = timer_churn(reporter, 64, 20000);
  report(reporter, "timer-churn", churn);
  sim_total += churn.virtual_ms / 1e3;
  const RunStats storm = cancel_storm(reporter, 512, 200000);
  report(reporter, "cancel-storm", storm);
  sim_total += storm.virtual_ms / 1e3;
  const RunStats far = far_horizon(reporter, 200000);
  report(reporter, "far-horizon", far);
  sim_total += far.virtual_ms / 1e3;
  const RunStats burst = qp_burst(reporter, 20000, 4096);
  report(reporter, "qp-burst", burst);
  sim_total += burst.virtual_ms / 1e3;
  const RunStats sweep = domain_sweep(reporter, 8, 20000);
  report(reporter, "domain-sweep", sweep);
  sim_total += sweep.virtual_ms / 1e3;

  jobmig::bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
