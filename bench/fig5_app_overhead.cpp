/// Experiment E2 — paper Fig. 5: "Application Execution Time with/without
/// Migration".
///
/// LU/BT/SP class C, 64 ranks on 8 nodes: total runtime of the full run
/// without migration vs. with one migration triggered mid-run. The paper
/// reports 3.9 % (LU), 6.7 % (BT) and 4.6 % (SP) overhead.

#include "bench_common.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

double run_app(const workload::KernelSpec& spec, bool with_migration,
               bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name() + (with_migration ? "/migrated" : "/baseline"));
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);

  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, bool migrate) -> sim::Task {
    co_await c.start(workload::make_app(s));
    if (migrate) {
      co_await sim::sleep_for(30_s);  // one migration mid-run
      (void)co_await c.migration_manager().migrate("node3");
    }
  }(cl, spec, with_migration));

  double done_at = -1.0;
  engine.spawn([](cluster::Cluster& c, double& out) -> sim::Task {
    co_await c.job().wait_app_done();
    out = sim::Engine::current()->now().to_seconds();
  }(cl, done_at));
  engine.run_until(sim::TimePoint::origin() + sim::Duration::sec(1200));
  JOBMIG_ASSERT_MSG(done_at > 0.0, "application did not finish");
  reporter.record_engine(engine);
  return done_at;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig5_app_overhead", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Fig. 5 — Application execution time, 0 vs 1 migration",
                      "LU/BT/SP class C, 64 procs on 8 nodes (times in s)");
  jobmig::bench::WallClock wall;

  std::printf("%-10s %14s %14s %10s   %s\n", "app", "no-migration", "1-migration", "overhead",
              "(paper overhead)");
  const char* paper[] = {"3.9%", "6.7%", "4.6%"};
  int i = 0;
  double sim_total = 0.0;
  for (const auto& spec : jobmig::bench::paper_workloads()) {
    const double base = run_app(spec, false, reporter);
    const double with_mig = run_app(spec, true, reporter);
    const double overhead = (with_mig - base) / base * 100.0;
    std::printf("%-10s %14.1f %14.1f %9.1f%%   %s\n", spec.name().c_str(), base, with_mig,
                overhead, paper[i++]);
    reporter.add_row(spec.name(), {{"baseline_s", base},
                                   {"migrated_s", with_mig},
                                   {"overhead_pct", overhead}});
    sim_total += base + with_mig;
  }
  jobmig::bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
