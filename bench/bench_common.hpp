#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/telemetry/export.hpp"
#include "jobmig/telemetry/telemetry.hpp"
#include "jobmig/workload/npb.hpp"

/// Shared scaffolding for the experiment harnesses. Each bench binary
/// regenerates one table/figure of the paper: it builds the paper's testbed
/// (8 compute nodes + spare, DDR IB, GigE, PVFS on 4 servers), runs the
/// workload in virtual time, and prints the same rows/series the paper
/// reports, alongside the paper's published values where applicable.
namespace jobmig::bench {

/// The paper's testbed: 8 compute nodes + 1 hot spare.
inline cluster::ClusterConfig paper_testbed(int compute_nodes = 8, int spare_nodes = 1) {
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = compute_nodes;
  cfg.spare_nodes = spare_nodes;
  return cfg;
}

struct WallClock {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_footer(const WallClock& wall, double sim_seconds) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("(simulated %.1f s of cluster time in %.1f s of wall time)\n\n", sim_seconds,
              wall.seconds());
}

/// Command-line options shared by every bench binary. Telemetry (spans +
/// metrics) is recorded only when at least one output file is requested, so
/// a plain run stays on the zero-cost disabled path.
struct BenchOptions {
  std::string json_out;   // --json-out FILE: versioned summary JSON
  std::string trace_out;  // --trace-out FILE: Chrome trace_event JSON
  /// Phase-3 strategy; pipelined (on-the-fly) restart is the default, the
  /// paper's original file-based restart is reproduced with --restart=file.
  migration::RestartMode restart = migration::RestartMode::kPipelined;
  /// --quick: benches that support it run a reduced configuration (CI smoke
  /// runs); rows keep their labels so diffs against a quick baseline line up.
  bool quick = false;
  /// --engine=seq|par[:N]: run the sim engine sequentially (the golden
  /// reference) or in the conservative-lookahead parallel mode with N
  /// workers (default: hardware concurrency). Virtual-time results are
  /// bit-identical either way (DESIGN.md §9) — the flag only changes how
  /// much wall-clock the run costs, so every deterministic gate still holds.
  bool engine_par = false;
  std::size_t engine_workers = 0;  // 0 = pick from hardware concurrency

  bool telemetry() const { return !json_out.empty() || !trace_out.empty(); }

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    auto take = [&](int& i, const char* flag) -> std::string {
      const std::size_t n = std::strlen(flag);
      if (std::strncmp(argv[i], flag, n) == 0 && argv[i][n] == '=') return argv[i] + n + 1;
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[++i];
      return {};
    };
    for (int i = 1; i < argc; ++i) {
      std::string v;
      if (std::strcmp(argv[i], "--quick") == 0) {
        opts.quick = true;
      } else if (!(v = take(i, "--json-out")).empty()) {
        opts.json_out = v;
      } else if (!(v = take(i, "--trace-out")).empty()) {
        opts.trace_out = v;
      } else if (!(v = take(i, "--restart")).empty()) {
        if (v == "file") {
          opts.restart = migration::RestartMode::kFile;
        } else if (v == "memory") {
          opts.restart = migration::RestartMode::kMemory;
        } else if (v == "pipelined") {
          opts.restart = migration::RestartMode::kPipelined;
        } else {
          std::fprintf(stderr, "unknown --restart mode '%s' (file|memory|pipelined)\n",
                       v.c_str());
          std::exit(2);
        }
      } else if (!(v = take(i, "--engine")).empty()) {
        if (v == "seq") {
          opts.engine_par = false;
        } else if (v == "par" || v.rfind("par:", 0) == 0) {
          opts.engine_par = true;
          if (v.size() > 4) {
            const long n = std::strtol(v.c_str() + 4, nullptr, 10);
            if (n < 1) {
              std::fprintf(stderr, "--engine=par:N wants N >= 1, got '%s'\n", v.c_str());
              std::exit(2);
            }
            opts.engine_workers = static_cast<std::size_t>(n);
          }
        } else {
          std::fprintf(stderr, "unknown --engine mode '%s' (seq|par[:N])\n", v.c_str());
          std::exit(2);
        }
      } else {
        std::fprintf(stderr,
                     "usage: %s [--json-out FILE] [--trace-out FILE]"
                     " [--restart file|memory|pipelined] [--engine seq|par[:N]] [--quick]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return opts;
  }
};

/// Testbed with the bench's command-line restart mode applied.
inline cluster::ClusterConfig paper_testbed(const BenchOptions& opts, int compute_nodes = 8,
                                            int spare_nodes = 1) {
  cluster::ClusterConfig cfg = paper_testbed(compute_nodes, spare_nodes);
  cfg.mig.restart_mode = opts.restart;
  return cfg;
}

/// Apply --engine to a freshly built engine. `lookahead` is the model's
/// conservative bound (Fabric/Network::suggested_lookahead()); pass zero for
/// workloads that never tag domains — they stay on the sequential fast path
/// even with --engine=par, and the flag is then a no-op by construction.
inline void apply_engine(sim::Engine& e, const BenchOptions& opts,
                         sim::Duration lookahead = sim::Duration::zero()) {
  if (lookahead.count_ns() > 0) e.set_lookahead(lookahead);
  if (!opts.engine_par) return;
  std::size_t workers = opts.engine_workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 1;
  }
  e.enable_parallel(workers);
}

/// Collects the bench's printed rows as machine-readable key/value fields
/// and, when requested, writes the `jobmig-bench-v2` summary JSON and the
/// Chrome trace. Owns the telemetry session for the whole binary.
///
/// v2 adds `restart_mode` at the top level and a `trace_id` per row (0 when
/// the row was produced untraced), so `jobmig-trace` can join a summary row
/// to its causal DAG in the matching --trace-out file. v1 files (no
/// trace_id, no restart_mode) are still read by `jobmig-trace diff`.
class BenchReporter {
 public:
  using Fields = std::vector<std::pair<std::string, double>>;

  BenchReporter(std::string bench, BenchOptions opts)
      : bench_(std::move(bench)), opts_(std::move(opts)) {
    if (opts_.telemetry()) scope_.emplace(session_);
  }

  const BenchOptions& options() const { return opts_; }
  bool telemetry_on() const { return opts_.telemetry(); }

  /// Group subsequent spans under one Chrome pid (one per engine run).
  void begin_run(const std::string& name) {
    if (telemetry_on()) session_.trace.set_process(name);
  }

  /// Publish the engine's scheduler internals into the summary metrics so
  /// future scheduler regressions show up in --json-out without a profiler.
  /// Counters accumulate across runs; the peak queue depth is a gauge whose
  /// high watermark is the max over all runs.
  void record_engine(const sim::Engine& e) {
    if (!telemetry_on()) return;
    auto& m = session_.metrics;
    m.counter("sim.engine.events_processed").add(e.events_processed());
    m.counter("sim.engine.frames_spawned").add(e.frames_spawned());
    m.counter("sim.engine.wheel_scheduled").add(e.wheel_scheduled());
    m.counter("sim.engine.overflow_scheduled").add(e.overflow_scheduled());
    m.gauge("sim.engine.peak_queue_depth").set(static_cast<double>(e.peak_queue_depth()));
    // Parallel-mode internals (DESIGN.md §9). Reported, never gated: worker
    // attribution depends on the batch->worker race, only the replayed
    // totals are deterministic.
    if (e.parallel_enabled() || e.parallel_windows() > 0) {
      m.counter("sim.engine.par.windows").add(e.parallel_windows());
      m.counter("sim.engine.par.serial_windows").add(e.parallel_serial_windows());
      m.counter("sim.engine.par.batches").add(e.parallel_batches());
      m.counter("sim.engine.par.events").add(e.parallel_events());
      const auto& per_worker = e.worker_event_counts();
      for (std::size_t w = 0; w < per_worker.size(); ++w) {
        m.counter("sim.engine.par.worker." + std::to_string(w) + ".events")
            .add(per_worker[w]);
      }
    }
  }

  /// One summary row; field keys mirror the printed table's columns.
  /// `trace_id` is the causal-trace id of the migration cycle the row
  /// measures, when there is one.
  void add_row(std::string label, Fields fields, std::uint64_t trace_id = 0) {
    rows_.push_back(Row{std::move(label), std::move(fields), trace_id});
  }

  /// Write the requested output files. Returns false if any write failed.
  bool finish() {
    bool ok = true;
    if (!opts_.json_out.empty()) {
      std::ofstream os(opts_.json_out);
      if (!os) {
        std::fprintf(stderr, "cannot open %s\n", opts_.json_out.c_str());
        ok = false;
      } else {
        telemetry::JsonWriter w(os);
        w.begin_object();
        w.field("format", "jobmig-bench-v2");
        w.field("bench", bench_);
        w.field("restart_mode", migration::to_string(opts_.restart));
        w.key("rows").begin_array();
        for (const auto& row : rows_) {
          w.begin_object();
          w.field("label", row.label);
          w.field("trace_id", row.trace_id);
          for (const auto& [k, v] : row.fields) w.field(k, v);
          w.end_object();
        }
        w.end_array();
        w.key("metrics");
        telemetry::write_metrics(w, session_.metrics);
        w.end_object();
        std::printf("summary JSON: %s\n", opts_.json_out.c_str());
      }
    }
    if (!opts_.trace_out.empty()) {
      if (telemetry::write_chrome_trace_file(session_.trace, opts_.trace_out)) {
        std::printf("Chrome trace: %s (open in chrome://tracing or ui.perfetto.dev)\n",
                    opts_.trace_out.c_str());
      } else {
        std::fprintf(stderr, "cannot open %s\n", opts_.trace_out.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  struct Row {
    std::string label;
    Fields fields;
    std::uint64_t trace_id = 0;
  };

  std::string bench_;
  BenchOptions opts_;
  telemetry::Telemetry session_;
  std::optional<telemetry::TelemetryScope> scope_;  // installed only when recording
  std::vector<Row> rows_;
};

/// One LU/BT/SP class-C 64-rank spec per paper workload.
inline std::vector<workload::KernelSpec> paper_workloads(int nprocs = 64,
                                                         double runtime_scale = 1.0) {
  return {
      workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kC, nprocs, runtime_scale),
      workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kC, nprocs, runtime_scale),
      workload::make_spec(workload::NpbApp::kSP, workload::NpbClass::kC, nprocs, runtime_scale),
  };
}

}  // namespace jobmig::bench
