#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

/// Shared scaffolding for the experiment harnesses. Each bench binary
/// regenerates one table/figure of the paper: it builds the paper's testbed
/// (8 compute nodes + spare, DDR IB, GigE, PVFS on 4 servers), runs the
/// workload in virtual time, and prints the same rows/series the paper
/// reports, alongside the paper's published values where applicable.
namespace jobmig::bench {

/// The paper's testbed: 8 compute nodes + 1 hot spare.
inline cluster::ClusterConfig paper_testbed(int compute_nodes = 8, int spare_nodes = 1) {
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = compute_nodes;
  cfg.spare_nodes = spare_nodes;
  return cfg;
}

struct WallClock {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  }
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void print_footer(const WallClock& wall, double sim_seconds) {
  std::printf("----------------------------------------------------------------\n");
  std::printf("(simulated %.1f s of cluster time in %.1f s of wall time)\n\n", sim_seconds,
              wall.seconds());
}

/// One LU/BT/SP class-C 64-rank spec per paper workload.
inline std::vector<workload::KernelSpec> paper_workloads(int nprocs = 64,
                                                         double runtime_scale = 1.0) {
  return {
      workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kC, nprocs, runtime_scale),
      workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kC, nprocs, runtime_scale),
      workload::make_spec(workload::NpbApp::kSP, workload::NpbClass::kC, nprocs, runtime_scale),
  };
}

}  // namespace jobmig::bench
