/// Experiment E10 — the paper's §VI outlook, quantified: proactive
/// migration "has the potential to benefit the existing Checkpoint/Restart
/// strategy by prolonging the interval between full job-wide checkpoints."
///
/// Scenario: BT.C.64 with periodic coordinated checkpoints; one node is
/// predicted to fail mid-run.
///   (a) CR-only      — the job dies at the failure and restarts from the
///                      last checkpoint; work since then is recomputed.
///   (b) CR+migration — the failure is handled by migrating the node's
///                      ranks; no restart, no lost work, and the checkpoint
///                      that was imminent is pushed out.
/// Reported per checkpoint interval: fault-tolerance I/O volume, time spent
/// in FT machinery, and recomputed (lost) work.

#include "bench_common.hpp"

#include "jobmig/migration/scheduler.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

struct Outcome {
  std::size_t checkpoints = 0;
  double ft_io_mb = 0;        // checkpoint dumps + migration traffic + restart reads
  double ft_time_s = 0;       // stall+dump+resume (+migration cycle / restart read)
  double lost_work_s = 0;     // recomputation after a reactive restart
};

/// Both strategies share this rig: BT.C.64 on 8 nodes + spare, periodic
/// checkpoints to local disks, failure predicted at t = `failure_at`.
Outcome run(bool with_migration, sim::Duration interval, sim::Duration failure_at,
            bench::BenchReporter& reporter) {
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed());
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kC, 64, 0.6);
  cl.create_job(8, spec.image_bytes_per_rank);
  auto cr = cl.make_cr_local();
  migration::CheckpointScheduler scheduler(cl.job(), *cr,
                                           {interval, /*prolong_on_migration=*/true});

  Outcome out;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::CheckpointScheduler& sched, sim::Duration fail_at, bool migrate,
                  Outcome& o) -> sim::Task {
    co_await c.start(workload::make_app(s));
    sched.start();
    co_await sim::sleep_for(fail_at);
    if (migrate) {
      auto report = co_await c.migration_manager().migrate("node3");
      sched.notify_migration();
      o.ft_io_mb += static_cast<double>(report.bytes_moved) / 1e6;
      o.ft_time_s += report.total().to_seconds();
    } else if (sched.checkpoints_taken() > 0) {
      // Reactive CR: the job aborts and restarts from the last checkpoint.
      sim::Duration restart_time{};
      auto images = co_await c.make_cr_local()->restart_all(&restart_time);
      double dumped = 0;
      for (auto& img : images) dumped += static_cast<double>(proc::Blcr::stream_size(*img)) / 1e6;
      o.ft_io_mb += dumped;  // the restart re-reads every image
      o.ft_time_s += restart_time.to_seconds();
      o.lost_work_s =
          (sim::Engine::current()->now() - sched.last_checkpoint()).to_seconds() -
          restart_time.to_seconds();
    } else {
      // No checkpoint exists yet: the job is resubmitted from scratch and
      // everything computed so far is lost.
      o.lost_work_s = (sim::Engine::current()->now() - sched.last_checkpoint()).to_seconds();
    }
    co_await c.job().wait_app_done();
    sched.stop();
  }(cl, spec, scheduler, failure_at, with_migration, out));
  engine.run_until(sim::TimePoint::origin() + sim::Duration::sec(1200));
  JOBMIG_ASSERT_MSG(cl.job().app_done(), "application did not finish");

  out.checkpoints = scheduler.checkpoints_taken();
  out.ft_io_mb += static_cast<double>(scheduler.bytes_written()) / 1e6;
  out.ft_time_s += scheduler.time_in_checkpoints().to_seconds();
  reporter.record_engine(engine);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Ablation E10 — periodic CR alone vs CR + proactive migration (paper §VI)",
      "BT.C.64, one predicted node failure at t=50 s; checkpoints to local ext3");
  jobmig::bench::WallClock wall;
  jobmig::bench::BenchReporter reporter("ablate_cr_interval",
                                        jobmig::bench::BenchOptions::parse(argc, argv));

  std::printf("%-10s %-14s %8s %12s %12s %12s\n", "interval", "strategy", "ckpts",
              "FT I/O (MB)", "FT time (s)", "lost work (s)");
  for (int interval_s : {30, 60, 120}) {
    for (bool migrate : {false, true}) {
      const std::string label = std::to_string(interval_s) + "s/" +
                                (migrate ? "cr+migration" : "cr-only");
      reporter.begin_run(label);
      Outcome o = run(migrate, sim::Duration::sec(interval_s), 50_s, reporter);
      std::printf("%8ds  %-14s %8zu %12.0f %12.1f %12.1f\n", interval_s,
                  migrate ? "CR+migration" : "CR-only", o.checkpoints, o.ft_io_mb, o.ft_time_s,
                  o.lost_work_s);
      reporter.add_row(label, {{"checkpoints", static_cast<double>(o.checkpoints)},
                               {"ft_io_mb", o.ft_io_mb},
                               {"ft_time_s", o.ft_time_s},
                               {"lost_work_s", o.lost_work_s}});
    }
  }
  std::printf("\npaper expectation: migration absorbs the failure without a job-wide\n"
              "restart, avoids re-dumps, and lets checkpoints stretch out — less\n"
              "I/O, less FT time, zero recomputation.\n");
  jobmig::bench::print_footer(wall, 600.0);
  return reporter.finish() ? 0 : 1;
}
