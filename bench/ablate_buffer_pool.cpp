/// Experiment E6 — §IV-A claim: "the process-migration overhead does not
/// vary significantly as buffer pool size changes ... therefore we stick to
/// 10 MB buffer pool and 1 MB chunk size".
///
/// Sweep pool size x chunk size for a BT.C-sized source-node transfer
/// (8 ranks x 38.6 MB images) through the RDMA buffer pool and report the
/// Phase-2 time for each configuration.

#include "bench_common.hpp"

#include "jobmig/migration/buffer_manager.hpp"
#include "jobmig/proc/blcr.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

/// Checkpoint 8 BT.C-sized processes through the pool; returns virtual
/// seconds from first checkpoint write to DONE-ack.
double run_transfer(migration::PoolConfig cfg, bench::BenchReporter& reporter) {
  reporter.begin_run("pool" + std::to_string(cfg.pool_bytes / 1000000) + "MB.chunk" +
                     std::to_string(cfg.chunk_bytes / 1000) + "kB");
  sim::Engine engine;
  ib::Fabric fabric(engine);
  bench::apply_engine(engine, reporter.options(), fabric.suggested_lookahead());
  ib::Hca& src = fabric.add_node("src");
  ib::Hca& dst = fabric.add_node("dst");
  proc::Blcr blcr(engine);
  auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kC, 64);

  double elapsed = -1.0;
  engine.spawn([](ib::Hca& sh, ib::Hca& dh, proc::Blcr& b, migration::PoolConfig pc,
                  std::uint64_t image_bytes, double& out) -> sim::Task {
    migration::TargetBufferManager tmgr(dh, pc);
    migration::SourceBufferManager smgr(sh, pc);
    ib::IbAddr taddr = co_await tmgr.open();
    ib::IbAddr saddr = co_await smgr.open(taddr);
    tmgr.connect_to(saddr);
    smgr.start();
    sim::TaskGroup serve_group(*sim::Engine::current());
    serve_group.spawn(tmgr.serve());

    const double start = sim::Engine::current()->now().to_seconds();
    std::vector<std::unique_ptr<proc::SimProcess>> procs;
    std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
    sim::TaskGroup ckpt_group(*sim::Engine::current());
    for (int r = 0; r < 8; ++r) {
      procs.push_back(std::make_unique<proc::SimProcess>(
          proc::ProcessIdentity{static_cast<std::uint32_t>(100 + r), r, "bt.C"}, image_bytes,
          777 + static_cast<std::uint64_t>(r)));
      sinks.push_back(smgr.make_sink(r));
      ckpt_group.spawn(b.checkpoint(*procs.back(), *sinks.back()));
    }
    co_await ckpt_group.wait();
    co_await smgr.finish();
    co_await serve_group.wait();
    out = sim::Engine::current()->now().to_seconds() - start;
  }(src, dst, blcr, cfg, spec.image_bytes_per_rank, elapsed));
  engine.run();
  JOBMIG_ASSERT(elapsed > 0.0);
  reporter.record_engine(engine);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("ablate_buffer_pool", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Ablation E6 — buffer pool / chunk size sensitivity",
                      "§IV-A: 10 MB pool, 1 MB chunks chosen; overhead insensitive to size");
  jobmig::bench::WallClock wall;

  using namespace jobmig::sim::literals;  // _MiB, _KiB
  std::printf("%-12s", "pool\\chunk");
  const std::uint64_t chunks[] = {256_KiB, 1_MiB, 4_MiB};
  for (std::uint64_t c : chunks) std::printf(" %9.2f MB", static_cast<double>(c) / 1e6);
  std::printf("   (Phase-2 seconds, 8 x BT.C images = ~309 MB)\n");

  for (std::uint64_t pool : {2_MiB, 5_MiB, 10_MiB, 20_MiB, 40_MiB}) {
    std::printf("%9.0f MB", static_cast<double>(pool) / 1e6);
    for (std::uint64_t chunk : chunks) {
      if (chunk > pool) {
        std::printf(" %12s", "-");
        continue;
      }
      migration::PoolConfig cfg;
      cfg.pool_bytes = pool;
      cfg.chunk_bytes = chunk;
      const double seconds = run_transfer(cfg, reporter);
      std::printf(" %12.3f", seconds);
      reporter.add_row("pool" + std::to_string(pool / 1000000) + "MB.chunk" +
                           std::to_string(chunk / 1000) + "kB",
                       {{"phase2_s", seconds}});
    }
    std::printf("\n");
  }
  std::printf("\npaper shape: a flat surface — transfer is pipeline-bound, not\n"
              "pool-bound, once a couple of chunks can be in flight.\n");
  jobmig::bench::print_footer(wall, 15.0);
  return reporter.finish() ? 0 : 1;
}
