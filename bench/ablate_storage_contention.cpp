/// Experiment E9 — §IV-C analysis: "the low I/O bandwidth achieved by PVFS
/// can be ascribed to the contentions caused by the concurrent I/O streams
/// to write/read checkpoint files to/from the shared storage."
///
/// Aggregate checkpoint-write bandwidth vs. concurrent writer count, on one
/// node-local ext3 disk and on the shared 4-server PVFS.

#include "bench_common.hpp"

#include "jobmig/storage/filesystem.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

int id_counter_ = 0;

/// Aggregate MB/s when `writers` streams of `bytes_each` dump concurrently.
double aggregate_bandwidth(storage::FileSystem& fs, sim::Engine& engine, int writers,
                           std::uint64_t bytes_each) {
  double finished = -1.0;
  const double start = engine.now().to_seconds();
  for (int w = 0; w < writers; ++w) {
    engine.spawn([](storage::FileSystem& f, int id, std::uint64_t n, double& out) -> sim::Task {
      auto file = co_await f.create("/stream" + std::to_string(id));
      sim::Bytes chunk(1 << 20);
      sim::pattern_fill(chunk, static_cast<std::uint64_t>(id), 0);
      for (std::uint64_t pos = 0; pos < n; pos += chunk.size()) {
        co_await file->pwrite(pos, chunk);
      }
      out = std::max(out, sim::Engine::current()->now().to_seconds());
    }(fs, id_counter_++, bytes_each, finished));
  }
  engine.run();
  const double elapsed = finished - start;
  return static_cast<double>(writers) * static_cast<double>(bytes_each) / elapsed / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Ablation E9 — storage contention under concurrent checkpoint streams",
                      "§IV-C: aggregate write bandwidth vs writer count (MB/s)");
  jobmig::bench::WallClock wall;
  jobmig::bench::BenchReporter reporter("ablate_storage_contention",
                                        jobmig::bench::BenchOptions::parse(argc, argv));

  std::printf("%-10s %14s %16s %18s\n", "writers", "ext3 (MB/s)", "PVFS (MB/s)",
              "PVFS per-stream");
  sim::Calibration cal;
  for (int writers : {1, 2, 4, 8, 16}) {
    reporter.begin_run(std::to_string(writers) + "writers");
    sim::Engine e1;
    bench::apply_engine(e1, reporter.options());
    storage::LocalFs ext3(e1, cal.disk);
    const double ext3_bw = aggregate_bandwidth(ext3, e1, writers, 64ull << 20);
    reporter.record_engine(e1);

    sim::Engine e2;
    bench::apply_engine(e2, reporter.options());
    storage::ParallelFs pvfs(e2, cal.pvfs);
    const double pvfs_bw = aggregate_bandwidth(pvfs, e2, writers, 64ull << 20);
    reporter.record_engine(e2);

    std::printf("%-10d %14.1f %16.1f %18.1f\n", writers, ext3_bw, pvfs_bw,
                pvfs_bw / writers);
    reporter.add_row(std::to_string(writers) + "writers",
                     {{"ext3_MBps", ext3_bw},
                      {"pvfs_MBps", pvfs_bw},
                      {"pvfs_per_stream_MBps", pvfs_bw / writers}});
  }
  std::printf("\npaper shape: a single stream enjoys PVFS striping (~4 servers), but\n"
              "aggregate bandwidth saturates and per-stream bandwidth collapses as\n"
              "checkpoint streams pile up — the CR(PVFS) penalty of Fig. 7.\n");
  jobmig::bench::print_footer(wall, 60.0);
  return reporter.finish() ? 0 : 1;
}
