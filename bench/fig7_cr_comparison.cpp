/// Experiment E4 — paper Fig. 7 (a,b,c): "Comparing Job Migration with
/// Checkpoint/Restart (CR)".
///
/// For LU/BT/SP class C at 64 ranks: one Job Migration cycle vs. a complete
/// CR cycle to node-local ext3 and to PVFS, decomposed into the paper's
/// stacks (Job Stall / Checkpoint(Migration) / Resume / Restart).
///
/// Headline shape: LU.C.64 migration completes in ~6.3 s; CR(ext3) full
/// cycle ~12.9 s (2.03x); CR(PVFS) ~28.3 s (4.49x). Checkpoint-only
/// comparisons: migration comparable to ext3 dumps, 2.6x faster than PVFS.

#include "bench_common.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

struct Stacks {
  migration::MigrationReport mig;
  migration::CrReport cr_ext3;
  migration::CrReport cr_pvfs;
};

migration::MigrationReport run_migration(const workload::KernelSpec& spec,
                                         bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name() + "/migration");
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);
  migration::MigrationReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    out = co_await c.migration_manager().migrate("node3");
  }(cl, spec, report));
  engine.run_until(sim::TimePoint::origin() + 150_s);
  JOBMIG_ASSERT(cl.migration_manager().cycles_completed() == 1);
  reporter.record_engine(engine);
  return report;
}

migration::CrReport run_cr(const workload::KernelSpec& spec, bool pvfs,
                           bench::BenchReporter& reporter) {
  reporter.begin_run(spec.name() + (pvfs ? "/cr-pvfs" : "/cr-ext3"));
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options()));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);
  migration::CrReport report;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, bool use_pvfs,
                  migration::CrReport& out) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    auto cr = use_pvfs ? c.make_cr_pvfs() : c.make_cr_local();
    out = co_await cr->full_cycle();
  }(cl, spec, pvfs, report));
  engine.run_until(sim::TimePoint::origin() + 300_s);
  JOBMIG_ASSERT_MSG(report.checkpoint_files > 0, "CR cycle did not complete");
  reporter.record_engine(engine);
  return report;
}

void print_stacks(const workload::KernelSpec& spec, const Stacks& s) {
  std::printf("\n--- %s (times in ms) ---\n", spec.name().c_str());
  std::printf("%-12s %10s %20s %10s %10s %12s\n", "strategy", "job-stall", "ckpt(migration)",
              "resume", "restart", "cycle-total");
  std::printf("%-12s %10.0f %20.0f %10.0f %10.0f %12.0f\n", "Migration",
              s.mig.stall.to_ms(), s.mig.migration.to_ms(), s.mig.resume.to_ms(),
              s.mig.restart.to_ms(), s.mig.total().to_ms());
  std::printf("%-12s %10.0f %20.0f %10.0f %10.0f %12.0f\n", "CR(ext3)",
              s.cr_ext3.stall.to_ms(), s.cr_ext3.checkpoint.to_ms(), s.cr_ext3.resume.to_ms(),
              s.cr_ext3.restart.to_ms(), s.cr_ext3.cycle_total().to_ms());
  std::printf("%-12s %10.0f %20.0f %10.0f %10.0f %12.0f\n", "CR(PVFS)",
              s.cr_pvfs.stall.to_ms(), s.cr_pvfs.checkpoint.to_ms(), s.cr_pvfs.resume.to_ms(),
              s.cr_pvfs.restart.to_ms(), s.cr_pvfs.cycle_total().to_ms());
  std::printf("speedup vs CR(ext3): %.2fx   vs CR(PVFS): %.2fx\n",
              s.cr_ext3.cycle_total().to_seconds() / s.mig.total().to_seconds(),
              s.cr_pvfs.cycle_total().to_seconds() / s.mig.total().to_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("fig7_cr_comparison", bench::BenchOptions::parse(argc, argv));
  bench::print_header("Fig. 7 — Job Migration vs Checkpoint/Restart",
                      "LU/BT/SP class C, 64 procs; CR to local ext3 and PVFS");
  jobmig::bench::WallClock wall;
  double sim_total = 0.0;
  for (const auto& spec : jobmig::bench::paper_workloads()) {
    Stacks s;
    s.mig = run_migration(spec, reporter);
    s.cr_ext3 = run_cr(spec, /*pvfs=*/false, reporter);
    s.cr_pvfs = run_cr(spec, /*pvfs=*/true, reporter);
    print_stacks(spec, s);
    reporter.add_row(spec.name(),
                     {{"migration_total_ms", s.mig.total().to_ms()},
                      {"cr_ext3_total_ms", s.cr_ext3.cycle_total().to_ms()},
                      {"cr_pvfs_total_ms", s.cr_pvfs.cycle_total().to_ms()},
                      {"speedup_vs_ext3",
                       s.cr_ext3.cycle_total().to_seconds() / s.mig.total().to_seconds()},
                      {"speedup_vs_pvfs",
                       s.cr_pvfs.cycle_total().to_seconds() / s.mig.total().to_seconds()}});
    sim_total += 750.0;
  }
  std::printf("\npaper headline (LU.C.64): migration 6.3 s; CR(ext3) 12.9 s -> 2.03x;\n"
              "CR(PVFS) 28.3 s -> 4.49x.\n");
  jobmig::bench::print_footer(wall, sim_total);
  return reporter.finish() ? 0 : 1;
}
