/// Experiment O1 — cluster-wide migration orchestrator: many jobs,
/// concurrent cycles, spare-pool placement.
///
/// Beyond the paper: the paper migrates one job away from one failing node
/// at a time. The orchestrator layer runs several jobs on disjoint node
/// sets sharing one spare pool and lets node-disjoint cycles proceed
/// concurrently (per-node-set leases), bounded by an admission cap.
///
/// Setup: 8 compute nodes + 4 spares, four 2-node jobs (2 ranks/node).
/// One node of every job is drained at t=2s. The admission cap sweeps
/// 1 (the serialized baseline, equivalent to the seed's global FT lock),
/// 2 and 4. Expectations encoded below:
///   - with cap >= 2, at least 2 cycles' execution windows overlap;
///   - per-cycle downtime stays within 10% of the cap-1 baseline (cycles
///     of disjoint jobs do not slow each other down);
///   - makespan shrinks monotonically as the cap rises.

#include <algorithm>

#include "bench_common.hpp"
#include "jobmig/orch/orchestrator.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;
using jobmig::bench::WallClock;

constexpr int kJobs = 4;

struct FleetResult {
  std::vector<orch::CycleOutcome> outcomes;
  double makespan_ms = 0.0;
  double mean_downtime_ms = 0.0;
  double max_downtime_ms = 0.0;
  int max_overlap = 0;  // peak number of concurrently-executing cycles
};

sim::Task run_cycle(orch::Orchestrator& orch, int job_id, std::string src,
                    std::vector<orch::CycleOutcome>* out) {
  orch::CycleOutcome oc = co_await orch.migrate_job(job_id, std::move(src));
  out->push_back(std::move(oc));
}

sim::Task drive_fleet(cluster::Cluster& cl, orch::Orchestrator& orch, workload::KernelSpec spec,
                      std::vector<orch::CycleOutcome>* out) {
  for (const auto& mj : cl.managed_jobs()) {
    co_await cl.start_managed(*mj, workload::make_app(spec));
  }
  co_await sim::sleep_for(2_s);
  // Drain the first node of every job, all requests arriving together.
  for (const auto& mj : cl.managed_jobs()) {
    cl.engine().spawn(run_cycle(orch, mj->job_id, cl.node_name(mj->compute_nodes.front()), out));
  }
}

FleetResult run_fleet(std::size_t cap, bench::BenchReporter& reporter) {
  reporter.begin_run("cap" + std::to_string(cap));
  sim::Engine engine;
  cluster::Cluster cl(engine, bench::paper_testbed(reporter.options(), 8, kJobs));
  bench::apply_engine(engine, reporter.options(), cl.fabric().suggested_lookahead());

  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 4, 0.2);
  spec.time_per_iter = 1_s;  // keep every job alive across the whole sweep
  for (int j = 0; j < kJobs; ++j) {
    cl.add_job("job" + std::to_string(j), {2 * j, 2 * j + 1}, 2, spec.image_bytes_per_rank);
  }

  orch::OrchestratorConfig ocfg;
  ocfg.max_concurrent_cycles = cap;
  orch::Orchestrator orch(cl, ocfg);

  FleetResult res;
  engine.spawn(drive_fleet(cl, orch, spec, &res.outcomes));
  engine.run_until(sim::TimePoint::origin() + 300_s);
  JOBMIG_ASSERT_MSG(res.outcomes.size() == kJobs, "not every cycle completed");

  sim::TimePoint first_start = sim::TimePoint::max();
  sim::TimePoint last_finish = sim::TimePoint::origin();
  double sum_ms = 0.0;
  for (const auto& oc : res.outcomes) {
    JOBMIG_ASSERT_MSG(!oc.report.aborted, "orchestrated cycle aborted");
    first_start = std::min(first_start, oc.started);
    last_finish = std::max(last_finish, oc.finished);
    // Downtime = the phases where ranks are actually suspended. Phase-1
    // stall (waiting for the iteration sync point) depends only on where
    // each job happened to be in its iteration when the cycle began, so it
    // would drown the concurrency signal in sync-phase noise.
    const double ms = (oc.report.migration + oc.report.restart + oc.report.resume).to_ms();
    sum_ms += ms;
    res.max_downtime_ms = std::max(res.max_downtime_ms, ms);
  }
  res.makespan_ms = (last_finish - first_start).to_ms();
  res.mean_downtime_ms = sum_ms / static_cast<double>(res.outcomes.size());

  // Peak concurrency: sweep the execution windows.
  std::vector<std::pair<std::int64_t, int>> edges;
  for (const auto& oc : res.outcomes) {
    edges.emplace_back(oc.started.count_ns(), +1);
    edges.emplace_back(oc.finished.count_ns(), -1);
  }
  std::sort(edges.begin(), edges.end());
  int cur = 0;
  for (const auto& [t, d] : edges) {
    cur += d;
    res.max_overlap = std::max(res.max_overlap, cur);
  }
  reporter.record_engine(engine);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("bench_orchestrator", bench::BenchOptions::parse(argc, argv));
  bench::print_header("O1 — orchestrated concurrent migration cycles",
                      "4 two-node jobs + 4 spares; admission cap 1 (serial) vs 2 vs 4");
  WallClock wall;

  std::printf("%-6s %12s %17s %16s %10s\n", "cap", "makespan", "mean-downtime", "max-downtime",
              "overlap");

  const std::size_t caps[] = {1, 2, 4};
  std::vector<FleetResult> results;
  for (std::size_t cap : caps) {
    FleetResult r = run_fleet(cap, reporter);
    std::printf("%-6zu %9.0f ms %14.0f ms %13.0f ms %10d\n", cap, r.makespan_ms,
                r.mean_downtime_ms, r.max_downtime_ms, r.max_overlap);
    reporter.add_row("cap" + std::to_string(cap),
                     {{"makespan_ms", r.makespan_ms},
                      {"mean_downtime_ms", r.mean_downtime_ms},
                      {"max_downtime_ms", r.max_downtime_ms},
                      {"max_overlap", static_cast<double>(r.max_overlap)},
                      {"cycles", static_cast<double>(r.outcomes.size())}});
    results.push_back(std::move(r));
  }

  // Acceptance: concurrency actually happened, and it was free.
  JOBMIG_ASSERT_MSG(results[1].max_overlap >= 2,
                    "cap=2 run produced no concurrent disjoint cycles");
  JOBMIG_ASSERT_MSG(results[2].max_overlap >= 2,
                    "cap=4 run produced no concurrent disjoint cycles");
  const double base = results[0].mean_downtime_ms;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const double drift = std::abs(results[i].mean_downtime_ms - base) / base;
    JOBMIG_ASSERT_MSG(drift <= 0.10, "concurrent per-cycle downtime drifted >10% off baseline");
  }
  JOBMIG_ASSERT_MSG(results[1].makespan_ms <= results[0].makespan_ms,
                    "raising the cap to 2 did not shrink the makespan");
  JOBMIG_ASSERT_MSG(results[2].makespan_ms <= results[1].makespan_ms,
                    "raising the cap to 4 did not shrink the makespan");
  std::printf("checks: overlap >= 2 at cap >= 2; per-cycle downtime within 10%% of serial;"
              " makespan monotone\n");

  bench::print_footer(wall, 3 * 300.0);
  return reporter.finish() ? 0 : 1;
}
