/// Experiment E7 — §III-B claim: socket-based checkpoint movement (the
/// LAM/MPI live-migration transport) cannot match zero-copy RDMA; even
/// IPoIB "can only achieve a suboptimal performance because it still
/// follows the memory-copy based socket protocol".
///
/// Move one source node's worth of checkpoint data (8 x BT.C images,
/// ~309 MB) three ways: RDMA buffer pool on the DDR link, TCP over IPoIB
/// (socket emulation on the same DDR link), and TCP over GigE.

#include "bench_common.hpp"

#include "jobmig/migration/buffer_manager.hpp"
#include "jobmig/migration/tcp_transport.hpp"
#include "jobmig/proc/blcr.hpp"

namespace {

using namespace jobmig;
using namespace jobmig::sim::literals;

double run_rdma(std::uint64_t image_bytes, bench::BenchReporter& reporter) {
  sim::Engine engine;
  ib::Fabric fabric(engine);
  bench::apply_engine(engine, reporter.options(), fabric.suggested_lookahead());
  ib::Hca& src = fabric.add_node("src");
  ib::Hca& dst = fabric.add_node("dst");
  proc::Blcr blcr(engine);
  double elapsed = -1.0;
  engine.spawn([](ib::Hca& sh, ib::Hca& dh, proc::Blcr& b, std::uint64_t n,
                  double& out) -> sim::Task {
    migration::PoolConfig cfg;
    migration::TargetBufferManager tmgr(dh, cfg);
    migration::SourceBufferManager smgr(sh, cfg);
    ib::IbAddr taddr = co_await tmgr.open();
    ib::IbAddr saddr = co_await smgr.open(taddr);
    tmgr.connect_to(saddr);
    smgr.start();
    sim::TaskGroup serve_group(*sim::Engine::current());
    serve_group.spawn(tmgr.serve());
    const double start = sim::Engine::current()->now().to_seconds();
    std::vector<std::unique_ptr<proc::SimProcess>> procs;
    std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
    sim::TaskGroup group(*sim::Engine::current());
    for (int r = 0; r < 8; ++r) {
      procs.push_back(std::make_unique<proc::SimProcess>(
          proc::ProcessIdentity{static_cast<std::uint32_t>(r), r, "bt"}, n,
          55 + static_cast<std::uint64_t>(r)));
      sinks.push_back(smgr.make_sink(r));
      group.spawn(b.checkpoint(*procs.back(), *sinks.back()));
    }
    co_await group.wait();
    co_await smgr.finish();
    co_await serve_group.wait();
    out = sim::Engine::current()->now().to_seconds() - start;
  }(src, dst, blcr, image_bytes, elapsed));
  engine.run();
  reporter.record_engine(engine);
  return elapsed;
}

double run_tcp(std::uint64_t image_bytes, double bandwidth_Bps,
               bench::BenchReporter& reporter) {
  sim::Engine engine;
  sim::EthParams eth;
  eth.bandwidth_Bps = bandwidth_Bps;
  net::Network net(engine, eth);
  bench::apply_engine(engine, reporter.options(), net.suggested_lookahead());
  net::Host& src = net.add_host("src");
  net::Host& dst = net.add_host("dst");
  proc::Blcr blcr(engine);
  double elapsed = -1.0;
  engine.spawn([](net::Host& sh, net::Host& dh, proc::Blcr& b, std::uint64_t n,
                  double& out) -> sim::Task {
    auto listener = dh.listen(7000);
    auto accepting = listener->accept();
    auto client = co_await sh.connect(dh.id(), 7000);
    auto server = co_await std::move(accepting);
    migration::SocketReceiver receiver(*server);
    sim::TaskGroup recv_group(*sim::Engine::current());
    recv_group.spawn(receiver.receive_all(8));
    const double start = sim::Engine::current()->now().to_seconds();
    std::vector<std::unique_ptr<proc::SimProcess>> procs;
    std::vector<std::unique_ptr<migration::SocketSink>> sinks;
    sim::TaskGroup group(*sim::Engine::current());
    for (int r = 0; r < 8; ++r) {
      procs.push_back(std::make_unique<proc::SimProcess>(
          proc::ProcessIdentity{static_cast<std::uint32_t>(r), r, "bt"}, n,
          55 + static_cast<std::uint64_t>(r)));
      sinks.push_back(std::make_unique<migration::SocketSink>(*client, r));
      group.spawn(b.checkpoint(*procs.back(), *sinks.back()));
    }
    co_await group.wait();
    co_await recv_group.wait();
    out = sim::Engine::current()->now().to_seconds() - start;
  }(src, dst, blcr, image_bytes, elapsed));
  engine.run();
  reporter.record_engine(engine);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Ablation E7 — RDMA buffer pool vs socket transports",
                      "§III-B: one node's checkpoint data (8 x BT.C images, ~309 MB)");
  jobmig::bench::WallClock wall;
  jobmig::bench::BenchReporter reporter("ablate_rdma_vs_tcp",
                                        jobmig::bench::BenchOptions::parse(argc, argv));

  auto spec = jobmig::workload::make_spec(jobmig::workload::NpbApp::kBT,
                                          jobmig::workload::NpbClass::kC, 64);
  reporter.begin_run("rdma-pool");
  const double rdma = run_rdma(spec.image_bytes_per_rank, reporter);
  reporter.begin_run("tcp-ipoib");
  // IPoIB on DDR, ~450 MB/s
  const double ipoib = run_tcp(spec.image_bytes_per_rank, 450e6, reporter);
  reporter.begin_run("tcp-gige");
  const double gige = run_tcp(spec.image_bytes_per_rank, 112e6, reporter);

  std::printf("%-22s %12s %12s\n", "transport", "seconds", "vs RDMA");
  std::printf("%-22s %12.3f %12s\n", "RDMA pool (DDR IB)", rdma, "1.00x");
  std::printf("%-22s %12.3f %11.2fx\n", "TCP over IPoIB", ipoib, ipoib / rdma);
  std::printf("%-22s %12.3f %11.2fx\n", "TCP over GigE", gige, gige / rdma);
  std::printf("\npaper shape: RDMA wins; IPoIB pays the socket memory-copy path on\n"
              "the same wire; GigE is bandwidth-starved outright.\n");
  reporter.add_row("rdma-pool", {{"seconds", rdma}, {"vs_rdma", 1.0}});
  reporter.add_row("tcp-ipoib", {{"seconds", ipoib}, {"vs_rdma", ipoib / rdma}});
  reporter.add_row("tcp-gige", {{"seconds", gige}, {"vs_rdma", gige / rdma}});
  jobmig::bench::print_footer(wall, rdma + ipoib + gige);
  return reporter.finish() ? 0 : 1;
}
