# Empty compiler generated dependencies file for ftb_test.
# This may be replaced when dependencies are built.
