file(REMOVE_RECURSE
  "CMakeFiles/ftb_test.dir/ftb/ftb_test.cpp.o"
  "CMakeFiles/ftb_test.dir/ftb/ftb_test.cpp.o.d"
  "ftb_test"
  "ftb_test.pdb"
  "ftb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
