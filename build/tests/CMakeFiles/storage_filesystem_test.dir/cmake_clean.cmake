file(REMOVE_RECURSE
  "CMakeFiles/storage_filesystem_test.dir/storage/filesystem_test.cpp.o"
  "CMakeFiles/storage_filesystem_test.dir/storage/filesystem_test.cpp.o.d"
  "storage_filesystem_test"
  "storage_filesystem_test.pdb"
  "storage_filesystem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_filesystem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
