# Empty dependencies file for storage_filesystem_test.
# This may be replaced when dependencies are built.
