# Empty dependencies file for proc_blcr_test.
# This may be replaced when dependencies are built.
