file(REMOVE_RECURSE
  "CMakeFiles/mpr_property_test.dir/mpr/mpr_property_test.cpp.o"
  "CMakeFiles/mpr_property_test.dir/mpr/mpr_property_test.cpp.o.d"
  "mpr_property_test"
  "mpr_property_test.pdb"
  "mpr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
