# Empty dependencies file for mpr_wildcard_probe_test.
# This may be replaced when dependencies are built.
