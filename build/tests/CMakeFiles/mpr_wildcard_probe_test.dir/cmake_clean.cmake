file(REMOVE_RECURSE
  "CMakeFiles/mpr_wildcard_probe_test.dir/mpr/wildcard_probe_test.cpp.o"
  "CMakeFiles/mpr_wildcard_probe_test.dir/mpr/wildcard_probe_test.cpp.o.d"
  "mpr_wildcard_probe_test"
  "mpr_wildcard_probe_test.pdb"
  "mpr_wildcard_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpr_wildcard_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
