file(REMOVE_RECURSE
  "CMakeFiles/migration_event_waiter_test.dir/migration/event_waiter_test.cpp.o"
  "CMakeFiles/migration_event_waiter_test.dir/migration/event_waiter_test.cpp.o.d"
  "migration_event_waiter_test"
  "migration_event_waiter_test.pdb"
  "migration_event_waiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_event_waiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
