# Empty compiler generated dependencies file for migration_event_waiter_test.
# This may be replaced when dependencies are built.
