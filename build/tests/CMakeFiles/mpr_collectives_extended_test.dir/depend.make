# Empty dependencies file for mpr_collectives_extended_test.
# This may be replaced when dependencies are built.
