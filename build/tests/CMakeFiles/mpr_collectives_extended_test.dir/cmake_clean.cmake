file(REMOVE_RECURSE
  "CMakeFiles/mpr_collectives_extended_test.dir/mpr/collectives_extended_test.cpp.o"
  "CMakeFiles/mpr_collectives_extended_test.dir/mpr/collectives_extended_test.cpp.o.d"
  "mpr_collectives_extended_test"
  "mpr_collectives_extended_test.pdb"
  "mpr_collectives_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpr_collectives_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
