# Empty compiler generated dependencies file for migration_request_listener_test.
# This may be replaced when dependencies are built.
