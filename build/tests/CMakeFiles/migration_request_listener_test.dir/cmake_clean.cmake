file(REMOVE_RECURSE
  "CMakeFiles/migration_request_listener_test.dir/migration/request_listener_test.cpp.o"
  "CMakeFiles/migration_request_listener_test.dir/migration/request_listener_test.cpp.o.d"
  "migration_request_listener_test"
  "migration_request_listener_test.pdb"
  "migration_request_listener_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_request_listener_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
