# Empty dependencies file for migration_controller_test.
# This may be replaced when dependencies are built.
