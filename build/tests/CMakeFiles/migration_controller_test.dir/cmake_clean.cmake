file(REMOVE_RECURSE
  "CMakeFiles/migration_controller_test.dir/migration/controller_test.cpp.o"
  "CMakeFiles/migration_controller_test.dir/migration/controller_test.cpp.o.d"
  "migration_controller_test"
  "migration_controller_test.pdb"
  "migration_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
