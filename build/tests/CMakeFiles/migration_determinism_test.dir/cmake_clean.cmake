file(REMOVE_RECURSE
  "CMakeFiles/migration_determinism_test.dir/migration/determinism_test.cpp.o"
  "CMakeFiles/migration_determinism_test.dir/migration/determinism_test.cpp.o.d"
  "migration_determinism_test"
  "migration_determinism_test.pdb"
  "migration_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
