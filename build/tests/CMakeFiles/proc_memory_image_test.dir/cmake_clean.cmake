file(REMOVE_RECURSE
  "CMakeFiles/proc_memory_image_test.dir/proc/memory_image_test.cpp.o"
  "CMakeFiles/proc_memory_image_test.dir/proc/memory_image_test.cpp.o.d"
  "proc_memory_image_test"
  "proc_memory_image_test.pdb"
  "proc_memory_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_memory_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
