
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/proc/memory_image_test.cpp" "tests/CMakeFiles/proc_memory_image_test.dir/proc/memory_image_test.cpp.o" "gcc" "tests/CMakeFiles/proc_memory_image_test.dir/proc/memory_image_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proc/CMakeFiles/jobmig_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jobmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jobmig_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
