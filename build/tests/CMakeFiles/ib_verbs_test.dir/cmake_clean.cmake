file(REMOVE_RECURSE
  "CMakeFiles/ib_verbs_test.dir/ib/verbs_test.cpp.o"
  "CMakeFiles/ib_verbs_test.dir/ib/verbs_test.cpp.o.d"
  "ib_verbs_test"
  "ib_verbs_test.pdb"
  "ib_verbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_verbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
