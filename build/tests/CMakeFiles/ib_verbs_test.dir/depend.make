# Empty dependencies file for ib_verbs_test.
# This may be replaced when dependencies are built.
