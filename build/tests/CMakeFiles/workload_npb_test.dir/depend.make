# Empty dependencies file for workload_npb_test.
# This may be replaced when dependencies are built.
