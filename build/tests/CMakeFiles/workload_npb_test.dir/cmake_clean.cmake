file(REMOVE_RECURSE
  "CMakeFiles/workload_npb_test.dir/workload/npb_test.cpp.o"
  "CMakeFiles/workload_npb_test.dir/workload/npb_test.cpp.o.d"
  "workload_npb_test"
  "workload_npb_test.pdb"
  "workload_npb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_npb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
