# Empty dependencies file for migration_tcp_transport_test.
# This may be replaced when dependencies are built.
