file(REMOVE_RECURSE
  "CMakeFiles/migration_tcp_transport_test.dir/migration/tcp_transport_test.cpp.o"
  "CMakeFiles/migration_tcp_transport_test.dir/migration/tcp_transport_test.cpp.o.d"
  "migration_tcp_transport_test"
  "migration_tcp_transport_test.pdb"
  "migration_tcp_transport_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_tcp_transport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
