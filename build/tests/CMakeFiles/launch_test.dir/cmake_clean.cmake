file(REMOVE_RECURSE
  "CMakeFiles/launch_test.dir/launch/launch_test.cpp.o"
  "CMakeFiles/launch_test.dir/launch/launch_test.cpp.o.d"
  "launch_test"
  "launch_test.pdb"
  "launch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/launch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
