# Empty dependencies file for launch_test.
# This may be replaced when dependencies are built.
