file(REMOVE_RECURSE
  "CMakeFiles/storage_edge_test.dir/storage/storage_edge_test.cpp.o"
  "CMakeFiles/storage_edge_test.dir/storage/storage_edge_test.cpp.o.d"
  "storage_edge_test"
  "storage_edge_test.pdb"
  "storage_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
