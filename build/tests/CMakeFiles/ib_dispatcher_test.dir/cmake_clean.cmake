file(REMOVE_RECURSE
  "CMakeFiles/ib_dispatcher_test.dir/ib/dispatcher_test.cpp.o"
  "CMakeFiles/ib_dispatcher_test.dir/ib/dispatcher_test.cpp.o.d"
  "ib_dispatcher_test"
  "ib_dispatcher_test.pdb"
  "ib_dispatcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_dispatcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
