file(REMOVE_RECURSE
  "CMakeFiles/migration_buffer_manager_test.dir/migration/buffer_manager_test.cpp.o"
  "CMakeFiles/migration_buffer_manager_test.dir/migration/buffer_manager_test.cpp.o.d"
  "migration_buffer_manager_test"
  "migration_buffer_manager_test.pdb"
  "migration_buffer_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_buffer_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
