# Empty compiler generated dependencies file for migration_buffer_manager_test.
# This may be replaced when dependencies are built.
