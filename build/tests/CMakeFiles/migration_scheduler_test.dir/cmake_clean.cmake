file(REMOVE_RECURSE
  "CMakeFiles/migration_scheduler_test.dir/migration/scheduler_test.cpp.o"
  "CMakeFiles/migration_scheduler_test.dir/migration/scheduler_test.cpp.o.d"
  "migration_scheduler_test"
  "migration_scheduler_test.pdb"
  "migration_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
