file(REMOVE_RECURSE
  "CMakeFiles/ib_atomics_test.dir/ib/atomics_test.cpp.o"
  "CMakeFiles/ib_atomics_test.dir/ib/atomics_test.cpp.o.d"
  "ib_atomics_test"
  "ib_atomics_test.pdb"
  "ib_atomics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ib_atomics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
