# Empty dependencies file for ib_atomics_test.
# This may be replaced when dependencies are built.
