file(REMOVE_RECURSE
  "CMakeFiles/migration_property_test.dir/migration/migration_property_test.cpp.o"
  "CMakeFiles/migration_property_test.dir/migration/migration_property_test.cpp.o.d"
  "migration_property_test"
  "migration_property_test.pdb"
  "migration_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
