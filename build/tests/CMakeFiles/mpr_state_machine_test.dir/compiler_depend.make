# Empty compiler generated dependencies file for mpr_state_machine_test.
# This may be replaced when dependencies are built.
