file(REMOVE_RECURSE
  "CMakeFiles/mpr_state_machine_test.dir/mpr/state_machine_test.cpp.o"
  "CMakeFiles/mpr_state_machine_test.dir/mpr/state_machine_test.cpp.o.d"
  "mpr_state_machine_test"
  "mpr_state_machine_test.pdb"
  "mpr_state_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpr_state_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
