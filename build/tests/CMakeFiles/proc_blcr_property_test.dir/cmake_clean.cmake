file(REMOVE_RECURSE
  "CMakeFiles/proc_blcr_property_test.dir/proc/blcr_property_test.cpp.o"
  "CMakeFiles/proc_blcr_property_test.dir/proc/blcr_property_test.cpp.o.d"
  "proc_blcr_property_test"
  "proc_blcr_property_test.pdb"
  "proc_blcr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_blcr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
