add_test([=[Determinism.FullMigrationCycleIsExactlyReproducible]=]  /root/repo/build/tests/migration_determinism_test [==[--gtest_filter=Determinism.FullMigrationCycleIsExactlyReproducible]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Determinism.FullMigrationCycleIsExactlyReproducible]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  migration_determinism_test_TESTS Determinism.FullMigrationCycleIsExactlyReproducible)
