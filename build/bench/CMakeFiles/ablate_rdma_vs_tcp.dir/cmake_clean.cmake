file(REMOVE_RECURSE
  "CMakeFiles/ablate_rdma_vs_tcp.dir/ablate_rdma_vs_tcp.cpp.o"
  "CMakeFiles/ablate_rdma_vs_tcp.dir/ablate_rdma_vs_tcp.cpp.o.d"
  "ablate_rdma_vs_tcp"
  "ablate_rdma_vs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_rdma_vs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
