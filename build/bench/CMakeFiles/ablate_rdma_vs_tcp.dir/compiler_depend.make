# Empty compiler generated dependencies file for ablate_rdma_vs_tcp.
# This may be replaced when dependencies are built.
