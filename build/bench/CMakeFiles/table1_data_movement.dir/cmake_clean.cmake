file(REMOVE_RECURSE
  "CMakeFiles/table1_data_movement.dir/table1_data_movement.cpp.o"
  "CMakeFiles/table1_data_movement.dir/table1_data_movement.cpp.o.d"
  "table1_data_movement"
  "table1_data_movement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_data_movement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
