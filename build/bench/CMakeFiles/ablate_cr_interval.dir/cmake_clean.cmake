file(REMOVE_RECURSE
  "CMakeFiles/ablate_cr_interval.dir/ablate_cr_interval.cpp.o"
  "CMakeFiles/ablate_cr_interval.dir/ablate_cr_interval.cpp.o.d"
  "ablate_cr_interval"
  "ablate_cr_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cr_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
