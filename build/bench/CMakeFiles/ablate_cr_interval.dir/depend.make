# Empty dependencies file for ablate_cr_interval.
# This may be replaced when dependencies are built.
