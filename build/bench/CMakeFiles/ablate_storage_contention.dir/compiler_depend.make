# Empty compiler generated dependencies file for ablate_storage_contention.
# This may be replaced when dependencies are built.
