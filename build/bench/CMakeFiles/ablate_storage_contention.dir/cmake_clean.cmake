file(REMOVE_RECURSE
  "CMakeFiles/ablate_storage_contention.dir/ablate_storage_contention.cpp.o"
  "CMakeFiles/ablate_storage_contention.dir/ablate_storage_contention.cpp.o.d"
  "ablate_storage_contention"
  "ablate_storage_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_storage_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
