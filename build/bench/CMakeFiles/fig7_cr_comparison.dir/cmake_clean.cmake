file(REMOVE_RECURSE
  "CMakeFiles/fig7_cr_comparison.dir/fig7_cr_comparison.cpp.o"
  "CMakeFiles/fig7_cr_comparison.dir/fig7_cr_comparison.cpp.o.d"
  "fig7_cr_comparison"
  "fig7_cr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_cr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
