# Empty dependencies file for fig7_cr_comparison.
# This may be replaced when dependencies are built.
