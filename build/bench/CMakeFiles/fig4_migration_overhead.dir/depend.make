# Empty dependencies file for fig4_migration_overhead.
# This may be replaced when dependencies are built.
