file(REMOVE_RECURSE
  "CMakeFiles/fig4_migration_overhead.dir/fig4_migration_overhead.cpp.o"
  "CMakeFiles/fig4_migration_overhead.dir/fig4_migration_overhead.cpp.o.d"
  "fig4_migration_overhead"
  "fig4_migration_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_migration_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
