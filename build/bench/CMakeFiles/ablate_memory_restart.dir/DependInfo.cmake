
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_memory_restart.cpp" "bench/CMakeFiles/ablate_memory_restart.dir/ablate_memory_restart.cpp.o" "gcc" "bench/CMakeFiles/ablate_memory_restart.dir/ablate_memory_restart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/jobmig_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jobmig_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/jobmig_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/launch/CMakeFiles/jobmig_launch.dir/DependInfo.cmake"
  "/root/repo/build/src/health/CMakeFiles/jobmig_health.dir/DependInfo.cmake"
  "/root/repo/build/src/ftb/CMakeFiles/jobmig_ftb.dir/DependInfo.cmake"
  "/root/repo/build/src/mpr/CMakeFiles/jobmig_mpr.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/jobmig_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/jobmig_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/jobmig_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/jobmig_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/jobmig_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
