# Empty compiler generated dependencies file for ablate_memory_restart.
# This may be replaced when dependencies are built.
