file(REMOVE_RECURSE
  "CMakeFiles/ablate_memory_restart.dir/ablate_memory_restart.cpp.o"
  "CMakeFiles/ablate_memory_restart.dir/ablate_memory_restart.cpp.o.d"
  "ablate_memory_restart"
  "ablate_memory_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_memory_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
