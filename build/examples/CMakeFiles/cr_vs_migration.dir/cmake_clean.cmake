file(REMOVE_RECURSE
  "CMakeFiles/cr_vs_migration.dir/cr_vs_migration.cpp.o"
  "CMakeFiles/cr_vs_migration.dir/cr_vs_migration.cpp.o.d"
  "cr_vs_migration"
  "cr_vs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cr_vs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
