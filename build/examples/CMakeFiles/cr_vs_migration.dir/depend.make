# Empty dependencies file for cr_vs_migration.
# This may be replaced when dependencies are built.
