# Empty compiler generated dependencies file for predictive_failover.
# This may be replaced when dependencies are built.
