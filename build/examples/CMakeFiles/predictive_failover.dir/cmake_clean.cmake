file(REMOVE_RECURSE
  "CMakeFiles/predictive_failover.dir/predictive_failover.cpp.o"
  "CMakeFiles/predictive_failover.dir/predictive_failover.cpp.o.d"
  "predictive_failover"
  "predictive_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
