file(REMOVE_RECURSE
  "CMakeFiles/maintenance_drain.dir/maintenance_drain.cpp.o"
  "CMakeFiles/maintenance_drain.dir/maintenance_drain.cpp.o.d"
  "maintenance_drain"
  "maintenance_drain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maintenance_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
