# Empty compiler generated dependencies file for maintenance_drain.
# This may be replaced when dependencies are built.
