# Empty compiler generated dependencies file for guarded_run.
# This may be replaced when dependencies are built.
