file(REMOVE_RECURSE
  "CMakeFiles/guarded_run.dir/guarded_run.cpp.o"
  "CMakeFiles/guarded_run.dir/guarded_run.cpp.o.d"
  "guarded_run"
  "guarded_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
