# Empty dependencies file for jobmig_cluster.
# This may be replaced when dependencies are built.
