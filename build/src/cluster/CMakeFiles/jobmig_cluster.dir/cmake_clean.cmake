file(REMOVE_RECURSE
  "CMakeFiles/jobmig_cluster.dir/cluster.cpp.o"
  "CMakeFiles/jobmig_cluster.dir/cluster.cpp.o.d"
  "libjobmig_cluster.a"
  "libjobmig_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
