file(REMOVE_RECURSE
  "libjobmig_cluster.a"
)
