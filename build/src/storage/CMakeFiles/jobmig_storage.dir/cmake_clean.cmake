file(REMOVE_RECURSE
  "CMakeFiles/jobmig_storage.dir/filesystem.cpp.o"
  "CMakeFiles/jobmig_storage.dir/filesystem.cpp.o.d"
  "libjobmig_storage.a"
  "libjobmig_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
