file(REMOVE_RECURSE
  "libjobmig_storage.a"
)
