# Empty compiler generated dependencies file for jobmig_storage.
# This may be replaced when dependencies are built.
