# Empty dependencies file for jobmig_proc.
# This may be replaced when dependencies are built.
