file(REMOVE_RECURSE
  "CMakeFiles/jobmig_proc.dir/blcr.cpp.o"
  "CMakeFiles/jobmig_proc.dir/blcr.cpp.o.d"
  "CMakeFiles/jobmig_proc.dir/memory_image.cpp.o"
  "CMakeFiles/jobmig_proc.dir/memory_image.cpp.o.d"
  "libjobmig_proc.a"
  "libjobmig_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
