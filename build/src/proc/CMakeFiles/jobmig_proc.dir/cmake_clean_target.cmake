file(REMOVE_RECURSE
  "libjobmig_proc.a"
)
