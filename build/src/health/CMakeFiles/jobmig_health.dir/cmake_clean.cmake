file(REMOVE_RECURSE
  "CMakeFiles/jobmig_health.dir/health.cpp.o"
  "CMakeFiles/jobmig_health.dir/health.cpp.o.d"
  "libjobmig_health.a"
  "libjobmig_health.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_health.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
