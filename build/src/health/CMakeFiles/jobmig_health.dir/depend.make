# Empty dependencies file for jobmig_health.
# This may be replaced when dependencies are built.
