file(REMOVE_RECURSE
  "libjobmig_health.a"
)
