# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("ib")
subdirs("net")
subdirs("storage")
subdirs("proc")
subdirs("ftb")
subdirs("mpr")
subdirs("launch")
subdirs("health")
subdirs("migration")
subdirs("workload")
subdirs("cluster")
