file(REMOVE_RECURSE
  "CMakeFiles/jobmig_migration.dir/buffer_manager.cpp.o"
  "CMakeFiles/jobmig_migration.dir/buffer_manager.cpp.o.d"
  "CMakeFiles/jobmig_migration.dir/controller.cpp.o"
  "CMakeFiles/jobmig_migration.dir/controller.cpp.o.d"
  "CMakeFiles/jobmig_migration.dir/cr_baseline.cpp.o"
  "CMakeFiles/jobmig_migration.dir/cr_baseline.cpp.o.d"
  "CMakeFiles/jobmig_migration.dir/scheduler.cpp.o"
  "CMakeFiles/jobmig_migration.dir/scheduler.cpp.o.d"
  "CMakeFiles/jobmig_migration.dir/tcp_transport.cpp.o"
  "CMakeFiles/jobmig_migration.dir/tcp_transport.cpp.o.d"
  "CMakeFiles/jobmig_migration.dir/triggers.cpp.o"
  "CMakeFiles/jobmig_migration.dir/triggers.cpp.o.d"
  "libjobmig_migration.a"
  "libjobmig_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
