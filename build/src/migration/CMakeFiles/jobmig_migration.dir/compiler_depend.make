# Empty compiler generated dependencies file for jobmig_migration.
# This may be replaced when dependencies are built.
