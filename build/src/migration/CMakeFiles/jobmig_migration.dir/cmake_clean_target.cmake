file(REMOVE_RECURSE
  "libjobmig_migration.a"
)
