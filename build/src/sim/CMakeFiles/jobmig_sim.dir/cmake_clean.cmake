file(REMOVE_RECURSE
  "CMakeFiles/jobmig_sim.dir/bytes.cpp.o"
  "CMakeFiles/jobmig_sim.dir/bytes.cpp.o.d"
  "CMakeFiles/jobmig_sim.dir/engine.cpp.o"
  "CMakeFiles/jobmig_sim.dir/engine.cpp.o.d"
  "CMakeFiles/jobmig_sim.dir/log.cpp.o"
  "CMakeFiles/jobmig_sim.dir/log.cpp.o.d"
  "CMakeFiles/jobmig_sim.dir/resource.cpp.o"
  "CMakeFiles/jobmig_sim.dir/resource.cpp.o.d"
  "CMakeFiles/jobmig_sim.dir/stats.cpp.o"
  "CMakeFiles/jobmig_sim.dir/stats.cpp.o.d"
  "libjobmig_sim.a"
  "libjobmig_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
