file(REMOVE_RECURSE
  "libjobmig_sim.a"
)
