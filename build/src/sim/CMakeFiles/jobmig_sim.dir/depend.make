# Empty dependencies file for jobmig_sim.
# This may be replaced when dependencies are built.
