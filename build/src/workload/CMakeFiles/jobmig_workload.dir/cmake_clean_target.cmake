file(REMOVE_RECURSE
  "libjobmig_workload.a"
)
