# Empty dependencies file for jobmig_workload.
# This may be replaced when dependencies are built.
