file(REMOVE_RECURSE
  "CMakeFiles/jobmig_workload.dir/npb.cpp.o"
  "CMakeFiles/jobmig_workload.dir/npb.cpp.o.d"
  "libjobmig_workload.a"
  "libjobmig_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
