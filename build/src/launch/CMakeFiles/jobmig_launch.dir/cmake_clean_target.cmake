file(REMOVE_RECURSE
  "libjobmig_launch.a"
)
