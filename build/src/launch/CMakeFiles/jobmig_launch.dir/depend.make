# Empty dependencies file for jobmig_launch.
# This may be replaced when dependencies are built.
