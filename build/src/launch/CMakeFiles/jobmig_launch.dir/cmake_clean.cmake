file(REMOVE_RECURSE
  "CMakeFiles/jobmig_launch.dir/launch.cpp.o"
  "CMakeFiles/jobmig_launch.dir/launch.cpp.o.d"
  "libjobmig_launch.a"
  "libjobmig_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
