# Empty compiler generated dependencies file for jobmig_ib.
# This may be replaced when dependencies are built.
