file(REMOVE_RECURSE
  "libjobmig_ib.a"
)
