file(REMOVE_RECURSE
  "CMakeFiles/jobmig_ib.dir/verbs.cpp.o"
  "CMakeFiles/jobmig_ib.dir/verbs.cpp.o.d"
  "libjobmig_ib.a"
  "libjobmig_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
