file(REMOVE_RECURSE
  "CMakeFiles/jobmig_ftb.dir/ftb.cpp.o"
  "CMakeFiles/jobmig_ftb.dir/ftb.cpp.o.d"
  "libjobmig_ftb.a"
  "libjobmig_ftb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_ftb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
