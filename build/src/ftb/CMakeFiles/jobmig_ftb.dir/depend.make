# Empty dependencies file for jobmig_ftb.
# This may be replaced when dependencies are built.
