file(REMOVE_RECURSE
  "libjobmig_ftb.a"
)
