# CMake generated Testfile for 
# Source directory: /root/repo/src/ftb
# Build directory: /root/repo/build/src/ftb
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
