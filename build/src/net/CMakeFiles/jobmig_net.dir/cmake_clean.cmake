file(REMOVE_RECURSE
  "CMakeFiles/jobmig_net.dir/network.cpp.o"
  "CMakeFiles/jobmig_net.dir/network.cpp.o.d"
  "libjobmig_net.a"
  "libjobmig_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
