file(REMOVE_RECURSE
  "libjobmig_net.a"
)
