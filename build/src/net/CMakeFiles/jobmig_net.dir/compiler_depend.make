# Empty compiler generated dependencies file for jobmig_net.
# This may be replaced when dependencies are built.
