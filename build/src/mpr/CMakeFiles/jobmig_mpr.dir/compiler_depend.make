# Empty compiler generated dependencies file for jobmig_mpr.
# This may be replaced when dependencies are built.
