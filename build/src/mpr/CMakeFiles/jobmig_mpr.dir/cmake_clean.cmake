file(REMOVE_RECURSE
  "CMakeFiles/jobmig_mpr.dir/collectives.cpp.o"
  "CMakeFiles/jobmig_mpr.dir/collectives.cpp.o.d"
  "CMakeFiles/jobmig_mpr.dir/job.cpp.o"
  "CMakeFiles/jobmig_mpr.dir/job.cpp.o.d"
  "CMakeFiles/jobmig_mpr.dir/proc.cpp.o"
  "CMakeFiles/jobmig_mpr.dir/proc.cpp.o.d"
  "CMakeFiles/jobmig_mpr.dir/wire.cpp.o"
  "CMakeFiles/jobmig_mpr.dir/wire.cpp.o.d"
  "libjobmig_mpr.a"
  "libjobmig_mpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jobmig_mpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
