file(REMOVE_RECURSE
  "libjobmig_mpr.a"
)
