#include "jobmig/health/health.hpp"

#include <gtest/gtest.h>

namespace jobmig::health {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::TimePoint;

TEST(SensorModel, HealthyNodeHoversAroundBaseline) {
  SensorModel s("n0", 1, 52.0);
  for (int i = 0; i < 100; ++i) {
    const double t = s.temperature(TimePoint::origin() + sim::Duration::sec(i));
    EXPECT_GT(t, 50.0);
    EXPECT_LT(t, 54.0);
  }
  EXPECT_EQ(s.ecc_errors(TimePoint::origin() + 100_s), 0u);
  EXPECT_FALSE(s.degrading());
}

TEST(SensorModel, DegradationRampsTemperatureAndEcc) {
  SensorModel s("n0", 2, 52.0);
  s.inject_degradation(TimePoint::origin() + 10_s, 1.0);
  EXPECT_TRUE(s.degrading());
  EXPECT_LT(s.temperature(TimePoint::origin() + 5_s), 54.0);   // before onset
  EXPECT_GT(s.temperature(TimePoint::origin() + 40_s), 80.0);  // 30 s into ramp
  EXPECT_GT(s.ecc_errors(TimePoint::origin() + 40_s), 0u);
}

TEST(HealthPredictor, AbsoluteThresholdFiresImmediately) {
  HealthPredictor p;
  EXPECT_FALSE(p.add_sample(TimePoint::origin(), 55.0));
  EXPECT_TRUE(p.add_sample(TimePoint::origin() + 1_s, 70.0));
}

TEST(HealthPredictor, TrendProjectionFiresBeforeThreshold) {
  HealthPredictor p;  // horizon 60 s, fatal 80 C
  // 1 C/s trend from 50 C: projection hits 80 C within the horizon long
  // before the absolute warn threshold (68 C) is reached.
  bool fired = false;
  for (int i = 0; i < 6 && !fired; ++i) {
    fired = p.add_sample(TimePoint::origin() + sim::Duration::sec(i * 2),
                         50.0 + 1.0 * static_cast<double>(i * 2));
  }
  EXPECT_TRUE(fired);
  EXPECT_NEAR(p.last_trend_celsius_per_sec(), 1.0, 0.05);
}

TEST(HealthPredictor, FlatSeriesNeverFires) {
  HealthPredictor p;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(p.add_sample(TimePoint::origin() + sim::Duration::sec(i), 52.0));
  }
}

TEST(HealthPredictor, CoolingTrendNeverFires) {
  HealthPredictor p;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(p.add_sample(TimePoint::origin() + sim::Duration::sec(i),
                              60.0 - 0.2 * static_cast<double>(i)));
  }
}

struct PollRig {
  Engine engine;
  net::Network net{engine};
  net::Host& host{net.add_host("n0")};
  ftb::FtbAgent agent{host};
  SensorModel sensor{"n0", 3, 52.0};
  PollRig() { agent.start(); }
};

TEST(IpmiPoller, PublishesFailurePredictionForDegradingNode) {
  PollRig rig;
  ftb::FtbClient listener(rig.agent, "trigger");
  listener.subscribe(ftb::Subscription{kHealthSpace, "*", ftb::Severity::kInfo});

  IpmiPoller poller(rig.engine, rig.sensor, rig.agent, 5_s);
  poller.start();
  rig.sensor.inject_degradation(TimePoint::origin() + 20_s, 0.8);
  rig.engine.run_until(TimePoint::origin() + 120_s);
  poller.stop();

  EXPECT_TRUE(poller.prediction_fired());
  EXPECT_GT(poller.samples_taken(), 10u);
  bool saw_prediction = false;
  while (auto ev = listener.poll_event()) {
    if (ev->name == kEventFailurePredicted) {
      saw_prediction = true;
      EXPECT_EQ(ev->payload, "n0");
      EXPECT_EQ(ev->severity, ftb::Severity::kError);
    }
  }
  EXPECT_TRUE(saw_prediction);
}

TEST(HealthPredictor, EccThreshold) {
  HealthPredictor p;
  EXPECT_FALSE(p.add_ecc_count(0));
  EXPECT_FALSE(p.add_ecc_count(39));
  EXPECT_TRUE(p.add_ecc_count(40));
  EXPECT_TRUE(p.add_ecc_count(4000));
}

TEST(IpmiPoller, EccGrowthAlonePredictsFailure) {
  PollRig rig;
  ftb::FtbClient listener(rig.agent, "trigger");
  listener.subscribe(ftb::Subscription{kHealthSpace, "*", ftb::Severity::kInfo});
  // Very slow thermal ramp (never reaches the thresholds within the run)
  // but ECC errors accumulate at ~2/s: threshold 40 crossed at ~+20 s.
  IpmiPoller poller(rig.engine, rig.sensor, rig.agent, 5_s);
  poller.start();
  rig.sensor.inject_degradation(TimePoint::origin() + 10_s, /*celsius_per_second=*/0.01);
  rig.engine.run_until(TimePoint::origin() + 60_s);
  poller.stop();

  EXPECT_TRUE(poller.prediction_fired());
  bool saw_ecc_warning = false, saw_prediction = false;
  while (auto ev = listener.poll_event()) {
    if (ev->name == kEventEccWarning) saw_ecc_warning = true;
    if (ev->name == kEventFailurePredicted) saw_prediction = true;
  }
  EXPECT_TRUE(saw_ecc_warning);
  EXPECT_TRUE(saw_prediction);
}

TEST(IpmiPoller, HealthyNodeStaysQuiet) {
  PollRig rig;
  ftb::FtbClient listener(rig.agent, "trigger");
  listener.subscribe(ftb::Subscription{kHealthSpace, "*", ftb::Severity::kInfo});
  IpmiPoller poller(rig.engine, rig.sensor, rig.agent, 5_s);
  poller.start();
  rig.engine.run_until(TimePoint::origin() + 300_s);
  poller.stop();
  EXPECT_FALSE(poller.prediction_fired());
  EXPECT_FALSE(listener.poll_event().has_value());
}

}  // namespace
}  // namespace jobmig::health
