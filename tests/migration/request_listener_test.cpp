#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/triggers.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

struct Rig {
  Engine engine;
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cl;
  workload::KernelSpec spec;

  explicit Rig(int spares = 1) {
    cfg.compute_nodes = 3;
    cfg.spare_nodes = spares;
    cl = std::make_unique<Cluster>(engine, cfg);
    spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.4);
    spec.time_per_iter = 80_ms;
    cl->create_job(2, spec.image_bytes_per_rank);
  }
};

TEST(RequestListener, BackToBackRequestsForTheSameHostRunOnce) {
  Rig rig;
  rig.engine.spawn([](Rig& r) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    co_await sim::sleep_for(1_s);
    // Fire twice in quick succession (e.g. two pollers both predicting).
    co_await r.cl->user_trigger().fire("node0");
    co_await r.cl->user_trigger().fire("node0");
  }(rig));
  rig.engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(rig.cl->job().app_done());
  // The second request is dropped: either the cycle was active, or node0 no
  // longer hosts ranks afterwards. Never two cycles.
  EXPECT_EQ(rig.cl->migration_manager().cycles_completed(), 1u);
}

TEST(RequestListener, RequestForRanklessHostIsIgnored) {
  Rig rig;
  rig.engine.spawn([](Rig& r) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    co_await sim::sleep_for(1_s);
    co_await r.cl->user_trigger().fire("spare0");   // hosts nothing
    co_await r.cl->user_trigger().fire("unknown9"); // does not exist
  }(rig));
  rig.engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(rig.cl->job().app_done());
  EXPECT_EQ(rig.cl->migration_manager().cycles_completed(), 0u);
}

TEST(RequestListener, SequentialRequestsForDifferentHostsBothRun) {
  Rig rig(/*spares=*/2);
  rig.engine.spawn([](Rig& r) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    co_await sim::sleep_for(1_s);
    co_await r.cl->user_trigger().fire("node0");
    co_await sim::sleep_for(4_s);  // first cycle completes (~1-2 s at test scale)
    co_await r.cl->user_trigger().fire("node1");
  }(rig));
  rig.engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(rig.cl->job().app_done());
  EXPECT_EQ(rig.cl->migration_manager().cycles_completed(), 2u);
  EXPECT_EQ(rig.cl->job_manager().nla_for_host("node0")->state(), launch::NlaState::kInactive);
  EXPECT_EQ(rig.cl->job_manager().nla_for_host("node1")->state(), launch::NlaState::kInactive);
}

TEST(HealthTrigger, FiresOncePerHost) {
  Engine engine;
  net::Network net(engine);
  net::Host& host = net.add_host("login");
  ftb::FtbAgent agent(host);
  agent.start();
  HealthTrigger trigger(engine, agent);
  trigger.start();

  ftb::FtbClient requests(agent, "listener");
  requests.subscribe(ftb::Subscription{kMigSpace, kEvMigrateRequest, ftb::Severity::kInfo});
  ftb::FtbClient ipmi(agent, "ipmi:n3");

  engine.spawn([](ftb::FtbClient& pub) -> Task {
    for (int i = 0; i < 3; ++i) {  // the poller keeps re-predicting
      co_await pub.publish(ftb::FtbEvent{health::kHealthSpace, health::kEventFailurePredicted,
                                         ftb::Severity::kError, "n3"});
      co_await sim::sleep_for(100_ms);
    }
    co_await pub.publish(ftb::FtbEvent{health::kHealthSpace, health::kEventFailurePredicted,
                                       ftb::Severity::kError, "n7"});
  }(ipmi));
  engine.run_until(sim::TimePoint::origin() + 5_s);
  trigger.stop();

  int n3 = 0, n7 = 0;
  while (auto ev = requests.poll_event()) {
    auto kv = decode_kv(ev->payload);
    if (kv["host"] == "n3") ++n3;
    if (kv["host"] == "n7") ++n7;
  }
  EXPECT_EQ(n3, 1);  // deduplicated
  EXPECT_EQ(n7, 1);
  EXPECT_EQ(trigger.fired(), 2u);
}

}  // namespace
}  // namespace jobmig::migration
