#include "jobmig/migration/controller.hpp"

#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  return cfg;
}

TEST(KvCodec, RoundTrip) {
  auto kv = decode_kv(encode_kv({{"src", "node3"}, {"dst", "spare0"}, {"n", "42"}}));
  EXPECT_EQ(kv.at("src"), "node3");
  EXPECT_EQ(kv.at("dst"), "spare0");
  EXPECT_EQ(kv.at("n"), "42");
  EXPECT_TRUE(decode_kv("").empty());
  EXPECT_TRUE(decode_kv("garbage without equals").empty());
}

/// End-to-end: run LU (test class) on 3 nodes + 1 spare, migrate node1's
/// ranks mid-run, and require the application to finish with every halo
/// content check passing.
TEST(MigrationCycle, EndToEndWithRunningApplication) {
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);

  MigrationReport report;
  bool migrated = false;
  engine.spawn([](Cluster& c, workload::KernelSpec s, MigrationReport& rep, bool& done) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(2_s);  // let the app make progress
    rep = co_await c.migration_manager().migrate("node1");
    done = true;
  }(cl, spec, report, migrated));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(migrated);
  EXPECT_TRUE(cl.job().app_done());

  // Report sanity: all four phases measured, data moved equals two images+.
  EXPECT_GT(report.stall.count_ns(), 0);
  EXPECT_GT(report.migration.count_ns(), 0);
  EXPECT_GT(report.restart.count_ns(), 0);
  EXPECT_GT(report.resume.count_ns(), 0);
  EXPECT_EQ(report.source_host, "node1");
  EXPECT_EQ(report.target_host, "spare0");
  EXPECT_EQ(report.migrated_ranks, (std::vector<int>{2, 3}));
  EXPECT_GT(report.bytes_moved, 2 * spec.image_bytes_per_rank);  // images + stream framing

  // Placement and NLA state machine follow-through.
  EXPECT_EQ(cl.job().node_of(2).hostname, "spare0");
  EXPECT_EQ(cl.job().node_of(3).hostname, "spare0");
  EXPECT_EQ(cl.job_manager().nla_for_host("node1")->state(), launch::NlaState::kInactive);
  EXPECT_EQ(cl.job_manager().nla_for_host("spare0")->state(), launch::NlaState::kReady);
  EXPECT_EQ(cl.job_manager().find_spare(), nullptr);
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
}

TEST(MigrationCycle, MigratedImageContentSurvivesExactly) {
  // No app computation after the park: the restored image CRC must equal
  // the source image CRC at checkpoint time. Use an app that parks forever
  // after a couple of iterations.
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kSP, workload::NpbClass::kTest, 6, 0.05);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);

  std::map<int, std::uint64_t> crc_before;
  bool checked = false;
  engine.spawn([](Cluster& c, workload::KernelSpec s, std::map<int, std::uint64_t>& crcs,
                  bool& done) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    // Snapshot the source-node images right before triggering: ranks park
    // deterministically at iteration boundaries, so capture after parking.
    for (int r : c.job_manager().nla_for_host("node1")->local_ranks()) {
      c.job().proc(r).request_park();
    }
    for (int r : c.job_manager().nla_for_host("node1")->local_ranks()) {
      co_await c.job().proc(r).wait_parked();
    }
    // CRCs frozen now; un-park so the migration protocol drives the cycle.
    for (int r : c.job_manager().nla_for_host("node1")->local_ranks()) {
      crcs[r] = c.job().proc(r).sim_process().image().content_crc();
    }
    (void)co_await c.migration_manager().migrate("node1");
    for (auto& [r, crc] : crcs) {
      EXPECT_EQ(c.job().proc(r).sim_process().image().content_crc(), crc) << "rank " << r;
      EXPECT_EQ(c.job().node_of(r).hostname, "spare0");
    }
    done = true;
  }(cl, spec, crc_before, checked));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(checked);
}

TEST(MigrationCycle, UserTriggerDrivesMigration) {
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);

  engine.spawn([](Cluster& c, workload::KernelSpec s) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    co_await c.user_trigger().fire("node2");
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  EXPECT_TRUE(cl.job().app_done());
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
  EXPECT_EQ(cl.migration_manager().last_report().source_host, "node2");
  EXPECT_EQ(cl.job_manager().nla_for_host("node2")->state(), launch::NlaState::kInactive);
}

TEST(MigrationCycle, HealthPredictionDrivesMigration) {
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kTest, 6, 0.6);
  spec.time_per_iter = 300_ms;  // keep the app alive past the prediction
  cl.create_job(2, spec.image_bytes_per_rank);
  cl.enable_health_monitoring(2_s);

  engine.spawn([](Cluster& c, workload::KernelSpec s) -> Task {
    co_await c.start(workload::make_app(s));
    // node0's cooling starts failing shortly into the run; the trend
    // predictor should fire within a few polls.
    c.sensor(0).inject_degradation(Engine::current()->now() + 2_s, 1.5);
    co_return;
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 900_s);

  EXPECT_TRUE(cl.job().app_done());
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
  EXPECT_EQ(cl.migration_manager().last_report().source_host, "node0");
  EXPECT_EQ(cl.job_manager().nla_for_host("node0")->state(), launch::NlaState::kInactive);
}

TEST(MigrationCycle, MemoryRestartModeSkipsDiskAndIsFaster) {
  auto run_with_mode = [](RestartMode mode) {
    Engine engine;
    ClusterConfig cfg = small_config();
    cfg.mig.restart_mode = mode;
    Cluster cl(engine, cfg);
    auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kTest, 6, 0.2);
    spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
    // Big enough images that Phase 3 is I/O-dominated, where the two
    // restart strategies actually differ.
    spec.image_bytes_per_rank = 30ull << 20;
    cl.create_job(2, spec.image_bytes_per_rank);
    MigrationReport report;
    engine.spawn([](Cluster& c, workload::KernelSpec s, MigrationReport& rep) -> Task {
      co_await c.start(workload::make_app(s));
      co_await sim::sleep_for(1_s);
      rep = co_await c.migration_manager().migrate("node0");
    }(cl, spec, report));
    engine.run_until(sim::TimePoint::origin() + 600_s);
    EXPECT_TRUE(cl.job().app_done());
    return report;
  };
  const MigrationReport file_mode = run_with_mode(RestartMode::kFile);
  const MigrationReport mem_mode = run_with_mode(RestartMode::kMemory);
  EXPECT_LT(mem_mode.restart.to_seconds(), file_mode.restart.to_seconds() * 0.5)
      << "memory-based restart should collapse Phase 3";
  EXPECT_EQ(file_mode.bytes_moved, mem_mode.bytes_moved);
}

TEST(MigrationCycle, TwoSequentialMigrationsConsumeTwoSpares) {
  Engine engine;
  ClusterConfig cfg = small_config();
  cfg.spare_nodes = 2;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.45);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);

  int cycles = 0;
  engine.spawn([](Cluster& c, workload::KernelSpec s, int& done) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    (void)co_await c.migration_manager().migrate("node0");
    ++done;
    co_await sim::sleep_for(1_s);
    // node0's ranks now live on spare0; migrate them again.
    (void)co_await c.migration_manager().migrate("spare0");
    ++done;
  }(cl, spec, cycles));
  engine.run_until(sim::TimePoint::origin() + 900_s);

  EXPECT_EQ(cycles, 2);
  EXPECT_TRUE(cl.job().app_done());
  EXPECT_EQ(cl.job().node_of(0).hostname, "spare1");
  EXPECT_EQ(cl.job().node_of(1).hostname, "spare1");
  EXPECT_EQ(cl.job_manager().find_spare(), nullptr);
}

TEST(MigrationCycle, RejectsWhenNoSpareAvailable) {
  Engine engine;
  ClusterConfig cfg = small_config();
  cfg.spare_nodes = 0;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.1);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);
  bool threw = false;
  engine.spawn([](Cluster& c, workload::KernelSpec s, bool& out) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    try {
      (void)co_await c.migration_manager().migrate("node0");
    } catch (const ContractViolation&) {
      out = true;
    }
  }(cl, spec, threw));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(threw);
}

TEST(CrBaseline, CheckpointAllToLocalDisksAndRestartVerifies) {
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.3);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
  cl.create_job(2, spec.image_bytes_per_rank);

  CrReport report;
  std::vector<std::uint64_t> crcs_at_checkpoint;
  bool done = false;
  engine.spawn([](Cluster& c, workload::KernelSpec s, CrReport& rep,
                  std::vector<std::uint64_t>& crcs, bool& out) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    auto cr = c.make_cr_local();
    rep = co_await cr->checkpoint_all();
    // Images on disk must restore to byte-identical processes.
    sim::Duration restart_time{};
    auto restored = co_await cr->restart_all(&restart_time);
    rep.restart = restart_time;
    for (auto& p : restored) crcs.push_back(p->image().content_crc());
    out = true;
  }(cl, spec, report, crcs_at_checkpoint, done));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(done);
  EXPECT_TRUE(cl.job().app_done());  // job resumed and finished after the checkpoint
  EXPECT_EQ(report.checkpoint_files, 6u);
  EXPECT_GT(report.bytes_written, 6 * spec.image_bytes_per_rank);
  EXPECT_GT(report.checkpoint.count_ns(), 0);
  EXPECT_GT(report.restart.count_ns(), 0);
  EXPECT_EQ(crcs_at_checkpoint.size(), 6u);
}

TEST(CrBaseline, PvfsCheckpointSlowerThanLocalUnderContention) {
  auto run = [](bool pvfs) {
    Engine engine;
    ClusterConfig cfg;
    cfg.compute_nodes = 4;
    cfg.spare_nodes = 0;
    Cluster cl(engine, cfg);
    auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kTest, 16, 0.3);
  spec.time_per_iter = 100_ms;  // keep the app alive across the cycle
    cl.create_job(4, spec.image_bytes_per_rank);
    CrReport report;
    engine.spawn([](Cluster& c, workload::KernelSpec s, CrReport& rep, bool use_pvfs) -> Task {
      co_await c.start(workload::make_app(s));
      co_await sim::sleep_for(1_s);
      auto cr = use_pvfs ? c.make_cr_pvfs() : c.make_cr_local();
      rep = co_await cr->full_cycle();
    }(cl, spec, report, pvfs));
    engine.run_until(sim::TimePoint::origin() + 900_s);
    return report;
  };
  const CrReport local = run(false);
  const CrReport pvfs = run(true);
  // 16 concurrent writers: 4 local disks (4 writers each) vs one shared
  // 4-server PVFS (16 contending clients) — shared storage must lose.
  EXPECT_GT(pvfs.checkpoint.to_seconds(), local.checkpoint.to_seconds());
}

}  // namespace
}  // namespace jobmig::migration
