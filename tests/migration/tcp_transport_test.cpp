#include "jobmig/migration/tcp_transport.hpp"

#include <gtest/gtest.h>

#include "jobmig/migration/buffer_manager.hpp"
#include "jobmig/proc/blcr.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

struct TcpRig {
  Engine engine;
  net::Network net;
  net::Host& src;
  net::Host& dst;

  explicit TcpRig(double bandwidth_Bps) : net(engine, make_params(bandwidth_Bps)),
                                          src(net.add_host("src")), dst(net.add_host("dst")) {}
  static sim::EthParams make_params(double bw) {
    sim::EthParams p;
    p.bandwidth_Bps = bw;
    return p;
  }
};

TEST(TcpTransport, StreamsRankCheckpointsIntact) {
  TcpRig rig(112e6);
  std::map<int, Bytes> sent;
  for (int r = 0; r < 4; ++r) sent[r] = patterned(500'000 + static_cast<std::size_t>(r), 10 + static_cast<std::uint64_t>(r));
  SocketReceiver* receiver_out = nullptr;
  auto receiver_holder = std::make_unique<SocketReceiver*>(nullptr);

  rig.engine.spawn([](TcpRig& rr, std::map<int, Bytes> data) -> Task {
    auto listener = rr.dst.listen(7000);
    auto accept_stream = listener->accept();
    auto client = co_await rr.src.connect(rr.dst.id(), 7000);
    auto server = co_await std::move(accept_stream);
    JOBMIG_ASSERT(client != nullptr && server != nullptr);

    SocketReceiver receiver(*server);
    sim::TaskGroup group(rr.engine);
    group.spawn(receiver.receive_all(data.size()));
    for (auto& [rank, bytes] : data) {
      SocketSink sink(*client, rank);
      co_await sink.write(bytes);
      co_await sink.finish();
    }
    co_await group.wait();
    for (auto& [rank, bytes] : data) {
      JOBMIG_ASSERT_MSG(receiver.stream_of(rank) == bytes, "stream mismatch");
    }
  }(rig, sent));
  rig.engine.run();
  (void)receiver_out;
  (void)receiver_holder;
  SUCCEED();
}

TEST(TcpTransport, GigeIsFarSlowerThanRdmaPool) {
  // Move 60 MB: GigE socket path vs the RDMA buffer pool. The paper's whole
  // point: the socket path is bandwidth-bound at ~112 MB/s while the DDR
  // link sustains ~1.5 GB/s.
  const std::uint64_t kBytes = 60ull << 20;

  // Socket path.
  TcpRig tcp(112e6);
  double tcp_time = -1.0;
  tcp.engine.spawn([](TcpRig& rr, std::uint64_t n, double& out) -> Task {
    auto listener = rr.dst.listen(7000);
    auto accept_stream = listener->accept();
    auto client = co_await rr.src.connect(rr.dst.id(), 7000);
    auto server = co_await std::move(accept_stream);
    SocketReceiver receiver(*server);
    sim::TaskGroup group(rr.engine);
    group.spawn(receiver.receive_all(1));
    SocketSink sink(*client, 0);
    Bytes payload = patterned(n, 3);
    // Feed in 1 MB slices as BLCR would.
    for (std::uint64_t pos = 0; pos < n; pos += 1 << 20) {
      const std::uint64_t run = std::min<std::uint64_t>(1 << 20, n - pos);
      co_await sink.write(sim::ByteSpan(payload.data() + pos, run));
    }
    co_await sink.finish();
    co_await group.wait();
    out = sim::Engine::current()->now().to_seconds();
  }(tcp, kBytes, tcp_time));
  tcp.engine.run();

  // RDMA pool path.
  Engine engine2;
  ib::Fabric fabric(engine2);
  ib::Hca& src_hca = fabric.add_node("src");
  ib::Hca& dst_hca = fabric.add_node("dst");
  double rdma_time = -1.0;
  engine2.spawn([](ib::Hca& sh, ib::Hca& dh, std::uint64_t n, double& out) -> Task {
    PoolConfig cfg;
    TargetBufferManager tmgr(dh, cfg);
    SourceBufferManager smgr(sh, cfg);
    ib::IbAddr taddr = co_await tmgr.open();
    ib::IbAddr saddr = co_await smgr.open(taddr);
    tmgr.connect_to(saddr);
    smgr.start();
    sim::TaskGroup group(*sim::Engine::current());
    group.spawn(tmgr.serve());
    auto sink = smgr.make_sink(0);
    Bytes payload = patterned(n, 3);
    for (std::uint64_t pos = 0; pos < n; pos += 1 << 20) {
      const std::uint64_t run = std::min<std::uint64_t>(1 << 20, n - pos);
      co_await sink->write(sim::ByteSpan(payload.data() + pos, run));
    }
    co_await sink->finish();
    co_await smgr.finish();
    co_await group.wait();
    out = sim::Engine::current()->now().to_seconds();
  }(src_hca, dst_hca, kBytes, rdma_time));
  engine2.run();

  ASSERT_GT(tcp_time, 0.0);
  ASSERT_GT(rdma_time, 0.0);
  EXPECT_GT(tcp_time / rdma_time, 5.0)
      << "tcp=" << tcp_time << "s rdma=" << rdma_time << "s";
}

TEST(TcpTransport, BlcrStreamOverSocketRestoresProcess) {
  // Full path fidelity: BLCR checkpoint -> socket -> BLCR restart.
  TcpRig rig(112e6);
  bool verified = false;
  rig.engine.spawn([](TcpRig& rr, bool& out) -> Task {
    proc::Blcr blcr(rr.engine);
    proc::SimProcess original(proc::ProcessIdentity{77, 3, "bt.T"}, 400'000, 5);
    original.image().write(1000, patterned(5000, 99));
    const std::uint64_t crc = original.image().content_crc();

    auto listener = rr.dst.listen(7000);
    auto accept_stream = listener->accept();
    auto client = co_await rr.src.connect(rr.dst.id(), 7000);
    auto server = co_await std::move(accept_stream);

    SocketReceiver receiver(*server);
    sim::TaskGroup group(rr.engine);
    group.spawn(receiver.receive_all(1));
    SocketSink sink(*client, 3);
    co_await blcr.checkpoint(original, sink);
    co_await group.wait();

    proc::MemorySource source(receiver.take_stream(3));
    auto restored = co_await blcr.restart(source);
    out = restored->image().content_crc() == crc && restored->rank() == 3;
  }(rig, verified));
  rig.engine.run();
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace jobmig::migration
