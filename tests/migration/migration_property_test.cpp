#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/buffer_manager.hpp"
#include "jobmig/proc/blcr.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

/// Buffer-pool geometry sweep through the full BLCR -> pool -> RDMA ->
/// reassembly -> restart path: restored images must be byte-exact for any
/// pool/chunk combination.
struct PoolGeometry {
  std::uint64_t pool;
  std::uint64_t chunk;
};

class PoolSweep : public ::testing::TestWithParam<PoolGeometry> {};

TEST_P(PoolSweep, CheckpointThroughPoolRestoresExactly) {
  const auto geom = GetParam();
  Engine engine;
  ib::Fabric fabric(engine);
  ib::Hca& src = fabric.add_node("src");
  ib::Hca& dst = fabric.add_node("dst");
  proc::Blcr blcr(engine);
  bool ok = false;
  engine.spawn([](ib::Hca& sh, ib::Hca& dh, proc::Blcr& b, PoolGeometry g, bool& out) -> Task {
    PoolConfig cfg;
    cfg.pool_bytes = g.pool;
    cfg.chunk_bytes = g.chunk;
    TargetBufferManager tmgr(dh, cfg);
    SourceBufferManager smgr(sh, cfg);
    ib::IbAddr taddr = co_await tmgr.open();
    ib::IbAddr saddr = co_await smgr.open(taddr);
    tmgr.connect_to(saddr);
    smgr.start();
    sim::TaskGroup serve(*sim::Engine::current());
    serve.spawn(tmgr.serve());

    std::vector<std::unique_ptr<proc::SimProcess>> procs;
    std::vector<std::uint64_t> crcs;
    std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
    sim::TaskGroup group(*sim::Engine::current());
    for (int r = 0; r < 3; ++r) {
      procs.push_back(std::make_unique<proc::SimProcess>(
          proc::ProcessIdentity{static_cast<std::uint32_t>(r), r, "sweep"},
          777'000 + static_cast<std::uint64_t>(r) * 123'457, static_cast<std::uint64_t>(r)));
      Bytes dirty(3000);
      sim::pattern_fill(dirty, static_cast<std::uint64_t>(r) + 50, 0);
      procs.back()->image().write(100'000, dirty);
      crcs.push_back(procs.back()->image().content_crc());
      sinks.push_back(smgr.make_sink(r));
      group.spawn(b.checkpoint(*procs.back(), *sinks.back()));
    }
    co_await group.wait();
    co_await smgr.finish();
    co_await serve.wait();

    out = true;
    for (int r = 0; r < 3; ++r) {
      proc::MemorySource source(tmgr.take_stream(r));
      auto restored = co_await b.restart(source);
      out = out && restored->image().content_crc() == crcs[static_cast<std::size_t>(r)];
    }
  }(src, dst, blcr, geom, ok));
  engine.run();
  EXPECT_TRUE(ok) << "pool=" << geom.pool << " chunk=" << geom.chunk;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PoolSweep,
    ::testing::Values(PoolGeometry{64 << 10, 16 << 10}, PoolGeometry{128 << 10, 128 << 10},
                      PoolGeometry{1 << 20, 64 << 10}, PoolGeometry{2 << 20, 1 << 20},
                      PoolGeometry{10 << 20, 1 << 20}, PoolGeometry{4 << 20, 4 << 20}),
    [](const auto& pinfo) {
      return "pool" + std::to_string(pinfo.param.pool >> 10) + "k_chunk" +
             std::to_string(pinfo.param.chunk >> 10) + "k";
    });

/// Migration works at every ranks-per-node density (the Fig. 6 axis).
class PpnSweep : public ::testing::TestWithParam<int> {};

TEST_P(PpnSweep, CycleCompletesAndAppFinishes) {
  const int ppn = GetParam();
  Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 2;
  cfg.spare_nodes = 1;
  cluster::Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 2 * ppn, 0.2);
  spec.time_per_iter = 60_ms;
  cl.create_job(ppn, spec.image_bytes_per_rank);
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    auto report = co_await c.migration_manager().migrate("node1");
    JOBMIG_ASSERT(static_cast<int>(report.migrated_ranks.size()) ==
                  c.job().size() / 2);
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(cl.job().app_done()) << "ppn=" << ppn;
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Densities, PpnSweep, ::testing::Values(1, 2, 4, 8));

/// Restart-mode x trigger-time sweep: the cycle must complete regardless of
/// where in the iteration structure the trigger lands.
struct CyclePoint {
  int trigger_ms;
  RestartMode mode;
};

class TriggerTiming : public ::testing::TestWithParam<CyclePoint> {};

TEST_P(TriggerTiming, CycleRobustToTriggerPhase) {
  const auto pt = GetParam();
  Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  cfg.mig.restart_mode = pt.mode;
  cluster::Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kBT, workload::NpbClass::kTest, 6, 0.3);
  spec.time_per_iter = 70_ms;
  cl.create_job(2, spec.image_bytes_per_rank);
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s, int delay_ms) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(sim::Duration::ms(delay_ms));
    (void)co_await c.migration_manager().migrate("node2");
  }(cl, spec, pt.trigger_ms));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  EXPECT_TRUE(cl.job().app_done());
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Phases, TriggerTiming,
    ::testing::Values(CyclePoint{311, RestartMode::kFile}, CyclePoint{477, RestartMode::kFile},
                      CyclePoint{1003, RestartMode::kFile},
                      CyclePoint{311, RestartMode::kMemory},
                      CyclePoint{703, RestartMode::kMemory},
                      CyclePoint{311, RestartMode::kPipelined},
                      CyclePoint{919, RestartMode::kPipelined}),
    [](const auto& pinfo) {
      return std::string(to_string(pinfo.param.mode)) + "_t" +
             std::to_string(pinfo.param.trigger_ms);
    });

}  // namespace
}  // namespace jobmig::migration
