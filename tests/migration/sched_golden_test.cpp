#include <gtest/gtest.h>

#include <algorithm>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/workload/npb.hpp"

// Golden determinism pins for the scheduler rework: the fig4 LU.C.64
// migration scenario must (a) replay bit-identically — same event-sequence
// hash, same event count, same report — and (b) reproduce the exact virtual
// times the pre-rework priority-queue engine produced (values below are the
// seed fig4_migration_overhead rows). Any change to event ordering, timer
// cancellation semantics, or the wheel's pour order shows up here first.
namespace jobmig {
namespace {

using namespace jobmig::sim::literals;

struct GoldenRun {
  migration::MigrationReport report;
  std::uint64_t sequence_hash = 0;
  std::uint64_t events_processed = 0;
  sim::TimePoint end{};
};

GoldenRun run_fig4_lu() {
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kC, 64);
  spec.iterations = std::max(50, spec.iterations / 4);  // as bench/fig4 does

  sim::Engine engine;
  cluster::Cluster cl(engine, cluster::ClusterConfig{});  // paper testbed defaults
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);

  GoldenRun out;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& rep) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    rep = co_await c.migration_manager().migrate("node3");
  }(cl, spec, out.report));
  out.end = engine.run_until(sim::TimePoint::origin() + 120_s);
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
  out.sequence_hash = engine.sequence_hash();
  out.events_processed = engine.events_processed();
  return out;
}

TEST(SchedGolden, Fig4LuReplaysBitIdentically) {
  const GoldenRun a = run_fig4_lu();
  const GoldenRun b = run_fig4_lu();
  EXPECT_EQ(a.sequence_hash, b.sequence_hash);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.end, b.end);
  // Bitwise-identical virtual durations, not just approximately equal.
  EXPECT_EQ(a.report.stall.count_ns(), b.report.stall.count_ns());
  EXPECT_EQ(a.report.migration.count_ns(), b.report.migration.count_ns());
  EXPECT_EQ(a.report.restart.count_ns(), b.report.restart.count_ns());
  EXPECT_EQ(a.report.resume.count_ns(), b.report.resume.count_ns());
  EXPECT_EQ(a.report.bytes_moved, b.report.bytes_moved);
}

TEST(SchedGolden, Fig4LuMatchesSeedTimings) {
  const GoldenRun g = run_fig4_lu();
  // Seed fig4_migration_overhead LU.C.64 row (restart_mode=pipelined),
  // captured from the pre-rework engine. Tolerance is one JSON print ulp.
  EXPECT_NEAR(g.report.stall.to_ms(), 118.317158, 1e-5);
  EXPECT_NEAR(g.report.migration.to_ms(), 366.201248, 1e-5);
  EXPECT_NEAR(g.report.restart.to_ms(), 3.05408, 1e-5);
  EXPECT_NEAR(g.report.resume.to_ms(), 1022.53997, 1e-4);
  EXPECT_NEAR(g.report.total().to_ms(), 1510.11246, 1e-4);
  EXPECT_EQ(g.report.bytes_moved, 170376816u);
}

}  // namespace
}  // namespace jobmig
