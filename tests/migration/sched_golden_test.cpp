#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/workload/npb.hpp"

// Golden determinism pins for the scheduler rework: the fig4 LU.C.64
// migration scenario must (a) replay bit-identically — same event-sequence
// hash, same event count, same report — and (b) reproduce the exact virtual
// times the pre-rework priority-queue engine produced (values below are the
// seed fig4_migration_overhead rows). Any change to event ordering, timer
// cancellation semantics, or the wheel's pour order shows up here first.
namespace jobmig {
namespace {

using namespace jobmig::sim::literals;

struct GoldenRun {
  migration::MigrationReport report;
  std::uint64_t sequence_hash = 0;
  std::uint64_t events_processed = 0;
  sim::TimePoint end{};
};

GoldenRun run_fig4_lu(std::size_t workers = 0) {
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kC, 64);
  spec.iterations = std::max(50, spec.iterations / 4);  // as bench/fig4 does

  sim::Engine engine;
  cluster::Cluster cl(engine, cluster::ClusterConfig{});  // paper testbed defaults
  if (workers > 0) {
    engine.set_lookahead(cl.fabric().suggested_lookahead());
    engine.enable_parallel(workers);
  }
  cl.create_job(spec.nprocs / 8, spec.image_bytes_per_rank);

  GoldenRun out;
  engine.spawn([](cluster::Cluster& c, workload::KernelSpec s,
                  migration::MigrationReport& rep) -> sim::Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(20_s);
    rep = co_await c.migration_manager().migrate("node3");
  }(cl, spec, out.report));
  out.end = engine.run_until(sim::TimePoint::origin() + 120_s);
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 1u);
  out.sequence_hash = engine.sequence_hash();
  out.events_processed = engine.events_processed();
  return out;
}

TEST(SchedGolden, Fig4LuReplaysBitIdentically) {
  const GoldenRun a = run_fig4_lu();
  const GoldenRun b = run_fig4_lu();
  EXPECT_EQ(a.sequence_hash, b.sequence_hash);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.end, b.end);
  // Bitwise-identical virtual durations, not just approximately equal.
  EXPECT_EQ(a.report.stall.count_ns(), b.report.stall.count_ns());
  EXPECT_EQ(a.report.migration.count_ns(), b.report.migration.count_ns());
  EXPECT_EQ(a.report.restart.count_ns(), b.report.restart.count_ns());
  EXPECT_EQ(a.report.resume.count_ns(), b.report.resume.count_ns());
  EXPECT_EQ(a.report.bytes_moved, b.report.bytes_moved);
}

TEST(SchedGolden, Fig4LuParallelEngineIsBitIdenticalToSequential) {
  // The --engine=par contract (DESIGN.md §9): virtual-time results, report
  // durations, and the FNV-1a event-sequence hash must match the sequential
  // golden reference exactly, at any worker count.
  const GoldenRun seq = run_fig4_lu();
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const GoldenRun par = run_fig4_lu(workers);
    EXPECT_EQ(par.sequence_hash, seq.sequence_hash) << "workers=" << workers;
    EXPECT_EQ(par.events_processed, seq.events_processed) << "workers=" << workers;
    EXPECT_EQ(par.end, seq.end) << "workers=" << workers;
    EXPECT_EQ(par.report.stall.count_ns(), seq.report.stall.count_ns());
    EXPECT_EQ(par.report.migration.count_ns(), seq.report.migration.count_ns());
    EXPECT_EQ(par.report.restart.count_ns(), seq.report.restart.count_ns());
    EXPECT_EQ(par.report.resume.count_ns(), seq.report.resume.count_ns());
    EXPECT_EQ(par.report.bytes_moved, seq.report.bytes_moved);
  }
}

/// The sched_bench domain-sweep scenario in miniature: per-node domains,
/// cross-domain messages at exactly the two-hop lookahead bound. Unlike
/// fig4 (untagged => sequential fast path), this actually runs windows
/// through the worker pool, so the hash equality below proves the barrier
/// replay reconstructs the sequential order.
struct SweepRun {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  std::int64_t end_ns = 0;
  std::uint64_t windows = 0;

  bool operator==(const SweepRun&) const = default;
};

SweepRun run_domain_sweep(std::size_t workers) {
  sim::Engine engine;
  const sim::Duration lookahead = sim::IbParams{}.hop_latency * 2;
  engine.set_lookahead(lookahead);
  if (workers > 0) engine.enable_parallel(workers);
  struct Node {
    sim::Engine* e = nullptr;
    std::vector<Node>* all = nullptr;
    sim::Duration lookahead;
    std::uint32_t id = 0;
    std::uint64_t state = 0;
    int remaining = 0;
    void pump() {
      if (remaining-- <= 0) return;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      if (remaining % 4 == 0) {
        Node& peer = (*all)[(id + 1) % all->size()];
        sim::DomainScope scope(peer.id + 1);
        e->call_at(e->now() + lookahead, [&peer] { peer.state ^= peer.state << 7 | 1; });
      }
      sim::DomainScope scope(id + 1);
      e->call_in(sim::Duration::ns(80 + static_cast<std::int64_t>(state % 160)),
                 [this] { pump(); });
    }
  };
  std::vector<Node> ns(8);
  for (std::size_t i = 0; i < ns.size(); ++i) {
    ns[i] = Node{&engine, &ns, lookahead, static_cast<std::uint32_t>(i),
                 0x9e3779b97f4a7c15ull * (i + 1), 500};
    sim::DomainScope scope(ns[i].id + 1);
    engine.call_in(sim::Duration::ns(static_cast<std::int64_t>(10 + i)),
                   [&n = ns[i]] { n.pump(); });
  }
  engine.run();
  return SweepRun{engine.sequence_hash(), engine.events_processed(), engine.now().count_ns(),
                  engine.parallel_windows()};
}

TEST(SchedGolden, DomainSweepParallelMatchesSequentialAtEveryWorkerCount) {
  const SweepRun seq = run_domain_sweep(0);
  EXPECT_EQ(seq.windows, 0u);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    SweepRun par = run_domain_sweep(workers);
    EXPECT_GT(par.windows, 0u) << "workers=" << workers;  // really left the fast path
    par.windows = 0;                                      // everything else must be equal
    EXPECT_EQ(par, seq) << "workers=" << workers;
  }
}

TEST(SchedGolden, Fig4LuMatchesSeedTimings) {
  const GoldenRun g = run_fig4_lu();
  // Seed fig4_migration_overhead LU.C.64 row (restart_mode=pipelined),
  // captured from the pre-rework engine. Tolerance is one JSON print ulp.
  EXPECT_NEAR(g.report.stall.to_ms(), 118.317158, 1e-5);
  EXPECT_NEAR(g.report.migration.to_ms(), 366.201248, 1e-5);
  EXPECT_NEAR(g.report.restart.to_ms(), 3.05408, 1e-5);
  EXPECT_NEAR(g.report.resume.to_ms(), 1022.53997, 1e-4);
  EXPECT_NEAR(g.report.total().to_ms(), 1510.11246, 1e-4);
  EXPECT_EQ(g.report.bytes_moved, 170376816u);
}

}  // namespace
}  // namespace jobmig
