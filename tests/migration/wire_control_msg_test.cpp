#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "jobmig/migration/buffer_manager.hpp"

namespace jobmig::migration::wire {
namespace {

ControlMsg sample() {
  ControlMsg m;
  m.op = Op::kRequest;
  m.chunk_index = 7;
  m.rkey = 0xDEADBEEF;
  m.pool_offset = 7ull * 512 * 1024;
  m.length = 512 * 1024;
  m.rank = 3;
  m.stream_offset = 1ull << 33;
  m.end_of_stream = false;
  m.ctx = telemetry::TraceContext{0x123456789abull, 42};
  return m;
}

// Offset of the end_of_stream flag (the only non-bijective byte: any nonzero
// value re-encodes as 1). The trailing 16 bytes are the trace context.
constexpr std::size_t kEosOffset = ControlMsg::kWireSize - 17;

void expect_equal(const ControlMsg& a, const ControlMsg& b) {
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.chunk_index, b.chunk_index);
  EXPECT_EQ(a.rkey, b.rkey);
  EXPECT_EQ(a.pool_offset, b.pool_offset);
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.rank, b.rank);
  EXPECT_EQ(a.stream_offset, b.stream_offset);
  EXPECT_EQ(a.end_of_stream, b.end_of_stream);
  EXPECT_EQ(a.ctx, b.ctx);
}

TEST(ControlMsgWire, EncodeProducesExactWireSize) {
  EXPECT_EQ(ControlMsg::kWireSize, 54u);
  EXPECT_EQ(sample().encode().size(), ControlMsg::kWireSize);
}

TEST(ControlMsgWire, RoundTripsEveryOpcode) {
  for (Op op : {Op::kRequest, Op::kRelease, Op::kDone, Op::kDoneAck}) {
    ControlMsg m = sample();
    m.op = op;
    const sim::Bytes wire = m.encode();
    const auto back = ControlMsg::decode(sim::ByteSpan(wire));
    ASSERT_TRUE(back.has_value());
    expect_equal(*back, m);
  }
}

TEST(ControlMsgWire, RoundTripsBoundaryValues) {
  ControlMsg m;
  m.op = Op::kDoneAck;
  m.chunk_index = UINT32_MAX;
  m.rkey = UINT32_MAX;
  m.pool_offset = UINT64_MAX;
  m.length = UINT64_MAX;
  m.rank = -1;  // the "no rank" sentinel survives the u32 cast
  m.stream_offset = UINT64_MAX;
  m.end_of_stream = true;
  m.ctx = telemetry::TraceContext{UINT64_MAX, UINT64_MAX};
  const sim::Bytes wire = m.encode();
  const auto back = ControlMsg::decode(sim::ByteSpan(wire));
  ASSERT_TRUE(back.has_value());
  expect_equal(*back, m);

  ControlMsg zero;  // all defaults
  const sim::Bytes zwire = zero.encode();
  const auto zback = ControlMsg::decode(sim::ByteSpan(zwire));
  ASSERT_TRUE(zback.has_value());
  expect_equal(*zback, zero);
}

TEST(ControlMsgWire, RoundTripsEndOfStreamBothWays) {
  for (bool eos : {false, true}) {
    ControlMsg m = sample();
    m.end_of_stream = eos;
    const auto back = ControlMsg::decode(sim::ByteSpan(m.encode()));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->end_of_stream, eos);
  }
}

TEST(ControlMsgWire, RejectsWrongSizes) {
  const sim::Bytes wire = sample().encode();
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, ControlMsg::kWireSize - 1}) {
    EXPECT_FALSE(ControlMsg::decode(sim::ByteSpan(wire.data(), n)).has_value()) << n;
  }
  sim::Bytes longer = wire;
  longer.push_back(std::byte{0});
  EXPECT_FALSE(ControlMsg::decode(sim::ByteSpan(longer)).has_value());
  sim::Bytes huge(1024, std::byte{0x2a});
  EXPECT_FALSE(ControlMsg::decode(sim::ByteSpan(huge)).has_value());
}

TEST(ControlMsgWire, RejectsBadOpcodes) {
  for (std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{5}, std::uint8_t{27},
                           std::uint8_t{255}}) {
    sim::Bytes wire = sample().encode();
    wire[0] = static_cast<std::byte>(bad);
    EXPECT_FALSE(ControlMsg::decode(sim::ByteSpan(wire)).has_value()) << int(bad);
  }
}

TEST(ControlMsgWire, DecodeIsPureOverTheWholeByteRange) {
  // Fuzz-ish sweep: flipping any single byte of a valid frame either yields
  // a decodable message (field change) or nullopt (opcode 0/5+), never UB.
  const sim::Bytes wire = sample().encode();
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t v : {std::uint8_t{0x00}, std::uint8_t{0x80}, std::uint8_t{0xff}}) {
      sim::Bytes mutant = wire;
      mutant[i] = static_cast<std::byte>(v);
      const auto got = ControlMsg::decode(sim::ByteSpan(mutant));
      if (i == 0) {
        EXPECT_EQ(got.has_value(), v >= 1 && v <= 4);
      } else if (i == kEosOffset) {
        // end_of_stream: any nonzero byte reads as true (re-encodes as 1).
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->end_of_stream, v != 0);
      } else {
        ASSERT_TRUE(got.has_value()) << "byte " << i;
        // Re-encoding must reproduce the mutant exactly (bijective format).
        EXPECT_EQ(got->encode(), mutant) << "byte " << i;
      }
    }
  }
}

}  // namespace
}  // namespace jobmig::migration::wire
