#include <gtest/gtest.h>

#include <map>
#include <string>

#include "jobmig/migration/kv_codec.hpp"

namespace jobmig::migration {
namespace {

using Map = std::map<std::string, std::string>;

TEST(KvEscape, EscapesDelimitersAndControlBytes) {
  EXPECT_EQ(kv_escape("plain-token_7"), "plain-token_7");
  EXPECT_EQ(kv_escape("a b"), "a%20b");
  EXPECT_EQ(kv_escape("k=v"), "k%3Dv");
  EXPECT_EQ(kv_escape("50%"), "50%25");
  EXPECT_EQ(kv_escape(std::string("\n\t") + "\x7f"), "%0A%09%7F");
}

TEST(KvEscape, UnescapeInvertsEscape) {
  const std::string nasty = "ranks=0,1 2\thost%node \x01\x1f\x7f done";
  EXPECT_EQ(kv_unescape(kv_escape(nasty)), nasty);
}

TEST(KvEscape, MalformedEscapesPassThroughAsLiterals) {
  EXPECT_EQ(kv_unescape("100%"), "100%");      // trailing %
  EXPECT_EQ(kv_unescape("%4"), "%4");          // truncated
  EXPECT_EQ(kv_unescape("%zz"), "%zz");        // non-hex digits
  EXPECT_EQ(kv_unescape("%%41"), "%A");        // first % literal, then %41
}

TEST(KvCodec, RoundTripsPlainIdentifiers) {
  const Map kv{{"event", "migrate"}, {"src", "node2"}, {"ranks", "2,3"}};
  EXPECT_EQ(decode_kv(encode_kv(kv)), kv);
}

TEST(KvCodec, RoundTripsHostileKeysAndValues) {
  const Map kv{
      {"host name", "spare 0"},            // spaces both sides
      {"expr", "a=b=c"},                   // '=' in value
      {"pct", "99% done"},                 // '%' in value
      {"k=ey", "v"},                       // '=' in key
      {"ctl", std::string("\x01\n\x7f")},  // control bytes
      {"empty", ""},
  };
  EXPECT_EQ(decode_kv(encode_kv(kv)), kv);
}

TEST(KvCodec, DecodesLegacyUnescapedPayloads) {
  // Payloads written before escaping existed: plain identifiers, no '%'.
  const Map got = decode_kv("event=restart-done host=spare0 ranks=2,3");
  EXPECT_EQ(got.at("event"), "restart-done");
  EXPECT_EQ(got.at("host"), "spare0");
  EXPECT_EQ(got.at("ranks"), "2,3");
}

TEST(KvCodec, SkipsTokensWithoutSeparator) {
  const Map got = decode_kv("noise k=v also-noise");
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(got.at("k"), "v");
}

TEST(KvCodec, EmptyPayload) {
  EXPECT_TRUE(decode_kv("").empty());
  EXPECT_EQ(encode_kv({}), "");
}

}  // namespace
}  // namespace jobmig::migration
