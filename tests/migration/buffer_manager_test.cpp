#include "jobmig/migration/buffer_manager.hpp"

#include <gtest/gtest.h>

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

struct PullRig {
  Engine engine;
  ib::Fabric fabric{engine};
  ib::Hca& src_hca{fabric.add_node("src")};
  ib::Hca& dst_hca{fabric.add_node("dst")};
  PoolConfig cfg;

  explicit PullRig(PoolConfig c = {}) : cfg(c) {}

  /// Runs the full handshake + transfer of the given per-rank payloads.
  void transfer(std::map<int, Bytes> payloads, TargetBufferManager& tmgr,
                SourceBufferManager& smgr) {
    engine.spawn([](PullRig& rig, TargetBufferManager& tm, SourceBufferManager& sm,
                    std::map<int, Bytes> data) -> Task {
      ib::IbAddr target_addr = co_await tm.open();
      ib::IbAddr source_addr = co_await sm.open(target_addr);
      tm.connect_to(source_addr);
      sm.start();
      rig.engine.spawn(tm.serve());

      sim::TaskGroup group(rig.engine);
      std::vector<std::unique_ptr<proc::CheckpointSink>> sinks;
      for (auto& [rank, bytes] : data) {
        sinks.push_back(sm.make_sink(rank));
        group.spawn([](proc::CheckpointSink& sink, const Bytes& b) -> Task {
          // Feed in awkward odd-sized pieces to exercise chunk packing.
          std::size_t pos = 0;
          while (pos < b.size()) {
            const std::size_t n = std::min<std::size_t>(300'001, b.size() - pos);
            co_await sink.write(sim::ByteSpan(b.data() + pos, n));
            pos += n;
          }
          co_await sink.finish();
        }(*sinks.back(), data.at(rank)));
      }
      co_await group.wait();
      co_await sm.finish();
    }(*this, tmgr, smgr, std::move(payloads)));
    engine.run();
  }
};

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

TEST(BufferManager, SingleRankStreamArrivesIntact) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  Bytes payload = patterned(5'000'000, 1);
  rig.transfer({{0, payload}}, tmgr, smgr);
  EXPECT_EQ(tmgr.stream_of(0), payload);
  EXPECT_EQ(tmgr.bytes_pulled(), 5'000'000u);
  EXPECT_EQ(smgr.bytes_submitted(), 5'000'000u);
}

TEST(BufferManager, MultipleRanksReassembleIndependently) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  std::map<int, Bytes> data;
  for (int r = 0; r < 8; ++r) {
    data[r] = patterned(800'000 + static_cast<std::size_t>(r) * 123'457, 100 + static_cast<std::uint64_t>(r));
  }
  rig.transfer(data, tmgr, smgr);
  EXPECT_EQ(tmgr.ranks().size(), 8u);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(tmgr.stream_of(r), data[r]) << "rank " << r;
}

TEST(BufferManager, PoolSmallerThanDataStillCompletes) {
  // 2 MB pool moving 20 MB: flow control must recycle chunks ~10x.
  PoolConfig cfg;
  cfg.pool_bytes = 2ull << 20;
  cfg.chunk_bytes = 1ull << 20;
  PullRig rig(cfg);
  TargetBufferManager tmgr(rig.dst_hca, cfg);
  SourceBufferManager smgr(rig.src_hca, cfg);
  Bytes payload = patterned(20ull << 20, 7);
  rig.transfer({{3, payload}}, tmgr, smgr);
  EXPECT_EQ(tmgr.stream_of(3), payload);
  EXPECT_LE(smgr.peak_chunks_in_flight(), cfg.chunks());
}

TEST(BufferManager, TinyChunksWork) {
  PoolConfig cfg;
  cfg.pool_bytes = 256 * 1024;
  cfg.chunk_bytes = 64 * 1024;
  PullRig rig(cfg);
  TargetBufferManager tmgr(rig.dst_hca, cfg);
  SourceBufferManager smgr(rig.src_hca, cfg);
  Bytes payload = patterned(1'000'000, 9);
  rig.transfer({{0, payload}}, tmgr, smgr);
  EXPECT_EQ(tmgr.stream_of(0), payload);
}

TEST(BufferManager, StreamEndingOnChunkBoundary) {
  PoolConfig cfg;
  cfg.pool_bytes = 4ull << 20;
  cfg.chunk_bytes = 1ull << 20;
  PullRig rig(cfg);
  TargetBufferManager tmgr(rig.dst_hca, cfg);
  SourceBufferManager smgr(rig.src_hca, cfg);
  Bytes payload = patterned(2ull << 20, 4);  // exactly two chunks
  rig.transfer({{0, payload}}, tmgr, smgr);
  EXPECT_EQ(tmgr.stream_of(0), payload);
}

TEST(BufferManager, EmptyStreamProducesEmptyButCompleteRank) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  rig.transfer({{5, Bytes{}}}, tmgr, smgr);
  EXPECT_TRUE(tmgr.stream_of(5).empty());
}

TEST(BufferManager, TransferTimeTracksLinkBandwidth) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  Bytes payload = patterned(150ull << 20, 2);  // 150 MiB
  const double start = 0.0;
  rig.transfer({{0, payload}}, tmgr, smgr);
  const double elapsed = rig.engine.now().to_seconds() - start;
  // 157 MB at 1.5 GB/s is ~0.105 s of wire time; pipelining against chunk
  // bookkeeping should keep the total well under 3x that.
  EXPECT_GT(elapsed, 0.100);
  EXPECT_LT(elapsed, 0.32);
}

TEST(BufferManager, TakeStreamTransfersOwnership) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  Bytes payload = patterned(100'000, 3);
  rig.transfer({{0, payload}}, tmgr, smgr);
  Bytes taken = tmgr.take_stream(0);
  EXPECT_EQ(taken, payload);
  EXPECT_THROW((void)tmgr.stream_of(0), ContractViolation);
}

TEST(BufferManager, StreamingSourceTailsTheTransfer) {
  // A reader attached before the transfer consumes the stream on the fly
  // and finishes with byte-identical content (the §IV-A pipelined restart).
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  Bytes payload = patterned(30ull << 20, 21);
  Bytes consumed;
  double reader_done = -1.0, transfer_done = -1.0;

  rig.engine.spawn([](PullRig& r, TargetBufferManager& tm, SourceBufferManager& sm,
                      const Bytes& data, Bytes& out, double& r_done, double& t_done) -> Task {
    ib::IbAddr taddr = co_await tm.open();
    ib::IbAddr saddr = co_await sm.open(taddr);
    tm.connect_to(saddr);
    sm.start();
    sim::TaskGroup group(r.engine);
    group.spawn(tm.serve());
    group.spawn([](TargetBufferManager& target, Bytes& sink, double& done) -> Task {
      auto source = target.make_streaming_source(4);
      while (true) {
        Bytes chunk = co_await source->read(256 * 1024);
        if (chunk.empty()) break;
        sink.insert(sink.end(), chunk.begin(), chunk.end());
      }
      done = Engine::current()->now().to_seconds();
    }(tm, out, r_done));
    auto sink = sm.make_sink(4);
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t n = std::min<std::size_t>(1 << 20, data.size() - pos);
      co_await sink->write(sim::ByteSpan(data.data() + pos, n));
      pos += n;
    }
    co_await sink->finish();
    co_await sm.finish();
    t_done = Engine::current()->now().to_seconds();
    co_await group.wait();
  }(rig, tmgr, smgr, payload, consumed, reader_done, transfer_done));
  rig.engine.run();

  EXPECT_EQ(consumed, payload);
  // The tail reader keeps up with the transfer: it finishes within a whisker
  // of the transfer itself, not after re-reading 30 MB.
  EXPECT_LT(reader_done - transfer_done, 0.01);
}

TEST(BufferManager, NextAnnouncedRankDiscoversRanksThenEnds) {
  PullRig rig;
  TargetBufferManager tmgr(rig.dst_hca, rig.cfg);
  SourceBufferManager smgr(rig.src_hca, rig.cfg);
  std::vector<int> discovered;
  rig.engine.spawn([](PullRig& r, TargetBufferManager& tm, SourceBufferManager& sm,
                      std::vector<int>& out) -> Task {
    ib::IbAddr taddr = co_await tm.open();
    ib::IbAddr saddr = co_await sm.open(taddr);
    tm.connect_to(saddr);
    sm.start();
    sim::TaskGroup group(r.engine);
    group.spawn(tm.serve());
    group.spawn([](TargetBufferManager& target, std::vector<int>& found) -> Task {
      while (true) {
        const int rank = co_await target.next_announced_rank();
        if (rank < 0) break;
        found.push_back(rank);
      }
    }(tm, out));
    for (int rank : {11, 3, 7}) {
      auto sink = sm.make_sink(rank);
      Bytes data = patterned(2 << 20, static_cast<std::uint64_t>(rank));
      co_await sink->write(data);
      co_await sink->finish();
    }
    co_await sm.finish();
    co_await group.wait();
  }(rig, tmgr, smgr, discovered));
  rig.engine.run();
  EXPECT_EQ(discovered, (std::vector<int>{11, 3, 7}));
}

TEST(BufferManager, ControlMsgCodecRoundTrip) {
  wire::ControlMsg m;
  m.op = wire::Op::kRequest;
  m.chunk_index = 7;
  m.rkey = 0xBEEF;
  m.pool_offset = 3 << 20;
  m.length = 123456;
  m.rank = 42;
  m.stream_offset = 99999999;
  m.end_of_stream = true;
  auto decoded = wire::ControlMsg::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->chunk_index, 7u);
  EXPECT_EQ(decoded->rkey, 0xBEEFu);
  EXPECT_EQ(decoded->length, 123456u);
  EXPECT_EQ(decoded->rank, 42);
  EXPECT_EQ(decoded->stream_offset, 99999999u);
  EXPECT_TRUE(decoded->end_of_stream);
  EXPECT_FALSE(wire::ControlMsg::decode(Bytes(5)).has_value());
  Bytes bad(wire::ControlMsg::kWireSize);
  bad[0] = std::byte{9};
  EXPECT_FALSE(wire::ControlMsg::decode(bad).has_value());
}

TEST(BufferManager, PoolConfigChunkMath) {
  PoolConfig cfg;
  EXPECT_EQ(cfg.chunks(), 10u);  // 10 MB / 1 MB, the paper's configuration
  cfg.pool_bytes = 5ull << 20;
  cfg.chunk_bytes = 2ull << 20;
  EXPECT_EQ(cfg.chunks(), 2u);
}

TEST(BufferedStreamSource, ChargesDiskInFileModeOnly) {
  Engine e1;
  sim::DiskParams disk_params;
  disk_params.read_Bps = 50e6;
  storage::BlockDevice disk(e1, disk_params);
  Bytes stream = patterned(5'000'000, 1);

  double file_mode_time = -1.0;
  e1.spawn([](BufferedStreamSource src, double& out) -> Task {
    while (true) {
      Bytes chunk = co_await src.read(1 << 20);
      if (chunk.empty()) break;
    }
    out = Engine::current()->now().to_seconds();
  }(BufferedStreamSource(stream, &disk), file_mode_time));
  e1.run();
  EXPECT_NEAR(file_mode_time, 0.1, 0.01);  // 5 MB at 50 MB/s

  Engine e2;
  double mem_mode_time = -1.0;
  e2.spawn([](BufferedStreamSource src, double& out) -> Task {
    while (true) {
      Bytes chunk = co_await src.read(1 << 20);
      if (chunk.empty()) break;
    }
    out = Engine::current()->now().to_seconds();
  }(BufferedStreamSource(stream, nullptr), mem_mode_time));
  e2.run();
  EXPECT_DOUBLE_EQ(mem_mode_time, 0.0);
}

}  // namespace
}  // namespace jobmig::migration
