/// Causal-tracing integration tests: run real migration cycles and check
/// that the recorded span graph is a well-formed DAG — the property the
/// offline critical-path extraction (tools/jobmig-trace) depends on — and
/// that an aborted cycle leaves a parseable flight-recorder dump behind.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/controller.hpp"
#include "jobmig/telemetry/flight_recorder.hpp"
#include "jobmig/telemetry/json_read.hpp"
#include "jobmig/telemetry/telemetry.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  return cfg;
}

MigrationReport run_traced_cycle(telemetry::Telemetry& session) {
  telemetry::TelemetryScope scope(session);
  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 100_ms;
  cl.create_job(2, spec.image_bytes_per_rank);

  MigrationReport report;
  engine.spawn([](Cluster& c, workload::KernelSpec s, MigrationReport& rep) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(2_s);
    rep = co_await c.migration_manager().migrate("node1");
  }(cl, spec, report));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  return report;
}

TEST(MigrationTraceDag, CycleRecordsAWellFormedDag) {
  telemetry::Telemetry session;
  const MigrationReport report = run_traced_cycle(session);
  ASSERT_FALSE(report.aborted);
  ASSERT_NE(report.trace_id, 0u);

  const auto& trace = session.trace;
  // Every span of the cycle closed, with sane interval and a resolvable
  // causal parent that is not itself.
  std::set<telemetry::SpanId> traced;
  for (const auto& s : trace.spans()) {
    if (s.trace_id != report.trace_id) continue;
    traced.insert(s.id);
    EXPECT_FALSE(s.open) << s.track << "/" << s.name;
    EXPECT_GE(s.end.count_ns(), s.begin.count_ns());
    if (s.link_parent != telemetry::kNoSpan) {
      EXPECT_NE(s.link_parent, s.id);
      EXPECT_NE(trace.find(s.link_parent), nullptr) << "orphan link_parent in " << s.name;
    }
    if (s.parent != telemetry::kNoSpan) {
      EXPECT_NE(trace.find(s.parent), nullptr) << "orphan sync parent in " << s.name;
    }
  }
  ASSERT_FALSE(traced.empty());

  // The manager's four phase spans all belong to the cycle's trace.
  std::set<std::string> migmgr_names;
  for (const auto& s : trace.spans()) {
    if (s.trace_id == report.trace_id && s.track == "migmgr") migmgr_names.insert(s.name);
  }
  for (const char* phase : {"Stall", "Migration", "Restart", "Resume"}) {
    EXPECT_TRUE(migmgr_names.contains(phase)) << "missing phase span " << phase;
  }

  // Flow edges: endpoints recorded, consumption time inside the receiving
  // span and not before the causing span began.
  std::map<telemetry::SpanId, std::vector<telemetry::SpanId>> out;
  std::map<telemetry::SpanId, int> indegree;
  std::size_t cycle_edges = 0;
  bool cross_track = false;
  for (const auto& f : trace.flows()) {
    const auto* from = trace.find(f.from);
    const auto* to = trace.find(f.to);
    ASSERT_NE(from, nullptr);
    ASSERT_NE(to, nullptr);
    EXPECT_NE(f.from, f.to) << "self-edge on " << to->name;
    if (to->trace_id != report.trace_id) continue;
    ++cycle_edges;
    EXPECT_GE(f.at.count_ns(), to->begin.count_ns()) << to->name;
    EXPECT_LE(f.at.count_ns(), to->end.count_ns()) << to->name;
    EXPECT_GE(f.at.count_ns(), from->begin.count_ns()) << from->name << " -> " << to->name;
    out[f.from].push_back(f.to);
    ++indegree[f.to];
    if (from->track != to->track) cross_track = true;
  }
  ASSERT_GT(cycle_edges, 0u);
  EXPECT_TRUE(cross_track) << "no cross-track causal edge recorded";

  // Acyclicity (Kahn): every span involved in a flow must drain.
  std::set<telemetry::SpanId> nodes;
  for (const auto& [from, tos] : out) {
    nodes.insert(from);
    nodes.insert(tos.begin(), tos.end());
  }
  for (const auto& [to, deg] : indegree) nodes.insert(to);
  std::vector<telemetry::SpanId> ready;
  for (auto id : nodes) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::size_t drained = 0;
  while (!ready.empty()) {
    const auto id = ready.back();
    ready.pop_back();
    ++drained;
    for (auto next : out[id]) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  EXPECT_EQ(drained, nodes.size()) << "span DAG contains a cycle";
}

TEST(MigrationTraceDag, NodeDeathAbortsCycleAndDumpsFlightRecorder) {
  const std::string dump_path = ::testing::TempDir() + "jobmig_flight_abort.json";
  std::remove(dump_path.c_str());
  auto& fr = telemetry::FlightRecorder::instance();
  fr.clear();
  fr.set_dump_path(dump_path);

  Engine engine;
  Cluster cl(engine, small_config());
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 100_ms;
  cl.create_job(2, spec.image_bytes_per_rank);

  MigrationReport report;
  bool returned = false;
  // Kill a bystander node 10 ms into the stall phase: its FTB_SUSPEND_DONE
  // never arrives and FTB_NODE_DEAD aborts the cycle.
  engine.spawn([](Engine& eng, Cluster& c, workload::KernelSpec s, MigrationReport& rep,
                  bool& done) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(2_s);
    eng.spawn([](Cluster& cc, MigrationReport& r, bool& d) -> Task {
      r = co_await cc.migration_manager().migrate("node1");
      d = true;
    }(c, rep, done));
    co_await sim::sleep_for(10_ms);
    co_await c.inject_node_death(2);
  }(engine, cl, spec, report, returned));
  engine.run_until(sim::TimePoint::origin() + 120_s);

  ASSERT_TRUE(returned);
  EXPECT_TRUE(report.aborted);
  EXPECT_NE(report.abort_reason.find(kEvNodeDead), std::string::npos);
  EXPECT_EQ(cl.migration_manager().cycles_completed(), 0u);

  // The incident dump exists, parses, and holds the trail of events.
  std::string err;
  auto dump = telemetry::parse_json_file(dump_path, &err);
  ASSERT_TRUE(dump.has_value()) << err;
  EXPECT_EQ(dump->str("format"), "jobmig-flight-v1");
  EXPECT_NE(dump->str("reason").find("aborted"), std::string::npos);
  const auto* entries = dump->get("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_TRUE(entries->is_array());
  EXPECT_FALSE(entries->items.empty());
  bool saw_death = false;
  for (const auto& e : entries->items) {
    if (e.str("category") == "failure") saw_death = true;
  }
  EXPECT_TRUE(saw_death) << "node-death note missing from the dump";

  fr.set_dump_path("");
  fr.clear();
  std::remove(dump_path.c_str());
}

}  // namespace
}  // namespace jobmig::migration
