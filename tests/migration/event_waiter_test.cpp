#include <gtest/gtest.h>

#include "jobmig/migration/controller.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

struct WaiterRig {
  Engine engine;
  net::Network net{engine};
  net::Host& host{net.add_host("h")};
  ftb::FtbAgent agent{host};
  WaiterRig() { agent.start(); }
};

TEST(EventWaiter, OutOfOrderConsumptionViaStash) {
  WaiterRig rig;
  std::vector<std::string> consumed;
  rig.engine.spawn([](WaiterRig& r, std::vector<std::string>& out) -> Task {
    ftb::FtbClient client(r.agent, "consumer");
    client.subscribe(ftb::Subscription{kMigSpace, "*", ftb::Severity::kInfo});
    ftb::FtbClient producer(r.agent, "producer");
    // Publish A, B, C but consume C, A, B.
    co_await producer.publish(ftb::FtbEvent{kMigSpace, "EV_A", ftb::Severity::kInfo, "1"});
    co_await producer.publish(ftb::FtbEvent{kMigSpace, "EV_B", ftb::Severity::kInfo, "2"});
    co_await producer.publish(ftb::FtbEvent{kMigSpace, "EV_C", ftb::Severity::kInfo, "3"});
    EventWaiter waiter(client);
    out.push_back((co_await waiter.await_named("EV_C")).payload);
    out.push_back((co_await waiter.await_named("EV_A")).payload);
    out.push_back((co_await waiter.await_named("EV_B")).payload);
  }(rig, consumed));
  rig.engine.run_until(sim::TimePoint::origin() + 2_s);
  EXPECT_EQ(consumed, (std::vector<std::string>{"3", "1", "2"}));
}

TEST(EventWaiter, BlocksUntilTheNamedEventArrives) {
  WaiterRig rig;
  double woke_at = -1.0;
  rig.engine.spawn([](WaiterRig& r, double& out) -> Task {
    ftb::FtbClient client(r.agent, "consumer");
    client.subscribe(ftb::Subscription{kMigSpace, "*", ftb::Severity::kInfo});
    ftb::FtbClient producer(r.agent, "producer");
    r.engine.spawn([](ftb::FtbClient* p) -> Task {
      co_await sim::sleep_for(50_ms);
      co_await p->publish(ftb::FtbEvent{kMigSpace, "LATE", ftb::Severity::kInfo, ""});
    }(&producer));
    EventWaiter waiter(client);
    (void)co_await waiter.await_named("LATE");
    out = sim::Engine::current()->now().to_seconds();
  }(rig, woke_at));
  rig.engine.run_until(sim::TimePoint::origin() + 2_s);
  EXPECT_GE(woke_at, 0.050);
  EXPECT_LT(woke_at, 0.060);
}

TEST(EventWaiter, DuplicateNamesAreConsumedFifo) {
  WaiterRig rig;
  std::vector<std::string> consumed;
  rig.engine.spawn([](WaiterRig& r, std::vector<std::string>& out) -> Task {
    ftb::FtbClient client(r.agent, "consumer");
    client.subscribe(ftb::Subscription{kMigSpace, "*", ftb::Severity::kInfo});
    ftb::FtbClient producer(r.agent, "producer");
    for (int i = 0; i < 3; ++i) {
      co_await producer.publish(
          ftb::FtbEvent{kMigSpace, "DUP", ftb::Severity::kInfo, std::to_string(i)});
    }
    // Interleave with a non-matching event that lands in the stash.
    co_await producer.publish(ftb::FtbEvent{kMigSpace, "OTHER", ftb::Severity::kInfo, "x"});
    EventWaiter waiter(client);
    out.push_back((co_await waiter.await_named("DUP")).payload);
    out.push_back((co_await waiter.await_named("DUP")).payload);
    out.push_back((co_await waiter.await_named("OTHER")).payload);
    out.push_back((co_await waiter.await_named("DUP")).payload);
  }(rig, consumed));
  rig.engine.run_until(sim::TimePoint::origin() + 2_s);
  EXPECT_EQ(consumed, (std::vector<std::string>{"0", "1", "x", "2"}));
}

}  // namespace
}  // namespace jobmig::migration
