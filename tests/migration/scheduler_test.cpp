#include "jobmig/migration/scheduler.hpp"

#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

struct SchedRig {
  Engine engine;
  ClusterConfig cfg;
  std::unique_ptr<Cluster> cl;
  workload::KernelSpec spec;
  std::unique_ptr<CheckpointRestart> cr;

  explicit SchedRig(double app_seconds) {
    cfg.compute_nodes = 2;
    cfg.spare_nodes = 1;
    cl = std::make_unique<Cluster>(engine, cfg);
    spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 4, 1.0);
    spec.iterations = static_cast<int>(app_seconds / 0.1);
    spec.time_per_iter = 100_ms;
    cl->create_job(2, spec.image_bytes_per_rank);
    cr = cl->make_cr_local();
  }
};

TEST(CheckpointScheduler, TakesCheckpointsAtTheConfiguredInterval) {
  SchedRig rig(/*app_seconds=*/10.0);
  CheckpointScheduler sched(rig.cl->job(), *rig.cr, {2_s, true});
  rig.engine.spawn([](SchedRig& r, CheckpointScheduler& s) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    s.start();
  }(rig, sched));
  rig.engine.run_until(sim::TimePoint::origin() + 300_s);
  sched.stop();

  EXPECT_TRUE(rig.cl->job().app_done());
  // ~10 s of app at a 2 s cadence (checkpoints themselves add time): 3-5.
  EXPECT_GE(sched.checkpoints_taken(), 3u);
  EXPECT_LE(sched.checkpoints_taken(), 6u);
  EXPECT_GT(sched.bytes_written(), 0u);
  EXPECT_GT(sched.time_in_checkpoints().count_ns(), 0);
}

TEST(CheckpointScheduler, MigrationProlongsTheInterval) {
  SchedRig rig(/*app_seconds=*/8.0);
  CheckpointScheduler sched(rig.cl->job(), *rig.cr, {3_s, true});
  std::size_t taken_at_migration = SIZE_MAX;
  rig.engine.spawn([](SchedRig& r, CheckpointScheduler& s, std::size_t& out) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    s.start();
    // Migrate just before the first checkpoint would fire.
    co_await sim::sleep_for(2500_ms);
    (void)co_await r.cl->migration_manager().migrate("node1");
    s.notify_migration();
    out = s.checkpoints_taken();
  }(rig, sched, taken_at_migration));
  rig.engine.run_until(sim::TimePoint::origin() + 300_s);
  sched.stop();

  EXPECT_TRUE(rig.cl->job().app_done());
  EXPECT_EQ(taken_at_migration, 0u);           // migration preempted checkpoint #1
  EXPECT_GE(sched.checkpoints_avoided(), 1u);  // ...and it was counted as avoided
}

TEST(CheckpointScheduler, ProlongDisabledKeepsSchedule) {
  SchedRig rig(/*app_seconds=*/6.0);
  CheckpointScheduler sched(rig.cl->job(), *rig.cr, {2_s, /*prolong=*/false});
  rig.engine.spawn([](SchedRig& r, CheckpointScheduler& s) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    s.start();
    co_await sim::sleep_for(1500_ms);
    (void)co_await r.cl->migration_manager().migrate("node0");
    s.notify_migration();  // must be a no-op
  }(rig, sched));
  rig.engine.run_until(sim::TimePoint::origin() + 300_s);
  sched.stop();
  EXPECT_TRUE(rig.cl->job().app_done());
  EXPECT_EQ(sched.checkpoints_avoided(), 0u);
  EXPECT_GE(sched.checkpoints_taken(), 2u);
}

TEST(CheckpointScheduler, StopsWhenAppFinishes) {
  SchedRig rig(/*app_seconds=*/1.0);
  CheckpointScheduler sched(rig.cl->job(), *rig.cr, {10_s, true});
  rig.engine.spawn([](SchedRig& r, CheckpointScheduler& s) -> Task {
    co_await r.cl->start(workload::make_app(r.spec));
    s.start();
  }(rig, sched));
  rig.engine.run_until(sim::TimePoint::origin() + 60_s);
  EXPECT_TRUE(rig.cl->job().app_done());
  EXPECT_EQ(sched.checkpoints_taken(), 0u);  // app ended before the first one
}

}  // namespace
}  // namespace jobmig::migration
