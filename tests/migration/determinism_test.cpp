#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::migration {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

struct RunResult {
  MigrationReport report;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::vector<std::uint64_t> final_crcs;
};

RunResult run_full_cycle() {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 80_ms;
  cl.create_job(2, spec.image_bytes_per_rank);
  RunResult out;
  engine.spawn([](Cluster& c, workload::KernelSpec s, RunResult& r) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    r.report = co_await c.migration_manager().migrate("node1");
  }(cl, spec, out));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  JOBMIG_ASSERT(cl.job().app_done());
  out.events = engine.events_processed();
  out.messages = cl.job().total_messages();
  for (int r = 0; r < cl.job().size(); ++r) {
    out.final_crcs.push_back(cl.job().proc(r).sim_process().image().content_crc());
  }
  return out;
}

/// The property every figure in EXPERIMENTS.md relies on: the entire stack
/// — app, MPI runtime, FTB, RDMA pool, BLCR, restart — replays identically.
TEST(Determinism, FullMigrationCycleIsExactlyReproducible) {
  const RunResult a = run_full_cycle();
  const RunResult b = run_full_cycle();
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.report.stall.count_ns(), b.report.stall.count_ns());
  EXPECT_EQ(a.report.migration.count_ns(), b.report.migration.count_ns());
  EXPECT_EQ(a.report.restart.count_ns(), b.report.restart.count_ns());
  EXPECT_EQ(a.report.resume.count_ns(), b.report.resume.count_ns());
  EXPECT_EQ(a.report.bytes_moved, b.report.bytes_moved);
  EXPECT_EQ(a.final_crcs, b.final_crcs);
}

}  // namespace
}  // namespace jobmig::migration
