#include "jobmig/sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <new>
#include <vector>

#include "jobmig/sim/task.hpp"

// ---- allocation counting hook ----------------------------------------------
// Replaces the global scalar new/delete for this test binary so the
// steady-state test below can assert that schedule/step performs zero heap
// allocations once the engine's slab and heaps are warm. Counting is off by
// default so gtest's own allocations are invisible.
namespace {
bool g_count_allocs = false;
std::size_t g_alloc_count = 0;
}  // namespace

// GCC's -Wmismatched-new-delete does not model replaced global operators: it
// pairs the library's builtin operator new knowledge with our free()-backed
// delete and reports a mismatch that cannot occur.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  if (g_count_allocs) ++g_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

// The wheel's geometry, restated here so the tests can aim events at slot
// and level boundaries: 256 ns base tick, 256 slots per level, 4 levels,
// total span 2^40 ns.
constexpr std::int64_t kTick = 256;
constexpr std::int64_t kLevel0Span = kTick << 8;       // 2^16 ns
constexpr std::int64_t kLevel1Span = kLevel0Span << 8; // 2^24 ns
constexpr std::int64_t kWheelSpan = 1ll << 40;

TEST(TimerWheel, SameTickManyEventsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  // All land in one tick: same when_ns for half, +1 ns offsets for the rest,
  // so both the seq tiebreak and the intra-tick time ordering are exercised.
  for (int i = 0; i < 100; ++i) {
    e.call_at(TimePoint::origin() + Duration::ns(10), [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TimerWheel, WithinTickSubNanosecondSpacingFiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  // Reverse insertion order, increasing times inside one 256 ns tick: time
  // must win over insertion order.
  for (int i = 9; i >= 0; --i) {
    e.call_at(TimePoint::origin() + Duration::ns(i * 10), [&order, i] { order.push_back(i); });
  }
  e.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(TimerWheel, Level0WraparoundKeepsExactFireTimes) {
  Engine e;
  // Delays straddling several level-0 revolutions, scheduled from a nonzero
  // cursor so slot indices wrap modulo 256.
  std::vector<std::pair<std::int64_t, std::int64_t>> fired;  // (expected, actual)
  e.call_at(TimePoint::origin() + Duration::ns(3 * kTick + 7), [&e, &fired] {
    const std::int64_t base = e.now().count_ns();
    for (std::int64_t mult : {1, 2, 3, 5, 8}) {
      const std::int64_t due = base + mult * kLevel0Span + 11;
      e.call_at(TimePoint::from_ns(due), [&e, &fired, due] {
        fired.emplace_back(due, e.now().count_ns());
      });
    }
  });
  e.run();
  ASSERT_EQ(fired.size(), 5u);
  for (const auto& [expected, actual] : fired) EXPECT_EQ(expected, actual);
}

TEST(TimerWheel, MultiLevelCascadePreservesOrderAndTimes) {
  Engine e;
  // One event per decade across all wheel levels, inserted shuffled; they
  // must fire in time order at exactly their due times.
  std::vector<std::int64_t> delays = {kLevel1Span * 7 + 13,  // level 2
                                      kTick * 9 + 1,         // level 0
                                      kLevel0Span * 40 + 3,  // level 1
                                      (1ll << 35) + 999,     // level 3
                                      kLevel1Span + 1};      // level 2 boundary
  std::vector<std::int64_t> fire_times;
  for (std::int64_t d : delays) {
    e.call_at(TimePoint::origin() + Duration::ns(d),
              [&e, &fire_times] { fire_times.push_back(e.now().count_ns()); });
  }
  e.run();
  std::vector<std::int64_t> expected = delays;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fire_times, expected);
  EXPECT_EQ(e.overflow_scheduled(), 0u);  // everything fit in the wheel
}

TEST(TimerWheel, FarFutureEventsOverflowAndPromote) {
  Engine e;
  std::vector<int> order;
  // 30 simulated minutes is beyond the 2^40 ns ≈ 18.3 min wheel span, so
  // this lands in the overflow heap and must be promoted into the wheel as
  // the cursor approaches.
  e.call_at(TimePoint::origin() + Duration::sec(30 * 60), [&order] { order.push_back(2); });
  e.call_at(TimePoint::origin() + 1_ms, [&order] { order.push_back(1); });
  EXPECT_GE(e.overflow_scheduled(), 1u);
  const TimePoint end = e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(end, TimePoint::origin() + Duration::sec(30 * 60));

  // After the long jump the cursor re-anchors; near scheduling still works.
  e.call_at(end + 5_us, [&order] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order.back(), 3);
}

TEST(TimerWheel, OverflowPromotionInterleavesWithWheelEvents) {
  Engine e;
  std::vector<int> order;
  const TimePoint far = TimePoint::origin() + Duration::sec(20 * 60);  // overflow
  e.call_at(far, [&order] { order.push_back(1); });
  e.call_at(far + 1_us, [&order] { order.push_back(2); });
  // Once the far event fires, schedule a neighbour between the two promoted
  // events — it must slot in between them.
  e.call_at(far, [&e, &order] {
    e.call_at(e.now() + Duration::ns(500), [&order] { order.push_back(99); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 99, 2}));
}

TEST(TimerWheel, CancelDestroysCallbackButKeepsTimeline) {
  Engine e;
  bool ran = false;
  auto h = e.call_at(TimePoint::origin() + 10_ms, [&ran] { ran = true; });
  e.cancel(h);
  // The cancelled slot still advances virtual time as a no-op event, so the
  // timeline (and every downstream timestamp) is unchanged by cancellation.
  const TimePoint end = e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(end, TimePoint::origin() + 10_ms);
}

TEST(TimerWheel, CancelIsIdempotentAndSafeAfterFire) {
  Engine e;
  int runs = 0;
  auto h = e.call_at(TimePoint::origin() + 1_ms, [&runs] { ++runs; });
  e.run();
  EXPECT_EQ(runs, 1);
  e.cancel(h);  // node already recycled: generation check makes this a no-op
  e.cancel(h);
  e.cancel(Engine::TimerHandle{});  // default handle is inert
  e.run();
  EXPECT_EQ(runs, 1);
}

TEST(TimerWheel, CancelCannotHitARecycledNode) {
  Engine e;
  auto stale = e.call_at(TimePoint::origin() + 1_us, [] {});
  e.run();  // node freed and back on the freelist
  int runs = 0;
  // Likely reuses the same slab slot; the stale handle's generation differs.
  auto fresh = e.call_at(TimePoint::origin() + 2_us, [&runs] { ++runs; });
  e.cancel(stale);
  e.run();
  EXPECT_EQ(runs, 1);
  (void)fresh;
}

TEST(TimerWheel, SupersedeViaCancelAndReschedule) {
  Engine e;
  // The FairShareServer pattern: every reconfiguration cancels the pending
  // completion timer and schedules a new one.
  std::vector<int> order;
  Engine::TimerHandle timer = e.call_at(TimePoint::origin() + 10_ms, [&order] { order.push_back(1); });
  e.call_at(TimePoint::origin() + 2_ms, [&] {
    e.cancel(timer);
    timer = e.call_at(TimePoint::origin() + 5_ms, [&order] { order.push_back(2); });
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
  // Superseded-but-cancelled slot still holds the timeline's high-water mark.
  EXPECT_EQ(e.now(), TimePoint::origin() + 10_ms);
}

TEST(TimerWheel, RandomizedScheduleMatchesReferenceModel) {
  Engine e;
  // Seeded LCG workload covering every level plus the overflow heap, with
  // duplicate timestamps sprinkled in; the observed fire order must equal
  // the reference order: stable sort by (time, insertion order).
  struct Ref {
    std::int64_t when;
    int id;
  };
  std::vector<Ref> ref;
  std::vector<int> observed;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  };
  for (int i = 0; i < 5000; ++i) {
    std::int64_t when;
    switch (next() % 5) {
      case 0: when = static_cast<std::int64_t>(next() % (kTick * 4)); break;
      case 1: when = static_cast<std::int64_t>(next() % kLevel0Span); break;
      case 2: when = static_cast<std::int64_t>(next() % kLevel1Span); break;
      case 3: when = static_cast<std::int64_t>(next() % kWheelSpan); break;
      default: when = static_cast<std::int64_t>(next() % (kWheelSpan * 3)); break;
    }
    if (i % 7 == 0 && !ref.empty()) when = ref[next() % ref.size()].when;  // duplicates
    ref.push_back({when, i});
    e.call_at(TimePoint::from_ns(when), [&observed, i] { observed.push_back(i); });
  }
  e.run();
  std::stable_sort(ref.begin(), ref.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });
  ASSERT_EQ(observed.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(observed[i], ref[i].id) << "at " << i;
  EXPECT_EQ(e.events_processed(), 5000u);
  EXPECT_GT(e.overflow_scheduled(), 0u);
  EXPECT_GT(e.wheel_scheduled(), 0u);
}

TEST(TimerWheel, SequenceHashIsIdenticalAcrossIdenticalRuns) {
  auto workload = [](Engine& e) {
    for (int i = 0; i < 500; ++i) {
      e.call_at(TimePoint::origin() + Duration::ns((i * 977) % 100000),
                [&e, i] {
                  if (i % 3 == 0) e.call_in(Duration::us(i % 17 + 1), [] {});
                });
    }
    e.run();
  };
  Engine a, b;
  workload(a);
  workload(b);
  EXPECT_NE(a.sequence_hash(), 0xcbf29ce484222325ull);  // moved off the basis
  EXPECT_EQ(a.sequence_hash(), b.sequence_hash());
  EXPECT_EQ(a.events_processed(), b.events_processed());
}

TEST(TimerWheel, IntrospectionCountersTrackLoad) {
  Engine e;
  EXPECT_EQ(e.queue_depth(), 0u);
  for (int i = 0; i < 10; ++i) e.call_at(TimePoint::origin() + Duration::us(i + 1), [] {});
  EXPECT_EQ(e.queue_depth(), 10u);
  EXPECT_GE(e.peak_queue_depth(), 10u);
  EXPECT_EQ(e.wheel_scheduled(), 10u);
  e.run();
  EXPECT_EQ(e.queue_depth(), 0u);
  EXPECT_EQ(e.events_processed(), 10u);
}

TEST(EngineAlloc, SteadyStateSchedulingIsAllocationFree) {
  Engine e;
  // Self-rescheduling callback chain; the lambda captures one pointer so it
  // fits std::function's small-object buffer.
  struct Chain {
    Engine* e;
    std::uint64_t lcg;
    int remaining;
    void pump() {
      if (remaining-- <= 0) return;
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const auto d = static_cast<std::int64_t>(lcg >> 40) + 1;  // ~0..16.7M ns
      e->call_in(Duration::ns(d), [this] { pump(); });
    }
  };
  // Warm-up: more concurrent chains and iterations than the counted phase,
  // so the slab, freelist, and both heaps reach their high-water capacity.
  std::vector<Chain> warm(64);
  for (auto& c : warm) {
    c = Chain{&e, 0x12345678u + static_cast<std::uint64_t>(&c - warm.data()), 200};
    c.pump();
  }
  e.run();

  std::vector<Chain> counted(32);
  for (auto& c : counted) {
    c = Chain{&e, 0xabcdef01u + static_cast<std::uint64_t>(&c - counted.data()), 100};
  }
  g_alloc_count = 0;
  g_count_allocs = true;
  for (auto& c : counted) c.pump();
  e.run();
  g_count_allocs = false;
  EXPECT_EQ(g_alloc_count, 0u) << "schedule/step allocated on the steady-state path";
}

}  // namespace
}  // namespace jobmig::sim
