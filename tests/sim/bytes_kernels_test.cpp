// Kernel dispatch correctness (DESIGN.md §9): CRC-64/XZ known-answer
// vectors, cross-path bit-identity fuzz over every dispatch this host
// supports, and the selection logic itself. All SIMD paths must be pure
// speed — any divergence from the scalar reference on any input, length,
// alignment, or split point is a bug these tests are built to catch.
#include <cstring>
#include <random>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/bytes_kernels.hpp"

namespace jobmig::sim {
namespace {

std::uint64_t crc_of(kernels::Crc64Fn fn, const Bytes& data) {
  return ~fn(~0ULL, data.data(), data.size());
}

Bytes from_string(std::string_view s) {
  Bytes b(s.size());
  std::memcpy(b.data(), s.data(), s.size());
  return b;
}

TEST(Crc64Kat, CheckVector) {
  // The CRC-64/XZ check value: crc64("123456789").
  const Bytes nine = from_string("123456789");
  EXPECT_EQ(Crc64::of(nine), 0x995DC9BBDF1939FAULL);
  for (const auto& d : kernels::all_supported()) {
    EXPECT_EQ(crc_of(d.crc64, nine), 0x995DC9BBDF1939FAULL) << d.crc64_impl;
  }
}

TEST(Crc64Kat, EmptyInputIsZero) {
  EXPECT_EQ(Crc64::of({}), 0u);
  for (const auto& d : kernels::all_supported()) {
    EXPECT_EQ(~d.crc64(~0ULL, nullptr, 0), 0u) << d.crc64_impl;
  }
}

TEST(Crc64Kat, AllLengthsToSixtyFourMatchBitwiseReference) {
  Bytes buf(64);
  pattern_fill(buf, 0xfeedface, 0);
  for (std::size_t n = 0; n <= buf.size(); ++n) {
    const std::uint64_t ref = ~kernels::crc64_bitwise(~0ULL, buf.data(), n);
    for (const auto& d : kernels::all_supported()) {
      EXPECT_EQ(~d.crc64(~0ULL, buf.data(), n), ref) << d.crc64_impl << " n=" << n;
    }
  }
}

TEST(Crc64Fuzz, PathsAgreeOnArbitrarySplitPoints) {
  // Random lengths (biased to straddle the 128-byte PCLMUL threshold and
  // the 64-byte stride), random initial states, and a random split point:
  // crc(a+b) computed as two chunked updates must agree across every path.
  std::mt19937_64 rng(0x5eed5eed);
  const auto paths = kernels::all_supported();
  ASSERT_GE(paths.size(), 1u);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = static_cast<std::size_t>(rng() % 1500);
    const std::size_t off = static_cast<std::size_t>(rng() % 8);  // misalign the base
    Bytes raw(n + off);
    pattern_fill(raw, rng(), rng() % 1024);
    const std::byte* p = raw.data() + off;
    const std::uint64_t init = rng();
    const std::size_t split = n ? static_cast<std::size_t>(rng()) % n : 0;

    const std::uint64_t ref =
        kernels::crc64_table16(kernels::crc64_table16(init, p, split), p + split, n - split);
    for (const auto& d : paths) {
      EXPECT_EQ(d.crc64(d.crc64(init, p, split), p + split, n - split), ref)
          << d.crc64_impl << " n=" << n << " split=" << split << " off=" << off;
    }
  }
}

TEST(PatternFuzz, FillPathsAreBitIdentical) {
  std::mt19937_64 rng(0xabad1dea);
  const auto paths = kernels::all_supported();
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t nlanes = static_cast<std::size_t>(rng() % 200);
    const std::uint64_t seed = rng();
    const std::uint64_t first = rng() % (1u << 20);
    Bytes ref(nlanes * 8);
    kernels::pattern_lanes_scalar(ref.data(), seed, first, nlanes);
    for (const auto& d : paths) {
      Bytes got(nlanes * 8, std::byte{0x55});
      d.fill(got.data(), seed, first, nlanes);
      EXPECT_EQ(got, ref) << d.pattern_impl << " nlanes=" << nlanes;
      EXPECT_TRUE(d.check(got.data(), seed, first, nlanes)) << d.pattern_impl;
    }
  }
}

TEST(PatternFuzz, CheckDetectsSingleBitCorruption) {
  std::mt19937_64 rng(0xc0ffee);
  const auto paths = kernels::all_supported();
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t nlanes = 1 + static_cast<std::size_t>(rng() % 64);
    const std::uint64_t seed = rng();
    Bytes buf(nlanes * 8);
    kernels::pattern_lanes_scalar(buf.data(), seed, 0, nlanes);
    const std::size_t victim = static_cast<std::size_t>(rng()) % buf.size();
    buf[victim] ^= std::byte{1 << (rng() % 8)};
    for (const auto& d : paths) {
      EXPECT_FALSE(d.check(buf.data(), seed, 0, nlanes)) << d.pattern_impl;
    }
  }
}

TEST(PatternFuzz, HighLevelFillAndCheckUseActiveDispatch) {
  // End-to-end through sim::pattern_fill/check, exercising the unaligned
  // head/tail peeling around the lane kernels at every offset phase.
  for (std::uint64_t off = 0; off < 16; ++off) {
    Bytes buf(333);
    pattern_fill(buf, 99, off);
    EXPECT_TRUE(pattern_check(buf, 99, off)) << off;
    buf[200] ^= std::byte{0x80};
    EXPECT_FALSE(pattern_check(buf, 99, off)) << off;
  }
}

TEST(Select, ForceScalarPinsPortablePaths) {
  kernels::CpuFeatures all;
  all.pclmul = all.avx2 = all.avx512 = true;
  const kernels::Dispatch forced = kernels::select(all, /*force_scalar=*/true);
  EXPECT_STREQ(forced.crc64_impl, "table16");
  EXPECT_STREQ(forced.pattern_impl, "scalar");
  EXPECT_EQ(forced.crc64, &kernels::crc64_table16);
  EXPECT_EQ(forced.fill, &kernels::pattern_lanes_scalar);
  EXPECT_EQ(forced.check, &kernels::pattern_lanes_check_scalar);
}

TEST(Select, NoFeaturesFallsBackToScalar) {
  const kernels::Dispatch d = kernels::select({}, /*force_scalar=*/false);
  EXPECT_STREQ(d.crc64_impl, "table16");
  EXPECT_STREQ(d.pattern_impl, "scalar");
}

#if defined(__x86_64__) || defined(_M_X64)
TEST(Select, FeaturesUpgradeThePaths) {
  kernels::CpuFeatures f;
  f.pclmul = true;
  EXPECT_STREQ(kernels::select(f, false).crc64_impl, "pclmul");
  f.avx2 = true;
  EXPECT_STREQ(kernels::select(f, false).pattern_impl, "avx2");
  f.avx512 = true;
  EXPECT_STREQ(kernels::select(f, false).pattern_impl, "avx512");
}
#endif

TEST(Select, AllSupportedStartsWithScalar) {
  const auto paths = kernels::all_supported();
  ASSERT_GE(paths.size(), 1u);
  EXPECT_STREQ(paths.front().crc64_impl, "table16");
  EXPECT_STREQ(paths.front().pattern_impl, "scalar");
}

}  // namespace
}  // namespace jobmig::sim
