#include <gtest/gtest.h>

#include <numeric>

#include "jobmig/sim/resource.hpp"
#include "jobmig/sim/rng.hpp"
#include "jobmig/sim/sync.hpp"

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

/// Work conservation: however transfers arrive, a fair-share server at rate
/// R with no idle gaps finishes sum(bytes) in exactly sum(bytes)/R.
class FairShareConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairShareConservation, BusyServerFinishesAtExactAggregateTime) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  Engine engine;
  FairShareServer server(engine, 100e6);
  const int n = 3 + static_cast<int>(rng.below(12));
  std::uint64_t total_bytes = 0;
  double last_done = -1.0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t bytes = 1'000'000 + rng.below(30'000'000);
    total_bytes += bytes;
    engine.spawn([](FairShareServer& s, std::uint64_t b, double& out) -> Task {
      co_await s.transfer(b);
      out = std::max(out, Engine::current()->now().to_seconds());
    }(server, bytes, last_done));
  }
  engine.run();
  EXPECT_NEAR(last_done, static_cast<double>(total_bytes) / 100e6, 1e-4) << "seed " << seed;
  EXPECT_EQ(server.bytes_served(), total_bytes);
  EXPECT_EQ(server.active_streams(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareConservation, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

/// Random sleep/transfer interleavings must preserve per-transfer ordering
/// invariants: nobody finishes before bytes/rate (the contention-free bound)
/// and the aggregate never beats the line rate.
class FairShareBounds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FairShareBounds, NoTransferBeatsTheLineRate) {
  Xoshiro256 rng(GetParam());
  Engine engine;
  const double rate = 50e6;
  FairShareServer server(engine, rate);
  struct Result {
    double start = 0, end = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Result> results(10);
  for (auto& r : results) {
    const std::uint64_t delay_us = rng.below(400'000);
    r.bytes = 500'000 + rng.below(20'000'000);
    engine.spawn([](FairShareServer& s, std::uint64_t d, Result& out) -> Task {
      co_await sleep_for(Duration::us(static_cast<std::int64_t>(d)));
      out.start = Engine::current()->now().to_seconds();
      co_await s.transfer(out.bytes);
      out.end = Engine::current()->now().to_seconds();
    }(server, delay_us, r));
  }
  engine.run();
  for (const auto& r : results) {
    EXPECT_GE(r.end - r.start, static_cast<double>(r.bytes) / rate - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareBounds, ::testing::Values(11, 22, 33, 44));

/// Barrier generations: any number of parties, any arrival pattern — every
/// participant leaves in the same generation it entered.
class BarrierParties : public ::testing::TestWithParam<int> {};

TEST_P(BarrierParties, AllPartiesSeeEveryGeneration) {
  const int parties = GetParam();
  Engine engine;
  Barrier barrier(static_cast<std::size_t>(parties));
  constexpr int kRounds = 7;
  std::vector<int> rounds_done(static_cast<std::size_t>(parties), 0);
  Xoshiro256 rng(99);
  for (int p = 0; p < parties; ++p) {
    const std::uint64_t jitter = rng.below(5000);
    engine.spawn([](Barrier& b, int& done, std::uint64_t j) -> Task {
      for (int r = 0; r < kRounds; ++r) {
        co_await sleep_for(Duration::us(static_cast<std::int64_t>(j * (static_cast<std::uint64_t>(r) + 1))));
        co_await b.arrive_and_wait();
        ++done;
      }
    }(barrier, rounds_done[static_cast<std::size_t>(p)], jitter));
  }
  engine.run();
  for (int d : rounds_done) EXPECT_EQ(d, kRounds);
  EXPECT_EQ(barrier.generation(), static_cast<std::uint64_t>(kRounds));
}

INSTANTIATE_TEST_SUITE_P(PartyCounts, BarrierParties, ::testing::Values(1, 2, 3, 8, 17, 64));

/// Channel capacity sweep: producer/consumer with random burst patterns
/// never loses, duplicates or reorders items.
class ChannelCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelCapacity, FifoUnderRandomBursts) {
  Engine engine;
  Channel<int> channel(GetParam());
  constexpr int kItems = 500;
  std::vector<int> received;
  engine.spawn([](Channel<int>& ch) -> Task {
    Xoshiro256 rng(7);
    for (int i = 0; i < kItems; ++i) {
      if (rng.below(4) == 0) co_await sleep_for(Duration::us(static_cast<std::int64_t>(rng.below(100))));
      bool ok = co_await ch.send(i);
      JOBMIG_ASSERT(ok);
    }
    ch.close();
  }(channel));
  engine.spawn([](Channel<int>& ch, std::vector<int>& out) -> Task {
    Xoshiro256 rng(8);
    while (auto v = co_await ch.recv()) {
      out.push_back(*v);
      if (rng.below(5) == 0) co_await sleep_for(Duration::us(static_cast<std::int64_t>(rng.below(80))));
    }
  }(channel, received));
  engine.run();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Capacities, ChannelCapacity, ::testing::Values(1, 2, 7, 64, SIZE_MAX));

/// Determinism: identical seeds produce identical event counts and final
/// times across repeated runs — the property every experiment relies on.
TEST(Determinism, IdenticalRunsAreByteIdentical) {
  auto run_once = [] {
    Engine engine;
    FairShareServer server(engine, 123e6);
    Xoshiro256 rng(321);
    double checksum = 0;
    for (int i = 0; i < 50; ++i) {
      engine.spawn([](FairShareServer& s, std::uint64_t b, std::uint64_t d,
                      double& sum) -> Task {
        co_await sleep_for(Duration::us(static_cast<std::int64_t>(d)));
        co_await s.transfer(b);
        sum += Engine::current()->now().to_seconds();
      }(server, 1000 + rng.below(5'000'000), rng.below(100'000), checksum));
    }
    engine.run();
    return std::pair{engine.events_processed(), checksum};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace jobmig::sim
