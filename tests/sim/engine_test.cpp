#include "jobmig/sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "jobmig/sim/task.hpp"

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

TEST(Engine, StartsAtOrigin) {
  Engine e;
  EXPECT_EQ(e.now(), TimePoint::origin());
  EXPECT_TRUE(e.queue_empty());
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(Engine, RunsEmptyQueue) {
  Engine e;
  EXPECT_EQ(e.run(), TimePoint::origin());
  EXPECT_EQ(e.events_processed(), 0u);
}

TEST(Engine, SleepAdvancesVirtualTime) {
  Engine e;
  TimePoint woke{};
  e.spawn([](Engine& eng, TimePoint& out) -> Task {
    co_await sleep_for(5_ms);
    out = eng.now();
  }(e, woke));
  e.run();
  EXPECT_EQ(woke, TimePoint::origin() + 5_ms);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(Engine, NestedTasksComposeDurations) {
  Engine e;
  auto inner = []() -> Task { co_await sleep_for(2_ms); };
  auto outer = [&]() -> Task {
    co_await sleep_for(1_ms);
    co_await inner();
    co_await inner();
  };
  e.spawn(outer());
  EXPECT_EQ(e.run(), TimePoint::origin() + 5_ms);
}

TEST(Engine, ValueTaskReturnsValue) {
  Engine e;
  int result = 0;
  auto child = []() -> ValueTask<int> {
    co_await sleep_for(1_ms);
    co_return 42;
  };
  e.spawn([](auto mk, int& out) -> Task { out = co_await mk(); }(child, result));
  e.run();
  EXPECT_EQ(result, 42);
}

TEST(Engine, EqualTimestampsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.call_at(TimePoint::origin() + 1_ms, [&order, i] { order.push_back(i); });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.call_at(TimePoint::origin() + 10_ms, [&] { ++fired; });
  e.call_at(TimePoint::origin() + 20_ms, [&] { ++fired; });
  e.run_until(TimePoint::origin() + 15_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), TimePoint::origin() + 15_ms);
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, ExceptionInRootTaskPropagatesFromRun) {
  Engine e;
  e.spawn([]() -> Task {
    co_await sleep_for(1_ms);
    throw std::runtime_error("boom");
  }());
  EXPECT_THROW(e.run(), std::runtime_error);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(Engine, ExceptionFromNestedTaskPropagates) {
  Engine e;
  auto inner = []() -> Task {
    co_await sleep_for(1_ms);
    throw std::logic_error("nested");
  };
  e.spawn([&]() -> Task { co_await inner(); }());
  EXPECT_THROW(e.run(), std::logic_error);
}

TEST(Engine, SchedulingIntoThePastIsAContractViolation) {
  Engine e;
  e.call_at(TimePoint::origin() + 5_ms, [&] {
    EXPECT_THROW(e.call_at(TimePoint::origin() + 1_ms, [] {}), ContractViolation);
  });
  e.run();
}

TEST(Engine, ManyConcurrentTasksAllComplete) {
  Engine e;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    e.spawn([](int delay_us, int& d) -> Task {
      co_await sleep_for(Duration::us(delay_us));
      ++d;
    }(i % 97, done));
  }
  e.run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(Engine, YieldNowRunsAfterQueuedEventsAtSameTime) {
  Engine e;
  std::vector<int> order;
  e.spawn([](std::vector<int>& out) -> Task {
    out.push_back(1);
    co_await yield_now();
    out.push_back(3);
  }(order));
  e.call_at(TimePoint::origin(), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, StepProcessesExactlyOneEvent) {
  Engine e;
  int fired = 0;
  e.call_at(TimePoint::origin() + 1_ms, [&] { ++fired; });
  e.call_at(TimePoint::origin() + 2_ms, [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, CurrentIsSetDuringDispatchOnly) {
  Engine e;
  EXPECT_EQ(Engine::current(), nullptr);
  Engine* seen = nullptr;
  e.call_at(TimePoint::origin(), [&] { seen = Engine::current(); });
  e.run();
  EXPECT_EQ(seen, &e);
  EXPECT_EQ(Engine::current(), nullptr);
}

TEST(Engine, SpawnFromWithinTask) {
  Engine e;
  int done = 0;
  e.spawn([](Engine& eng, int& d) -> Task {
    co_await sleep_for(1_ms);
    eng.spawn([](int& dd) -> Task {
      co_await sleep_for(1_ms);
      ++dd;
    }(d));
    ++d;
  }(e, done));
  e.run();
  EXPECT_EQ(done, 2);
}

TEST(Duration, ArithmeticAndConversions) {
  EXPECT_EQ((2_ms + 500_us).count_ns(), 2'500'000);
  EXPECT_EQ((1_s - 1_ms).count_ns(), 999'000'000);
  EXPECT_DOUBLE_EQ(Duration::seconds(1.5).to_seconds(), 1.5);
  EXPECT_EQ(Duration::seconds(0.5), 500_ms);
  EXPECT_LT(1_us, 1_ms);
  EXPECT_EQ((3 * 10_ms), 30_ms);
  EXPECT_EQ((30_ms / 3), 10_ms);
}

TEST(TimePoint, DifferenceIsDuration) {
  TimePoint a = TimePoint::origin() + 10_ms;
  TimePoint b = TimePoint::origin() + 4_ms;
  EXPECT_EQ(a - b, 6_ms);
  EXPECT_EQ(b + 6_ms, a);
}

}  // namespace
}  // namespace jobmig::sim
