#include "jobmig/sim/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

TEST(Event, WaitersBlockUntilSet) {
  Engine e;
  Event ev;
  std::vector<double> wake_times;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Engine& eng, Event& event, std::vector<double>& out) -> Task {
      co_await event.wait();
      out.push_back(eng.now().to_seconds());
    }(e, ev, wake_times));
  }
  e.spawn([](Event& event) -> Task {
    co_await sleep_for(10_ms);
    event.set();
  }(ev));
  e.run();
  ASSERT_EQ(wake_times.size(), 3u);
  for (double t : wake_times) EXPECT_DOUBLE_EQ(t, 0.010);
}

TEST(Event, WaitOnSetEventReturnsImmediately) {
  Engine e;
  Event ev;
  bool done = false;
  e.spawn([](Event& event, bool& d) -> Task {
    event.set();
    co_await event.wait();
    d = true;
  }(ev, done));
  e.run();
  EXPECT_TRUE(done);
}

TEST(Event, ResetMakesSubsequentWaitsBlock) {
  Engine e;
  Event ev;
  int phase = 0;
  e.spawn([](Event& event, int& p) -> Task {
    event.set();
    co_await event.wait();
    p = 1;
    event.reset();
    co_await event.wait();
    p = 2;
  }(ev, phase));
  e.spawn([](Event& event) -> Task {
    co_await sleep_for(5_ms);
    event.set();
  }(ev));
  e.run();
  EXPECT_EQ(phase, 2);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(2);
  int concurrent = 0;
  int max_concurrent = 0;
  for (int i = 0; i < 6; ++i) {
    e.spawn([](Semaphore& s, int& c, int& mx) -> Task {
      co_await s.acquire();
      ++c;
      mx = std::max(mx, c);
      co_await sleep_for(1_ms);
      --c;
      s.release();
    }(sem, concurrent, max_concurrent));
  }
  e.run();
  EXPECT_EQ(max_concurrent, 2);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, FifoWakeOrder) {
  Engine e;
  Semaphore sem(0);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    e.spawn([](Semaphore& s, std::vector<int>& out, int id) -> Task {
      co_await s.acquire();
      out.push_back(id);
    }(sem, order, i));
  }
  e.spawn([](Semaphore& s) -> Task {
    co_await sleep_for(1_ms);
    s.release(4);
  }(sem));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mutex, MutualExclusionAndRaiiUnlock) {
  Engine e;
  Mutex m;
  std::string trace;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Mutex& mtx, std::string& t, char tag) -> Task {
      auto lock = co_await mtx.lock();
      t.push_back(tag);
      co_await sleep_for(1_ms);
      t.push_back(tag);
      // lock released by RAII at scope exit
    }(m, trace, static_cast<char>('a' + i)));
  }
  e.run();
  EXPECT_EQ(trace, "aabbcc");
  EXPECT_FALSE(m.is_locked());
}

TEST(Barrier, ReleasesAllPartiesTogether) {
  Engine e;
  Barrier b(4);
  std::vector<double> pass_times;
  for (int i = 0; i < 4; ++i) {
    e.spawn([](Engine& eng, Barrier& bar, std::vector<double>& out, int id) -> Task {
      co_await sleep_for(Duration::ms(id * 3));
      co_await bar.arrive_and_wait();
      out.push_back(eng.now().to_seconds());
    }(e, b, pass_times, i));
  }
  e.run();
  ASSERT_EQ(pass_times.size(), 4u);
  for (double t : pass_times) EXPECT_DOUBLE_EQ(t, 0.009);  // last arrival at 9 ms
  EXPECT_EQ(b.generation(), 1u);
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine e;
  Barrier b(2);
  int rounds_done = 0;
  for (int i = 0; i < 2; ++i) {
    e.spawn([](Barrier& bar, int& rounds) -> Task {
      for (int r = 0; r < 3; ++r) {
        co_await sleep_for(1_ms);
        co_await bar.arrive_and_wait();
      }
      ++rounds;
    }(b, rounds_done));
  }
  e.run();
  EXPECT_EQ(rounds_done, 2);
  EXPECT_EQ(b.generation(), 3u);
}

TEST(Channel, TransfersValuesInOrder) {
  Engine e;
  Channel<int> ch(4);
  std::vector<int> received;
  e.spawn([](Channel<int>& c) -> Task {
    for (int i = 0; i < 10; ++i) {
      bool ok = co_await c.send(i);
      JOBMIG_ASSERT(ok);
    }
    c.close();
  }(ch));
  e.spawn([](Channel<int>& c, std::vector<int>& out) -> Task {
    while (auto v = co_await c.recv()) out.push_back(*v);
  }(ch, received));
  e.run();
  ASSERT_EQ(received.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST(Channel, BoundedSendBlocksUntilSpace) {
  Engine e;
  Channel<int> ch(1);
  double second_send_done = -1.0;
  e.spawn([](Engine& eng, Channel<int>& c, double& t) -> Task {
    (void)co_await c.send(1);
    (void)co_await c.send(2);  // blocks until receiver drains
    t = eng.now().to_seconds();
  }(e, ch, second_send_done));
  e.spawn([](Channel<int>& c) -> Task {
    co_await sleep_for(7_ms);
    (void)co_await c.recv();
    (void)co_await c.recv();
  }(ch));
  e.run();
  EXPECT_DOUBLE_EQ(second_send_done, 0.007);
}

TEST(Channel, RecvOnClosedEmptyChannelReturnsNullopt) {
  Engine e;
  Channel<int> ch;
  bool got_nullopt = false;
  e.spawn([](Channel<int>& c, bool& out) -> Task {
    c.close();
    auto v = co_await c.recv();
    out = !v.has_value();
  }(ch, got_nullopt));
  e.run();
  EXPECT_TRUE(got_nullopt);
}

TEST(Channel, CloseWakesBlockedReceiver) {
  Engine e;
  Channel<int> ch;
  bool receiver_finished = false;
  e.spawn([](Channel<int>& c, bool& out) -> Task {
    auto v = co_await c.recv();
    out = !v.has_value();
  }(ch, receiver_finished));
  e.spawn([](Channel<int>& c) -> Task {
    co_await sleep_for(2_ms);
    c.close();
  }(ch));
  e.run();
  EXPECT_TRUE(receiver_finished);
}

TEST(TaskGroup, WaitJoinsAllMembers) {
  Engine e;
  TaskGroup group(e);
  int done = 0;
  double join_time = -1.0;
  e.spawn([](Engine& eng, TaskGroup& g, int& d, double& jt) -> Task {
    for (int i = 1; i <= 3; ++i) {
      g.spawn([](int ms, int& dd) -> Task {
        co_await sleep_for(Duration::ms(ms));
        ++dd;
      }(i * 10, d));
    }
    co_await g.wait();
    jt = eng.now().to_seconds();
  }(e, group, done, join_time));
  e.run();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(join_time, 0.030);
}

TEST(TaskGroup, FirstExceptionRethrownFromWait) {
  Engine e;
  TaskGroup group(e);
  e.spawn([](TaskGroup& g) -> Task {
    g.spawn([]() -> Task {
      co_await sleep_for(1_ms);
      throw std::runtime_error("member failed");
    }());
    g.spawn([]() -> Task { co_await sleep_for(5_ms); }());
    co_await g.wait();
  }(group));
  EXPECT_THROW(e.run(), std::runtime_error);
}

}  // namespace
}  // namespace jobmig::sim
