// Parallel execution mode (DESIGN.md §9): windows, domains, and the
// bit-exact-vs-sequential determinism contract at 1, 2, and 8 workers.
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/task.hpp"

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

constexpr Duration kHop = 600_ns;  // the "fabric" latency = lookahead bound

/// Fingerprint of everything the determinism contract pins down.
struct RunResult {
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  std::int64_t final_ns = 0;
  std::vector<std::uint64_t> state;  // workload-visible side effects

  bool operator==(const RunResult&) const = default;
};

/// Synthetic multi-domain workload: `domains` timer chains, each advancing
/// by an irregular per-domain stride, sending a cross-domain "message" to
/// the next domain every 4th hop at exactly the lookahead bound. Messages
/// increment the receiver's counter — received values depend on the global
/// interleaving being reconstructed correctly.
struct MeshWorkload {
  explicit MeshWorkload(std::uint32_t domains) : counters(domains, 0), sent(domains, 0) {}

  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> sent;

  void start(Engine& e, std::uint32_t steps) {
    const auto n = static_cast<std::uint32_t>(counters.size());
    for (std::uint32_t d = 0; d < n; ++d) {
      DomainScope scope(d + 1);  // domain 0 is the serial domain
      e.call_in(Duration::ns(10 + d), [this, &e, d, steps] { tick(e, d, steps); });
    }
  }

  void tick(Engine& e, std::uint32_t d, std::uint32_t remaining) {
    const auto n = static_cast<std::uint32_t>(counters.size());
    counters[d] += d + 1;
    if (remaining % 4 == 0) {
      const std::uint32_t to = (d + 1) % n;
      ++sent[d];
      DomainScope scope(to + 1);
      e.call_at(e.now() + kHop, [this, to] { counters[to] ^= counters[to] << 3 | 1; });
    }
    if (remaining > 0) {
      DomainScope scope(d + 1);
      e.call_at(e.now() + Duration::ns(40 + 13 * (d % 5)),
                [this, &e, d, remaining] { tick(e, d, remaining - 1); });
    }
  }

  RunResult run(Engine& e, std::uint32_t steps) {
    start(e, steps);
    const TimePoint end = e.run();
    return RunResult{e.sequence_hash(), e.events_processed(), end.count_ns(), counters};
  }
};

RunResult run_mesh(std::size_t workers, std::uint32_t domains = 6, std::uint32_t steps = 200) {
  Engine e;
  e.set_lookahead(kHop);
  if (workers > 0) e.enable_parallel(workers);
  MeshWorkload w(domains);
  return w.run(e, steps);
}

TEST(EngineParallel, MeshBitIdenticalAcrossWorkerCounts) {
  const RunResult seq = run_mesh(0);
  EXPECT_GT(seq.events, 1000u);
  for (const std::size_t workers : {1u, 2u, 8u}) {
    const RunResult par = run_mesh(workers);
    EXPECT_EQ(par, seq) << "workers=" << workers;
  }
}

TEST(EngineParallel, UntaggedWorkloadRunsSequentialPath) {
  auto run = [](std::size_t workers) {
    Engine e;
    if (workers > 0) e.enable_parallel(workers);
    std::uint64_t acc = 0;
    for (int i = 0; i < 100; ++i) {
      e.call_in(Duration::ns(7 * i), [&acc, i] { acc = acc * 31 + static_cast<std::uint64_t>(i); });
    }
    e.run();
    EXPECT_EQ(e.parallel_windows(), 0u);  // never left the sequential path
    return RunResult{e.sequence_hash(), e.events_processed(), e.now().count_ns(), {acc}};
  };
  EXPECT_EQ(run(2), run(0));
}

TEST(EngineParallel, SerialDomainPinsWindowAndStaysBitIdentical) {
  // Half the traffic is untagged (serial domain), interleaved with tagged
  // domains at the same timestamps: every window falls back to the literal
  // sequential loop, and the result must still be bit-identical.
  auto run = [](std::size_t workers) {
    Engine e;
    e.set_lookahead(kHop);
    if (workers > 0) e.enable_parallel(workers);
    std::vector<std::uint64_t> log;
    for (int i = 0; i < 60; ++i) {
      e.call_in(Duration::ns(25 * i), [&log, i] { log.push_back(1000u + static_cast<std::uint64_t>(i)); });
      DomainScope scope(1 + (i % 3));
      e.call_in(Duration::ns(25 * i), [&log, i] { log.push_back(2000u + static_cast<std::uint64_t>(i)); });
    }
    e.run();
    if (workers > 0) EXPECT_GT(e.parallel_serial_windows(), 0u);
    return RunResult{e.sequence_hash(), e.events_processed(), e.now().count_ns(), log};
  };
  const RunResult seq = run(0);
  EXPECT_EQ(run(1), seq);
  EXPECT_EQ(run(8), seq);
}

TEST(EngineParallel, CoroutinesRunInsideDomains) {
  auto run = [](std::size_t workers) {
    Engine e;
    e.set_lookahead(kHop);
    if (workers > 0) e.enable_parallel(workers);
    std::vector<std::uint64_t> totals(4, 0);
    for (std::uint32_t d = 0; d < 4; ++d) {
      DomainScope scope(d + 1);
      e.spawn([](Engine& eng, std::uint64_t& total, std::uint32_t dom) -> Task {
        for (int i = 0; i < 50; ++i) {
          co_await sleep_for(Duration::ns(30 + dom));
          total += eng.now().count_ns() % 97;
        }
      }(e, totals[d], d));
    }
    e.run();
    EXPECT_EQ(e.live_tasks(), 0u);
    return RunResult{e.sequence_hash(), e.events_processed(), e.now().count_ns(), totals};
  };
  const RunResult seq = run(0);
  EXPECT_EQ(run(1), seq);
  EXPECT_EQ(run(2), seq);
  EXPECT_EQ(run(8), seq);
}

TEST(EngineParallel, WorkerCreatedTimersCancelAcrossWindows) {
  auto run = [](std::size_t workers) {
    Engine e;
    e.set_lookahead(kHop);
    if (workers > 0) e.enable_parallel(workers);
    std::uint64_t fired = 0, doomed = 0;
    {
      DomainScope scope(1);
      e.call_in(100_ns, [&] {
        // Worker-created timer several windows out, cancelled by a later
        // event of the same domain before it can fire.
        const auto h = Engine::current()->call_in(50 * kHop, [&doomed] { ++doomed; });
        Engine::current()->call_in(10 * kHop, [&e, h, &fired] {
          e.cancel(h);
          ++fired;
        });
      });
    }
    e.run();
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(doomed, 0u);
    return RunResult{e.sequence_hash(), e.events_processed(), e.now().count_ns(), {}};
  };
  // Cancelled timers still fire as no-ops, so the hash stays bit-identical.
  const RunResult seq = run(0);
  EXPECT_EQ(run(1), seq);
  EXPECT_EQ(run(2), seq);
}

TEST(EngineParallel, LookaheadViolationIsDetected) {
  Engine e;
  e.set_lookahead(kHop);
  e.enable_parallel(2);
  {
    DomainScope scope(1);
    e.call_in(10_ns, [&e] {
      DomainScope target(2);  // cross-domain, inside the current window
      e.call_in(1_ns, [] {});
    });
  }
  EXPECT_THROW(e.run(), ContractViolation);
}

TEST(EngineParallel, CrossDomainCancelFromWorkerIsDetected) {
  Engine e;
  e.set_lookahead(kHop);
  e.enable_parallel(2);
  Engine::TimerHandle victim;
  {
    DomainScope scope(2);
    victim = e.call_in(100 * kHop, [] {});
  }
  {
    DomainScope scope(1);
    e.call_in(10_ns, [&e, &victim] { e.cancel(victim); });
  }
  EXPECT_THROW(e.run(), ContractViolation);
}

TEST(EngineParallel, StatsAccountForWindows) {
  Engine e;
  e.set_lookahead(kHop);
  e.enable_parallel(2);
  MeshWorkload w(4);
  w.run(e, 100);
  EXPECT_GT(e.parallel_windows(), 0u);
  EXPECT_GE(e.parallel_batches(), e.parallel_windows());
  EXPECT_EQ(e.parallel_events(), e.events_processed());  // fully tagged workload
  std::uint64_t worker_total = 0;
  for (const std::uint64_t c : e.worker_event_counts()) worker_total += c;
  EXPECT_EQ(worker_total, e.parallel_events());
}

TEST(EngineParallel, RunUntilHonorsDeadlineAndResumes) {
  auto run = [](std::size_t workers) {
    Engine e;
    e.set_lookahead(kHop);
    if (workers > 0) e.enable_parallel(workers);
    MeshWorkload w(3);
    w.start(e, 150);
    e.run_until(TimePoint::origin() + 2_us);
    const std::int64_t mid = e.now().count_ns();
    EXPECT_EQ(mid, (TimePoint::origin() + 2_us).count_ns());
    const TimePoint end = e.run();
    return RunResult{e.sequence_hash(), e.events_processed(), end.count_ns(), w.counters};
  };
  const RunResult seq = run(0);
  EXPECT_EQ(run(1), seq);
  EXPECT_EQ(run(8), seq);
}

TEST(EngineParallel, EnableDisableRoundTrip) {
  Engine e;
  e.set_lookahead(kHop);
  e.enable_parallel(2);
  EXPECT_TRUE(e.parallel_enabled());
  EXPECT_EQ(e.parallel_workers(), 2u);
  MeshWorkload w(3);
  w.start(e, 20);
  e.run();
  e.enable_parallel(0);
  EXPECT_FALSE(e.parallel_enabled());
  // Subsequent scheduling runs sequentially on the same engine.
  std::uint64_t late = 0;
  {
    DomainScope scope(1);
    e.call_in(1_us, [&late] { ++late; });
  }
  e.run();
  EXPECT_EQ(late, 1u);
}

}  // namespace
}  // namespace jobmig::sim
