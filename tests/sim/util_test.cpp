#include <gtest/gtest.h>

#include <set>

#include "jobmig/sim/assert.hpp"
#include "jobmig/sim/bytes.hpp"
#include "jobmig/sim/log.hpp"
#include "jobmig/sim/rng.hpp"
#include "jobmig/sim/stats.hpp"

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

TEST(Crc64, KnownVectorAndIncrementalEquivalence) {
  const char* text = "123456789";
  Bytes data;
  for (const char* p = text; *p; ++p) data.push_back(static_cast<std::byte>(*p));
  // CRC-64/XZ("123456789") = 0x995DC9BBDF1939FA
  EXPECT_EQ(Crc64::of(data), 0x995DC9BBDF1939FAULL);

  Crc64 inc;
  inc.update(ByteSpan(data.data(), 4)).update(ByteSpan(data.data() + 4, 5));
  EXPECT_EQ(inc.value(), 0x995DC9BBDF1939FAULL);
}

TEST(Crc64, DetectsSingleBitFlip) {
  Bytes data(1024);
  pattern_fill(data, 7, 0);
  const std::uint64_t good = Crc64::of(data);
  data[512] ^= std::byte{0x01};
  EXPECT_NE(Crc64::of(data), good);
}

TEST(PatternFill, IsDeterministicAndOffsetAddressable) {
  Bytes whole(256);
  pattern_fill(whole, 42, 0);
  // Regenerate the middle section independently.
  Bytes part(64);
  pattern_fill(part, 42, 100);
  for (std::size_t i = 0; i < part.size(); ++i) EXPECT_EQ(part[i], whole[100 + i]);
}

TEST(PatternFill, DifferentSeedsDiffer) {
  Bytes a(128), b(128);
  pattern_fill(a, 1, 0);
  pattern_fill(b, 2, 0);
  EXPECT_NE(a, b);
}

TEST(ScalarCodec, RoundTrips) {
  Bytes buf;
  put_u64(buf, 0x0123456789ABCDEFULL);
  put_u32(buf, 0xDEADBEEFu);
  EXPECT_EQ(get_u64(buf, 0), 0x0123456789ABCDEFULL);
  EXPECT_EQ(get_u32(buf, 8), 0xDEADBEEFu);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  EXPECT_EQ(a.next(), b.next());
  Xoshiro256 a2(123);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const std::uint64_t k = rng.below(10);
    EXPECT_LT(k, 10u);
  }
}

TEST(Xoshiro, ForkGivesIndependentStream) {
  Xoshiro256 parent(5);
  Xoshiro256 child = parent.fork();
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(parent.next());
    values.insert(child.next());
  }
  EXPECT_EQ(values.size(), 200u);  // no collisions expected in 200 draws
}

TEST(Summary, WelfordMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
  EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(PhaseTimeline, AccumulatesPerPhase) {
  PhaseTimeline tl;
  tl.record("stall", TimePoint::origin(), TimePoint::origin() + 10_ms);
  tl.record("migrate", TimePoint::origin() + 10_ms, TimePoint::origin() + 510_ms);
  tl.record("stall", TimePoint::origin() + 600_ms, TimePoint::origin() + 605_ms);
  EXPECT_EQ(tl.total("stall"), 15_ms);
  EXPECT_EQ(tl.total("migrate"), 500_ms);
  EXPECT_EQ(tl.total("absent"), 0_ms);
  EXPECT_EQ(tl.phases(), (std::vector<std::string>{"stall", "migrate"}));
}

TEST(PhaseTimeline, BeginEndPairing) {
  PhaseTimeline tl;
  tl.begin("x", TimePoint::origin());
  EXPECT_THROW(tl.begin("x", TimePoint::origin()), ContractViolation);
  tl.end("x", TimePoint::origin() + 1_ms);
  EXPECT_THROW(tl.end("x", TimePoint::origin() + 2_ms), ContractViolation);
  EXPECT_EQ(tl.total("x"), 1_ms);
}

TEST(Counters, AccumulateAndQuery) {
  Counters c;
  c.add("bytes", 100);
  c.add("bytes", 23);
  c.add("ops");
  EXPECT_EQ(c.get("bytes"), 123u);
  EXPECT_EQ(c.get("ops"), 1u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(FormatStr, SubstitutesBraces) {
  EXPECT_EQ(format_str("a {} b {}", 1, "x"), "a 1 b x");
  EXPECT_EQ(format_str("no args"), "no args");
  EXPECT_EQ(format_str("extra {} {}", 1), "extra 1 {}");
  EXPECT_EQ(format_str("{}", 3.5), "3.5");
}

TEST(Logger, SinkCapturesRecordsAboveLevel) {
  Logger& lg = Logger::global();
  std::vector<Logger::Record> records;
  lg.set_sink([&](const Logger::Record& r) { records.push_back(r); });
  lg.set_level(LogLevel::kInfo);
  log_debug("comp", "dropped");
  log_info("comp", "kept {}", 1);
  log_error("comp2", "also kept");
  lg.set_level(LogLevel::kWarn);
  lg.reset_sink();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "kept 1");
  EXPECT_EQ(records[0].component, "comp");
  EXPECT_EQ(records[1].level, LogLevel::kError);
}

TEST(ByteLiterals, Sizes) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

}  // namespace
}  // namespace jobmig::sim
