#include <gtest/gtest.h>

#include "jobmig/ib/verbs.hpp"
#include "jobmig/mpr/job.hpp"
#include "jobmig/proc/blcr.hpp"
#include "jobmig/sim/calibration.hpp"
#include "jobmig/storage/filesystem.hpp"

/// Model-scaling properties: every calibrated component must respond to its
/// parameters the way the physical resource would, so recalibration (or a
/// different testbed) only means editing calibration.hpp.
namespace jobmig {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

double timed_rdma_read(double link_bw, std::uint64_t bytes) {
  Engine engine;
  sim::IbParams params;
  params.link_bandwidth_Bps = link_bw;
  ib::Fabric fabric(engine, params);
  ib::Hca& a = fabric.add_node("a");
  ib::Hca& b = fabric.add_node("b");
  double elapsed = -1.0;
  engine.spawn([](ib::Hca& ha, ib::Hca& hb, std::uint64_t n, double& out) -> Task {
    ib::CompletionQueue scq, rcq, scq2, rcq2;
    auto qa = ha.create_qp(scq, rcq);
    auto qb = hb.create_qp(scq2, rcq2);
    qa->connect(ib::IbAddr{hb.node(), qb->qpn()});
    qb->connect(ib::IbAddr{ha.node(), qa->qpn()});
    Bytes remote(n), local(n);
    ib::MemoryRegion* mr = co_await hb.reg_mr(remote.data(), remote.size());
    const double start = Engine::current()->now().to_seconds();
    qa->post_rdma_read(ib::RdmaWr{1, local.data(), 0, mr->rkey(), n});
    auto wc = co_await scq.wait();
    JOBMIG_ASSERT(wc.ok());
    out = Engine::current()->now().to_seconds() - start;
  }(a, b, bytes, elapsed));
  engine.run();
  return elapsed;
}

TEST(CalibrationScaling, LinkBandwidthScalesTransferTimeLinearly) {
  const double t_ddr = timed_rdma_read(1.5e9, 60 << 20);
  const double t_sdr = timed_rdma_read(0.75e9, 60 << 20);  // half the rate
  EXPECT_NEAR(t_sdr / t_ddr, 2.0, 0.05);
  const double t_half_data = timed_rdma_read(1.5e9, 30 << 20);
  EXPECT_NEAR(t_ddr / t_half_data, 2.0, 0.05);
}

double timed_checkpoint(double dump_Bps, std::uint64_t image_bytes) {
  Engine engine;
  sim::BlcrParams params;
  params.dump_Bps_per_node = dump_Bps;
  params.per_process_checkpoint_overhead = sim::Duration::zero();
  proc::Blcr blcr(engine, params);
  double elapsed = -1.0;
  engine.spawn([](proc::Blcr& b, std::uint64_t n, double& out) -> Task {
    proc::SimProcess p(proc::ProcessIdentity{1, 0, "x"}, n, 1);
    proc::MemorySink sink;
    const double start = Engine::current()->now().to_seconds();
    co_await b.checkpoint(p, sink);
    out = Engine::current()->now().to_seconds() - start;
  }(blcr, image_bytes, elapsed));
  engine.run();
  return elapsed;
}

TEST(CalibrationScaling, BlcrDumpRateScalesCheckpointTime) {
  const double fast = timed_checkpoint(1e9, 50 << 20);
  const double slow = timed_checkpoint(0.25e9, 50 << 20);
  EXPECT_NEAR(slow / fast, 4.0, 0.1);
}

double timed_fs_write(double write_Bps, double alpha, int writers) {
  Engine engine;
  sim::DiskParams params;
  params.write_Bps = write_Bps;
  params.seek_alpha = alpha;
  storage::LocalFs fs(engine, params);
  double done = -1.0;
  for (int w = 0; w < writers; ++w) {
    engine.spawn([](storage::LocalFs& f, int id, double& out) -> Task {
      auto file = co_await f.create("/w" + std::to_string(id));
      co_await file->pwrite(0, Bytes(8 << 20));
      out = std::max(out, Engine::current()->now().to_seconds());
    }(fs, w, done));
  }
  engine.run();
  return done;
}

TEST(CalibrationScaling, SeekAlphaControlsConcurrencyPenalty) {
  const double ideal = timed_fs_write(50e6, 0.0, 8);
  const double thrashy = timed_fs_write(50e6, 0.2, 8);
  // eff(8) = 1/(1+0.2*7) = 0.42 -> ~2.4x slower than perfect sharing.
  EXPECT_NEAR(thrashy / ideal, 2.4, 0.15);
}

TEST(CalibrationScaling, PvfsServerCountScalesSingleStreamBandwidth) {
  auto run = [](std::uint32_t servers) {
    Engine engine;
    sim::PvfsParams params;
    params.data_servers = servers;
    params.seek_alpha = 0.0;
    storage::ParallelFs fs(engine, params);
    double done = -1.0;
    engine.spawn([](storage::ParallelFs& f, double& out) -> Task {
      auto file = co_await f.create("/x");
      co_await file->pwrite(0, Bytes(32 << 20));
      out = Engine::current()->now().to_seconds();
    }(fs, done));
    engine.run();
    return done;
  };
  const double four = run(4);
  const double two = run(2);
  EXPECT_NEAR(two / four, 2.0, 0.1);
}

TEST(CalibrationScaling, EagerThresholdMovesTheProtocolBoundary) {
  // End-to-end: a 100 KB message takes the eager path (one wire message,
  // payload inline) under a 1 MB threshold, and the rendezvous path (RTS +
  // RDMA-read data + FIN: strictly more wire bytes) under a 1 KB threshold.
  auto wire_bytes = [](std::uint32_t threshold) {
    Engine engine;
    sim::Calibration cal;
    cal.mpi.eager_threshold = threshold;
    ib::Fabric fabric(engine, cal.ib);
    net::Network net(engine, cal.eth);
    storage::LocalFs disk0(engine, cal.disk), disk1(engine, cal.disk);
    proc::Blcr blcr0(engine, cal.blcr), blcr1(engine, cal.blcr);
    mpr::NodeEnv e0{&engine, &fabric.add_node("a"), net.add_host("a").id(), &disk0, &blcr0,
                    &cal, "a"};
    mpr::NodeEnv e1{&engine, &fabric.add_node("b"), net.add_host("b").id(), &disk1, &blcr1,
                    &cal, "b"};
    mpr::Job job(engine, cal);
    job.add_proc(0, e0, 4096, 1);
    job.add_proc(1, e1, 4096, 2);
    engine.spawn([](mpr::Job& j, mpr::NodeEnv& ea) -> Task {
      sim::TaskGroup g(*ea.engine);
      g.spawn(j.proc(0).send(1, 1, Bytes(100 << 10)));
      (void)co_await j.proc(1).recv(0, 1);
      co_await g.wait();
    }(job, e0));
    engine.run();
    return fabric.total_bytes();
  };
  const std::uint64_t eager = wire_bytes(1u << 20);
  const std::uint64_t rendezvous = wire_bytes(1u << 10);
  EXPECT_EQ(eager, (100u << 10) + mpr::MsgHeader::kWireSize);
  // RTS header + pulled payload + FIN header.
  EXPECT_EQ(rendezvous, (100u << 10) + 2 * mpr::MsgHeader::kWireSize);
}

}  // namespace
}  // namespace jobmig
