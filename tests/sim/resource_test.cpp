#include "jobmig/sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jobmig::sim {
namespace {

using namespace jobmig::sim::literals;

TEST(TransferTime, RoundsUpToWholeNanoseconds) {
  EXPECT_EQ(transfer_time(1000, 1e9), 1000_ns);
  EXPECT_EQ(transfer_time(1, 1e9), 1_ns);
  EXPECT_EQ(transfer_time(1, 3e9), 1_ns);  // 0.33 ns -> 1 ns
  EXPECT_EQ(transfer_time(0, 1e9), 0_ns);
}

TEST(FairShareServer, SingleTransferTakesBytesOverRate) {
  Engine e;
  FairShareServer server(e, 100e6);  // 100 MB/s
  double finished = -1.0;
  e.spawn([](Engine& eng, FairShareServer& s, double& t) -> Task {
    co_await s.transfer(50'000'000);  // 50 MB -> 0.5 s
    t = eng.now().to_seconds();
  }(e, server, finished));
  e.run();
  EXPECT_NEAR(finished, 0.5, 1e-6);
  EXPECT_EQ(server.bytes_served(), 50'000'000u);
  EXPECT_EQ(server.active_streams(), 0u);
}

TEST(FairShareServer, TwoEqualTransfersShareBandwidth) {
  Engine e;
  FairShareServer server(e, 100e6);
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    e.spawn([](Engine& eng, FairShareServer& s, std::vector<double>& out) -> Task {
      co_await s.transfer(50'000'000);
      out.push_back(eng.now().to_seconds());
    }(e, server, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  // Both share 100 MB/s: each sees 50 MB/s, finishing at 1.0 s.
  EXPECT_NEAR(done[0], 1.0, 1e-6);
  EXPECT_NEAR(done[1], 1.0, 1e-6);
}

TEST(FairShareServer, LateJoinerSlowsDownEarlierTransfer) {
  Engine e;
  FairShareServer server(e, 100e6);
  double first_done = -1.0;
  double second_done = -1.0;
  e.spawn([](Engine& eng, FairShareServer& s, double& t) -> Task {
    co_await s.transfer(100'000'000);
    t = eng.now().to_seconds();
  }(e, server, first_done));
  e.spawn([](Engine& eng, FairShareServer& s, double& t) -> Task {
    co_await sleep_for(500_ms);
    co_await s.transfer(25'000'000);
    t = eng.now().to_seconds();
  }(e, server, second_done));
  e.run();
  // First: 50 MB served alone in 0.5 s; then shares 50/50. Second needs 25 MB
  // at 50 MB/s = 0.5 s -> done at 1.0 s. First's remaining 50 MB: 25 MB while
  // sharing (0.5 s), 25 MB alone (0.25 s) -> done at 1.25 s.
  EXPECT_NEAR(second_done, 1.0, 1e-6);
  EXPECT_NEAR(first_done, 1.25, 1e-6);
}

TEST(FairShareServer, EfficiencyCurveDegradesAggregate) {
  Engine e;
  // Two streams at 50% efficiency: aggregate 50 MB/s, each 25 MB/s.
  FairShareServer server(e, 100e6, [](std::size_t n) { return n > 1 ? 0.5 : 1.0; });
  std::vector<double> done;
  for (int i = 0; i < 2; ++i) {
    e.spawn([](Engine& eng, FairShareServer& s, std::vector<double>& out) -> Task {
      co_await s.transfer(25'000'000);
      out.push_back(eng.now().to_seconds());
    }(e, server, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(done[0], 1.0, 1e-6);
}

TEST(FairShareServer, ZeroByteTransferCompletesInstantly) {
  Engine e;
  FairShareServer server(e, 100e6);
  double finished = -1.0;
  e.spawn([](Engine& eng, FairShareServer& s, double& t) -> Task {
    co_await s.transfer(0);
    t = eng.now().to_seconds();
  }(e, server, finished));
  e.run();
  EXPECT_DOUBLE_EQ(finished, 0.0);
}

TEST(FairShareServer, ManyStreamsConserveWork) {
  Engine e;
  FairShareServer server(e, 1e9);
  const int kStreams = 16;
  const std::uint64_t kBytes = 10'000'000;
  double last_done = -1.0;
  for (int i = 0; i < kStreams; ++i) {
    e.spawn([](Engine& eng, FairShareServer& s, double& t, std::uint64_t b) -> Task {
      co_await s.transfer(b);
      t = std::max(t, eng.now().to_seconds());
    }(e, server, last_done, kBytes));
  }
  e.run();
  // Total 160 MB through 1 GB/s = 0.16 s regardless of interleaving.
  EXPECT_NEAR(last_done, 0.16, 1e-5);
  EXPECT_EQ(server.bytes_served(), static_cast<std::uint64_t>(kStreams) * kBytes);
}

TEST(FairShareServer, StaggeredArrivalsConserveWork) {
  Engine e;
  FairShareServer server(e, 100e6);
  double last_done = -1.0;
  for (int i = 0; i < 4; ++i) {
    e.spawn([](Engine& eng, FairShareServer& s, double& t, int delay_ms) -> Task {
      co_await sleep_for(Duration::ms(delay_ms));
      co_await s.transfer(10'000'000);
      t = std::max(t, eng.now().to_seconds());
    }(e, server, last_done, i * 50));
  }
  e.run();
  // 40 MB total at 100 MB/s, first arrival at 0 s; server is never idle
  // after t=0 until all bytes served -> last completion at 0.4 s.
  EXPECT_NEAR(last_done, 0.4, 1e-5);
}

TEST(FifoServer, SerializesTransfersWithLatency) {
  Engine e;
  FifoServer server(e, 100e6, 10_ms);
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    e.spawn([](Engine& eng, FifoServer& s, std::vector<double>& out) -> Task {
      co_await s.transfer(10'000'000);  // 0.1 s + 0.01 s latency each
      out.push_back(eng.now().to_seconds());
    }(e, server, done));
  }
  e.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_NEAR(done[0], 0.11, 1e-6);
  EXPECT_NEAR(done[1], 0.22, 1e-6);
  EXPECT_NEAR(done[2], 0.33, 1e-6);
  EXPECT_EQ(server.ops_served(), 3u);
}

}  // namespace
}  // namespace jobmig::sim
