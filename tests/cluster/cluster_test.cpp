#include "jobmig/cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "jobmig/workload/npb.hpp"

namespace jobmig::cluster {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(Cluster, BuildsTheConfiguredTopology) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 5;
  cfg.spare_nodes = 2;
  Cluster cl(engine, cfg);

  EXPECT_EQ(cl.node_count(), 7);
  EXPECT_EQ(cl.fabric().node_count(), 7u);           // HCAs: compute + spares
  EXPECT_EQ(cl.ethernet().host_count(), 8u);         // + login node
  EXPECT_EQ(cl.node_name(0), "node0");
  EXPECT_EQ(cl.node_name(4), "node4");
  EXPECT_EQ(cl.node_name(5), "spare0");
  EXPECT_EQ(cl.node_name(6), "spare1");
  EXPECT_EQ(cl.job_manager().nla_count(), 7u);
  EXPECT_EQ(cl.job_manager().nla_for_host("spare1")->state(), launch::NlaState::kSpare);
  EXPECT_EQ(cl.job_manager().nla_for_host("node2")->state(), launch::NlaState::kReady);
  EXPECT_TRUE(cl.pvfs().server_count() == 4);
  EXPECT_FALSE(cl.has_job());
}

TEST(Cluster, NodeEnvsAreFullyWired) {
  Engine engine;
  Cluster cl(engine, ClusterConfig{});
  for (int n = 0; n < cl.node_count(); ++n) {
    mpr::NodeEnv& env = cl.node_env(n);
    EXPECT_EQ(env.engine, &engine);
    EXPECT_NE(env.hca, nullptr);
    EXPECT_NE(env.scratch, nullptr);
    EXPECT_NE(env.blcr, nullptr);
    EXPECT_NE(env.cal, nullptr);
    EXPECT_EQ(env.hostname, cl.node_name(n));
  }
}

TEST(Cluster, FtbTreeFormsUnderTheLoginAgent) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  Cluster cl(engine, cfg);
  engine.run_until(sim::TimePoint::origin() + 2_s);
  EXPECT_EQ(cl.login_agent().child_count(), 4u);
  for (int n = 0; n < cl.node_count(); ++n) {
    EXPECT_TRUE(cl.node_agent(n).connected_to_parent()) << cl.node_name(n);
  }
}

TEST(Cluster, FtbTreeFanoutBuildsDeepTopologyThatSelfHeals) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 6;
  cfg.spare_nodes = 1;
  cfg.ftb_fanout = 2;  // login has 2 children; depth >= 2
  Cluster cl(engine, cfg);
  engine.run_until(sim::TimePoint::origin() + 2_s);

  // Binary tree over slots 1..7: login's children are nodes 0 and 1.
  EXPECT_EQ(cl.login_agent().child_count(), 2u);
  EXPECT_EQ(cl.node_agent(0).child_count(), 2u);  // nodes 2, 3
  EXPECT_EQ(cl.node_agent(1).child_count(), 2u);  // nodes 4, 5
  EXPECT_EQ(cl.node_agent(2).child_count(), 1u);  // spare0
  for (int n = 0; n < cl.node_count(); ++n) {
    EXPECT_TRUE(cl.node_agent(n).connected_to_parent()) << cl.node_name(n);
  }

  // Kill node0's agent (from inside the sim, as a real crash would appear):
  // its children (nodes 2, 3) re-parent and the backplane keeps delivering.
  engine.call_in(1_ms, [&cl] { cl.node_agent(0).shutdown(); });
  engine.run_until(sim::TimePoint::origin() + 5_s);
  EXPECT_GE(cl.node_agent(2).reconnects(), 1u);
  EXPECT_TRUE(cl.node_agent(2).connected_to_parent());

  ftb::FtbClient pub(cl.node_agent(3), "p");
  ftb::FtbClient sub(cl.node_agent(4), "s");
  sub.subscribe(ftb::Subscription{});
  engine.spawn([](ftb::FtbClient& p) -> Task {
    co_await p.publish(ftb::FtbEvent{"S", "HEALED", ftb::Severity::kInfo, ""});
  }(pub));
  engine.run_until(sim::TimePoint::origin() + 8_s);
  auto ev = sub.poll_event();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "HEALED");
}

TEST(Cluster, CreateJobPlacesRanksRoundRobinByNode) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  Cluster cl(engine, cfg);
  mpr::Job& job = cl.create_job(4, 1 << 20);
  EXPECT_EQ(job.size(), 12);
  EXPECT_EQ(job.node_of(0).hostname, "node0");
  EXPECT_EQ(job.node_of(3).hostname, "node0");
  EXPECT_EQ(job.node_of(4).hostname, "node1");
  EXPECT_EQ(job.node_of(11).hostname, "node2");
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(job.proc(r).sim_process().image().size(), 1u << 20);
  }
}

TEST(Cluster, SecondJobIsRejected) {
  Engine engine;
  Cluster cl(engine, ClusterConfig{});
  cl.create_job(1, 4096);
  EXPECT_THROW(cl.create_job(1, 4096), ContractViolation);
}

TEST(Cluster, StartLaunchesRanksOntoNlas) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 2;
  cfg.spare_nodes = 1;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 4, 0.05);
  cl.create_job(2, spec.image_bytes_per_rank);
  engine.spawn([](Cluster& c, workload::KernelSpec s) -> Task {
    co_await c.start(workload::make_app(s));
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 60_s);
  EXPECT_TRUE(cl.job().app_done());
  EXPECT_EQ(cl.job_manager().nla_for_host("node0")->local_ranks(), (std::vector<int>{0, 1}));
  EXPECT_EQ(cl.job_manager().nla_for_host("node1")->local_ranks(), (std::vector<int>{2, 3}));
  EXPECT_TRUE(cl.job_manager().nla_for_host("spare0")->local_ranks().empty());
}

TEST(Cluster, CrSelectorsTargetTheRightFilesystems) {
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 2;
  cfg.spare_nodes = 0;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kSP, workload::NpbClass::kTest, 4, 0.3);
  spec.time_per_iter = 50_ms;
  cl.create_job(2, spec.image_bytes_per_rank);
  engine.spawn([](Cluster& c, workload::KernelSpec s) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(500_ms);
    auto local = c.make_cr_local();
    (void)co_await local->checkpoint_all();
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 300_s);
  // Ranks 0,1 dumped on node0's disk; 2,3 on node1's. Nothing on PVFS.
  EXPECT_TRUE(cl.node_env(0).scratch->exists(migration::CheckpointRestart::checkpoint_path(0)));
  EXPECT_TRUE(cl.node_env(0).scratch->exists(migration::CheckpointRestart::checkpoint_path(1)));
  EXPECT_TRUE(cl.node_env(1).scratch->exists(migration::CheckpointRestart::checkpoint_path(2)));
  EXPECT_FALSE(cl.node_env(1).scratch->exists(migration::CheckpointRestart::checkpoint_path(0)));
  EXPECT_TRUE(cl.pvfs().list().empty());
}

TEST(Cluster, BuildWithoutPvfsRefusesPvfsUse) {
  Engine engine;
  ClusterConfig cfg;
  cfg.build_pvfs = false;
  Cluster cl(engine, cfg);
  EXPECT_THROW((void)cl.pvfs(), ContractViolation);
  cl.create_job(1, 4096);
  EXPECT_THROW((void)cl.make_cr_pvfs(), ContractViolation);
}

}  // namespace
}  // namespace jobmig::cluster
