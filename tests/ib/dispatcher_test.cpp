#include "jobmig/ib/dispatcher.hpp"

#include <gtest/gtest.h>

namespace jobmig::ib {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

WorkCompletion wc_of(std::uint64_t id) {
  return WorkCompletion{id, WcStatus::kSuccess, WcOpcode::kSend, id * 10, 0, false};
}

TEST(CompletionDispatcher, DeliversToWaiterRegisteredBeforeCompletion) {
  Engine e;
  CompletionQueue cq;
  CompletionDispatcher d(cq);
  d.start(e);
  WorkCompletion got{};
  e.spawn([](CompletionDispatcher& disp, WorkCompletion& out) -> Task {
    out = co_await disp.await(7);
  }(d, got));
  e.call_in(5_ms, [&cq] { cq.push(wc_of(7)); });
  e.run_until(sim::TimePoint::origin() + 1_s);
  EXPECT_EQ(got.wr_id, 7u);
  EXPECT_EQ(got.byte_len, 70u);
  d.stop();
  e.run();
}

TEST(CompletionDispatcher, DeliversToWaiterArrivingAfterCompletion) {
  Engine e;
  CompletionQueue cq;
  CompletionDispatcher d(cq);
  d.start(e);
  WorkCompletion got{};
  cq.push(wc_of(3));
  e.spawn([](CompletionDispatcher& disp, WorkCompletion& out) -> Task {
    co_await sim::sleep_for(10_ms);  // completion already buffered
    out = co_await disp.await(3);
  }(d, got));
  e.run_until(sim::TimePoint::origin() + 1_s);
  EXPECT_EQ(got.wr_id, 3u);
  d.stop();
  e.run();
}

TEST(CompletionDispatcher, InterleavedIdsRouteCorrectly) {
  Engine e;
  CompletionQueue cq;
  CompletionDispatcher d(cq);
  d.start(e);
  std::map<std::uint64_t, std::uint64_t> results;
  for (std::uint64_t id : {5u, 1u, 9u, 2u}) {
    e.spawn([](CompletionDispatcher& disp, std::uint64_t wr,
               std::map<std::uint64_t, std::uint64_t>& out) -> Task {
      WorkCompletion wc = co_await disp.await(wr);
      out[wr] = wc.byte_len;
    }(d, id, results));
  }
  // Completions in a different order than the waiters registered.
  e.call_in(1_ms, [&cq] { cq.push(wc_of(9)); });
  e.call_in(2_ms, [&cq] { cq.push(wc_of(1)); });
  e.call_in(3_ms, [&cq] { cq.push(wc_of(2)); });
  e.call_in(4_ms, [&cq] { cq.push(wc_of(5)); });
  e.run_until(sim::TimePoint::origin() + 1_s);
  ASSERT_EQ(results.size(), 4u);
  for (auto& [id, len] : results) EXPECT_EQ(len, id * 10);
  d.stop();
  e.run();
}

TEST(CompletionDispatcher, StopDrainsAndExits) {
  Engine e;
  CompletionQueue cq;
  CompletionDispatcher d(cq);
  d.start(e);
  EXPECT_TRUE(d.running());
  d.stop();
  e.run();
  EXPECT_FALSE(d.running());
}

TEST(CompletionDispatcher, AwaitingIdZeroIsRejected) {
  Engine e;
  CompletionQueue cq;
  CompletionDispatcher d(cq);
  d.start(e);
  bool threw = false;
  e.spawn([](CompletionDispatcher& disp, bool& out) -> Task {
    try {
      (void)co_await disp.await(0);
    } catch (const ContractViolation&) {
      out = true;
    }
  }(d, threw));
  e.run_until(sim::TimePoint::origin() + 1_s);
  EXPECT_TRUE(threw);
  d.stop();
  e.run();
}

}  // namespace
}  // namespace jobmig::ib
