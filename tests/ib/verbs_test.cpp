#include "jobmig/ib/verbs.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace jobmig::ib {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::ByteSpan;
using sim::Duration;
using sim::Engine;
using sim::pattern_fill;
using sim::Task;

Bytes make_payload(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  pattern_fill(b, seed, 0);
  return b;
}

/// Two connected nodes with one QP pair; the common fixture for most tests.
struct Pair {
  Engine engine;
  Fabric fabric{engine};
  Hca& a{fabric.add_node("a")};
  Hca& b{fabric.add_node("b")};
  CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  std::unique_ptr<QueuePair> qa, qb;

  Pair() {
    qa = a.create_qp(a_scq, a_rcq);
    qb = b.create_qp(b_scq, b_rcq);
    qa->connect(IbAddr{b.node(), qb->qpn()});
    qb->connect(IbAddr{a.node(), qa->qpn()});
  }
};

TEST(Verbs, SuggestedLookaheadIsTwoHops) {
  Engine e;
  sim::IbParams params;
  params.hop_latency = Duration::ns(600);
  Fabric f(e, params);
  EXPECT_EQ(f.suggested_lookahead().count_ns(), 1200);
}

TEST(Verbs, SendRecvDeliversExactBytes) {
  Pair p;
  Bytes recv_buf(4096);
  Bytes sent = make_payload(1000, 7);
  WorkCompletion send_wc{}, recv_wc{};
  p.engine.spawn([](Pair& pp, Bytes& buf, WorkCompletion& rwc) -> Task {
    pp.qb->post_recv(RecvWr{1, buf.data(), buf.size()});
    rwc = co_await pp.b_rcq.wait();
  }(p, recv_buf, recv_wc));
  p.engine.spawn([](Pair& pp, const Bytes& payload, WorkCompletion& swc) -> Task {
    pp.qa->post_send(SendWr{2, payload, 0xABCD, true});
    swc = co_await pp.a_scq.wait();
  }(p, sent, send_wc));
  p.engine.run();

  EXPECT_TRUE(send_wc.ok());
  EXPECT_EQ(send_wc.wr_id, 2u);
  ASSERT_TRUE(recv_wc.ok());
  EXPECT_EQ(recv_wc.wr_id, 1u);
  EXPECT_EQ(recv_wc.byte_len, 1000u);
  EXPECT_TRUE(recv_wc.has_imm);
  EXPECT_EQ(recv_wc.imm_data, 0xABCDu);
  EXPECT_TRUE(std::equal(sent.begin(), sent.end(), recv_buf.begin()));
  EXPECT_EQ(p.b.bytes_in(), 1000u);
  EXPECT_EQ(p.fabric.total_bytes(), 1000u);
}

TEST(Verbs, MessagesArriveInPostOrder) {
  Pair p;
  std::vector<std::uint32_t> order;
  p.engine.spawn([](Pair& pp, std::vector<std::uint32_t>& out) -> Task {
    Bytes buf(64_KiB);
    for (int i = 0; i < 5; ++i) pp.qb->post_recv(RecvWr{static_cast<std::uint64_t>(i), buf.data(), buf.size()});
    for (int i = 0; i < 5; ++i) {
      auto wc = co_await pp.b_rcq.wait();
      out.push_back(wc.imm_data);
    }
  }(p, order));
  p.engine.spawn([](Pair& pp) -> Task {
    // Mixed sizes: a small late message must not overtake a large early one.
    pp.qa->post_send(SendWr{0, make_payload(32, 1), 0, true});
    pp.qa->post_send(SendWr{1, make_payload(60000, 2), 1, true});
    pp.qa->post_send(SendWr{2, make_payload(8, 3), 2, true});
    pp.qa->post_send(SendWr{3, make_payload(40000, 4), 3, true});
    pp.qa->post_send(SendWr{4, make_payload(16, 5), 4, true});
    co_return;
  }(p));
  p.engine.run();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Verbs, SendBlocksUntilRecvPosted) {
  Pair p;
  double recv_posted_at = -1.0, send_completed_at = -1.0;
  p.engine.spawn([](Pair& pp, double& t) -> Task {
    pp.qa->post_send(SendWr{1, make_payload(128, 1)});
    (void)co_await pp.a_scq.wait();
    t = Engine::current()->now().to_seconds();
  }(p, send_completed_at));
  p.engine.spawn([](Pair& pp, double& t) -> Task {
    co_await sim::sleep_for(50_ms);
    static Bytes buf(1024);
    pp.qb->post_recv(RecvWr{2, buf.data(), buf.size()});
    t = Engine::current()->now().to_seconds();
  }(p, recv_posted_at));
  p.engine.run();
  EXPECT_DOUBLE_EQ(recv_posted_at, 0.050);
  EXPECT_GE(send_completed_at, recv_posted_at);
}

TEST(Verbs, OversizedPayloadFailsBothSides) {
  Pair p;
  WorkCompletion swc{}, rwc{};
  p.engine.spawn([](Pair& pp, WorkCompletion& s, WorkCompletion& r) -> Task {
    Bytes small(16);
    pp.qb->post_recv(RecvWr{1, small.data(), small.size()});
    pp.qa->post_send(SendWr{2, make_payload(64, 1)});
    s = co_await pp.a_scq.wait();
    r = co_await pp.b_rcq.wait();
  }(p, swc, rwc));
  p.engine.run();
  EXPECT_EQ(swc.status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(rwc.status, WcStatus::kLocalLengthError);
}

TEST(Verbs, RdmaReadPullsRemoteMemory) {
  Pair p;
  Bytes remote_data = make_payload(256_KiB, 99);
  Bytes local_buf(256_KiB);
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, Bytes& remote, Bytes& local, WorkCompletion& out) -> Task {
    MemoryRegion* mr = co_await pp.a.reg_mr(remote.data(), remote.size());
    // Target (b) pulls from source (a) — the paper's pull-based protocol.
    pp.qb->post_rdma_read(RdmaWr{7, local.data(), 0, mr->rkey(), local.size()});
    out = co_await pp.b_scq.wait();
  }(p, remote_data, local_buf, wc));
  p.engine.run();
  ASSERT_TRUE(wc.ok());
  EXPECT_EQ(wc.opcode, WcOpcode::kRdmaRead);
  EXPECT_EQ(wc.byte_len, 256_KiB);
  EXPECT_EQ(local_buf, remote_data);
}

TEST(Verbs, RdmaReadAtOffsetWithinRegion) {
  Pair p;
  Bytes remote_data = make_payload(8192, 3);
  Bytes local_buf(100);
  p.engine.spawn([](Pair& pp, Bytes& remote, Bytes& local) -> Task {
    MemoryRegion* mr = co_await pp.a.reg_mr(remote.data(), remote.size());
    pp.qb->post_rdma_read(RdmaWr{1, local.data(), 4000, mr->rkey(), local.size()});
    auto wc = co_await pp.b_scq.wait();
    JOBMIG_ASSERT(wc.ok());
  }(p, remote_data, local_buf));
  p.engine.run();
  EXPECT_TRUE(std::equal(local_buf.begin(), local_buf.end(), remote_data.begin() + 4000));
}

TEST(Verbs, RdmaWritePushesToRemoteMemory) {
  Pair p;
  Bytes remote_buf(4096);
  Bytes local_data = make_payload(4096, 11);
  p.engine.spawn([](Pair& pp, Bytes& remote, Bytes& local) -> Task {
    MemoryRegion* mr = co_await pp.b.reg_mr(remote.data(), remote.size());
    pp.qa->post_rdma_write(RdmaWr{1, local.data(), 0, mr->rkey(), local.size()});
    auto wc = co_await pp.a_scq.wait();
    JOBMIG_ASSERT(wc.ok());
  }(p, remote_buf, local_data));
  p.engine.run();
  EXPECT_EQ(remote_buf, local_data);
}

TEST(Verbs, StaleRkeyFailsAfterDeregistration) {
  Pair p;
  Bytes remote_data(1024);
  Bytes local_buf(1024);
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, Bytes& remote, Bytes& local, WorkCompletion& out) -> Task {
    MemoryRegion* mr = co_await pp.a.reg_mr(remote.data(), remote.size());
    const std::uint32_t stale = mr->rkey();
    pp.a.dereg_mr(mr);  // teardown: cached rkeys must stop working
    pp.qb->post_rdma_read(RdmaWr{1, local.data(), 0, stale, local.size()});
    out = co_await pp.b_scq.wait();
  }(p, remote_data, local_buf, wc));
  p.engine.run();
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
  EXPECT_EQ(p.qb->state(), QpState::kError);
}

TEST(Verbs, OutOfBoundsRdmaFails) {
  Pair p;
  Bytes remote_data(1024);
  Bytes local_buf(2048);
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, Bytes& remote, Bytes& local, WorkCompletion& out) -> Task {
    MemoryRegion* mr = co_await pp.a.reg_mr(remote.data(), remote.size());
    pp.qb->post_rdma_read(RdmaWr{1, local.data(), 512, mr->rkey(), 1024});  // 512+1024 > 1024
    out = co_await pp.b_scq.wait();
  }(p, remote_data, local_buf, wc));
  p.engine.run();
  EXPECT_EQ(wc.status, WcStatus::kRemoteAccessError);
}

TEST(Verbs, SendToDestroyedQpFailsWithRetryExceeded) {
  Pair p;
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, WorkCompletion& out) -> Task {
    pp.qb.reset();  // destroy remote endpoint
    pp.qa->post_send(SendWr{1, make_payload(64, 1)});
    out = co_await pp.a_scq.wait();
  }(p, wc));
  p.engine.run();
  EXPECT_EQ(wc.status, WcStatus::kRetryExceeded);
}

TEST(Verbs, QpDestructionFlushesPostedRecvs) {
  Pair p;
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, WorkCompletion& out) -> Task {
    Bytes buf(64);
    pp.qb->post_recv(RecvWr{9, buf.data(), buf.size()});
    pp.qb->to_error();
    out = co_await pp.b_rcq.wait();
    co_return;
  }(p, wc));
  p.engine.run();
  EXPECT_EQ(wc.status, WcStatus::kFlushError);
  EXPECT_EQ(wc.wr_id, 9u);
}

TEST(Verbs, PostOnErroredQpFlushes) {
  Pair p;
  WorkCompletion wc{};
  p.engine.spawn([](Pair& pp, WorkCompletion& out) -> Task {
    pp.qa->to_error();
    pp.qa->post_send(SendWr{5, make_payload(16, 1)});
    out = co_await pp.a_scq.wait();
  }(p, wc));
  p.engine.run();
  EXPECT_EQ(wc.status, WcStatus::kFlushError);
}

TEST(Verbs, LargeTransferTimeMatchesLinkBandwidth) {
  Pair p;
  const std::uint64_t kBytes = 150'000'000;  // 150 MB at 1.5 GB/s -> ~0.1 s
  double elapsed = 0.0;
  p.engine.spawn([](Pair& pp, double& out, std::uint64_t n) -> Task {
    Bytes remote(n), local(n);
    MemoryRegion* mr = co_await pp.a.reg_mr(remote.data(), remote.size());
    const double start = Engine::current()->now().to_seconds();
    pp.qb->post_rdma_read(RdmaWr{1, local.data(), 0, mr->rkey(), n});
    auto wc = co_await pp.b_scq.wait();
    JOBMIG_ASSERT(wc.ok());
    out = Engine::current()->now().to_seconds() - start;
  }(p, elapsed, kBytes));
  p.engine.run();
  EXPECT_NEAR(elapsed, 0.1, 0.005);
}

TEST(Verbs, ConcurrentFlowsShareIngressBandwidth) {
  // Two senders into the same destination node: each flow sees half the
  // link; total time for 2x75 MB is the same as 150 MB alone.
  Engine engine;
  Fabric fabric(engine);
  Hca& dst = fabric.add_node("dst");
  Hca& s1 = fabric.add_node("s1");
  Hca& s2 = fabric.add_node("s2");
  CompletionQueue cqs[6];
  auto qd1 = dst.create_qp(cqs[0], cqs[1]);
  auto qd2 = dst.create_qp(cqs[0], cqs[1]);
  auto q1 = s1.create_qp(cqs[2], cqs[3]);
  auto q2 = s2.create_qp(cqs[4], cqs[5]);
  qd1->connect(IbAddr{s1.node(), q1->qpn()});
  q1->connect(IbAddr{dst.node(), qd1->qpn()});
  qd2->connect(IbAddr{s2.node(), q2->qpn()});
  q2->connect(IbAddr{dst.node(), qd2->qpn()});

  const std::uint64_t kBytes = 75'000'000;
  Bytes src1(kBytes), src2(kBytes), dst1(kBytes), dst2(kBytes);
  double done = 0.0;
  engine.spawn([](Hca& s, QueuePair& qd, CompletionQueue& scq, Bytes& src, Bytes& local,
                  double& out, std::uint64_t n) -> Task {
    MemoryRegion* mr = co_await s.reg_mr(src.data(), src.size());
    qd.post_rdma_read(RdmaWr{1, local.data(), 0, mr->rkey(), n});
    auto wc = co_await scq.wait();
    JOBMIG_ASSERT(wc.ok());
    out = std::max(out, Engine::current()->now().to_seconds());
  }(s1, *qd1, cqs[0], src1, dst1, done, kBytes));
  engine.spawn([](Hca& s, QueuePair& qd, CompletionQueue& scq, Bytes& src, Bytes& local,
                  double& out, std::uint64_t n) -> Task {
    MemoryRegion* mr = co_await s.reg_mr(src.data(), src.size());
    qd.post_rdma_read(RdmaWr{2, local.data(), 0, mr->rkey(), n});
    auto wc = co_await scq.wait();
    JOBMIG_ASSERT(wc.ok());
    out = std::max(out, Engine::current()->now().to_seconds());
  }(s2, *qd2, cqs[0], src2, dst2, done, kBytes));
  engine.run();
  EXPECT_NEAR(done, 0.1, 0.005);
  EXPECT_EQ(dst1, src1);
  EXPECT_EQ(dst2, src2);
}

TEST(Verbs, MrRegistrationChargesPerPage) {
  Pair p;
  double elapsed = -1.0;
  p.engine.spawn([](Pair& pp, double& out) -> Task {
    Bytes buf(4096 * 1000);
    const double start = Engine::current()->now().to_seconds();
    MemoryRegion* mr = co_await pp.a.reg_mr(buf.data(), buf.size());
    out = Engine::current()->now().to_seconds() - start;
    pp.a.dereg_mr(mr);
  }(p, elapsed));
  p.engine.run();
  // 1000 pages * 250 ns = 250 us.
  EXPECT_NEAR(elapsed, 250e-6, 1e-9);
}

TEST(Verbs, CqPollIsNonBlocking) {
  CompletionQueue cq;
  EXPECT_FALSE(cq.poll().has_value());
  cq.push(WorkCompletion{1, WcStatus::kSuccess, WcOpcode::kSend, 0, 0, false});
  auto wc = cq.poll();
  ASSERT_TRUE(wc.has_value());
  EXPECT_EQ(wc->wr_id, 1u);
  EXPECT_FALSE(cq.poll().has_value());
}

TEST(Verbs, FabricNodeLookup) {
  Engine e;
  Fabric f(e);
  Hca& a = f.add_node("x");
  EXPECT_EQ(f.node_count(), 1u);
  EXPECT_EQ(f.hca(a.node()), &a);
  EXPECT_EQ(f.hca(42), nullptr);
  EXPECT_EQ(a.name(), "x");
}

}  // namespace
}  // namespace jobmig::ib
