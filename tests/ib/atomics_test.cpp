#include <gtest/gtest.h>

#include "jobmig/ib/dispatcher.hpp"
#include "jobmig/ib/verbs.hpp"

namespace jobmig::ib {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

struct AtomicRig {
  Engine engine;
  Fabric fabric{engine};
  Hca& a{fabric.add_node("a")};
  Hca& b{fabric.add_node("b")};
  CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  std::unique_ptr<QueuePair> qa, qb;

  AtomicRig() {
    qa = a.create_qp(a_scq, a_rcq);
    qb = b.create_qp(b_scq, b_rcq);
    qa->connect(IbAddr{b.node(), qb->qpn()});
    qb->connect(IbAddr{a.node(), qa->qpn()});
  }
};

TEST(Atomics, FetchAddReturnsOldValueAndUpdatesRemote) {
  AtomicRig rig;
  alignas(8) std::uint64_t counter_storage = 100;
  std::uint64_t old_value = 0;
  rig.engine.spawn([](AtomicRig& r, std::uint64_t* remote, std::uint64_t& out) -> Task {
    MemoryRegion* mr =
        co_await r.b.reg_mr(reinterpret_cast<std::byte*>(remote), sizeof(std::uint64_t));
    AtomicWr wr;
    wr.wr_id = 1;
    wr.result = &out;
    wr.remote_offset = 0;
    wr.rkey = mr->rkey();
    wr.operand = 7;
    r.qa->post_fetch_add(wr);
    auto wc = co_await r.a_scq.wait();
    JOBMIG_ASSERT(wc.ok());
    JOBMIG_ASSERT(wc.opcode == WcOpcode::kFetchAdd);
  }(rig, &counter_storage, old_value));
  rig.engine.run();
  EXPECT_EQ(old_value, 100u);
  EXPECT_EQ(counter_storage, 107u);
}

TEST(Atomics, CompareSwapOnlySwapsOnMatch) {
  AtomicRig rig;
  alignas(8) std::uint64_t word = 42;
  std::uint64_t seen1 = 0, seen2 = 0;
  rig.engine.spawn([](AtomicRig& r, std::uint64_t* remote, std::uint64_t& s1,
                      std::uint64_t& s2) -> Task {
    MemoryRegion* mr =
        co_await r.b.reg_mr(reinterpret_cast<std::byte*>(remote), sizeof(std::uint64_t));
    AtomicWr wr;
    wr.wr_id = 1;
    wr.result = &s1;
    wr.rkey = mr->rkey();
    wr.compare = 42;   // matches -> swap to 99
    wr.operand = 99;
    r.qa->post_compare_swap(wr);
    auto wc1 = co_await r.a_scq.wait();
    JOBMIG_ASSERT(wc1.ok());
    wr.wr_id = 2;
    wr.result = &s2;
    wr.compare = 42;   // no longer matches -> no swap
    wr.operand = 1234;
    r.qa->post_compare_swap(wr);
    auto wc2 = co_await r.a_scq.wait();
    JOBMIG_ASSERT(wc2.ok());
  }(rig, &word, seen1, seen2));
  rig.engine.run();
  EXPECT_EQ(seen1, 42u);   // original value at first CAS
  EXPECT_EQ(seen2, 99u);   // second CAS observed the swap...
  EXPECT_EQ(word, 99u);    // ...and did not overwrite
}

TEST(Atomics, ConcurrentFetchAddsAreLossless) {
  // The classic ticket-counter test: two requesters hammer one remote
  // counter; every increment must land exactly once.
  AtomicRig rig;
  alignas(8) std::uint64_t counter = 0;
  CompletionQueue extra_scq, extra_rcq;
  auto qa2 = rig.a.create_qp(extra_scq, extra_rcq);
  auto qb2 = rig.b.create_qp(rig.b_scq, rig.b_rcq);
  qa2->connect(IbAddr{rig.b.node(), qb2->qpn()});
  qb2->connect(IbAddr{rig.a.node(), qa2->qpn()});

  rig.engine.spawn([](AtomicRig& r, QueuePair& q2, CompletionQueue& cq2,
                      std::uint64_t* remote) -> Task {
    MemoryRegion* mr =
        co_await r.b.reg_mr(reinterpret_cast<std::byte*>(remote), sizeof(std::uint64_t));
    sim::TaskGroup group(r.engine);
    group.spawn([](QueuePair& qp, CompletionQueue& cq, std::uint32_t rkey) -> Task {
      for (int i = 0; i < 50; ++i) {
        std::uint64_t old_val;
        AtomicWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i) + 1;
        wr.result = &old_val;
        wr.rkey = rkey;
        wr.operand = 1;
        qp.post_fetch_add(wr);
        auto wc = co_await cq.wait();
        JOBMIG_ASSERT(wc.ok());
      }
    }(*r.qa, r.a_scq, mr->rkey()));
    group.spawn([](QueuePair& qp, CompletionQueue& cq, std::uint32_t rkey) -> Task {
      for (int i = 0; i < 50; ++i) {
        std::uint64_t old_val;
        AtomicWr wr;
        wr.wr_id = static_cast<std::uint64_t>(i) + 1;
        wr.result = &old_val;
        wr.rkey = rkey;
        wr.operand = 1;
        qp.post_fetch_add(wr);
        auto wc = co_await cq.wait();
        JOBMIG_ASSERT(wc.ok());
      }
    }(q2, cq2, mr->rkey()));
    co_await group.wait();
  }(rig, *qa2, extra_scq, &counter));
  rig.engine.run();
  EXPECT_EQ(counter, 100u);
}

TEST(Atomics, MisalignedOrUnregisteredTargetFails) {
  AtomicRig rig;
  alignas(8) std::uint64_t word = 0;
  WcStatus misaligned{}, stale{};
  rig.engine.spawn([](AtomicRig& r, std::uint64_t* remote, WcStatus& mis, WcStatus& st) -> Task {
    MemoryRegion* mr =
        co_await r.b.reg_mr(reinterpret_cast<std::byte*>(remote), sizeof(std::uint64_t));
    AtomicWr wr;
    wr.wr_id = 1;
    wr.rkey = mr->rkey();
    wr.remote_offset = 4;  // misaligned
    wr.operand = 1;
    r.qa->post_fetch_add(wr);
    mis = (co_await r.a_scq.wait()).status;

    // Fresh pair (the first error moved qa to ERROR).
    CompletionQueue scq, rcq;
    auto qa2 = r.a.create_qp(scq, rcq);
    auto qb2 = r.b.create_qp(r.b_scq, r.b_rcq);
    qa2->connect(IbAddr{r.b.node(), qb2->qpn()});
    qb2->connect(IbAddr{r.a.node(), qa2->qpn()});
    r.b.dereg_mr(mr);
    AtomicWr wr2;
    wr2.wr_id = 2;
    wr2.rkey = 0xDEAD;
    wr2.operand = 1;
    qa2->post_fetch_add(wr2);
    st = (co_await scq.wait()).status;
  }(rig, &word, misaligned, stale));
  rig.engine.run();
  EXPECT_EQ(misaligned, WcStatus::kRemoteAccessError);
  EXPECT_EQ(stale, WcStatus::kRemoteAccessError);
  EXPECT_EQ(word, 0u);
}

}  // namespace
}  // namespace jobmig::ib
