#include <gtest/gtest.h>

#include <vector>

#include "jobmig/ib/verbs.hpp"
#include "jobmig/sim/task.hpp"

namespace jobmig::ib {
namespace {

using namespace jobmig::sim::literals;

WorkCompletion make_wc(std::uint64_t wr_id) {
  WorkCompletion wc;
  wc.wr_id = wr_id;
  return wc;
}

TEST(CqBatch, PollBatchAppendsWithoutWaiting) {
  CompletionQueue cq;
  for (std::uint64_t i = 1; i <= 5; ++i) cq.push(make_wc(i));

  std::vector<WorkCompletion> out;
  out.push_back(make_wc(99));  // poll_batch must append, not clear
  EXPECT_EQ(cq.poll_batch(out, 3), 3u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].wr_id, 99u);
  EXPECT_EQ(out[1].wr_id, 1u);
  EXPECT_EQ(out[3].wr_id, 3u);
  EXPECT_EQ(cq.depth(), 2u);

  EXPECT_EQ(cq.poll_batch(out), 2u);
  EXPECT_EQ(cq.depth(), 0u);
  EXPECT_EQ(cq.poll_batch(out), 0u);  // empty queue: no-op
}

TEST(CqBatch, WaitBatchBlocksThenDrainsEverything) {
  sim::Engine e;
  CompletionQueue cq;
  std::vector<WorkCompletion> got;
  e.spawn([](CompletionQueue& q, std::vector<WorkCompletion>& out) -> sim::Task {
    std::vector<WorkCompletion> batch{make_wc(77)};  // must be cleared by wait_batch
    const std::size_t n = co_await q.wait_batch(batch);
    EXPECT_EQ(n, batch.size());
    out = batch;
  }(cq, got));
  e.call_at(sim::TimePoint::origin() + 1_ms, [&cq] {
    cq.push(make_wc(1));
    cq.push(make_wc(2));
    cq.push(make_wc(3));
  });
  e.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].wr_id, 1u);
  EXPECT_EQ(got[2].wr_id, 3u);
}

TEST(CqBatch, WaitBatchMaxLeavesRemainderConsumable) {
  sim::Engine e;
  CompletionQueue cq;
  std::vector<std::size_t> sizes;
  e.spawn([](CompletionQueue& q, std::vector<std::size_t>& out) -> sim::Task {
    std::vector<WorkCompletion> batch;
    out.push_back(co_await q.wait_batch(batch, 2));
    // The remainder must still be signalled: this second wait may not hang.
    out.push_back(co_await q.wait_batch(batch, 16));
  }(cq, sizes));
  e.call_at(sim::TimePoint::origin() + 1_ms, [&cq] {
    for (std::uint64_t i = 1; i <= 5; ++i) cq.push(make_wc(i));
  });
  e.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(cq.depth(), 0u);
}

/// Regression: two coroutines parked in wait() while two completions arrive
/// back-to-back. The first consumer must re-signal the availability latch
/// after popping, or the second waiter observes an empty latch with a
/// non-empty queue — or worse, sleeps forever while wc2 sits queued.
TEST(CqBatch, TwoWaitersBothReceiveWhenTwoCompletionsArriveTogether) {
  sim::Engine e;
  CompletionQueue cq;
  std::vector<std::uint64_t> received;
  auto waiter = [](CompletionQueue& q, std::vector<std::uint64_t>& out) -> sim::Task {
    const WorkCompletion wc = co_await q.wait();
    out.push_back(wc.wr_id);
  };
  e.spawn(waiter(cq, received));
  e.spawn(waiter(cq, received));
  e.call_at(sim::TimePoint::origin() + 1_ms, [&cq] {
    cq.push(make_wc(1));
    cq.push(make_wc(2));  // latch already set: relies on pop-side re-signal
  });
  e.run();
  ASSERT_EQ(received.size(), 2u) << "a waiter was stranded with a completion queued";
  EXPECT_EQ(received[0], 1u);
  EXPECT_EQ(received[1], 2u);
  EXPECT_EQ(cq.depth(), 0u);
  EXPECT_EQ(e.live_tasks(), 0u);
}

TEST(CqBatch, MixedWaiterAndBatchWaiterShareOneBurst) {
  sim::Engine e;
  CompletionQueue cq;
  std::vector<std::uint64_t> single;
  std::vector<WorkCompletion> rest;
  e.spawn([](CompletionQueue& q, std::vector<std::uint64_t>& out) -> sim::Task {
    out.push_back((co_await q.wait()).wr_id);
  }(cq, single));
  e.spawn([](CompletionQueue& q, std::vector<WorkCompletion>& out) -> sim::Task {
    (void)co_await q.wait_batch(out);
  }(cq, rest));
  e.call_at(sim::TimePoint::origin() + 1_ms, [&cq] {
    for (std::uint64_t i = 1; i <= 4; ++i) cq.push(make_wc(i));
  });
  e.run();
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], 1u);
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0].wr_id, 2u);
  EXPECT_EQ(rest[2].wr_id, 4u);
  EXPECT_EQ(e.live_tasks(), 0u);
}

}  // namespace
}  // namespace jobmig::ib
