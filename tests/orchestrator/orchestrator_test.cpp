#include "jobmig/orch/orchestrator.hpp"

#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/migration/cr_baseline.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::orch {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using cluster::ManagedJob;
using sim::Engine;
using sim::Task;

ClusterConfig two_job_config(int spares = 2) {
  ClusterConfig cfg;
  cfg.compute_nodes = 4;
  cfg.spare_nodes = spares;
  return cfg;
}

workload::KernelSpec small_spec() {
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 4, 0.2);
  spec.time_per_iter = 100_ms;  // keep apps alive across the cycles
  return spec;
}

/// Start both managed jobs (each 2 nodes x 2 ranks) and give them a head
/// start before any cycles.
Task start_two_jobs(Cluster& cl, ManagedJob& ja, ManagedJob& jb, workload::KernelSpec spec) {
  co_await cl.start_managed(ja, workload::make_app(spec));
  co_await cl.start_managed(jb, workload::make_app(spec));
  co_await sim::sleep_for(2_s);
}

Task run_cycle(Orchestrator& orch, int job_id, std::string src, CyclePriority prio,
               CycleOutcome* out, bool* done) {
  *out = co_await orch.migrate_job(job_id, std::move(src), prio);
  *done = true;
}

TEST(Orchestrator, DisjointCyclesOfTwoJobsRunConcurrently) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);

  CycleOutcome oa, ob;
  bool da = false, db = false;
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  Orchestrator& o, CycleOutcome& ra, CycleOutcome& rb, bool& fa,
                  bool& fb) -> Task {
    co_await start_two_jobs(c, a, b, s);
    c.engine().spawn(run_cycle(o, a.job_id, "node0", CyclePriority::kRebalance, &ra, &fa));
    c.engine().spawn(run_cycle(o, b.job_id, "node2", CyclePriority::kRebalance, &rb, &fb));
  }(cl, ja, jb, spec, orch, oa, ob, da, db));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(da && db);
  EXPECT_FALSE(oa.report.aborted);
  EXPECT_FALSE(ob.report.aborted);
  // The node sets were disjoint, so the two cycles' execution windows must
  // overlap — the concurrency the node-set lock manager exists to allow.
  EXPECT_LT(oa.started, ob.finished);
  EXPECT_LT(ob.started, oa.finished);
  EXPECT_NE(oa.report.target_host, ob.report.target_host);
  EXPECT_GT(oa.report.total().count_ns(), 0);
  EXPECT_GT(ob.report.total().count_ns(), 0);
  EXPECT_EQ(orch.locks().stats().peak_concurrent, 2u);
  EXPECT_EQ(orch.locks().stats().waits, 0u);
  // Pool bookkeeping: both spares consumed.
  EXPECT_EQ(orch.placement().pool_size(), 0u);
  // Per-job placement follow-through.
  EXPECT_EQ(ja.jm->nla_for_host("node0")->state(), launch::NlaState::kInactive);
  EXPECT_EQ(jb.jm->nla_for_host("node2")->state(), launch::NlaState::kInactive);
  EXPECT_EQ(orch.history().size(), 2u);
}

TEST(Orchestrator, AdmissionCapOneSerializesCycles) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);
  OrchestratorConfig cfg;
  cfg.max_concurrent_cycles = 1;
  Orchestrator orch(cl, cfg);

  CycleOutcome oa, ob;
  bool da = false, db = false;
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  Orchestrator& o, CycleOutcome& ra, CycleOutcome& rb, bool& fa,
                  bool& fb) -> Task {
    co_await start_two_jobs(c, a, b, s);
    c.engine().spawn(run_cycle(o, a.job_id, "node0", CyclePriority::kRebalance, &ra, &fa));
    c.engine().spawn(run_cycle(o, b.job_id, "node2", CyclePriority::kRebalance, &rb, &fb));
  }(cl, ja, jb, spec, orch, oa, ob, da, db));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(da && db);
  EXPECT_FALSE(oa.report.aborted);
  EXPECT_FALSE(ob.report.aborted);
  // Cap 1: the execution windows must not overlap.
  EXPECT_TRUE(oa.finished <= ob.started || ob.finished <= oa.started);
  EXPECT_EQ(orch.admission().stats().peak_in_flight, 1u);
  EXPECT_EQ(orch.admission().stats().queued_total, 1u);
}

TEST(Orchestrator, SparePoolExhaustionAbortsGracefully) {
  Engine engine;
  Cluster cl(engine, two_job_config(/*spares=*/1));
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);

  CycleOutcome oa, ob;
  bool da = false, db = false;
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  Orchestrator& o, CycleOutcome& ra, CycleOutcome& rb, bool& fa,
                  bool& fb) -> Task {
    co_await start_two_jobs(c, a, b, s);
    ra = co_await o.migrate_job(a.job_id, "node0");
    rb = co_await o.migrate_job(b.job_id, "node2");
    fa = fb = true;
  }(cl, ja, jb, spec, orch, oa, ob, da, db));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(da && db);
  EXPECT_FALSE(oa.report.aborted);
  EXPECT_TRUE(ob.report.aborted);
  EXPECT_EQ(ob.report.abort_reason, "spare pool exhausted");
  EXPECT_EQ(ob.lease_id, 0u);
  EXPECT_EQ(orch.placement().pool_size(), 0u);
}

TEST(Orchestrator, EvacuateHostDrainsEveryRank) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);

  Orchestrator orch(cl);

  EvacPlan plan;
  std::vector<CycleOutcome> outcomes;
  bool done = false;
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  Orchestrator& o, EvacPlan& pl, std::vector<CycleOutcome>& out,
                  bool& fin) -> Task {
    co_await start_two_jobs(c, a, b, s);
    // Plan sanity once ranks are placed: node0 hosts only jobA's ranks.
    pl = o.planner().plan_host("node0");
    out = co_await o.evacuate_host("node0");
    fin = true;
  }(cl, ja, jb, spec, orch, plan, outcomes, done));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(done);
  ASSERT_EQ(plan.tasks.size(), 1u);
  EXPECT_EQ(plan.tasks[0].job_id, ja.job_id);
  EXPECT_EQ(plan.tasks[0].source_host, "node0");
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].report.aborted);
  EXPECT_EQ(outcomes[0].priority, CyclePriority::kEvacuation);
  // All of jobA's node0 ranks live elsewhere now.
  for (int r = 0; r < ja.job->size(); ++r) {
    EXPECT_NE(ja.job->node_of(r).hostname, "node0") << "rank " << r;
  }
  EXPECT_TRUE(ja.jm->nla_for_host("node0")->local_ranks().empty());
}

TEST(Orchestrator, DrainNodeGroupSpansJobs) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);

  std::vector<CycleOutcome> outcomes;
  bool done = false;
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  Orchestrator& o, std::vector<CycleOutcome>& out, bool& fin) -> Task {
    co_await start_two_jobs(c, a, b, s);
    // A rack drain touching both jobs: one cycle each, batched. (Hoisted:
    // GCC 12 + initializer-list temporaries in awaited expressions.)
    std::vector<std::string> rack{"node1", "node3"};
    out = co_await o.drain_nodes(std::move(rack));
    fin = true;
  }(cl, ja, jb, spec, orch, outcomes, done));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(done);
  ASSERT_EQ(outcomes.size(), 2u);
  for (const CycleOutcome& oc : outcomes) {
    EXPECT_FALSE(oc.report.aborted);
    EXPECT_EQ(oc.priority, CyclePriority::kMaintenance);
  }
  EXPECT_TRUE(ja.jm->nla_for_host("node1")->local_ranks().empty());
  EXPECT_TRUE(jb.jm->nla_for_host("node3")->local_ranks().empty());
  // Disjoint node sets: the batch ran concurrently under the default cap.
  EXPECT_EQ(orch.locks().stats().peak_concurrent, 2u);
}

TEST(Orchestrator, FailurePredictionAutoEvacuatesTheNode) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  spec.time_per_iter = 300_ms;  // keep the apps alive past the prediction
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  ManagedJob& jb = cl.add_job("jobB", {2, 3}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);
  orch.start();

  // A failing fan on node2 (jobB). The IPMI poller publishes
  // FAILURE_PREDICTED; the orchestrator must drain the node unasked.
  // Fast poll + steep ramp so the trend predictor fires within seconds.
  health::IpmiPoller poller(engine, cl.sensor(2), cl.node_agent(2), 1_s);
  engine.spawn([](Cluster& c, ManagedJob& a, ManagedJob& b, workload::KernelSpec s,
                  health::IpmiPoller& p) -> Task {
    co_await c.start_managed(a, workload::make_app(s));
    co_await c.start_managed(b, workload::make_app(s));
    c.sensor(2).inject_degradation(c.engine().now() + 1_s, 2.0);
    p.start();
    co_return;
  }(cl, ja, jb, spec, poller));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  poller.stop();
  orch.shutdown();

  EXPECT_TRUE(poller.prediction_fired());
  EXPECT_EQ(orch.evacuations_triggered(), 1u);
  ASSERT_EQ(orch.history().size(), 1u);
  const CycleOutcome& oc = orch.history()[0];
  EXPECT_FALSE(oc.report.aborted);
  EXPECT_EQ(oc.report.source_host, "node2");
  EXPECT_EQ(oc.report.job_id, jb.job_id);
  EXPECT_EQ(oc.priority, CyclePriority::kEvacuation);
  EXPECT_TRUE(jb.jm->nla_for_host("node2")->local_ranks().empty());
  // jobA was never disturbed.
  EXPECT_EQ(ja.jm->nla_for_host("node0")->state(), launch::NlaState::kReady);
  EXPECT_EQ(ja.jm->nla_for_host("node1")->state(), launch::NlaState::kReady);
}

TEST(Orchestrator, SuccessfulCycleProlongsCheckpointSchedule) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);

  // Coordinated CR to node-local disks for the managed job, long interval
  // so no checkpoint fires during the test window.
  migration::CheckpointRestart cr(
      *ja.job, [&ja](int rank) -> storage::FileSystem& { return *ja.job->node_of(rank).scratch; });
  migration::CheckpointScheduler::Config scfg;
  scfg.interval = sim::Duration::sec(3600);
  migration::CheckpointScheduler sched(*ja.job, cr, scfg);
  orch.attach_checkpoint_scheduler(ja.job_id, sched);

  CycleOutcome oc;
  bool done = false;
  engine.spawn([](Cluster& c, ManagedJob& a, workload::KernelSpec s, Orchestrator& o,
                  migration::CheckpointScheduler& sc, CycleOutcome& out, bool& fin) -> Task {
    co_await c.start_managed(a, workload::make_app(s));
    sc.start();
    co_await sim::sleep_for(2_s);
    out = co_await o.migrate_job(a.job_id, "node1");
    sc.stop();
    fin = true;
  }(cl, ja, spec, orch, sched, oc, done));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(done);
  EXPECT_FALSE(oc.report.aborted);
  // §VI: the migration handled the (hypothetical) failure, so the next
  // coordinated checkpoint is pushed out — one full-job dump avoided.
  EXPECT_EQ(sched.checkpoints_avoided(), 1u);
  EXPECT_EQ(sched.checkpoints_taken(), 0u);
}

TEST(Orchestrator, SkipsCycleWhenSourceHasNothingToMigrate) {
  Engine engine;
  Cluster cl(engine, two_job_config());
  auto spec = small_spec();
  ManagedJob& ja = cl.add_job("jobA", {0, 1}, 2, spec.image_bytes_per_rank);
  Orchestrator orch(cl);

  CycleOutcome oc;
  bool done = false;
  engine.spawn([](Cluster& c, ManagedJob& a, workload::KernelSpec s, Orchestrator& o,
                  CycleOutcome& out, bool& fin) -> Task {
    co_await c.start_managed(a, workload::make_app(s));
    co_await sim::sleep_for(2_s);
    // node3 belongs to no managed job of jobA; nothing to move.
    out = co_await o.migrate_job(a.job_id, "node3");
    fin = true;
  }(cl, ja, spec, orch, oc, done));
  engine.run_until(sim::TimePoint::origin() + 600_s);

  ASSERT_TRUE(done);
  EXPECT_TRUE(oc.report.aborted);
  EXPECT_EQ(oc.report.abort_reason, "nothing to migrate from node3");
  // No spare was reserved and no lease taken for the skipped cycle.
  EXPECT_EQ(orch.placement().free_count(), 2u);
  EXPECT_EQ(orch.locks().stats().grants, 0u);
}

}  // namespace
}  // namespace jobmig::orch
