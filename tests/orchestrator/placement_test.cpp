#include "jobmig/orch/placement.hpp"

#include <gtest/gtest.h>

namespace jobmig::orch {
namespace {

using sim::TimePoint;

TEST(Placement, ReservesBestScoredSpare) {
  PlacementEngine pe;
  pe.add_spare("spare0");
  pe.add_spare("spare1");
  pe.add_spare("spare2");
  // spare0 carries background load, spare2 runs hot: spare1 wins.
  pe.set_load("spare0", 0.8);
  pe.observe_temperature("spare2", TimePoint::origin(), 64.0);
  EXPECT_GT(pe.score("spare1"), pe.score("spare0"));
  EXPECT_GT(pe.score("spare1"), pe.score("spare2"));
  auto host = pe.reserve();
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, "spare1");
  EXPECT_EQ(pe.free_count(), 2u);
}

TEST(Placement, TiesBreakByHostnameDeterministically) {
  PlacementEngine pe;
  pe.add_spare("spare1");
  pe.add_spare("spare0");
  auto host = pe.reserve();
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, "spare0");
}

TEST(Placement, ExcludeAndExhaustion) {
  PlacementEngine pe;
  pe.add_spare("spare0");
  EXPECT_EQ(pe.reserve("spare0"), std::nullopt);  // excluded
  auto host = pe.reserve();
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(pe.reserve(), std::nullopt);  // all reserved
  pe.restore("spare0");
  EXPECT_TRUE(pe.reserve().has_value());  // back in the pool
}

TEST(Placement, ConsumeRemovesFromPool) {
  PlacementEngine pe;
  pe.add_spare("spare0");
  pe.add_spare("spare1");
  auto host = pe.reserve();
  ASSERT_TRUE(host.has_value());
  pe.consume(*host);
  EXPECT_EQ(pe.pool_size(), 1u);
  EXPECT_FALSE(pe.has_spare(*host));
}

TEST(Placement, UnhealthySpareIsNeverReserved) {
  PlacementEngine pe;
  pe.add_spare("spare0");
  pe.add_spare("spare1");
  pe.mark_unhealthy("spare0");
  EXPECT_EQ(pe.score("spare0"), 0.0);
  auto host = pe.reserve();
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(*host, "spare1");
  EXPECT_EQ(pe.reserve(), std::nullopt);
  pe.mark_healthy("spare0");
  EXPECT_EQ(pe.reserve(), std::optional<std::string>("spare0"));
}

TEST(Placement, PredictorFlipsRampingSpareUnhealthy) {
  PlacementEngine pe;
  pe.add_spare("spare0");
  pe.add_spare("spare1");
  // Feed spare0 a steep thermal ramp: the predictor projects a breach
  // within its horizon and the spare drops out of the pool.
  for (int i = 0; i < 8; ++i) {
    const auto when = TimePoint::origin() + sim::Duration::sec(5 * i);
    pe.observe_temperature("spare0", when, 55.0 + 1.5 * i);
    pe.observe_temperature("spare1", when, 52.0);
  }
  EXPECT_EQ(pe.score("spare0"), 0.0);
  EXPECT_GT(pe.score("spare1"), 0.0);
  EXPECT_EQ(pe.reserve(), std::optional<std::string>("spare1"));
}

TEST(Placement, ScoreBlendsHealthAndLoad) {
  PlacementConfig cfg;
  cfg.health_weight = 0.5;
  cfg.load_weight = 0.5;
  PlacementEngine pe(cfg);
  pe.add_spare("spare0");
  EXPECT_DOUBLE_EQ(pe.score("spare0"), 1.0);  // cool and idle
  pe.set_load("spare0", 1.0);
  EXPECT_DOUBLE_EQ(pe.score("spare0"), 0.5);  // fully loaded, still cool
  EXPECT_EQ(pe.score("nonexistent"), 0.0);
}

}  // namespace
}  // namespace jobmig::orch
