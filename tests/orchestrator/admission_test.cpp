#include "jobmig/orch/admission.hpp"

#include <gtest/gtest.h>

#include "jobmig/sim/engine.hpp"

namespace jobmig::orch {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(Admission, CapBoundsConcurrency) {
  Engine engine;
  AdmissionController ctrl(2);
  int concurrent = 0, peak = 0;
  auto cycle = [](AdmissionController& c, int& cur, int& pk) -> Task {
    auto ticket = co_await c.admit(CyclePriority::kRebalance);
    ++cur;
    pk = std::max(pk, cur);
    co_await sim::sleep_for(1_s);
    --cur;
  };
  for (int i = 0; i < 5; ++i) engine.spawn(cycle(ctrl, concurrent, peak));
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(ctrl.stats().admitted, 5u);
  EXPECT_EQ(ctrl.stats().queued_total, 3u);
  EXPECT_EQ(ctrl.stats().peak_in_flight, 2u);
  EXPECT_EQ(ctrl.in_flight(), 0u);
}

TEST(Admission, EvacuationOvertakesQueuedMaintenance) {
  Engine engine;
  AdmissionController ctrl(1);
  std::vector<std::string> order;
  auto cycle = [](AdmissionController& c, CyclePriority p, std::string tag,
                  std::vector<std::string>& ord) -> Task {
    auto ticket = co_await c.admit(p);
    ord.push_back(std::move(tag));
    co_await sim::sleep_for(1_s);
  };
  engine.spawn(cycle(ctrl, CyclePriority::kMaintenance, "m0", order));
  engine.spawn(cycle(ctrl, CyclePriority::kMaintenance, "m1", order));
  engine.spawn(cycle(ctrl, CyclePriority::kMaintenance, "m2", order));
  engine.spawn(cycle(ctrl, CyclePriority::kEvacuation, "evac", order));
  engine.run();
  // m0 was already running; the evacuation jumps every queued drain.
  EXPECT_EQ(order, (std::vector<std::string>{"m0", "evac", "m1", "m2"}));
  EXPECT_GE(ctrl.stats().overtakes, 1u);
}

TEST(Admission, FifoWithinOnePriority) {
  Engine engine;
  AdmissionController ctrl(1);
  std::vector<int> order;
  auto cycle = [](AdmissionController& c, int tag, std::vector<int>& ord) -> Task {
    auto ticket = co_await c.admit(CyclePriority::kRebalance);
    ord.push_back(tag);
    co_await sim::sleep_for(1_s);
  };
  for (int i = 0; i < 4; ++i) engine.spawn(cycle(ctrl, i, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Admission, RaisingTheCapAdmitsQueuedWaiters) {
  Engine engine;
  AdmissionController ctrl(1);
  int concurrent = 0, peak = 0;
  auto cycle = [](AdmissionController& c, int& cur, int& pk) -> Task {
    auto ticket = co_await c.admit(CyclePriority::kRebalance);
    ++cur;
    pk = std::max(pk, cur);
    co_await sim::sleep_for(2_s);
    --cur;
  };
  auto raiser = [](AdmissionController& c) -> Task {
    co_await sim::sleep_for(500_ms);
    c.set_max_concurrent(3);
  };
  for (int i = 0; i < 3; ++i) engine.spawn(cycle(ctrl, concurrent, peak));
  engine.spawn(raiser(ctrl));
  engine.run();
  EXPECT_EQ(peak, 3);
}

TEST(Admission, TicketMoveAndIdempotentRelease) {
  Engine engine;
  AdmissionController ctrl(1);
  bool done = false;
  engine.spawn([](AdmissionController& c, bool& ok) -> Task {
    auto a = co_await c.admit(CyclePriority::kMaintenance);
    AdmissionController::Ticket b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from query is the point
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(c.in_flight(), 1u);
    b.release();
    EXPECT_EQ(c.in_flight(), 0u);
    b.release();  // idempotent
    ok = true;
  }(ctrl, done));
  engine.run();
  EXPECT_TRUE(done);
}

TEST(Admission, PriorityNames) {
  EXPECT_EQ(to_string(CyclePriority::kMaintenance), "maintenance");
  EXPECT_EQ(to_string(CyclePriority::kRebalance), "rebalance");
  EXPECT_EQ(to_string(CyclePriority::kEvacuation), "evacuation");
}

}  // namespace
}  // namespace jobmig::orch
