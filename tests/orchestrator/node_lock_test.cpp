#include "jobmig/orch/node_lock.hpp"

#include <gtest/gtest.h>

#include <map>

#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/rng.hpp"

namespace jobmig::orch {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(NodeSetLock, UncontendedAcquireGrantsImmediately) {
  Engine engine;
  NodeSetLockManager mgr;
  bool done = false;
  engine.spawn([](NodeSetLockManager& m, bool& ok) -> Task {
    // Hoisted: GCC 12 miscompiles initializer-list temporaries in awaited
    // full-expressions.
    std::vector<std::string> ns{"node0", "spare0"};
    auto lease = co_await m.acquire(std::move(ns));
    EXPECT_TRUE(lease.valid());
    EXPECT_EQ(lease.id(), 1u);
    EXPECT_TRUE(m.is_held("node0"));
    EXPECT_TRUE(m.is_held("spare0"));
    EXPECT_EQ(m.active_leases(), 1u);
    lease.release();
    EXPECT_FALSE(m.is_held("node0"));
    EXPECT_EQ(m.active_leases(), 0u);
    ok = true;
  }(mgr, done));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(mgr.stats().grants, 1u);
  EXPECT_EQ(mgr.stats().waits, 0u);
}

TEST(NodeSetLock, DisjointSetsHeldConcurrently) {
  Engine engine;
  NodeSetLockManager mgr;
  int concurrent = 0, peak = 0;
  auto holder = [](NodeSetLockManager& m, std::vector<std::string> nodes, int& cur,
                   int& pk) -> Task {
    auto lease = co_await m.acquire(std::move(nodes));
    ++cur;
    pk = std::max(pk, cur);
    co_await sim::sleep_for(1_s);
    --cur;
  };
  engine.spawn(holder(mgr, {"node0", "spare0"}, concurrent, peak));
  engine.spawn(holder(mgr, {"node1", "spare1"}, concurrent, peak));
  engine.spawn(holder(mgr, {"node2", "spare2"}, concurrent, peak));
  engine.run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(mgr.stats().waits, 0u);
  EXPECT_EQ(mgr.stats().peak_concurrent, 3u);
}

TEST(NodeSetLock, OverlappingSetsSerialize) {
  Engine engine;
  NodeSetLockManager mgr;
  int concurrent = 0, peak = 0;
  std::vector<int> order;
  auto holder = [](NodeSetLockManager& m, std::vector<std::string> nodes, int tag, int& cur,
                   int& pk, std::vector<int>& ord) -> Task {
    auto lease = co_await m.acquire(std::move(nodes));
    ord.push_back(tag);
    ++cur;
    pk = std::max(pk, cur);
    co_await sim::sleep_for(1_s);
    --cur;
  };
  // All three share "spare0": strictly one at a time, FIFO.
  engine.spawn(holder(mgr, {"node0", "spare0"}, 0, concurrent, peak, order));
  engine.spawn(holder(mgr, {"node1", "spare0"}, 1, concurrent, peak, order));
  engine.spawn(holder(mgr, {"node2", "spare0"}, 2, concurrent, peak, order));
  engine.run();
  EXPECT_EQ(peak, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(mgr.stats().waits, 2u);
}

TEST(NodeSetLock, HigherPriorityOvertakesQueuedWaiters) {
  Engine engine;
  NodeSetLockManager mgr;
  std::vector<int> order;
  auto holder = [](NodeSetLockManager& m, std::vector<std::string> nodes, int prio, int tag,
                   std::vector<int>& ord) -> Task {
    auto lease = co_await m.acquire(std::move(nodes), prio);
    ord.push_back(tag);
    co_await sim::sleep_for(1_s);
  };
  // tag 0 holds the node; tags 1 (low) and 2 (high) queue behind it in that
  // arrival order; the high-priority request must be served first.
  engine.spawn(holder(mgr, {"node0"}, 0, 0, order));
  engine.spawn(holder(mgr, {"node0"}, 0, 1, order));
  engine.spawn(holder(mgr, {"node0"}, 2, 2, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(NodeSetLock, BlockedHighPriorityShadowsItsNodes) {
  Engine engine;
  NodeSetLockManager mgr;
  std::vector<int> order;
  auto holder = [](NodeSetLockManager& m, std::vector<std::string> nodes, int prio, int tag,
                   std::vector<int>& ord) -> Task {
    auto lease = co_await m.acquire(std::move(nodes), prio);
    ord.push_back(tag);
    co_await sim::sleep_for(1_s);
  };
  // tag 0 holds node0. A high-priority request (tag 1) waits on
  // {node0,node1}; a later low-priority request (tag 2) wants node1 only —
  // node1 is technically free, but granting it could starve tag 1 forever,
  // so the shadow set forces tag 2 to wait its turn.
  engine.spawn(holder(mgr, {"node0"}, 0, 0, order));
  engine.spawn(holder(mgr, {"node0", "node1"}, 2, 1, order));
  engine.spawn(holder(mgr, {"node1"}, 0, 2, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(NodeSetLock, LowPriorityOnDisjointNodesIsNotHeldBack) {
  Engine engine;
  NodeSetLockManager mgr;
  std::vector<int> order;
  auto holder = [](NodeSetLockManager& m, std::vector<std::string> nodes, int prio, int tag,
                   std::vector<int>& ord) -> Task {
    auto lease = co_await m.acquire(std::move(nodes), prio);
    ord.push_back(tag);
    co_await sim::sleep_for(1_s);
  };
  // The high-priority waiter is blocked on node0, but tag 2's nodes are
  // disjoint from everything queued — it runs immediately.
  engine.spawn(holder(mgr, {"node0"}, 0, 0, order));
  engine.spawn(holder(mgr, {"node0"}, 2, 1, order));
  engine.spawn(holder(mgr, {"node5"}, 0, 2, order));
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(NodeSetLock, LeaseMoveTransfersOwnership) {
  Engine engine;
  NodeSetLockManager mgr;
  bool done = false;
  engine.spawn([](NodeSetLockManager& m, bool& ok) -> Task {
    std::vector<std::string> ns{"node0"};
    auto a = co_await m.acquire(std::move(ns));
    NodeSetLockManager::Lease b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from query is the point
    EXPECT_TRUE(b.valid());
    EXPECT_TRUE(m.is_held("node0"));
    b.release();
    EXPECT_FALSE(m.is_held("node0"));
    b.release();  // idempotent
    ok = true;
  }(mgr, done));
  engine.run();
  EXPECT_TRUE(done);
}

/// Randomized property: across >= 1000 random schedules of acquire /
/// hold / release on overlapping node sets, no two in-flight leases ever
/// share a node, and every request is eventually granted.
TEST(NodeSetLockProperty, RandomSchedulesNeverOverlapAndAlwaysComplete) {
  constexpr int kSchedules = 1000;
  sim::Xoshiro256 rng(0x5EED5EEDULL);
  for (int sched = 0; sched < kSchedules; ++sched) {
    Engine engine;
    NodeSetLockManager mgr;
    const int num_nodes = 4 + static_cast<int>(rng.below(8));   // 4..11
    const int num_tasks = 3 + static_cast<int>(rng.below(10));  // 3..12
    std::map<std::string, int> holders;  // node -> current lease count
    int completed = 0;
    bool overlap = false;

    auto worker = [](NodeSetLockManager& m, std::vector<std::string> nodes, int prio,
                     sim::Duration start_delay, sim::Duration hold,
                     std::map<std::string, int>& held, int& fin, bool& bad) -> Task {
      co_await sim::sleep_for(start_delay);
      auto lease = co_await m.acquire(nodes, prio);
      for (const auto& n : nodes) {
        if (++held[n] > 1) bad = true;
      }
      co_await sim::sleep_for(hold);
      for (const auto& n : nodes) --held[n];
      ++fin;
    };

    for (int t = 0; t < num_tasks; ++t) {
      const int set_size = 1 + static_cast<int>(rng.below(3));  // 1..3 nodes
      std::vector<std::string> nodes;
      for (int k = 0; k < set_size; ++k) {
        std::string n = "n" + std::to_string(rng.below(static_cast<std::uint64_t>(num_nodes)));
        if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) nodes.push_back(std::move(n));
      }
      const int prio = static_cast<int>(rng.below(3));
      const auto delay = sim::Duration::ms(static_cast<std::int64_t>(rng.below(50)));
      const auto hold = sim::Duration::ms(1 + static_cast<std::int64_t>(rng.below(100)));
      engine.spawn(worker(mgr, std::move(nodes), prio, delay, hold, holders, completed, overlap));
    }
    engine.run();

    ASSERT_FALSE(overlap) << "two leases shared a node in schedule " << sched;
    ASSERT_EQ(completed, num_tasks) << "a request starved in schedule " << sched;
    ASSERT_EQ(mgr.active_leases(), 0u);
    ASSERT_EQ(mgr.pending_count(), 0u);
    for (const auto& [node, count] : holders) ASSERT_EQ(count, 0) << node;
  }
}

}  // namespace
}  // namespace jobmig::orch
