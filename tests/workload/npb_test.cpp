#include "jobmig/workload/npb.hpp"

#include <gtest/gtest.h>

#include "jobmig/cluster/cluster.hpp"

namespace jobmig::workload {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(Grid2D, FactorsProcessCounts) {
  auto g64 = Grid2D::for_procs(64);
  EXPECT_EQ(g64.px, 8);
  EXPECT_EQ(g64.py, 8);
  auto g6 = Grid2D::for_procs(6);
  EXPECT_EQ(g6.px, 2);
  EXPECT_EQ(g6.py, 3);
  auto g7 = Grid2D::for_procs(7);  // prime: degenerate 1x7
  EXPECT_EQ(g7.px, 1);
  EXPECT_EQ(g7.py, 7);
  auto g1 = Grid2D::for_procs(1);
  EXPECT_EQ(g1.px * g1.py, 1);
}

TEST(Grid2D, PeriodicNeighborsWrap) {
  auto g = Grid2D::for_procs(16);  // 4x4
  EXPECT_EQ(g.rank_at(-1, 0), 3);
  EXPECT_EQ(g.rank_at(4, 0), 0);
  EXPECT_EQ(g.rank_at(0, -1), 12);
  EXPECT_EQ(g.rank_at(1, 2), 9);
  EXPECT_EQ(g.x_of(9), 1);
  EXPECT_EQ(g.y_of(9), 2);
}

TEST(KernelSpec, CalibratedAgainstTableOne) {
  // Table I at 64 ranks: LU 1363.2 MB, BT 2470.4 MB, SP 2425.6 MB total.
  for (auto [app, total_mb] : {std::pair{NpbApp::kLU, 1363.2},
                               std::pair{NpbApp::kBT, 2470.4},
                               std::pair{NpbApp::kSP, 2425.6}}) {
    auto spec = make_spec(app, NpbClass::kC, 64);
    const double total = static_cast<double>(spec.image_bytes_per_rank) * 64 / 1e6;
    EXPECT_NEAR(total, total_mb, total_mb * 0.15) << to_string(app);
  }
}

TEST(KernelSpec, BaseRuntimesMatchFigureFive) {
  // Fig. 5 no-migration runtimes (approximate targets; see EXPERIMENTS.md).
  for (auto [app, seconds] : {std::pair{NpbApp::kLU, 162.0},
                              std::pair{NpbApp::kBT, 167.0},
                              std::pair{NpbApp::kSP, 230.0}}) {
    auto spec = make_spec(app, NpbClass::kC, 64);
    const double compute = spec.time_per_iter.to_seconds() * spec.iterations;
    EXPECT_NEAR(compute, seconds, seconds * 0.05) << to_string(app);
  }
}

TEST(KernelSpec, ImagesGrowPerRankWhenScalingDown) {
  // Fixed problem, fewer ranks -> bigger per-rank images (Fig. 6's regime).
  auto s8 = make_spec(NpbApp::kLU, NpbClass::kC, 8);
  auto s64 = make_spec(NpbApp::kLU, NpbClass::kC, 64);
  EXPECT_GT(s8.image_bytes_per_rank, 3 * s64.image_bytes_per_rank);
  // ...but per-node totals stay the same order of magnitude.
  EXPECT_LT(s8.image_bytes_per_rank * 1, s64.image_bytes_per_rank * 10);
}

TEST(KernelSpec, RuntimeScaleOnlyChangesIterations) {
  auto full = make_spec(NpbApp::kBT, NpbClass::kC, 64, 1.0);
  auto tenth = make_spec(NpbApp::kBT, NpbClass::kC, 64, 0.1);
  EXPECT_EQ(full.image_bytes_per_rank, tenth.image_bytes_per_rank);
  EXPECT_EQ(full.time_per_iter, tenth.time_per_iter);
  EXPECT_NEAR(static_cast<double>(full.iterations) / tenth.iterations, 10.0, 1.0);
}

TEST(KernelSpec, Names) {
  EXPECT_EQ(make_spec(NpbApp::kLU, NpbClass::kC, 64).name(), "LU.C.64");
  EXPECT_EQ(make_spec(NpbApp::kSP, NpbClass::kA, 16).name(), "SP.A.16");
  EXPECT_EQ(make_spec(NpbApp::kBT, NpbClass::kTest, 4).name(), "BT.T.4");
}

TEST(Progress, EncodeDecodeRoundTrip) {
  Progress p;
  p.next_iteration = 123;
  Progress q = Progress::decode_or_fresh(p.encode());
  EXPECT_EQ(q.next_iteration, 123u);
  // Garbage or empty state yields a fresh start.
  EXPECT_EQ(Progress::decode_or_fresh({}).next_iteration, 0u);
  sim::Bytes junk(8, std::byte{0x55});
  EXPECT_EQ(Progress::decode_or_fresh(junk).next_iteration, 0u);
}

/// The kernels must run to completion on a real cluster rig and leave the
/// expected progress record in every image.
class KernelRun : public ::testing::TestWithParam<NpbApp> {};

TEST_P(KernelRun, CompletesAndRecordsProgress) {
  Engine engine;
  cluster::ClusterConfig cfg;
  cfg.compute_nodes = 2;
  cfg.spare_nodes = 0;
  cluster::Cluster cl(engine, cfg);
  auto spec = make_spec(GetParam(), NpbClass::kTest, 4, 0.1);
  cl.create_job(2, spec.image_bytes_per_rank);
  engine.spawn([](cluster::Cluster& c, KernelSpec s) -> Task {
    co_await c.start(make_app(s));
  }(cl, spec));
  engine.run_until(sim::TimePoint::origin() + 300_s);

  ASSERT_TRUE(cl.job().app_done()) << spec.name();
  for (int r = 0; r < 4; ++r) {
    auto progress = Progress::decode_or_fresh(cl.job().proc(r).sim_process().app_state());
    EXPECT_EQ(progress.next_iteration, static_cast<std::uint32_t>(spec.iterations));
    EXPECT_GT(cl.job().proc(r).sim_process().image().dirty_pages(), 0u);
  }
  EXPECT_GT(cl.job().total_messages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllApps, KernelRun,
                         ::testing::Values(NpbApp::kLU, NpbApp::kBT, NpbApp::kSP),
                         [](const auto& param_info) { return to_string(param_info.param); });

}  // namespace
}  // namespace jobmig::workload
