#include "jobmig/net/network.hpp"

#include <gtest/gtest.h>

#include <string>

namespace jobmig::net {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes to_bytes(const std::string& s) {
  Bytes b;
  for (char c : s) b.push_back(static_cast<std::byte>(c));
  return b;
}

std::string to_string_bytes(const Bytes& b) {
  std::string s;
  for (std::byte x : b) s.push_back(static_cast<char>(x));
  return s;
}

struct NetFixture {
  Engine engine;
  Network net{engine};
  Host& a{net.add_host("a")};
  Host& b{net.add_host("b")};
};

TEST(Network, SuggestedLookaheadIsWireLatency) {
  Engine e;
  sim::EthParams params;
  params.latency = sim::Duration::us(60);
  Network n(e, params);
  EXPECT_EQ(n.suggested_lookahead().count_ns(), params.latency.count_ns());
}

TEST(Network, ConnectAcceptExchange) {
  NetFixture f;
  std::string got_at_b, got_at_a;
  f.engine.spawn([](NetFixture& ff, std::string& out) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream = co_await listener->accept();
    JOBMIG_ASSERT(stream != nullptr);
    auto msg = co_await stream->recv_frame();
    JOBMIG_ASSERT(msg.has_value());
    out = to_string_bytes(*msg);
    co_await stream->send_frame(to_bytes("pong"));
  }(f, got_at_b));
  f.engine.spawn([](NetFixture& ff, std::string& out) -> Task {
    co_await sim::sleep_for(1_ms);
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    JOBMIG_ASSERT(stream != nullptr);
    co_await stream->send_frame(to_bytes("ping"));
    auto reply = co_await stream->recv_frame();
    JOBMIG_ASSERT(reply.has_value());
    out = to_string_bytes(*reply);
  }(f, got_at_a));
  f.engine.run();
  EXPECT_EQ(got_at_b, "ping");
  EXPECT_EQ(got_at_a, "pong");
}

TEST(Network, ConnectionRefusedWithoutListener) {
  NetFixture f;
  bool refused = false;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto stream = co_await ff.a.connect(ff.b.id(), 9999);
    out = (stream == nullptr);
  }(f, refused));
  f.engine.run();
  EXPECT_TRUE(refused);
}

TEST(Network, ConnectToUnknownHostFails) {
  NetFixture f;
  bool failed = false;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto stream = co_await ff.a.connect(77, 5000);
    out = (stream == nullptr);
  }(f, failed));
  f.engine.run();
  EXPECT_TRUE(failed);
}

TEST(Network, OfflineHostRefusesConnections) {
  NetFixture f;
  bool refused = false;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto listener = ff.b.listen(5000);
    ff.b.set_online(false);
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    out = (stream == nullptr);
  }(f, refused));
  f.engine.run();
  EXPECT_TRUE(refused);
}

TEST(Network, StreamSemanticsPreserveByteOrderAcrossPartialReads) {
  NetFixture f;
  std::string reassembled;
  f.engine.spawn([](NetFixture& ff, std::string& out) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream = co_await listener->accept();
    while (true) {
      Bytes chunk = co_await stream->recv_some(3);  // deliberately tiny reads
      if (chunk.empty()) break;
      out += to_string_bytes(chunk);
    }
  }(f, reassembled));
  f.engine.spawn([](NetFixture& ff) -> Task {
    co_await sim::sleep_for(1_ms);
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    co_await stream->send(to_bytes("hello "));
    co_await stream->send(to_bytes("stream "));
    co_await stream->send(to_bytes("world"));
    stream->close();
  }(f));
  f.engine.run();
  EXPECT_EQ(reassembled, "hello stream world");
}

TEST(Network, RecvExactFailsOnEarlyClose) {
  NetFixture f;
  bool ok = true;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream = co_await listener->accept();
    Bytes buf(100);
    out = co_await stream->recv_exact(buf);
  }(f, ok));
  f.engine.spawn([](NetFixture& ff) -> Task {
    co_await sim::sleep_for(1_ms);
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    co_await stream->send(to_bytes("only 13 bytes"));
    stream->close();
  }(f));
  f.engine.run();
  EXPECT_FALSE(ok);
}

TEST(Network, GigabitBandwidthGoverneTransferTime) {
  NetFixture f;
  double elapsed = -1.0;
  f.engine.spawn([](NetFixture& ff, double& out) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream = co_await listener->accept();
    Bytes buf(11'200'000);
    const double start = Engine::current()->now().to_seconds();
    bool ok = co_await stream->recv_exact(buf);
    JOBMIG_ASSERT(ok);
    out = Engine::current()->now().to_seconds() - start;
  }(f, elapsed));
  f.engine.spawn([](NetFixture& ff) -> Task {
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    Bytes payload(11'200'000);  // 11.2 MB at 112 MB/s -> ~0.1 s
    co_await stream->send(payload);
  }(f));
  f.engine.run();
  EXPECT_NEAR(elapsed, 0.1, 0.01);
}

TEST(Network, ListenerCloseUnblocksAccept) {
  NetFixture f;
  bool got_null = false;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto listener = ff.b.listen(5000);
    ff.net.engine().call_in(5_ms, [l = listener.get()] { l->close(); });
    auto stream = co_await listener->accept();
    out = (stream == nullptr);
  }(f, got_null));
  f.engine.run();
  EXPECT_TRUE(got_null);
}

TEST(Network, PortRebindAfterListenerClose) {
  NetFixture f;
  f.engine.spawn([](NetFixture& ff) -> Task {
    {
      auto l1 = ff.b.listen(5000);
      EXPECT_THROW((void)ff.b.listen(5000), ContractViolation);
    }
    auto l2 = ff.b.listen(5000);  // rebinding after close succeeds
    EXPECT_EQ(l2->port(), 5000);
    co_return;
  }(f));
  f.engine.run();
}

TEST(Network, FrameRoundTripEmptyPayload) {
  NetFixture f;
  bool got_empty = false;
  f.engine.spawn([](NetFixture& ff, bool& out) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream = co_await listener->accept();
    auto msg = co_await stream->recv_frame();
    out = msg.has_value() && msg->empty();
  }(f, got_empty));
  f.engine.spawn([](NetFixture& ff) -> Task {
    co_await sim::sleep_for(1_ms);
    auto stream = co_await ff.a.connect(ff.b.id(), 5000);
    co_await stream->send_frame({});
    co_await sim::sleep_for(100_ms);  // keep endpoint alive until delivery
  }(f));
  f.engine.run();
  EXPECT_TRUE(got_empty);
}

TEST(Network, BytesAccounting) {
  NetFixture f;
  f.engine.spawn([](NetFixture& ff) -> Task {
    auto listener = ff.b.listen(5000);
    auto stream_a = co_await ff.a.connect(ff.b.id(), 5000);
    auto stream_b = co_await listener->accept();
    co_await stream_a->send(Bytes(1000));
    Bytes buf(1000);
    bool ok = co_await stream_b->recv_exact(buf);
    JOBMIG_ASSERT(ok);
  }(f));
  f.engine.run();
  EXPECT_EQ(f.b.bytes_in(), 1000u);
  EXPECT_EQ(f.net.total_bytes(), 1000u);
}

}  // namespace
}  // namespace jobmig::net
