#include "jobmig/launch/launch.hpp"

#include <gtest/gtest.h>

namespace jobmig::launch {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(SpawnTree, KaryStructure) {
  SpawnTree t(13, 3);
  EXPECT_FALSE(t.parent(0).has_value());
  EXPECT_EQ(t.parent(1), 0u);
  EXPECT_EQ(t.parent(3), 0u);
  EXPECT_EQ(t.parent(4), 1u);
  EXPECT_EQ(t.children(0), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_EQ(t.children(1), (std::vector<std::size_t>{4, 5, 6}));
  EXPECT_EQ(t.depth_of(0), 0u);
  EXPECT_EQ(t.depth_of(4), 2u);
  EXPECT_EQ(t.depth(), 2u);
}

TEST(SpawnTree, UnaryTreeIsAChain) {
  SpawnTree t(4, 1);
  EXPECT_EQ(t.depth(), 3u);
  EXPECT_EQ(t.parent(3), 2u);
}

TEST(SpawnTree, ReplaceNodeRewiresChildrenAndParent) {
  SpawnTree t(13, 3);
  // Node 1 (children 4,5,6) fails; spare node 12 takes over.
  t.replace_node(1, 12);
  EXPECT_EQ(t.parent(12), 0u);
  EXPECT_EQ(t.parent(4), 12u);
  EXPECT_EQ(t.parent(5), 12u);
  EXPECT_EQ(t.parent(6), 12u);
  EXPECT_EQ(t.parent(1), 12u);  // failed node parked, tree stays connected
  EXPECT_EQ(t.children(12), (std::vector<std::size_t>{1, 4, 5, 6}));
}

TEST(SpawnTree, ReplaceLeafNode) {
  SpawnTree t(6, 2);
  t.replace_node(4, 5);
  EXPECT_EQ(t.parent(5), 1u);  // node 4's parent was node 1
  EXPECT_EQ(t.parent(4), 5u);
}

struct LaunchRig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  std::vector<std::unique_ptr<storage::LocalFs>> disks;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs;
  std::vector<std::unique_ptr<ftb::FtbAgent>> agents;
  std::vector<mpr::NodeEnv> envs;
  std::vector<std::unique_ptr<NodeLaunchAgent>> nlas;
  net::Host* login_host;
  std::unique_ptr<ftb::FtbAgent> login_agent;

  explicit LaunchRig(int nodes, int spares) {
    login_host = &net.add_host("login");
    login_agent = std::make_unique<ftb::FtbAgent>(*login_host);
    login_agent->start();
    for (int n = 0; n < nodes + spares; ++n) {
      const std::string name =
          n < nodes ? "node" + std::to_string(n) : "spare" + std::to_string(n - nodes);
      auto& hca = fabric.add_node(name);
      auto& host = net.add_host(name);
      disks.push_back(std::make_unique<storage::LocalFs>(engine, cal.disk));
      blcrs.push_back(std::make_unique<proc::Blcr>(engine, cal.blcr));
      auto agent = std::make_unique<ftb::FtbAgent>(host);
      agent->set_ancestors({{login_host->id(), ftb::FtbAgent::kDefaultPort}});
      agent->start();
      agents.push_back(std::move(agent));
      mpr::NodeEnv env;
      env.engine = &engine;
      env.hca = &hca;
      env.eth_host = host.id();
      env.scratch = disks.back().get();
      env.blcr = blcrs.back().get();
      env.cal = &cal;
      env.hostname = name;
      envs.push_back(env);
    }
    for (int n = 0; n < nodes + spares; ++n) {
      nlas.push_back(std::make_unique<NodeLaunchAgent>(
          envs[static_cast<std::size_t>(n)], *agents[static_cast<std::size_t>(n)],
          n < nodes ? NlaState::kReady : NlaState::kSpare));
    }
  }
};

TEST(JobManager, RegistersNlasAndFindsSpare) {
  LaunchRig rig(3, 2);
  JobManager jm(rig.engine, *rig.login_agent);
  for (auto& nla : rig.nlas) jm.register_nla(*nla);
  EXPECT_EQ(jm.nla_count(), 5u);
  NodeLaunchAgent* spare = jm.find_spare();
  ASSERT_NE(spare, nullptr);
  EXPECT_EQ(spare->hostname(), "spare0");
  EXPECT_EQ(spare->state(), NlaState::kSpare);
  EXPECT_EQ(jm.nla_for_host("node2")->hostname(), "node2");
  EXPECT_EQ(jm.nla_for_host("absent"), nullptr);
}

TEST(JobManager, LaunchChargesTreeDepthAndAssignsRanks) {
  LaunchRig rig(4, 1);
  JobManager jm(rig.engine, *rig.login_agent, /*fanout=*/2);
  for (auto& nla : rig.nlas) jm.register_nla(*nla);
  mpr::Job job(rig.engine, rig.cal);
  for (int r = 0; r < 8; ++r) {
    job.add_proc(r, rig.envs[static_cast<std::size_t>(r / 2)], 4096, 1);
  }
  double elapsed = -1.0;
  rig.engine.spawn([](JobManager& jmr, mpr::Job& j, double& out) -> Task {
    const double start = Engine::current()->now().to_seconds();
    co_await jmr.launch(j);
    out = Engine::current()->now().to_seconds() - start;
  }(jm, job, elapsed));
  rig.engine.run_until(sim::TimePoint::origin() + 5_s);
  EXPECT_GT(elapsed, 0.0);
  EXPECT_EQ(jm.nla_for_host("node0")->local_ranks(), (std::vector<int>{0, 1}));
  EXPECT_EQ(jm.nla_for_host("node3")->local_ranks(), (std::vector<int>{6, 7}));
  EXPECT_TRUE(jm.nla_for_host("spare0")->local_ranks().empty());
}

TEST(JobManager, AdoptMigrationFlipsStatesAndMovesRanks) {
  LaunchRig rig(3, 1);
  JobManager jm(rig.engine, *rig.login_agent);
  for (auto& nla : rig.nlas) jm.register_nla(*nla);
  NodeLaunchAgent& source = *jm.nla_for_host("node1");
  NodeLaunchAgent& target = *jm.nla_for_host("spare0");
  source.assign_rank(2);
  source.assign_rank(3);

  jm.adopt_migration(source, target, {2, 3});

  EXPECT_EQ(source.state(), NlaState::kInactive);
  EXPECT_EQ(target.state(), NlaState::kReady);
  EXPECT_TRUE(source.local_ranks().empty());
  EXPECT_EQ(target.local_ranks(), (std::vector<int>{2, 3}));
  EXPECT_EQ(jm.find_spare(), nullptr);  // the only spare is consumed
}

TEST(JobManager, AdoptMigrationRequiresSpareTarget) {
  LaunchRig rig(2, 1);
  JobManager jm(rig.engine, *rig.login_agent);
  for (auto& nla : rig.nlas) jm.register_nla(*nla);
  NodeLaunchAgent& a = *jm.nla_for_host("node0");
  NodeLaunchAgent& b = *jm.nla_for_host("node1");
  EXPECT_THROW(jm.adopt_migration(a, b, {0}), ContractViolation);
}

TEST(NlaState, Names) {
  EXPECT_EQ(to_string(NlaState::kReady), "MIGRATION_READY");
  EXPECT_EQ(to_string(NlaState::kSpare), "MIGRATION_SPARE");
  EXPECT_EQ(to_string(NlaState::kInactive), "MIGRATION_INACTIVE");
}

}  // namespace
}  // namespace jobmig::launch
