#include <gtest/gtest.h>

#include "jobmig/mpr/job.hpp"

namespace jobmig::mpr {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

struct Rig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  storage::LocalFs disk{engine, cal.disk};
  proc::Blcr blcr{engine, cal.blcr};
  NodeEnv env;
  Job job{engine, cal};

  Rig() {
    env.engine = &engine;
    env.hca = &fabric.add_node("n0");
    env.eth_host = net.add_host("n0").id();
    env.scratch = &disk;
    env.blcr = &blcr;
    env.cal = &cal;
    env.hostname = "n0";
    job.add_proc(0, env, 4096, 1);
    job.add_proc(1, env, 4096, 2);
  }
};

TEST(ProcStateMachine, DrainRequiresParked) {
  Rig rig;
  bool threw = false;
  rig.engine.spawn([](Job& job, bool& out) -> Task {
    try {
      co_await job.proc(0).drain_and_teardown();  // still kRunning
    } catch (const ContractViolation&) {
      out = true;
    }
  }(rig.job, threw));
  rig.engine.run();
  EXPECT_TRUE(threw);
}

TEST(ProcStateMachine, RebuildRequiresSuspended) {
  Rig rig;
  bool threw = false;
  rig.engine.spawn([](Job& job, bool& out) -> Task {
    try {
      co_await job.proc(0).rebuild_and_resume();  // still kRunning
    } catch (const ContractViolation&) {
      out = true;
    }
  }(rig.job, threw));
  rig.engine.run();
  EXPECT_TRUE(threw);
}

TEST(ProcStateMachine, OpsOnDeadProcThrowImmediately) {
  Rig rig;
  int caught = 0;
  rig.engine.spawn([](Job& job, int& out) -> Task {
    job.proc(0).kill();
    try {
      co_await job.proc(0).send(1, 1, sim::Bytes(8));
    } catch (const ProcKilled&) {
      ++out;
    }
    try {
      (void)co_await job.proc(0).recv(1, 1);
    } catch (const ProcKilled&) {
      ++out;
    }
    try {
      co_await job.proc(0).compute(1_ms, 0);
    } catch (const ProcKilled&) {
      ++out;
    }
    try {
      co_await job.proc(0).check_suspend();
    } catch (const ProcKilled&) {
      ++out;
    }
  }(rig.job, caught));
  rig.engine.run();
  EXPECT_EQ(caught, 4);
}

TEST(ProcStateMachine, AdoptRejectsWrongRank) {
  Rig rig;
  auto image = std::make_unique<proc::SimProcess>(proc::ProcessIdentity{9, 1, "x"}, 4096, 1);
  EXPECT_THROW(rig.job.proc(0).adopt_sim_process(std::move(image)), ContractViolation);
}

TEST(ProcStateMachine, ReplaceProcRequiresDeadPredecessor) {
  Rig rig;
  auto fresh = rig.job.make_unwired_proc(0, rig.env);
  EXPECT_THROW(rig.job.replace_proc(0, std::move(fresh)), ContractViolation);
}

TEST(ProcStateMachine, DensityOfRankIdsEnforced) {
  Rig rig;
  EXPECT_THROW(rig.job.add_proc(5, rig.env, 4096, 1), ContractViolation);  // gap
}

TEST(ProcStateMachine, KillIsIdempotent) {
  Rig rig;
  rig.engine.spawn([](Job& job) -> Task {
    job.proc(0).kill();
    job.proc(0).kill();
    EXPECT_EQ(job.proc(0).state(), ProcState::kDead);
    co_return;
  }(rig.job));
  rig.engine.run();
}

}  // namespace
}  // namespace jobmig::mpr
