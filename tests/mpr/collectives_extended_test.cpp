#include <gtest/gtest.h>

#include "jobmig/mpr/job.hpp"

namespace jobmig::mpr {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

struct Rig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  std::vector<std::unique_ptr<storage::LocalFs>> disks;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs;
  std::vector<NodeEnv> envs;
  Job job{engine, cal};

  Rig(int nodes, int ppn) {
    for (int n = 0; n < nodes; ++n) {
      // Built via append: "n" + std::to_string(n) trips a GCC 12 -Wrestrict
      // false positive (PR105651) when the insert path gets inlined here.
      std::string name("n");
      name += std::to_string(n);
      auto& hca = fabric.add_node(name);
      auto& host = net.add_host(name);
      disks.push_back(std::make_unique<storage::LocalFs>(engine, cal.disk));
      blcrs.push_back(std::make_unique<proc::Blcr>(engine, cal.blcr));
      NodeEnv env;
      env.engine = &engine;
      env.hca = &hca;
      env.eth_host = host.id();
      env.scratch = disks.back().get();
      env.blcr = blcrs.back().get();
      env.cal = &cal;
      env.hostname = name;
      envs.push_back(env);
    }
    for (int r = 0; r < nodes * ppn; ++r) {
      job.add_proc(r, envs[static_cast<std::size_t>(r / ppn)], 16 * 1024,
                   static_cast<std::uint64_t>(r));
    }
  }
};

TEST(CollectivesExt, ReduceSumArrivesAtNonzeroRoot) {
  Rig rig(2, 3);  // 6 ranks
  std::vector<double> results(6, -1.0);
  for (int r = 0; r < 6; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<double>& out) -> Task {
      out[static_cast<std::size_t>(rank)] =
          co_await job.proc(rank).reduce_sum(4, static_cast<double>(rank + 1));
    }(rig.job, r, results));
  }
  rig.engine.run();
  EXPECT_DOUBLE_EQ(results[4], 21.0);  // only the root's value is specified
}

TEST(CollectivesExt, GatherCollectsInRankOrderAtRoot) {
  Rig rig(3, 1);
  std::vector<std::vector<Bytes>> results(3);
  for (int r = 0; r < 3; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<std::vector<Bytes>>& out) -> Task {
      out[static_cast<std::size_t>(rank)] =
          co_await job.proc(rank).gather(1, patterned(50 + static_cast<std::size_t>(rank), static_cast<std::uint64_t>(rank)));
    }(rig.job, r, results));
  }
  rig.engine.run();
  ASSERT_EQ(results[1].size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(results[1][static_cast<std::size_t>(s)],
              patterned(50 + static_cast<std::size_t>(s), static_cast<std::uint64_t>(s)));
  }
  EXPECT_TRUE(results[0].empty());
  EXPECT_TRUE(results[2].empty());
}

TEST(CollectivesExt, ScatterDeliversPerRankBlocks) {
  Rig rig(2, 2);  // 4 ranks, root 2
  std::vector<Bytes> got(4);
  for (int r = 0; r < 4; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<Bytes>& out) -> Task {
      std::vector<Bytes> blocks;
      if (rank == 2) {
        for (int d = 0; d < 4; ++d) blocks.push_back(patterned(30, 100 + static_cast<std::uint64_t>(d)));
      }
      out[static_cast<std::size_t>(rank)] = co_await job.proc(rank).scatter(2, blocks);
    }(rig.job, r, got));
  }
  rig.engine.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], patterned(30, 100 + static_cast<std::uint64_t>(r))) << r;
  }
}

TEST(CollectivesExt, AlltoallExchangesPersonalizedBlocks) {
  Rig rig(5, 1);
  std::vector<std::vector<Bytes>> got(5);
  for (int r = 0; r < 5; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<std::vector<Bytes>>& out) -> Task {
      std::vector<Bytes> to_each;
      for (int d = 0; d < 5; ++d) {
        to_each.push_back(patterned(20, static_cast<std::uint64_t>(rank * 10 + d)));
      }
      out[static_cast<std::size_t>(rank)] = co_await job.proc(rank).alltoall(to_each);
    }(rig.job, r, got));
  }
  rig.engine.run();
  for (int r = 0; r < 5; ++r) {
    ASSERT_EQ(got[static_cast<std::size_t>(r)].size(), 5u);
    for (int s = 0; s < 5; ++s) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                patterned(20, static_cast<std::uint64_t>(s * 10 + r)))
          << "rank " << r << " from " << s;
    }
  }
}

TEST(CollectivesExt, SendrecvPairwiseExchangeNoDeadlock) {
  Rig rig(2, 1);
  std::vector<Bytes> got(2);
  for (int r = 0; r < 2; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<Bytes>& out) -> Task {
      const int peer = 1 - rank;
      out[static_cast<std::size_t>(rank)] = co_await job.proc(rank).sendrecv(
          peer, peer, 9, patterned(100'000, static_cast<std::uint64_t>(rank)));  // rendezvous-sized
    }(rig.job, r, got));
  }
  rig.engine.run();
  EXPECT_EQ(got[0], patterned(100'000, 1));
  EXPECT_EQ(got[1], patterned(100'000, 0));
}

TEST(CollectivesExt, NonblockingSendRecvOverlap) {
  Rig rig(2, 1);
  bool ok = false;
  rig.engine.spawn([](Job& job, bool& out) -> Task {
    // Rank 0 posts two isends and an irecv before any completion.
    auto s1 = job.proc(0).isend(1, 1, patterned(500, 1));
    auto s2 = job.proc(0).isend(1, 2, patterned(600, 2));
    auto r0 = job.proc(0).irecv(1, 3);
    // Rank 1 mirrors.
    auto r1 = job.proc(1).irecv(0, 1);
    auto r2 = job.proc(1).irecv(0, 2);
    auto s3 = job.proc(1).isend(0, 3, patterned(700, 3));
    (void)co_await s1->wait();
    (void)co_await s2->wait();
    (void)co_await s3->wait();
    Bytes b1 = co_await r1->wait();
    Bytes b2 = co_await r2->wait();
    Bytes b0 = co_await r0->wait();
    out = b1 == patterned(500, 1) && b2 == patterned(600, 2) && b0 == patterned(700, 3);
    JOBMIG_ASSERT(r1->done() && r2->done() && r0->done());
  }(rig.job, ok));
  rig.engine.run();
  EXPECT_TRUE(ok);
}

TEST(CollectivesExt, NonblockingRecvSurfacesProcKilled) {
  Rig rig(2, 1);
  bool threw = false;
  rig.engine.spawn([](Job& job, bool& out) -> Task {
    auto r = job.proc(1).irecv(0, 77);  // never satisfied
    co_await sim::sleep_for(5_ms);
    job.proc(1).kill();
    try {
      (void)co_await r->wait();
    } catch (const ProcKilled&) {
      out = true;
    }
  }(rig.job, threw));
  rig.engine.run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace jobmig::mpr
