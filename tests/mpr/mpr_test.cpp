#include "jobmig/mpr/job.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace jobmig::mpr {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

/// Minimal multi-node rig: one NodeEnv per node, `ppn` ranks per node.
struct Rig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  std::vector<std::unique_ptr<storage::LocalFs>> disks;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs;
  std::vector<NodeEnv> envs;
  Job job{engine, cal};

  explicit Rig(int nodes, int ppn, std::uint64_t image_bytes = 256 * 1024) {
    envs.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      auto& hca = fabric.add_node("node" + std::to_string(n));
      auto& host = net.add_host("node" + std::to_string(n));
      disks.push_back(std::make_unique<storage::LocalFs>(engine, cal.disk));
      blcrs.push_back(std::make_unique<proc::Blcr>(engine, cal.blcr));
      NodeEnv env;
      env.engine = &engine;
      env.hca = &hca;
      env.eth_host = host.id();
      env.scratch = disks.back().get();
      env.blcr = blcrs.back().get();
      env.cal = &cal;
      env.hostname = "node" + std::to_string(n);
      envs.push_back(env);
    }
    for (int r = 0; r < nodes * ppn; ++r) {
      job.add_proc(r, envs[static_cast<std::size_t>(r / ppn)], image_bytes,
                   0xABCD0000u + static_cast<std::uint64_t>(r));
    }
  }
};

TEST(Mpr, EagerSendRecvRoundTrip) {
  Rig rig(2, 1);
  Bytes received;
  rig.engine.spawn([](Job& job, Bytes& out) -> Task {
    out = co_await job.proc(1).recv(0, 7);
  }(rig.job, received));
  rig.engine.spawn([](Job& job) -> Task {
    co_await job.proc(0).send(1, 7, patterned(1024, 3));
  }(rig.job));
  rig.engine.run();
  EXPECT_EQ(received, patterned(1024, 3));
  EXPECT_EQ(rig.job.total_messages(), 1u);
}

TEST(Mpr, RendezvousLargeMessageRoundTrip) {
  Rig rig(2, 1);
  Bytes received;
  const std::size_t kLen = 2'000'000;  // far above the 8 KiB eager threshold
  rig.engine.spawn([](Job& job, Bytes& out, std::size_t n) -> Task {
    out = co_await job.proc(1).recv(0, 9);
    JOBMIG_ASSERT(out.size() == n);
  }(rig.job, received, kLen));
  rig.engine.spawn([](Job& job, std::size_t n) -> Task {
    co_await job.proc(0).send(1, 9, patterned(n, 5));
  }(rig.job, kLen));
  rig.engine.run();
  EXPECT_EQ(received, patterned(kLen, 5));
  // Sender-side MR must be released after the pull completes.
  EXPECT_EQ(rig.envs[0].hca->mr_count(), 0u);
  EXPECT_EQ(rig.envs[1].hca->mr_count(), 0u);
}

TEST(Mpr, UnexpectedEagerMessageIsMatchedLater) {
  Rig rig(2, 1);
  Bytes received;
  rig.engine.spawn([](Job& job) -> Task {
    co_await job.proc(0).send(1, 1, patterned(100, 1));
  }(rig.job));
  rig.engine.spawn([](Job& job, Bytes& out) -> Task {
    co_await sim::sleep_for(50_ms);  // message arrives before this recv
    out = co_await job.proc(1).recv(0, 1);
  }(rig.job, received));
  rig.engine.run();
  EXPECT_EQ(received, patterned(100, 1));
}

TEST(Mpr, EarlyRtsIsPulledWhenRecvArrives) {
  Rig rig(2, 1);
  Bytes received;
  rig.engine.spawn([](Job& job) -> Task {
    co_await job.proc(0).send(1, 2, patterned(100'000, 2));
  }(rig.job));
  rig.engine.spawn([](Job& job, Bytes& out) -> Task {
    co_await sim::sleep_for(50_ms);
    out = co_await job.proc(1).recv(0, 2);
  }(rig.job, received));
  rig.engine.run();
  EXPECT_EQ(received, patterned(100'000, 2));
}

TEST(Mpr, MessagesWithSameTagMatchInOrder) {
  Rig rig(2, 1);
  std::vector<Bytes> got;
  rig.engine.spawn([](Job& job) -> Task {
    for (int i = 0; i < 5; ++i) {
      co_await job.proc(0).send(1, 3, patterned(64, static_cast<std::uint64_t>(i)));
    }
  }(rig.job));
  rig.engine.spawn([](Job& job, std::vector<Bytes>& out) -> Task {
    for (int i = 0; i < 5; ++i) out.push_back(co_await job.proc(1).recv(0, 3));
  }(rig.job, got));
  rig.engine.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], patterned(64, static_cast<std::uint64_t>(i)));
  }
}

TEST(Mpr, DifferentTagsMatchSelectively) {
  Rig rig(2, 1);
  Bytes a, b;
  rig.engine.spawn([](Job& job) -> Task {
    co_await job.proc(0).send(1, 10, patterned(32, 10));
    co_await job.proc(0).send(1, 20, patterned(32, 20));
  }(rig.job));
  rig.engine.spawn([](Job& job, Bytes& oa, Bytes& ob) -> Task {
    ob = co_await job.proc(1).recv(0, 20);  // reversed order
    oa = co_await job.proc(1).recv(0, 10);
  }(rig.job, a, b));
  rig.engine.run();
  EXPECT_EQ(a, patterned(32, 10));
  EXPECT_EQ(b, patterned(32, 20));
}

TEST(Mpr, BarrierSynchronizesAllRanks) {
  Rig rig(4, 2);  // 8 ranks
  std::vector<double> exit_times(8, -1.0);
  for (int r = 0; r < 8; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<double>& out) -> Task {
      co_await sim::sleep_for(sim::Duration::ms(rank * 5));  // staggered arrival
      co_await job.proc(rank).barrier();
      out[static_cast<std::size_t>(rank)] = Engine::current()->now().to_seconds();
    }(rig.job, r, exit_times));
  }
  rig.engine.run();
  const double last_arrival = 0.035;
  for (double t : exit_times) EXPECT_GE(t, last_arrival);
}

TEST(Mpr, BcastFromNonzeroRoot) {
  Rig rig(3, 1);
  std::vector<Bytes> results(3);
  for (int r = 0; r < 3; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<Bytes>& out) -> Task {
      Bytes data = rank == 2 ? patterned(500, 77) : Bytes{};
      co_await job.proc(rank).bcast(2, data);
      out[static_cast<std::size_t>(rank)] = std::move(data);
    }(rig.job, r, results));
  }
  rig.engine.run();
  for (const auto& b : results) EXPECT_EQ(b, patterned(500, 77));
}

TEST(Mpr, AllreduceSumsAcrossRanks) {
  Rig rig(2, 3);  // 6 ranks (non power of two exercises the tree edges)
  std::vector<double> results(6, 0.0);
  for (int r = 0; r < 6; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<double>& out) -> Task {
      out[static_cast<std::size_t>(rank)] =
          co_await job.proc(rank).allreduce_sum(static_cast<double>(rank + 1));
    }(rig.job, r, results));
  }
  rig.engine.run();
  for (double v : results) EXPECT_DOUBLE_EQ(v, 21.0);  // 1+2+...+6
}

TEST(Mpr, AllgatherCollectsAllBlocks) {
  Rig rig(5, 1);
  std::vector<std::vector<Bytes>> results(5);
  for (int r = 0; r < 5; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<std::vector<Bytes>>& out) -> Task {
      out[static_cast<std::size_t>(rank)] =
          co_await job.proc(rank).allgather(patterned(100, static_cast<std::uint64_t>(rank)));
    }(rig.job, r, results));
  }
  rig.engine.run();
  for (int r = 0; r < 5; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(), 5u);
    for (int s = 0; s < 5; ++s) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                patterned(100, static_cast<std::uint64_t>(s)))
          << "rank " << r << " block " << s;
    }
  }
}

TEST(Mpr, ComputeChargesTimeAndDirtiesImage) {
  Rig rig(1, 2);
  rig.engine.spawn([](Job& job) -> Task {
    Proc& p = job.proc(0);
    const std::size_t dirty_before = p.sim_process().image().dirty_pages();
    const double start = Engine::current()->now().to_seconds();
    co_await p.compute(25_ms, 64 * 1024);
    EXPECT_NEAR(Engine::current()->now().to_seconds() - start, 0.025, 1e-6);
    EXPECT_GT(p.sim_process().image().dirty_pages(), dirty_before);
  }(rig.job));
  rig.engine.run();
}

/// Full suspend/resume cycle with the app structured around check_suspend.
TEST(Mpr, SuspendTeardownRebuildResumeCycle) {
  Rig rig(2, 2);  // 4 ranks on 2 nodes
  std::vector<int> iterations(4, 0);
  rig.job.launch_app([&iterations](Proc& self) -> Task {
    const int n = self.size();
    for (int iter = 0; iter < 6; ++iter) {
      co_await self.check_suspend();
      const int right = (self.rank() + 1) % n;
      const int left = (self.rank() - 1 + n) % n;
      sim::TaskGroup group(*self.env().engine);
      group.spawn(self.send(right, 100 + iter, patterned(4000, static_cast<std::uint64_t>(iter))));
      Bytes got = co_await self.recv(left, 100 + iter);
      JOBMIG_ASSERT(got == patterned(4000, static_cast<std::uint64_t>(iter)));
      co_await group.wait();
      co_await self.compute(1_ms, 0);
      ++iterations[static_cast<std::size_t>(self.rank())];
    }
  });

  // Controller: after 10 ms, park everyone, tear down, verify released
  // resources, rebuild, resume.
  rig.engine.spawn([](Rig& rr) -> Task {
    co_await sim::sleep_for(10_ms);
    Job& job = rr.job;
    for (int r = 0; r < job.size(); ++r) job.proc(r).request_park();
    for (int r = 0; r < job.size(); ++r) co_await job.proc(r).wait_parked();
    for (int r = 0; r < job.size(); ++r) co_await job.proc(r).drain_and_teardown();
    // All connection context released (paper Phase 1 invariant).
    for (auto& env : rr.envs) {
      EXPECT_EQ(env.hca->qp_count(), 0u);
      EXPECT_EQ(env.hca->mr_count(), 0u);
    }
    for (int r = 0; r < job.size(); ++r) EXPECT_EQ(job.proc(r).state(), ProcState::kSuspended);
    for (int r = 0; r < job.size(); ++r) co_await job.proc(r).rebuild_and_resume();
  }(rig));

  rig.engine.spawn([](Job& job) -> Task { co_await job.wait_app_done(); }(rig.job));
  rig.engine.run();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(iterations[static_cast<std::size_t>(r)], 6);
  EXPECT_TRUE(rig.job.app_done());
}

TEST(Mpr, KilledProcThrowsProcKilledOutOfBlockedRecv) {
  Rig rig(2, 1);
  bool saw_kill = false;
  rig.engine.spawn([](Job& job, bool& out) -> Task {
    try {
      (void)co_await job.proc(1).recv(0, 5);  // never satisfied
    } catch (const ProcKilled&) {
      out = true;
    }
  }(rig.job, saw_kill));
  rig.engine.spawn([](Job& job) -> Task {
    co_await sim::sleep_for(20_ms);
    job.proc(1).kill();
  }(rig.job));
  rig.engine.run();
  EXPECT_TRUE(saw_kill);
  EXPECT_EQ(rig.job.proc(1).state(), ProcState::kDead);
}

/// Hand-rolled migration of rank 1: an eager message rank 1 never received
/// must survive checkpoint -> restart on another node, via the runtime-state
/// capture inside the process image.
TEST(Mpr, UnexpectedMessageSurvivesCheckpointRestartOfReceiver) {
  Rig rig(3, 1);  // node2 acts as the spare
  Bytes received;
  rig.job.launch_app([](Proc& self) -> Task {
    // Two safe points; the controller migrates rank 1 between them.
    co_await self.check_suspend();
    if (self.rank() == 0) {
      co_await self.send(1, 42, patterned(512, 9));
    }
    co_await sim::sleep_for(5_ms);
    co_await self.check_suspend();
    co_await self.compute(1_ms, 0);
  });

  rig.engine.spawn([](Rig& rr, Bytes& out) -> Task {
    Job& job = rr.job;
    co_await sim::sleep_for(2_ms);  // park lands between the two safe points
    for (int r = 0; r < 3; ++r) job.proc(r).request_park();
    for (int r = 0; r < 3; ++r) co_await job.proc(r).wait_parked();
    for (int r = 0; r < 3; ++r) co_await job.proc(r).drain_and_teardown();

    // Checkpoint rank 1 and restart it on node 2 (the "spare").
    proc::MemorySink sink;
    co_await rr.blcrs[1]->checkpoint(job.proc(1).sim_process(), sink);
    job.proc(1).kill();
    proc::MemorySource source(sink.take());
    auto restored_image = co_await rr.blcrs[2]->restart(source);
    auto fresh = job.make_unwired_proc(1, rr.envs[2]);
    fresh->adopt_sim_process(std::move(restored_image));
    job.replace_proc(1, std::move(fresh));

    for (int r = 0; r < 3; ++r) co_await job.proc(r).rebuild_and_resume();
    // The restarted rank can now receive the message that had arrived
    // before the migration.
    out = co_await job.proc(1).recv(0, 42);
  }(rig, received));
  rig.engine.run();
  EXPECT_EQ(received, patterned(512, 9));
}

TEST(Mpr, LinksAreCreatedOnDemandOnly) {
  Rig rig(4, 1);
  rig.engine.spawn([](Rig& rr) -> Task {
    Job& job = rr.job;
    co_await job.proc(0).send(1, 1, patterned(16, 1));
    (void)co_await job.proc(1).recv(0, 1);
    // Only the 0<->1 pair is connected; ranks 2/3 have no QPs.
    EXPECT_EQ(rr.envs[0].hca->qp_count(), 1u);
    EXPECT_EQ(rr.envs[1].hca->qp_count(), 1u);
    EXPECT_EQ(rr.envs[2].hca->qp_count(), 0u);
    EXPECT_EQ(rr.envs[3].hca->qp_count(), 0u);
  }(rig));
  rig.engine.run();
}

TEST(Mpr, SelfAndOutOfRangeRanksRejected) {
  Rig rig(2, 1);
  rig.engine.spawn([](Job& job) -> Task {
    bool threw = false;
    try {
      co_await job.proc(0).send(0, 1, patterned(8, 1));
    } catch (const ContractViolation&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
    threw = false;
    try {
      (void)co_await job.proc(0).recv(9, 1);
    } catch (const ContractViolation&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(rig.job));
  rig.engine.run();
}

}  // namespace
}  // namespace jobmig::mpr
