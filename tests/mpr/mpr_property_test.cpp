#include <gtest/gtest.h>

#include "jobmig/mpr/job.hpp"
#include "jobmig/sim/rng.hpp"

namespace jobmig::mpr {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

struct Rig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  std::vector<std::unique_ptr<storage::LocalFs>> disks;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs;
  std::vector<NodeEnv> envs;
  Job job{engine, cal};

  Rig(int nodes, int ppn) {
    for (int n = 0; n < nodes; ++n) {
      // Built via append: "n" + std::to_string(n) trips a GCC 12 -Wrestrict
      // false positive (PR105651) when the insert path gets inlined here.
      std::string name("n");
      name += std::to_string(n);
      auto& hca = fabric.add_node(name);
      auto& host = net.add_host(name);
      disks.push_back(std::make_unique<storage::LocalFs>(engine, cal.disk));
      blcrs.push_back(std::make_unique<proc::Blcr>(engine, cal.blcr));
      NodeEnv env;
      env.engine = &engine;
      env.hca = &hca;
      env.eth_host = host.id();
      env.scratch = disks.back().get();
      env.blcr = blcrs.back().get();
      env.cal = &cal;
      env.hostname = name;
      envs.push_back(env);
    }
    for (int r = 0; r < nodes * ppn; ++r) {
      job.add_proc(r, envs[static_cast<std::size_t>(r / ppn)], 64 * 1024,
                   static_cast<std::uint64_t>(r));
    }
  }
};

/// Message-size sweep across the eager/rendezvous boundary: content must
/// survive regardless of which protocol carries it.
class MessageSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MessageSize, RoundTripsExactly) {
  const std::size_t len = GetParam();
  Rig rig(2, 1);
  Bytes received;
  rig.engine.spawn([](Job& job, std::size_t n) -> Task {
    Bytes payload(n);
    sim::pattern_fill(payload, n + 1, 0);
    co_await job.proc(0).send(1, 1, payload);
  }(rig.job, len));
  rig.engine.spawn([](Job& job, Bytes& out) -> Task {
    out = co_await job.proc(1).recv(0, 1);
  }(rig.job, received));
  rig.engine.run();
  Bytes expect(len);
  sim::pattern_fill(expect, len + 1, 0);
  EXPECT_EQ(received, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MessageSize,
                         ::testing::Values(0, 1, 100, 8 * 1024 - 1, 8 * 1024, 8 * 1024 + 1,
                                           100'000, 1'000'000, 5'000'000));

/// Random all-pairs traffic: every (src, dst, tag) message is delivered
/// once, intact, in order per (src, dst) pair.
class RandomTraffic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTraffic, AllMessagesDeliveredIntact) {
  const std::uint64_t seed = GetParam();
  Rig rig(3, 2);  // 6 ranks
  const int n = rig.job.size();
  sim::Xoshiro256 rng(seed);

  // Deterministic plan: per ordered pair, a queue of message payload seeds.
  std::map<std::pair<int, int>, std::vector<std::uint32_t>> plan;
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      const int count = static_cast<int>(rng.below(4));
      for (int i = 0; i < count; ++i) {
        plan[{s, d}].push_back(static_cast<std::uint32_t>(rng.next() & 0xFFFFFF));
      }
    }
  }

  int verified = 0;
  for (int r = 0; r < n; ++r) {
    // Sender side of rank r.
    rig.engine.spawn([](Job& job, int self, const std::map<std::pair<int, int>, std::vector<std::uint32_t>>& p) -> Task {
      for (const auto& [pair, seeds] : p) {
        if (pair.first != self) continue;
        for (std::size_t i = 0; i < seeds.size(); ++i) {
          Bytes payload(1000 + seeds[i] % 20000);
          sim::pattern_fill(payload, seeds[i], 0);
          co_await job.proc(self).send(pair.second, 50, payload);
        }
      }
    }(rig.job, r, plan));
    // Receiver side of rank r.
    rig.engine.spawn([](Job& job, int self, const std::map<std::pair<int, int>, std::vector<std::uint32_t>>& p, int& count) -> Task {
      for (const auto& [pair, seeds] : p) {
        if (pair.second != self) continue;
        for (std::size_t i = 0; i < seeds.size(); ++i) {
          Bytes got = co_await job.proc(self).recv(pair.first, 50);
          Bytes expect(1000 + seeds[i] % 20000);
          sim::pattern_fill(expect, seeds[i], 0);
          JOBMIG_ASSERT_MSG(got == expect, "payload mismatch");
          ++count;
        }
      }
    }(rig.job, r, plan, verified));
  }
  rig.engine.run();
  int expected = 0;
  for (const auto& [pair, seeds] : plan) expected += static_cast<int>(seeds.size());
  EXPECT_EQ(verified, expected) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraffic, ::testing::Values(101, 202, 303, 404, 505));

/// Collectives agree for every rank count, including primes and powers of 2.
class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllreduceBcastAllgatherAgree) {
  const int n = GetParam();
  Rig rig(1, n);
  std::vector<double> sums(static_cast<std::size_t>(n), -1.0);
  std::vector<Bytes> gathers_ok(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    rig.engine.spawn([](Job& job, int rank, int total, std::vector<double>& out) -> Task {
      Proc& self = job.proc(rank);
      out[static_cast<std::size_t>(rank)] =
          co_await self.allreduce_sum(static_cast<double>(rank * rank));
      Bytes data = rank == total / 2 ? Bytes(64, std::byte{0x77}) : Bytes{};
      co_await self.bcast(total / 2, data);
      JOBMIG_ASSERT(data == Bytes(64, std::byte{0x77}));
      auto blocks = co_await self.allgather(Bytes(8, static_cast<std::byte>(rank)));
      for (int s = 0; s < total; ++s) {
        JOBMIG_ASSERT(blocks[static_cast<std::size_t>(s)] ==
                      Bytes(8, static_cast<std::byte>(s)));
      }
    }(rig.job, r, n, sums));
  }
  rig.engine.run();
  double expect = 0;
  for (int r = 0; r < n; ++r) expect += static_cast<double>(r * r);
  for (double s : sums) EXPECT_DOUBLE_EQ(s, expect);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveRanks, ::testing::Values(1, 2, 3, 5, 8, 13, 16));

}  // namespace
}  // namespace jobmig::mpr
