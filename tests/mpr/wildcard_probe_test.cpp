#include <gtest/gtest.h>

#include "jobmig/mpr/job.hpp"

namespace jobmig::mpr {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

struct Rig {
  Engine engine;
  sim::Calibration cal{};
  ib::Fabric fabric{engine, cal.ib};
  net::Network net{engine, cal.eth};
  std::vector<std::unique_ptr<storage::LocalFs>> disks;
  std::vector<std::unique_ptr<proc::Blcr>> blcrs;
  std::vector<NodeEnv> envs;
  Job job{engine, cal};

  explicit Rig(int nodes) {
    for (int n = 0; n < nodes; ++n) {
      // Built via append: "n" + std::to_string(n) trips a GCC 12 -Wrestrict
      // false positive (PR105651) when the insert path gets inlined here.
      std::string name("n");
      name += std::to_string(n);
      auto& hca = fabric.add_node(name);
      auto& host = net.add_host(name);
      disks.push_back(std::make_unique<storage::LocalFs>(engine, cal.disk));
      blcrs.push_back(std::make_unique<proc::Blcr>(engine, cal.blcr));
      NodeEnv env;
      env.engine = &engine;
      env.hca = &hca;
      env.eth_host = host.id();
      env.scratch = disks.back().get();
      env.blcr = blcrs.back().get();
      env.cal = &cal;
      env.hostname = name;
      envs.push_back(env);
    }
    for (int r = 0; r < nodes; ++r) {
      job.add_proc(r, envs[static_cast<std::size_t>(r)], 16 * 1024,
                   static_cast<std::uint64_t>(r));
    }
  }
};

TEST(Wildcard, RecvAnyReportsTheActualSender) {
  Rig rig(4);
  std::vector<int> senders;
  rig.engine.spawn([](Job& job, std::vector<int>& out) -> Task {
    // Ranks 1..3 all send to rank 0 with the same tag, staggered.
    for (int s = 1; s < 4; ++s) {
      job.proc(0).env().engine->spawn([](Job& j, int src) -> Task {
        co_await sim::sleep_for(sim::Duration::ms(src * 3));
        co_await j.proc(src).send(0, 5, patterned(64, static_cast<std::uint64_t>(src)));
      }(job, s));
    }
    for (int i = 0; i < 3; ++i) {
      auto [sender, data] = co_await job.proc(0).recv_any(5);
      JOBMIG_ASSERT(data == patterned(64, static_cast<std::uint64_t>(sender)));
      out.push_back(sender);
    }
  }(rig.job, senders));
  rig.engine.run();
  EXPECT_EQ(senders, (std::vector<int>{1, 2, 3}));  // staggered arrival order
}

TEST(Wildcard, RecvAnyMatchesUnexpectedMessage) {
  Rig rig(2);
  int sender = -1;
  rig.engine.spawn([](Job& job, int& out) -> Task {
    co_await job.proc(1).send(0, 9, patterned(32, 7));
    co_await sim::sleep_for(10_ms);  // lands unexpected
    auto [src, data] = co_await job.proc(0).recv_any(9);
    JOBMIG_ASSERT(data == patterned(32, 7));
    out = src;
  }(rig.job, sender));
  rig.engine.run();
  EXPECT_EQ(sender, 1);
}

TEST(Wildcard, RecvAnyWorksForRendezvousSizes) {
  Rig rig(2);
  std::size_t got = 0;
  rig.engine.spawn([](Job& job, std::size_t& out) -> Task {
    job.proc(0).env().engine->spawn([](Job& j) -> Task {
      co_await j.proc(1).send(0, 2, patterned(500'000, 3));
    }(job));
    auto [src, data] = co_await job.proc(0).recv_any(2);
    JOBMIG_ASSERT(src == 1);
    JOBMIG_ASSERT(data == patterned(500'000, 3));
    out = data.size();
  }(rig.job, got));
  rig.engine.run();
  EXPECT_EQ(got, 500'000u);
}

TEST(Probe, BlockingProbeWaitsAndDoesNotConsume) {
  Rig rig(2);
  int probed = -1;
  Bytes received;
  rig.engine.spawn([](Job& job, int& p, Bytes& out) -> Task {
    job.proc(0).env().engine->spawn([](Job& j) -> Task {
      co_await sim::sleep_for(20_ms);
      co_await j.proc(1).send(0, 4, patterned(48, 2));
    }(job));
    p = co_await job.proc(0).probe(Proc::kAnySource, 4);
    // The message is still there: a subsequent recv gets it.
    out = co_await job.proc(0).recv(1, 4);
  }(rig.job, probed, received));
  rig.engine.run();
  EXPECT_EQ(probed, 1);
  EXPECT_EQ(received, patterned(48, 2));
}

TEST(Probe, IprobeIsNonBlocking) {
  Rig rig(2);
  struct Results {
    bool before = true, hit_ok = false, wrong_tag = true, after = true;
    int hit_src = -1;
  } res;
  rig.engine.spawn([](Job& job, Results& out) -> Task {
    out.before = job.proc(0).iprobe(1, 3).has_value();
    co_await job.proc(1).send(0, 3, patterned(16, 1));
    co_await sim::sleep_for(5_ms);
    auto hit = job.proc(0).iprobe(1, 3);
    out.hit_ok = hit.has_value();
    if (hit) out.hit_src = *hit;
    out.wrong_tag = job.proc(0).iprobe(1, 99).has_value();
    (void)co_await job.proc(0).recv(1, 3);
    out.after = job.proc(0).iprobe(1, 3).has_value();
  }(rig.job, res));
  rig.engine.run();
  EXPECT_FALSE(res.before);
  EXPECT_TRUE(res.hit_ok);
  EXPECT_EQ(res.hit_src, 1);
  EXPECT_FALSE(res.wrong_tag);
  EXPECT_FALSE(res.after);
}

TEST(Reduce, MinMaxProdOps) {
  Rig rig(4);
  std::vector<double> mins(4), maxs(4), prods(4);
  for (int r = 0; r < 4; ++r) {
    rig.engine.spawn([](Job& job, int rank, std::vector<double>& mn, std::vector<double>& mx,
                        std::vector<double>& pr) -> Task {
      const double v = static_cast<double>(rank + 1);  // 1..4
      mn[static_cast<std::size_t>(rank)] = co_await job.proc(rank).allreduce(v, Proc::ReduceOp::kMin);
      mx[static_cast<std::size_t>(rank)] = co_await job.proc(rank).allreduce(v, Proc::ReduceOp::kMax);
      pr[static_cast<std::size_t>(rank)] = co_await job.proc(rank).allreduce(v, Proc::ReduceOp::kProd);
    }(rig.job, r, mins, maxs, prods));
  }
  rig.engine.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(mins[static_cast<std::size_t>(r)], 1.0);
    EXPECT_DOUBLE_EQ(maxs[static_cast<std::size_t>(r)], 4.0);
    EXPECT_DOUBLE_EQ(prods[static_cast<std::size_t>(r)], 24.0);
  }
}

}  // namespace
}  // namespace jobmig::mpr
