#include <gtest/gtest.h>

#include "jobmig/proc/blcr.hpp"
#include "jobmig/sim/rng.hpp"

namespace jobmig::proc {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

/// Round-trip property across image geometries: empty, sub-page, exact
/// pages, odd tails, multi-MB — with random dirty-page patterns.
class BlcrRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlcrRoundTrip, PreservesImageExactly) {
  const std::uint64_t image_bytes = GetParam();
  Engine engine;
  Blcr blcr(engine);
  bool ok = false;
  engine.spawn([](Blcr& b, std::uint64_t n, bool& out) -> Task {
    SimProcess proc(ProcessIdentity{1, 0, "prop"}, n, n ^ 0xABCDEF);
    // Random dirty writes.
    sim::Xoshiro256 rng(n + 17);
    const int writes = static_cast<int>(rng.below(8));
    for (int w = 0; w < writes && n > 0; ++w) {
      const std::uint64_t off = rng.below(n);
      const std::uint64_t len = std::min<std::uint64_t>(1 + rng.below(9000), n - off);
      Bytes data(len);
      sim::pattern_fill(data, rng.next(), 0);
      proc.image().write(off, data);
    }
    Bytes state(static_cast<std::size_t>(rng.below(100)));
    sim::pattern_fill(state, 5, 0);
    proc.set_app_state(state);

    const std::uint64_t crc = proc.image().content_crc();
    MemorySink sink;
    co_await b.checkpoint(proc, sink);
    JOBMIG_ASSERT(sink.data().size() == Blcr::stream_size(proc));
    MemorySource source(sink.take());
    auto restored = co_await b.restart(source);
    out = restored->image().content_crc() == crc &&
          restored->app_state() == proc.app_state() &&
          restored->image().size() == n;
  }(blcr, image_bytes, ok));
  engine.run();
  EXPECT_TRUE(ok) << "image_bytes=" << image_bytes;
}

INSTANTIATE_TEST_SUITE_P(ImageGeometries, BlcrRoundTrip,
                         ::testing::Values(0, 1, 100, 4095, 4096, 4097, 8192, 65536,
                                           1'000'003, 4'194'304, 10'000'001));

/// Corruption-position sweep: a bit flip anywhere in the stream must be
/// detected (magic, header, section headers, payload, trailer).
class BlcrCorruption : public ::testing::TestWithParam<double> {};

TEST_P(BlcrCorruption, BitFlipAnywhereIsDetected) {
  const double where = GetParam();  // relative position in the stream
  Engine engine;
  Blcr blcr(engine);
  bool detected = false;
  bool restored_wrong = false;
  engine.spawn([](Blcr& b, double frac, bool& det, bool& wrong) -> Task {
    SimProcess proc(ProcessIdentity{2, 1, "corrupt"}, 300'000, 9);
    Bytes patch(500);
    sim::pattern_fill(patch, 77, 0);
    proc.image().write(123'456, patch);
    const std::uint64_t crc = proc.image().content_crc();

    MemorySink sink;
    co_await b.checkpoint(proc, sink);
    Bytes stream = sink.take();
    const std::size_t pos =
        std::min(stream.size() - 1, static_cast<std::size_t>(frac * static_cast<double>(stream.size())));
    stream[pos] ^= std::byte{0x10};
    MemorySource source(std::move(stream));
    try {
      auto restored = co_await b.restart(source);
      // A flip in ignorable padding does not exist in this format; if the
      // restart succeeded the content must still be wrong-free (this can
      // only happen if the flip hit bytes the CRC covers — it always does).
      wrong = restored->image().content_crc() != crc;
    } catch (const CheckpointCorruption&) {
      det = true;
    }
  }(blcr, where, detected, restored_wrong));
  engine.run();
  EXPECT_TRUE(detected) << "flip at fraction " << where << " undetected";
  EXPECT_FALSE(restored_wrong);
}

INSTANTIATE_TEST_SUITE_P(Positions, BlcrCorruption,
                         ::testing::Values(0.0, 0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.999));

/// Truncation sweep: cutting the stream anywhere must be detected.
class BlcrTruncation : public ::testing::TestWithParam<double> {};

TEST_P(BlcrTruncation, TruncationAnywhereIsDetected) {
  Engine engine;
  Blcr blcr(engine);
  bool detected = false;
  engine.spawn([](Blcr& b, double frac, bool& det) -> Task {
    SimProcess proc(ProcessIdentity{3, 2, "trunc"}, 200'000, 4);
    MemorySink sink;
    co_await b.checkpoint(proc, sink);
    Bytes stream = sink.take();
    stream.resize(static_cast<std::size_t>(frac * static_cast<double>(stream.size())));
    MemorySource source(std::move(stream));
    try {
      (void)co_await b.restart(source);
    } catch (const CheckpointCorruption&) {
      det = true;
    }
  }(blcr, GetParam(), detected));
  engine.run();
  EXPECT_TRUE(detected) << "truncation at " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Positions, BlcrTruncation,
                         ::testing::Values(0.0, 0.05, 0.2, 0.5, 0.8, 0.99));

}  // namespace
}  // namespace jobmig::proc
