#include "jobmig/proc/memory_image.hpp"

#include <gtest/gtest.h>

#include "jobmig/sim/assert.hpp"

namespace jobmig::proc {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;

TEST(MemoryImage, CleanPagesComeFromPattern) {
  MemoryImage img(64_KiB, 77);
  Bytes a(1000), b(1000);
  img.read(100, a);
  sim::pattern_fill(b, 77, 100);
  EXPECT_EQ(a, b);
  EXPECT_EQ(img.dirty_pages(), 0u);
}

TEST(MemoryImage, WriteDirtiesOnlyTouchedPages) {
  MemoryImage img(64_KiB, 1);
  Bytes data(100, std::byte{0xAB});
  img.write(5000, data);  // spans pages 1 and... 5000..5100 is inside page 1
  EXPECT_EQ(img.dirty_pages(), 1u);
  EXPECT_TRUE(img.is_dirty_page(1));
  EXPECT_FALSE(img.is_dirty_page(0));

  img.write(4090, Bytes(10, std::byte{0xCD}));  // straddles pages 0 and 1
  EXPECT_EQ(img.dirty_pages(), 2u);
}

TEST(MemoryImage, ReadBackMixedCleanAndDirty) {
  MemoryImage img(32_KiB, 9);
  Bytes payload(6000, std::byte{0x5A});
  img.write(2000, payload);
  Bytes out(10'000);
  img.read(0, out);
  // [0,2000) clean, [2000,8000) = 0x5A, [8000,10000) clean.
  Bytes clean(10'000);
  sim::pattern_fill(clean, 9, 0);
  for (std::size_t i = 0; i < 2000; ++i) EXPECT_EQ(out[i], clean[i]) << i;
  for (std::size_t i = 2000; i < 8000; ++i) ASSERT_EQ(out[i], std::byte{0x5A}) << i;
  for (std::size_t i = 8000; i < 10'000; ++i) EXPECT_EQ(out[i], clean[i]) << i;
}

TEST(MemoryImage, PartialPageOverwritePreservesRestOfPage) {
  MemoryImage img(8_KiB, 3);
  img.write(100, Bytes(8, std::byte{0xFF}));
  Bytes page(4096);
  img.read(0, page);
  Bytes pristine(4096);
  sim::pattern_fill(pristine, 3, 0);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(page[i], pristine[i]);
  for (std::size_t i = 100; i < 108; ++i) EXPECT_EQ(page[i], std::byte{0xFF});
  for (std::size_t i = 108; i < 4096; ++i) EXPECT_EQ(page[i], pristine[i]);
}

TEST(MemoryImage, ContentCrcChangesWithWrites) {
  MemoryImage img(128_KiB, 42);
  const std::uint64_t before = img.content_crc();
  EXPECT_EQ(before, MemoryImage(128_KiB, 42).content_crc());  // deterministic
  img.write(50'000, Bytes(1, std::byte{0x01}));
  EXPECT_NE(img.content_crc(), before);
}

TEST(MemoryImage, ContentEquals) {
  MemoryImage a(64_KiB, 5), b(64_KiB, 5), c(64_KiB, 6);
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_FALSE(a.content_equals(c));
  b.write(1000, Bytes(4, std::byte{0x77}));
  EXPECT_FALSE(a.content_equals(b));
  a.write(1000, Bytes(4, std::byte{0x77}));
  EXPECT_TRUE(a.content_equals(b));
  EXPECT_FALSE(a.content_equals(MemoryImage(32_KiB, 5)));  // size mismatch
}

TEST(MemoryImage, OutOfBoundsAccessIsContractViolation) {
  MemoryImage img(4_KiB, 1);
  Bytes buf(100);
  EXPECT_THROW(img.read(4000, buf), ContractViolation);
  EXPECT_THROW(img.write(4090, Bytes(10)), ContractViolation);
  img.read(3996, buf);  // exactly reaches EOF: legal
}

TEST(MemoryImage, NonPageAlignedSize) {
  MemoryImage img(5000, 2);  // 1 full page + tail
  Bytes all(5000);
  img.read(0, all);
  img.write(4999, Bytes(1, std::byte{0xEE}));
  Bytes tail(1);
  img.read(4999, tail);
  EXPECT_EQ(tail[0], std::byte{0xEE});
  EXPECT_EQ(img.content_crc(), img.content_crc());
}

TEST(MemoryImage, ZeroSizeImage) {
  MemoryImage img(0, 1);
  EXPECT_EQ(img.size(), 0u);
  EXPECT_EQ(img.content_crc(), sim::Crc64{}.value());
  EXPECT_TRUE(img.content_equals(MemoryImage(0, 99)));
}

}  // namespace
}  // namespace jobmig::proc
