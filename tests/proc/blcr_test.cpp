#include "jobmig/proc/blcr.hpp"

#include <gtest/gtest.h>

#include "jobmig/sim/sync.hpp"

namespace jobmig::proc {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

SimProcessPtr make_proc(std::uint32_t pid, std::int32_t rank, std::uint64_t image_bytes,
                        std::uint64_t seed) {
  auto p = std::make_unique<SimProcess>(ProcessIdentity{pid, rank, "lu.C.64"}, image_bytes, seed);
  // Dirty a few scattered pages so the stream mixes clean and dirty runs.
  Bytes chunk(3000);
  sim::pattern_fill(chunk, seed ^ 0xFF, 0);
  if (image_bytes > 70'000) {
    p->image().write(10'000, chunk);
    p->image().write(50'000, chunk);
  }
  Bytes state;
  sim::put_u64(state, 0xFEEDFACE0000ULL + pid);
  p->set_app_state(state);
  return p;
}

struct BlcrFixture {
  Engine engine;
  Blcr blcr{engine};
};

TEST(Blcr, CheckpointRestartRoundTripPreservesEverything) {
  BlcrFixture f;
  SimProcessPtr restored;
  f.engine.spawn([](Blcr& blcr, SimProcessPtr& out) -> Task {
    auto proc = make_proc(4242, 7, 300'000, 11);
    const std::uint64_t crc_before = proc->image().content_crc();
    MemorySink sink;
    co_await blcr.checkpoint(*proc, sink);
    MemorySource source(sink.take());
    out = co_await blcr.restart(source);
    JOBMIG_ASSERT(out != nullptr);
    EXPECT_EQ(out->image().content_crc(), crc_before);
  }(f.blcr, restored));
  f.engine.run();
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->pid(), 4242u);
  EXPECT_EQ(restored->rank(), 7);
  EXPECT_EQ(restored->identity().executable, "lu.C.64");
  EXPECT_EQ(sim::get_u64(restored->app_state(), 0), 0xFEEDFACE0000ULL + 4242);
  EXPECT_EQ(f.blcr.checkpoints_taken(), 1u);
  EXPECT_EQ(f.blcr.restarts_done(), 1u);
}

TEST(Blcr, RestoredImageStaysLazilyBacked) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    auto proc = make_proc(1, 0, 10'000'000, 3);
    const std::size_t dirty_before = proc->image().dirty_pages();
    MemorySink sink;
    co_await blcr.checkpoint(*proc, sink);
    MemorySource source(sink.take());
    auto restored = co_await blcr.restart(source);
    // Only the pages that were dirty in the original are materialized.
    EXPECT_EQ(restored->image().dirty_pages(), dirty_before);
    EXPECT_TRUE(restored->image().content_equals(proc->image()));
  }(f.blcr));
  f.engine.run();
}

TEST(Blcr, StreamSizeIsExact) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    auto proc = make_proc(2, 1, 500'000, 5);
    MemorySink sink;
    co_await blcr.checkpoint(*proc, sink);
    EXPECT_EQ(sink.data().size(), Blcr::stream_size(*proc));
  }(f.blcr));
  f.engine.run();
}

TEST(Blcr, CorruptedPayloadIsRejected) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    auto proc = make_proc(3, 2, 200'000, 8);
    MemorySink sink;
    co_await blcr.checkpoint(*proc, sink);
    Bytes stream = sink.take();
    stream[stream.size() / 2] ^= std::byte{0x04};  // flip one payload bit
    MemorySource source(std::move(stream));
    bool threw = false;
    try {
      (void)co_await blcr.restart(source);
    } catch (const CheckpointCorruption&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f.blcr));
  f.engine.run();
}

TEST(Blcr, TruncatedStreamIsRejected) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    auto proc = make_proc(4, 3, 200'000, 9);
    MemorySink sink;
    co_await blcr.checkpoint(*proc, sink);
    Bytes stream = sink.take();
    stream.resize(stream.size() / 3);
    MemorySource source(std::move(stream));
    bool threw = false;
    try {
      (void)co_await blcr.restart(source);
    } catch (const CheckpointCorruption&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f.blcr));
  f.engine.run();
}

TEST(Blcr, GarbageStreamIsRejected) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    Bytes garbage(4096);
    sim::pattern_fill(garbage, 123, 0);
    MemorySource source(std::move(garbage));
    bool threw = false;
    try {
      (void)co_await blcr.restart(source);
    } catch (const CheckpointCorruption&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f.blcr));
  f.engine.run();
}

TEST(Blcr, FileSinkAndSourceThroughLocalFs) {
  Engine engine;
  Blcr blcr(engine);
  storage::LocalFs fs(engine, sim::DiskParams{});
  engine.spawn([](Blcr& b, storage::LocalFs& lfs) -> Task {
    auto proc = make_proc(5, 4, 400'000, 13);
    const std::uint64_t crc_before = proc->image().content_crc();
    auto file = co_await lfs.create("/tmp/ckpt.5");
    FileSink sink(file);
    co_await b.checkpoint(*proc, sink);
    EXPECT_EQ(lfs.file_size("/tmp/ckpt.5"), Blcr::stream_size(*proc));
    auto in = co_await lfs.open("/tmp/ckpt.5");
    FileSource source(in);
    auto restored = co_await b.restart(source);
    EXPECT_EQ(restored->image().content_crc(), crc_before);
  }(blcr, fs));
  engine.run();
}

TEST(Blcr, ConcurrentCheckpointsShareTheDumpBus) {
  // Two identical checkpoints in parallel take ~2x one alone (node memory
  // bus is the shared resource), minus fixed overheads.
  Engine e1, e2;
  sim::BlcrParams params;
  params.dump_Bps_per_node = 100e6;
  params.per_process_checkpoint_overhead = sim::Duration::zero();

  double t_single = -1.0;
  {
    Blcr blcr(e1, params);
    e1.spawn([](Blcr& b, double& out) -> Task {
      auto proc = make_proc(1, 0, 10'000'000, 1);
      MemorySink sink;
      co_await b.checkpoint(*proc, sink);
      out = Engine::current()->now().to_seconds();
    }(blcr, t_single));
    e1.run();
  }

  double t_double = -1.0;
  {
    Blcr blcr(e2, params);
    for (int i = 0; i < 2; ++i) {
      e2.spawn([](Blcr& b, double& out) -> Task {
        auto proc = make_proc(1, 0, 10'000'000, 1);
        MemorySink sink;
        co_await b.checkpoint(*proc, sink);
        out = std::max(out, Engine::current()->now().to_seconds());
      }(blcr, t_double));
    }
    e2.run();
  }
  EXPECT_NEAR(t_double / t_single, 2.0, 0.1);
}

TEST(Blcr, ZeroSizeImageRoundTrips) {
  BlcrFixture f;
  f.engine.spawn([](Blcr& blcr) -> Task {
    SimProcess proc(ProcessIdentity{9, -1, "stub"}, 0, 0);
    MemorySink sink;
    co_await blcr.checkpoint(proc, sink);
    MemorySource source(sink.take());
    auto restored = co_await blcr.restart(source);
    EXPECT_EQ(restored->image().size(), 0u);
    EXPECT_EQ(restored->rank(), -1);
  }(f.blcr));
  f.engine.run();
}

}  // namespace
}  // namespace jobmig::proc
