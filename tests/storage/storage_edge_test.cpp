#include <gtest/gtest.h>

#include "jobmig/storage/filesystem.hpp"

namespace jobmig::storage {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

TEST(StorageEdge, PvfsReadersAndWritersContendOnServers) {
  Engine e;
  sim::PvfsParams params;
  params.server_write_Bps = 50e6;
  params.server_read_Bps = 50e6;
  params.seek_alpha = 0.0;
  ParallelFs fs(e, params);
  double finish = -1.0;
  e.spawn([](ParallelFs& pfs, double& out) -> Task {
    auto file = co_await pfs.create("/x");
    co_await file->pwrite(0, Bytes(32 << 20));
    // Reader and writer on the same servers: each 32 MiB job would take
    // ~0.168 s alone (4 servers x 50 MB/s); overlapped they share heads.
    const double start = sim::Engine::current()->now().to_seconds();
    sim::TaskGroup group(*sim::Engine::current());
    group.spawn([](FilePtr f) -> Task { co_await f->pwrite(32 << 20, Bytes(32 << 20)); }(file));
    group.spawn([](FilePtr f) -> Task { (void)co_await f->pread(0, 32 << 20); }(file));
    co_await group.wait();
    out = sim::Engine::current()->now().to_seconds() - start;
  }(fs, finish));
  e.run();
  EXPECT_NEAR(finish, 2 * (32.0 * (1 << 20)) / (4 * 50e6), 0.02);
}

TEST(StorageEdge, SharedHandlesObserveEachOthersWrites) {
  Engine e;
  LocalFs fs(e, sim::DiskParams{});
  e.spawn([](LocalFs& lfs) -> Task {
    auto w = co_await lfs.create("/shared");
    auto r = co_await lfs.open("/shared");
    EXPECT_EQ(r->size(), 0u);
    Bytes data(100, std::byte{0x3C});
    co_await w->pwrite(0, data);
    EXPECT_EQ(r->size(), 100u);
    Bytes got = co_await r->pread(0, 100);
    EXPECT_EQ(got, data);
  }(fs));
  e.run();
}

TEST(StorageEdge, CreateTruncatesExistingFile) {
  Engine e;
  LocalFs fs(e, sim::DiskParams{});
  e.spawn([](LocalFs& lfs) -> Task {
    auto f1 = co_await lfs.create("/t");
    co_await f1->pwrite(0, Bytes(500));
    EXPECT_EQ(lfs.file_size("/t"), 500u);
    auto f2 = co_await lfs.create("/t");
    EXPECT_EQ(lfs.file_size("/t"), 0u);
    EXPECT_EQ(f2->size(), 0u);
    // The old handle's inode is detached (old data still readable there).
    EXPECT_EQ(f1->size(), 500u);
  }(fs));
  e.run();
}

TEST(StorageEdge, ZeroByteIoIsFree) {
  Engine e;
  LocalFs fs(e, sim::DiskParams{});
  double elapsed = -1.0;
  e.spawn([](LocalFs& lfs, double& out) -> Task {
    auto f = co_await lfs.create("/z");
    const double start = sim::Engine::current()->now().to_seconds();
    co_await f->pwrite(0, {});
    Bytes nothing = co_await f->pread(0, 0);
    EXPECT_TRUE(nothing.empty());
    out = sim::Engine::current()->now().to_seconds() - start;
  }(fs, elapsed));
  e.run();
  EXPECT_DOUBLE_EQ(elapsed, 0.0);
}

TEST(StorageEdge, PvfsStripeBoundaryWrites) {
  Engine e;
  sim::PvfsParams params;
  params.stripe_bytes = 4096;
  ParallelFs fs(e, params);
  e.spawn([](ParallelFs& pfs) -> Task {
    auto f = co_await pfs.create("/s");
    // Write exactly one stripe, then straddle a boundary by one byte.
    Bytes one(4096, std::byte{0x01});
    co_await f->pwrite(0, one);
    Bytes straddle(2, std::byte{0x02});
    co_await f->pwrite(4095, straddle);
    EXPECT_EQ(f->size(), 4097u);
    Bytes got = co_await f->pread(4094, 10);  // truncated at EOF
    JOBMIG_ASSERT(got.size() == 3u);
    EXPECT_EQ(got[0], std::byte{0x01});
    EXPECT_EQ(got[1], std::byte{0x02});
    EXPECT_EQ(got[2], std::byte{0x02});
  }(fs));
  e.run();
}

}  // namespace
}  // namespace jobmig::storage
