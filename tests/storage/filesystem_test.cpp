#include "jobmig/storage/filesystem.hpp"

#include <gtest/gtest.h>

#include "jobmig/sim/sync.hpp"

namespace jobmig::storage {
namespace {

using namespace jobmig::sim::literals;
using sim::Bytes;
using sim::Engine;
using sim::Task;

Bytes patterned(std::size_t n, std::uint64_t seed) {
  Bytes b(n);
  sim::pattern_fill(b, seed, 0);
  return b;
}

TEST(BlockDevice, WriteTimeMatchesBandwidth) {
  Engine e;
  sim::DiskParams p;
  p.write_Bps = 50e6;
  BlockDevice dev(e, p);
  double elapsed = -1.0;
  e.spawn([](BlockDevice& d, double& out) -> Task {
    const double start = Engine::current()->now().to_seconds();
    co_await d.write(25'000'000);  // 25 MB at 50 MB/s -> 0.5 s
    out = Engine::current()->now().to_seconds() - start;
  }(dev, elapsed));
  e.run();
  EXPECT_NEAR(elapsed, 0.5, 1e-3);
  EXPECT_EQ(dev.bytes_written(), 25'000'000u);
}

TEST(BlockDevice, ConcurrentStreamsDegradeAggregate) {
  Engine e;
  sim::DiskParams p;
  p.write_Bps = 50e6;
  p.seek_alpha = 0.1;
  BlockDevice dev(e, p);
  double finish = -1.0;
  for (int i = 0; i < 8; ++i) {
    e.spawn([](BlockDevice& d, double& out) -> Task {
      co_await d.write(5'000'000);
      out = std::max(out, Engine::current()->now().to_seconds());
    }(dev, finish));
  }
  e.run();
  // 40 MB total; with eff(8) = 1/1.7 the aggregate is ~29.4 MB/s -> ~1.36 s,
  // clearly worse than the contention-free 0.8 s.
  EXPECT_GT(finish, 1.2);
  EXPECT_LT(finish, 1.5);
}

TEST(BlockDevice, ReadAndWriteShareTheHead) {
  Engine e;
  sim::DiskParams p;
  p.write_Bps = 50e6;
  p.read_Bps = 50e6;
  p.seek_alpha = 0.0;
  BlockDevice dev(e, p);
  double finish = -1.0;
  e.spawn([](BlockDevice& d, double& out) -> Task {
    co_await d.write(25'000'000);
    out = std::max(out, Engine::current()->now().to_seconds());
  }(dev, finish));
  e.spawn([](BlockDevice& d, double& out) -> Task {
    co_await d.read(25'000'000);
    out = std::max(out, Engine::current()->now().to_seconds());
  }(dev, finish));
  e.run();
  // Two 0.5 s jobs sharing one head -> 1.0 s total.
  EXPECT_NEAR(finish, 1.0, 1e-3);
}

struct LocalFixture {
  Engine engine;
  LocalFs fs{engine, sim::DiskParams{}, "ext3-test"};
};

TEST(LocalFs, CreateWriteReadRoundTrip) {
  LocalFixture f;
  Bytes readback;
  f.engine.spawn([](LocalFs& fs, Bytes& out) -> Task {
    auto file = co_await fs.create("/ckpt/rank0.img");
    Bytes data = patterned(100'000, 5);
    co_await file->pwrite(0, data);
    EXPECT_EQ(file->size(), 100'000u);
    out = co_await file->pread(0, 100'000);
  }(f.fs, readback));
  f.engine.run();
  EXPECT_EQ(readback, patterned(100'000, 5));
  EXPECT_TRUE(f.fs.exists("/ckpt/rank0.img"));
  EXPECT_EQ(f.fs.file_size("/ckpt/rank0.img"), 100'000u);
}

TEST(LocalFs, AppendExtendsFile) {
  LocalFixture f;
  f.engine.spawn([](LocalFs& fs) -> Task {
    auto file = co_await fs.create("/a");
    co_await file->append(patterned(10, 1));
    co_await file->append(patterned(20, 2));
    EXPECT_EQ(file->size(), 30u);
    Bytes head = co_await file->pread(0, 10);
    Bytes tail = co_await file->pread(10, 20);
    EXPECT_EQ(head, patterned(10, 1));
    EXPECT_EQ(tail, patterned(20, 2));
  }(f.fs));
  f.engine.run();
}

TEST(LocalFs, OpenMissingReturnsNull) {
  LocalFixture f;
  f.engine.spawn([](LocalFs& fs) -> Task {
    auto file = co_await fs.open("/nope");
    EXPECT_EQ(file, nullptr);
  }(f.fs));
  f.engine.run();
}

TEST(LocalFs, RemoveAndRecreate) {
  LocalFixture f;
  f.engine.spawn([](LocalFs& fs) -> Task {
    auto file = co_await fs.create("/x");
    co_await file->append(patterned(100, 3));
    EXPECT_TRUE(co_await fs.remove("/x"));
    EXPECT_FALSE(fs.exists("/x"));
    EXPECT_FALSE(co_await fs.remove("/x"));
    // Open handle still reads its data (POSIX unlink semantics).
    Bytes data = co_await file->pread(0, 100);
    EXPECT_EQ(data.size(), 100u);
    auto again = co_await fs.create("/x");
    EXPECT_EQ(again->size(), 0u);
  }(f.fs));
  f.engine.run();
}

TEST(LocalFs, PReadBeyondEofTruncates) {
  LocalFixture f;
  f.engine.spawn([](LocalFs& fs) -> Task {
    auto file = co_await fs.create("/t");
    co_await file->append(patterned(50, 1));
    Bytes past = co_await file->pread(100, 10);
    EXPECT_TRUE(past.empty());
    Bytes partial = co_await file->pread(40, 100);
    EXPECT_EQ(partial.size(), 10u);
  }(f.fs));
  f.engine.run();
}

TEST(LocalFs, ListsFiles) {
  LocalFixture f;
  f.engine.spawn([](LocalFs& fs) -> Task {
    (void)co_await fs.create("/b");
    (void)co_await fs.create("/a");
    co_return;
  }(f.fs));
  f.engine.run();
  EXPECT_EQ(f.fs.list(), (std::vector<std::string>{"/a", "/b"}));
}

struct PvfsFixture {
  Engine engine;
  sim::PvfsParams params;
  PvfsFixture() { params.stripe_bytes = 1_MiB; }
};

TEST(ParallelFs, RoundTripAcrossStripes) {
  PvfsFixture f;
  ParallelFs fs(f.engine, f.params);
  Bytes readback;
  f.engine.spawn([](ParallelFs& pfs, Bytes& out) -> Task {
    auto file = co_await pfs.create("/ckpt");
    Bytes data = patterned(3'500'000, 9);  // spans 4 stripe units
    co_await file->pwrite(0, data);
    out = co_await file->pread(0, data.size());
  }(fs, readback));
  f.engine.run();
  EXPECT_EQ(readback, patterned(3'500'000, 9));
}

TEST(ParallelFs, StripingDistributesBytesAcrossServers) {
  PvfsFixture f;
  ParallelFs fs(f.engine, f.params);
  f.engine.spawn([](ParallelFs& pfs) -> Task {
    auto file = co_await pfs.create("/big");
    co_await file->pwrite(0, Bytes(8_MiB));  // 8 stripes over 4 servers
    co_return;
  }(fs));
  f.engine.run();
  for (std::size_t s = 0; s < fs.server_count(); ++s) {
    EXPECT_EQ(fs.server(s).bytes_written(), 2_MiB) << "server " << s;
  }
}

TEST(ParallelFs, StripingBeatsSingleDiskForOneStream) {
  // One 40 MB stream: PVFS writes it ~4x faster than one local disk of the
  // same per-device speed, because stripes land on 4 servers concurrently.
  Engine e1, e2;
  sim::DiskParams one_disk;
  one_disk.write_Bps = 50e6;
  sim::PvfsParams pvfs_params;
  pvfs_params.server_write_Bps = 50e6;
  pvfs_params.stripe_bytes = 1_MiB;
  double t_local = -1.0, t_pvfs = -1.0;

  LocalFs lfs(e1, one_disk);
  e1.spawn([](LocalFs& fs, double& out) -> Task {
    auto file = co_await fs.create("/x");
    co_await file->pwrite(0, Bytes(40_MiB));
    out = Engine::current()->now().to_seconds();
  }(lfs, t_local));
  e1.run();

  ParallelFs pfs(e2, pvfs_params);
  e2.spawn([](ParallelFs& fs, double& out) -> Task {
    auto file = co_await fs.create("/x");
    co_await file->pwrite(0, Bytes(40_MiB));
    out = Engine::current()->now().to_seconds();
  }(pfs, t_pvfs));
  e2.run();

  EXPECT_GT(t_local / t_pvfs, 3.0);
}

TEST(ParallelFs, ManyClientsContendOnServers) {
  // 16 concurrent 10 MB writers to distinct files: aggregate throughput is
  // well below 4x one server due to the seek-thrash efficiency curve.
  PvfsFixture f;
  f.params.server_write_Bps = 50e6;
  f.params.seek_alpha = 0.1;
  ParallelFs fs(f.engine, f.params);
  double finish = -1.0;
  for (int i = 0; i < 16; ++i) {
    f.engine.spawn([](ParallelFs& pfs, double& out, int id) -> Task {
      auto file = co_await pfs.create("/f" + std::to_string(id));
      co_await file->pwrite(0, Bytes(10_MiB));
      out = std::max(out, Engine::current()->now().to_seconds());
    }(fs, finish, i));
  }
  f.engine.run();
  // 160 MiB over an ideal 200 MB/s would be ~0.84 s; contention should push
  // it well past that.
  EXPECT_GT(finish, 1.1);
}

TEST(ParallelFs, MdsSerializesNamespaceOps) {
  PvfsFixture f;
  f.params.mds_op_latency = sim::Duration::ms(3);
  ParallelFs fs(f.engine, f.params);
  double finish = -1.0;
  for (int i = 0; i < 10; ++i) {
    f.engine.spawn([](ParallelFs& pfs, double& out, int id) -> Task {
      (void)co_await pfs.create("/meta" + std::to_string(id));
      out = std::max(out, Engine::current()->now().to_seconds());
    }(fs, finish, i));
  }
  f.engine.run();
  EXPECT_NEAR(finish, 0.030, 1e-6);  // 10 serialized 3 ms ops
}

TEST(ParallelFs, SparseWriteAtOffset) {
  PvfsFixture f;
  ParallelFs fs(f.engine, f.params);
  f.engine.spawn([](ParallelFs& pfs) -> Task {
    auto file = co_await pfs.create("/sparse");
    co_await file->pwrite(5'000'000, patterned(100, 4));
    EXPECT_EQ(file->size(), 5'000'100u);
    Bytes hole = co_await file->pread(0, 10);
    EXPECT_EQ(hole, Bytes(10));  // zero-filled
    Bytes data = co_await file->pread(5'000'000, 100);
    EXPECT_EQ(data, patterned(100, 4));
  }(fs));
  f.engine.run();
}

}  // namespace
}  // namespace jobmig::storage
