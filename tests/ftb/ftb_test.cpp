#include "jobmig/ftb/ftb.hpp"

#include <gtest/gtest.h>

namespace jobmig::ftb {
namespace {

using namespace jobmig::sim::literals;
using sim::Engine;
using sim::Task;

TEST(Glob, Matching) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("FTB.MPI.*", "FTB.MPI.MVAPICH2"));
  EXPECT_FALSE(glob_match("FTB.MPI.*", "FTB.OS.LINUX"));
  EXPECT_TRUE(glob_match("FTB_MIGRATE", "FTB_MIGRATE"));
  EXPECT_FALSE(glob_match("FTB_MIGRATE", "FTB_MIGRATE_PIIC"));
  EXPECT_TRUE(glob_match("FTB_MIGRATE*", "FTB_MIGRATE_PIIC"));
  EXPECT_TRUE(glob_match("*MIGRATE*", "FTB_MIGRATE_PIIC"));
  EXPECT_FALSE(glob_match("", "x"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXbYY"));
}

TEST(FtbEvent, EncodeDecodeRoundTrip) {
  FtbEvent ev{"FTB.MPI.MVAPICH2", "FTB_MIGRATE", Severity::kWarning,
              "src=node3 dst=spare0", "job_manager", 7, 42};
  auto decoded = FtbEvent::decode(ev.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, ev);
}

TEST(FtbEvent, DecodeRejectsGarbageAndTruncation) {
  FtbEvent ev{"s", "n", Severity::kInfo, "p", "c", 1, 2};
  sim::Bytes good = ev.encode();
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    sim::Bytes trunc(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(FtbEvent::decode(trunc).has_value()) << "cut=" << cut;
  }
  sim::Bytes extra = good;
  extra.push_back(std::byte{0});
  EXPECT_FALSE(FtbEvent::decode(extra).has_value());
  sim::Bytes bad_sev = good;
  bad_sev[0] = std::byte{9};
  EXPECT_FALSE(FtbEvent::decode(bad_sev).has_value());
}

TEST(Subscription, SeverityFloorAndGlobs) {
  Subscription sub{"FTB.MPI.*", "*", Severity::kWarning};
  FtbEvent warn{"FTB.MPI.X", "E", Severity::kWarning, "", "", 0, 0};
  FtbEvent info{"FTB.MPI.X", "E", Severity::kInfo, "", "", 0, 0};
  FtbEvent other{"FTB.OS.X", "E", Severity::kFatal, "", "", 0, 0};
  EXPECT_TRUE(sub.matches(warn));
  EXPECT_FALSE(sub.matches(info));
  EXPECT_FALSE(sub.matches(other));
}

/// Three-level agent tree: root <- mid <- leaf, one extra child on root.
struct Tree {
  Engine engine;
  net::Network net{engine};
  net::Host& h_root{net.add_host("root")};
  net::Host& h_mid{net.add_host("mid")};
  net::Host& h_leaf{net.add_host("leaf")};
  net::Host& h_aux{net.add_host("aux")};
  FtbAgent root{h_root};
  FtbAgent mid{h_mid};
  FtbAgent leaf{h_leaf};
  FtbAgent aux{h_aux};

  Tree() {
    root.start();
    mid.set_ancestors({{h_root.id(), FtbAgent::kDefaultPort}});
    mid.start();
    leaf.set_ancestors({{h_mid.id(), FtbAgent::kDefaultPort},
                        {h_root.id(), FtbAgent::kDefaultPort}});
    leaf.start();
    aux.set_ancestors({{h_root.id(), FtbAgent::kDefaultPort}});
    aux.start();
  }
  void settle(sim::TimePoint until) { engine.run_until(until); }
};

TEST(FtbTree, EventReachesAllSubscribersAcrossTheTree) {
  Tree t;
  FtbClient pub(t.aux, "job_manager");
  FtbClient sub_root(t.root, "c_root");
  FtbClient sub_leaf(t.leaf, "c_leaf");
  sub_root.subscribe(Subscription{});
  sub_leaf.subscribe(Subscription{});

  t.engine.spawn([](FtbClient& p) -> Task {
    co_await sim::sleep_for(100_ms);  // let the tree form
    co_await p.publish(FtbEvent{"FTB.MPI", "FTB_MIGRATE", Severity::kWarning, "src=n3", "", 0, 0});
  }(pub));
  t.settle(sim::TimePoint::origin() + 2_s);

  auto at_root = sub_root.poll_event();
  auto at_leaf = sub_leaf.poll_event();
  ASSERT_TRUE(at_root.has_value());
  ASSERT_TRUE(at_leaf.has_value());
  EXPECT_EQ(at_root->name, "FTB_MIGRATE");
  EXPECT_EQ(at_leaf->payload, "src=n3");
  EXPECT_EQ(at_leaf->publisher, "job_manager");
  EXPECT_EQ(at_leaf->origin, t.h_aux.id());
}

TEST(FtbTree, PublisherReceivesOwnEventWhenSubscribed) {
  Tree t;
  FtbClient c(t.mid, "self");
  c.subscribe(Subscription{});
  t.engine.spawn([](FtbClient& cc) -> Task {
    co_await sim::sleep_for(100_ms);
    co_await cc.publish(FtbEvent{"S", "E", Severity::kInfo, "", "", 0, 0});
  }(c));
  t.settle(sim::TimePoint::origin() + 1_s);
  EXPECT_TRUE(c.poll_event().has_value());
}

TEST(FtbTree, NonMatchingSubscribersAreNotDisturbed) {
  Tree t;
  FtbClient pub(t.root, "p");
  FtbClient selective(t.leaf, "s");
  selective.subscribe(Subscription{"FTB.MPI.*", "FTB_RESTART", Severity::kInfo});
  t.engine.spawn([](FtbClient& p) -> Task {
    co_await sim::sleep_for(100_ms);
    co_await p.publish(FtbEvent{"FTB.MPI.X", "FTB_MIGRATE", Severity::kFatal, "", "", 0, 0});
    co_await p.publish(FtbEvent{"FTB.MPI.X", "FTB_RESTART", Severity::kInfo, "", "", 0, 0});
  }(pub));
  t.settle(sim::TimePoint::origin() + 2_s);
  auto ev = selective.poll_event();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "FTB_RESTART");
  EXPECT_FALSE(selective.poll_event().has_value());
}

TEST(FtbTree, SelfHealingReparentsLeafWhenMidDies) {
  Tree t;
  FtbClient pub(t.root, "p");
  FtbClient sub(t.leaf, "s");
  sub.subscribe(Subscription{});

  t.engine.spawn([](Tree& tt, FtbClient& p) -> Task {
    co_await sim::sleep_for(100_ms);
    tt.mid.shutdown();  // kill the intermediate agent
    co_await sim::sleep_for(500_ms);  // leaf re-parents to root
    co_await p.publish(FtbEvent{"S", "AFTER_HEAL", Severity::kInfo, "", "", 0, 0});
  }(t, pub));
  t.settle(sim::TimePoint::origin() + 5_s);

  EXPECT_GE(t.leaf.reconnects(), 1u);
  EXPECT_TRUE(t.leaf.connected_to_parent());
  auto ev = sub.poll_event();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->name, "AFTER_HEAL");
}

TEST(FtbTree, ManyEventsAllDelivered) {
  Tree t;
  FtbClient pub(t.leaf, "p");
  FtbClient sub(t.aux, "s");
  sub.subscribe(Subscription{"*", "EV_*", Severity::kInfo});
  t.engine.spawn([](FtbClient& p) -> Task {
    co_await sim::sleep_for(100_ms);
    for (int i = 0; i < 50; ++i) {
      co_await p.publish(
          FtbEvent{"S", "EV_" + std::to_string(i), Severity::kInfo, "", "", 0, 0});
    }
  }(pub));
  t.settle(sim::TimePoint::origin() + 3_s);
  int received = 0;
  while (sub.poll_event()) ++received;
  EXPECT_EQ(received, 50);
  EXPECT_EQ(sub.dropped(), 0u);
}

TEST(FtbAgent, ChildCountTracksTopology) {
  Tree t;
  t.settle(sim::TimePoint::origin() + 1_s);
  EXPECT_EQ(t.root.child_count(), 2u);  // mid + aux
  EXPECT_EQ(t.mid.child_count(), 1u);   // leaf
  EXPECT_TRUE(t.leaf.connected_to_parent());
}

TEST(FtbAgent, ShutdownIsIdempotentAndStopsAccepting) {
  Engine e;
  net::Network net(e);
  net::Host& h = net.add_host("solo");
  FtbAgent agent(h);
  agent.start();
  agent.shutdown();
  agent.shutdown();
  EXPECT_FALSE(agent.running());
  e.run_until(sim::TimePoint::origin() + 1_s);
}

}  // namespace
}  // namespace jobmig::ftb
