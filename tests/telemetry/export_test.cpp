#include <gtest/gtest.h>

#include <cctype>
#include <limits>
#include <sstream>
#include <string>

#include "jobmig/sim/time.hpp"
#include "jobmig/telemetry/export.hpp"
#include "jobmig/telemetry/json.hpp"

namespace jobmig::telemetry {
namespace {

using sim::TimePoint;

TimePoint at(std::int64_t ns) { return TimePoint::origin() + sim::Duration::ns(ns); }

/// Minimal recursive-descent JSON well-formedness checker: enough to prove
/// the streamed output parses, without a JSON dependency in the image.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(pos_, l.size(), l) != 0) return false;
    pos_ += l.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  std::string s_;
  std::size_t pos_ = 0;
};

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(JsonWriter, EmitsValidDocuments) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("s", "he \"quoted\"\n");
    w.field("i", std::int64_t{-3});
    w.field("u", std::uint64_t{18446744073709551615ull});
    w.field("d", 1.5);
    w.field("b", true);
    w.key("arr").begin_array().value(1).value("two").end_array();
    w.end_object();
  }
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_TRUE(contains(out, "\"he \\\"quoted\\\"\\n\""));
  EXPECT_TRUE(contains(out, "18446744073709551615"));
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("nan", std::numeric_limits<double>::quiet_NaN());
    w.field("inf", std::numeric_limits<double>::infinity());
    w.end_object();
  }
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  EXPECT_TRUE(contains(os.str(), "\"nan\":null"));
  EXPECT_TRUE(contains(os.str(), "\"inf\":null"));
}

TEST(JsonWriter, EscapesControlCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\tb"), "a\\tb");
  EXPECT_EQ(JsonWriter::escape("a\x01z"), "a\\u0001z");
  EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
}

TEST(ChromeTrace, ExportsCompleteAsyncCounterAndMetadata) {
  TraceRecorder rec;
  rec.set_process("runA");
  const SpanId outer = rec.begin_span_at("migmgr", "cycle", at(1'000));
  const SpanId a = rec.begin_async_at("migmgr", "pull", at(2'000));
  rec.attr(outer, "src", "node3");
  rec.end_span_at(a, at(5'000));
  rec.end_span_at(outer, at(9'000));
  rec.counter_sample("migmgr", "depth", 2.0);
  rec.instant("migmgr", "mark");

  std::ostringstream os;
  write_chrome_trace(rec, os);
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  // Complete event with duration in microseconds (8000 ns -> 8 us).
  EXPECT_TRUE(contains(out, "\"ph\":\"X\""));
  EXPECT_TRUE(contains(out, "\"dur\":8"));
  // Async begin/end pair carrying an id.
  EXPECT_TRUE(contains(out, "\"ph\":\"b\""));
  EXPECT_TRUE(contains(out, "\"ph\":\"e\""));
  // Counter and instant events.
  EXPECT_TRUE(contains(out, "\"ph\":\"C\""));
  EXPECT_TRUE(contains(out, "\"ph\":\"i\""));
  // Attributes land in args; metadata names the process and the track.
  EXPECT_TRUE(contains(out, "\"src\":\"node3\""));
  EXPECT_TRUE(contains(out, "\"process_name\""));
  EXPECT_TRUE(contains(out, "\"runA\""));
  EXPECT_TRUE(contains(out, "\"thread_name\""));
  EXPECT_TRUE(contains(out, "\"migmgr\""));
}

TEST(ChromeTrace, ProcessesBecomeDistinctPids) {
  TraceRecorder rec;
  rec.set_process("one");
  const SpanId s1 = rec.begin_span_at("t", "x", at(0));
  rec.end_span_at(s1, at(1));
  rec.set_process("two");
  const SpanId s2 = rec.begin_span_at("t", "x", at(0));
  rec.end_span_at(s2, at(1));
  std::ostringstream os;
  write_chrome_trace(rec, os);
  EXPECT_TRUE(contains(os.str(), "\"pid\":2"));
  EXPECT_TRUE(contains(os.str(), "\"pid\":3"));
}

TEST(MetricsExport, SummaryShapeAndPercentiles) {
  MetricsRegistry reg;
  reg.counter("bytes").add(100);
  reg.gauge("depth").set(1.0);
  reg.gauge("depth").set(4.0);
  for (int i = 0; i < 10; ++i) reg.histogram("lat").observe(256);
  std::ostringstream os;
  write_metrics_json(reg, os);
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_TRUE(contains(out, "\"bytes\":100"));
  EXPECT_TRUE(contains(out, "\"low\":1"));
  EXPECT_TRUE(contains(out, "\"high\":4"));
  EXPECT_TRUE(contains(out, "\"count\":10"));
  EXPECT_TRUE(contains(out, "\"p50\":256"));
  EXPECT_TRUE(contains(out, "\"p99\":256"));
}

TEST(MetricsExport, EmptyHistogramOmitsPercentiles) {
  MetricsRegistry reg;
  (void)reg.histogram("empty");
  std::ostringstream os;
  write_metrics_json(reg, os);
  EXPECT_TRUE(JsonChecker(os.str()).valid());
  EXPECT_FALSE(contains(os.str(), "p50"));
}

}  // namespace
}  // namespace jobmig::telemetry
