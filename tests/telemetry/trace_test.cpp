#include <gtest/gtest.h>

#include "jobmig/sim/engine.hpp"
#include "jobmig/sim/task.hpp"
#include "jobmig/telemetry/telemetry.hpp"
#include "jobmig/telemetry/trace.hpp"

namespace jobmig::telemetry {
namespace {

using namespace jobmig::sim::literals;
using sim::TimePoint;

TimePoint at(std::int64_t ns) { return TimePoint::origin() + sim::Duration::ns(ns); }

TEST(TraceRecorder, SyncSpansNestPerTrack) {
  TraceRecorder rec;
  const SpanId outer = rec.begin_span_at("t", "outer", at(10));
  const SpanId inner = rec.begin_span_at("t", "inner", at(20));
  EXPECT_EQ(rec.find(outer)->parent, kNoSpan);
  EXPECT_EQ(rec.find(inner)->parent, outer);
  EXPECT_EQ(rec.open_top("t"), inner);
  rec.end_span_at(inner, at(30));
  EXPECT_EQ(rec.open_top("t"), outer);
  rec.end_span_at(outer, at(40));
  EXPECT_EQ(rec.open_top("t"), kNoSpan);
  EXPECT_EQ(rec.open_count(), 0u);
  EXPECT_EQ(rec.find(inner)->length().count_ns(), 10);
  EXPECT_EQ(rec.find(outer)->length().count_ns(), 30);
}

TEST(TraceRecorder, TracksNestIndependently) {
  TraceRecorder rec;
  const SpanId a = rec.begin_span_at("a", "a1", at(0));
  const SpanId b = rec.begin_span_at("b", "b1", at(0));
  // Not nested: different tracks.
  EXPECT_EQ(rec.find(b)->parent, kNoSpan);
  // Ending in non-LIFO order across tracks is fine.
  rec.end_span_at(a, at(5));
  rec.end_span_at(b, at(6));
}

TEST(TraceRecorder, AsyncSpansOverlapFreely) {
  TraceRecorder rec;
  const SpanId parent = rec.begin_span_at("t", "phase", at(0));
  const SpanId x = rec.begin_async_at("t", "op x", at(1));
  const SpanId y = rec.begin_async_at("t", "op y", at(2));
  // Async spans still record the enclosing sync span as parent...
  EXPECT_EQ(rec.find(x)->parent, parent);
  EXPECT_EQ(rec.find(y)->parent, parent);
  // ...but do not join the LIFO stack.
  EXPECT_EQ(rec.open_top("t"), parent);
  rec.end_span_at(x, at(9));  // out-of-order ends are legal for async
  rec.end_span_at(y, at(4));
  rec.end_span_at(parent, at(10));
  EXPECT_TRUE(rec.find(x)->async);
  EXPECT_FALSE(rec.find(parent)->async);
}

TEST(TraceRecorder, ProcessesPartitionTracks) {
  TraceRecorder rec;
  EXPECT_EQ(rec.processes().size(), 1u);  // default "sim"
  const SpanId a = rec.begin_span_at("t", "a", at(0));
  rec.set_process("run2");
  const SpanId b = rec.begin_span_at("t", "b", at(0));
  // Same track name, different process: no nesting between them.
  EXPECT_EQ(rec.find(b)->parent, kNoSpan);
  EXPECT_EQ(rec.find(a)->process, 0u);
  EXPECT_EQ(rec.find(b)->process, 1u);
  rec.set_process("run2");  // re-selecting must not duplicate
  EXPECT_EQ(rec.processes().size(), 2u);
  rec.end_span_at(b, at(1));
  rec.set_process("sim");
  rec.end_span_at(a, at(1));
}

TEST(TraceRecorder, AttrsInstantsAndCounters) {
  TraceRecorder rec;
  const SpanId s = rec.begin_span_at("t", "s", at(0));
  rec.attr(s, "rank", "3");
  rec.attr(s, "bytes", "1024");
  rec.end_span_at(s, at(1));
  ASSERT_EQ(rec.find(s)->attrs.size(), 2u);
  EXPECT_EQ(rec.find(s)->attrs[0].first, "rank");
  rec.instant("t", "marker");
  rec.counter_sample("t", "depth", 4.0);
  ASSERT_EQ(rec.instants().size(), 1u);
  ASSERT_EQ(rec.counter_samples().size(), 1u);
  EXPECT_EQ(rec.counter_samples()[0].value, 4.0);
  rec.clear();
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_TRUE(rec.instants().empty());
  EXPECT_EQ(rec.processes().size(), 1u);
}

TEST(TraceRecorder, StampsVirtualTimeUnderAnEngine) {
  sim::Engine engine;
  TraceRecorder rec;
  engine.spawn([](TraceRecorder& r) -> sim::Task {
    const SpanId s = r.begin_span("t", "timed");
    co_await sim::sleep_for(5_ms);
    r.end_span(s);
  }(rec));
  engine.run();
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_EQ(rec.spans()[0].length().count_ns(), 5'000'000);
}

TEST(ScopedSpan, NoOpWithoutSession) {
  ASSERT_FALSE(enabled());
  ScopedSpan span("t", "ignored");
  span.attr("k", "v");  // must not crash
  EXPECT_EQ(span.id(), kNoSpan);
}

TEST(ScopedSpan, RecordsIntoInstalledSession) {
  Telemetry session;
  {
    TelemetryScope scope(session);
    ASSERT_TRUE(enabled());
    {
      ScopedSpan span("t", "scoped");
      span.attr("k", "v");
    }  // dtor ends the span
    count("c", 2);
    observe("h", 7);
    gauge_set("g", 1.5);
  }
  EXPECT_FALSE(enabled());
  ASSERT_EQ(session.trace.spans().size(), 1u);
  EXPECT_EQ(session.trace.spans()[0].name, "scoped");
  EXPECT_FALSE(session.trace.spans()[0].open);
  EXPECT_EQ(session.metrics.counters().at("c").value(), 2u);
  EXPECT_EQ(session.metrics.histograms().at("h").count(), 1u);
  EXPECT_EQ(session.metrics.gauges().at("g").value(), 1.5);
}

TEST(Telemetry, FtbRouteLatencyPairsPublishAndFirstDelivery) {
  sim::Engine engine;
  Telemetry session;
  TelemetryScope scope(session);
  engine.spawn([]() -> sim::Task {
    ftb_mark_publish(1, 42);
    co_await sim::sleep_for(3_us);
    ftb_mark_deliver(1, 42);
    ftb_mark_deliver(1, 42);  // later deliveries don't re-observe
    ftb_mark_deliver(9, 7);   // unmatched delivery is ignored
  }());
  engine.run();
  const Histogram& h = session.metrics.histograms().at("ftb.route_ns");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 3'000u);
}

}  // namespace
}  // namespace jobmig::telemetry
