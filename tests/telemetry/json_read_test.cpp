#include "jobmig/telemetry/json_read.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "jobmig/telemetry/json.hpp"

namespace jobmig::telemetry {
namespace {

TEST(JsonRead, ParsesScalarsArraysAndObjects) {
  auto doc = parse_json(R"({"a": 1, "b": -2.5, "c": "hi", "d": true, "e": null,
                            "f": [1, 2, 3], "g": {"nested": "yes"}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->u64("a"), 1u);
  EXPECT_DOUBLE_EQ(doc->num("b"), -2.5);
  EXPECT_EQ(doc->str("c"), "hi");
  EXPECT_TRUE(doc->get("d")->boolean);
  EXPECT_TRUE(doc->get("e")->is_null());
  ASSERT_TRUE(doc->get("f")->is_array());
  EXPECT_EQ(doc->get("f")->items.size(), 3u);
  EXPECT_EQ(doc->get("g")->str("nested"), "yes");
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(JsonRead, PreservesFull64BitIntegers) {
  // Values above 2^53 are exactly representable only as integers — the
  // lexeme-keeping reader must not round-trip them through double.
  auto doc = parse_json(R"({"id": 18446744073709551615, "neg": -9223372036854775807})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->u64("id"), 18446744073709551615ull);
  EXPECT_EQ(doc->get("neg")->as_i64(), -9223372036854775807ll);
}

TEST(JsonRead, DecodesEscapes) {
  auto doc = parse_json(R"({"s": "a\"b\\c\nd\teAé"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str("s"), "a\"b\\c\nd\teA\xC3\xA9");
}

TEST(JsonRead, RoundTripsJsonWriterOutput) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    w.field("format", "jobmig-bench-v2");
    w.field("pi", 3.25);
    w.field("big", std::uint64_t{1234567890123456789ull});
    w.field("quoted", "say \"hi\"\n");
    w.key("rows").begin_array();
    w.begin_object().field("label", "LU.C.64").field("total_ms", 1510.0).end_object();
    w.end_array();
    w.end_object();
  }
  auto doc = parse_json(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str("format"), "jobmig-bench-v2");
  EXPECT_DOUBLE_EQ(doc->num("pi"), 3.25);
  EXPECT_EQ(doc->u64("big"), 1234567890123456789ull);
  EXPECT_EQ(doc->str("quoted"), "say \"hi\"\n");
  const auto* rows = doc->get("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), 1u);
  EXPECT_EQ(rows->items[0].str("label"), "LU.C.64");
  EXPECT_DOUBLE_EQ(rows->items[0].num("total_ms"), 1510.0);
}

TEST(JsonRead, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse_json("{", &err).has_value());
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(parse_json(R"({"a": 1} trailing)").has_value());
  EXPECT_FALSE(parse_json(R"({"a" 1})").has_value());
  EXPECT_FALSE(parse_json(R"(["unterminated)").has_value());
  EXPECT_FALSE(parse_json("", &err).has_value());
  EXPECT_FALSE(parse_json("nul", &err).has_value());
}

TEST(JsonRead, MissingFileReportsAnError) {
  std::string err;
  EXPECT_FALSE(parse_json_file("/nonexistent/jobmig.json", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace jobmig::telemetry
