#include <gtest/gtest.h>

#include <cstdint>

#include "jobmig/telemetry/metrics.hpp"

namespace jobmig::telemetry {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, TracksWatermarks) {
  Gauge g;
  EXPECT_FALSE(g.seen());
  g.set(5.0);
  EXPECT_EQ(g.low(), 5.0);
  EXPECT_EQ(g.high(), 5.0);
  g.set(2.0);
  g.set(9.0);
  g.add(-3.0);
  EXPECT_EQ(g.value(), 6.0);
  EXPECT_EQ(g.low(), 2.0);
  EXPECT_EQ(g.high(), 9.0);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64);
  for (int b = 1; b < Histogram::kBuckets - 1; ++b) {
    // Buckets tile the value axis: [lower, upper] then next lower = upper+1.
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_lower(b)), b);
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_upper(b)), b);
    EXPECT_EQ(Histogram::bucket_lower(b + 1), Histogram::bucket_upper(b) + 1);
  }
}

TEST(Histogram, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.observe(10);
  h.observe(30);
  h.observe(20);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_EQ(h.mean(), 20.0);
}

TEST(Histogram, SingleValuePercentilesCollapse) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(1000);
  // All observations identical: clamping to [min, max] must kill the
  // phantom spread a raw bucket interpolation would report.
  EXPECT_EQ(h.percentile(50.0), 1000.0);
  EXPECT_EQ(h.percentile(99.0), 1000.0);
  EXPECT_EQ(h.percentile(100.0), 1000.0);
}

TEST(Histogram, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1024; ++v) h.observe(v);
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, prev);
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 1024.0);
    prev = q;
  }
  // Median of 1..1024 lands in bucket [512, 1023]; interpolation keeps it
  // near the true value, well inside the bucket's order of magnitude.
  EXPECT_NEAR(h.percentile(50.0), 512.0, 80.0);
  EXPECT_EQ(h.percentile(100.0), 1024.0);
}

TEST(Histogram, ZeroOnlyObservations) {
  Histogram h;
  h.observe(0);
  h.observe(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.percentile(99.9), 0.0);
}

TEST(MetricsRegistry, NamesAreStableHandles) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").add(1);
  reg.counter("a").add(1);
  reg.gauge("g").set(3.0);
  reg.histogram("h").observe(5);
  EXPECT_FALSE(reg.empty());
  EXPECT_EQ(reg.counters().at("a").value(), 2u);
  EXPECT_EQ(reg.counters().size(), 1u);
  reg.clear();
  EXPECT_TRUE(reg.empty());
}

}  // namespace
}  // namespace jobmig::telemetry
