#include <gtest/gtest.h>

#include <algorithm>

#include "jobmig/cluster/cluster.hpp"
#include "jobmig/telemetry/telemetry.hpp"
#include "jobmig/workload/npb.hpp"

namespace jobmig::telemetry {
namespace {

using namespace jobmig::sim::literals;
using cluster::Cluster;
using cluster::ClusterConfig;
using sim::Engine;
using sim::Task;

struct RunResult {
  migration::MigrationReport report;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::vector<std::uint64_t> final_crcs;
};

/// Same scenario as tests/migration/determinism_test.cpp, optionally run with
/// a telemetry session installed. Recording must be a pure observer: every
/// simulation-visible number has to come out identical either way.
RunResult run_full_cycle(Telemetry* session) {
  std::optional<TelemetryScope> scope;
  if (session != nullptr) scope.emplace(*session);
  Engine engine;
  ClusterConfig cfg;
  cfg.compute_nodes = 3;
  cfg.spare_nodes = 1;
  Cluster cl(engine, cfg);
  auto spec = workload::make_spec(workload::NpbApp::kLU, workload::NpbClass::kTest, 6, 0.2);
  spec.time_per_iter = 80_ms;
  cl.create_job(2, spec.image_bytes_per_rank);
  RunResult out;
  engine.spawn([](Cluster& c, workload::KernelSpec s, RunResult& r) -> Task {
    co_await c.start(workload::make_app(s));
    co_await sim::sleep_for(1_s);
    r.report = co_await c.migration_manager().migrate("node1");
  }(cl, spec, out));
  engine.run_until(sim::TimePoint::origin() + 600_s);
  JOBMIG_ASSERT(cl.job().app_done());
  out.events = engine.events_processed();
  out.messages = cl.job().total_messages();
  for (int r = 0; r < cl.job().size(); ++r) {
    out.final_crcs.push_back(cl.job().proc(r).sim_process().image().content_crc());
  }
  return out;
}

const Span* find_span(const Telemetry& session, const std::string& track,
                      const std::string& name) {
  for (const Span& s : session.trace.spans()) {
    if (s.name == name && s.track == track) return &s;
  }
  return nullptr;
}

/// The zero-cost-when-disabled claim, tested the strong way: recording a full
/// trace must not perturb the simulation at all.
TEST(TelemetryDeterminism, RecordingDoesNotPerturbTheSimulation) {
  ASSERT_FALSE(enabled());
  const RunResult off = run_full_cycle(nullptr);
  Telemetry session;
  const RunResult on = run_full_cycle(&session);
  ASSERT_FALSE(enabled());

  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.report.stall.count_ns(), on.report.stall.count_ns());
  EXPECT_EQ(off.report.migration.count_ns(), on.report.migration.count_ns());
  EXPECT_EQ(off.report.restart.count_ns(), on.report.restart.count_ns());
  EXPECT_EQ(off.report.resume.count_ns(), on.report.resume.count_ns());
  EXPECT_EQ(off.report.bytes_moved, on.report.bytes_moved);
  EXPECT_EQ(off.final_crcs, on.final_crcs);

  // The instrumented run actually recorded the migration...
  EXPECT_FALSE(session.trace.spans().empty());
  EXPECT_EQ(session.metrics.counters().at("migration.cycles").value(), 1u);

  // ...and the recorded phase spans agree with the report to the nanosecond.
  const Span* stall = find_span(session, "migmgr", "Stall");
  const Span* mig = find_span(session, "migmgr", "Migration");
  const Span* restart = find_span(session, "migmgr", "Restart");
  const Span* resume = find_span(session, "migmgr", "Resume");
  ASSERT_NE(stall, nullptr);
  ASSERT_NE(mig, nullptr);
  ASSERT_NE(restart, nullptr);
  ASSERT_NE(resume, nullptr);
  EXPECT_EQ(stall->length().count_ns(), on.report.stall.count_ns());
  EXPECT_EQ(mig->length().count_ns(), on.report.migration.count_ns());
  EXPECT_EQ(restart->length().count_ns(), on.report.restart.count_ns());
  EXPECT_EQ(resume->length().count_ns(), on.report.resume.count_ns());

  // Every span the run produced was closed before export time.
  EXPECT_EQ(session.trace.open_count(), 0u);
  EXPECT_TRUE(std::all_of(session.trace.spans().begin(), session.trace.spans().end(),
                          [](const Span& s) { return !s.open; }));
}

/// With no session installed, the hooks must leave no trace anywhere — the
/// disabled path is a handful of inline null checks.
TEST(TelemetryDeterminism, DisabledRunRecordsNothing) {
  ASSERT_FALSE(enabled());
  Telemetry before;  // a bystander session that is never installed
  (void)run_full_cycle(nullptr);
  EXPECT_TRUE(before.trace.spans().empty());
  EXPECT_TRUE(before.metrics.empty());
}

}  // namespace
}  // namespace jobmig::telemetry
