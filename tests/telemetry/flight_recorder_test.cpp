#include "jobmig/telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "jobmig/telemetry/json_read.hpp"

namespace jobmig::telemetry {
namespace {

/// The recorder is a process-wide singleton; every test starts from a
/// cleared ring and restores the empty dump path.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().clear();
    FlightRecorder::instance().set_dump_path("");
  }
  void TearDown() override {
    FlightRecorder::instance().clear();
    FlightRecorder::instance().set_dump_path("");
  }
};

TEST_F(FlightRecorderTest, KeepsInsertionOrderBelowCapacity) {
  auto& fr = FlightRecorder::instance();
  for (int i = 0; i < 10; ++i) fr.note("cat", "event " + std::to_string(i), 7, 100 + i);
  EXPECT_EQ(fr.size(), 10u);
  EXPECT_EQ(fr.total_recorded(), 10u);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 10u);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, i);
    EXPECT_EQ(std::string(snap[i].text), "event " + std::to_string(i));
    EXPECT_EQ(snap[i].trace_id, 7u);
    EXPECT_EQ(snap[i].span_id, 100 + i);
  }
}

TEST_F(FlightRecorderTest, OverflowWrapsAndKeepsTheNewestEntries) {
  auto& fr = FlightRecorder::instance();
  const std::size_t n = FlightRecorder::kCapacity + 137;
  // Built via append: "e" + std::to_string(i) trips a GCC 12 -Wrestrict
  // false positive (PR105651) when the insert path gets inlined here.
  auto label = [](std::size_t i) {
    std::string s("e");
    s += std::to_string(i);
    return s;
  };
  for (std::size_t i = 0; i < n; ++i) fr.note("wrap", label(i));
  EXPECT_EQ(fr.size(), FlightRecorder::kCapacity);
  EXPECT_EQ(fr.total_recorded(), n);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), FlightRecorder::kCapacity);
  // Oldest surviving entry is exactly the first not yet overwritten; seqs
  // stay strictly consecutive across the wrap point.
  EXPECT_EQ(snap.front().seq, n - FlightRecorder::kCapacity);
  EXPECT_EQ(snap.back().seq, n - 1);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].seq, snap[i - 1].seq + 1);
  }
  EXPECT_EQ(std::string(snap.back().text), label(n - 1));
}

TEST_F(FlightRecorderTest, TruncatesOversizedFieldsWithoutOverrun) {
  auto& fr = FlightRecorder::instance();
  const std::string long_cat(200, 'c');
  const std::string long_text(500, 't');
  fr.note(long_cat, long_text);
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(std::string(snap[0].category), std::string(FlightRecorder::kCategoryBytes - 1, 'c'));
  EXPECT_EQ(std::string(snap[0].text), std::string(FlightRecorder::kTextBytes - 1, 't'));
}

TEST_F(FlightRecorderTest, DumpIsParseableAndCountsDroppedEntries) {
  auto& fr = FlightRecorder::instance();
  const std::size_t n = FlightRecorder::kCapacity + 25;
  for (std::size_t i = 0; i < n; ++i) fr.note("dump", "entry", i % 3, i);
  std::ostringstream os;
  fr.dump(os, "unit test \"incident\"");

  std::string err;
  auto doc = parse_json(os.str(), &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->str("format"), "jobmig-flight-v1");
  EXPECT_EQ(doc->str("reason"), "unit test \"incident\"");
  EXPECT_EQ(doc->u64("total_recorded"), n);
  EXPECT_EQ(doc->u64("capacity"), FlightRecorder::kCapacity);
  EXPECT_EQ(doc->u64("dropped"), 25u);
  const auto* entries = doc->get("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->items.size(), FlightRecorder::kCapacity);
}

TEST_F(FlightRecorderTest, IncidentDumpDisabledWithoutAPath) {
  auto& fr = FlightRecorder::instance();
  fr.note("x", "y");
  EXPECT_FALSE(fr.dump_on_incident("nothing configured"));
}

TEST_F(FlightRecorderTest, IncidentDumpWritesTheConfiguredFile) {
  const std::string path = ::testing::TempDir() + "jobmig_flight_unit.json";
  std::remove(path.c_str());
  auto& fr = FlightRecorder::instance();
  fr.note("mig", "phase done", 3, 42);
  fr.set_dump_path(path);
  EXPECT_TRUE(fr.dump_on_incident("configured"));
  auto doc = parse_json_file(path);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str("reason"), "configured");
  ASSERT_EQ(doc->get("entries")->items.size(), 1u);
  EXPECT_EQ(doc->get("entries")->items[0].u64("trace_id"), 3u);
  std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, ClearEmptiesTheRing) {
  auto& fr = FlightRecorder::instance();
  for (int i = 0; i < 5; ++i) fr.note("c", "t");
  fr.clear();
  EXPECT_EQ(fr.size(), 0u);
  EXPECT_EQ(fr.total_recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
}

}  // namespace
}  // namespace jobmig::telemetry
